#!/usr/bin/env python3
"""xan_lint: the unified static-analysis driver for the Xanadu codebase.

One command, one parse, every rule.  The shared cppmodel front end
(tools/cppmodel/) loads src/ + bench/ exactly once -- tokenizer, function
extraction, call graph, include graph, suppression comments -- and the
whole analysis family runs off that single SourceModel:

  determinism_lint   line rules: random-device, libc-rand, wall-clock,
                     pointer-format, unordered-iteration, bare-assert,
                     priority-queue, friend-backdoor
  layer_lint         include-graph rules over src/ (strict): unknown-layer,
                     missing-header, cpp-include, layering, include-cycle,
                     layer-skip
  flow_lint          interprocedural dataflow: shared-rng-draw,
                     nondet-taint
  arena-escape       request-lifetime Arena/StringInterner storage escaping
                     into members/statics/member containers that outlive
                     reset_for_reuse (static complement of the ASan
                     use-after-reset death tests)
  shard-lookahead    handler-reachable scheduling/publishing onto another
                     shard outside the numbered mailbox (static complement
                     of the runtime window_end throw and the TSan job)
  observer-purity    PolicyView/probe/digest observation paths that draw
                     from an Rng, call an engine mutator, or write state
                     folded into state_digest (static complement of the
                     golden-digest replay)

Every rule shares the same suppression syntax on the offending line or the
line above (`// lint:allow(<rule>) justification`; flow-lint:allow is a
synonym), and the full catalogue prints with --list-rules.

Outputs: human-readable text (default), --json PATH and --sarif PATH write
the single merged machine-readable report covering all analyses (the SARIF
is what CI uploads to GitHub code scanning).  Exit status is 0 when no
unannotated findings remain, 1 otherwise, 2 on usage errors.  Run directly
(`tools/xan_lint.py src bench`) or via `ctest -R xan_lint`.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import determinism_lint
import flow_lint
import layer_lint
from analyses import ALL_ANALYSES
from cppmodel import Finding, SourceModel, write_json, write_sarif

TOOL_NAME = "xan_lint"


def rule_catalogue() -> dict[str, str]:
    docs: dict[str, str] = {}
    docs.update(determinism_lint.RULE_DOCS)
    docs.update(layer_lint.RULE_DOCS)
    docs.update(flow_lint.RULE_DOCS)
    for mod in ALL_ANALYSES:
        docs.update(mod.RULE_DOCS)
    return docs


def run_all(model: SourceModel, strict_layers: bool = True,
            layer_root: str = "src") -> list[Finding]:
    """Every analysis over one shared parse; merged, sorted findings."""
    findings: list[Finding] = []
    findings += determinism_lint.run_on_model(model)
    layer_findings, _edges = layer_lint.run_on_model(
        model, strict=strict_layers, root_name=layer_root
    )
    findings += layer_findings
    flow_findings, _analyzer = flow_lint.run_on_model(model)
    findings += flow_findings
    for mod in ALL_ANALYSES:
        findings += mod.run(model)
    findings.sort(key=lambda f: f.sort_key())
    return findings


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "roots",
        nargs="*",
        default=["src", "bench"],
        help="source roots to scan (default: src bench)",
    )
    parser.add_argument("--json", metavar="PATH",
                        help="write the merged findings as JSON")
    parser.add_argument("--sarif", metavar="PATH",
                        help="write the merged findings as SARIF 2.1.0")
    parser.add_argument(
        "--no-strict-layers",
        action="store_true",
        help="run the layer rules without the strict deep-skip check",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the full rule catalogue and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule, doc in sorted(rule_catalogue().items()):
            print(f"{rule}: {doc}")
        return 0

    roots = [Path(r) for r in (args.roots or ["src", "bench"])]
    for root in roots:
        if not root.is_dir():
            print(f"xan_lint: no such directory: {root}", file=sys.stderr)
            return 2

    model = SourceModel(roots).load()
    findings = run_all(
        model, strict_layers=not args.no_strict_layers
    )

    if args.json:
        write_json(findings, Path(args.json))
    if args.sarif:
        write_sarif(
            findings, Path(args.sarif), TOOL_NAME, rule_catalogue(),
            information_uri="tools/xan_lint.py",
        )

    for finding in findings:
        print(finding)
    n_files = len(model.files)
    n_fns = len(model.functions)
    n_rules = len(rule_catalogue())
    if findings:
        print(
            f"xan_lint: {len(findings)} unannotated finding(s) across "
            f"{n_files} files / {n_fns} functions / {n_rules} rules; "
            "reviewed exceptions need // lint:allow(<rule>)",
            file=sys.stderr,
        )
        return 1
    print(
        f"xan_lint: OK ({n_files} files, {n_fns} functions, {n_rules} "
        "rules, one parse)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
