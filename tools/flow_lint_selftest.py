#!/usr/bin/env python3
"""Self-test for tools/flow_lint.py against the known-bad/known-good
fixtures in tools/fixtures/flow_lint/.

The analyzer guards the repo's central determinism claim, so it gets the
same treatment as any other load-bearing component: a regression suite.
Each fixture distills one scenario:

  bad_shared_stream.cpp  the pre-fix speculative provision-batch race
                         (shared member stream drawn inside a tied handler)
                         -- must fire shared-rng-draw with the full
                         root -> callee -> draw path
  bad_param_flow.cpp     the same hazard hidden behind an Rng& parameter --
                         must fire via interprocedural lineage
  bad_clock_taint.cpp    wall-clock read feeding a digest across a call
                         edge -- must fire nondet-taint with the
                         source -> f() -> sink path
  suppressed.cpp         both hazards carrying flow-lint:allow escapes --
                         must be silent (pins the suppression syntax)
  good_keyed_fork.cpp    the post-fix fork_stream(stable_key) shape --
                         must be silent
  overload_arity.cpp     same-named overloads with different arity: the
                         handler that only calls the pure 2-arg overload
                         must stay out of the finding's path; the handler
                         that calls the drawing 1-arg overload must fire

plus a clean gate: flow_lint must report zero findings on src/ and bench/
so CI fails on any new finding.

Run directly (`tools/flow_lint_selftest.py`) from the repository root, or
via `ctest -R flow_lint_selftest`.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

import flow_lint  # noqa: E402

FIXTURES = Path(__file__).resolve().parent / "fixtures" / "flow_lint"


def analyze(*roots: Path) -> flow_lint.Analyzer:
    analyzer = flow_lint.Analyzer([Path(r) for r in roots])
    analyzer.load()
    analyzer.run()
    return analyzer


def check(condition: bool, label: str, failures: list[str]) -> None:
    print(("PASS" if condition else "FAIL") + f"  {label}")
    if not condition:
        failures.append(label)


def main() -> int:
    failures: list[str] = []
    analyzer = analyze(FIXTURES)
    by_file: dict[str, list[flow_lint.Finding]] = {}
    for finding in analyzer.findings:
        by_file.setdefault(Path(finding.file).name, []).append(finding)

    # --- bad_shared_stream: the distilled speculative-batch race. ---------
    found = by_file.get("bad_shared_stream.cpp", [])
    check(
        len(found) == 1 and found[0].rule == "shared-rng-draw",
        "bad_shared_stream fires shared-rng-draw exactly once",
        failures,
    )
    if found:
        path = " -> ".join(found[0].path)
        check(
            "speculate_batch" in path
            and "daemon_build_sandbox" in path
            and "sample_provision_latency" in path
            and path.endswith("rng_.normal()"),
            "bad_shared_stream path walks root -> daemon -> sample -> draw",
            failures,
        )
        check(
            "rng_" in found[0].message,
            "bad_shared_stream names the shared stream",
            failures,
        )

    # --- bad_param_flow: lineage through an Rng& parameter. ---------------
    found = by_file.get("bad_param_flow.cpp", [])
    check(
        len(found) == 1 and found[0].rule == "shared-rng-draw",
        "bad_param_flow fires shared-rng-draw exactly once",
        failures,
    )
    if found:
        check(
            "jitter_helper" in " -> ".join(found[0].path)
            and "rng_" in found[0].message,
            "bad_param_flow traces the member stream into the helper",
            failures,
        )

    # --- bad_clock_taint: source -> call edge -> sink. --------------------
    found = by_file.get("bad_clock_taint.cpp", [])
    check(
        len(found) == 1 and found[0].rule == "nondet-taint",
        "bad_clock_taint fires nondet-taint exactly once",
        failures,
    )
    if found:
        path = " -> ".join(found[0].path)
        check(
            "stamp_millis" in path
            and "emit_report" in path
            and path.endswith("trace_digest()"),
            "bad_clock_taint path reports source -> f() -> sink",
            failures,
        )

    # --- overload_arity: arity-resolved call graph. -----------------------
    found = by_file.get("overload_arity.cpp", [])
    check(
        len(found) == 1 and found[0].rule == "shared-rng-draw",
        "overload_arity fires shared-rng-draw exactly once",
        failures,
    )
    if found:
        path = " -> ".join(found[0].path)
        check(
            "on_mix_tick" in path,
            "overload_arity path roots at the handler calling the 1-arg "
            "overload",
            failures,
        )
        check(
            "on_mix_request" not in path,
            "overload_arity keeps the 2-arg-only handler out of the path",
            failures,
        )

    # --- suppressed + good fixtures stay silent. --------------------------
    check(
        not by_file.get("suppressed.cpp"),
        "suppressed.cpp is silent (flow-lint:allow honoured)",
        failures,
    )
    check(
        not by_file.get("good_keyed_fork.cpp"),
        "good_keyed_fork.cpp is silent (fork_stream never flagged)",
        failures,
    )

    # --- fixture draw sites predicted (soundness on the corpus). ----------
    sites = analyzer.predicted_draw_sites()
    check(
        any(
            Path(s["file"]).name == "good_keyed_fork.cpp"
            and s["method"] == "normal"
            for s in sites
        ),
        "draw-site prediction covers the keyed-fork draw",
        failures,
    )

    # --- clean gate: zero findings on the real tree. ----------------------
    repo_root = Path(__file__).resolve().parent.parent
    real = analyze(repo_root / "src", repo_root / "bench")
    for finding in real.findings:
        print(f"      unexpected: {finding}")
    check(
        not real.findings,
        "src/ and bench/ are clean (no unannotated findings)",
        failures,
    )
    check(
        len(real.predicted_draw_sites()) > 0,
        "src/ draw-site prediction is non-empty",
        failures,
    )

    if failures:
        print(
            f"flow_lint_selftest: {len(failures)} check(s) failed",
            file=sys.stderr,
        )
        return 1
    print("flow_lint_selftest: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
