#!/usr/bin/env python3
"""Determinism linter for the Xanadu simulation codebase.

The whole reproduction rests on the claim that two runs with the same seed
produce bit-identical traces.  This tool makes that claim machine-checked by
scanning C++ sources for constructs that silently break it:

  random-device        std::random_device (non-deterministic entropy source)
  libc-rand            rand()/srand() (hidden global state, seeding by time)
  wall-clock           std::chrono::{system,steady,high_resolution}_clock
                       (real time leaking into virtual-time code)
  pointer-format       %p in a format string (ASLR leaks addresses into
                       output, so traces differ across runs)
  unordered-iteration  range-for over a std::unordered_{map,set} member in an
                       ordering-sensitive directory (sim/, platform/, core/):
                       iteration order is unspecified and can change across
                       standard-library versions, so anything observable must
                       not depend on it
  bare-assert          assert() in an ordering-sensitive directory: the
                       default RelWithDebInfo build defines NDEBUG, which
                       compiles the check away; use XANADU_INVARIANT instead
  priority-queue       std::priority_queue in src/sim: the event queue is a
                       slab-backed d-ary heap ordered by the total
                       (when, seq) key.  priority_queue hides its container,
                       which forbids tombstone compaction, forces a
                       const_cast to move callbacks out of top(), and makes
                       heap shape (not the total order) tempting to rely on
  friend-backdoor      friend declarations in src/platform: the engine's
                       subsystems (warm pool, provision pipeline, recovery)
                       interact only through their public interfaces and
                       explicit hook structs; a friend edge would let one
                       subsystem mutate another's private state behind the
                       seams the decomposition established

The file walking, comment/string stripping and suppression parsing come
from the shared cppmodel front end (tools/cppmodel/); this module is the
rule set.  A finding can be suppressed per line with an explicit escape
hatch, either on the offending line or on the line directly above it:

    // lint:allow(<rule>) optional justification

Exit status is 0 when no unannotated violations remain, 1 otherwise.
Run directly (`tools/determinism_lint.py src`) or via `ctest -R
determinism` (or as part of the unified `xan_lint` driver).
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

from cppmodel import Finding, SourceModel, allowed_at

# Directories (relative to a scanned source root; a root whose files sit
# directly at its top level, like bench/, counts under its own name) whose
# event ordering is observable: anything here feeds the simulator's event
# interleaving, the learned models, or emitted reports, so unordered-
# container iteration order must not leak out.
ORDER_SENSITIVE_DIRS = (
    "sim",
    "platform",
    "core",
    "workload",
    "workflow",
    "cluster",
    "metrics",
    "bench",
)

# Simple line-level rules: (rule, regex, message).
LINE_RULES = [
    (
        "random-device",
        re.compile(r"\brandom_device\b"),
        "std::random_device is a non-deterministic entropy source; seed an "
        "explicit common::Rng instead",
    ),
    (
        "libc-rand",
        re.compile(r"(?<![\w:])s?rand\s*\("),
        "rand()/srand() use hidden global state; use common::Rng streams",
    ),
    (
        "wall-clock",
        re.compile(r"\b(system_clock|steady_clock|high_resolution_clock)\b"),
        "wall-clock time must not leak into the simulation; use sim::TimePoint",
    ),
    (
        "pointer-format",
        re.compile(r'"[^"\n]*%p[^"\n]*"'),
        "%p formats an ASLR-randomised address; print a stable id instead",
    ),
]

RANGE_FOR_RE = re.compile(
    r"\bfor\s*\([^;()]*?:\s*(?:this->)?([A-Za-z_][\w.\->]*)\s*\)"
)
BARE_ASSERT_RE = re.compile(r"(?<![\w.])assert\s*\(")

# Directories (relative to the scanned source root) where std::priority_queue
# is banned outright -- the simulator's event queue must stay the auditable
# slab/d-ary-heap implementation (see ARCHITECTURE.md "Event-queue design").
PRIORITY_QUEUE_DIRS = ("sim",)
PRIORITY_QUEUE_RE = re.compile(r"\bpriority_queue\b")

# Directories (relative to the scanned source root) where `friend` is banned:
# the platform subsystems must talk through public interfaces and hook
# structs only (see ARCHITECTURE.md "Engine decomposition").
FRIEND_DIRS = ("platform",)
FRIEND_RE = re.compile(r"\bfriend\b")

RULE_DOCS = {
    rule: message for rule, _pattern, message in LINE_RULES
}
RULE_DOCS.update(
    {
        "unordered-iteration": (
            "range-for over an unordered container in an ordering-"
            "sensitive directory; use a sorted snapshot or an order-"
            "insensitive reduction"
        ),
        "bare-assert": (
            "assert() vanishes under RelWithDebInfo (NDEBUG); use "
            "XANADU_INVARIANT / XANADU_AUDIT from sim/audit.hpp"
        ),
        "priority-queue": (
            "std::priority_queue is banned in src/sim; keep the slab-"
            "backed d-ary heap"
        ),
        "friend-backdoor": (
            "friend is banned in src/platform; subsystems interact through "
            "public interfaces and hook structs"
        ),
    }
)


def run_on_model(model: SourceModel) -> list[Finding]:
    """All line rules over an already-loaded model (parse=False is
    enough)."""
    findings: list[Finding] = []
    for sf in model.files:
        sensitive = sf.top in ORDER_SENSITIVE_DIRS
        pq_banned = sf.top in PRIORITY_QUEUE_DIRS
        friend_banned = sf.top in FRIEND_DIRS
        for index, code in enumerate(sf.code_lines):
            lineno = index + 1
            raw = sf.raw_lines[index] if index < len(sf.raw_lines) else code
            allowed = allowed_at(sf.allow, lineno)

            for rule, pattern, message in LINE_RULES:
                haystack = raw if rule == "pointer-format" else code
                if pattern.search(haystack) and rule not in allowed:
                    findings.append(
                        Finding(sf.display, lineno, rule, message)
                    )

            if (
                pq_banned
                and PRIORITY_QUEUE_RE.search(code)
                and "priority-queue" not in allowed
            ):
                findings.append(
                    Finding(
                        sf.display,
                        lineno,
                        "priority-queue",
                        "std::priority_queue is banned in src/sim: keep the "
                        "slab-backed d-ary heap (supports tombstone "
                        "compaction and moving callbacks out without "
                        "const_cast)",
                    )
                )

            if (
                friend_banned
                and FRIEND_RE.search(code)
                and "friend-backdoor" not in allowed
            ):
                findings.append(
                    Finding(
                        sf.display,
                        lineno,
                        "friend-backdoor",
                        "friend is banned in src/platform: subsystems "
                        "interact through public interfaces and hook "
                        "structs, never by reaching into each other's "
                        "private state",
                    )
                )

            if not sensitive:
                continue

            match = RANGE_FOR_RE.search(code)
            if match and "unordered-iteration" not in allowed:
                # The range expression's trailing identifier (after any
                # . or ->).
                target = re.split(r"\.|->", match.group(1))[-1]
                if target in model.unordered_names:
                    findings.append(
                        Finding(
                            sf.display,
                            lineno,
                            "unordered-iteration",
                            f"iterating '{target}', an unordered container, "
                            "in an ordering-sensitive directory; use a "
                            "sorted snapshot or an order-insensitive "
                            "reduction",
                        )
                    )

            if BARE_ASSERT_RE.search(code) and "bare-assert" not in allowed:
                if "static_assert" not in code:
                    findings.append(
                        Finding(
                            sf.display,
                            lineno,
                            "bare-assert",
                            "assert() vanishes under RelWithDebInfo "
                            "(NDEBUG); use XANADU_INVARIANT / XANADU_AUDIT "
                            "from sim/audit.hpp",
                        )
                    )
    findings.sort(key=lambda f: f.sort_key())
    return findings


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "roots",
        nargs="*",
        default=["src"],
        help="source roots to scan (default: src)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print rule names and exit"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule, _, message in LINE_RULES:
            print(f"{rule}: {message}")
        print("unordered-iteration: (ordering-sensitive dirs only)")
        print("bare-assert: (ordering-sensitive dirs only)")
        print("priority-queue: (src/sim only)")
        print("friend-backdoor: (src/platform only)")
        return 0

    roots = [Path(r) for r in (args.roots or ["src"])]
    for root in roots:
        if not root.is_dir():
            print(
                f"determinism_lint: no such directory: {root}", file=sys.stderr
            )
            return 2

    # Line rules don't need the token-level parse.
    model = SourceModel(roots, parse=False).load()
    findings = run_on_model(model)

    for finding in findings:
        print(finding)
    if findings:
        print(
            f"determinism_lint: {len(findings)} unannotated violation(s) in "
            f"{len(model.files)} file(s); suppress intentional uses with "
            "// lint:allow(<rule>)",
            file=sys.stderr,
        )
        return 1
    print(f"determinism_lint: OK ({len(model.files)} files clean)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
