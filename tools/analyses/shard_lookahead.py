"""shard-lookahead: cross-shard effects must route through the mailbox.

The conservative PDES contract (PR 9): within a lookahead window, a shard
may only affect another shard by enqueuing into the numbered mailbox
(`LogicalProcess::send(to, when, fn, label)`), which the window driver
merges deterministically by `(when, source, index)`.  Scheduling directly
into a foreign shard's simulator -- or delivering a bridged message by
hand -- bypasses the window barrier: the runtime guards this with the
`window_end` throw and the TSan job catches the data race, but only on
executed paths.  This rule is the static complement: any function
reachable from an event-handler root that calls a scheduling/publishing
API on a receiver that names another shard (remote_/peer_/other_...
receivers, `shard(i)`/`shards_[i]` chains) is flagged with the handler
path that reaches it.

`ShardedSimulator`'s own members are exempt (the window driver *is* the
mailbox implementation), as is `LogicalProcess` itself.

Over-approximate by design; silence a reviewed exception with
// lint:allow(shard-lookahead).
"""

from __future__ import annotations

import re

from cppmodel import Finding, allowed_at, receiver_expr

RULE = "shard-lookahead"

RULE_DOCS = {
    RULE: (
        "handler-reachable code schedules/publishes onto another shard "
        "without routing through the numbered mailbox "
        "(LogicalProcess::send); in-window cross-shard effects break the "
        "conservative PDES merge order"
    ),
}

# Calls that inject events or messages into a simulator/bus.  `send` is
# deliberately absent: LogicalProcess::send IS the blessed channel.
MONITORED_CALLS = {
    "schedule_at",
    "schedule_after",
    "publish",
    "run_before",
    "deliver_bridged",
}

# Classes that implement the mailbox/window machinery; their own bodies
# legitimately touch foreign shards.
EXEMPT_CLASSES = {"ShardedSimulator", "LogicalProcess", "ShardMailbox"}

# A receiver-expression token that names another shard.
FOREIGN_TOKEN_RE = re.compile(
    r"^(?:remote|peer|foreign|other|neighbor)\w*$|^shards?_?$"
)


def _is_foreign(expr_tokens: list[str]) -> bool:
    return any(FOREIGN_TOKEN_RE.match(t) for t in expr_tokens)


def run(model) -> list[Finding]:
    findings: list[Finding] = []
    reach = model.handler_reachability()
    for fn in model.functions:
        chain = reach.get(id(fn))
        if chain is None:
            continue
        if fn.cls in EXEMPT_CLASSES:
            continue
        sf = model.file_of(fn)
        tokens = sf.tokens
        # Argument spans of mailbox sends in this function: a monitored
        # call lexically inside one is the *body of the closure being
        # mailed* -- it executes on the target shard after the window
        # merge, which is exactly the blessed route.
        send_spans = [
            (c.open_idx, c.close_idx)
            for c in fn.calls
            if c.name == "send" and c.is_method
        ]
        for call in fn.calls:
            if call.name not in MONITORED_CALLS:
                continue
            if any(lo < call.name_idx < hi for lo, hi in send_spans):
                continue
            if not call.is_method:
                # deliver_bridged is only ever a method; a free publish/
                # schedule call has no receiver to be foreign.
                continue
            expr = receiver_expr(tokens, call.name_idx - 1)
            if not _is_foreign(expr):
                continue
            if RULE in allowed_at(sf.allow, call.line):
                continue
            receiver = "".join(expr) if expr else "<receiver>"
            findings.append(
                Finding(
                    fn.file,
                    call.line,
                    RULE,
                    f"'{receiver}.{call.name}(...)' targets another shard "
                    "from handler-reachable code without the numbered "
                    "mailbox; use LogicalProcess::send(to, when, fn, "
                    "label) so the window driver merges it "
                    "deterministically",
                    list(chain) + [f"{receiver}.{call.name}()"],
                )
            )
    findings.sort(key=lambda f: f.sort_key())
    return findings
