"""The xan_lint analysis family: one module per interprocedural rule.

Each module exposes `run(model) -> list[Finding]` plus a RULE_DOCS dict;
`tools/xan_lint.py` runs them all off one shared cppmodel.SourceModel
parse and merges the reports.
"""

from __future__ import annotations

from . import arena_escape, observer_purity, shard_lookahead  # noqa: F401

ALL_ANALYSES = (arena_escape, shard_lookahead, observer_purity)
