"""arena-escape: request-lifetime storage must not outlive the request.

`common::Arena` hands out pointers that die at `reset_for_reuse` /
`Arena::reset`; `StringInterner::view` hands out string_views into interner
storage.  Storing either in a member (trailing-underscore naming
convention, or through `this`), in a `static`, or pushing it into a member
container creates a dangling reference the next time the request slot is
recycled -- exactly the use-after-reset shape the PR-7 ASan death tests
catch at runtime, but only on the paths tests happen to exercise.  This
rule reports the shape statically, with the flow path.

The analysis is statement-level taint inside each function (allocation /
view expressions and locals assigned from them), plus an interprocedural
fixpoint over *returners*: a function whose `return` statement carries
arena-backed data taints its call sites in every caller.

Over-approximate by design; silence a reviewed exception with
// lint:allow(arena-escape).
"""

from __future__ import annotations

import re

from cppmodel import Finding, allowed_at
from cppmodel.lexer import IDENT_RE

RULE = "arena-escape"

RULE_DOCS = {
    RULE: (
        "pointer/string_view into common::Arena or StringInterner storage "
        "stored in a member, static, or member container that outlives "
        "reset_for_reuse; keep request-lifetime data on the request arena"
    ),
}

# Methods whose result points into arena storage / interner storage.
ARENA_ALLOC_METHODS = {"allocate", "allocate_for"}
INTERNER_VIEW_METHODS = {"view"}

# Member-container operations that retain their argument.
CONTAINER_OPS = {
    "push_back",
    "emplace_back",
    "push_front",
    "insert",
    "emplace",
    "assign",
}

# Receivers treated as arenas / interners even without a seen declaration
# (the codebase's conventional names).
DEFAULT_ARENA_RECEIVERS = {"arena", "arena_"}
DEFAULT_INTERNER_RECEIVERS = {"interner_", "names_", "labels_"}

_MEMBER_RE = re.compile(r"\w_$")

KIND_WHAT = {
    "arena": "pointer into common::Arena storage",
    "view": "string_view into StringInterner storage",
}


def _statements(tokens, spans):
    """Yields (start, end) token index ranges for statements inside the
    given body spans, splitting on ';' and brace boundaries so nested
    blocks and lambda bodies segment naturally."""
    for span_start, span_end in spans:
        start = span_start
        depth = 0
        for i in range(span_start, span_end):
            t = tokens[i][0]
            if t == "(" or t == "[":
                depth += 1
            elif t == ")" or t == "]":
                depth -= 1
            elif depth == 0 and t in (";", "{", "}"):
                if i > start:
                    yield (start, i)
                start = i + 1
        if span_end > start:
            yield (start, span_end)


class _Analysis:
    def __init__(self, model):
        self.model = model
        self.arena_receivers = (
            set(model.arena_names) | DEFAULT_ARENA_RECEIVERS
        )
        self.interner_receivers = (
            set(model.interner_names) | DEFAULT_INTERNER_RECEIVERS
        )
        # id(fn) -> (kind, origin description, chain) for functions whose
        # return value is arena-backed.
        self.returners: dict[int, tuple[str, str, list[str]]] = {}
        self.findings: list[Finding] = []
        self._reported: set[tuple[str, int, str]] = set()

    # -- sources -----------------------------------------------------------

    def _call_sources(self, fn, calls_in_stmt):
        """(token index, kind, origin description, chain) per source call
        in the statement."""
        out = []
        for c in calls_in_stmt:
            if c.is_method and c.receiver:
                recv = c.receiver[-1]
                if c.name in ARENA_ALLOC_METHODS and \
                        recv in self.arena_receivers:
                    out.append((
                        c.name_idx, "arena",
                        f"{recv}.{c.name}() at {fn.file}:{c.line}",
                        [],
                    ))
                    continue
                if c.name in INTERNER_VIEW_METHODS and \
                        recv in self.interner_receivers:
                    out.append((
                        c.name_idx, "view",
                        f"{recv}.{c.name}() at {fn.file}:{c.line}",
                        [],
                    ))
                    continue
            for callee in self.model.resolve_call(fn, c):
                ret = self.returners.get(id(callee))
                if ret is not None:
                    kind, origin, chain = ret
                    out.append((
                        c.name_idx, kind, origin,
                        chain + [f"{callee.qualified}()"],
                    ))
                    break
        return out

    def _element_address_sources(self, fn, tokens, start, end):
        """`&container[...]` where the container is a declared
        arena-backed container: the element address dies at reset."""
        out = []
        for i in range(start, end - 1):
            if tokens[i][0] != "&":
                continue
            name = tokens[i + 1][0]
            if name in self.model.arena_container_names and \
                    i + 2 < end and tokens[i + 2][0] == "[":
                out.append((
                    i, "arena",
                    f"&{name}[...] at {fn.file}:{tokens[i][1]}",
                    [],
                ))
        return out

    # -- per-function scan --------------------------------------------------

    def scan_function(self, fn) -> bool:
        """One pass over fn's statements; returns True if fn became a new
        returner (the interprocedural fixpoint re-runs callers then)."""
        sf = self.model.file_of(fn)
        tokens = sf.tokens
        spans = []
        if fn.init_span is not None:
            spans.append(fn.init_span)
        spans.append(fn.body_span)
        calls_by_idx = sorted(fn.calls, key=lambda c: c.name_idx)
        tainted: dict[str, tuple[str, str, list[str]]] = {}
        became_returner = False
        for start, end in _statements(tokens, spans):
            stmt_calls = [
                c for c in calls_by_idx if start <= c.name_idx < end
            ]
            sources = self._call_sources(fn, stmt_calls)
            sources += self._element_address_sources(fn, tokens, start, end)
            # References to already-tainted locals count as sources too.
            for i in range(start, end):
                t = tokens[i][0]
                if t in tainted:
                    kind, origin, chain = tainted[t]
                    sources.append((i, kind, origin, chain))
            if not sources:
                continue
            sources.sort(key=lambda s: s[0])
            first = tokens[start][0]
            line = tokens[start][1]
            if first == "return":
                if id(fn) not in self.returners:
                    _idx, kind, origin, chain = sources[0]
                    self.returners[id(fn)] = (kind, origin, chain)
                    became_returner = True
                continue
            # static local retaining arena-backed data.
            if first == "static":
                _idx, kind, origin, chain = sources[0]
                self._report(
                    fn, sf, line, kind, origin, chain,
                    "static local",
                )
                continue
            # Member-container retention: x_.push_back(tainted).
            for c in stmt_calls:
                if c.name not in CONTAINER_OPS or not c.is_method \
                        or not c.receiver:
                    continue
                recv = c.receiver[-1]
                if not _MEMBER_RE.search(recv) and \
                        recv not in ("this",):
                    continue
                arg_sources = [
                    s for s in sources
                    if c.open_idx < s[0] < c.close_idx
                ]
                if arg_sources:
                    _idx, kind, origin, chain = arg_sources[0]
                    self._report(
                        fn, sf, c.line, kind, origin, chain,
                        f"member container '{recv}.{c.name}(...)'",
                    )
            # Assignment: member LHS escapes; simple-local LHS taints.
            eq = self._toplevel_assign(tokens, start, end)
            if eq is None:
                continue
            rhs_sources = [s for s in sources if s[0] > eq]
            if not rhs_sources:
                continue
            _idx, kind, origin, chain = rhs_sources[0]
            lhs = [tokens[i][0] for i in range(start, eq)]
            member = "this" in lhs or any(
                _MEMBER_RE.search(t) for t in lhs if IDENT_RE.fullmatch(t)
            )
            if member:
                target = next(
                    (t for t in reversed(lhs)
                     if IDENT_RE.fullmatch(t) and _MEMBER_RE.search(t)),
                    "member",
                )
                self._report(
                    fn, sf, tokens[eq][1], kind, origin, chain,
                    f"member '{target}'",
                )
            else:
                local = next(
                    (t for t in reversed(lhs) if IDENT_RE.fullmatch(t)
                     and t not in ("const", "auto")),
                    None,
                )
                if local is not None:
                    tainted.setdefault(local, (kind, origin, chain))
        return became_returner

    @staticmethod
    def _toplevel_assign(tokens, start, end) -> int | None:
        """Index of the statement's top-level '=' (plain assignment only;
        compound operators and comparisons tokenize as single distinct
        tokens).  Skips '=' inside parens/brackets/braces -- call
        arguments, lambda captures, initializer lists."""
        depth = 0
        for i in range(start, end):
            t = tokens[i][0]
            if t in "([{":
                depth += 1
            elif t in ")]}":
                depth -= 1
            elif t == "=" and depth == 0:
                return i
        return None

    def _report(self, fn, sf, line, kind, origin, chain, where) -> None:
        if RULE in allowed_at(sf.allow, line):
            return
        key = (fn.file, line, where)
        if key in self._reported:
            return
        self._reported.add(key)
        path = chain + [f"{fn.qualified}()"] if chain else \
            [f"{fn.qualified}()"]
        self.findings.append(
            Finding(
                fn.file,
                line,
                RULE,
                f"{KIND_WHAT[kind]} ({origin}) escapes into {where}, "
                "which outlives reset_for_reuse; request-lifetime data "
                "must not survive the arena that backs it",
                path + [where],
            )
        )


def run(model) -> list[Finding]:
    analysis = _Analysis(model)
    # Interprocedural fixpoint: each pass may discover new returners whose
    # callers then see new sources.  Findings are deduplicated per site, so
    # re-scanning is idempotent; the pass count is bounded by the longest
    # return-flow chain.
    for _ in range(8):
        analysis.findings.clear()
        analysis._reported.clear()
        changed = False
        for fn in model.functions:
            if analysis.scan_function(fn):
                changed = True
        if not changed:
            break
    analysis.findings.sort(key=lambda f: f.sort_key())
    return analysis.findings
