"""observer-purity: observation must not perturb the replayable state.

`PolicyView` (the provisioning policies' read-only window onto the
engine), the `ProbeRegistry` samplers, and the digest functions
(`state_digest`, `membership_digest`) exist so that *observing* a run
cannot change it -- the golden-digest replay tests depend on it, and the
policy-tournament comparisons are only fair if reading the estimate does
not move the estimate.  The runtime enforces this only indirectly (a
digest divergence after the fact); this rule enforces it statically:
anything reachable from an observation root that

  * draws from an Rng (stream state is folded into replay),
  * calls an engine mutator (scheduling, publishing, interning,
    prewarm/shrink/crash operations, record_* notifications), or
  * writes a member (trailing-underscore convention, `++`/`--`/
    assignment/compound assignment)

is flagged with the root-to-violation path.

`ProbeRegistry::add` is exempt as an edge target (registering a probe
mutates the registry, not the simulation), and `Rng` internals are not
traversed (a draw is already flagged at its call site).

Over-approximate by design; silence a reviewed exception with
// lint:allow(observer-purity).
"""

from __future__ import annotations

import re

from cppmodel import Finding, allowed_at
from cppmodel.lexer import IDENT_RE

RULE = "observer-purity"

RULE_DOCS = {
    RULE: (
        "code reachable from a PolicyView/probe/digest observation root "
        "draws from an Rng, calls an engine mutator, or writes state "
        "folded into state_digest; observation must not perturb replay"
    ),
}

# Observation roots.
ROOT_CONST_CLASSES = {"PolicyView"}
ROOT_QUALIFIED = {
    "ProbeRegistry::sample",
    "ProbeRegistry::digest",
}
ROOT_NAMES = {"state_digest", "membership_digest", "register_probes"}

DRAW_METHODS = {
    "next",
    "uniform",
    "uniform_int",
    "bernoulli",
    "weighted_index",
    "exponential",
    "normal",
    "fork",
}

MUTATOR_CALLS = {
    "schedule_at",
    "schedule_after",
    "subscribe",
    "publish",
    "send",
    "intern",
    "cancel",
    "prewarm_function",
    "shrink_warm_pool",
    "flush_all",
    "crash_worker",
    "record_arrival",
    "record_completion",
    "record_execution",
    "record_worker_ready",
    "record_failure",
    "reset",
    "reset_for_reuse",
}

# Member-container operations: mutating a trailing-underscore receiver.
CONTAINER_MUTATORS = {
    "push_back",
    "emplace_back",
    "push_front",
    "insert",
    "emplace",
    "erase",
    "clear",
    "assign",
    "resize",
    "pop_back",
}

_MEMBER_RE = re.compile(r"\w_$")

# Tokens that write through to their left-hand side.  Compound operators
# tokenize as single tokens, so '=' here is exactly plain assignment.
WRITE_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
             "<<=", ">>="}
INCDEC_OPS = {"++", "--"}


def _roots(model):
    roots = []
    for fn in model.functions:
        if fn.cls in ROOT_CONST_CLASSES and fn.is_const:
            roots.append(fn)
        elif fn.qualified in ROOT_QUALIFIED:
            roots.append(fn)
        elif fn.name in ROOT_NAMES:
            roots.append(fn)
    return roots


def _skip_edge(_caller, _call, callee) -> bool:
    # Registering a probe mutates the registry, not the simulation; Rng
    # internals are not traversed (the draw call site itself is flagged).
    if callee.qualified == "ProbeRegistry::add":
        return True
    if callee.cls == "Rng":
        return True
    return False


def _member_writes(tokens, spans):
    """(line, member name, op) for writes to trailing-underscore
    identifiers inside the given token spans."""
    out = []
    for start, end in spans:
        for i in range(start, end):
            t, line = tokens[i]
            if not IDENT_RE.fullmatch(t) or not _MEMBER_RE.search(t):
                continue
            nxt = tokens[i + 1][0] if i + 1 < end else ""
            prev = tokens[i - 1][0] if i > start else ""
            if nxt in WRITE_OPS:
                # `[x_ = init]` is a lambda init-capture, not a member
                # write; the capture copies.
                if prev in ("[", ","):
                    continue
                out.append((line, t, nxt))
            elif nxt in INCDEC_OPS or prev in INCDEC_OPS:
                out.append((line, t, nxt if nxt in INCDEC_OPS else prev))
    return out


def run(model) -> list[Finding]:
    findings: list[Finding] = []
    reach = model.reachable_from(_roots(model), skip_edge=_skip_edge)
    reported: set[tuple[str, int, str]] = set()

    def report(fn, sf, line, what, leaf):
        if RULE in allowed_at(sf.allow, line):
            return
        key = (fn.file, line, leaf)
        if key in reported:
            return
        reported.add(key)
        findings.append(
            Finding(
                fn.file,
                line,
                RULE,
                f"{what} inside observation-reachable code; PolicyView/"
                "probe/digest paths must be pure reads or the golden-"
                "digest replay diverges",
                list(reach[id(fn)]) + [leaf],
            )
        )

    for fn in model.functions:
        if id(fn) not in reach:
            continue
        sf = model.file_of(fn)
        for call in fn.calls:
            if call.is_method and call.name in DRAW_METHODS and \
                    call.receiver:
                receiver = ".".join(call.receiver)
                report(
                    fn, sf, call.line,
                    f"Rng draw '{receiver}.{call.name}()' "
                    "(stream state advances)",
                    f"{receiver}.{call.name}()",
                )
                continue
            if call.name in MUTATOR_CALLS:
                report(
                    fn, sf, call.line,
                    f"engine mutator call '{call.name}(...)'",
                    f"{call.name}()",
                )
                continue
            if call.name in CONTAINER_MUTATORS and call.is_method and \
                    call.receiver and \
                    _MEMBER_RE.search(call.receiver[-1]):
                receiver = ".".join(call.receiver)
                report(
                    fn, sf, call.line,
                    f"member container mutation '{receiver}."
                    f"{call.name}(...)'",
                    f"{receiver}.{call.name}()",
                )
        spans = []
        if fn.init_span is not None:
            spans.append(fn.init_span)
        spans.append(fn.body_span)
        for line, member, op in _member_writes(sf.tokens, spans):
            report(
                fn, sf, line,
                f"member write '{member} {op}'",
                f"{member} {op}",
            )
    findings.sort(key=lambda f: f.sort_key())
    return findings
