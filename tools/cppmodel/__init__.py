"""cppmodel: the shared C++ front end for the Xanadu static-analysis family.

Every linter in tools/ used to carry its own copy of the same machinery --
a comment/string stripper, a tokenizer, function extraction, a name-based
call graph, suppression-comment parsing, report emitters.  This package is
the single implementation they all share, so there is exactly one tokenizer
and one call graph to maintain (and one place where a front-end bug can
hide).

The front-end contract (see ARCHITECTURE.md "Static analysis &
verification"):

  * Parsing is token-level, not a real C++ parse.  Everything downstream
    must over-approximate: a missed refinement may cause a false positive
    (silenced per line with an allow comment), never a false negative by
    design.
  * `SourceModel` loads a set of source roots ONCE -- strips comments and
    strings, tokenizes, extracts function definitions (constructor
    initializer lists, in-class bodies and lambda bodies included, with
    enclosing-class qualification), parses quoted includes, and indexes
    per-line suppression comments.  All analyses run off that one parse.
  * Call edges resolve overload sets by argument arity and -- for call
    sites with an explicit template argument list (`f<T>(x)`) -- by
    template-parameter compatibility, falling back to the whole overload
    set when nothing admits the site (sound, not precise).
  * Findings are `report.Finding` values; `report.write_json` /
    `report.write_sarif` emit the merged machine-readable reports.
"""

from __future__ import annotations

from .functions import (  # noqa: F401
    CallSite,
    Function,
    extract_functions,
    match_paren,
    receiver_expr,
    split_args,
)
from .lexer import (  # noqa: F401
    IDENT_RE,
    KEYWORDS,
    strip_comments_and_strings,
    tokenize,
)
from .model import SourceFile, SourceModel  # noqa: F401
from .report import Finding, write_json, write_sarif  # noqa: F401
from .suppress import allow_sets, allowed_at  # noqa: F401

SOURCE_SUFFIXES = {".cpp", ".hpp", ".cc", ".hh", ".h"}
