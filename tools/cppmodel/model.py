"""SourceModel: one shared parse of the C++ source roots.

Loading a root walks every C++ source file under it exactly once and
captures, per file: the raw and comment-stripped lines, the token stream,
the per-line suppression sets, the quoted includes, and the function
definitions.  Whole-model indexes (overload sets, declared-name sets for
types several analyses care about, handler reachability, the reverse call
graph) are built on top, so `xan_lint` can run every analysis off this one
parse instead of four separate ones.
"""

from __future__ import annotations

import re
from pathlib import Path

from .functions import CallSite, Function, extract_functions
from .lexer import strip_comments_and_strings, tokenize
from .suppress import allow_sets

SOURCE_SUFFIXES = {".cpp", ".hpp", ".cc", ".hh", ".h"}

# Calls that register event-time callbacks; a function containing one is a
# handler root (its lambdas execute inside the event loop).
SCHEDULING_CALLS = {"schedule_after", "schedule_at", "subscribe"}

INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"([^"]+)"')

# Declared-name sets shared by the analyses.  Trailing underscore on the Rng
# capture = the member naming convention; the others catch locals too.
MEMBER_RNG_DECL_RE = re.compile(r"\bRng\s+(\w+_)\s*[;{=(]")
UNORDERED_DECL_RE = re.compile(
    r"\bunordered_(?:multi)?(?:map|set)\s*<[^;()]*?>\s+(\w+)\s*(?:;|=|\{)"
)
ARENA_DECL_RE = re.compile(r"\bArena\s*[&*]?\s+(\w+)\s*[;{=(,)]")
INTERNER_DECL_RE = re.compile(r"\bStringInterner\s*[&*]?\s+(\w+)\s*[;{=(,)]")
ARENA_CONTAINER_DECL_RE = re.compile(
    r"\b(?:ArenaVector\s*<[^;()]*?>|NodeRecordList|ArenaString)"
    r"\s+(\w+)\s*[;{=(]"
)


class SourceFile:
    """Everything the front end extracted from one file."""

    def __init__(self, path: Path, root: Path, display: str):
        self.path = path
        self.root = root
        self.display = display
        try:
            rel = path.relative_to(root)
        except ValueError:
            rel = Path(path.name)
        self.rel = rel
        # Top-level directory bucket (the layer for src/ files); files
        # directly under the root bucket as the root's own name.
        self.top = rel.parts[0] if len(rel.parts) > 1 else root.name
        self.raw_lines: list[str] = []
        self.code_lines: list[str] = []
        self.tokens: list[tuple[str, int]] = []
        self.allow: list[set[str]] = []
        self.includes: list[tuple[str, int]] = []  # (quoted path, 1-based)
        self.functions: list[Function] = []


class SourceModel:
    """The shared parse: files, functions, and whole-model indexes."""

    def __init__(self, roots: list[Path], parse: bool = True):
        self.roots = roots
        #: parse=False loads raw/stripped lines, includes and suppression
        #: sets only -- enough for the line- and include-level rules without
        #: paying for tokenization (layer_lint standalone mode).
        self.parse = parse
        self.files: list[SourceFile] = []
        self.by_display: dict[str, SourceFile] = {}
        self.functions: list[Function] = []
        self.by_name: dict[str, list[Function]] = {}
        self.member_rng_names: set[str] = set()
        self.unordered_names: set[str] = set()
        self.arena_names: set[str] = set()
        self.interner_names: set[str] = set()
        self.arena_container_names: set[str] = set()
        self._reach: dict[int, list[str]] | None = None
        self._callers: dict[int, list[tuple[Function, CallSite]]] | None = \
            None

    # -- loading ----------------------------------------------------------

    def load(self) -> "SourceModel":
        for root in self.roots:
            for path in sorted(
                p
                for p in root.rglob("*")
                if p.suffix in SOURCE_SUFFIXES and p.is_file()
            ):
                display = str(path)
                raw = path.read_text(encoding="utf-8", errors="replace")
                sf = SourceFile(path, root, display)
                sf.raw_lines = raw.splitlines()
                sf.allow = allow_sets(sf.raw_lines)
                for index, line in enumerate(sf.raw_lines):
                    match = INCLUDE_RE.match(line)
                    if match:
                        sf.includes.append((match.group(1), index + 1))
                code = strip_comments_and_strings(raw)
                sf.code_lines = code.splitlines()
                for pattern, names in (
                    (MEMBER_RNG_DECL_RE, self.member_rng_names),
                    (UNORDERED_DECL_RE, self.unordered_names),
                    (ARENA_DECL_RE, self.arena_names),
                    (INTERNER_DECL_RE, self.interner_names),
                    (ARENA_CONTAINER_DECL_RE, self.arena_container_names),
                ):
                    for match in pattern.finditer(code):
                        # `Arena& operator=(...)` matches the decl shape;
                        # `operator` is never a receiver name.
                        if match.group(1) != "operator":
                            names.add(match.group(1))
                if self.parse:
                    sf.tokens = tokenize(code)
                    sf.functions = extract_functions(sf.tokens, display)
                    for fn in sf.functions:
                        self.functions.append(fn)
                        self.by_name.setdefault(fn.name, []).append(fn)
                self.files.append(sf)
                self.by_display[display] = sf
        return self

    def file_of(self, fn: Function) -> SourceFile:
        return self.by_display[fn.file]

    # -- overload resolution ----------------------------------------------

    def resolve(self, name: str, nargs: int,
                targs: int | None = None) -> list[Function]:
        """Definitions of `name` a call with `nargs` arguments (and, when
        given, `targs` explicit template arguments) can reach.  Filtered by
        arity, then by template-parameter compatibility; each filter falls
        back to the previous set when it would empty it (out-of-line
        definitions drop their declaration's defaults, macro sites can
        miscount) so the graph stays an over-approximation."""
        candidates = list(self.by_name.get(name, ()))
        matched = [
            fn
            for fn in candidates
            if fn.min_arity <= nargs
            and (fn.max_arity is None or nargs <= fn.max_arity)
        ]
        if not matched:
            matched = candidates
        if targs is not None:
            # An explicit template argument list only ever calls a
            # template, so non-template definitions are excluded outright:
            # `std::get<T>(v)` must not edge into an unrelated non-template
            # get().  Among templates, the parameter count must admit the
            # site (packs widen upward, defaulted template params
            # downward).
            matched = [
                fn
                for fn in matched
                if fn.template_params is not None
                and (fn.tparam_pack or targs <= fn.template_params)
            ]
        return matched

    def resolve_call(self, caller: Function, call: CallSite) \
            -> list[Function]:
        """resolve(), but in the context of `caller`: calls through local
        lambda bindings stay inside the caller (their bodies are already
        attributed to it) instead of edging to same-named functions."""
        if call.name in caller.local_callables:
            return []
        return self.resolve(call.name, call.nargs, call.targs)

    # -- handler reachability ---------------------------------------------

    def handler_reachability(self) -> dict[int, list[str]]:
        """id(fn) -> root chain for every function transitively callable
        from a handler root (a function that schedules or subscribes
        callbacks -- its lambdas run at event time, and token-level
        analysis attributes lambda bodies to the enclosing function)."""
        if self._reach is not None:
            return self._reach
        reach: dict[int, list[str]] = {}
        worklist: list[Function] = []
        for fn in self.functions:
            if any(c.name in SCHEDULING_CALLS for c in fn.calls):
                reach[id(fn)] = [f"{fn.qualified}()"]
                worklist.append(fn)
        while worklist:
            fn = worklist.pop()
            chain = reach[id(fn)]
            for call in fn.calls:
                for callee in self.resolve_call(fn, call):
                    if id(callee) not in reach:
                        reach[id(callee)] = chain + [
                            f"{callee.qualified}()"
                        ]
                        worklist.append(callee)
        self._reach = reach
        return reach

    def handler_chain(self, fn: Function) -> list[str] | None:
        return self.handler_reachability().get(id(fn))

    # -- reverse call graph ------------------------------------------------

    def callers(self) -> dict[int, list[tuple[Function, CallSite]]]:
        """id(callee) -> [(caller, call site)], resolved per site."""
        if self._callers is not None:
            return self._callers
        callers: dict[int, list[tuple[Function, CallSite]]] = {}
        for fn in self.functions:
            for call in fn.calls:
                for callee in self.resolve_call(fn, call):
                    callers.setdefault(id(callee), []).append((fn, call))
        self._callers = callers
        return callers

    # -- reachability from arbitrary roots ---------------------------------

    def reachable_from(
        self, roots: list[Function],
        skip_edge=None,
    ) -> dict[int, list[str]]:
        """id(fn) -> call chain for everything transitively callable from
        `roots`.  `skip_edge(caller, call, callee)` (optional) vetoes
        individual edges."""
        reach: dict[int, list[str]] = {}
        worklist: list[Function] = []
        for fn in roots:
            if id(fn) not in reach:
                reach[id(fn)] = [f"{fn.qualified}()"]
                worklist.append(fn)
        while worklist:
            fn = worklist.pop()
            chain = reach[id(fn)]
            for call in fn.calls:
                for callee in self.resolve_call(fn, call):
                    if skip_edge is not None and \
                            skip_edge(fn, call, callee):
                        continue
                    if id(callee) not in reach:
                        reach[id(callee)] = chain + [
                            f"{callee.qualified}()"
                        ]
                        worklist.append(callee)
        return reach
