"""Comment/string stripping and tokenization (shared C++ front end).

Extracted verbatim from the PR-6 flow_lint implementation so every analysis
sees the same token stream; see the package docstring for the contract.
"""

from __future__ import annotations

import re

IDENT_RE = re.compile(r"[A-Za-z_]\w*")

# Identifiers that look like calls but are control flow / operators.  The
# cast keywords matter for template-call recognition: `static_cast<T>(x)`
# must not become a call edge to a function named static_cast.
KEYWORDS = {
    "if",
    "for",
    "while",
    "switch",
    "catch",
    "return",
    "sizeof",
    "alignof",
    "decltype",
    "static_assert",
    "new",
    "delete",
    "throw",
    "case",
    "do",
    "else",
    "co_await",
    "co_return",
    "noexcept",
    "assert",
    "defined",
    "static_cast",
    "dynamic_cast",
    "reinterpret_cast",
    "const_cast",
}

TOKEN_RE = re.compile(
    r"""
    (?P<id>[A-Za-z_]\w*)
  | (?P<num>(?:0[xX][0-9a-fA-F'.pP+\-]+|\d[\w'.]*(?:[eEpP][+\-]?\d+)?))
  | (?P<punct>->|::|<<=|>>=|<=>|\+\+|--|&&|\|\||==|!=|<=|>=|\+=|-=|\*=|/=|%=|&=|\|=|\^=|<<|>>|\.\.\.|.)
    """,
    re.VERBOSE,
)


def strip_comments_and_strings(text: str) -> str:
    """Replaces comment and string/char-literal bodies with spaces, keeping
    newlines so line numbers survive."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            if j == -1:
                j = n
            out.append(" " * (j - i))
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n if j == -1 else j + 2
            out.append(
                "".join("\n" if ch == "\n" else " " for ch in text[i:j])
            )
            i = j
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n:
                if text[j] == "\\":
                    j += 2
                    continue
                if text[j] == quote or text[j] == "\n":
                    j += 1
                    break
                j += 1
            out.append(quote + " " * max(0, j - i - 2) + quote)
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


def tokenize(code: str) -> list[tuple[str, int]]:
    """(token text, 1-based line) over comment/string-stripped code."""
    tokens = []
    line = 1
    pos = 0
    for match in TOKEN_RE.finditer(code):
        line += code.count("\n", pos, match.start())
        pos = match.start()
        text = match.group(0)
        if not text.strip():
            continue  # The catch-all punct branch matches whitespace too.
        tokens.append((text, line))
    return tokens
