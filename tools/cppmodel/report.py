"""Finding records and machine-readable report emitters (JSON + SARIF).

One Finding type serves every analysis; the emitters take the rule
catalogue as a parameter so `xan_lint` can write a single merged report
covering line rules, layering rules, and the interprocedural analyses.
"""

from __future__ import annotations

import json
from pathlib import Path


class Finding:
    def __init__(self, file: str, line: int, rule: str, message: str,
                 path: list[str] | None = None):
        self.file = file
        self.line = line
        self.rule = rule
        self.message = message
        self.path = path or []

    def __str__(self) -> str:
        text = f"{self.file}:{self.line}: [{self.rule}] {self.message}"
        if self.path:
            text += "\n    path: " + " -> ".join(self.path)
        return text

    def as_dict(self) -> dict:
        return {
            "file": self.file,
            "line": self.line,
            "rule": self.rule,
            "message": self.message,
            "path": self.path,
        }

    def sort_key(self) -> tuple:
        return (self.file, self.line, self.rule)


def write_json(findings: list[Finding], out_path: Path) -> None:
    out_path.write_text(
        json.dumps(
            {"findings": [f.as_dict() for f in findings]}, indent=2
        )
        + "\n",
        encoding="utf-8",
    )


def write_sarif(findings: list[Finding], out_path: Path,
                tool_name: str, rule_docs: dict[str, str],
                information_uri: str | None = None) -> None:
    """SARIF 2.1.0, uploadable to GitHub code scanning."""
    results = []
    for f in findings:
        message = f.message
        if f.path:
            message += " | path: " + " -> ".join(f.path)
        results.append(
            {
                "ruleId": f.rule,
                "level": "error",
                "message": {"text": message},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {"uri": f.file},
                            "region": {"startLine": max(1, f.line)},
                        }
                    }
                ],
            }
        )
    sarif = {
        "version": "2.1.0",
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": tool_name,
                        "informationUri": information_uri
                        or f"tools/{tool_name}.py",
                        "rules": [
                            {
                                "id": rule,
                                "shortDescription": {"text": doc},
                            }
                            for rule, doc in sorted(rule_docs.items())
                        ],
                    }
                },
                "results": results,
            }
        ],
    }
    out_path.write_text(json.dumps(sarif, indent=2) + "\n", encoding="utf-8")
