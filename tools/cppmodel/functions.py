"""Function extraction and call-site modelling (shared C++ front end).

Grown out of the PR-6 flow_lint extractor, with three front-end upgrades
every analysis now shares:

  * Enclosing-class qualification.  A linear scope pre-pass tracks
    class/struct bodies, so an in-class definition of `now()` inside
    `class PolicyView` is modelled as `PolicyView::now` -- analyses can
    root themselves at a class's methods without demanding out-of-line
    definitions.
  * Template-instantiation tracking.  Call sites with an explicit template
    argument list (`f<double>(x, rng)`) are recognised as calls (the
    PR-6 extractor required `(` directly after the name, so such sites
    produced no call edge at all -- a soundness hole), and record how many
    template arguments the site supplies.  Definitions preceded by a
    `template <...>` header record their template-parameter count and
    whether a parameter pack makes it open-ended, so overload resolution
    can filter per instantiation (see model.SourceModel.resolve).
  * Uniform call sites.  Every call records its receiver chain and const
    qualification facts, so rules about *who* is called on *what* (foreign
    shard simulators, member RNG streams, member containers) share one
    extraction.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from .lexer import IDENT_RE, KEYWORDS

Token = tuple[str, int]


@dataclass
class CallSite:
    """One call expression inside a function body."""

    name: str
    line: int
    end_line: int
    name_idx: int
    open_idx: int
    close_idx: int
    nargs: int
    #: Number of explicit template arguments at the site, or None when the
    #: call has no template argument list.
    targs: int | None
    is_method: bool
    #: Plain identifier receiver chain, innermost first (`a.b->c.m()` ->
    #: ("a", "b", "c")); empty for free calls or non-trivial receivers.
    receiver: tuple[str, ...]


@dataclass
class Function:
    """One function definition: its body token span plus extracted facts."""

    name: str
    qualified: str
    cls: str | None
    file: str
    line: int
    end_line: int = 0
    # Admitted argument-count range of this definition's parameter list;
    # max_arity is None for variadic (`...`) parameter packs.
    min_arity: int = 0
    max_arity: int | None = 0
    #: Template-parameter count of the `template <...>` header, or None for
    #: a non-template definition.
    template_params: int | None = None
    #: True when the template header carries a parameter pack.
    tparam_pack: bool = False
    is_const: bool = False
    calls: list[CallSite] = field(default_factory=list)
    #: Top-level token groups of the parameter list.
    param_groups: list[list[str]] = field(default_factory=list)
    #: Token-index spans attributed to this function: the ctor initializer
    #: list (if any) and the brace body.  Analyses re-walk these for
    #: facts the generic extraction does not model (member writes,
    #: statement-level taint).
    init_span: tuple[int, int] | None = None
    body_span: tuple[int, int] = (0, 0)
    #: Local names bound to lambdas (`auto fold = [...]`).  Calls through
    #: these names stay inside this function (the lambda body is already
    #: attributed here) and must not resolve to same-named free functions.
    local_callables: set[str] = field(default_factory=set)


def match_paren(tokens: list[Token], open_idx: int) -> int:
    """Index of the ')' matching tokens[open_idx] == '('."""
    depth = 0
    for i in range(open_idx, len(tokens)):
        t = tokens[i][0]
        if t == "(":
            depth += 1
        elif t == ")":
            depth -= 1
            if depth == 0:
                return i
    return len(tokens) - 1


def split_args(tokens: list[Token], open_idx: int,
               close_idx: int) -> list[list[str]]:
    """Top-level comma-separated argument token groups of a call."""
    args: list[list[str]] = []
    current: list[str] = []
    depth = 0
    for i in range(open_idx + 1, close_idx):
        t = tokens[i][0]
        if t in "([{":
            depth += 1
        elif t in ")]}":
            depth -= 1
        if t == "," and depth == 0:
            args.append(current)
            current = []
        else:
            current.append(t)
    if current:
        args.append(current)
    return args


def receiver_chain(tokens: list[Token], dot_idx: int) -> tuple[str, ...]:
    """Walks left from the '.'/'->' before a method name, collecting the
    receiver's identifier chain (innermost first): `a.b->c.m(` -> (a, b, c).
    Stops at anything that is not a plain ident/./-> chain (call results,
    array indexing) and returns what it has."""
    chain: list[str] = []
    i = dot_idx
    while i > 0:
        prev = tokens[i - 1][0]
        if IDENT_RE.fullmatch(prev):
            chain.append(prev)
            i -= 1
            if i > 0 and tokens[i - 1][0] in (".", "->"):
                i -= 1
                continue
            break
        break
    chain.reverse()
    return tuple(chain)


def receiver_expr(tokens: list[Token], dot_idx: int,
                  max_tokens: int = 48) -> list[str]:
    """The full postfix receiver expression left of tokens[dot_idx]
    ('.'/'->'), including call and subscript results:
    `owner().shard(i).simulator().m(` -> the tokens of
    `owner().shard(i).simulator()`.  Walks backward over balanced ()/[]
    groups and ident/./->/:: links; bounded, returns what it collected."""
    out: list[str] = []
    i = dot_idx - 1
    expect_primary = True
    while i >= 0 and len(out) < max_tokens:
        t = tokens[i][0]
        if expect_primary:
            if t in (")", "]"):
                closer, opener = (")", "(") if t == ")" else ("]", "[")
                depth = 0
                j = i
                while j >= 0:
                    tj = tokens[j][0]
                    if tj == closer:
                        depth += 1
                    elif tj == opener:
                        depth -= 1
                        if depth == 0:
                            break
                    out.append(tj)
                    j -= 1
                    if len(out) >= max_tokens:
                        return list(reversed(out))
                if j < 0:
                    break
                out.append(opener)
                i = j - 1
                # A call/subscript group extends the primary leftward: in
                # `shard(1).simulator()` the `(1)` group is followed (going
                # left) by its callee name `shard`, which belongs to the
                # same receiver chain.
                continue
            if t == "this" or (IDENT_RE.fullmatch(t) and t not in KEYWORDS):
                out.append(t)
                i -= 1
                expect_primary = False
                continue
            break
        if t in (".", "->", "::"):
            out.append(t)
            i -= 1
            expect_primary = True
            continue
        break
    return list(reversed(out))


def param_groups(tokens: list[Token], open_idx: int,
                 close_idx: int) -> list[list[str]]:
    """Top-level comma-separated token groups of a parameter list."""
    groups: list[list[str]] = []
    current: list[str] = []
    depth = 0
    for i in range(open_idx + 1, close_idx):
        t = tokens[i][0]
        if t in "(<[{":
            depth += 1
        elif t in ")>]}":
            depth -= 1
        if t == "," and depth == 0:
            groups.append(current)
            current = []
        else:
            current.append(t)
    if current:
        groups.append(current)
    return groups


def parse_arity(groups: list[list[str]]) -> tuple[int, int | None]:
    """(min, max) argument counts a parameter list admits.  A defaulted
    parameter (`=` at top level) lowers the minimum; a `...` pack lifts the
    maximum to unbounded (None)."""
    if len(groups) == 1 and groups[0] == ["void"]:
        groups = []
    min_arity = 0
    max_arity = 0
    variadic = False
    for group in groups:
        if "..." in group:
            variadic = True
            continue
        max_arity += 1
        if "=" not in group:
            min_arity += 1
    return min_arity, None if variadic else max_arity


def param_names_of_type(groups: list[list[str]], type_name: str,
                        drop: tuple[str, ...] = ()) -> list[str]:
    """Names of parameters whose declared type mentions `type_name`."""
    names: list[str] = []
    for group in groups:
        if type_name not in group:
            continue
        idents = [t for t in group if IDENT_RE.fullmatch(t)]
        # Drop type/qualifier identifiers; the parameter name is the last
        # identifier (if any -- unnamed params cannot be referenced).
        while idents and idents[-1] in (
            (type_name, "common", "const", "xanadu", "std", "sim") + drop
        ):
            idents.pop()
        if idents:
            names.append(idents[-1])
    return names


# Tokens admissible inside an explicit template argument list.  Anything
# else means the '<' was a comparison, not a template bracket.
_TARG_OK = re.compile(r"[A-Za-z_]\w*|\d[\w'.]*")
_TARG_PUNCT = {"::", ",", "*", "&", "...", "<", ">", ">>", "(", ")", "[",
               "]", "{", "}"}


def template_arg_span(tokens: list[Token], open_idx: int,
                      max_tokens: int = 64) -> tuple[int, int] | None:
    """If tokens[open_idx] == '<' opens a plausible template argument list,
    returns (index past the closing '>', top-level argument count); else
    None.  Handles '>>' closing two levels at once."""
    depth = 1
    groups = 1
    i = open_idx + 1
    limit = min(len(tokens), open_idx + 1 + max_tokens)
    while i < limit:
        t = tokens[i][0]
        if t == "<":
            depth += 1
        elif t == ">":
            depth -= 1
            if depth == 0:
                return i + 1, groups
        elif t == ">>":
            depth -= 2
            if depth == 0:
                return i + 1, groups
            if depth < 0:
                return None
        elif t == "," and depth == 1:
            groups += 1
        elif _TARG_OK.fullmatch(t) or t in _TARG_PUNCT or t in (
            "const", "typename", "unsigned", "signed", "long", "short",
            "int", "char", "bool", "float", "double", "void", "auto",
        ):
            pass
        else:
            return None
        i += 1
    return None


def _class_scopes(tokens: list[Token]) -> list[tuple[str, ...]]:
    """For each token index, the enclosing class/struct name chain
    (outermost first).  Linear scan; namespaces are deliberately not
    tracked (analyses match bare class names, not full paths)."""
    n = len(tokens)
    scopes: list[tuple[str, ...]] = [()] * n
    stack: list[tuple[str, int]] = []  # (class name, depth at its '{')
    current: tuple[str, ...] = ()
    depth = 0
    pending: str | None = None
    for i in range(n):
        t = tokens[i][0]
        scopes[i] = current
        if t == "{":
            depth += 1
            if pending is not None:
                stack.append((pending, depth))
                current = current + (pending,)
                pending = None
        elif t == "}":
            if stack and stack[-1][1] == depth:
                stack.pop()
                current = current[:-1]
            depth -= 1
        elif t in ("class", "struct"):
            if i > 0 and tokens[i - 1][0] == "enum":
                continue
            j = i + 1
            if j >= n or not IDENT_RE.fullmatch(tokens[j][0]):
                continue  # Anonymous struct or elaborated use.
            name = tokens[j][0]
            # A body '{' before any ';', '=', ')' means this is a
            # definition whose scope we should track (base clauses and
            # `final` sit between the name and the brace).
            k = j + 1
            while k < n and k < j + 64:
                tk = tokens[k][0]
                if tk == "{":
                    pending = name
                    break
                if tk in (";", "=", ")", "("):
                    break
                k += 1
        elif t == ";":
            pending = None
    return scopes


def _find_template_headers(tokens: list[Token]) -> dict[int, tuple[int, bool]]:
    """Maps the index just past each `template <...>` header's closing '>'
    to (template-parameter count, has parameter pack)."""
    headers: dict[int, tuple[int, bool]] = {}
    for i, (t, _line) in enumerate(tokens):
        if t != "template" or i + 1 >= len(tokens):
            continue
        if tokens[i + 1][0] != "<":
            continue
        span = template_arg_span(tokens, i + 1)
        if span is None:
            continue
        end, groups = span
        has_pack = any(tokens[k][0] == "..." for k in range(i + 2, end - 1))
        headers[end] = (groups, has_pack)
    return headers


def _attach_template(headers: dict[int, tuple[int, bool]],
                     tokens: list[Token], head_start: int,
                     max_gap: int = 24) -> tuple[int, bool] | None:
    """The template header governing a function head starting at token
    `head_start`, if one closes within `max_gap` tokens before it with only
    return-type tokens in between."""
    for end in range(head_start, max(head_start - max_gap, -1), -1):
        if end in headers:
            # The gap must not cross a statement/body boundary.
            for k in range(end, head_start):
                if tokens[k][0] in (";", "{", "}"):
                    return None
            return headers[end]
    return None


def extract_functions(tokens: list[Token], file: str) -> list[Function]:
    """Finds function definitions with bodies and attributes body tokens
    (including constructor initializer lists and lambda bodies) to them."""
    functions: list[Function] = []
    scopes = _class_scopes(tokens)
    headers = _find_template_headers(tokens)
    i = 0
    n = len(tokens)
    while i < n:
        t = tokens[i][0]
        if t != "(":
            i += 1
            continue
        # Candidate: name tokens directly before '('.
        j = i - 1
        name_parts: list[str] = []
        while j >= 0:
            tj = tokens[j][0]
            if IDENT_RE.fullmatch(tj) or tj == "~":
                name_parts.append(tj)
                j -= 1
                if j >= 0 and tokens[j][0] == "::":
                    name_parts.append("::")
                    j -= 1
                    continue
                break
            break
        if not name_parts:
            i += 1
            continue
        name_parts.reverse()
        head_start = j + 1
        simple = name_parts[-1]
        if simple in KEYWORDS or not re.fullmatch(r"[A-Za-z_]\w*|~\w+",
                                                  simple.lstrip("~")):
            i += 1
            continue
        close = match_paren(tokens, i)
        # Scan past qualifiers / trailing return / ctor-init list to decide
        # whether a body follows.
        k = close + 1
        body_open = -1
        init_start = -1
        saw_const = False
        while k < n:
            tk = tokens[k][0]
            if tk in ("const", "noexcept", "override", "final", "mutable",
                      "&", "&&"):
                saw_const = saw_const or tk == "const"
                k += 1
                continue
            if tk == "->":
                # Trailing return type: skip its tokens until '{' or ';'.
                k += 1
                while k < n and tokens[k][0] not in ("{", ";"):
                    k += 1
                continue
            if tk == ":":
                # Constructor initializer list: member name then one
                # balanced (...) or {...} per initializer, comma-separated.
                k += 1
                init_start = k
                while k < n:
                    while k < n and tokens[k][0] not in ("(", "{", ";"):
                        k += 1
                    if k >= n or tokens[k][0] == ";":
                        break
                    opener = tokens[k][0]
                    closer = ")" if opener == "(" else "}"
                    depth = 0
                    while k < n:
                        if tokens[k][0] == opener:
                            depth += 1
                        elif tokens[k][0] == closer:
                            depth -= 1
                            if depth == 0:
                                k += 1
                                break
                        k += 1
                    if k < n and tokens[k][0] == ",":
                        k += 1
                        continue
                    break
                continue
            if tk == "{":
                body_open = k
            break
        if body_open == -1:
            i = close + 1
            continue
        # Collect the body token span.
        depth = 0
        end = body_open
        while end < n:
            if tokens[end][0] == "{":
                depth += 1
            elif tokens[end][0] == "}":
                depth -= 1
                if depth == 0:
                    break
            end += 1
        qualified = "".join(name_parts)
        cls: str | None = None
        if "::" in name_parts:
            # Out-of-line definition: the class is the qualifier.
            idents = [p for p in name_parts if p != "::"]
            if len(idents) >= 2:
                cls = idents[-2]
        else:
            scope = scopes[head_start]
            if scope:
                cls = scope[-1]
                qualified = f"{cls}::{qualified}"
        fn = Function(simple, qualified, cls, file, tokens[i][1])
        fn.end_line = tokens[min(end, n - 1)][1]
        fn.param_groups = param_groups(tokens, i, close)
        fn.min_arity, fn.max_arity = parse_arity(fn.param_groups)
        fn.is_const = saw_const
        template = _attach_template(headers, tokens, head_start)
        if template is not None:
            fn.template_params, fn.tparam_pack = template
        if init_start != -1:
            # Constructor initializer lists execute code too -- per-class
            # member streams are forked there (FaultPlan) -- so their call
            # sites count as part of the body.  Missing this was caught by
            # the runtime cross-validation (rng_trace_test).
            fn.init_span = (init_start, body_open)
            _collect_calls(tokens, init_start, body_open, fn)
        fn.body_span = (body_open, end)
        _collect_calls(tokens, body_open, end, fn)
        # `auto name = [...]` / `name = [...]`: a local lambda binding.
        for b in range(body_open, end - 2):
            if tokens[b + 1][0] == "=" and tokens[b + 2][0] == "[" and \
                    IDENT_RE.fullmatch(tokens[b][0]) and \
                    tokens[b][0] not in KEYWORDS:
                fn.local_callables.add(tokens[b][0])
        functions.append(fn)
        i = end + 1
    return functions


def _collect_calls(tokens: list[Token], start: int, end: int,
                   fn: Function) -> None:
    """Records every call expression (plain `f(...)`, method `x.f(...)`,
    and explicit-template `f<T>(...)`) in a body token span."""
    for i in range(start, end):
        t, line = tokens[i]
        if not IDENT_RE.fullmatch(t) or t in KEYWORDS:
            continue
        targs: int | None = None
        open_idx = -1
        if i + 1 < end and tokens[i + 1][0] == "(":
            open_idx = i + 1
        elif i + 1 < end and tokens[i + 1][0] == "<":
            span = template_arg_span(tokens, i + 1)
            if span is not None and span[0] < end and \
                    tokens[span[0]][0] == "(":
                open_idx = span[0]
                targs = span[1]
        if open_idx == -1:
            continue
        is_method = i > 0 and tokens[i - 1][0] in (".", "->")
        receiver = receiver_chain(tokens, i - 1) if is_method else ()
        close = match_paren(tokens, open_idx)
        fn.calls.append(
            CallSite(
                name=t,
                line=line,
                end_line=tokens[min(close, len(tokens) - 1)][1],
                name_idx=i,
                open_idx=open_idx,
                close_idx=close,
                nargs=len(split_args(tokens, open_idx, close)),
                targs=targs,
                is_method=is_method,
                receiver=receiver,
            )
        )
