"""Suppression-comment handling (shared C++ front end).

Every linter honours the same escape hatch on the offending line or the
line directly above it:

    // lint:allow(<rule>[, <rule>...]) justification

`flow-lint:allow(...)` is accepted as a synonym -- PR 6 introduced it for
the interprocedural rules before the front end was unified, and annotated
lines should not need re-auditing just because the driver changed.
"""

from __future__ import annotations

import re

ALLOW_RES = (
    re.compile(r"//\s*lint:allow\(([a-z-]+(?:\s*,\s*[a-z-]+)*)\)"),
    re.compile(r"//\s*flow-lint:allow\(([a-z-]+(?:\s*,\s*[a-z-]+)*)\)"),
)


def allow_sets(raw_lines: list[str]) -> list[set[str]]:
    """Per-line suppressed rule names, 0-indexed."""
    sets: list[set[str]] = []
    for line in raw_lines:
        rules: set[str] = set()
        for pattern in ALLOW_RES:
            match = pattern.search(line)
            if match:
                rules.update(r.strip() for r in match.group(1).split(","))
        sets.append(rules)
    return sets


def allowed_at(allow: list[set[str]], lineno: int) -> set[str]:
    """Rules suppressed for 1-based lineno (that line or the line above)."""
    rules: set[str] = set()
    for probe in (lineno - 1, lineno - 2):
        if 0 <= probe < len(allow):
            rules |= allow[probe]
    return rules
