#!/usr/bin/env python3
"""Self-test for the xan_lint analysis family against the known-bad /
known-good fixtures in tools/fixtures/xan_lint/.

Each new interprocedural rule guards a correctness contract the runtime
only checks opportunistically (ASan death tests, the window_end throw +
TSan, golden-digest replay), so each rule gets the same treatment as the
code it guards: a regression suite that fails if the rule goes silent on
its distilled bug or noisy on the fixed form.

  bad_arena_member_escape.cpp  pre-fix PR-7 shape: arena allocation cached
                               on a member -- arena-escape must fire
  bad_arena_return_flow.cpp    interner view escaping through a helper's
                               return into a member container --
                               arena-escape must fire with the return-flow
                               path
  good_arena_reset_rebind.cpp  post-fix shape (rebind + value copies) --
                               must be silent
  bad_shard_direct_send.cpp    PR-9 in-window cross-shard sends (direct
                               peer simulator + shard(i) chain) --
                               shard-lookahead must fire twice
  good_shard_mailbox.cpp       closure mailed via LogicalProcess::send,
                               local-receiver scheduling -- must be silent
  bad_observer_mutation.cpp    PolicyView accessor that bumps a counter
                               and draws jitter -- observer-purity must
                               fire twice
  good_observer_pure.cpp       pure accessors + pure probe samplers --
                               must be silent
  template_overload.cpp        overload set via template: the explicit-
                               template call site must edge into the
                               template definition (shared-rng-draw fires
                               through it) and per-instantiation
                               resolution must keep the pure-overload
                               handler out of the path
  suppressed.cpp               one silenced instance of each new rule --
                               must be silent (pins the escape hatch)

plus the clean gate: every analysis must report zero unannotated findings
on src/ + bench/ off one shared parse, so CI fails on any new finding.

Run directly (`tools/xan_lint_selftest.py`) from the repository root, or
via `ctest -R xan_lint_selftest`.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

import flow_lint  # noqa: E402
import xan_lint  # noqa: E402
from analyses import arena_escape, observer_purity, shard_lookahead  # noqa: E402
from cppmodel import SourceModel  # noqa: E402

FIXTURES = Path(__file__).resolve().parent / "fixtures" / "xan_lint"


def check(condition: bool, label: str, failures: list[str]) -> None:
    print(("PASS" if condition else "FAIL") + f"  {label}")
    if not condition:
        failures.append(label)


def by_file(findings) -> dict[str, list]:
    grouped: dict[str, list] = {}
    for finding in findings:
        grouped.setdefault(Path(finding.file).name, []).append(finding)
    return grouped


def main() -> int:
    failures: list[str] = []
    model = SourceModel([FIXTURES]).load()

    arena = by_file(arena_escape.run(model))
    shard = by_file(shard_lookahead.run(model))
    observer = by_file(observer_purity.run(model))
    flow_findings, _ = flow_lint.run_on_model(model)
    flow = by_file(flow_findings)

    # --- arena-escape: member cache of an arena allocation. ---------------
    found = arena.get("bad_arena_member_escape.cpp", [])
    check(
        len(found) == 1 and found[0].rule == "arena-escape",
        "bad_arena_member_escape fires arena-escape exactly once",
        failures,
    )
    if found:
        check(
            "last_records_" in found[0].message
            and "allocate_for" in found[0].message,
            "bad_arena_member_escape names the member and the allocation",
            failures,
        )

    # --- arena-escape: interprocedural return flow. -----------------------
    found = arena.get("bad_arena_return_flow.cpp", [])
    check(
        len(found) == 1 and found[0].rule == "arena-escape",
        "bad_arena_return_flow fires arena-escape exactly once",
        failures,
    )
    if found:
        check(
            "view_label" in " -> ".join(found[0].path)
            and "retained_" in found[0].message,
            "bad_arena_return_flow reports the return-flow path into the "
            "member container",
            failures,
        )

    check(
        not arena.get("good_arena_reset_rebind.cpp"),
        "good_arena_reset_rebind is silent (rebind + value copies)",
        failures,
    )

    # --- shard-lookahead: direct cross-shard scheduling. ------------------
    found = shard.get("bad_shard_direct_send.cpp", [])
    check(
        len(found) == 2 and all(f.rule == "shard-lookahead" for f in found),
        "bad_shard_direct_send fires shard-lookahead exactly twice",
        failures,
    )
    if len(found) == 2:
        messages = " | ".join(f.message for f in found)
        check(
            "peer_sim_" in messages and "shard" in messages,
            "bad_shard_direct_send flags both the peer simulator and the "
            "shard(i) chain",
            failures,
        )
    check(
        not shard.get("good_shard_mailbox.cpp"),
        "good_shard_mailbox is silent (closure mailed via send, local "
        "scheduling untouched)",
        failures,
    )

    # --- observer-purity: observation perturbs replay. --------------------
    found = observer.get("bad_observer_mutation.cpp", [])
    check(
        len(found) == 2 and all(f.rule == "observer-purity" for f in found),
        "bad_observer_mutation fires observer-purity exactly twice",
        failures,
    )
    if len(found) == 2:
        messages = " | ".join(f.message for f in found)
        check(
            "jitter_rng_" in messages and "reads_" in messages,
            "bad_observer_mutation flags both the draw and the member "
            "write",
            failures,
        )
        check(
            all("PolicyView::estimate" in " -> ".join(f.path)
                for f in found),
            "bad_observer_mutation paths root at the PolicyView accessor",
            failures,
        )
    check(
        not observer.get("good_observer_pure.cpp"),
        "good_observer_pure is silent (pure accessors and samplers)",
        failures,
    )

    # --- template_overload: per-instantiation call-graph resolution. ------
    targets = model.resolve("mix_jitter", 2, 1)
    check(
        len(targets) == 1 and targets[0].template_params == 1,
        "mix_jitter<double>(...) resolves to exactly the template "
        "definition",
        failures,
    )
    check(
        all(fn.template_params is None
            for fn in model.resolve("mix_jitter", 1)),
        "mix_jitter(0.5) resolves to the non-template overload only",
        failures,
    )
    found = flow.get("template_overload.cpp", [])
    check(
        len(found) == 1 and found[0].rule == "shared-rng-draw",
        "template_overload fires shared-rng-draw exactly once (the "
        "explicit-template edge exists)",
        failures,
    )
    if found:
        path = " -> ".join(found[0].path)
        check(
            "on_template_tick" in path,
            "template_overload path roots at the explicit-template caller",
            failures,
        )
        check(
            "on_plain_tick" not in path,
            "template_overload keeps the pure-overload handler out of the "
            "path",
            failures,
        )

    # --- suppressions pin the escape hatch. -------------------------------
    for name, grouped in (
        ("arena-escape", arena),
        ("shard-lookahead", shard),
        ("observer-purity", observer),
    ):
        check(
            not grouped.get("suppressed.cpp"),
            f"suppressed.cpp is silent for {name} (lint:allow honoured)",
            failures,
        )

    # --- clean gate: zero findings on the real tree, one shared parse. ----
    repo_root = Path(__file__).resolve().parent.parent
    real = SourceModel([repo_root / "src", repo_root / "bench"]).load()
    merged = xan_lint.run_all(real)
    for finding in merged:
        print(f"      unexpected: {finding}")
    check(
        not merged,
        "src/ and bench/ are clean across all analyses (one shared parse)",
        failures,
    )

    if failures:
        print(
            f"xan_lint_selftest: {len(failures)} check(s) failed",
            file=sys.stderr,
        )
        return 1
    print("xan_lint_selftest: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
