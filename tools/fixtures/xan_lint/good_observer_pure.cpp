// xan_lint fixture: MUST stay silent.
//
// Pure observation: PolicyView accessors return stored state, and the
// registered probe samplers reduce over members without writing anything.
// Locals may be written freely -- purity is about state that outlives the
// observation.

namespace xanadu::fixture {

class PolicyView {
 public:
  double window_estimate() const { return window_sum_ / window_len_; }
  long arrival_total() const { return arrivals_; }

 private:
  double window_sum_ = 0.0;
  double window_len_ = 1.0;
  long arrivals_ = 0;
};

class ShardProbes {
 public:
  void register_probes(ProbeRegistry& registry) const {
    registry.add("fixture.warm_total", [this] { return warm_total(); });
  }

  double warm_total() const {
    double total = 0.0;
    for (double weight : weights_) {
      total += weight;  // Local accumulator: fine.
    }
    return total;
  }

 private:
  std::vector<double> weights_;
};

}  // namespace xanadu::fixture
