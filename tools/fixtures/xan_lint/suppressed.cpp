// xan_lint fixture: MUST stay silent.
//
// One deliberate instance of each new rule's shape, silenced with the
// shared suppression syntax (offending line or the line above).  Pins the
// escape hatch so annotated lines do not regress into findings.

namespace xanadu::fixture {

class SuppressedShapes {
 public:
  void begin() {
    // lint:allow(arena-escape) fixture: pinned suppression syntax
    keep_ = arena_.allocate_for<char>(16);
  }

  void on_suppressed_tick() {
    sim_.schedule_after(Duration::millis(2), [this] { begin(); },
                        "sup.tick");
    // lint:allow(shard-lookahead) fixture: pinned suppression syntax
    peer_bus_->publish(topic_, payload_);
  }

 private:
  Arena arena_;
  char* keep_ = nullptr;
  Simulator sim_;
  MessageBus* peer_bus_ = nullptr;
  TopicId topic_;
  Payload payload_;
};

class PolicyView {
 public:
  double noisy_probe() const {
    // lint:allow(observer-purity) fixture: pinned suppression syntax
    return probe_rng_.normal(0.0, 1.0);
  }

 private:
  Rng probe_rng_;
};

}  // namespace xanadu::fixture
