// xan_lint fixture: MUST fire shard-lookahead exactly twice.
//
// Distilled from the PR-9 in-window cross-shard send that the runtime
// window_end throw (and the TSan job) catches: handler-reachable code
// schedules directly into another shard's simulator instead of mailing a
// closure through LogicalProcess::send.

namespace xanadu::fixture {

class CrossShardDaemon {
 public:
  void on_window_tick() {
    sim_.schedule_after(Duration::millis(5), [this] { pump(); },
                        "daemon.tick");
    // BAD 1: direct schedule into the peer shard's simulator.
    peer_sim_->schedule_at(sim_.now(), make_probe_event(), "daemon.probe");
  }

  void pump() {
    // BAD 2: reaching across the shard set by index.
    owner_.shard(1).simulator().schedule_at(next_when_, drain_event(),
                                            "daemon.drain");
  }

 private:
  Simulator sim_;
  Simulator* peer_sim_ = nullptr;
  ShardSet owner_;
  TimePoint next_when_;
};

}  // namespace xanadu::fixture
