// xan_lint fixture: MUST fire shared-rng-draw exactly once, through the
// explicit-template call edge.
//
// "Overload set via template": mix_jitter has a non-template 1-arg
// overload (pure) and a 2-arg function template that draws from its Rng
// parameter.  The handler calling `mix_jitter<double>(0.5, rng_)` must
// produce a call edge into the template definition -- such sites were
// invisible to the pre-cppmodel extractor, so the shared member stream
// flowed in unnoticed -- while the handler calling the plain 1-arg
// overload must stay out of the finding's path (per-instantiation
// resolution must not smear the edge across the overload set).

namespace xanadu::fixture {

template <typename T>
double mix_jitter(double base, Rng& rng) {
  return base + static_cast<T>(rng.normal(0.0, 1.0));
}

double mix_jitter(double base) { return base * 2.0; }

class TemplateMixDaemon {
 public:
  void on_template_tick() {
    sim_.schedule_after(Duration::millis(1), [this] { flush(); },
                        "tmix.tick");
    last_ = mix_jitter<double>(0.5, rng_);  // BAD: shared stream flows in.
  }

  void on_plain_tick() {
    sim_.schedule_after(Duration::millis(1), [this] { flush(); },
                        "tmix.plain");
    last_ = mix_jitter(0.5);  // Pure overload: silent.
  }

  void flush() {}

 private:
  Simulator sim_;
  Rng rng_;
  double last_ = 0.0;
};

}  // namespace xanadu::fixture
