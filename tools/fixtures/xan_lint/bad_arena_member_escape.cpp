// xan_lint fixture: MUST fire arena-escape exactly once.
//
// Distilled from the pre-fix PR-7 request-state shape: a scratch block is
// carved out of the per-request arena and then cached on the long-lived
// tracker object.  After end_request() resets the arena the cached pointer
// dangles -- the exact use-after-reset the ASan death tests catch at
// runtime, reported statically here.

#include <cstddef>

namespace xanadu::fixture {

struct NodeRecord {
  int node = 0;
  double start_ms = 0.0;
};

class Arena {
 public:
  void* allocate(std::size_t bytes, std::size_t align);
  template <typename T>
  T* allocate_for(std::size_t count);
  void reset();
};

class RequestTracker {
 public:
  void begin_request() {
    NodeRecord* scratch = arena_.allocate_for<NodeRecord>(8);
    scratch[0].node = 1;
    last_records_ = scratch;  // BAD: member outlives reset_for_reuse.
  }

  void end_request() { arena_.reset(); }

 private:
  Arena arena_;
  NodeRecord* last_records_ = nullptr;
};

}  // namespace xanadu::fixture
