// xan_lint fixture: MUST stay silent.
//
// The post-fix PR-7 shape: request-lifetime records live in an
// arena-backed container that is rebound before the arena resets, and
// values (not pointers) are copied in.  Nothing outlives the arena.

#include <cstddef>

namespace xanadu::fixture {

struct GoodNodeRecord {
  int node = 0;
  double start_ms = 0.0;
};

class GoodArena {
 public:
  template <typename T>
  T* allocate_for(std::size_t count);
  void reset();
};

using GoodRecordList = GoodNodeRecord*;

class GoodRequestState {
 public:
  void begin_request() {
    GoodNodeRecord* scratch = arena.allocate_for<GoodNodeRecord>(8);
    scratch[0].node = 1;
    nodes.push_back(scratch[0]);  // Value copy into same-lifetime storage.
  }

  void reset_for_reuse() {
    nodes.rebind(arena);  // Rebind before the storage goes away.
    arena.reset();
  }

  GoodArena arena;
  ArenaVector<GoodNodeRecord> nodes;
};

}  // namespace xanadu::fixture
