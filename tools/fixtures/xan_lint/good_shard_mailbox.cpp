// xan_lint fixture: MUST stay silent.
//
// The blessed PR-9 route: the cross-shard effect is a closure mailed
// through LogicalProcess::send -- the call on the remote object sits
// inside the send's argument list, so it executes on the target shard
// after the deterministic window merge.  Local-receiver scheduling is
// always fine.

namespace xanadu::fixture {

class MailboxDaemon {
 public:
  void on_mailbox_tick() {
    sim_.schedule_after(Duration::millis(5), [this] { forward(); },
                        "mb.tick");
  }

  void forward() {
    lp_->send(target_, sim_.now() + latency_,
              [remote = remote_bus_, copy = payload_]() mutable {
                remote->deliver_bridged(topic_, copy);  // inside the mail
              },
              "mb.bridge");
    local_sim_.schedule_at(when_, drain_event(), "mb.local");
  }

 private:
  Simulator sim_;
  Simulator local_sim_;
  LogicalProcess* lp_ = nullptr;
  MessageBus* remote_bus_ = nullptr;
  ShardId target_;
  Duration latency_;
  TimePoint when_;
  TopicId topic_;
  Payload payload_;
};

}  // namespace xanadu::fixture
