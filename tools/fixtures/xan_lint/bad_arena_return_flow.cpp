// xan_lint fixture: MUST fire arena-escape exactly once, interprocedurally.
//
// The hazard hides behind a helper's return value: view_label() hands out
// a string_view into interner storage, and the caller retains it in a
// member container.  The finding must carry the return-flow path
// (view_label -> remember).

#include <string_view>
#include <vector>

namespace xanadu::fixture {

class StringInterner {
 public:
  int intern(std::string_view text);
  std::string_view view(int symbol) const;
};

class LabelCache {
 public:
  std::string_view view_label(int symbol) { return names_.view(symbol); }

  void remember(int symbol) {
    retained_.push_back(view_label(symbol));  // BAD: member retains view.
  }

 private:
  StringInterner names_;
  std::vector<std::string_view> retained_;
};

}  // namespace xanadu::fixture
