// xan_lint fixture: MUST fire observer-purity exactly twice.
//
// Distilled observation-perturbs-replay bug: the estimate accessor
// "refreshes" on read -- it bumps a counter folded into state_digest and
// draws smoothing jitter, so merely observing the run moves the golden
// digest.  Both violations sit one call edge below the PolicyView root.

namespace xanadu::fixture {

struct EngineState {
  long reads_ = 0;
  Rng jitter_rng_;
  double estimate_ = 0.0;
};

double refresh_estimate(EngineState& engine) {
  engine.reads_ += 1;  // BAD 1: member write on an observation path.
  // BAD 2: Rng draw on an observation path (stream state advances).
  return engine.estimate_ + engine.jitter_rng_.normal(0.0, 1.0);
}

class PolicyView {
 public:
  double estimate() const { return refresh_estimate(*engine_); }

 private:
  EngineState* engine_ = nullptr;
};

}  // namespace xanadu::fixture
