// flow_lint fixture: overload-set resolution by argument arity.
//
// Two same-named `sample` overloads: the one-argument form draws from the
// shared member stream, the two-argument form is pure.  SafeMixer's handler
// only ever calls the pure two-argument overload, so a name-based call
// graph would over-approximate -- merging both overloads and flagging the
// draw with a path rooted at SafeMixer.  Arity resolution must keep
// SafeMixer silent while RacyMixer, whose handler really calls the
// one-argument overload, still fires shared-rng-draw with its own root.
//
// This file is analyzer input only; it is never compiled or linked.

#include "common/rng.hpp"

namespace fixture_overload {

class SafeMixer {
 public:
  // Pure: no stream involved.  The only overload the handler reaches.
  double mix_sample(double a, double b) { return a + b; }

  void on_mix_request(int count) {
    for (int i = 0; i < count; ++i) {
      schedule_after(1.0, [this] { total_ += mix_sample(1.0, 2.0); });
    }
  }

  template <typename Fn>
  void schedule_after(double delay, Fn fn) {
    (void)delay;
    fn();
  }

 private:
  double total_ = 0.0;
};

class RacyMixer {
 public:
  double mix_sample(double scale) {
    return scale * rng_.normal(0.0, 1.0);  // BAD when handler-reachable.
  }

  void on_mix_tick(int count) {
    for (int i = 0; i < count; ++i) {
      schedule_after(1.0, [this] { total_ += mix_sample(0.5); });
    }
  }

  template <typename Fn>
  void schedule_after(double delay, Fn fn) {
    (void)delay;
    fn();
  }

 private:
  xanadu::common::Rng rng_;
  double total_ = 0.0;
};

}  // namespace fixture_overload
