// flow_lint fixture: wall-clock taint reaching a digest sink across a call
// edge.  flow_lint must report rule `nondet-taint` with the path
// stamp_millis() -> emit_report() -> trace_digest().
//
// This file is analyzer input only; it is never compiled or linked.

#include <chrono>
#include <cstdint>

namespace fixture_taint {

std::uint64_t trace_digest(std::uint64_t seed) { return seed * 1099511628211ULL; }

double stamp_millis() {
  // BAD: real time read inside code whose result feeds a digest.
  auto now = std::chrono::steady_clock::now().time_since_epoch();
  return std::chrono::duration<double, std::milli>(now).count();
}

std::uint64_t emit_report() {
  const double stamp = stamp_millis();
  return trace_digest(static_cast<std::uint64_t>(stamp));
}

}  // namespace fixture_taint
