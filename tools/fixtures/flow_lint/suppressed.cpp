// flow_lint fixture: the same hazards as the bad fixtures, but each carrying
// a reviewed // flow-lint:allow(<rule>) escape.  flow_lint must report zero
// findings here -- this pins the suppression syntax (same line and
// line-above placement both work).
//
// This file is analyzer input only; it is never compiled or linked.

#include <chrono>
#include <cstdint>

#include "common/rng.hpp"

namespace fixture_suppressed {

class QuietCluster {
 public:
  double sample(int worker) {
    double millis = 100.0;
    // Reviewed: consulted in a fixed serial order; the race sweep covers it.
    millis += rng_.normal(0.0, 25.0);  // flow-lint:allow(shared-rng-draw)
    return millis + worker;
  }

 private:
  xanadu::common::Rng rng_;
};

class QuietPipeline {
 public:
  void tick(int worker) { last_ = cluster_.sample(worker); }

  void arm(int batch) {
    for (int worker = 0; worker < batch; ++worker) {
      schedule_after(1.0, [this, worker] { tick(worker); });
    }
  }

  template <typename Fn>
  void schedule_after(double delay, Fn fn) {
    (void)delay;
    fn();
  }

 private:
  QuietCluster cluster_;
  double last_ = 0.0;
};

std::uint64_t quiet_digest(std::uint64_t seed) { return seed ^ 0x9e3779b9ULL; }

double quiet_stamp() {
  // flow-lint:allow(nondet-taint) reviewed: demo of line-above placement.
  auto now = std::chrono::steady_clock::now().time_since_epoch();
  return std::chrono::duration<double, std::milli>(now).count();
}

std::uint64_t quiet_report() {
  return quiet_digest(static_cast<std::uint64_t>(quiet_stamp()));
}

}  // namespace fixture_suppressed
