// flow_lint fixture: the pre-fix speculative provision-batch race, distilled.
//
// Mirrors the old Cluster::sample_provision_latency / daemon_build_sandbox
// shape: a tied batch of daemon events is scheduled at the same instant, and
// each handler draws cold-start jitter from the *shared* cluster stream --
// so firing order decides which draw lands on which worker.  flow_lint must
// report rule `shared-rng-draw` here, with a path from the handler root
// through the call edge to the draw.
//
// This file is analyzer input only; it is never compiled or linked.

#include "common/rng.hpp"

namespace fixture_bad {

class MiniCluster {
 public:
  double sample_provision_latency(int worker) {
    double millis = 100.0;
    millis += rng_.normal(0.0, 25.0);  // BAD: shared ambient stream.
    return millis + worker;
  }

 private:
  xanadu::common::Rng rng_;
};

class MiniPipeline {
 public:
  void daemon_build_sandbox(int worker) {
    latency_ = cluster_.sample_provision_latency(worker);
  }

  // Handler root: schedules the tied daemon-command batch; the lambda body
  // runs at event time.
  void speculate_batch(int batch) {
    for (int worker = 0; worker < batch; ++worker) {
      schedule_after(1.0, [this, worker] { daemon_build_sandbox(worker); });
    }
  }

  template <typename Fn>
  void schedule_after(double delay, Fn fn) {
    (void)delay;
    fn();
  }

 private:
  MiniCluster cluster_;
  double latency_ = 0.0;
};

}  // namespace fixture_bad
