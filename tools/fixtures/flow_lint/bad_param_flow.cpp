// flow_lint fixture: interprocedural stream lineage.  The shared member
// stream never appears textually at the draw site -- it is passed by
// reference into a helper, and the helper draws.  flow_lint must trace the
// lineage through the Rng& parameter and report `shared-rng-draw` at the
// helper's draw site.
//
// This file is analyzer input only; it is never compiled or linked.

#include "common/rng.hpp"

namespace fixture_param {

double jitter_helper(xanadu::common::Rng& stream, double stddev) {
  return stream.normal(0.0, stddev);  // BAD via caller: shared stream aliased.
}

class Forwarder {
 public:
  void on_command(int worker) { last_ = jitter_helper(rng_, 25.0) + worker; }

  void arm(int batch) {
    for (int worker = 0; worker < batch; ++worker) {
      schedule_after(1.0, [this, worker] { on_command(worker); });
    }
  }

  template <typename Fn>
  void schedule_after(double delay, Fn fn) {
    (void)delay;
    fn();
  }

 private:
  xanadu::common::Rng rng_;
  double last_ = 0.0;
};

}  // namespace fixture_param
