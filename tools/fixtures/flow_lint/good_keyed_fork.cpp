// flow_lint fixture: the post-fix shape.  Handler-reachable code derives a
// per-entity stream with fork_stream(stable_key) and draws from that local;
// flow_lint must report zero findings -- fork_stream() never consumes parent
// state and the local stream is not shared.
//
// This file is analyzer input only; it is never compiled or linked.

#include <cstdint>

#include "common/rng.hpp"

namespace fixture_good {

class KeyedCluster {
 public:
  double sample(std::uint64_t fn_id, std::uint64_t worker_id) const {
    double millis = 100.0;
    xanadu::common::Rng jitter = rng_.fork_stream(fn_id * 31 + worker_id);
    millis += jitter.normal(0.0, 25.0);  // OK: keyed per-provision stream.
    return millis;
  }

 private:
  xanadu::common::Rng rng_;
};

class KeyedPipeline {
 public:
  void build(std::uint64_t worker) { last_ = cluster_.sample(7, worker); }

  void speculate(std::uint64_t batch) {
    for (std::uint64_t worker = 0; worker < batch; ++worker) {
      schedule_after(1.0, [this, worker] { build(worker); });
    }
  }

  template <typename Fn>
  void schedule_after(double delay, Fn fn) {
    (void)delay;
    fn();
  }

 private:
  KeyedCluster cluster_;
  double last_ = 0.0;
};

}  // namespace fixture_good
