#!/usr/bin/env python3
"""Architecture-layering analyzer for the Xanadu simulation codebase.

ARCHITECTURE.md declares src/ as a layered stack (low to high):

    common < sim < workflow < cluster < platform < metrics < core < workload

This tool makes the declaration machine-checked.  It extracts the project
#include graph of src/ (quoted includes only; system headers are ignored)
and rejects:

  unknown-layer    a quoted include whose first path component is not a
                   declared layer (new top-level directories must be added
                   to LAYER_ORDER here and to ARCHITECTURE.md)
  missing-header   a quoted include that does not resolve to a file under
                   the scanned source root
  cpp-include      #include of a *.cpp / *.cc file (textual inclusion of a
                   translation unit)
  layering         an include whose target sits in a HIGHER layer than the
                   including file (a back-edge: lower layers must not know
                   about higher ones; this includes skips, e.g. sim/
                   including core/)
  include-cycle    a cycle in the file-level include graph (the layer rule
                   makes cross-layer cycles impossible, but same-layer
                   header cycles would still break builds subtly)

With --strict (the CI configuration), additionally:

  layer-skip       a downward include that skips MORE THAN ONE layer and is
                   not covered by the explicit allowlist below.  Deep skips
                   are how layering erodes: each one couples a high layer to
                   a low layer's internals without the intermediate layers
                   noticing.  The foundation layers (common, sim) are exempt
                   -- ids, hashing, Rng, Duration/TimePoint and the
                   Simulator are the vocabulary of every layer above them.
                   Every other deep skip must be added to
                   STRICT_SKIP_ALLOWLIST with a justification.

A finding can be suppressed per line with the same escape hatch the
determinism lint uses, on the offending line or the line directly above:

    // lint:allow(<rule>) justification

`--dot PATH` additionally writes the condensed layer-level include graph as
GraphViz DOT (edge labels carry include counts); the committed figure in
ARCHITECTURE.md ("Layering DAG") is generated this way.

Exit status is 0 when no unannotated violations remain, 1 otherwise.
Run directly (`tools/layer_lint.py src`) or via `ctest -R layer_lint`.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

# Declared layer order, lowest (most fundamental) first.  A file in layer L
# may include only layers at or below L.
LAYER_ORDER = (
    "common",
    "sim",
    "workflow",
    "cluster",
    "platform",
    "metrics",
    "core",
    "workload",
)

LAYER_INDEX = {name: index for index, name in enumerate(LAYER_ORDER)}

# Layers every higher layer may include regardless of distance: the shared
# vocabulary (ids, hashing, Result, Rng) and the virtual-time substrate
# (Duration, TimePoint, Simulator).
FOUNDATION_LAYERS = {"common", "sim"}

# --strict: deep downward skips (distance > 1) into non-foundation layers
# allowed on purpose, with why.  Growing this list is a design decision,
# not a lint tweak -- see ARCHITECTURE.md "Static analysis & verification".
STRICT_SKIP_ALLOWLIST = {
    ("platform", "workflow"):
        "the engine executes WorkflowDag nodes; FunctionSpec is its input",
    ("metrics", "cluster"):
        "the cost model reads the ResourceLedger balances",
    ("metrics", "workflow"):
        "trace digests walk the DAG structure",
    ("core", "cluster"):
        "the DispatchManager facade owns the Cluster it wires up",
    ("core", "platform"):
        "the facade composes the engine and policies",
    ("core", "workflow"):
        "the facade deploys DAGs and state-language documents",
    ("workload", "workflow"):
        "case studies and generators build DAGs",
    ("workload", "platform"):
        "schedule harnesses submit requests and read RequestResults",
    ("workload", "metrics"):
        "population runs aggregate cost summaries",
}

SOURCE_SUFFIXES = {".cpp", ".hpp", ".cc", ".hh", ".h"}

INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"([^"]+)"')
ALLOW_RE = re.compile(r"//\s*lint:allow\(([a-z-]+(?:\s*,\s*[a-z-]+)*)\)")


class Violation:
    def __init__(self, path: Path, lineno: int, rule: str, message: str):
        self.path = path
        self.lineno = lineno
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.lineno}: [{self.rule}] {self.message}"


def allowed_rules(lines: list[str], index: int) -> set[str]:
    rules: set[str] = set()
    for probe in (index, index - 1):
        if 0 <= probe < len(lines):
            match = ALLOW_RE.search(lines[probe])
            if match:
                rules.update(r.strip() for r in match.group(1).split(","))
    return rules


def extract_includes(path: Path) -> list[tuple[int, str, set[str]]]:
    """(lineno, include target, allowed rules) for every quoted include."""
    lines = path.read_text(encoding="utf-8", errors="replace").splitlines()
    out = []
    for index, line in enumerate(lines):
        match = INCLUDE_RE.match(line)
        if match:
            out.append((index + 1, match.group(1), allowed_rules(lines, index)))
    return out


def find_cycles(graph: dict[str, set[str]]) -> list[list[str]]:
    """Cycles in the file-level include graph, via iterative DFS.  Returns
    each cycle once, as the path of files around it."""
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {node: WHITE for node in graph}
    cycles: list[list[str]] = []
    for root in sorted(graph):
        if color[root] != WHITE:
            continue
        stack: list[tuple[str, list[str]]] = [(root, [])]
        path: list[str] = []
        on_path: set[str] = set()
        while stack:
            node, _ = stack[-1]
            if color.get(node, WHITE) == WHITE:
                color[node] = GRAY
                path.append(node)
                on_path.add(node)
                for child in sorted(graph.get(node, ())):
                    if color.get(child, WHITE) == WHITE:
                        stack.append((child, []))
                    elif color.get(child) == GRAY and child in on_path:
                        cycle = path[path.index(child):] + [child]
                        cycles.append(cycle)
            else:
                stack.pop()
                if color[node] == GRAY:
                    color[node] = BLACK
                    path.pop()
                    on_path.discard(node)
        # Defensive: the stack discipline above pops each GRAY node exactly
        # once, so path/on_path drain with the stack.
    return cycles


def emit_dot(
    layer_edges: dict[tuple[str, str], int], out_path: Path
) -> None:
    lines = ["digraph layering {", "  rankdir=BT;", '  node [shape=box, fontname="Helvetica"];']
    for layer in LAYER_ORDER:
        lines.append(f"  {layer};")
    for (src, dst), count in sorted(layer_edges.items()):
        lines.append(f'  {src} -> {dst} [label="{count}"];')
    lines.append("}")
    out_path.write_text("\n".join(lines) + "\n", encoding="utf-8")


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "root",
        nargs="?",
        default="src",
        help="source root to scan (default: src)",
    )
    parser.add_argument(
        "--dot",
        metavar="PATH",
        help="write the condensed layer-level include graph as GraphViz DOT",
    )
    parser.add_argument(
        "--list-layers", action="store_true", help="print the layer order and exit"
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="additionally ban >1-layer downward include skips outside the "
        "explicit allowlist (the CI configuration)",
    )
    args = parser.parse_args(argv)

    if args.list_layers:
        print(" < ".join(LAYER_ORDER))
        return 0

    root = Path(args.root)
    if not root.is_dir():
        print(f"layer_lint: no such directory: {root}", file=sys.stderr)
        return 2

    files = sorted(
        p for p in root.rglob("*") if p.suffix in SOURCE_SUFFIXES and p.is_file()
    )
    known = {str(p.relative_to(root)) for p in files}

    violations: list[Violation] = []
    file_graph: dict[str, set[str]] = {name: set() for name in known}
    layer_edges: dict[tuple[str, str], int] = {}

    for path in files:
        rel = path.relative_to(root)
        src_layer = rel.parts[0] if len(rel.parts) > 1 else None
        if src_layer is not None and src_layer not in LAYER_INDEX:
            violations.append(
                Violation(
                    rel, 1, "unknown-layer",
                    f"directory '{src_layer}' is not a declared layer; add it "
                    "to LAYER_ORDER and to ARCHITECTURE.md",
                )
            )
            continue

        for lineno, target, allowed in extract_includes(path):
            if target.endswith((".cpp", ".cc")) and "cpp-include" not in allowed:
                violations.append(
                    Violation(
                        rel, lineno, "cpp-include",
                        f'#include "{target}": translation units must not be '
                        "textually included",
                    )
                )
                continue
            dst_layer = target.split("/")[0]
            if dst_layer not in LAYER_INDEX:
                if "unknown-layer" not in allowed:
                    violations.append(
                        Violation(
                            rel, lineno, "unknown-layer",
                            f'#include "{target}": \'{dst_layer}\' is not a '
                            "declared layer",
                        )
                    )
                continue
            if target not in known:
                if "missing-header" not in allowed:
                    violations.append(
                        Violation(
                            rel, lineno, "missing-header",
                            f'#include "{target}": no such file under '
                            f"{root}/",
                        )
                    )
                continue
            file_graph[str(rel)].add(target)
            if src_layer is not None and dst_layer != src_layer:
                layer_edges[(src_layer, dst_layer)] = (
                    layer_edges.get((src_layer, dst_layer), 0) + 1
                )
                if (
                    LAYER_INDEX[dst_layer] > LAYER_INDEX[src_layer]
                    and "layering" not in allowed
                ):
                    violations.append(
                        Violation(
                            rel, lineno, "layering",
                            f"back-edge: layer '{src_layer}' (level "
                            f"{LAYER_INDEX[src_layer]}) must not include "
                            f"'{target}' from higher layer '{dst_layer}' "
                            f"(level {LAYER_INDEX[dst_layer]})",
                        )
                    )
                skip = LAYER_INDEX[src_layer] - LAYER_INDEX[dst_layer]
                if (
                    args.strict
                    and skip > 1
                    and dst_layer not in FOUNDATION_LAYERS
                    and (src_layer, dst_layer) not in STRICT_SKIP_ALLOWLIST
                    and "layer-skip" not in allowed
                ):
                    violations.append(
                        Violation(
                            rel, lineno, "layer-skip",
                            f'#include "{target}": \'{src_layer}\' skips '
                            f"{skip} layers down to '{dst_layer}'; deep "
                            "skips need a STRICT_SKIP_ALLOWLIST entry "
                            "(a design decision, not a lint tweak)",
                        )
                    )

    for cycle in find_cycles(file_graph):
        violations.append(
            Violation(
                Path(cycle[0]), 1, "include-cycle",
                "include cycle: " + " -> ".join(cycle),
            )
        )

    if args.strict:
        # A stale allowlist entry means the deep skip it justified is gone;
        # flag it so the list shrinks back as the coupling does.
        used = {
            pair for pair in layer_edges
            if LAYER_INDEX[pair[0]] - LAYER_INDEX[pair[1]] > 1
            and pair[1] not in FOUNDATION_LAYERS
        }
        for pair in sorted(STRICT_SKIP_ALLOWLIST.keys() - used):
            violations.append(
                Violation(
                    Path("tools/layer_lint.py"), 1, "layer-skip",
                    f"stale allowlist entry {pair}: no such deep skip "
                    "remains; remove it",
                )
            )

    if args.dot:
        emit_dot(layer_edges, Path(args.dot))
        print(f"layer_lint: wrote {args.dot}")

    for violation in violations:
        print(violation)
    if violations:
        print(
            f"layer_lint: {len(violations)} unannotated violation(s) in "
            f"{len(files)} file(s); deliberate exceptions need "
            "// lint:allow(<rule>)",
            file=sys.stderr,
        )
        return 1
    print(
        f"layer_lint: OK ({len(files)} files, "
        f"{sum(layer_edges.values())} cross-layer includes, all downward)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
