#!/usr/bin/env python3
"""Architecture-layering analyzer for the Xanadu simulation codebase.

ARCHITECTURE.md declares src/ as a layered stack (low to high):

    common < sim < workflow < cluster < platform < metrics < core < workload

This tool makes the declaration machine-checked.  It runs over the include
graph the shared cppmodel front end extracts (quoted includes only; system
headers are ignored) and rejects:

  unknown-layer    a quoted include whose first path component is not a
                   declared layer (new top-level directories must be added
                   to LAYER_ORDER here and to ARCHITECTURE.md)
  missing-header   a quoted include that does not resolve to a file under
                   the scanned source root
  cpp-include      #include of a *.cpp / *.cc file (textual inclusion of a
                   translation unit)
  layering         an include whose target sits in a HIGHER layer than the
                   including file (a back-edge: lower layers must not know
                   about higher ones; this includes skips, e.g. sim/
                   including core/)
  include-cycle    a cycle in the file-level include graph (the layer rule
                   makes cross-layer cycles impossible, but same-layer
                   header cycles would still break builds subtly)

With --strict (the CI configuration), additionally:

  layer-skip       a downward include that skips MORE THAN ONE layer and is
                   not covered by the explicit allowlist below.  Deep skips
                   are how layering erodes: each one couples a high layer to
                   a low layer's internals without the intermediate layers
                   noticing.  The foundation layers (common, sim) are exempt
                   -- ids, hashing, Rng, Duration/TimePoint and the
                   Simulator are the vocabulary of every layer above them.
                   Every other deep skip must be added to
                   STRICT_SKIP_ALLOWLIST with a justification.

A finding can be suppressed per line with the same escape hatch the
determinism lint uses, on the offending line or the line directly above:

    // lint:allow(<rule>) justification

`--dot PATH` additionally writes the condensed layer-level include graph as
GraphViz DOT (edge labels carry include counts); the committed figure in
ARCHITECTURE.md ("Layering DAG") is generated this way.

Exit status is 0 when no unannotated violations remain, 1 otherwise.
Run directly (`tools/layer_lint.py src`) or via `ctest -R layer_lint` (or
as part of the unified `xan_lint` driver).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from cppmodel import Finding, SourceModel, allowed_at

# Declared layer order, lowest (most fundamental) first.  A file in layer L
# may include only layers at or below L.
LAYER_ORDER = (
    "common",
    "sim",
    "workflow",
    "cluster",
    "platform",
    "metrics",
    "core",
    "workload",
)

LAYER_INDEX = {name: index for index, name in enumerate(LAYER_ORDER)}

# Layers every higher layer may include regardless of distance: the shared
# vocabulary (ids, hashing, Result, Rng) and the virtual-time substrate
# (Duration, TimePoint, Simulator).
FOUNDATION_LAYERS = {"common", "sim"}

# --strict: deep downward skips (distance > 1) into non-foundation layers
# allowed on purpose, with why.  Growing this list is a design decision,
# not a lint tweak -- see ARCHITECTURE.md "Static analysis & verification".
# Audited for staleness each PR: the strict run flags any entry whose deep
# skip no longer exists (PR 10 audit: all nine entries still carry live
# includes; nothing to prune).
STRICT_SKIP_ALLOWLIST = {
    ("platform", "workflow"):
        "the engine executes WorkflowDag nodes; FunctionSpec is its input",
    ("metrics", "cluster"):
        "the cost model reads the ResourceLedger balances",
    ("metrics", "workflow"):
        "trace digests walk the DAG structure",
    ("core", "cluster"):
        "the DispatchManager facade owns the Cluster it wires up",
    ("core", "platform"):
        "the facade composes the engine and policies",
    ("core", "workflow"):
        "the facade deploys DAGs and state-language documents",
    ("workload", "workflow"):
        "case studies and generators build DAGs",
    ("workload", "platform"):
        "schedule harnesses submit requests and read RequestResults",
    ("workload", "metrics"):
        "population runs aggregate cost summaries",
}

RULE_DOCS = {
    "unknown-layer": (
        "include or directory outside the declared layer stack; new "
        "layers are added to LAYER_ORDER and ARCHITECTURE.md"
    ),
    "missing-header": "quoted include does not resolve under the source root",
    "cpp-include": "translation units must not be textually included",
    "layering": (
        "back-edge: a lower layer includes a higher one; lower layers "
        "must not know about higher ones"
    ),
    "include-cycle": "cycle in the file-level include graph",
    "layer-skip": (
        "downward include skipping more than one non-foundation layer "
        "without a STRICT_SKIP_ALLOWLIST entry"
    ),
}


def find_cycles(graph: dict[str, set[str]]) -> list[list[str]]:
    """Cycles in the file-level include graph, via iterative DFS.  Returns
    each cycle once, as the path of files around it."""
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {node: WHITE for node in graph}
    cycles: list[list[str]] = []
    for root in sorted(graph):
        if color[root] != WHITE:
            continue
        stack: list[tuple[str, list[str]]] = [(root, [])]
        path: list[str] = []
        on_path: set[str] = set()
        while stack:
            node, _ = stack[-1]
            if color.get(node, WHITE) == WHITE:
                color[node] = GRAY
                path.append(node)
                on_path.add(node)
                for child in sorted(graph.get(node, ())):
                    if color.get(child, WHITE) == WHITE:
                        stack.append((child, []))
                    elif color.get(child) == GRAY and child in on_path:
                        cycle = path[path.index(child):] + [child]
                        cycles.append(cycle)
            else:
                stack.pop()
                if color[node] == GRAY:
                    color[node] = BLACK
                    path.pop()
                    on_path.discard(node)
        # Defensive: the stack discipline above pops each GRAY node exactly
        # once, so path/on_path drain with the stack.
    return cycles


def emit_dot(
    layer_edges: dict[tuple[str, str], int], out_path: Path
) -> None:
    lines = ["digraph layering {", "  rankdir=BT;", '  node [shape=box, fontname="Helvetica"];']
    for layer in LAYER_ORDER:
        lines.append(f"  {layer};")
    for (src, dst), count in sorted(layer_edges.items()):
        lines.append(f'  {src} -> {dst} [label="{count}"];')
    lines.append("}")
    out_path.write_text("\n".join(lines) + "\n", encoding="utf-8")


def run_on_model(
    model: SourceModel,
    strict: bool = False,
    root_name: str = "src",
) -> tuple[list[Finding], dict[tuple[str, str], int]]:
    """Layer rules over the files of the model root named `root_name`
    (bench/ and fixtures have no layer structure).  Returns (findings,
    condensed layer-edge counts for --dot)."""
    files = [sf for sf in model.files if sf.root.name == root_name]
    known = {str(sf.rel) for sf in files}

    findings: list[Finding] = []
    file_graph: dict[str, set[str]] = {str(sf.rel): set() for sf in files}
    layer_edges: dict[tuple[str, str], int] = {}

    for sf in files:
        src_layer = sf.rel.parts[0] if len(sf.rel.parts) > 1 else None
        if src_layer is not None and src_layer not in LAYER_INDEX:
            findings.append(
                Finding(
                    sf.display, 1, "unknown-layer",
                    f"directory '{src_layer}' is not a declared layer; add "
                    "it to LAYER_ORDER and to ARCHITECTURE.md",
                )
            )
            continue

        for target, lineno in sf.includes:
            allowed = allowed_at(sf.allow, lineno)
            if target.endswith((".cpp", ".cc")) and \
                    "cpp-include" not in allowed:
                findings.append(
                    Finding(
                        sf.display, lineno, "cpp-include",
                        f'#include "{target}": translation units must not '
                        "be textually included",
                    )
                )
                continue
            dst_layer = target.split("/")[0]
            if dst_layer not in LAYER_INDEX:
                if "unknown-layer" not in allowed:
                    findings.append(
                        Finding(
                            sf.display, lineno, "unknown-layer",
                            f'#include "{target}": \'{dst_layer}\' is not '
                            "a declared layer",
                        )
                    )
                continue
            if target not in known:
                if "missing-header" not in allowed:
                    findings.append(
                        Finding(
                            sf.display, lineno, "missing-header",
                            f'#include "{target}": no such file under '
                            f"{sf.root}/",
                        )
                    )
                continue
            file_graph[str(sf.rel)].add(target)
            if src_layer is not None and dst_layer != src_layer:
                layer_edges[(src_layer, dst_layer)] = (
                    layer_edges.get((src_layer, dst_layer), 0) + 1
                )
                if (
                    LAYER_INDEX[dst_layer] > LAYER_INDEX[src_layer]
                    and "layering" not in allowed
                ):
                    findings.append(
                        Finding(
                            sf.display, lineno, "layering",
                            f"back-edge: layer '{src_layer}' (level "
                            f"{LAYER_INDEX[src_layer]}) must not include "
                            f"'{target}' from higher layer '{dst_layer}' "
                            f"(level {LAYER_INDEX[dst_layer]})",
                        )
                    )
                skip = LAYER_INDEX[src_layer] - LAYER_INDEX[dst_layer]
                if (
                    strict
                    and skip > 1
                    and dst_layer not in FOUNDATION_LAYERS
                    and (src_layer, dst_layer) not in STRICT_SKIP_ALLOWLIST
                    and "layer-skip" not in allowed
                ):
                    findings.append(
                        Finding(
                            sf.display, lineno, "layer-skip",
                            f'#include "{target}": \'{src_layer}\' skips '
                            f"{skip} layers down to '{dst_layer}'; deep "
                            "skips need a STRICT_SKIP_ALLOWLIST entry "
                            "(a design decision, not a lint tweak)",
                        )
                    )

    for cycle in find_cycles(file_graph):
        findings.append(
            Finding(
                cycle[0], 1, "include-cycle",
                "include cycle: " + " -> ".join(cycle),
            )
        )

    if strict:
        # A stale allowlist entry means the deep skip it justified is gone;
        # flag it so the list shrinks back as the coupling does.
        used = {
            pair for pair in layer_edges
            if LAYER_INDEX[pair[0]] - LAYER_INDEX[pair[1]] > 1
            and pair[1] not in FOUNDATION_LAYERS
        }
        for pair in sorted(STRICT_SKIP_ALLOWLIST.keys() - used):
            findings.append(
                Finding(
                    "tools/layer_lint.py", 1, "layer-skip",
                    f"stale allowlist entry {pair}: no such deep skip "
                    "remains; remove it",
                )
            )

    findings.sort(key=lambda f: f.sort_key())
    return findings, layer_edges


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "root",
        nargs="?",
        default="src",
        help="source root to scan (default: src)",
    )
    parser.add_argument(
        "--dot",
        metavar="PATH",
        help="write the condensed layer-level include graph as GraphViz DOT",
    )
    parser.add_argument(
        "--list-layers", action="store_true", help="print the layer order and exit"
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="additionally ban >1-layer downward include skips outside the "
        "explicit allowlist (the CI configuration)",
    )
    args = parser.parse_args(argv)

    if args.list_layers:
        print(" < ".join(LAYER_ORDER))
        return 0

    root = Path(args.root)
    if not root.is_dir():
        print(f"layer_lint: no such directory: {root}", file=sys.stderr)
        return 2

    # Include/layer rules don't need the token-level parse.
    model = SourceModel([root], parse=False).load()
    findings, layer_edges = run_on_model(
        model, strict=args.strict, root_name=root.name
    )

    if args.dot:
        emit_dot(layer_edges, Path(args.dot))
        print(f"layer_lint: wrote {args.dot}")

    for finding in findings:
        print(finding)
    if findings:
        print(
            f"layer_lint: {len(findings)} unannotated violation(s) in "
            f"{len(model.files)} file(s); deliberate exceptions need "
            "// lint:allow(<rule>)",
            file=sys.stderr,
        )
        return 1
    print(
        f"layer_lint: OK ({len(model.files)} files, "
        f"{sum(layer_edges.values())} cross-layer includes, all downward)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
