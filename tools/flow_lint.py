#!/usr/bin/env python3
"""Interprocedural determinism dataflow analyzer for the Xanadu codebase.

determinism_lint.py checks single lines; this tool reasons across function
boundaries.  It tokenizes the C++ sources, extracts function definitions,
builds a name-based call graph, and runs two analyses:

  shared-rng-draw   RNG stream lineage.  Every common::Rng draw site (next,
                    uniform, uniform_int, bernoulli, weighted_index,
                    exponential, normal, and the draw-consuming fork) is
                    traced back to its originating stream -- through
                    receiver members, Rng& parameters, and call edges.  A
                    draw on a *shared/ambient* stream (a member Rng of a
                    long-lived object, e.g. Cluster::rng_) that is reachable
                    from an event-handler context is an error: same-timestamp
                    (tied) events then race for draws, and firing order
                    decides which value lands where -- the exact mechanism of
                    the speculative provision-batch race the virtual-time
                    race detector pinned.  Deriving a stream with
                    fork_stream(stable_key) is always safe and never flagged.

  nondet-taint      Determinism taint.  Sources of nondeterminism (wall
                    clocks, getrusage/gettimeofday, pointer-to-integer
                    reinterpret_casts, unordered-container iteration order)
                    are propagated across call edges into sinks (metrics
                    trace/digest computation, event scheduling).  Findings
                    report the whole path: source -> f() -> g() -> sink.

Handler contexts are computed, not annotated: any function whose body
schedules or subscribes callbacks (schedule_after / schedule_at / subscribe)
is a handler root -- the lambdas it registers run at event time, and
token-level analysis attributes their bodies to the enclosing function --
and everything transitively callable from a root is handler-reachable.

Call edges resolve overload sets by argument arity: a call with N arguments
only reaches same-named definitions whose parameter count admits N (default
arguments widen the admitted range; `...` packs make it unbounded above).
When no definition admits N -- out-of-line definitions do not repeat their
declaration's defaults, and macro-heavy sites can miscount -- the edge
falls back to the whole overload set, keeping the analysis
over-approximate rather than unsound.
Both analyses over-approximate by design; a reviewed exception is silenced
on the offending line or the line directly above with:

    // flow-lint:allow(<rule>) justification

(The taint analysis also honours the narrower determinism_lint escapes
lint:allow(unordered-iteration) / lint:allow(wall-clock) at source sites,
so a line audited once is not annotated twice.)

Outputs: human-readable text (default), --json PATH, --sarif PATH (SARIF
2.1.0, uploadable as a CI code-scanning artifact), and --draw-sites PATH, a
JSON dump of every statically predicted Rng draw site.  The XANADU_RNG_TRACE
build records the draw sites actually executed, and
tests/rng_trace_test.cpp diffs that observed set against this predicted set:
the analyzer must be sound on src/ (no observed draw site it failed to
predict).

Exit status is 0 when no unannotated findings remain, 1 otherwise, 2 on
usage errors.  Run directly (`tools/flow_lint.py src bench`) or via
`ctest -R flow_lint`.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

SOURCE_SUFFIXES = {".cpp", ".hpp", ".cc", ".hh", ".h"}

# Draw methods of common::Rng.  fork() consumes a parent draw, so it counts;
# fork_stream() derives a child from the stream id without touching state,
# so it does not.
DRAW_METHODS = {
    "next",
    "uniform",
    "uniform_int",
    "bernoulli",
    "weighted_index",
    "exponential",
    "normal",
    "fork",
}

# Calls that register event-time callbacks; a function containing one is a
# handler root (its lambdas execute inside the event loop).
SCHEDULING_CALLS = {"schedule_after", "schedule_at", "subscribe"}

# Call names treated as determinism sinks: values flowing here become part
# of the replayable artifact (trace, digest) or decide event interleaving.
SINK_EXACT = {"schedule_after", "schedule_at"}
SINK_PATTERN = re.compile(r"^(trace\w*|\w*digest\w*)$")

ALLOW_RE = re.compile(
    r"//\s*flow-lint:allow\(([a-z-]+(?:\s*,\s*[a-z-]+)*)\)"
)
LEGACY_ALLOW_RE = re.compile(
    r"//\s*lint:allow\(([a-z-]+(?:\s*,\s*[a-z-]+)*)\)"
)

# A receiver whose final component matches this is a member stream by the
# codebase's naming convention (rng_, bus_rng_, ...), independent of whether
# its declaration was seen.
MEMBER_RNG_NAME_RE = re.compile(r"(?:^|_)rng_$")

# Declarations of member/namespace-scope Rng objects (trailing underscore =
# member convention).
MEMBER_RNG_DECL_RE = re.compile(r"\bRng\s+(\w+_)\s*[;{=(]")

UNORDERED_DECL_RE = re.compile(
    r"\bunordered_(?:multi)?(?:map|set)\s*<[^;()]*?>\s+(\w+)\s*(?:;|=|\{)"
)
RANGE_FOR_RE = re.compile(
    r"\bfor\s*\([^;()]*?:\s*(?:this->)?([A-Za-z_][\w.\->]*)\s*\)"
)

# Taint sources recognised per line (within function bodies).
TAINT_SOURCE_RULES = [
    (
        "wall-clock",
        re.compile(
            r"\b(?:system_clock|steady_clock|high_resolution_clock)\s*::"
            r"\s*now\b|\bgettimeofday\s*\(|\bgetrusage\s*\("
        ),
        "wall-clock / rusage read",
    ),
    (
        "pointer-cast",
        re.compile(
            r"\breinterpret_cast\s*<\s*(?:std\s*::\s*)?"
            r"(?:u?int(?:8|16|32|64|ptr)?_t|size_t|unsigned\s+long|"
            r"long\s+long|long)\s*>"
        ),
        "pointer-to-integer cast (ASLR-dependent value)",
    ),
]

KEYWORDS = {
    "if",
    "for",
    "while",
    "switch",
    "catch",
    "return",
    "sizeof",
    "alignof",
    "decltype",
    "static_assert",
    "new",
    "delete",
    "throw",
    "case",
    "do",
    "else",
    "co_await",
    "co_return",
    "noexcept",
    "assert",
    "defined",
}

TOKEN_RE = re.compile(
    r"""
    (?P<id>[A-Za-z_]\w*)
  | (?P<num>(?:0[xX][0-9a-fA-F'.pP+\-]+|\d[\w'.]*(?:[eEpP][+\-]?\d+)?))
  | (?P<punct>->|::|<<=|>>=|<=>|\+\+|--|&&|\|\||==|!=|<=|>=|\+=|-=|\*=|/=|%=|&=|\|=|\^=|<<|>>|\.\.\.|.)
    """,
    re.VERBOSE,
)


def strip_comments_and_strings(text: str) -> str:
    """Replaces comment and string/char-literal bodies with spaces, keeping
    newlines so line numbers survive."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            if j == -1:
                j = n
            out.append(" " * (j - i))
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n if j == -1 else j + 2
            out.append(
                "".join("\n" if ch == "\n" else " " for ch in text[i:j])
            )
            i = j
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n:
                if text[j] == "\\":
                    j += 2
                    continue
                if text[j] == quote or text[j] == "\n":
                    j += 1
                    break
                j += 1
            out.append(quote + " " * max(0, j - i - 2) + quote)
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


def tokenize(code: str) -> list[tuple[str, int]]:
    """(token text, 1-based line) over comment/string-stripped code."""
    tokens = []
    line = 1
    pos = 0
    for match in TOKEN_RE.finditer(code):
        line += code.count("\n", pos, match.start())
        pos = match.start()
        text = match.group(0)
        if not text.strip():
            continue  # The catch-all punct branch matches whitespace too.
        tokens.append((text, line))
    return tokens


def allow_sets(raw_lines: list[str]) -> list[set[str]]:
    """Per-line suppressed rules (flow-lint:allow plus the legacy
    lint:allow escapes the taint analysis honours), 0-indexed."""
    sets: list[set[str]] = []
    for line in raw_lines:
        rules: set[str] = set()
        match = ALLOW_RE.search(line)
        if match:
            rules.update(r.strip() for r in match.group(1).split(","))
        match = LEGACY_ALLOW_RE.search(line)
        if match:
            rules.update(r.strip() for r in match.group(1).split(","))
        sets.append(rules)
    return sets


def allowed_at(allow: list[set[str]], lineno: int) -> set[str]:
    """Rules suppressed for 1-based lineno (that line or the line above)."""
    rules: set[str] = set()
    for probe in (lineno - 1, lineno - 2):
        if 0 <= probe < len(allow):
            rules |= allow[probe]
    return rules


class Function:
    """One function definition: its body token slice plus extracted facts."""

    def __init__(self, name: str, qualified: str, file: str, line: int):
        self.name = name
        self.qualified = qualified
        self.file = file
        self.line = line
        self.end_line = line
        # Admitted argument-count range of this definition's parameter list;
        # max_arity is None for variadic (`...`) parameter packs.
        self.min_arity = 0
        self.max_arity: int | None = 0
        # (name, line, tok idx, nargs at the call site)
        self.calls: list[tuple[str, int, int, int]] = []
        self.draws: list[dict] = []
        self.rng_params: list[str] = []
        self.is_handler_root = False
        self.sinks: list[tuple[str, int]] = []  # (name, line)
        self.sources: list[tuple[str, int, str]] = []  # (kind, line, what)
        # Rng& / Rng parameters currently known to alias a shared stream,
        # mapped to the (origin description, caller chain) that proved it.
        self.shared_params: dict[str, tuple[str, list[str]]] = {}


class Finding:
    def __init__(self, file: str, line: int, rule: str, message: str,
                 path: list[str]):
        self.file = file
        self.line = line
        self.rule = rule
        self.message = message
        self.path = path

    def __str__(self) -> str:
        text = f"{self.file}:{self.line}: [{self.rule}] {self.message}"
        if self.path:
            text += "\n    path: " + " -> ".join(self.path)
        return text

    def as_dict(self) -> dict:
        return {
            "file": self.file,
            "line": self.line,
            "rule": self.rule,
            "message": self.message,
            "path": self.path,
        }


def match_paren(tokens: list[tuple[str, int]], open_idx: int) -> int:
    """Index of the ')' matching tokens[open_idx] == '('."""
    depth = 0
    for i in range(open_idx, len(tokens)):
        t = tokens[i][0]
        if t == "(":
            depth += 1
        elif t == ")":
            depth -= 1
            if depth == 0:
                return i
    return len(tokens) - 1


def receiver_chain(tokens: list[tuple[str, int]], dot_idx: int) -> list[str]:
    """Walks left from the '.'/'->' before a method name, collecting the
    receiver's identifier chain (innermost first): `a.b->c.m(` -> [a, b, c].
    Stops at anything that is not a plain ident/./-> chain (call results,
    array indexing) and returns what it has."""
    chain: list[str] = []
    i = dot_idx
    while i > 0:
        prev = tokens[i - 1][0]
        if re.fullmatch(r"[A-Za-z_]\w*", prev):
            chain.append(prev)
            i -= 1
            if i > 0 and tokens[i - 1][0] in (".", "->"):
                i -= 1
                continue
            break
        if prev == "this" or prev == ")":
            break
        break
    chain.reverse()
    return chain


def parse_params(tokens: list[tuple[str, int]], open_idx: int,
                 close_idx: int) -> list[str]:
    """Names of parameters whose declared type mentions Rng."""
    names: list[str] = []
    depth = 0
    current: list[str] = []
    groups: list[list[str]] = []
    for i in range(open_idx + 1, close_idx):
        t = tokens[i][0]
        if t in "(<[{":
            depth += 1
        elif t in ")>]}":
            depth -= 1
        if t == "," and depth == 0:
            groups.append(current)
            current = []
        else:
            current.append(t)
    if current:
        groups.append(current)
    for group in groups:
        if "Rng" not in group:
            continue
        idents = [t for t in group if re.fullmatch(r"[A-Za-z_]\w*", t)]
        # Drop type/qualifier identifiers; the parameter name is the last
        # identifier (if any -- unnamed Rng params cannot be drawn from).
        while idents and idents[-1] in ("Rng", "common", "const", "xanadu"):
            idents.pop()
        if idents:
            names.append(idents[-1])
    return names


def param_groups(tokens: list[tuple[str, int]], open_idx: int,
                 close_idx: int) -> list[list[str]]:
    """Top-level comma-separated token groups of a parameter list."""
    groups: list[list[str]] = []
    current: list[str] = []
    depth = 0
    for i in range(open_idx + 1, close_idx):
        t = tokens[i][0]
        if t in "(<[{":
            depth += 1
        elif t in ")>]}":
            depth -= 1
        if t == "," and depth == 0:
            groups.append(current)
            current = []
        else:
            current.append(t)
    if current:
        groups.append(current)
    return groups


def parse_arity(tokens: list[tuple[str, int]], open_idx: int,
                close_idx: int) -> tuple[int, int | None]:
    """(min, max) argument counts a parameter list admits.  A defaulted
    parameter (`=` at top level) lowers the minimum; a `...` pack lifts the
    maximum to unbounded (None)."""
    groups = param_groups(tokens, open_idx, close_idx)
    if len(groups) == 1 and groups[0] == ["void"]:
        groups = []
    min_arity = 0
    max_arity = 0
    variadic = False
    for group in groups:
        if "..." in group:
            variadic = True
            continue
        max_arity += 1
        if "=" not in group:
            min_arity += 1
    return min_arity, None if variadic else max_arity


def extract_functions(tokens: list[tuple[str, int]],
                      file: str) -> list[Function]:
    """Finds function definitions with bodies and attributes body tokens
    (including lambda bodies) to them."""
    functions: list[Function] = []
    i = 0
    n = len(tokens)
    while i < n:
        t = tokens[i][0]
        if t != "(":
            i += 1
            continue
        # Candidate: name tokens directly before '('.
        j = i - 1
        name_parts: list[str] = []
        while j >= 0:
            tj = tokens[j][0]
            if re.fullmatch(r"[A-Za-z_]\w*", tj) or tj == "~":
                name_parts.append(tj)
                j -= 1
                if j >= 0 and tokens[j][0] == "::":
                    name_parts.append("::")
                    j -= 1
                    continue
                break
            break
        if not name_parts:
            i += 1
            continue
        name_parts.reverse()
        simple = name_parts[-1]
        if simple in KEYWORDS or not re.fullmatch(r"[A-Za-z_]\w*|~\w+",
                                                  simple.lstrip("~")):
            i += 1
            continue
        close = match_paren(tokens, i)
        # Scan past qualifiers / trailing return / ctor-init list to decide
        # whether a body follows.
        k = close + 1
        body_open = -1
        init_start = -1
        while k < n:
            tk = tokens[k][0]
            if tk in ("const", "noexcept", "override", "final", "mutable",
                      "&", "&&"):
                k += 1
                continue
            if tk == "->":
                # Trailing return type: skip its tokens until '{' or ';'.
                k += 1
                while k < n and tokens[k][0] not in ("{", ";"):
                    k += 1
                continue
            if tk == ":":
                # Constructor initializer list: member name then one
                # balanced (...) or {...} per initializer, comma-separated.
                k += 1
                init_start = k
                while k < n:
                    while k < n and tokens[k][0] not in ("(", "{", ";"):
                        k += 1
                    if k >= n or tokens[k][0] == ";":
                        break
                    opener = tokens[k][0]
                    closer = ")" if opener == "(" else "}"
                    depth = 0
                    while k < n:
                        if tokens[k][0] == opener:
                            depth += 1
                        elif tokens[k][0] == closer:
                            depth -= 1
                            if depth == 0:
                                k += 1
                                break
                        k += 1
                    if k < n and tokens[k][0] == ",":
                        k += 1
                        continue
                    break
                continue
            if tk == "{":
                body_open = k
            break
        if body_open == -1:
            i = close + 1
            continue
        # Collect the body token span.
        depth = 0
        end = body_open
        while end < n:
            if tokens[end][0] == "{":
                depth += 1
            elif tokens[end][0] == "}":
                depth -= 1
                if depth == 0:
                    break
            end += 1
        qualified = "".join(name_parts)
        fn = Function(simple, qualified, file, tokens[i][1])
        fn.end_line = tokens[min(end, n - 1)][1]
        fn.rng_params = parse_params(tokens, i, close)
        fn.min_arity, fn.max_arity = parse_arity(tokens, i, close)
        if init_start != -1:
            # Constructor initializer lists execute code too -- per-class
            # member streams are forked there (FaultPlan) -- so their draws
            # and call edges count as part of the body.  Missing this was
            # caught by the runtime cross-validation (rng_trace_test).
            analyze_body(tokens, init_start, body_open, fn)
        analyze_body(tokens, body_open, end, fn)
        functions.append(fn)
        i = end + 1
    return functions


def analyze_body(tokens: list[tuple[str, int]], start: int, end: int,
                 fn: Function) -> None:
    """Extracts calls, draw sites, and sink calls from a body token span."""
    for i in range(start, end):
        t, line = tokens[i]
        if not re.fullmatch(r"[A-Za-z_]\w*", t) or t in KEYWORDS:
            continue
        if i + 1 >= end or tokens[i + 1][0] != "(":
            continue
        is_method = i > 0 and tokens[i - 1][0] in (".", "->")
        if t in SCHEDULING_CALLS:
            fn.is_handler_root = True
        if t in SINK_EXACT or SINK_PATTERN.match(t):
            fn.sinks.append((t, line))
        if is_method and t in DRAW_METHODS:
            chain = receiver_chain(tokens, i - 1)
            close = match_paren(tokens, i + 1)
            fn.draws.append({
                "method": t,
                "line": line,
                "end_line": tokens[min(close, len(tokens) - 1)][1],
                "receiver": chain,
            })
            continue  # A draw is not also a call-graph edge.
        close = match_paren(tokens, i + 1)
        nargs = len(split_args(tokens, i + 1, close))
        fn.calls.append((t, line, i + 1, nargs))


def split_args(tokens: list[tuple[str, int]], open_idx: int,
               close_idx: int) -> list[list[str]]:
    args: list[list[str]] = []
    current: list[str] = []
    depth = 0
    for i in range(open_idx + 1, close_idx):
        t = tokens[i][0]
        if t in "([{":
            depth += 1
        elif t in ")]}":
            depth -= 1
        if t == "," and depth == 0:
            args.append(current)
            current = []
        else:
            current.append(t)
    if current:
        args.append(current)
    return args


class Analyzer:
    def __init__(self, roots: list[Path]):
        self.roots = roots
        self.files: list[tuple[Path, str]] = []  # (abs path, display path)
        self.functions: list[Function] = []
        self.by_name: dict[str, list[Function]] = {}
        self.member_rng_names: set[str] = set()
        self.unordered_names: set[str] = set()
        self.file_tokens: dict[str, list[tuple[str, int]]] = {}
        self.file_allow: dict[str, list[set[str]]] = {}
        self.file_lines: dict[str, list[str]] = {}
        self.findings: list[Finding] = []
        self.reach_chain: dict[int, list[str]] = {}  # id(fn) -> root chain

    # -- loading ----------------------------------------------------------

    def load(self) -> None:
        for root in self.roots:
            base = root.parent if root.parent != Path(".") else Path(".")
            for path in sorted(
                p
                for p in root.rglob("*")
                if p.suffix in SOURCE_SUFFIXES and p.is_file()
            ):
                display = str(path)
                raw = path.read_text(encoding="utf-8", errors="replace")
                code = strip_comments_and_strings(raw)
                tokens = tokenize(code)
                self.files.append((path, display))
                self.file_tokens[display] = tokens
                self.file_allow[display] = allow_sets(raw.splitlines())
                self.file_lines[display] = code.splitlines()
                for match in MEMBER_RNG_DECL_RE.finditer(code):
                    self.member_rng_names.add(match.group(1))
                for match in UNORDERED_DECL_RE.finditer(code):
                    self.unordered_names.add(match.group(1))
                for fn in extract_functions(tokens, display):
                    self.functions.append(fn)
                    self.by_name.setdefault(fn.name, []).append(fn)
        self.collect_taint_sources()

    def collect_taint_sources(self) -> None:
        """Assigns per-line taint sources to the function spanning them."""
        spans: dict[str, list[Function]] = {}
        for fn in self.functions:
            spans.setdefault(fn.file, []).append(fn)
        for display, lines in self.file_lines.items():
            allow = self.file_allow[display]
            for index, line in enumerate(lines):
                lineno = index + 1
                hits: list[tuple[str, str]] = []
                for kind, pattern, what in TAINT_SOURCE_RULES:
                    if pattern.search(line):
                        hits.append((kind, what))
                match = RANGE_FOR_RE.search(line)
                if match:
                    target = re.split(r"\.|->", match.group(1))[-1]
                    if target in self.unordered_names:
                        hits.append(
                            (
                                "unordered-iteration",
                                f"iteration over unordered '{target}'",
                            )
                        )
                if not hits:
                    continue
                suppressed = allowed_at(allow, lineno)
                for kind, what in hits:
                    if (
                        "nondet-taint" in suppressed
                        or kind in suppressed
                    ):
                        continue
                    for fn in spans.get(display, ()):
                        if fn.line <= lineno <= fn.end_line:
                            fn.sources.append((kind, lineno, what))
                            break

    # -- overload resolution ----------------------------------------------

    def resolve(self, name: str, nargs: int) -> list[Function]:
        """Definitions of `name` a call with `nargs` arguments can reach.
        Arity-filtered; falls back to the whole overload set when nothing
        admits `nargs` (out-of-line definitions drop their declaration's
        defaults, macro sites can miscount) so the graph stays an
        over-approximation."""
        candidates = self.by_name.get(name, ())
        matched = [
            fn
            for fn in candidates
            if fn.min_arity <= nargs
            and (fn.max_arity is None or nargs <= fn.max_arity)
        ]
        return matched if matched else list(candidates)

    # -- handler reachability ---------------------------------------------

    def compute_reachability(self) -> None:
        worklist: list[Function] = []
        for fn in self.functions:
            if fn.is_handler_root:
                self.reach_chain[id(fn)] = [f"{fn.qualified}()"]
                worklist.append(fn)
        while worklist:
            fn = worklist.pop()
            chain = self.reach_chain[id(fn)]
            for name, _line, _idx, nargs in fn.calls:
                for callee in self.resolve(name, nargs):
                    if id(callee) not in self.reach_chain:
                        self.reach_chain[id(callee)] = chain + [
                            f"{callee.qualified}()"
                        ]
                        worklist.append(callee)

    def handler_chain(self, fn: Function) -> list[str] | None:
        return self.reach_chain.get(id(fn))

    # -- interprocedural shared-stream parameter flow ---------------------

    def propagate_shared_params(self) -> None:
        """Marks Rng parameters that receive a member stream at some
        handler-reachable call site, transitively."""
        changed = True
        while changed:
            changed = False
            for caller in self.functions:
                if self.handler_chain(caller) is None:
                    continue
                tokens = self.file_tokens[caller.file]
                for name, line, open_idx, nargs in caller.calls:
                    callees = [
                        c for c in self.resolve(name, nargs) if c.rng_params
                    ]
                    if not callees:
                        continue
                    close = match_paren(tokens, open_idx)
                    args = split_args(tokens, open_idx, close)
                    for callee in callees:
                        # Positional matching is impractical name-based;
                        # instead: any argument that is itself a shared
                        # stream taints every Rng param of the callee.
                        # Over-approximate, silenced per-line if wrong.
                        shared_arg = None
                        for arg in args:
                            for tok in arg:
                                if self.is_member_rng(tok):
                                    shared_arg = (
                                        tok,
                                        f"{caller.file}:{line}",
                                    )
                                    break
                                if tok in caller.shared_params:
                                    origin, _ = caller.shared_params[tok]
                                    shared_arg = (origin, f"{caller.file}:{line}")
                                    break
                            if shared_arg:
                                break
                        if not shared_arg:
                            continue
                        for param in callee.rng_params:
                            if param in callee.shared_params:
                                continue
                            origin = (
                                f"{shared_arg[0]} (passed at {shared_arg[1]})"
                            )
                            callee.shared_params[param] = (
                                origin,
                                [f"{caller.qualified}()"],
                            )
                            changed = True

    def is_member_rng(self, name: str) -> bool:
        return bool(MEMBER_RNG_NAME_RE.search(name)) or (
            name in self.member_rng_names
        )

    # -- rules ------------------------------------------------------------

    def check_shared_rng_draws(self) -> None:
        for fn in self.functions:
            chain = self.handler_chain(fn)
            if chain is None:
                continue
            allow = self.file_allow[fn.file]
            for draw in fn.draws:
                receiver = draw["receiver"]
                if not receiver:
                    continue
                last = receiver[-1]
                shared = None
                path = list(chain)
                if self.is_member_rng(last):
                    shared = ".".join(receiver)
                elif last in fn.shared_params:
                    origin, via = fn.shared_params[last]
                    shared = f"{last} <- {origin}"
                    path = via + [f"{fn.qualified}()"]
                if shared is None:
                    continue
                if "shared-rng-draw" in allowed_at(allow, draw["line"]):
                    continue
                self.findings.append(
                    Finding(
                        fn.file,
                        draw["line"],
                        "shared-rng-draw",
                        f"draw '{'.'.join(receiver)}.{draw['method']}()' "
                        f"uses shared stream '{shared}' inside handler-"
                        "reachable code; same-timestamp events race for "
                        "draws -- fork_stream() a per-entity stream with a "
                        "stable key instead",
                        path + [f"{'.'.join(receiver)}.{draw['method']}()"],
                    )
                )

    def check_taint(self) -> None:
        # Function-level propagation: a function is tainted if it contains
        # a source or calls a tainted function; a finding is a sink call in
        # a tainted function.
        taint: dict[int, tuple[str, list[str]]] = {}
        worklist: list[Function] = []
        for fn in self.functions:
            if fn.sources:
                kind, line, what = fn.sources[0]
                taint[id(fn)] = (
                    f"{what} [{kind}] at {fn.file}:{line}",
                    [f"{fn.qualified}()"],
                )
                worklist.append(fn)
        # Caller edges resolved per call site: arity decides which overload
        # a site can actually taint-propagate from.
        callers: dict[int, list[Function]] = {}
        for fn in self.functions:
            for name, _line, _idx, nargs in fn.calls:
                for callee in self.resolve(name, nargs):
                    callers.setdefault(id(callee), []).append(fn)
        while worklist:
            fn = worklist.pop()
            origin, chain = taint[id(fn)]
            for caller in callers.get(id(fn), ()):
                if id(caller) not in taint:
                    taint[id(caller)] = (
                        origin,
                        chain + [f"{caller.qualified}()"],
                    )
                    worklist.append(caller)
        for fn in self.functions:
            if id(fn) not in taint:
                continue
            origin, chain = taint[id(fn)]
            allow = self.file_allow[fn.file]
            for sink_name, line in fn.sinks:
                if "nondet-taint" in allowed_at(allow, line):
                    continue
                self.findings.append(
                    Finding(
                        fn.file,
                        line,
                        "nondet-taint",
                        f"nondeterminism reaches sink '{sink_name}()': "
                        f"{origin}",
                        chain + [f"{sink_name}()"],
                    )
                )

    # -- predicted draw sites ---------------------------------------------

    def predicted_draw_sites(self) -> list[dict]:
        """Every textual Rng-draw site, with the line span of the full call
        expression (multi-line calls record their whole extent).  This is
        deliberately an over-approximation -- soundness means the runtime-
        observed set must be a subset of this one."""
        sites: list[dict] = []
        for fn in self.functions:
            for draw in fn.draws:
                sites.append(
                    {
                        "file": fn.file,
                        "line": draw["line"],
                        "end_line": draw["end_line"],
                        "method": draw["method"],
                        "receiver": ".".join(draw["receiver"]),
                        "function": fn.qualified,
                    }
                )
        return sites

    def run(self) -> None:
        self.compute_reachability()
        self.propagate_shared_params()
        self.check_shared_rng_draws()
        self.check_taint()
        self.findings.sort(key=lambda f: (f.file, f.line, f.rule))


RULE_DOCS = {
    "shared-rng-draw": (
        "Rng draw on a shared/ambient stream reachable from an event-"
        "handler context; fork_stream() a keyed per-entity stream instead"
    ),
    "nondet-taint": (
        "nondeterminism source (wall clock, pointer cast, unordered "
        "iteration) propagates across call edges into a trace/digest/"
        "scheduling sink"
    ),
}


def write_sarif(findings: list[Finding], out_path: Path) -> None:
    results = []
    for f in findings:
        message = f.message
        if f.path:
            message += " | path: " + " -> ".join(f.path)
        results.append(
            {
                "ruleId": f.rule,
                "level": "error",
                "message": {"text": message},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {"uri": f.file},
                            "region": {"startLine": f.line},
                        }
                    }
                ],
            }
        )
    sarif = {
        "version": "2.1.0",
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "flow_lint",
                        "informationUri": "tools/flow_lint.py",
                        "rules": [
                            {
                                "id": rule,
                                "shortDescription": {"text": doc},
                            }
                            for rule, doc in sorted(RULE_DOCS.items())
                        ],
                    }
                },
                "results": results,
            }
        ],
    }
    out_path.write_text(json.dumps(sarif, indent=2) + "\n", encoding="utf-8")


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "roots",
        nargs="*",
        default=["src"],
        help="source roots to scan (default: src)",
    )
    parser.add_argument("--json", metavar="PATH",
                        help="write findings as JSON")
    parser.add_argument("--sarif", metavar="PATH",
                        help="write findings as SARIF 2.1.0")
    parser.add_argument(
        "--draw-sites",
        metavar="PATH",
        help="write the statically predicted Rng draw-site set as JSON "
        "(consumed by tests/rng_trace_test.cpp); '-' for stdout",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print rule names and exit"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule, doc in sorted(RULE_DOCS.items()):
            print(f"{rule}: {doc}")
        return 0

    roots = [Path(r) for r in (args.roots or ["src"])]
    for root in roots:
        if not root.is_dir():
            print(f"flow_lint: no such directory: {root}", file=sys.stderr)
            return 2

    analyzer = Analyzer(roots)
    analyzer.load()
    analyzer.run()

    if args.draw_sites:
        payload = json.dumps(
            {"draw_sites": analyzer.predicted_draw_sites()}, indent=2
        )
        if args.draw_sites == "-":
            print(payload)
        else:
            Path(args.draw_sites).write_text(payload + "\n", encoding="utf-8")

    if args.json:
        Path(args.json).write_text(
            json.dumps(
                {"findings": [f.as_dict() for f in analyzer.findings]},
                indent=2,
            )
            + "\n",
            encoding="utf-8",
        )
    if args.sarif:
        write_sarif(analyzer.findings, Path(args.sarif))

    for finding in analyzer.findings:
        print(finding)
    n_files = len(analyzer.files)
    n_fns = len(analyzer.functions)
    if analyzer.findings:
        print(
            f"flow_lint: {len(analyzer.findings)} unannotated finding(s) "
            f"across {n_files} files / {n_fns} functions; reviewed "
            "exceptions need // flow-lint:allow(<rule>)",
            file=sys.stderr,
        )
        return 1
    print(
        f"flow_lint: OK ({n_files} files, {n_fns} functions, "
        f"{len(analyzer.predicted_draw_sites())} draw sites traced)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
