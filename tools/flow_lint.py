#!/usr/bin/env python3
"""Interprocedural determinism dataflow analyzer for the Xanadu codebase.

determinism_lint.py checks single lines; this tool reasons across function
boundaries.  It runs on the shared cppmodel front end (one tokenizer, one
function extractor, one arity- and template-aware call graph for the whole
analysis family -- see tools/cppmodel/) and implements two analyses:

  shared-rng-draw   RNG stream lineage.  Every common::Rng draw site (next,
                    uniform, uniform_int, bernoulli, weighted_index,
                    exponential, normal, and the draw-consuming fork) is
                    traced back to its originating stream -- through
                    receiver members, Rng& parameters, and call edges.  A
                    draw on a *shared/ambient* stream (a member Rng of a
                    long-lived object, e.g. Cluster::rng_) that is reachable
                    from an event-handler context is an error: same-timestamp
                    (tied) events then race for draws, and firing order
                    decides which value lands where -- the exact mechanism of
                    the speculative provision-batch race the virtual-time
                    race detector pinned.  Deriving a stream with
                    fork_stream(stable_key) is always safe and never flagged.

  nondet-taint      Determinism taint.  Sources of nondeterminism (wall
                    clocks, getrusage/gettimeofday, pointer-to-integer
                    reinterpret_casts, unordered-container iteration order)
                    are propagated across call edges into sinks (metrics
                    trace/digest computation, event scheduling).  Findings
                    report the whole path: source -> f() -> g() -> sink.

Handler contexts are computed, not annotated: any function whose body
schedules or subscribes callbacks (schedule_after / schedule_at / subscribe)
is a handler root -- the lambdas it registers run at event time, and
token-level analysis attributes their bodies to the enclosing function --
and everything transitively callable from a root is handler-reachable.

Call edges resolve overload sets by argument arity, and call sites with an
explicit template argument list (`mix_jitter<double>(x, rng)`) additionally
filter by template-parameter compatibility -- such sites were invisible to
the pre-cppmodel extractor, a soundness hole.  When no definition admits a
site, the edge falls back to the whole overload set, keeping the analysis
over-approximate rather than unsound.
Both analyses over-approximate by design; a reviewed exception is silenced
on the offending line or the line directly above with:

    // flow-lint:allow(<rule>) justification

(The taint analysis also honours the narrower determinism_lint escapes
lint:allow(unordered-iteration) / lint:allow(wall-clock) at source sites,
so a line audited once is not annotated twice.)

Outputs: human-readable text (default), --json PATH, --sarif PATH (SARIF
2.1.0, uploadable as a CI code-scanning artifact), and --draw-sites PATH, a
JSON dump of every statically predicted Rng draw site.  The XANADU_RNG_TRACE
build records the draw sites actually executed, and
tests/rng_trace_test.cpp diffs that observed set against this predicted set:
the analyzer must be sound on src/ (no observed draw site it failed to
predict).

Exit status is 0 when no unannotated findings remain, 1 otherwise, 2 on
usage errors.  Run directly (`tools/flow_lint.py src bench`) or via
`ctest -R flow_lint` (or as part of the unified `xan_lint` driver, which
shares one parse across the whole analysis family).
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

from cppmodel import (
    Finding,
    SourceModel,
    allowed_at,
    match_paren,
    split_args,
)
from cppmodel import report as _report

# Draw methods of common::Rng.  fork() consumes a parent draw, so it counts;
# fork_stream() derives a child from the stream id without touching state,
# so it does not.
DRAW_METHODS = {
    "next",
    "uniform",
    "uniform_int",
    "bernoulli",
    "weighted_index",
    "exponential",
    "normal",
    "fork",
}

# Call names treated as determinism sinks: values flowing here become part
# of the replayable artifact (trace, digest) or decide event interleaving.
SINK_EXACT = {"schedule_after", "schedule_at"}
SINK_PATTERN = re.compile(r"^(trace\w*|\w*digest\w*)$")

# A receiver whose final component matches this is a member stream by the
# codebase's naming convention (rng_, bus_rng_, ...), independent of whether
# its declaration was seen.
MEMBER_RNG_NAME_RE = re.compile(r"(?:^|_)rng_$")

RANGE_FOR_RE = re.compile(
    r"\bfor\s*\([^;()]*?:\s*(?:this->)?([A-Za-z_][\w.\->]*)\s*\)"
)

# Taint sources recognised per line (within function bodies).
TAINT_SOURCE_RULES = [
    (
        "wall-clock",
        re.compile(
            r"\b(?:system_clock|steady_clock|high_resolution_clock)\s*::"
            r"\s*now\b|\bgettimeofday\s*\(|\bgetrusage\s*\("
        ),
        "wall-clock / rusage read",
    ),
    (
        "pointer-cast",
        re.compile(
            r"\breinterpret_cast\s*<\s*(?:std\s*::\s*)?"
            r"(?:u?int(?:8|16|32|64|ptr)?_t|size_t|unsigned\s+long|"
            r"long\s+long|long)\s*>"
        ),
        "pointer-to-integer cast (ASLR-dependent value)",
    ),
]

RULE_DOCS = {
    "shared-rng-draw": (
        "Rng draw on a shared/ambient stream reachable from an event-"
        "handler context; fork_stream() a keyed per-entity stream instead"
    ),
    "nondet-taint": (
        "nondeterminism source (wall clock, pointer cast, unordered "
        "iteration) propagates across call edges into a trace/digest/"
        "scheduling sink"
    ),
}


def _rng_param_names(fn) -> list[str]:
    """Names of parameters whose declared type mentions Rng."""
    names: list[str] = []
    for group in fn.param_groups:
        if "Rng" not in group:
            continue
        idents = [t for t in group if re.fullmatch(r"[A-Za-z_]\w*", t)]
        while idents and idents[-1] in ("Rng", "common", "const", "xanadu"):
            idents.pop()
        if idents:
            names.append(idents[-1])
    return names


class Analyzer:
    """The flow analyses over a (possibly shared) cppmodel parse."""

    def __init__(self, roots: list[Path], model: SourceModel | None = None):
        self.roots = roots
        self.model = model
        self.findings: list[Finding] = []
        # Per-function flow facts, keyed by id(fn).
        self._draws: dict[int, list[dict]] = {}
        self._rng_params: dict[int, list[str]] = {}
        self._sinks: dict[int, list[tuple[str, int]]] = {}
        self._sources: dict[int, list[tuple[str, int, str]]] = {}
        # Rng& / Rng parameters currently known to alias a shared stream,
        # mapped to the (origin description, caller chain) that proved it.
        self._shared_params: dict[int, dict[str, tuple[str, list[str]]]] = {}

    # -- loading ----------------------------------------------------------

    def load(self) -> None:
        if self.model is None:
            self.model = SourceModel(self.roots).load()
        for fn in self.model.functions:
            self._draws[id(fn)] = [
                {
                    "method": c.name,
                    "line": c.line,
                    "end_line": c.end_line,
                    "receiver": list(c.receiver),
                }
                for c in fn.calls
                if c.is_method and c.name in DRAW_METHODS
            ]
            self._rng_params[id(fn)] = _rng_param_names(fn)
            self._sinks[id(fn)] = [
                (c.name, c.line)
                for c in fn.calls
                if c.name in SINK_EXACT or SINK_PATTERN.match(c.name)
            ]
            self._shared_params[id(fn)] = {}
        self.collect_taint_sources()

    def collect_taint_sources(self) -> None:
        """Assigns per-line taint sources to the function spanning them."""
        for sf in self.model.files:
            spans = sf.functions
            for index, line in enumerate(sf.code_lines):
                lineno = index + 1
                hits: list[tuple[str, str]] = []
                for kind, pattern, what in TAINT_SOURCE_RULES:
                    if pattern.search(line):
                        hits.append((kind, what))
                match = RANGE_FOR_RE.search(line)
                if match:
                    target = re.split(r"\.|->", match.group(1))[-1]
                    if target in self.model.unordered_names:
                        hits.append(
                            (
                                "unordered-iteration",
                                f"iteration over unordered '{target}'",
                            )
                        )
                if not hits:
                    continue
                suppressed = allowed_at(sf.allow, lineno)
                for kind, what in hits:
                    if (
                        "nondet-taint" in suppressed
                        or kind in suppressed
                    ):
                        continue
                    for fn in spans:
                        if fn.line <= lineno <= fn.end_line:
                            self._sources.setdefault(id(fn), []).append(
                                (kind, lineno, what)
                            )
                            break

    # -- interprocedural shared-stream parameter flow ---------------------

    def propagate_shared_params(self) -> None:
        """Marks Rng parameters that receive a member stream at some
        handler-reachable call site, transitively."""
        model = self.model
        changed = True
        while changed:
            changed = False
            for caller in model.functions:
                if model.handler_chain(caller) is None:
                    continue
                tokens = model.file_of(caller).tokens
                caller_shared = self._shared_params[id(caller)]
                for call in caller.calls:
                    callees = [
                        c
                        for c in model.resolve_call(caller, call)
                        if self._rng_params[id(c)]
                    ]
                    if not callees:
                        continue
                    close = match_paren(tokens, call.open_idx)
                    args = split_args(tokens, call.open_idx, close)
                    for callee in callees:
                        # Positional matching is impractical name-based;
                        # instead: any argument that is itself a shared
                        # stream taints every Rng param of the callee.
                        # Over-approximate, silenced per-line if wrong.
                        shared_arg = None
                        for arg in args:
                            for tok in arg:
                                if self.is_member_rng(tok):
                                    shared_arg = (
                                        tok,
                                        f"{caller.file}:{call.line}",
                                    )
                                    break
                                if tok in caller_shared:
                                    origin, _ = caller_shared[tok]
                                    shared_arg = (
                                        origin,
                                        f"{caller.file}:{call.line}",
                                    )
                                    break
                            if shared_arg:
                                break
                        if not shared_arg:
                            continue
                        callee_shared = self._shared_params[id(callee)]
                        for param in self._rng_params[id(callee)]:
                            if param in callee_shared:
                                continue
                            origin = (
                                f"{shared_arg[0]} (passed at {shared_arg[1]})"
                            )
                            callee_shared[param] = (
                                origin,
                                [f"{caller.qualified}()"],
                            )
                            changed = True

    def is_member_rng(self, name: str) -> bool:
        return bool(MEMBER_RNG_NAME_RE.search(name)) or (
            name in self.model.member_rng_names
        )

    # -- rules ------------------------------------------------------------

    def check_shared_rng_draws(self) -> None:
        for fn in self.model.functions:
            chain = self.model.handler_chain(fn)
            if chain is None:
                continue
            allow = self.model.file_of(fn).allow
            shared_params = self._shared_params[id(fn)]
            for draw in self._draws[id(fn)]:
                receiver = draw["receiver"]
                if not receiver:
                    continue
                last = receiver[-1]
                shared = None
                path = list(chain)
                if self.is_member_rng(last):
                    shared = ".".join(receiver)
                elif last in shared_params:
                    origin, via = shared_params[last]
                    shared = f"{last} <- {origin}"
                    path = via + [f"{fn.qualified}()"]
                if shared is None:
                    continue
                if "shared-rng-draw" in allowed_at(allow, draw["line"]):
                    continue
                self.findings.append(
                    Finding(
                        fn.file,
                        draw["line"],
                        "shared-rng-draw",
                        f"draw '{'.'.join(receiver)}.{draw['method']}()' "
                        f"uses shared stream '{shared}' inside handler-"
                        "reachable code; same-timestamp events race for "
                        "draws -- fork_stream() a per-entity stream with a "
                        "stable key instead",
                        path + [f"{'.'.join(receiver)}.{draw['method']}()"],
                    )
                )

    def check_taint(self) -> None:
        # Function-level propagation: a function is tainted if it contains
        # a source or calls a tainted function; a finding is a sink call in
        # a tainted function.
        model = self.model
        taint: dict[int, tuple[str, list[str]]] = {}
        worklist = []
        for fn in model.functions:
            sources = self._sources.get(id(fn))
            if sources:
                kind, line, what = sources[0]
                taint[id(fn)] = (
                    f"{what} [{kind}] at {fn.file}:{line}",
                    [f"{fn.qualified}()"],
                )
                worklist.append(fn)
        # Caller edges resolved per call site: arity (and template-argument
        # count) decide which overload a site can taint-propagate from.
        callers = model.callers()
        while worklist:
            fn = worklist.pop()
            origin, chain = taint[id(fn)]
            for caller, _site in callers.get(id(fn), ()):
                if id(caller) not in taint:
                    taint[id(caller)] = (
                        origin,
                        chain + [f"{caller.qualified}()"],
                    )
                    worklist.append(caller)
        for fn in model.functions:
            if id(fn) not in taint:
                continue
            origin, chain = taint[id(fn)]
            allow = model.file_of(fn).allow
            for sink_name, line in self._sinks[id(fn)]:
                if "nondet-taint" in allowed_at(allow, line):
                    continue
                self.findings.append(
                    Finding(
                        fn.file,
                        line,
                        "nondet-taint",
                        f"nondeterminism reaches sink '{sink_name}()': "
                        f"{origin}",
                        chain + [f"{sink_name}()"],
                    )
                )

    # -- predicted draw sites ---------------------------------------------

    def predicted_draw_sites(self) -> list[dict]:
        """Every textual Rng-draw site, with the line span of the full call
        expression (multi-line calls record their whole extent).  This is
        deliberately an over-approximation -- soundness means the runtime-
        observed set must be a subset of this one."""
        sites: list[dict] = []
        for fn in self.model.functions:
            for draw in self._draws[id(fn)]:
                sites.append(
                    {
                        "file": fn.file,
                        "line": draw["line"],
                        "end_line": draw["end_line"],
                        "method": draw["method"],
                        "receiver": ".".join(draw["receiver"]),
                        "function": fn.qualified,
                    }
                )
        return sites

    def run(self) -> None:
        self.propagate_shared_params()
        self.check_shared_rng_draws()
        self.check_taint()
        self.findings.sort(key=lambda f: (f.file, f.line, f.rule))


def run_on_model(model: SourceModel) -> tuple[list[Finding], Analyzer]:
    """Entry point for the unified xan_lint driver: run both flow rules on
    an already-loaded shared parse."""
    analyzer = Analyzer(model.roots, model=model)
    analyzer.load()
    analyzer.run()
    return analyzer.findings, analyzer


def write_sarif(findings: list[Finding], out_path: Path) -> None:
    _report.write_sarif(findings, out_path, "flow_lint", RULE_DOCS)


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "roots",
        nargs="*",
        default=["src"],
        help="source roots to scan (default: src)",
    )
    parser.add_argument("--json", metavar="PATH",
                        help="write findings as JSON")
    parser.add_argument("--sarif", metavar="PATH",
                        help="write findings as SARIF 2.1.0")
    parser.add_argument(
        "--draw-sites",
        metavar="PATH",
        help="write the statically predicted Rng draw-site set as JSON "
        "(consumed by tests/rng_trace_test.cpp); '-' for stdout",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print rule names and exit"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule, doc in sorted(RULE_DOCS.items()):
            print(f"{rule}: {doc}")
        return 0

    roots = [Path(r) for r in (args.roots or ["src"])]
    for root in roots:
        if not root.is_dir():
            print(f"flow_lint: no such directory: {root}", file=sys.stderr)
            return 2

    analyzer = Analyzer(roots)
    analyzer.load()
    analyzer.run()

    if args.draw_sites:
        payload = json.dumps(
            {"draw_sites": analyzer.predicted_draw_sites()}, indent=2
        )
        if args.draw_sites == "-":
            print(payload)
        else:
            Path(args.draw_sites).write_text(payload + "\n", encoding="utf-8")

    if args.json:
        Path(args.json).write_text(
            json.dumps(
                {"findings": [f.as_dict() for f in analyzer.findings]},
                indent=2,
            )
            + "\n",
            encoding="utf-8",
        )
    if args.sarif:
        write_sarif(analyzer.findings, Path(args.sarif))

    for finding in analyzer.findings:
        print(finding)
    n_files = len(analyzer.model.files)
    n_fns = len(analyzer.model.functions)
    if analyzer.findings:
        print(
            f"flow_lint: {len(analyzer.findings)} unannotated finding(s) "
            f"across {n_files} files / {n_fns} functions; reviewed "
            "exceptions need // flow-lint:allow(<rule>)",
            file=sys.stderr,
        )
        return 1
    print(
        f"flow_lint: OK ({n_files} files, {n_fns} functions, "
        f"{len(analyzer.predicted_draw_sites())} draw sites traced)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
