// Thread-count invariance of the sharded workload runner: the conservative
// parallel drain (workload::run_sharded_mix) must produce byte-identical
// traces, digests and stats at any thread count, fault-free and faulted,
// across seeds.  This is the workload-level acceptance pin for the
// ShardedSimulator; the sim-layer machinery tests live in
// sharded_sim_test.cpp, and the unsharded golden digests stay pinned in
// determinism_test.cpp (the sequential path is untouched by the refactor).

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/dispatch_manager.hpp"
#include "metrics/trace.hpp"
#include "platform/calibration.hpp"
#include "sim/time.hpp"
#include "workflow/builders.hpp"
#include "workload/arrivals.hpp"
#include "workload/traffic_mix.hpp"

namespace xanadu {
namespace {

using core::DispatchManager;
using core::DispatchManagerOptions;
using core::PlatformKind;
using namespace xanadu::sim::literals;

workflow::WorkflowDag conditional_dag() {
  workflow::XorCastOptions options;
  options.levels = 3;
  options.fan = 3;
  return workflow::xor_cast_dag(options);
}

/// A three-tenant deployment set: each tenant is a full DispatchManager
/// (its own simulator/cluster/engine) seeded from `seed`, with the control
/// bus enabled so worker telemetry bridges into the fleet shard -- real
/// cross-shard traffic, not just independent shards side by side.
struct Scenario {
  std::vector<std::unique_ptr<DispatchManager>> managers;
  std::vector<workload::ShardedSource> shards;
};

Scenario make_scenario(std::uint64_t seed, bool faulted) {
  Scenario scenario;
  for (std::uint64_t tenant = 0; tenant < 3; ++tenant) {
    DispatchManagerOptions options;
    options.kind = PlatformKind::XanaduJit;
    options.seed = seed + 1000 * tenant;
    platform::PlatformCalibration calibration = platform::xanadu_calibration();
    calibration.control_bus.enabled = true;
    options.calibration = calibration;
    if (faulted) {
      // Mirrors determinism_test's FaultedRunSameSeedSameDigest rates.
      options.faults.bus_drop_rate = 0.1;
      options.faults.bus_delay_rate = 0.2;
      options.faults.provision_failure_rate = 0.2;
      options.faults.worker_crash_rate = 0.2;
    }
    auto manager = std::make_unique<DispatchManager>(options);

    workload::ShardedSource source;
    source.manager = manager.get();
    source.workflow = manager->deploy(conditional_dag());
    source.name = "tenant-" + std::to_string(tenant);
    common::Rng arrivals_rng{seed * 7919 + tenant};
    source.schedule = workload::poisson(400_ms, 3_s, arrivals_rng);
    if (source.schedule.empty()) {
      source.schedule = workload::fixed_interval(4, 500_ms);
    }
    scenario.shards.push_back(std::move(source));
    scenario.managers.push_back(std::move(manager));
  }
  return scenario;
}

/// Everything a run exposes that could possibly vary with thread count.
struct Fingerprint {
  std::uint64_t aggregate_trace = 0;
  std::vector<std::uint64_t> per_shard_trace;
  std::uint64_t state = 0;
  std::uint64_t fleet = 0;
  std::uint64_t fleet_events = 0;
  std::uint64_t windows = 0;
  std::uint64_t messages = 0;
  std::size_t events_fired = 0;
  std::size_t total = 0;
  std::size_t failed = 0;
  double mean_overhead_ms = 0.0;
  double p99_ms = 0.0;
};

Fingerprint run_fingerprint(std::uint64_t seed, bool faulted,
                            unsigned threads) {
  Scenario scenario = make_scenario(seed, faulted);
  workload::RunOptions options;
  options.threads = threads;
  if (faulted) options.allow_incomplete = true;
  const workload::ShardedOutcome outcome =
      workload::run_sharded_mix(scenario.shards, options);

  Fingerprint fp;
  fp.aggregate_trace = outcome.mixed.aggregate.trace_digest;
  for (const workload::RunOutcome& lane : outcome.mixed.per_source) {
    fp.per_shard_trace.push_back(lane.trace_digest);
  }
  fp.state = outcome.state_digest;
  fp.fleet = outcome.fleet_digest;
  fp.fleet_events = outcome.fleet_events;
  fp.windows = outcome.windows;
  fp.messages = outcome.cross_shard_messages;
  fp.events_fired = outcome.events_fired;
  fp.total = outcome.mixed.aggregate.total_count();
  fp.failed = outcome.mixed.aggregate.failed_count();
  fp.mean_overhead_ms = outcome.mixed.aggregate.mean_overhead_ms();
  fp.p99_ms = outcome.mixed.aggregate.histogram.quantile_ms(0.99);
  return fp;
}

void expect_same(const Fingerprint& a, const Fingerprint& b,
                 const std::string& what) {
  EXPECT_EQ(a.aggregate_trace, b.aggregate_trace) << what;
  EXPECT_EQ(a.per_shard_trace, b.per_shard_trace) << what;
  EXPECT_EQ(a.state, b.state) << what;
  EXPECT_EQ(a.fleet, b.fleet) << what;
  EXPECT_EQ(a.fleet_events, b.fleet_events) << what;
  EXPECT_EQ(a.windows, b.windows) << what;
  EXPECT_EQ(a.messages, b.messages) << what;
  EXPECT_EQ(a.events_fired, b.events_fired) << what;
  EXPECT_EQ(a.total, b.total) << what;
  EXPECT_EQ(a.failed, b.failed) << what;
  EXPECT_EQ(a.mean_overhead_ms, b.mean_overhead_ms) << what;  // Exact: same fold order.
  EXPECT_EQ(a.p99_ms, b.p99_ms) << what;
}

// ---------------------------------------------------------------------------
// Thread-count invariance: the acceptance matrix (threads x seeds, fault-free
// and faulted).  threads == 1 is the sequential reference drain.
// ---------------------------------------------------------------------------

TEST(sharded_determinism, FaultFreeParallelMatchesSequential) {
  for (const std::uint64_t seed : {7ull, 21ull, 42ull}) {
    const Fingerprint base = run_fingerprint(seed, false, 1);
    ASSERT_GT(base.total, 0u);
    ASSERT_GT(base.messages, 0u)
        << "scenario must exercise real cross-shard traffic";
    EXPECT_EQ(base.failed, 0u);
    for (const unsigned threads : {2u, 4u, 8u}) {
      expect_same(base, run_fingerprint(seed, false, threads),
                  "seed " + std::to_string(seed) + " threads " +
                      std::to_string(threads));
    }
  }
}

TEST(sharded_determinism, FaultedParallelMatchesSequential) {
  for (const std::uint64_t seed : {7ull, 21ull, 42ull}) {
    const Fingerprint base = run_fingerprint(seed, true, 1);
    ASSERT_GT(base.total, 0u);
    for (const unsigned threads : {2u, 4u, 8u}) {
      expect_same(base, run_fingerprint(seed, true, threads),
                  "faulted seed " + std::to_string(seed) + " threads " +
                      std::to_string(threads));
    }
  }
}

TEST(sharded_determinism, SameSeedSameRunDifferentSeedDifferentRun) {
  const Fingerprint a = run_fingerprint(42, false, 2);
  const Fingerprint b = run_fingerprint(42, false, 2);
  expect_same(a, b, "same seed replay");
  const Fingerprint c = run_fingerprint(43, false, 2);
  EXPECT_NE(a.aggregate_trace, c.aggregate_trace);
}

TEST(sharded_determinism, FleetViewSeesEveryTenant) {
  // The fleet shard's trackers consume bridged telemetry from all three
  // tenants; a run that provisions workers must surface events for each.
  const Fingerprint fp = run_fingerprint(42, false, 2);
  EXPECT_GT(fp.fleet_events, 0u);
  EXPECT_EQ(fp.fleet_events, fp.messages)
      << "every merged cross-shard message is one fleet telemetry delivery";
}

// ---------------------------------------------------------------------------
// Golden sharded digests.  Pinned like determinism_test's GoldenDigestGuard:
// if an intentional trace change lands, re-pin in the same commit and say
// why in the message.  Any thread count must reproduce these (the invariance
// tests above cover the rest of the matrix).
// ---------------------------------------------------------------------------

TEST(sharded_determinism, GoldenShardedDigestGuard) {
  const Fingerprint fault_free = run_fingerprint(42, false, 4);
  EXPECT_EQ(metrics::digest_hex(fault_free.aggregate_trace),
            "51686ecbc533f0f6");
  const Fingerprint faulted = run_fingerprint(42, true, 4);
  EXPECT_EQ(metrics::digest_hex(faulted.aggregate_trace), "11c142469ab442e5");
}

}  // namespace
}  // namespace xanadu
