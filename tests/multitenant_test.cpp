// Multi-tenant behaviour: several workflows deployed on one engine must stay
// isolated (disjoint FunctionId warm pools) while the engine-wide teardown
// operations (flush_all_warm_workers, fail_all_pending_requests) act across
// every tenant in deterministic id order.  Also covers the TrafficMix /
// run_mixed_schedule workload layer that interleaves their arrivals.

#include <gtest/gtest.h>

#include <vector>

#include "cluster/cluster.hpp"
#include "common/rng.hpp"
#include "core/dispatch_manager.hpp"
#include "platform/engine.hpp"
#include "platform/worker_state.hpp"
#include "sim/simulator.hpp"
#include "workflow/builders.hpp"
#include "workload/traffic_mix.hpp"

namespace xanadu::platform {
namespace {

using namespace xanadu::sim::literals;
using workflow::BuildOptions;

BuildOptions exact_options(double exec_ms = 500.0) {
  BuildOptions opts;
  opts.exec_time = sim::Duration::from_millis(exec_ms);
  opts.edge_delay = sim::Duration::zero();
  return opts;
}

class MultiTenantEngineTest : public ::testing::Test {
 protected:
  MultiTenantEngineTest() {
    auto profile = cluster::default_profile(workflow::SandboxKind::Container);
    profile.cold_start_jitter = sim::Duration::zero();
    profile.concurrency_penalty = 0.0;
    cluster_.catalog().set_profile(workflow::SandboxKind::Container, profile);
    calib_.overhead_jitter = sim::Duration::zero();
    calib_.worker_handoff = sim::Duration::zero();
  }

  sim::Simulator sim_;
  cluster::Cluster cluster_{cluster::ClusterOptions{}, common::Rng{7}};
  PlatformCalibration calib_;
};

TEST_F(MultiTenantEngineTest, WorkflowsGetDisjointFunctionIdsAndWarmPools) {
  PlatformEngine engine{sim_, cluster_, calib_, nullptr, common::Rng{11}};
  const auto wf_a =
      engine.register_workflow(workflow::linear_chain(2, exact_options()));
  const auto wf_b =
      engine.register_workflow(workflow::linear_chain(3, exact_options()));

  std::vector<common::FunctionId> fns_a, fns_b;
  for (std::size_t n = 0; n < 2; ++n) {
    fns_a.push_back(engine.function_id(wf_a, common::NodeId{n}));
  }
  for (std::size_t n = 0; n < 3; ++n) {
    fns_b.push_back(engine.function_id(wf_b, common::NodeId{n}));
  }
  for (const auto fa : fns_a) {
    for (const auto fb : fns_b) EXPECT_NE(fa, fb);
  }

  // Warming one tenant leaves the other fully cold.
  (void)engine.run_one(wf_a);
  for (const auto fa : fns_a) EXPECT_EQ(engine.warm_count(fa), 1u);
  for (const auto fb : fns_b) EXPECT_EQ(engine.warm_count(fb), 0u);

  // The second tenant's run cannot reuse the first tenant's workers: every
  // node cold-starts even though compatible sandboxes sit idle next door.
  const RequestResult b = engine.run_one(wf_b);
  EXPECT_EQ(b.cold_starts, 3u);
  for (const auto fa : fns_a) EXPECT_EQ(engine.warm_count(fa), 1u);
  for (const auto fb : fns_b) EXPECT_EQ(engine.warm_count(fb), 1u);
}

TEST_F(MultiTenantEngineTest, FlushAllWarmWorkersActsAcrossTenantsInIdOrder) {
  calib_.control_bus.enabled = true;
  PlatformEngine engine{sim_, cluster_, calib_, nullptr, common::Rng{11}};
  const auto wf_a =
      engine.register_workflow(workflow::linear_chain(2, exact_options()));
  const auto wf_b =
      engine.register_workflow(workflow::linear_chain(2, exact_options()));

  std::vector<common::FunctionId> dead_functions;
  engine.control_bus()->subscribe(
      kWorkerStateTopic, [&](const BusMessage& message) {
        const WorkerEvent event = decode(message.payload);
        if (event.kind == WorkerEventKind::Dead) {
          dead_functions.push_back(event.function);
        }
      });

  (void)engine.run_one(wf_a);
  (void)engine.run_one(wf_b);
  engine.flush_all_warm_workers();
  sim_.run_until(sim_.now() + 1_s);  // Drain bus deliveries.

  // One Dead event per warm worker of *both* tenants, in ascending
  // FunctionId order (the teardown iterates a sorted key list, never raw
  // hash-map order).
  ASSERT_EQ(dead_functions.size(), 4u);
  for (std::size_t i = 1; i < dead_functions.size(); ++i) {
    EXPECT_LT(dead_functions[i - 1].value(), dead_functions[i].value());
  }
  for (const auto fn : dead_functions) {
    EXPECT_EQ(engine.warm_count(fn), 0u);
  }
}

TEST_F(MultiTenantEngineTest, FailAllPendingRequestsActsAcrossTenantsInIdOrder) {
  PlatformEngine engine{sim_, cluster_, calib_, nullptr, common::Rng{11}};
  const auto wf_a =
      engine.register_workflow(workflow::linear_chain(2, exact_options()));
  const auto wf_b =
      engine.register_workflow(workflow::linear_chain(2, exact_options()));

  std::vector<RequestResult> failures;
  auto record = [&](const RequestResult& r) { failures.push_back(r); };
  const auto id_a1 = engine.submit(wf_a, record);
  const auto id_b = engine.submit(wf_b, record);
  const auto id_a2 = engine.submit(wf_a, record);

  engine.fail_all_pending_requests("test teardown");

  // All three in-flight requests -- across both tenants -- fail exactly
  // once, in ascending RequestId order regardless of submission workflow.
  ASSERT_EQ(failures.size(), 3u);
  EXPECT_EQ(failures[0].id, id_a1);
  EXPECT_EQ(failures[1].id, id_b);
  EXPECT_EQ(failures[2].id, id_a2);
  for (const RequestResult& r : failures) {
    EXPECT_TRUE(r.failed);
    EXPECT_EQ(r.failure_reason, "test teardown");
  }
  EXPECT_EQ(engine.recovery_stats().requests_failed, 3u);
}

// ---------------------------------------------------- workload layer ------

TEST(TrafficMixTest, MergedOrderIsTotallyOrderedWithSourceTieBreak) {
  workload::TrafficMix mix;
  mix.add_source(common::WorkflowId{1}, "a", {10_ms, 20_ms});
  mix.add_source(common::WorkflowId{2}, "b", {10_ms, 15_ms});

  const auto merged = mix.merged();
  ASSERT_EQ(merged.size(), 4u);
  EXPECT_EQ(mix.total_requests(), 4u);
  // Simultaneous arrivals (t = 10 ms) resolve in add_source order.
  EXPECT_EQ(merged[0].source, 0u);
  EXPECT_EQ(merged[1].source, 1u);
  EXPECT_EQ(merged[2].source, 1u);
  EXPECT_EQ(merged[3].source, 0u);
  EXPECT_EQ(merged[3].index, 1u);
}

TEST(TrafficMixTest, PoissonMixSplitsAggregateRateByWeight) {
  common::Rng rng{42};
  const auto mix = workload::poisson_mix(
      {{common::WorkflowId{1}, "light", 1.0},
       {common::WorkflowId{2}, "heavy", 4.0}},
      sim::Duration::from_millis(100), sim::Duration::from_minutes(30), rng);

  ASSERT_EQ(mix.sources().size(), 2u);
  const double light = static_cast<double>(mix.sources()[0].schedule.size());
  const double heavy = static_cast<double>(mix.sources()[1].schedule.size());
  // 30 min at 10 req/s aggregate: ~3600 light + ~14400 heavy.
  EXPECT_GT(light, 0.0);
  EXPECT_NEAR(heavy / light, 4.0, 0.5);

  common::Rng rng2{42};
  EXPECT_THROW(workload::poisson_mix({{common::WorkflowId{1}, "bad", 0.0}},
                                     sim::Duration::from_millis(100),
                                     sim::Duration::from_minutes(1), rng2),
               std::invalid_argument);
}

TEST(TrafficMixTest, RunMixedScheduleConservesRequestsPerWorkflow) {
  core::DispatchManagerOptions options;
  options.kind = core::PlatformKind::XanaduJit;
  core::DispatchManager manager{options};
  const auto wf_a = manager.deploy(workflow::linear_chain(2, exact_options()));
  const auto wf_b = manager.deploy(workflow::linear_chain(3, exact_options()));

  workload::TrafficMix mix;
  mix.add_source(wf_a, "a", workload::fixed_interval(5, 200_ms));
  mix.add_source(wf_b, "b", workload::fixed_interval(3, 300_ms));

  const auto outcome = workload::run_mixed_schedule(manager, mix);
  EXPECT_EQ(outcome.aggregate.results.size(), 8u);
  EXPECT_EQ(outcome.aggregate.failed_count(), 0u);
  ASSERT_EQ(outcome.per_source.size(), 2u);
  EXPECT_EQ(outcome.source_names, (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(outcome.per_source[0].results.size(), 5u);
  EXPECT_EQ(outcome.per_source[1].results.size(), 3u);
  // Per-source slices carry the right tenant's results: node counts match
  // each workflow's shape, and every result routes back to its workflow id.
  for (const auto& r : outcome.per_source[0].results) {
    EXPECT_EQ(r.workflow, wf_a);
    EXPECT_EQ(r.executed_nodes, 2u);
  }
  for (const auto& r : outcome.per_source[1].results) {
    EXPECT_EQ(r.workflow, wf_b);
    EXPECT_EQ(r.executed_nodes, 3u);
  }
}

TEST(TrafficMixTest, RunMixedScheduleRejectsUnsortedSources) {
  core::DispatchManagerOptions options;
  options.kind = core::PlatformKind::XanaduJit;
  core::DispatchManager manager{options};
  const auto wf = manager.deploy(workflow::linear_chain(1, exact_options()));

  workload::TrafficMix mix;
  mix.add_source(wf, "bad", {20_ms, 10_ms});
  EXPECT_THROW((void)workload::run_mixed_schedule(manager, mix),
               std::invalid_argument);
}

TEST(TrafficMixTest, SingleSourceMixMatchesRunSchedule) {
  // run_schedule delegates to run_mixed_schedule; the two entry points must
  // agree result-for-result on identical traffic.
  const auto schedule = workload::fixed_interval(4, 250_ms);

  core::DispatchManagerOptions options;
  options.kind = core::PlatformKind::KnativeLike;
  core::DispatchManager direct{options};
  const auto wf_direct =
      direct.deploy(workflow::linear_chain(2, exact_options()));
  const auto plain = workload::run_schedule(direct, wf_direct, schedule);

  core::DispatchManager mixed{options};
  const auto wf_mixed =
      mixed.deploy(workflow::linear_chain(2, exact_options()));
  workload::TrafficMix mix;
  mix.add_source(wf_mixed, "only", schedule);
  const auto via_mix = workload::run_mixed_schedule(mixed, mix);

  ASSERT_EQ(plain.results.size(), via_mix.aggregate.results.size());
  for (std::size_t i = 0; i < plain.results.size(); ++i) {
    EXPECT_EQ(plain.results[i].end_to_end.micros(),
              via_mix.aggregate.results[i].end_to_end.micros());
    EXPECT_EQ(plain.results[i].cold_starts,
              via_mix.aggregate.results[i].cold_starts);
  }
}

}  // namespace
}  // namespace xanadu::platform
