// Tests for workload generators (arrival processes, case studies) and the
// experiment runner.

#include <gtest/gtest.h>

#include "workflow/builders.hpp"
#include "workload/arrivals.hpp"
#include "workload/case_studies.hpp"
#include "workload/runner.hpp"

namespace xanadu::workload {
namespace {

using sim::Duration;

// ------------------------------------------------------------- arrivals ---

TEST(Arrivals, FixedIntervalSpacing) {
  const auto schedule = fixed_interval(5, Duration::from_seconds(2));
  ASSERT_EQ(schedule.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(schedule[i], Duration::from_seconds(2.0 * static_cast<double>(i)));
  }
  EXPECT_THROW(fixed_interval(3, Duration::from_seconds(-1)),
               std::invalid_argument);
}

TEST(Arrivals, DecreasingProgressionMatchesPaperProtocol) {
  // 60 min gaps stepping by 10 down to 30, by 5 down to 10, by 1 down to 1.
  const auto schedule = decreasing_progression();
  ASSERT_GE(schedule.size(), 3u);
  std::vector<double> gaps;
  for (std::size_t i = 1; i < schedule.size(); ++i) {
    gaps.push_back((schedule[i] - schedule[i - 1]).seconds() / 60.0);
  }
  // First gap is 60 min; gaps strictly decrease; final gap is 1 min.
  EXPECT_DOUBLE_EQ(gaps.front(), 60.0);
  EXPECT_DOUBLE_EQ(gaps.back(), 1.0);
  for (std::size_t i = 1; i < gaps.size(); ++i) EXPECT_LT(gaps[i], gaps[i - 1]);
  // The protocol's three step regimes all occur.
  bool has10 = false, has5 = false, has1 = false;
  for (std::size_t i = 1; i < gaps.size(); ++i) {
    const double step = gaps[i - 1] - gaps[i];
    if (step == 10.0) has10 = true;
    if (step == 5.0) has5 = true;
    if (step == 1.0) has1 = true;
  }
  EXPECT_TRUE(has10);
  EXPECT_TRUE(has5);
  EXPECT_TRUE(has1);
}

TEST(Arrivals, UniformRandomGapsWithinBounds) {
  common::Rng rng{3};
  const auto schedule = uniform_random(Duration::zero(),
                                       Duration::from_minutes(60),
                                       Duration::from_minutes(16 * 60), rng);
  // ~2 requests/hour over 16 h -> roughly 32 arrivals.
  EXPECT_GT(schedule.size(), 20u);
  EXPECT_LT(schedule.size(), 50u);
  for (std::size_t i = 1; i < schedule.size(); ++i) {
    const auto gap = schedule[i] - schedule[i - 1];
    EXPECT_GE(gap, Duration::zero());
    EXPECT_LT(gap, Duration::from_minutes(60));
  }
}

TEST(Arrivals, UniformRandomValidation) {
  common::Rng rng{3};
  EXPECT_THROW(uniform_random(Duration::from_seconds(5), Duration::zero(),
                              Duration::from_seconds(100), rng),
               std::invalid_argument);
}

TEST(Arrivals, PoissonMeanGap) {
  common::Rng rng{5};
  const auto schedule =
      poisson(Duration::from_seconds(10), Duration::from_seconds(20000), rng);
  // ~2000 arrivals expected.
  EXPECT_NEAR(static_cast<double>(schedule.size()), 2000.0, 200.0);
  EXPECT_THROW(poisson(Duration::zero(), Duration::from_seconds(1), rng),
               std::invalid_argument);
}

// --------------------------------------------------------- case studies ---

TEST(CaseStudies, EcommerceStagesMatchPaper) {
  const auto dag = ecommerce_checkout();
  ASSERT_EQ(dag.node_count(), 5u);
  EXPECT_EQ(dag.depth(), 5u);
  const std::vector<std::pair<std::string, double>> expected{
      {"order", 2000}, {"discount", 100}, {"payment", 2500},
      {"invoice", 300}, {"shipping", 500}};
  for (std::size_t i = 0; i < expected.size(); ++i) {
    const auto& node = dag.node(common::NodeId{i});
    EXPECT_EQ(node.fn.name, expected[i].first);
    EXPECT_NEAR(node.fn.exec_time.millis(), expected[i].second, 0.1);
  }
}

TEST(CaseStudies, ImagePipelineStagesMatchPaper) {
  const auto dag = image_pipeline();
  ASSERT_EQ(dag.node_count(), 5u);
  double total = 0.0;
  for (const auto& node : dag.nodes()) total += node.fn.exec_time.millis();
  // 400 + 350 + 600 + 500 + 300 = 2150 ms of raw execution.
  EXPECT_NEAR(total, 2150.0, 0.1);
}

TEST(CaseStudies, OptionsPropagate) {
  CaseStudyOptions opts;
  opts.sandbox = workflow::SandboxKind::Isolate;
  opts.memory_mb = 128;
  opts.jitter_fraction = 0.0;
  const auto dag = image_pipeline(opts);
  for (const auto& node : dag.nodes()) {
    EXPECT_EQ(node.fn.sandbox, workflow::SandboxKind::Isolate);
    EXPECT_DOUBLE_EQ(node.fn.memory_mb, 128.0);
    EXPECT_EQ(node.fn.exec_jitter, Duration::zero());
  }
}

// ----------------------------------------------------------------- runner -

TEST(Runner, ColdTrialsAreAllCold) {
  core::DispatchManagerOptions options;
  options.kind = core::PlatformKind::XanaduCold;
  core::DispatchManager manager{options};
  workflow::BuildOptions build;
  build.exec_time = Duration::from_millis(500);
  const auto wf = manager.deploy(workflow::linear_chain(3, build));
  const RunOutcome outcome = run_cold_trials(manager, wf, 5);
  ASSERT_EQ(outcome.results.size(), 5u);
  for (const auto& r : outcome.results) {
    EXPECT_EQ(r.cold_starts, 3u);
  }
  EXPECT_EQ(outcome.ledger_delta.workers_provisioned, 15u);
  EXPECT_GT(outcome.mean_overhead_ms(), 3 * 3000.0);
}

TEST(Runner, ScheduleWithinKeepAliveReusesWorkers) {
  core::DispatchManagerOptions options;
  options.kind = core::PlatformKind::XanaduCold;
  core::DispatchManager manager{options};
  workflow::BuildOptions build;
  build.exec_time = Duration::from_millis(200);
  const auto wf = manager.deploy(workflow::linear_chain(2, build));
  // 4 requests 30 s apart: within the 10 min keep-alive, only the first is
  // cold.
  const RunOutcome outcome = run_schedule(
      manager, wf, fixed_interval(4, Duration::from_seconds(30)));
  EXPECT_EQ(outcome.results[0].cold_starts, 2u);
  for (std::size_t i = 1; i < 4; ++i) {
    EXPECT_EQ(outcome.results[i].cold_starts, 0u) << i;
  }
  EXPECT_EQ(outcome.ledger_delta.workers_provisioned, 2u);
}

TEST(Runner, FractionOverThreshold) {
  RunOutcome outcome;
  platform::RequestResult fast;
  fast.overhead = Duration::from_millis(100);
  platform::RequestResult slow;
  slow.overhead = Duration::from_millis(5000);
  outcome.results = {fast, slow, slow, slow};
  EXPECT_DOUBLE_EQ(outcome.fraction_over(Duration::from_millis(1000)), 0.75);
}

TEST(Runner, RejectsUnsortedSchedule) {
  core::DispatchManagerOptions options;
  options.kind = core::PlatformKind::XanaduCold;
  core::DispatchManager manager{options};
  const auto wf = manager.deploy(workflow::linear_chain(1));
  ArrivalSchedule bad{Duration::from_seconds(5), Duration::from_seconds(1)};
  EXPECT_THROW(run_schedule(manager, wf, bad), std::invalid_argument);
}

}  // namespace
}  // namespace xanadu::workload
