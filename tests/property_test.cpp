// Parameterized property sweeps: invariants that must hold for every
// platform mode, chain length, sandbox kind and seed.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "core/dispatch_manager.hpp"
#include "workflow/builders.hpp"
#include "workflow/random_tree.hpp"
#include "workload/runner.hpp"

namespace xanadu {
namespace {

using core::DispatchManager;
using core::DispatchManagerOptions;
using core::PlatformKind;
using platform::NodeStatus;
using platform::RequestResult;
using sim::Duration;

DispatchManager make(PlatformKind kind, std::uint64_t seed) {
  DispatchManagerOptions options;
  options.kind = kind;
  options.seed = seed;
  return DispatchManager{options};
}

/// gtest parameter names may only contain [A-Za-z0-9_].
std::string safe_name(PlatformKind kind) {
  std::string name = core::to_string(kind);
  for (char& c : name) {
    if (c == '-') c = '_';
  }
  return name;
}

// ---------------------------------------------------------------------------
// Invariants over (platform, chain length).
// ---------------------------------------------------------------------------

using ModeLength = std::tuple<PlatformKind, std::size_t>;

class RequestInvariants : public ::testing::TestWithParam<ModeLength> {};

TEST_P(RequestInvariants, LinearChainInvariantsHold) {
  const auto [kind, length] = GetParam();
  auto manager = make(kind, 42);
  workflow::BuildOptions opts;
  opts.exec_time = Duration::from_millis(800);
  const auto wf = manager.deploy(workflow::linear_chain(length, opts));
  for (int trial = 0; trial < 3; ++trial) {
    manager.force_cold_start();
    const RequestResult r = manager.invoke(wf);
    // Every node of a linear chain executes; nothing is skipped.
    EXPECT_EQ(r.executed_nodes, length);
    EXPECT_EQ(r.skipped_nodes, 0u);
    // Time sanity: overhead is non-negative and end-to-end covers the
    // critical path.
    EXPECT_GE(r.overhead, Duration::zero());
    EXPECT_GE(r.end_to_end, r.critical_path_exec);
    // Cold starts cannot exceed executed nodes.
    EXPECT_LE(r.cold_starts, r.executed_nodes);
    // Node timing monotonicity along the chain.
    for (std::size_t i = 0; i < length; ++i) {
      const auto& record = r.node_records[i];
      EXPECT_EQ(record.status, NodeStatus::Completed);
      EXPECT_LE(record.trigger_time, record.exec_start);
      EXPECT_LT(record.exec_start, record.exec_end);
      if (i > 0) {
        EXPECT_GE(record.trigger_time, r.node_records[i - 1].exec_end);
      }
    }
    // The ledger never reports negative totals.
    const auto& ledger = manager.ledger();
    EXPECT_GE(ledger.provision_cpu_core_seconds, 0.0);
    EXPECT_GE(ledger.idle_memory_mb_seconds, 0.0);
    EXPECT_GE(ledger.pre_use_memory_mb_seconds, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, RequestInvariants,
    ::testing::Combine(
        ::testing::Values(PlatformKind::XanaduCold,
                          PlatformKind::XanaduSpeculative,
                          PlatformKind::XanaduJit, PlatformKind::KnativeLike,
                          PlatformKind::OpenWhiskLike, PlatformKind::AsfLike,
                          PlatformKind::AdfLike, PlatformKind::PrewarmAll),
        ::testing::Values(1u, 3u, 6u)),
    [](const ::testing::TestParamInfo<ModeLength>& info) {
      return safe_name(std::get<0>(info.param)) + "_len" +
             std::to_string(std::get<1>(info.param));
    });

// ---------------------------------------------------------------------------
// Invariants over random conditional trees and Xanadu modes.
// ---------------------------------------------------------------------------

using ModeSeed = std::tuple<PlatformKind, std::uint64_t>;

class ConditionalTreeInvariants : public ::testing::TestWithParam<ModeSeed> {};

TEST_P(ConditionalTreeInvariants, XorSemanticsAndAccountingHold) {
  const auto [kind, seed] = GetParam();
  common::Rng tree_rng{seed};
  workflow::RandomTreeOptions tree_opts;
  tree_opts.node_count = 9;
  tree_opts.base.exec_time = Duration::from_millis(600);
  const auto dag = workflow::random_binary_tree(tree_opts, tree_rng);

  auto manager = make(kind, seed);
  const auto wf = manager.deploy(dag);
  for (int trial = 0; trial < 5; ++trial) {
    manager.force_cold_start();
    const RequestResult r = manager.invoke(wf);
    // Exactly one branch taken at each executed XOR parent.
    for (const auto& node : dag.nodes()) {
      if (node.dispatch != workflow::DispatchMode::Xor ||
          node.children.size() != 2) {
        continue;
      }
      if (r.node_records[node.id.value()].status != NodeStatus::Completed) {
        continue;
      }
      int executed_children = 0;
      for (const auto& e : node.children) {
        const auto status = r.node_records[e.child.value()].status;
        if (status == NodeStatus::Completed) ++executed_children;
      }
      EXPECT_EQ(executed_children, 1);
    }
    // Executed + skipped covers the whole tree.
    EXPECT_EQ(r.executed_nodes + r.skipped_nodes, dag.node_count());
    // The root always executes.
    EXPECT_EQ(r.node_records[dag.roots().front().value()].status,
              NodeStatus::Completed);
    // Speculation bookkeeping is internally consistent.
    EXPECT_LE(r.speculation.missed_nodes, r.speculation.predicted_nodes);
  }
}

INSTANTIATE_TEST_SUITE_P(
    ModesAndSeeds, ConditionalTreeInvariants,
    ::testing::Combine(::testing::Values(PlatformKind::XanaduCold,
                                         PlatformKind::XanaduSpeculative,
                                         PlatformKind::XanaduJit),
                       ::testing::Values(11u, 22u, 33u, 44u)),
    [](const ::testing::TestParamInfo<ModeSeed>& info) {
      return safe_name(std::get<0>(info.param)) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

// ---------------------------------------------------------------------------
// Speculation-dominance property: on deterministic chains, speculation never
// increases latency relative to cold, for any sandbox kind.
// ---------------------------------------------------------------------------

class SandboxSweep
    : public ::testing::TestWithParam<workflow::SandboxKind> {};

TEST_P(SandboxSweep, SpeculationNeverHurtsDeterministicChains) {
  const workflow::SandboxKind sandbox = GetParam();
  workflow::BuildOptions opts;
  opts.exec_time = Duration::from_seconds(5);
  opts.sandbox = sandbox;

  auto cold = make(PlatformKind::XanaduCold, 42);
  auto spec = make(PlatformKind::XanaduSpeculative, 42);
  const auto wf_cold = cold.deploy(workflow::linear_chain(6, opts));
  const auto wf_spec = spec.deploy(workflow::linear_chain(6, opts));
  const auto cold_outcome = workload::run_cold_trials(cold, wf_cold, 3);
  const auto spec_outcome = workload::run_cold_trials(spec, wf_spec, 3);
  EXPECT_LT(spec_outcome.mean_overhead_ms(), cold_outcome.mean_overhead_ms());
}

INSTANTIATE_TEST_SUITE_P(Kinds, SandboxSweep,
                         ::testing::Values(workflow::SandboxKind::Container,
                                           workflow::SandboxKind::Process,
                                           workflow::SandboxKind::Isolate),
                         [](const auto& info) {
                           return workflow::to_string(info.param);
                         });

// ---------------------------------------------------------------------------
// Aggressiveness sweep: predicted nodes scale with the parameter.
// ---------------------------------------------------------------------------

class AggressivenessSweep : public ::testing::TestWithParam<double> {};

TEST_P(AggressivenessSweep, PredictedNodesMatchCut) {
  const double aggressiveness = GetParam();
  DispatchManagerOptions options;
  options.kind = PlatformKind::XanaduSpeculative;
  options.xanadu.aggressiveness = aggressiveness;
  DispatchManager manager{options};
  workflow::BuildOptions opts;
  opts.exec_time = Duration::from_millis(500);
  const auto wf = manager.deploy(workflow::linear_chain(10, opts));
  const RequestResult r = manager.invoke(wf);
  const auto expected = static_cast<std::size_t>(
      std::ceil(aggressiveness * 10.0));
  EXPECT_EQ(r.speculation.predicted_nodes, expected);
}

INSTANTIATE_TEST_SUITE_P(Levels, AggressivenessSweep,
                         ::testing::Values(0.1, 0.3, 0.5, 0.7, 1.0),
                         [](const auto& info) {
                           return "a" + std::to_string(static_cast<int>(
                                            info.param * 100));
                         });

}  // namespace
}  // namespace xanadu
