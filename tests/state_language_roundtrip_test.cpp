// Round-trip property tests: exporting a workflow to the state-definition
// language and re-parsing it must reconstruct an equivalent DAG.  Also
// covers the DispatchManager's named-workflow document API.

#include <gtest/gtest.h>

#include <map>

#include "core/dispatch_manager.hpp"
#include "workflow/builders.hpp"
#include "workflow/random_tree.hpp"
#include "workflow/state_language.hpp"

namespace xanadu::workflow {
namespace {

/// Structural equivalence by function name: specs, parent sets, dispatch
/// modes, and XOR probability splits.
void expect_equivalent(const WorkflowDag& a, const WorkflowDag& b) {
  ASSERT_EQ(a.node_count(), b.node_count());
  EXPECT_EQ(a.depth(), b.depth());
  EXPECT_EQ(a.conditional_points(), b.conditional_points());
  for (const Node& node : a.nodes()) {
    const NodeId other_id = b.find_by_name(node.fn.name);
    ASSERT_TRUE(other_id.valid()) << node.fn.name;
    const Node& other = b.node(other_id);
    EXPECT_DOUBLE_EQ(node.fn.memory_mb, other.fn.memory_mb);
    EXPECT_EQ(node.fn.sandbox, other.fn.sandbox);
    EXPECT_EQ(node.fn.exec_time.micros(), other.fn.exec_time.micros());
    // Parent names must match as sets.
    std::multiset<std::string> parents_a, parents_b;
    for (const NodeId p : node.parents) parents_a.insert(a.node(p).fn.name);
    for (const NodeId p : other.parents) parents_b.insert(b.node(p).fn.name);
    EXPECT_EQ(parents_a, parents_b) << node.fn.name;
    // XOR probabilities (normalised) must match per child name.
    if (node.dispatch == DispatchMode::Xor && node.children.size() == 2) {
      EXPECT_EQ(other.dispatch, DispatchMode::Xor);
      std::map<std::string, double> probs_a, probs_b;
      double total_a = 0, total_b = 0;
      for (const Edge& e : node.children) total_a += e.probability;
      for (const Edge& e : other.children) total_b += e.probability;
      for (const Edge& e : node.children) {
        probs_a[a.node(e.child).fn.name] = e.probability / total_a;
      }
      for (const Edge& e : other.children) {
        probs_b[b.node(e.child).fn.name] = e.probability / total_b;
      }
      ASSERT_EQ(probs_a.size(), probs_b.size());
      for (const auto& [name, p] : probs_a) {
        ASSERT_TRUE(probs_b.contains(name));
        EXPECT_NEAR(p, probs_b.at(name), 1e-9) << name;
      }
    }
  }
}

WorkflowDag roundtrip(const WorkflowDag& dag) {
  auto text = to_state_language(dag);
  EXPECT_TRUE(text.ok()) << (text.ok() ? "" : text.error().message);
  auto parsed = parse_state_language(text.value(), dag.name());
  EXPECT_TRUE(parsed.ok()) << (parsed.ok() ? "" : parsed.error().message);
  return std::move(parsed).value();
}

TEST(StateLanguageRoundTrip, LinearChain) {
  BuildOptions opts;
  opts.exec_time = sim::Duration::from_millis(750);
  opts.memory_mb = 256;
  opts.sandbox = SandboxKind::Process;
  const WorkflowDag dag = linear_chain(5, opts);
  expect_equivalent(dag, roundtrip(dag));
}

TEST(StateLanguageRoundTrip, FanOutAndFanIn) {
  expect_equivalent(fan_out(4), roundtrip(fan_out(4)));
  expect_equivalent(fan_in(3), roundtrip(fan_in(3)));
  expect_equivalent(diamond(3), roundtrip(diamond(3)));
}

TEST(StateLanguageRoundTrip, ConditionalTree) {
  // A hand-built two-level conditional tree with uneven probabilities.
  WorkflowDag dag{"cond"};
  FunctionSpec spec;
  spec.name = "root";
  spec.exec_time = sim::Duration::from_millis(300);
  const auto root = dag.add_node(spec, DispatchMode::Xor);
  spec.name = "left";
  const auto left = dag.add_node(spec, DispatchMode::Xor);
  spec.name = "right";
  const auto right = dag.add_node(spec);
  spec.name = "ll";
  const auto ll = dag.add_node(spec);
  spec.name = "lr";
  const auto lr = dag.add_node(spec);
  dag.add_edge(root, left, 0.7);
  dag.add_edge(root, right, 0.3);
  dag.add_edge(left, ll, 0.9);
  dag.add_edge(left, lr, 0.1);
  dag.validate();
  expect_equivalent(dag, roundtrip(dag));
}

class RandomTreeRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomTreeRoundTrip, RandomBinaryTreesSurviveRoundTrip) {
  common::Rng rng{GetParam()};
  for (std::size_t nodes = 1; nodes <= 10; ++nodes) {
    RandomTreeOptions opts;
    opts.node_count = nodes;
    const WorkflowDag dag = random_binary_tree(opts, rng);
    expect_equivalent(dag, roundtrip(dag));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTreeRoundTrip,
                         ::testing::Values(2u, 5u, 19u, 83u));

TEST(StateLanguageRoundTrip, ExecutionBehaviourIsPreserved) {
  // Beyond structure: the re-parsed workflow must produce identical
  // deterministic execution results.
  common::Rng rng{7};
  RandomTreeOptions opts;
  opts.node_count = 7;
  const WorkflowDag original = random_binary_tree(opts, rng);
  const WorkflowDag reparsed = roundtrip(original);

  auto run = [](const WorkflowDag& dag) {
    core::DispatchManagerOptions options;
    options.kind = core::PlatformKind::XanaduCold;
    options.seed = 31;
    core::DispatchManager manager{options};
    const auto wf = manager.deploy(dag);
    double total = 0;
    for (int i = 0; i < 5; ++i) {
      manager.force_cold_start();
      total += manager.invoke(wf).end_to_end.millis();
    }
    return total;
  };
  EXPECT_DOUBLE_EQ(run(original), run(reparsed));
}

TEST(StateLanguageWriter, RejectsInexpressibleWorkflows) {
  // Three-way XOR cannot be expressed as success/fail.
  XorCastOptions xor_opts;
  xor_opts.levels = 1;
  xor_opts.fan = 3;
  auto result = to_state_language(xor_cast_dag(xor_opts));
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error().message.find("success/fail"), std::string::npos);

  // An XOR child with a second parent cannot be a branch entry.
  WorkflowDag dag{"bad"};
  FunctionSpec spec;
  spec.name = "x";
  const auto x = dag.add_node(spec, DispatchMode::Xor);
  spec.name = "other";
  const auto other = dag.add_node(spec);
  spec.name = "a";
  const auto a = dag.add_node(spec);
  spec.name = "b";
  const auto b = dag.add_node(spec);
  dag.add_edge(x, a, 0.5);
  dag.add_edge(x, b, 0.5);
  dag.add_edge(other, a);
  auto multi = to_state_language(dag);
  ASSERT_FALSE(multi.ok());
  EXPECT_NE(multi.error().message.find("multiple parents"), std::string::npos);
}

TEST(StateLanguageWriter, JitterFieldRoundTrips) {
  BuildOptions opts;
  opts.exec_jitter = sim::Duration::from_millis(35);
  const WorkflowDag dag = linear_chain(2, opts);
  const WorkflowDag back = roundtrip(dag);
  EXPECT_EQ(back.node(NodeId{0}).fn.exec_jitter.micros(),
            sim::Duration::from_millis(35).micros());
}

// ------------------------------------------------- named deployments ------

TEST(NamedWorkflows, DeployInvokeAndLookup) {
  core::DispatchManagerOptions options;
  options.kind = core::PlatformKind::XanaduJit;
  core::DispatchManager manager{options};

  const char* doc = R"({
    "a": {"type": "function", "exec_ms": 200},
    "b": {"type": "function", "exec_ms": 300, "wait_for": ["a"]}
  })";
  auto deployed = manager.deploy_document(doc, "pipeline");
  ASSERT_TRUE(deployed.ok()) << deployed.error().message;
  EXPECT_EQ(manager.find_named("pipeline"), deployed.value());
  EXPECT_FALSE(manager.find_named("ghost").valid());

  const auto result = manager.invoke_named("pipeline");
  EXPECT_EQ(result.executed_nodes, 2u);
  EXPECT_THROW(manager.invoke_named("ghost"), std::invalid_argument);

  // Duplicate names are rejected; malformed documents report errors.
  EXPECT_FALSE(manager.deploy_document(doc, "pipeline").ok());
  EXPECT_FALSE(manager.deploy_document("{]", "broken").ok());
}

TEST(NamedWorkflows, TryInvokeNamedReportsUnknownNamesAsErrors) {
  core::DispatchManagerOptions options;
  options.kind = core::PlatformKind::XanaduJit;
  core::DispatchManager manager{options};

  const char* doc = R"({
    "a": {"type": "function", "exec_ms": 200},
    "b": {"type": "function", "exec_ms": 300, "wait_for": ["a"]}
  })";
  ASSERT_TRUE(manager.deploy_document(doc, "pipeline").ok());

  auto ok = manager.try_invoke_named("pipeline");
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value().executed_nodes, 2u);

  auto missing = manager.try_invoke_named("ghost");
  ASSERT_FALSE(missing.ok());
  EXPECT_NE(missing.error().message.find("ghost"), std::string::npos);

  // The throwing wrapper routes through the same path and surfaces the same
  // message for callers that treat unknown names as fatal.
  try {
    (void)manager.invoke_named("ghost");
    FAIL() << "invoke_named must throw for unknown names";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string{e.what()}.find("ghost"), std::string::npos);
  }
}

}  // namespace
}  // namespace xanadu::workflow
