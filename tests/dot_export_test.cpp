// Tests for the GraphViz export and for platform behaviour at cluster
// capacity limits.

#include <gtest/gtest.h>

#include "core/dispatch_manager.hpp"
#include "metrics/dot_export.hpp"
#include "workflow/builders.hpp"

namespace xanadu {
namespace {

using sim::Duration;

TEST(DotExport, StaticStructure) {
  workflow::XorCastOptions opts;
  opts.levels = 1;
  opts.fan = 2;
  const auto dag = workflow::xor_cast_dag(opts);
  const std::string dot = metrics::to_dot(dag);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  // One node statement per node, one edge per edge.
  EXPECT_NE(dot.find("n0 -> n1"), std::string::npos);
  EXPECT_NE(dot.find("n0 -> n2"), std::string::npos);
  // XOR parents are diamonds with probability labels.
  EXPECT_NE(dot.find("shape=diamond"), std::string::npos);
  EXPECT_NE(dot.find("p=0.70"), std::string::npos);
  // Regular functions are boxes.
  EXPECT_NE(dot.find("shape=box"), std::string::npos);
}

TEST(DotExport, EdgeDelaysLabelled) {
  workflow::BuildOptions opts;
  opts.edge_delay = Duration::from_millis(25);
  const auto dag = workflow::linear_chain(2, opts);
  const std::string dot = metrics::to_dot(dag);
  EXPECT_NE(dot.find("+25ms"), std::string::npos);
}

TEST(DotExport, ExecutionOverlayMarksOutcomes) {
  core::DispatchManagerOptions options;
  options.kind = core::PlatformKind::XanaduCold;
  core::DispatchManager manager{options};
  workflow::XorCastOptions opts;
  opts.levels = 1;
  opts.fan = 2;
  const auto dag = workflow::xor_cast_dag(opts);
  const auto wf = manager.deploy(dag);
  const auto result = manager.invoke(wf);
  const std::string dot = metrics::to_dot(dag, result);
  // Executed nodes are filled; cold ones use the cold colour; the losing
  // XOR sibling is greyed out.
  EXPECT_NE(dot.find("style=filled"), std::string::npos);
  EXPECT_NE(dot.find("(cold)"), std::string::npos);
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);
  // Timing annotations appear for completed nodes.
  EXPECT_NE(dot.find("ms"), std::string::npos);
}

TEST(DotExport, EscapesQuotesInNames) {
  workflow::WorkflowDag dag{R"(quo"ted)"};
  workflow::FunctionSpec spec;
  spec.name = R"(fn"1)";
  dag.add_node(spec);
  const std::string dot = metrics::to_dot(dag);
  EXPECT_NE(dot.find(R"(fn\"1)"), std::string::npos);
}

// ------------------------------------------------ capacity exhaustion -----

TEST(CapacityLimits, EngineThrowsWhenClusterIsFull) {
  // A cluster that can fit two workers; a 3-deep chain with long-lived
  // warm workers exhausts it.
  core::DispatchManagerOptions options;
  options.kind = core::PlatformKind::XanaduCold;
  options.cluster.host_count = 1;
  options.cluster.memory_mb_per_host = 1200;  // Two (512+64) MB workers.
  core::DispatchManager manager{options};
  workflow::BuildOptions build;
  build.exec_time = Duration::from_millis(300);
  const auto wf = manager.deploy(workflow::linear_chain(3, build));
  EXPECT_THROW(manager.invoke(wf), std::runtime_error);
}

TEST(CapacityLimits, KeepAliveReclaimFreesCapacityForLaterRequests) {
  core::DispatchManagerOptions options;
  options.kind = core::PlatformKind::XanaduCold;
  options.cluster.host_count = 1;
  options.cluster.memory_mb_per_host = 1200;
  auto calib = platform::xanadu_calibration();
  calib.keep_alive = Duration::from_seconds(30);
  options.calibration = calib;
  core::DispatchManager manager{options};
  workflow::BuildOptions build;
  build.exec_time = Duration::from_millis(300);
  const auto wf = manager.deploy(workflow::linear_chain(2, build));
  (void)manager.invoke(wf);  // Fills the cluster with two warm workers.
  // After keep-alive reclaim, the next request provisions fresh workers.
  manager.idle_for(Duration::from_seconds(40));
  EXPECT_EQ(manager.cluster().live_worker_count(), 0u);
  const auto result = manager.invoke(wf);
  EXPECT_EQ(result.executed_nodes, 2u);
}

TEST(CapacityLimits, LiveWorkerCapKeepsClusterWithinBounds) {
  // The OpenWhisk-style cap evicts warm workers instead of overflowing.
  core::DispatchManagerOptions options;
  options.kind = core::PlatformKind::OpenWhiskLike;
  core::DispatchManager manager{options};
  workflow::BuildOptions build;
  build.exec_time = Duration::from_millis(300);
  const auto wf = manager.deploy(workflow::linear_chain(6, build));
  (void)manager.invoke(wf);
  EXPECT_LE(manager.cluster().live_worker_count(), 5u);
}

}  // namespace
}  // namespace xanadu
