// Unit and property tests for the random biased binary-tree generator
// (the Section 5.3/5.4 experiment corpus).

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "workflow/builders.hpp"
#include "workflow/random_tree.hpp"

namespace xanadu::workflow {
namespace {

TEST(RandomTree, SingleNodeTree) {
  common::Rng rng{1};
  RandomTreeOptions opts;
  opts.node_count = 1;
  const WorkflowDag dag = random_binary_tree(opts, rng);
  EXPECT_EQ(dag.node_count(), 1u);
  EXPECT_EQ(dag.conditional_points(), 0u);
}

TEST(RandomTree, RejectsBadOptions) {
  common::Rng rng{1};
  RandomTreeOptions opts;
  opts.node_count = 0;
  EXPECT_THROW(random_binary_tree(opts, rng), std::invalid_argument);
  opts = {};
  opts.min_bias = 0.4;  // Bias below 0.5 is not a bias toward the branch.
  EXPECT_THROW(random_binary_tree(opts, rng), std::invalid_argument);
  opts = {};
  opts.min_bias = 0.9;
  opts.max_bias = 0.6;
  EXPECT_THROW(random_binary_tree(opts, rng), std::invalid_argument);
}

TEST(RandomTree, DeterministicForSameSeed) {
  RandomTreeOptions opts;
  opts.node_count = 8;
  common::Rng a{99};
  common::Rng b{99};
  const WorkflowDag da = random_binary_tree(opts, a);
  const WorkflowDag db = random_binary_tree(opts, b);
  ASSERT_EQ(da.node_count(), db.node_count());
  for (std::size_t i = 0; i < da.node_count(); ++i) {
    const Node& na = da.node(NodeId{i});
    const Node& nb = db.node(NodeId{i});
    ASSERT_EQ(na.children.size(), nb.children.size());
    for (std::size_t j = 0; j < na.children.size(); ++j) {
      EXPECT_EQ(na.children[j].child, nb.children[j].child);
      EXPECT_DOUBLE_EQ(na.children[j].probability, nb.children[j].probability);
    }
  }
}

TEST(RandomTree, CorpusCyclesNodeCounts) {
  common::Rng rng{5};
  const auto corpus = random_tree_corpus(20, 10, rng);
  ASSERT_EQ(corpus.size(), 20u);
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    EXPECT_EQ(corpus[i].node_count(), 1 + (i % 10));
  }
}

TEST(RandomTree, CorpusRejectsZeroMaxNodes) {
  common::Rng rng{5};
  EXPECT_THROW(random_tree_corpus(10, 0, rng), std::invalid_argument);
}

// Property sweep: structural invariants over many seeds and sizes.
class RandomTreeProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomTreeProperty, StructuralInvariants) {
  common::Rng rng{GetParam()};
  for (std::size_t nodes = 1; nodes <= 12; ++nodes) {
    RandomTreeOptions opts;
    opts.node_count = nodes;
    const WorkflowDag dag = random_binary_tree(opts, rng);
    EXPECT_NO_THROW(dag.validate());
    EXPECT_EQ(dag.node_count(), nodes);
    // A tree has exactly one root and n-1 edges.
    EXPECT_EQ(dag.roots().size(), 1u);
    std::size_t edges = 0;
    for (const Node& n : dag.nodes()) {
      edges += n.children.size();
      EXPECT_LE(n.children.size(), 2u);
      // Every 2-child node is a conditional whose probabilities sum to 1.
      if (n.children.size() == 2) {
        EXPECT_EQ(n.dispatch, DispatchMode::Xor);
        EXPECT_NEAR(n.children[0].probability + n.children[1].probability, 1.0,
                    1e-9);
        const double hi =
            std::max(n.children[0].probability, n.children[1].probability);
        EXPECT_GE(hi, 0.5);
        EXPECT_LE(hi, opts.max_bias + 1e-9);
      }
      // Non-root nodes have exactly one parent (it is a tree).
      if (n.id != dag.roots().front()) {
        EXPECT_EQ(n.parents.size(), 1u);
      }
    }
    EXPECT_EQ(edges, nodes - 1);
    // The true MLP is well defined and within the tree.
    const auto mlp = true_most_likely_path(dag);
    EXPECT_GE(mlp.size(), 1u);
    EXPECT_LE(mlp.size(), nodes);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTreeProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

}  // namespace
}  // namespace xanadu::workflow
