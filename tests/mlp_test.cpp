// Tests for MLP estimation (Algorithm 1 / Equation 3).

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.hpp"
#include "core/mlp.hpp"
#include "workflow/builders.hpp"

namespace xanadu::core {
namespace {

using common::RequestId;

bool on_path(const MlpResult& mlp, NodeId id) {
  return std::find(mlp.path.begin(), mlp.path.end(), id) != mlp.path.end();
}

TEST(Mlp, LinearChainWholePath) {
  const auto dag = workflow::linear_chain(5);
  const BranchModel model = BranchModel::from_schema(dag);
  const MlpResult mlp = estimate_mlp(model);
  EXPECT_EQ(mlp.path.size(), 5u);
  // Parents before children.
  for (std::size_t i = 0; i + 1 < mlp.path.size(); ++i) {
    EXPECT_LT(mlp.path[i].value(), mlp.path[i + 1].value());
  }
}

TEST(Mlp, MulticastIncludesAllChildren) {
  const auto dag = workflow::fan_out(4);
  const BranchModel model = BranchModel::from_schema(dag);
  const MlpResult mlp = estimate_mlp(model);
  EXPECT_EQ(mlp.path.size(), 5u);
}

TEST(Mlp, ExplicitXorPicksLearnedFavourite) {
  workflow::XorCastOptions opts;
  opts.levels = 1;
  opts.fan = 3;
  const auto dag = workflow::xor_cast_dag(opts);
  BranchModel model = BranchModel::from_schema(dag);
  const NodeId root{0}, b1{1}, b2{2};
  // Observe b2 twice, b1 once.
  model.observe_invocation(root, b2, RequestId{1});
  model.observe_invocation(root, b1, RequestId{2});
  model.observe_invocation(root, b2, RequestId{3});
  model.finalize_pending();
  const MlpResult mlp = estimate_mlp(model);
  EXPECT_TRUE(on_path(mlp, b2));
  EXPECT_FALSE(on_path(mlp, b1));
  ASSERT_TRUE(mlp.predicted_choice.contains(root));
  EXPECT_EQ(mlp.predicted_choice.at(root), b2);
}

TEST(Mlp, UnobservedExplicitXorFollowsPriorDeterministically) {
  workflow::XorCastOptions opts;
  opts.levels = 2;
  opts.fan = 2;
  const auto dag = workflow::xor_cast_dag(opts);
  const BranchModel model = BranchModel::from_schema(dag);
  const MlpResult a = estimate_mlp(model);
  const MlpResult b = estimate_mlp(model);
  // Uniform prior: ties broken by node id, deterministically.  (The tie
  // winner B1 is a leaf in the Figure 8 shape -- only the favoured branch
  // has descendants -- so the prior-driven path is root + B1.)
  EXPECT_EQ(a.path, b.path);
  EXPECT_EQ(a.path.size(), 2u);
  EXPECT_EQ(a.path[0], NodeId{0});
  EXPECT_EQ(a.path[1], NodeId{1});
}

TEST(Mlp, LikelihoodOfRootIsOne) {
  const auto dag = workflow::linear_chain(2);
  const BranchModel model = BranchModel::from_schema(dag);
  const MlpResult mlp = estimate_mlp(model);
  EXPECT_DOUBLE_EQ(mlp.likelihood.at(NodeId{0}), 1.0);
}

TEST(Mlp, LikelihoodSumsAcrossParents) {
  // Diamond: root multicasts to two mids, both feed the sink.  The sink's
  // likelihood factor is the sum over its parents (Equation 3) and exceeds 1
  // (the paper notes the bound does not hold for m:n relationships).
  const auto dag = workflow::diamond(2);
  const BranchModel model = BranchModel::from_schema(dag);
  const MlpResult mlp = estimate_mlp(model);
  const NodeId sink{1};  // diamond() adds sink as the second node.
  ASSERT_TRUE(on_path(mlp, sink));
  EXPECT_DOUBLE_EQ(mlp.likelihood.at(sink), 2.0);
}

TEST(Mlp, EmptyModelYieldsEmptyPath) {
  const BranchModel model;
  const MlpResult mlp = estimate_mlp(model);
  EXPECT_TRUE(mlp.path.empty());
}

TEST(Mlp, ImplicitModelAutoDetectsConditional) {
  // Learned-only model: parent takes child a 80% of the time, child b 20%.
  BranchModel model;
  const NodeId p{0}, a{1}, b{2};
  model.observe_root(p, RequestId{0});
  std::uint64_t req = 1;
  for (int i = 0; i < 8; ++i) model.observe_invocation(p, a, RequestId{req++});
  for (int i = 0; i < 2; ++i) model.observe_invocation(p, b, RequestId{req++});
  model.finalize_pending();
  const MlpResult mlp = estimate_mlp(model);
  EXPECT_TRUE(on_path(mlp, a));
  EXPECT_FALSE(on_path(mlp, b));
  ASSERT_TRUE(mlp.predicted_choice.contains(p));
  EXPECT_EQ(mlp.predicted_choice.at(p), a);
}

TEST(Mlp, ImplicitModelAutoDetectsMulticast) {
  // Both children invoked on every request: probabilities ~1 -> both on MLP.
  BranchModel model;
  const NodeId p{0}, a{1}, b{2};
  model.observe_root(p, RequestId{0});
  for (std::uint64_t r = 1; r <= 6; ++r) {
    model.observe_invocation(p, a, RequestId{r});
    model.observe_invocation(p, b, RequestId{r});
  }
  model.finalize_pending();
  const MlpResult mlp = estimate_mlp(model);
  EXPECT_TRUE(on_path(mlp, a));
  EXPECT_TRUE(on_path(mlp, b));
  // A multicast is not a conditional: no predicted choice recorded.
  EXPECT_FALSE(mlp.predicted_choice.contains(p));
}

TEST(Mlp, MaxNodesCutsPath) {
  const auto dag = workflow::linear_chain(8);
  const BranchModel model = BranchModel::from_schema(dag);
  MlpOptions options;
  options.max_nodes = 3;
  const MlpResult mlp = estimate_mlp(model, options);
  EXPECT_EQ(mlp.path.size(), 3u);
  // The cut keeps the head of the path (nodes nearest the root).
  EXPECT_TRUE(on_path(mlp, NodeId{0}));
  EXPECT_TRUE(on_path(mlp, NodeId{2}));
  EXPECT_FALSE(on_path(mlp, NodeId{3}));
}

TEST(Mlp, EstimateFromSeedWalksSubtree) {
  const auto dag = workflow::linear_chain(6);
  const BranchModel model = BranchModel::from_schema(dag);
  const MlpResult mlp = estimate_mlp_from(model, {NodeId{3}});
  EXPECT_EQ(mlp.path.size(), 3u);  // Nodes 3, 4, 5.
  EXPECT_TRUE(on_path(mlp, NodeId{3}));
  EXPECT_TRUE(on_path(mlp, NodeId{5}));
  EXPECT_FALSE(on_path(mlp, NodeId{0}));
}

TEST(Mlp, ConvergesToTrueMlpOfXorCastDag) {
  // Simulate learning on the Figure 8 DAG: feed observations that follow
  // the true probabilities and check that the estimated MLP converges to
  // the true MLP (Section 3.1 reports convergence within 7 triggers).
  workflow::XorCastOptions opts;  // 4 levels, fan 3, 0.7 favoured.
  const auto dag = workflow::xor_cast_dag(opts);
  BranchModel model = BranchModel::from_schema(dag);
  common::Rng rng{1234};

  const auto true_mlp = workflow::true_most_likely_path(dag);
  std::uint64_t request = 0;
  int converged_at = -1;
  for (int trigger = 1; trigger <= 40; ++trigger) {
    // Walk the DAG sampling XOR branches by true probability.
    NodeId node = dag.roots().front();
    ++request;
    while (true) {
      const auto& children = dag.node(node).children;
      if (children.empty()) break;
      std::vector<double> weights;
      for (const auto& e : children) weights.push_back(e.probability);
      const NodeId next = children[rng.weighted_index(weights)].child;
      model.observe_invocation(node, next, RequestId{request});
      node = next;
    }
    model.finalize_pending();
    const MlpResult mlp = estimate_mlp(model);
    std::vector<NodeId> sorted = mlp.path;
    std::sort(sorted.begin(), sorted.end());
    if (sorted == true_mlp) {
      if (converged_at < 0) converged_at = trigger;
    } else {
      converged_at = -1;  // Oscillated; reset.
    }
  }
  EXPECT_GT(converged_at, 0);
  EXPECT_LE(converged_at, 25);
}

}  // namespace
}  // namespace xanadu::core
