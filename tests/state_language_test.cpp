// Tests for the explicit-chain state-definition language (paper Listing 1).

#include <gtest/gtest.h>

#include "workflow/state_language.hpp"

namespace xanadu::workflow {
namespace {

WorkflowDag must_parse(const std::string& text) {
  auto result = parse_state_language(text);
  EXPECT_TRUE(result.ok()) << (result.ok() ? "" : result.error().message);
  return std::move(result).value();
}

TEST(StateLanguage, SingleFunction) {
  const WorkflowDag dag = must_parse(R"({
    "f1": {"type": "function", "memory": 256, "runtime": "process",
           "exec_ms": 750, "wait_for": []}
  })");
  ASSERT_EQ(dag.node_count(), 1u);
  const Node& f1 = dag.node(NodeId{0});
  EXPECT_EQ(f1.fn.name, "f1");
  EXPECT_DOUBLE_EQ(f1.fn.memory_mb, 256.0);
  EXPECT_EQ(f1.fn.sandbox, SandboxKind::Process);
  EXPECT_EQ(f1.fn.exec_time, sim::Duration::from_millis(750));
}

TEST(StateLanguage, DefaultsApplyWhenFieldsOmitted) {
  const WorkflowDag dag = must_parse(R"({"f1": {"type": "function"}})");
  const Node& f1 = dag.node(NodeId{0});
  EXPECT_DOUBLE_EQ(f1.fn.memory_mb, 512.0);
  EXPECT_EQ(f1.fn.sandbox, SandboxKind::Container);
  EXPECT_EQ(f1.fn.exec_time, sim::Duration::from_millis(500));
}

TEST(StateLanguage, LinearChainViaWaitFor) {
  const WorkflowDag dag = must_parse(R"({
    "f1": {"type": "function"},
    "f2": {"type": "function", "wait_for": ["f1"]},
    "f3": {"type": "function", "wait_for": ["f2"]}
  })");
  EXPECT_EQ(dag.node_count(), 3u);
  EXPECT_EQ(dag.depth(), 3u);
  EXPECT_EQ(dag.roots().size(), 1u);
}

TEST(StateLanguage, BarrierViaMultipleWaitFor) {
  const WorkflowDag dag = must_parse(R"({
    "a": {"type": "function"},
    "b": {"type": "function"},
    "join": {"type": "function", "wait_for": ["a", "b"]}
  })");
  const NodeId join = dag.find_by_name("join");
  EXPECT_EQ(dag.node(join).parents.size(), 2u);
}

TEST(StateLanguage, ConditionalBuildsXorCast) {
  const WorkflowDag dag = must_parse(R"({
    "f1": {"type": "function", "conditional": "cond1"},
    "cond1": {
      "type": "conditional", "wait_for": ["f1"],
      "condition": {"op1": "f1.x", "op2": 7, "op": "lte"},
      "success_probability": 0.7,
      "success": "branch1", "fail": "branch2"
    },
    "branch1": {"type": "branch", "f3": {"type": "function"}},
    "branch2": {"type": "branch", "f4": {"type": "function"}}
  })");
  const NodeId f1 = dag.find_by_name("f1");
  const Node& root = dag.node(f1);
  EXPECT_EQ(root.dispatch, DispatchMode::Xor);
  ASSERT_EQ(root.children.size(), 2u);
  const NodeId f3 = dag.find_by_name("f3");
  double p3 = 0.0, p4 = 0.0;
  for (const Edge& e : root.children) {
    (e.child == f3 ? p3 : p4) = e.probability;
  }
  EXPECT_NEAR(p3, 0.7, 1e-9);
  EXPECT_NEAR(p4, 0.3, 1e-9);
  EXPECT_EQ(dag.conditional_points(), 1u);
}

TEST(StateLanguage, BranchInternalDependencies) {
  const WorkflowDag dag = must_parse(R"({
    "f1": {"type": "function", "conditional": "c"},
    "c": {"type": "conditional", "wait_for": ["f1"],
          "success": "b1", "fail": "b2"},
    "b1": {"type": "branch",
           "g1": {"type": "function"},
           "g2": {"type": "function", "wait_for": ["g1"]}},
    "b2": {"type": "branch", "h1": {"type": "function"}}
  })");
  EXPECT_EQ(dag.node_count(), 4u);
  const NodeId g2 = dag.find_by_name("g2");
  ASSERT_EQ(dag.node(g2).parents.size(), 1u);
  EXPECT_EQ(dag.node(g2).parents[0], dag.find_by_name("g1"));
}

TEST(StateLanguage, DefaultSuccessProbabilityIsHalf) {
  const WorkflowDag dag = must_parse(R"({
    "f1": {"type": "function", "conditional": "c"},
    "c": {"type": "conditional", "wait_for": ["f1"],
          "success": "b1", "fail": "b2"},
    "b1": {"type": "branch", "g": {"type": "function"}},
    "b2": {"type": "branch", "h": {"type": "function"}}
  })");
  for (const Edge& e : dag.node(dag.find_by_name("f1")).children) {
    EXPECT_NEAR(e.probability, 0.5, 1e-9);
  }
}

TEST(StateLanguage, ErrorsAreDescriptive) {
  auto expect_error = [](const std::string& doc, const std::string& needle) {
    auto result = parse_state_language(doc);
    ASSERT_FALSE(result.ok()) << doc;
    EXPECT_NE(result.error().message.find(needle), std::string::npos)
        << result.error().message;
  };
  expect_error("not json", "json:");
  expect_error("[]", "must be a JSON object");
  expect_error("{}", "no functions");
  expect_error(R"({"f": {"type": "widget"}})", "unknown type");
  expect_error(R"({"f": {"type": "function", "memory": -5}})", "memory");
  expect_error(R"({"f": {"type": "function", "runtime": "vm"}})", "sandbox");
  expect_error(R"({"f": {"type": "function", "wait_for": ["ghost"]}})",
               "unknown function");
  expect_error(R"({
    "f": {"type": "function"},
    "c": {"type": "conditional", "wait_for": ["f"],
          "success": "nope", "fail": "nope"}
  })", "unknown or empty");
  expect_error(R"({
    "f": {"type": "function"},
    "c": {"type": "conditional", "wait_for": ["f", "f2"],
          "success": "b", "fail": "b"}
  })", "exactly one");
  expect_error(R"({
    "f": {"type": "function"},
    "c": {"type": "conditional", "wait_for": ["f"],
          "success_probability": 1.5, "success": "b", "fail": "b"},
    "b": {"type": "branch", "g": {"type": "function"}}
  })", "success_probability");
}

TEST(StateLanguage, TwoConditionalsOnOneParentRejected) {
  auto result = parse_state_language(R"({
    "f": {"type": "function"},
    "c1": {"type": "conditional", "wait_for": ["f"],
           "success": "b1", "fail": "b2"},
    "c2": {"type": "conditional", "wait_for": ["f"],
           "success": "b1", "fail": "b2"},
    "b1": {"type": "branch", "g": {"type": "function"}},
    "b2": {"type": "branch", "h": {"type": "function"}}
  })");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error().message.find("more than one"), std::string::npos);
}

TEST(StateLanguage, PaperListingOneShape) {
  // The structure of Listing 1: f1 guarded by a conditional with two
  // branches, each branch holding a downstream function.
  const WorkflowDag dag = must_parse(R"({
    "f1": {"type": "function", "memory": 512, "runtime": "container",
           "wait_for": [], "conditional": "condition1"},
    "condition1": {"type": "conditional", "wait_for": ["f1"],
                   "condition": {"op1": "f1.x", "op2": 7, "op": "lte"},
                   "success": "branch1", "fail": "branch2"},
    "branch1": {"type": "branch", "f3": {"type": "function"}},
    "branch2": {"type": "branch", "f4": {"type": "function"}}
  })");
  EXPECT_EQ(dag.node_count(), 3u);
  EXPECT_EQ(dag.depth(), 2u);
  EXPECT_EQ(dag.conditional_points(), 1u);
  EXPECT_NO_THROW(dag.validate());
}

}  // namespace
}  // namespace xanadu::workflow
