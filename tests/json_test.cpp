// Unit tests for the JSON reader behind the state-definition language.

#include <gtest/gtest.h>

#include "common/json.hpp"

namespace xanadu::common {
namespace {

JsonValue must_parse(const std::string& text) {
  auto result = parse_json(text);
  EXPECT_TRUE(result.ok()) << (result.ok() ? "" : result.error().message);
  return std::move(result).value();
}

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(must_parse("null").is_null());
  EXPECT_TRUE(must_parse("true").as_bool());
  EXPECT_FALSE(must_parse("false").as_bool());
  EXPECT_DOUBLE_EQ(must_parse("42").as_number(), 42.0);
  EXPECT_DOUBLE_EQ(must_parse("-3.5e2").as_number(), -350.0);
  EXPECT_EQ(must_parse("\"hello\"").as_string(), "hello");
}

TEST(Json, ParsesEscapes) {
  EXPECT_EQ(must_parse(R"("a\nb\t\"c\"")").as_string(), "a\nb\t\"c\"");
  EXPECT_EQ(must_parse(R"("A")").as_string(), "A");
  EXPECT_EQ(must_parse(R"("é")").as_string(), "\xc3\xa9");
}

TEST(Json, ParsesArrays) {
  const JsonValue v = must_parse("[1, 2, [3, 4], \"x\"]");
  ASSERT_TRUE(v.is_array());
  const JsonArray& arr = v.as_array();
  ASSERT_EQ(arr.size(), 4u);
  EXPECT_DOUBLE_EQ(arr[0].as_number(), 1.0);
  EXPECT_EQ(arr[2].as_array().size(), 2u);
  EXPECT_EQ(arr[3].as_string(), "x");
}

TEST(Json, EmptyContainers) {
  EXPECT_TRUE(must_parse("[]").as_array().empty());
  EXPECT_TRUE(must_parse("{}").as_object().empty());
}

TEST(Json, ParsesNestedObjects) {
  const JsonValue v = must_parse(R"({"a": {"b": {"c": 1}}, "d": [true]})");
  const JsonObject& obj = v.as_object();
  EXPECT_TRUE(obj.contains("a"));
  EXPECT_DOUBLE_EQ(
      obj.at("a").as_object().at("b").as_object().at("c").as_number(), 1.0);
  EXPECT_TRUE(obj.at("d").as_array()[0].as_bool());
}

TEST(Json, ObjectPreservesInsertionOrder) {
  const JsonValue v = must_parse(R"({"z": 1, "a": 2, "m": 3})");
  const auto& keys = v.as_object().keys();
  ASSERT_EQ(keys.size(), 3u);
  EXPECT_EQ(keys[0], "z");
  EXPECT_EQ(keys[1], "a");
  EXPECT_EQ(keys[2], "m");
}

TEST(Json, DuplicateKeysAreRejected) {
  // Last-wins would silently drop an earlier member, turning hand-edited or
  // corrupted metadata documents into plausible-looking state; the parser
  // rejects duplicates and names the offending key.
  auto result = parse_json(R"({"a": 1, "a": 2})");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error().message.find("duplicate object key"),
            std::string::npos)
      << result.error().message;
  EXPECT_NE(result.error().message.find("\"a\""), std::string::npos);
  // Nested objects are checked too; same-named keys in *different* objects
  // remain fine.
  EXPECT_FALSE(parse_json(R"({"outer": {"k": 1, "k": 2}})").ok());
  EXPECT_TRUE(parse_json(R"({"x": {"k": 1}, "y": {"k": 2}})").ok());
}

TEST(Json, ProgrammaticSetStaysLastWins) {
  // JsonObject::set (used by dump()-side builders) keeps overwrite
  // semantics: only the textual parser enforces uniqueness.
  JsonObject obj;
  obj.set("a", JsonValue{1.0});
  obj.set("a", JsonValue{2.0});
  EXPECT_EQ(obj.keys().size(), 1u);
  EXPECT_DOUBLE_EQ(obj.at("a").as_number(), 2.0);
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_FALSE(parse_json("").ok());
  EXPECT_FALSE(parse_json("{").ok());
  EXPECT_FALSE(parse_json("[1, ]").ok());
  EXPECT_FALSE(parse_json("{\"a\" 1}").ok());
  EXPECT_FALSE(parse_json("\"unterminated").ok());
  EXPECT_FALSE(parse_json("tru").ok());
  EXPECT_FALSE(parse_json("1 2").ok());
  EXPECT_FALSE(parse_json("{\"a\": 1,}").ok());
}

TEST(Json, ErrorsCarryLocation) {
  auto result = parse_json("{\n  \"a\": @\n}");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error().message.find("json:2"), std::string::npos)
      << result.error().message;
}

TEST(Json, WrongKindAccessThrows) {
  const JsonValue v = must_parse("42");
  EXPECT_THROW((void)v.as_string(), std::logic_error);
  EXPECT_THROW((void)v.as_object(), std::logic_error);
}

TEST(Json, MissingObjectKeyThrows) {
  const JsonValue v = must_parse("{}");
  EXPECT_THROW((void)v.as_object().at("nope"), std::out_of_range);
  EXPECT_EQ(v.as_object().find("nope"), nullptr);
}

TEST(Json, DumpRoundTrips) {
  const std::string text =
      R"({"name":"f1","memory":512,"deps":["a","b"],"flag":true,"none":null})";
  const JsonValue v = must_parse(text);
  const JsonValue reparsed = must_parse(v.dump());
  EXPECT_EQ(reparsed.dump(), v.dump());
  EXPECT_EQ(reparsed.as_object().at("memory").as_number(), 512.0);
}

TEST(Json, DumpEscapesSpecialCharacters) {
  JsonObject obj;
  obj.set("k", JsonValue{std::string{"line\nbreak\t\"q\""}});
  const std::string dumped = JsonValue{std::move(obj)}.dump();
  const JsonValue round = must_parse(dumped);
  EXPECT_EQ(round.as_object().at("k").as_string(), "line\nbreak\t\"q\"");
}

TEST(Json, CopySemanticsDeepCopy) {
  JsonValue original = must_parse(R"({"a": [1, 2, 3]})");
  JsonValue copy = original;  // Deep copy.
  EXPECT_EQ(copy.dump(), original.dump());
}

}  // namespace
}  // namespace xanadu::common
