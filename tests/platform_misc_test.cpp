// Tests for platform calibrations, the dispatch-manager facade, the metrics
// cost/penalty math, the report table printer, and open-loop load behaviour.

#include <gtest/gtest.h>

#include "core/dispatch_manager.hpp"
#include "metrics/cost.hpp"
#include "metrics/report.hpp"
#include "platform/calibration.hpp"
#include "workflow/builders.hpp"
#include "workload/runner.hpp"

namespace xanadu {
namespace {

using core::DispatchManager;
using core::DispatchManagerOptions;
using core::PlatformKind;
using sim::Duration;

// -------------------------------------------------------- calibrations ----

TEST(Calibration, PresetsEncodeThePaperOrdering) {
  const auto xanadu = platform::xanadu_calibration();
  const auto knative = platform::knative_like_calibration();
  const auto openwhisk = platform::openwhisk_like_calibration();
  const auto asf = platform::asf_like_calibration();
  const auto adf = platform::adf_like_calibration();

  // Provisioning pipelines: Knative heaviest, then OpenWhisk ~ Xanadu.
  EXPECT_GT(knative.provision_extra, openwhisk.provision_extra);
  EXPECT_GT(openwhisk.provision_extra, Duration::zero());
  EXPECT_GT(xanadu.provision_extra, Duration::zero());

  // Lightweight sandboxes skip most of the container pipeline.
  EXPECT_LT(xanadu.provision_extra_process, xanadu.provision_extra);
  EXPECT_LT(xanadu.provision_extra_isolate, xanadu.provision_extra_process);

  // Keep-alive: ADF ~2x ASF (Figure 5's knees at ~10 and ~20 minutes).
  EXPECT_EQ(asf.keep_alive, Duration::from_minutes(10));
  EXPECT_EQ(adf.keep_alive, Duration::from_minutes(20));

  // Cloud platforms override the container profile with fast microVMs.
  ASSERT_TRUE(asf.container_profile.has_value());
  ASSERT_TRUE(adf.container_profile.has_value());
  EXPECT_LT(asf.container_profile->cold_start_base, Duration::from_millis(1000));
  // ADF is the noisier platform (Section 2.3).
  EXPECT_GT(adf.overhead_jitter, asf.overhead_jitter);

  // Only OpenWhisk standalone caps live workers.
  EXPECT_GT(openwhisk.max_live_workers, 0);
  EXPECT_LT(knative.max_live_workers, 0);
  EXPECT_LT(xanadu.max_live_workers, 0);
}

TEST(Calibration, ProvisionExtraForSelectsByKind) {
  const auto calib = platform::xanadu_calibration();
  using workflow::SandboxKind;
  EXPECT_EQ(calib.provision_extra_for(SandboxKind::Container),
            calib.provision_extra);
  EXPECT_EQ(calib.provision_extra_for(SandboxKind::Process),
            calib.provision_extra_process);
  EXPECT_EQ(calib.provision_extra_for(SandboxKind::Isolate),
            calib.provision_extra_isolate);
}

// ----------------------------------------------------- dispatch manager ---

TEST(DispatchManager, PlatformKindNamesRoundTrip) {
  for (const PlatformKind kind :
       {PlatformKind::XanaduCold, PlatformKind::XanaduSpeculative,
        PlatformKind::XanaduJit, PlatformKind::KnativeLike,
        PlatformKind::OpenWhiskLike, PlatformKind::AsfLike,
        PlatformKind::AdfLike, PlatformKind::PrewarmAll}) {
    EXPECT_NE(std::string{core::to_string(kind)}, "unknown");
  }
}

TEST(DispatchManager, XanaduPolicyOnlyForXanaduKinds) {
  for (const auto& [kind, has_policy] :
       {std::pair{PlatformKind::XanaduJit, true},
        std::pair{PlatformKind::XanaduCold, true},
        std::pair{PlatformKind::KnativeLike, false},
        std::pair{PlatformKind::PrewarmAll, false}}) {
    DispatchManagerOptions options;
    options.kind = kind;
    DispatchManager manager{options};
    EXPECT_EQ(manager.xanadu_policy() != nullptr, has_policy)
        << core::to_string(kind);
  }
}

TEST(DispatchManager, CalibrationOverrideWins) {
  DispatchManagerOptions options;
  options.kind = PlatformKind::XanaduCold;
  auto calib = platform::xanadu_calibration();
  calib.dispatch_latency = Duration::from_millis(500);
  calib.overhead_jitter = Duration::zero();
  calib.worker_handoff = Duration::zero();
  options.calibration = calib;
  DispatchManager manager{options};
  const auto wf = manager.deploy(workflow::linear_chain(1));
  const auto result = manager.invoke(wf);
  // Dispatch 500 ms is visible in the overhead.
  EXPECT_GT(result.overhead.millis(), 3400.0);
}

TEST(DispatchManager, IdleForAdvancesVirtualTime) {
  DispatchManagerOptions options;
  DispatchManager manager{options};
  const auto before = manager.simulator().now();
  manager.idle_for(Duration::from_minutes(3));
  EXPECT_EQ((manager.simulator().now() - before).seconds(), 180.0);
}

TEST(DispatchManager, ForceColdStartKillsWarmPool) {
  DispatchManagerOptions options;
  options.kind = PlatformKind::XanaduCold;
  DispatchManager manager{options};
  const auto wf = manager.deploy(workflow::linear_chain(2));
  (void)manager.invoke(wf);
  EXPECT_GT(manager.cluster().live_worker_count(), 0u);
  manager.force_cold_start();
  EXPECT_EQ(manager.cluster().live_worker_count(), 0u);
}

// -------------------------------------------------------------- metrics ---

TEST(Cost, ResourceCostDerivesFromLedger) {
  cluster::ResourceLedger delta;
  delta.provision_cpu_core_seconds = 10.0;
  delta.pre_use_idle_cpu_core_seconds = 2.0;
  delta.idle_cpu_core_seconds = 5.0;
  delta.pre_use_memory_mb_seconds = 100.0;
  delta.idle_memory_mb_seconds = 300.0;
  delta.workers_provisioned = 4;
  delta.workers_wasted = 1;
  const auto cost = metrics::resource_cost(delta);
  EXPECT_DOUBLE_EQ(cost.cpu_core_seconds, 12.0);  // provision + pre-use idle
  EXPECT_DOUBLE_EQ(cost.memory_mb_seconds, 100.0);
  EXPECT_DOUBLE_EQ(cost.idle_cpu_core_seconds, 5.0);
  EXPECT_DOUBLE_EQ(cost.idle_memory_mb_seconds, 300.0);
  EXPECT_EQ(cost.workers_provisioned, 4u);
  EXPECT_EQ(cost.workers_wasted, 1u);
}

TEST(Cost, PenaltyIsProductOfCostAndOverhead) {
  metrics::ResourceCost cost;
  cost.cpu_core_seconds = 3.0;
  cost.memory_mb_seconds = 200.0;
  const auto penalty = metrics::penalty(cost, Duration::from_seconds(2));
  EXPECT_DOUBLE_EQ(penalty.phi_cpu_s2, 6.0);
  EXPECT_DOUBLE_EQ(penalty.phi_memory_mb_s2, 400.0);
}

TEST(Report, TableAlignsAndValidates) {
  metrics::Table table{{"name", "value"}};
  table.add_row({"alpha", "1"});
  table.add_row({"beta-longer", "22"});
  EXPECT_EQ(table.rows(), 2u);
  const std::string text = table.to_string();
  EXPECT_NE(text.find("| name"), std::string::npos);
  EXPECT_NE(text.find("beta-longer"), std::string::npos);
  // Every line has the same width.
  std::size_t width = text.find('\n');
  for (std::size_t pos = 0; pos < text.size();) {
    const std::size_t next = text.find('\n', pos);
    EXPECT_EQ(next - pos, width);
    pos = next + 1;
  }
  EXPECT_THROW(table.add_row({"only-one-cell"}), std::invalid_argument);
  EXPECT_THROW(metrics::Table{{}}, std::invalid_argument);
}

TEST(Report, Formatters) {
  EXPECT_EQ(metrics::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(metrics::fmt_ms(1234.6, 0), "1235ms");
  EXPECT_EQ(metrics::fmt_s(2.5, 1), "2.5s");
  EXPECT_EQ(metrics::fmt_pct(0.123, 1), "12.3%");
}

// ---------------------------------------------------------- open loop -----

TEST(OpenLoopLoad, ManyConcurrentRequestsComplete) {
  // Stress: 200 Poisson arrivals at ~1 req / 2 s against 5 s chains means
  // dozens of requests in flight simultaneously; every one must complete
  // and the ledger must stay consistent.
  DispatchManagerOptions options;
  options.kind = PlatformKind::XanaduJit;
  DispatchManager manager{options};
  workflow::BuildOptions build;
  build.exec_time = Duration::from_seconds(5);
  const auto wf = manager.deploy(workflow::linear_chain(4, build));

  common::Rng rng{99};
  const auto schedule = workload::poisson(Duration::from_seconds(2),
                                          Duration::from_seconds(400), rng);
  ASSERT_GT(schedule.size(), 150u);
  const auto outcome = workload::run_schedule(manager, wf, schedule);
  EXPECT_EQ(outcome.results.size(), schedule.size());
  for (const auto& result : outcome.results) {
    EXPECT_EQ(result.executed_nodes, 4u);
    EXPECT_GE(result.overhead, Duration::zero());
  }
  // Under sustained load most requests run warm.
  EXPECT_LT(outcome.mean_cold_starts(), 1.0);
}

TEST(OpenLoopLoad, DeterministicUnderConcurrency) {
  auto run_once = [] {
    DispatchManagerOptions options;
    options.kind = PlatformKind::XanaduSpeculative;
    options.seed = 1234;
    DispatchManager manager{options};
    workflow::BuildOptions build;
    build.exec_time = Duration::from_seconds(3);
    const auto wf = manager.deploy(workflow::linear_chain(3, build));
    common::Rng rng{55};
    const auto schedule = workload::poisson(Duration::from_seconds(4),
                                            Duration::from_seconds(120), rng);
    const auto outcome = workload::run_schedule(manager, wf, schedule);
    return outcome.mean_overhead_ms();
  };
  EXPECT_DOUBLE_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace xanadu
