// Runtime cross-validation of tools/flow_lint.py's draw-site analysis.
//
// Built only under -DXANADU_RNG_TRACE=ON (CMake option of the same name):
// with the flag on, every common::Rng draw records its call site
// (std::source_location of the outermost textual draw) into an interned
// global set.  This test runs pinned scenarios that exercise the platform
// end to end, collects the observed draw-site set, invokes the analyzer's
// --draw-sites dump over src/ and bench/, and checks SOUNDNESS: every
// runtime-observed draw site under src/ or bench/ must fall inside a span
// the analyzer statically predicted.  (The converse -- every predicted site
// observed -- is deliberately not required: prediction over-approximates
// across configurations, e.g. fault-layer draws only execute in faulted
// runs.)
//
// The full suite runs in the same flagged build (CI job rng-trace), so the
// GoldenDigestGuard constants double as proof that tracing changes no drawn
// values.

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "common/rng.hpp"
#include "core/dispatch_manager.hpp"
#include "workload/case_studies.hpp"

#if !defined(XANADU_RNG_TRACE)

TEST(rng_trace, RequiresTracingBuild) {
  GTEST_SKIP() << "built without -DXANADU_RNG_TRACE=ON; nothing to observe";
}

#else

namespace xanadu {
namespace {

using core::DispatchManager;
using core::DispatchManagerOptions;
using core::PlatformKind;

/// One end-to-end scenario: deploy + submit + run.  Faults and the control
/// bus widen the set of draw sites actually executed.
void run_scenario(PlatformKind kind, bool faulted) {
  DispatchManagerOptions options;
  options.kind = kind;
  options.seed = 42;
  if (faulted) {
    platform::PlatformCalibration calibration =
        platform::xanadu_calibration();
    calibration.control_bus.enabled = true;
    options.calibration = calibration;
    options.faults.bus_drop_rate = 0.05;
    options.faults.provision_failure_rate = 0.1;
    options.faults.straggler_rate = 0.2;
    options.recovery.enabled = true;
  }
  DispatchManager manager{options};
  const auto wf = manager.deploy(workload::ecommerce_checkout());
  for (int i = 0; i < 3; ++i) {
    (void)manager.submit(wf, [](const platform::RequestResult&) {});
  }
  manager.simulator().run();
}

struct Span {
  int line = 0;
  int end_line = 0;
};

/// Runs flow_lint --draw-sites from the source root and parses the dump.
std::map<std::string, std::vector<Span>> predicted_sites(
    const std::string& dump_name) {
  // The analyzer runs from the source root (so findings and draw-site
  // labels come out repo-relative); the dump path must therefore be
  // absolute or it lands there instead of the test's cwd.
  const std::string dump_path =
      std::filesystem::absolute(dump_name).string();
  const std::string command = std::string("cd \"") + XANADU_SOURCE_DIR +
                              "\" && \"" + XANADU_PYTHON +
                              "\" tools/flow_lint.py --draw-sites \"" +
                              dump_path + "\" src bench > /dev/null 2>&1";
  const int rc = std::system(command.c_str());
  EXPECT_EQ(rc, 0) << "flow_lint must exit clean on the fixed tree";

  std::ifstream in{dump_path};
  std::stringstream buffer;
  buffer << in.rdbuf();
  auto parsed = common::parse_json(buffer.str());
  EXPECT_TRUE(parsed.ok()) << "draw-site dump must be valid JSON";

  std::map<std::string, std::vector<Span>> spans;
  const common::JsonArray& sites =
      parsed.value().as_object().at("draw_sites").as_array();
  for (const common::JsonValue& site : sites) {
    const common::JsonObject& obj = site.as_object();
    Span span;
    span.line = static_cast<int>(obj.at("line").as_number());
    span.end_line = static_cast<int>(obj.at("end_line").as_number());
    spans[obj.at("file").as_string()].push_back(span);
  }
  return spans;
}

TEST(rng_trace, ObservedDrawSitesAreSubsetOfPredicted) {
  common::rng_trace::clear();

  // A direct draw proves the recording machinery is on before anything else
  // is asserted about the engine runs.
  common::Rng probe{7};
  (void)probe.uniform();
  ASSERT_FALSE(common::rng_trace::observed_sites().empty())
      << "tracing build records no sites; XANADU_RNG_TRACE wiring broke";

  run_scenario(PlatformKind::XanaduSpeculative, /*faulted=*/false);
  run_scenario(PlatformKind::XanaduJit, /*faulted=*/true);
  run_scenario(PlatformKind::KnativeLike, /*faulted=*/false);

  const std::vector<std::string> observed =
      common::rng_trace::observed_sites();

  const auto spans = predicted_sites("rng_trace_draw_sites.json");
  ASSERT_FALSE(spans.empty());

  std::size_t checked = 0;
  for (const std::string& site : observed) {
    const std::size_t colon = site.rfind(':');
    ASSERT_NE(colon, std::string::npos) << site;
    const std::string file = site.substr(0, colon);
    const int line = std::stoi(site.substr(colon + 1));
    // Soundness is claimed for the roots the analyzer scanned.
    if (file.rfind("src/", 0) != 0 && file.rfind("bench/", 0) != 0) continue;
    ++checked;
    bool found = false;
    auto it = spans.find(file);
    if (it != spans.end()) {
      for (const Span& span : it->second) {
        // Compilers may attribute a multi-line call's source_location to
        // the statement's first line, up to two lines above the method
        // token; the predicted span covers the call through its closing
        // parenthesis.
        if (line >= span.line - 2 && line <= span.end_line) {
          found = true;
          break;
        }
      }
    }
    EXPECT_TRUE(found) << "runtime-observed draw site " << site
                       << " was not statically predicted: the analyzer "
                          "missed a draw (soundness violation)";
  }
  // The scenarios above must actually exercise in-tree draw sites, or the
  // subset check passes vacuously.
  EXPECT_GT(checked, 5u);
}

TEST(rng_trace, ClearForgetsRecordedSites) {
  common::rng_trace::clear();
  common::Rng rng{11};
  (void)rng.next();
  EXPECT_FALSE(common::rng_trace::observed_sites().empty());
  common::rng_trace::clear();
  EXPECT_TRUE(common::rng_trace::observed_sites().empty());
}

}  // namespace
}  // namespace xanadu

#endif  // XANADU_RNG_TRACE
