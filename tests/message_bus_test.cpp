// Tests for the control-plane message bus (Kafka stand-in) and its
// integration with the platform engine's provisioning pipeline.

#include <gtest/gtest.h>

#include <vector>

#include "cluster/cluster.hpp"
#include "platform/engine.hpp"
#include "platform/message_bus.hpp"
#include "platform/worker_state.hpp"
#include "workflow/builders.hpp"

namespace xanadu::platform {
namespace {

using namespace xanadu::sim::literals;
using sim::Duration;

class MessageBusTest : public ::testing::Test {
 protected:
  MessageBusTest() { make_bus({}); }

  void make_bus(MessageBus::Options options) {
    bus_ = std::make_unique<MessageBus>(sim_, options, common::Rng{3});
  }

  sim::Simulator sim_;
  std::unique_ptr<MessageBus> bus_;
};

TEST_F(MessageBusTest, DeliversToSubscriberAfterLatency) {
  MessageBus::Options options;
  options.latency = 10_ms;
  make_bus(options);
  std::vector<std::string> received;
  sim::TimePoint delivered_at;
  bus_->subscribe("topic", [&](const BusMessage& m) {
    received.push_back(m.payload);
    delivered_at = sim_.now();
  });
  bus_->publish("topic", "hello");
  sim_.run();
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0], "hello");
  EXPECT_EQ(delivered_at.millis(), 10.0);
}

TEST_F(MessageBusTest, FanOutToAllSubscribers) {
  int a = 0, b = 0;
  bus_->subscribe("t", [&](const BusMessage&) { ++a; });
  bus_->subscribe("t", [&](const BusMessage&) { ++b; });
  bus_->publish("t", "x");
  bus_->publish("t", "y");
  sim_.run();
  EXPECT_EQ(a, 2);
  EXPECT_EQ(b, 2);
  EXPECT_EQ(bus_->published_count(), 2u);
  EXPECT_EQ(bus_->delivered_count(), 4u);
}

TEST_F(MessageBusTest, TopicsAreIsolated) {
  int count = 0;
  bus_->subscribe("a", [&](const BusMessage&) { ++count; });
  bus_->publish("b", "x");
  sim_.run();
  EXPECT_EQ(count, 0);
  EXPECT_EQ(bus_->subscriber_count("a"), 1u);
  EXPECT_EQ(bus_->subscriber_count("b"), 0u);
}

TEST_F(MessageBusTest, OffsetsAreMonotonicPerTopic) {
  EXPECT_EQ(bus_->publish("t", "0"), 0u);
  EXPECT_EQ(bus_->publish("t", "1"), 1u);
  EXPECT_EQ(bus_->publish("u", "0"), 0u);  // Independent per topic.
}

TEST_F(MessageBusTest, JitterNeverReordersWithinTopic) {
  MessageBus::Options options;
  options.latency = 5_ms;
  options.jitter = 20_ms;  // Huge jitter relative to latency.
  make_bus(options);
  std::vector<std::uint64_t> offsets;
  bus_->subscribe("t", [&](const BusMessage& m) { offsets.push_back(m.offset); });
  for (int i = 0; i < 50; ++i) bus_->publish("t", std::to_string(i));
  sim_.run();
  ASSERT_EQ(offsets.size(), 50u);
  for (std::size_t i = 0; i < offsets.size(); ++i) EXPECT_EQ(offsets[i], i);
}

TEST_F(MessageBusTest, UnsubscribeStopsFutureAndInFlightDeliveries) {
  int count = 0;
  const auto id = bus_->subscribe("t", [&](const BusMessage&) { ++count; });
  bus_->publish("t", "in-flight");
  EXPECT_TRUE(bus_->unsubscribe(id));
  bus_->publish("t", "after");
  sim_.run();
  // The handler was removed before any delivery fired.
  EXPECT_EQ(count, 0);
  EXPECT_FALSE(bus_->unsubscribe(id));
}

TEST_F(MessageBusTest, SubscribersJoiningLaterMissOldMessages) {
  bus_->publish("t", "early");
  sim_.run();
  int count = 0;
  bus_->subscribe("t", [&](const BusMessage&) { ++count; });
  sim_.run();
  EXPECT_EQ(count, 0);
}

TEST_F(MessageBusTest, RejectsBadArguments) {
  EXPECT_THROW(bus_->subscribe("t", nullptr), std::invalid_argument);
  MessageBus::Options bad;
  bad.latency = Duration::from_millis(-1);
  EXPECT_THROW(MessageBus(sim_, bad, common::Rng{1}), std::invalid_argument);
}

// ------------------------------------------------- engine integration -----

TEST(ControlBus, ProvisioningCommandsPayBusLatency) {
  auto run_with = [](bool bus_enabled) {
    sim::Simulator sim;
    cluster::Cluster cluster{cluster::ClusterOptions{}, common::Rng{7}};
    auto profile = cluster::default_profile(workflow::SandboxKind::Container);
    profile.cold_start_jitter = Duration::zero();
    profile.concurrency_penalty = 0.0;
    cluster.catalog().set_profile(workflow::SandboxKind::Container, profile);
    PlatformCalibration calib;
    calib.overhead_jitter = Duration::zero();
    calib.worker_handoff = Duration::zero();
    calib.control_bus.enabled = bus_enabled;
    calib.control_bus.latency = Duration::from_millis(40);
    PlatformEngine engine{sim, cluster, calib, nullptr, common::Rng{11}};
    workflow::BuildOptions opts;
    opts.exec_time = Duration::from_millis(1000);
    const auto wf = engine.register_workflow(workflow::linear_chain(1, opts));
    return engine.run_one(wf).end_to_end.millis();
  };
  const double direct = run_with(false);
  const double with_bus = run_with(true);
  // The bus adds exactly its one-way latency to the provisioning path.
  EXPECT_NEAR(with_bus - direct, 40.0, 1.0);
}

TEST(ControlBus, EngineExposesBusOnlyWhenEnabled) {
  sim::Simulator sim;
  cluster::Cluster cluster{cluster::ClusterOptions{}, common::Rng{7}};
  PlatformCalibration calib;
  PlatformEngine engine{sim, cluster, calib, nullptr, common::Rng{11}};
  EXPECT_EQ(engine.control_bus(), nullptr);

  calib.control_bus.enabled = true;
  cluster::Cluster cluster2{cluster::ClusterOptions{}, common::Rng{7}};
  PlatformEngine engine2{sim, cluster2, calib, nullptr, common::Rng{11}};
  ASSERT_NE(engine2.control_bus(), nullptr);
  // Each host has a daemon subscription.
  EXPECT_EQ(engine2.control_bus()->subscriber_count("daemon.0"), 1u);
}

TEST(ControlBus, FullChainRunsOverBus) {
  sim::Simulator sim;
  cluster::Cluster cluster{cluster::ClusterOptions{}, common::Rng{7}};
  PlatformCalibration calib;
  calib.control_bus.enabled = true;
  PlatformEngine engine{sim, cluster, calib, nullptr, common::Rng{11}};
  workflow::BuildOptions opts;
  opts.exec_time = Duration::from_millis(500);
  const auto wf = engine.register_workflow(workflow::linear_chain(4, opts));
  const RequestResult result = engine.run_one(wf);
  EXPECT_EQ(result.executed_nodes, 4u);
  EXPECT_EQ(result.cold_starts, 4u);
  // One provisioning command per cold start traversed the bus, plus four
  // lifecycle events (provisioning/ready/busy/idle) per worker.
  EXPECT_EQ(engine.control_bus()->published_count(), 4u + 16u);
  // Only the daemon commands had subscribers; nothing consumed the
  // lifecycle events in this test.
  EXPECT_EQ(engine.control_bus()->delivered_count(), 4u);
}

TEST(ControlBus, WorkerStateTrackerMirrorsFleet) {
  sim::Simulator sim;
  cluster::Cluster cluster{cluster::ClusterOptions{}, common::Rng{7}};
  PlatformCalibration calib;
  calib.control_bus.enabled = true;
  calib.control_bus.latency = Duration::from_millis(5);
  PlatformEngine engine{sim, cluster, calib, nullptr, common::Rng{11}};
  WorkerStateTracker tracker{*engine.control_bus()};

  workflow::BuildOptions opts;
  opts.exec_time = Duration::from_millis(500);
  const auto wf = engine.register_workflow(workflow::linear_chain(3, opts));
  (void)engine.run_one(wf);
  // Let the trailing idle events drain (bus latency after completion).
  sim.run_until(sim.now() + 1_s);

  // After the request: three warm workers, all known to the tracker.
  EXPECT_EQ(tracker.live_count(), 3u);
  EXPECT_EQ(tracker.count(WorkerEventKind::Idle), 3u);
  EXPECT_EQ(tracker.count(WorkerEventKind::Busy), 0u);
  const auto fn0 = engine.function_id(wf, common::NodeId{0});
  EXPECT_EQ(tracker.function_count(fn0), 1u);
  // Each worker produced provisioning/ready/busy/idle.
  EXPECT_EQ(tracker.events_seen(), 12u);

  // Tear the fleet down: dead events bring the view back to zero.
  engine.flush_all_warm_workers();
  sim.run_until(sim.now() + 1_s);
  EXPECT_EQ(tracker.live_count(), 0u);
}

TEST(ControlBus, WorkerEventEncodingRoundTrips) {
  WorkerEvent event;
  event.kind = WorkerEventKind::Busy;
  event.worker = common::WorkerId{17};
  event.function = common::FunctionId{3};
  event.host = common::HostId{0};
  const WorkerEvent round = decode(encode(event));
  EXPECT_EQ(round.kind, event.kind);
  EXPECT_EQ(round.worker, event.worker);
  EXPECT_EQ(round.function, event.function);
  EXPECT_EQ(round.host, event.host);
  EXPECT_THROW((void)decode("garbage"), std::invalid_argument);
  EXPECT_THROW((void)decode("9:1:1:1"), std::invalid_argument);  // Unknown kind.
  EXPECT_STREQ(to_string(WorkerEventKind::Ready), "ready");
}

}  // namespace
}  // namespace xanadu::platform
