// CSV spill round-trip: a 100k-row stream spilled in small chunks must
// re-read to exactly the bytes the incremental digest hashed, and the
// replay validator must reject truncated files and mid-row corruption.

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "common/hash.hpp"
#include "common/rng.hpp"
#include "metrics/streaming.hpp"
#include "metrics/trace.hpp"
#include "workflow/builders.hpp"

namespace xanadu::metrics {
namespace {

constexpr std::size_t kNodes = 4;
constexpr std::size_t kResults = 25'000;  // x kNodes records = 100k rows.

/// Synthetic but plausible result: varied timings, cold flags, retries and
/// invoked_by edges so the rendered rows exercise every CSV column.
platform::RequestResult synthetic_result(std::size_t index, common::Rng& rng) {
  platform::RequestResult result;
  result.id = common::RequestId{index};
  result.workflow = common::WorkflowId{0};
  result.submitted = sim::TimePoint{static_cast<std::int64_t>(index) * 1000};
  result.failed = rng.bernoulli(0.05);
  result.node_records.resize(kNodes);
  sim::TimePoint cursor = result.submitted;
  for (std::size_t n = 0; n < kNodes; ++n) {
    platform::NodeRecord& record = result.node_records[n];
    record.status = platform::NodeStatus::Completed;
    record.trigger_time = cursor;
    record.exec_start = cursor + sim::Duration::from_micros(
                                     1 + static_cast<std::int64_t>(
                                             rng.uniform_int(5000)));
    record.exec_duration = sim::Duration::from_micros(
        100 + static_cast<std::int64_t>(rng.uniform_int(20'000)));
    record.exec_end = record.exec_start + record.exec_duration;
    record.cold = rng.bernoulli(0.3);
    if (record.cold) {
      record.provision_wait = sim::Duration::from_micros(
          static_cast<std::int64_t>(rng.uniform_int(500'000)));
    }
    record.retries = rng.bernoulli(0.1) ? 1 : 0;
    if (n > 0) record.invoked_by.push_back(common::NodeId{n - 1});
    cursor = record.exec_end;
  }
  result.completed = cursor;
  return result;
}

std::string spill_file(const char* name) {
  return ::testing::TempDir() + name;
}

/// Streams kResults synthetic results through a StreamingTrace spilling to
/// `path` with a deliberately tiny chunk size (many flush boundaries).
/// Returns the trace's incremental digest.
std::uint64_t stream_with_spill(const std::string& path) {
  const workflow::WorkflowDag dag =
      workflow::linear_chain(kNodes, workflow::BuildOptions{});
  StreamOptions options;
  options.spill_path = path;
  options.spill_chunk_bytes = 4096;  // ~60 rows per flush: many chunks.
  StreamingTrace stream{options};
  const std::size_t source = stream.add_source(dag, "spill");
  common::Rng rng{0x5f111edULL};
  for (std::size_t i = 0; i < kResults; ++i) {
    stream.consume(source, synthetic_result(i, rng));
  }
  stream.finish();
  return stream.digest();
}

TEST(TraceSpillTest, HundredThousandRowRoundTrip) {
  const std::string path = spill_file("spill_roundtrip.csv");
  const std::uint64_t digest = stream_with_spill(path);

  const SpillReplay replay = replay_spill(path);
  ASSERT_TRUE(replay.ok) << replay.error;
  EXPECT_EQ(replay.digest, digest);
  EXPECT_EQ(replay.rows, kResults * kNodes);
}

TEST(TraceSpillTest, SpillBytesAreExactlyTheDigestedBytes) {
  const std::string path = spill_file("spill_bytes.csv");
  const std::uint64_t digest = stream_with_spill(path);

  std::ifstream in{path, std::ios::binary};
  ASSERT_TRUE(in.good());
  const std::string content{std::istreambuf_iterator<char>{in},
                            std::istreambuf_iterator<char>{}};
  EXPECT_EQ(common::fnv1a(content), digest);
}

TEST(TraceSpillTest, RejectsTruncatedFile) {
  const std::string path = spill_file("spill_truncated.csv");
  (void)stream_with_spill(path);

  std::ifstream in{path, std::ios::binary};
  std::string content{std::istreambuf_iterator<char>{in},
                      std::istreambuf_iterator<char>{}};
  in.close();
  ASSERT_GT(content.size(), 10u);
  content.resize(content.size() - 10);  // Chop mid-row: no trailing newline.
  std::ofstream out{path, std::ios::binary | std::ios::trunc};
  out << content;
  out.close();

  const SpillReplay replay = replay_spill(path);
  EXPECT_FALSE(replay.ok);
  EXPECT_NE(replay.error.find("truncated"), std::string::npos)
      << replay.error;
}

TEST(TraceSpillTest, RejectsMidRowCorruption) {
  const std::string path = spill_file("spill_corrupt.csv");
  (void)stream_with_spill(path);

  std::ifstream in{path, std::ios::binary};
  std::string content{std::istreambuf_iterator<char>{in},
                      std::istreambuf_iterator<char>{}};
  in.close();
  // Smash the request-id field of a mid-file row with garbage, keeping the
  // line structure (same length, same commas) intact.
  const std::size_t mid = content.find('\n', content.size() / 2);
  ASSERT_NE(mid, std::string::npos);
  ASSERT_LT(mid + 1, content.size());
  content[mid + 1] = 'x';
  std::ofstream out{path, std::ios::binary | std::ios::trunc};
  out << content;
  out.close();

  const SpillReplay replay = replay_spill(path);
  EXPECT_FALSE(replay.ok);
  EXPECT_FALSE(replay.error.empty());
}

TEST(TraceSpillTest, RejectsMissingFile) {
  const SpillReplay replay =
      replay_spill(spill_file("does_not_exist.csv"));
  EXPECT_FALSE(replay.ok);
}

TEST(TraceSpillTest, RejectsBadHeader) {
  const std::string path = spill_file("spill_bad_header.csv");
  std::ofstream out{path, std::ios::binary | std::ios::trunc};
  out << "not,the,right,header\n";
  out.close();
  const SpillReplay replay = replay_spill(path);
  EXPECT_FALSE(replay.ok);
}

}  // namespace
}  // namespace xanadu::metrics
