// Unit tests for the cluster substrate: sandbox profiles, worker lifecycle
// and resource accounting, host capacity, cluster placement.

#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "cluster/host.hpp"
#include "cluster/sandbox.hpp"
#include "cluster/worker.hpp"

namespace xanadu::cluster {
namespace {

using common::FunctionId;
using common::HostId;
using common::WorkerId;
using sim::Duration;
using sim::TimePoint;
using workflow::SandboxKind;

TimePoint at_seconds(double s) {
  return TimePoint{} + Duration::from_seconds(s);
}

// ------------------------------------------------------------- sandbox ----

TEST(Sandbox, DefaultProfilesMatchPaperOrdering) {
  const auto container = default_profile(SandboxKind::Container);
  const auto process = default_profile(SandboxKind::Process);
  const auto isolate = default_profile(SandboxKind::Isolate);
  // Containers have the highest cold start (~3000 ms, Section 1); processes
  // ~1000 ms; isolates the cheapest.
  EXPECT_GT(container.cold_start_base, process.cold_start_base);
  EXPECT_GE(process.cold_start_base, isolate.cold_start_base);
  EXPECT_NEAR(container.cold_start_base.millis(), 3000.0, 500.0);
  EXPECT_NEAR(process.cold_start_base.millis(), 1000.0, 300.0);
  // Containers also cost the most CPU to provision and carry the largest
  // concurrency penalty (the Docker bottleneck).
  EXPECT_GT(container.provision_cpu_core_seconds, process.provision_cpu_core_seconds);
  EXPECT_GT(container.concurrency_penalty, isolate.concurrency_penalty);
}

TEST(Sandbox, CatalogOverride) {
  SandboxCatalog catalog;
  SandboxProfile custom = default_profile(SandboxKind::Container);
  custom.cold_start_base = Duration::from_millis(100);
  catalog.set_profile(SandboxKind::Container, custom);
  EXPECT_EQ(catalog.profile(SandboxKind::Container).cold_start_base,
            Duration::from_millis(100));
  // Other kinds are untouched.
  EXPECT_NEAR(catalog.profile(SandboxKind::Process).cold_start_base.millis(),
              1150.0, 1.0);
}

TEST(Sandbox, ProfileValidation) {
  SandboxProfile bad = default_profile(SandboxKind::Container);
  bad.cold_start_base = Duration::from_millis(-1);
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = default_profile(SandboxKind::Container);
  bad.provision_cpu_core_seconds = -0.5;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
}

// --------------------------------------------------------------- worker ---

class WorkerTest : public ::testing::Test {
 protected:
  ResourceLedger ledger_;
  SandboxProfile profile_ = default_profile(SandboxKind::Container);

  Worker make_worker(TimePoint start = TimePoint{}) {
    return Worker{WorkerId{1}, FunctionId{1}, HostId{0},
                  SandboxKind::Container, 512.0, profile_, ledger_, start};
  }
};

TEST_F(WorkerTest, ProvisioningChargesCpuOnReady) {
  Worker w = make_worker();
  EXPECT_EQ(w.state(), WorkerState::Provisioning);
  EXPECT_EQ(ledger_.workers_provisioned, 1u);
  EXPECT_DOUBLE_EQ(ledger_.provision_cpu_core_seconds, 0.0);
  w.mark_ready(at_seconds(3));
  EXPECT_EQ(w.state(), WorkerState::Warm);
  EXPECT_DOUBLE_EQ(ledger_.provision_cpu_core_seconds,
                   profile_.provision_cpu_core_seconds);
}

TEST_F(WorkerTest, TotalMemoryIncludesSandboxOverhead) {
  Worker w = make_worker();
  EXPECT_DOUBLE_EQ(w.total_memory_mb(), 512.0 + profile_.memory_overhead_mb);
}

TEST_F(WorkerTest, PreUseIdleChargedOnFirstExecution) {
  Worker w = make_worker();
  w.mark_ready(at_seconds(3));
  w.begin_execution(at_seconds(13));  // 10 s idle before first use.
  const double mem = 512.0 + profile_.memory_overhead_mb;
  EXPECT_DOUBLE_EQ(ledger_.pre_use_memory_mb_seconds, mem * 10.0);
  EXPECT_DOUBLE_EQ(ledger_.pre_use_idle_cpu_core_seconds,
                   profile_.idle_cpu_fraction * 10.0);
  EXPECT_DOUBLE_EQ(ledger_.idle_memory_mb_seconds, mem * 10.0);
  EXPECT_EQ(ledger_.executions, 1u);
}

TEST_F(WorkerTest, PostUseIdleNotCountedAsPreUse) {
  Worker w = make_worker();
  w.mark_ready(at_seconds(1));
  w.begin_execution(at_seconds(1));
  w.end_execution(at_seconds(2));
  w.begin_execution(at_seconds(12));  // 10 s idle between uses.
  const double mem = 512.0 + profile_.memory_overhead_mb;
  EXPECT_DOUBLE_EQ(ledger_.pre_use_memory_mb_seconds, 0.0);
  EXPECT_DOUBLE_EQ(ledger_.idle_memory_mb_seconds, mem * 10.0);
}

TEST_F(WorkerTest, NeverUsedWorkerCountsAsWasted) {
  Worker w = make_worker();
  w.mark_ready(at_seconds(3));
  w.terminate(at_seconds(8));
  EXPECT_EQ(ledger_.workers_wasted, 1u);
  const double mem = 512.0 + profile_.memory_overhead_mb;
  EXPECT_DOUBLE_EQ(ledger_.pre_use_memory_mb_seconds, mem * 5.0);
}

TEST_F(WorkerTest, UsedWorkerNotWasted) {
  Worker w = make_worker();
  w.mark_ready(at_seconds(1));
  w.begin_execution(at_seconds(1));
  w.end_execution(at_seconds(2));
  w.terminate(at_seconds(3));
  EXPECT_EQ(ledger_.workers_wasted, 0u);
}

TEST_F(WorkerTest, CancelledProvisioningStillChargesCpu) {
  Worker w = make_worker();
  w.terminate(at_seconds(1));  // Killed mid-provisioning.
  EXPECT_DOUBLE_EQ(ledger_.provision_cpu_core_seconds,
                   profile_.provision_cpu_core_seconds);
  EXPECT_EQ(ledger_.workers_wasted, 1u);
}

TEST_F(WorkerTest, IllegalTransitionsThrow) {
  Worker w = make_worker();
  EXPECT_THROW(w.begin_execution(at_seconds(1)), std::logic_error);
  w.mark_ready(at_seconds(1));
  EXPECT_THROW(w.mark_ready(at_seconds(2)), std::logic_error);
  EXPECT_THROW(w.end_execution(at_seconds(2)), std::logic_error);
  w.begin_execution(at_seconds(2));
  EXPECT_THROW(w.terminate(at_seconds(3)), std::logic_error);  // Busy.
  w.end_execution(at_seconds(3));
  w.terminate(at_seconds(4));
  EXPECT_THROW(w.terminate(at_seconds(5)), std::logic_error);  // Dead.
}

TEST(ResourceLedger, ArithmeticRoundTrips) {
  ResourceLedger a;
  a.provision_cpu_core_seconds = 10;
  a.idle_memory_mb_seconds = 100;
  a.workers_provisioned = 5;
  ResourceLedger b;
  b.provision_cpu_core_seconds = 4;
  b.idle_memory_mb_seconds = 40;
  b.workers_provisioned = 2;
  ResourceLedger sum = b;
  sum += a;
  const ResourceLedger diff = sum - a;
  EXPECT_DOUBLE_EQ(diff.provision_cpu_core_seconds, 4);
  EXPECT_DOUBLE_EQ(diff.idle_memory_mb_seconds, 40);
  EXPECT_EQ(diff.workers_provisioned, 2u);
}

// ----------------------------------------------------------------- host ---

TEST(Host, MemoryReservation) {
  Host host{HostId{0}, 8, 1000.0};
  EXPECT_TRUE(host.try_reserve_memory(600.0));
  EXPECT_FALSE(host.try_reserve_memory(600.0));  // Would exceed capacity.
  EXPECT_TRUE(host.try_reserve_memory(400.0));
  host.release_memory(500.0);
  EXPECT_DOUBLE_EQ(host.memory_free_mb(), 500.0);
  EXPECT_THROW(host.release_memory(600.0), std::logic_error);
}

TEST(Host, ProvisioningCounter) {
  Host host{HostId{0}, 8, 1000.0};
  host.provisioning_started();
  host.provisioning_started();
  EXPECT_EQ(host.inflight_provisions(), 2u);
  host.provisioning_finished();
  host.provisioning_finished();
  EXPECT_THROW(host.provisioning_finished(), std::logic_error);
}

TEST(Host, ConstructorValidation) {
  EXPECT_THROW((Host{HostId{0}, 0, 100.0}), std::invalid_argument);
  EXPECT_THROW((Host{HostId{0}, 4, -1.0}), std::invalid_argument);
}

// -------------------------------------------------------------- cluster ---

TEST(Cluster, PlacementPrefersEmptierHost) {
  ClusterOptions options;
  options.host_count = 2;
  options.memory_mb_per_host = 2048;
  Cluster cluster{options, common::Rng{1}};
  auto h1 = cluster.place(512);
  ASSERT_TRUE(h1.has_value());
  Worker* w = cluster.start_provisioning(FunctionId{0}, SandboxKind::Container,
                                         512, *h1, TimePoint{});
  ASSERT_NE(w, nullptr);
  auto h2 = cluster.place(512);
  ASSERT_TRUE(h2.has_value());
  EXPECT_NE(*h1, *h2);  // Least-loaded placement alternates.
}

TEST(Cluster, PlacementFailsWhenFull) {
  ClusterOptions options;
  options.host_count = 1;
  options.memory_mb_per_host = 600;
  Cluster cluster{options, common::Rng{1}};
  const auto host = cluster.place(512);
  ASSERT_TRUE(host.has_value());
  ASSERT_NE(cluster.start_provisioning(FunctionId{0}, SandboxKind::Container,
                                       512, *host, TimePoint{}),
            nullptr);
  EXPECT_FALSE(cluster.place(512).has_value());
}

TEST(Cluster, ConcurrencyPenaltyInflatesProvisionLatency) {
  ClusterOptions options;
  Cluster cluster{options, common::Rng{1}};
  // Remove jitter so the inflation is exact.
  SandboxProfile profile = default_profile(SandboxKind::Container);
  profile.cold_start_jitter = Duration::zero();
  cluster.catalog().set_profile(SandboxKind::Container, profile);

  const auto host = cluster.place(512);
  Worker* first = cluster.start_provisioning(
      FunctionId{0}, SandboxKind::Container, 512, *host, TimePoint{});
  const Duration solo = cluster.sample_provision_latency(*first);
  EXPECT_EQ(solo, profile.cold_start_base);

  // Nine more concurrent provisions: the tenth sees 9 contenders.
  Worker* last = nullptr;
  for (int i = 1; i < 10; ++i) {
    last = cluster.start_provisioning(FunctionId{static_cast<unsigned>(i)},
                                      SandboxKind::Container, 512, *host,
                                      TimePoint{});
  }
  const Duration contended = cluster.sample_provision_latency(*last);
  const double expected =
      profile.cold_start_base.millis() * (1.0 + profile.concurrency_penalty * 9);
  EXPECT_NEAR(contended.millis(), expected, 1e-6);
}

TEST(Cluster, DestroyWorkerReleasesResources) {
  ClusterOptions options;
  options.host_count = 1;
  options.memory_mb_per_host = 1200;
  Cluster cluster{options, common::Rng{1}};
  const auto host = cluster.place(512);
  Worker* w = cluster.start_provisioning(FunctionId{0}, SandboxKind::Container,
                                         512, *host, TimePoint{});
  ASSERT_NE(w, nullptr);
  const double used = cluster.host(*host).memory_used_mb();
  EXPECT_GT(used, 512.0);  // Includes sandbox overhead.
  const WorkerId id = w->id();
  cluster.destroy_worker(id, at_seconds(1));
  EXPECT_DOUBLE_EQ(cluster.host(*host).memory_used_mb(), 0.0);
  EXPECT_EQ(cluster.find_worker(id), nullptr);
  EXPECT_EQ(cluster.live_worker_count(), 0u);
  EXPECT_EQ(cluster.host(*host).inflight_provisions(), 0u);
}

TEST(Cluster, RejectsBadOptions) {
  ClusterOptions options;
  options.host_count = 0;
  EXPECT_THROW((Cluster{options, common::Rng{1}}), std::invalid_argument);
}

}  // namespace
}  // namespace xanadu::cluster
