// Unit tests for src/common: ids, rng, ema, stats, result, arena, interner.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <set>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/arena.hpp"
#include "common/ema.hpp"
#include "common/ids.hpp"
#include "common/interner.hpp"
#include "common/result.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"

namespace xanadu::common {
namespace {

// ----------------------------------------------------------------- ids ----

TEST(Ids, DefaultConstructedIdIsInvalid) {
  EXPECT_FALSE(FunctionId{}.valid());
  EXPECT_FALSE(WorkerId{}.valid());
}

TEST(Ids, ExplicitIdIsValidAndComparable) {
  const FunctionId a{1};
  const FunctionId b{2};
  EXPECT_TRUE(a.valid());
  EXPECT_LT(a, b);
  EXPECT_NE(a, b);
  EXPECT_EQ(a, FunctionId{1});
}

TEST(Ids, GeneratorProducesSequentialIds) {
  IdGenerator<RequestId> gen;
  EXPECT_EQ(gen.next().value(), 0u);
  EXPECT_EQ(gen.next().value(), 1u);
  EXPECT_EQ(gen.next().value(), 2u);
  gen.reset();
  EXPECT_EQ(gen.next().value(), 0u);
}

TEST(Ids, HashableInUnorderedContainers) {
  std::unordered_set<NodeId> set;
  set.insert(NodeId{1});
  set.insert(NodeId{1});
  set.insert(NodeId{2});
  EXPECT_EQ(set.size(), 2u);
}

// ----------------------------------------------------------------- rng ----

TEST(Rng, DeterministicForSameSeed) {
  Rng a{123};
  Rng b{123};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a{1};
  Rng b{2};
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformWithinUnitInterval) {
  Rng rng{7};
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng{7};
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(5.0, 9.0);
    EXPECT_GE(u, 5.0);
    EXPECT_LT(u, 9.0);
  }
}

TEST(Rng, UniformRejectsInvertedBounds) {
  Rng rng{7};
  EXPECT_THROW(rng.uniform(2.0, 1.0), std::invalid_argument);
}

TEST(Rng, UniformIntCoversRange) {
  Rng rng{11};
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 600; ++i) seen.insert(rng.uniform_int(6));
  EXPECT_EQ(seen.size(), 6u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 5u);
}

TEST(Rng, UniformIntRejectsZero) {
  Rng rng{11};
  EXPECT_THROW(rng.uniform_int(0), std::invalid_argument);
}

TEST(Rng, BernoulliMatchesProbabilityRoughly) {
  Rng rng{13};
  int hits = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  const double rate = static_cast<double>(hits) / trials;
  EXPECT_NEAR(rate, 0.3, 0.02);
}

TEST(Rng, WeightedIndexFollowsWeights) {
  Rng rng{17};
  const std::vector<double> weights{7.0, 2.0, 1.0};
  std::vector<int> counts(3, 0);
  const int trials = 30000;
  for (int i = 0; i < trials; ++i) ++counts[rng.weighted_index(weights)];
  EXPECT_NEAR(counts[0] / static_cast<double>(trials), 0.7, 0.02);
  EXPECT_NEAR(counts[1] / static_cast<double>(trials), 0.2, 0.02);
  EXPECT_NEAR(counts[2] / static_cast<double>(trials), 0.1, 0.02);
}

TEST(Rng, WeightedIndexRejectsDegenerateInput) {
  Rng rng{17};
  EXPECT_THROW(rng.weighted_index({}), std::invalid_argument);
  EXPECT_THROW(rng.weighted_index({0.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(rng.weighted_index({1.0, -1.0}), std::invalid_argument);
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng rng{19};
  double total = 0.0;
  const int trials = 50000;
  for (int i = 0; i < trials; ++i) total += rng.exponential(4.0);
  EXPECT_NEAR(total / trials, 4.0, 0.15);
}

TEST(Rng, NormalHasRequestedMoments) {
  Rng rng{23};
  Accumulator acc;
  for (int i = 0; i < 50000; ++i) acc.observe(rng.normal(10.0, 2.0));
  EXPECT_NEAR(acc.mean(), 10.0, 0.1);
  EXPECT_NEAR(acc.stddev(), 2.0, 0.1);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a{31};
  Rng child = a.fork();
  // The fork must not replay the parent's stream.
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == child.next()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

// ----------------------------------------------------------------- ema ----

TEST(Ema, FirstSampleInitialisesExactly) {
  Ema ema{0.3};
  ema.observe(42.0);
  EXPECT_DOUBLE_EQ(ema.value(), 42.0);
}

TEST(Ema, BlendsWithAlpha) {
  Ema ema{0.5};
  ema.observe(10.0);
  ema.observe(20.0);
  EXPECT_DOUBLE_EQ(ema.value(), 15.0);
  ema.observe(15.0);
  EXPECT_DOUBLE_EQ(ema.value(), 15.0);
}

TEST(Ema, ValueOrFallsBackWhenEmpty) {
  Ema ema;
  EXPECT_DOUBLE_EQ(ema.value_or(7.0), 7.0);
  ema.observe(3.0);
  EXPECT_DOUBLE_EQ(ema.value_or(7.0), 3.0);
}

TEST(Ema, ValueThrowsWhenEmpty) {
  Ema ema;
  EXPECT_THROW((void)ema.value(), std::logic_error);
}

TEST(Ema, RejectsBadAlpha) {
  EXPECT_THROW(Ema{0.0}, std::invalid_argument);
  EXPECT_THROW(Ema{1.5}, std::invalid_argument);
  EXPECT_NO_THROW(Ema{1.0});
}

TEST(Ema, ConvergesTowardNewRegime) {
  Ema ema{0.3};
  for (int i = 0; i < 10; ++i) ema.observe(100.0);
  for (int i = 0; i < 30; ++i) ema.observe(200.0);
  EXPECT_NEAR(ema.value(), 200.0, 1.0);
}

TEST(Ema, ToleratesOutliers) {
  Ema ema{0.2};
  for (int i = 0; i < 20; ++i) ema.observe(100.0);
  ema.observe(1000.0);  // One outlier.
  EXPECT_LT(ema.value(), 300.0);
}

// --------------------------------------------------------------- stats ----

TEST(Stats, AccumulatorBasics) {
  Accumulator acc;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.observe(x);
  EXPECT_EQ(acc.count(), 8u);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_NEAR(acc.stddev(), 2.138, 0.01);
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 9.0);
  EXPECT_DOUBLE_EQ(acc.sum(), 40.0);
}

TEST(Stats, EmptyAccumulatorIsZeroed) {
  Accumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
}

TEST(Stats, SummarizeComputesPercentiles) {
  std::vector<double> samples;
  for (int i = 1; i <= 100; ++i) samples.push_back(i);
  const Summary s = summarize(samples);
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.mean, 50.5);
  EXPECT_NEAR(s.p50, 50.5, 0.01);
  EXPECT_NEAR(s.p95, 95.05, 0.01);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
}

TEST(Stats, PercentileSortedEdgeCases) {
  EXPECT_THROW((void)percentile_sorted({}, 0.5), std::invalid_argument);
  EXPECT_THROW((void)percentile_sorted({1.0}, 1.5), std::invalid_argument);
  EXPECT_DOUBLE_EQ(percentile_sorted({5.0}, 0.9), 5.0);
  EXPECT_DOUBLE_EQ(percentile_sorted({1.0, 3.0}, 0.5), 2.0);
}

TEST(Stats, LinearFitExactLine) {
  const std::vector<double> x{1, 2, 3, 4, 5};
  const std::vector<double> y{3, 5, 7, 9, 11};  // y = 2x + 1
  const LinearFit fit = linear_fit(x, y);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(Stats, LinearFitNoisyLineHasHighR2) {
  const std::vector<double> x{1, 2, 3, 4, 5, 6};
  const std::vector<double> y{2.1, 3.9, 6.2, 7.8, 10.1, 11.9};
  const LinearFit fit = linear_fit(x, y);
  EXPECT_NEAR(fit.slope, 2.0, 0.1);
  EXPECT_GT(fit.r_squared, 0.99);
}

TEST(Stats, LinearFitRejectsDegenerateInput) {
  EXPECT_THROW((void)linear_fit({1.0}, {1.0}), std::invalid_argument);
  EXPECT_THROW((void)linear_fit({1.0, 2.0}, {1.0}), std::invalid_argument);
  EXPECT_THROW((void)linear_fit({3.0, 3.0}, {1.0, 2.0}), std::invalid_argument);
}

TEST(Stats, LinearFitConstantYIsPerfectFit) {
  const LinearFit fit = linear_fit({1.0, 2.0, 3.0}, {5.0, 5.0, 5.0});
  EXPECT_DOUBLE_EQ(fit.slope, 0.0);
  EXPECT_DOUBLE_EQ(fit.intercept, 5.0);
  EXPECT_DOUBLE_EQ(fit.r_squared, 1.0);
}

// -------------------------------------------------------------- result ----

TEST(Result, HoldsValue) {
  Result<int> r{42};
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
}

TEST(Result, HoldsError) {
  Result<int> r{make_error("boom")};
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().message, "boom");
}

TEST(Result, WrongAccessThrows) {
  Result<int> value{1};
  Result<int> error{make_error("x")};
  EXPECT_THROW((void)value.error(), std::logic_error);
  EXPECT_THROW((void)error.value(), std::logic_error);
}

// --------------------------------------------------------------- arena ----

TEST(Arena, RespectsAlignment) {
  Arena arena;
  // Deliberately misalign the cursor with a 1-byte allocation first.
  (void)arena.allocate(1, 1);
  for (const std::size_t align : {2u, 4u, 8u, 16u, 64u}) {
    void* p = arena.allocate(3, align);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % align, 0u)
        << "align " << align;
    (void)arena.allocate(1, 1);  // Re-misalign for the next iteration.
  }
}

TEST(Arena, ZeroByteAllocationIsValid) {
  Arena arena;
  EXPECT_NE(arena.allocate(0, 1), nullptr);
}

TEST(Arena, GrowsBlocksThenResetKeepsOnlyTheFirst) {
  Arena arena{/*block_bytes=*/256};
  for (int i = 0; i < 8; ++i) (void)arena.allocate(200, 8);
  EXPECT_GT(arena.block_count(), 1u);
  EXPECT_EQ(arena.bytes_allocated(), 8u * 200u);

  arena.reset();
  EXPECT_EQ(arena.block_count(), 1u);  // First block kept warm.
  EXPECT_EQ(arena.oversized_count(), 0u);
  EXPECT_EQ(arena.bytes_allocated(), 0u);

  // The kept block serves the next allocations without growing.
  (void)arena.allocate(200, 8);
  EXPECT_EQ(arena.block_count(), 1u);
}

TEST(Arena, ResetReuseReturnsTheSameFirstBlockStorage) {
  Arena arena{/*block_bytes=*/256};
  void* first = arena.allocate(64, 8);
  arena.reset();
  void* again = arena.allocate(64, 8);
  EXPECT_EQ(first, again);
}

TEST(Arena, OversizedAllocationsFallBackAndAreFreedOnReset) {
  Arena arena{/*block_bytes=*/128};
  void* big = arena.allocate(4096, 16);
  ASSERT_NE(big, nullptr);
  EXPECT_EQ(arena.oversized_count(), 1u);
  // Oversized storage is writable end to end.
  std::memset(big, 0xab, 4096);
  (void)arena.allocate(4096, 16);
  EXPECT_EQ(arena.oversized_count(), 2u);
  arena.reset();
  EXPECT_EQ(arena.oversized_count(), 0u);
}

TEST(Arena, VectorGrowsAndSurvivesRebindAfterReset) {
  Arena arena;
  ArenaVector<std::uint64_t> values{ArenaAllocator<std::uint64_t>(&arena)};
  for (std::uint64_t i = 0; i < 1000; ++i) values.push_back(i);
  ASSERT_EQ(values.size(), 1000u);
  EXPECT_EQ(values[999], 999u);

  // The recycle protocol: re-bind to an empty container BEFORE resetting,
  // so no live container points into reclaimed memory.
  values = ArenaVector<std::uint64_t>(ArenaAllocator<std::uint64_t>(&arena));
  arena.reset();
  for (std::uint64_t i = 0; i < 10; ++i) values.push_back(i * 3);
  EXPECT_EQ(values[9], 27u);
}

TEST(ArenaAllocator, EqualityFollowsTheArena) {
  Arena a;
  Arena b;
  EXPECT_EQ(ArenaAllocator<int>(&a), ArenaAllocator<int>(&a));
  EXPECT_NE(ArenaAllocator<int>(&a), ArenaAllocator<int>(&b));
  // Rebinding to another value type preserves the arena identity.
  const ArenaAllocator<long> rebound{ArenaAllocator<int>(&a)};
  EXPECT_EQ(rebound.arena(), &a);
}

#if defined(XANADU_ARENA_ASAN)
using ArenaDeathTest = ::testing::Test;

TEST(ArenaDeathTest, UseAfterResetFaultsUnderAsan) {
  // reset() poisons everything it reclaims, so a stale pointer must fault
  // immediately instead of silently reading recycled memory.
  EXPECT_DEATH(
      {
        Arena arena;
        auto* p = static_cast<volatile std::uint64_t*>(
            arena.allocate(sizeof(std::uint64_t), alignof(std::uint64_t)));
        *p = 42;
        arena.reset();
        std::uint64_t v = *p;  // Poisoned read.
        (void)v;
      },
      "use-after-poison");
}

TEST(ArenaDeathTest, BlockTailIsPoisonedUnderAsan) {
  EXPECT_DEATH(
      {
        Arena arena{/*block_bytes=*/256};
        auto* p = static_cast<volatile std::uint8_t*>(arena.allocate(8, 1));
        std::uint8_t v = p[16];  // Past the allocation, inside the block.
        (void)v;
      },
      "use-after-poison");
}
#endif  // XANADU_ARENA_ASAN

// ------------------------------------------------------------ interner ----

TEST(StringInterner, DeduplicatesAndAssignsDenseSymbols) {
  StringInterner interner;
  const Symbol a = interner.intern("alpha");
  const Symbol b = interner.intern("beta");
  const Symbol a2 = interner.intern("alpha");
  EXPECT_EQ(a, a2);
  EXPECT_NE(a, b);
  EXPECT_EQ(a, 0u);  // First-use order, dense from zero.
  EXPECT_EQ(b, 1u);
  EXPECT_EQ(interner.size(), 2u);
}

TEST(StringInterner, ViewsStayStableAcrossGrowth) {
  StringInterner interner;
  const std::string_view first = interner.view(interner.intern("stable"));
  const char* data = first.data();
  // Force many rehashes/growth; the storage behind `first` must not move.
  for (int i = 0; i < 5000; ++i) {
    (void)interner.intern("key-" + std::to_string(i));
  }
  EXPECT_EQ(interner.view(0), "stable");
  EXPECT_EQ(interner.view(0).data(), data);
}

TEST(StringInterner, FindIsNonCreating) {
  StringInterner interner;
  EXPECT_FALSE(interner.find("ghost").has_value());
  EXPECT_EQ(interner.size(), 0u);
  const Symbol s = interner.intern("ghost");
  ASSERT_TRUE(interner.find("ghost").has_value());
  EXPECT_EQ(*interner.find("ghost"), s);
}

TEST(StringInterner, InternsViewsIntoTemporaries) {
  StringInterner interner;
  Symbol s;
  {
    const std::string temporary{"short-lived"};
    s = interner.intern(temporary);
  }  // The interner must own a copy, not the dead temporary.
  EXPECT_EQ(interner.view(s), "short-lived");
}

}  // namespace
}  // namespace xanadu::common
