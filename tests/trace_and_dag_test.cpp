// Tests for the trace CSV exporter, the general random-DAG generator, and
// the worker-reuse-on-miss extension.

#include <gtest/gtest.h>

#include <sstream>

#include "core/dispatch_manager.hpp"
#include "metrics/trace.hpp"
#include "workflow/builders.hpp"
#include "workflow/random_dag.hpp"

namespace xanadu {
namespace {

using core::DispatchManager;
using core::DispatchManagerOptions;
using core::PlatformKind;
using sim::Duration;

// ----------------------------------------------------------------- trace --

TEST(Trace, CsvContainsOneRowPerNode) {
  DispatchManagerOptions options;
  options.kind = PlatformKind::XanaduCold;
  DispatchManager manager{options};
  workflow::BuildOptions build;
  build.exec_time = Duration::from_millis(300);
  const workflow::WorkflowDag dag = workflow::linear_chain(3, build);
  const auto wf = manager.deploy(dag);
  const auto result = manager.invoke(wf);

  const std::string csv = metrics::trace_csv(result, dag);
  std::istringstream lines{csv};
  std::string line;
  int rows = 0;
  while (std::getline(lines, line)) ++rows;
  EXPECT_EQ(rows, 3);
  EXPECT_NE(csv.find("f1"), std::string::npos);
  EXPECT_NE(csv.find("completed"), std::string::npos);
  // Chained nodes carry their parent in the invoked_by column.
  EXPECT_NE(csv.find(",f1\n"), std::string::npos);
}

TEST(Trace, SkippedNodesHaveEmptyTimings) {
  DispatchManagerOptions options;
  options.kind = PlatformKind::XanaduCold;
  DispatchManager manager{options};
  workflow::XorCastOptions xor_opts;
  xor_opts.levels = 1;
  xor_opts.fan = 2;
  const workflow::WorkflowDag dag = workflow::xor_cast_dag(xor_opts);
  const auto wf = manager.deploy(dag);
  const auto result = manager.invoke(wf);

  const std::string csv = metrics::trace_csv(result, dag);
  EXPECT_NE(csv.find("skipped,,,,"), std::string::npos);
}

TEST(Trace, MultiRequestCsvHasHeaderOnce) {
  DispatchManagerOptions options;
  options.kind = PlatformKind::XanaduCold;
  DispatchManager manager{options};
  const workflow::WorkflowDag dag = workflow::linear_chain(2);
  const auto wf = manager.deploy(dag);
  std::vector<platform::RequestResult> results;
  results.push_back(manager.invoke(wf));
  results.push_back(manager.invoke(wf));
  const std::string csv = metrics::trace_csv(results, dag);
  std::size_t headers = 0, pos = 0;
  while ((pos = csv.find("request,node,function", pos)) != std::string::npos) {
    ++headers;
    ++pos;
  }
  EXPECT_EQ(headers, 1u);
}

// ------------------------------------------------------------ random dag --

class RandomDagProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomDagProperty, StructuralInvariants) {
  common::Rng rng{GetParam()};
  for (const std::size_t nodes : {1u, 4u, 8u, 16u, 32u}) {
    workflow::RandomDagOptions opts;
    opts.node_count = nodes;
    opts.levels = 4;
    const workflow::WorkflowDag dag = workflow::random_dag(opts, rng);
    EXPECT_NO_THROW(dag.validate());
    EXPECT_EQ(dag.node_count(), nodes);
    EXPECT_GE(dag.roots().size(), 1u);
    // Every XOR node's probabilities sum to ~1; every non-XOR edge is 1.
    for (const auto& node : dag.nodes()) {
      if (node.dispatch == workflow::DispatchMode::Xor &&
          node.children.size() > 1) {
        double total = 0;
        for (const auto& e : node.children) total += e.probability;
        EXPECT_NEAR(total, 1.0, 1e-9);
      } else {
        for (const auto& e : node.children) {
          EXPECT_DOUBLE_EQ(e.probability, 1.0);
        }
      }
    }
  }
}

TEST_P(RandomDagProperty, ExecutesOnEveryXanaduMode) {
  // End-to-end robustness: arbitrary m:n DAGs run to completion under all
  // speculation modes, with consistent executed/skipped accounting.
  common::Rng rng{GetParam() * 7919};
  workflow::RandomDagOptions opts;
  opts.node_count = 12;
  opts.levels = 5;
  opts.base.exec_time = Duration::from_millis(400);
  const workflow::WorkflowDag dag = workflow::random_dag(opts, rng);

  for (const PlatformKind kind :
       {PlatformKind::XanaduCold, PlatformKind::XanaduSpeculative,
        PlatformKind::XanaduJit}) {
    DispatchManagerOptions options;
    options.kind = kind;
    options.seed = GetParam();
    DispatchManager manager{options};
    const auto wf = manager.deploy(dag);
    for (int i = 0; i < 3; ++i) {
      manager.force_cold_start();
      const auto result = manager.invoke(wf);
      EXPECT_EQ(result.executed_nodes + result.skipped_nodes, dag.node_count());
      EXPECT_GE(result.overhead, Duration::zero());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomDagProperty,
                         ::testing::Values(3u, 17u, 29u, 61u, 101u));

TEST(RandomDag, RejectsBadOptions) {
  common::Rng rng{1};
  workflow::RandomDagOptions opts;
  opts.node_count = 0;
  EXPECT_THROW(workflow::random_dag(opts, rng), std::invalid_argument);
  opts = {};
  opts.levels = 0;
  EXPECT_THROW(workflow::random_dag(opts, rng), std::invalid_argument);
  opts = {};
  opts.xor_probability = 1.5;
  EXPECT_THROW(workflow::random_dag(opts, rng), std::invalid_argument);
  opts = {};
  opts.min_bias = 0.2;
  EXPECT_THROW(workflow::random_dag(opts, rng), std::invalid_argument);
}

// -------------------------------------------------------- worker reuse ----

TEST(WorkerReuse, RebindMovesWarmWorkerBetweenCompatibleFunctions) {
  sim::Simulator sim;
  cluster::Cluster cluster{cluster::ClusterOptions{}, common::Rng{3}};
  platform::PlatformCalibration calib;
  calib.overhead_jitter = Duration::zero();
  calib.worker_handoff = Duration::zero();
  calib.rebind_latency = Duration::from_millis(100);
  platform::PlatformEngine engine{sim, cluster, calib, nullptr, common::Rng{5}};

  // Two independent single-node workflows with identical specs.
  workflow::BuildOptions build;
  build.exec_time = Duration::from_millis(200);
  const auto wf_a = engine.register_workflow(workflow::linear_chain(1, build));
  const auto wf_b = engine.register_workflow(workflow::linear_chain(1, build));
  const auto fn_a = engine.function_id(wf_a, common::NodeId{0});
  const auto fn_b = engine.function_id(wf_b, common::NodeId{0});

  // Warm fn_a's pool.
  (void)engine.run_one(wf_a);
  ASSERT_EQ(engine.warm_count(fn_a), 1u);
  ASSERT_EQ(engine.warm_count(fn_b), 0u);

  EXPECT_TRUE(engine.rebind_warm_worker(fn_a, fn_b));
  EXPECT_EQ(engine.warm_count(fn_a), 0u);
  // The rebind takes 100 ms of code reload before joining fn_b's pool.
  EXPECT_EQ(engine.warm_count(fn_b), 0u);
  sim.run_until(sim.now() + Duration::from_millis(150));
  EXPECT_EQ(engine.warm_count(fn_b), 1u);

  // A request to fn_b is now warm without provisioning a new worker.
  const auto result = engine.run_one(wf_b);
  EXPECT_EQ(result.cold_starts, 0u);
  EXPECT_EQ(result.workers_provisioned, 0u);
}

TEST(WorkerReuse, FlushTearsDownMidRebindWorkers) {
  // Regression: a worker mid-rebind belongs to no warm pool (popped at rebind
  // start), so the pre-fix flush_all() could not see it.  It survived the
  // flush, re-parked itself into the target pool when the rebind latency
  // elapsed, re-armed a keep-alive timer, and kept accruing idle ledger cost
  // -- breaking "force cold conditions" harnesses and C_R comparisons.
  sim::Simulator sim;
  cluster::Cluster cluster{cluster::ClusterOptions{}, common::Rng{3}};
  platform::PlatformCalibration calib;
  calib.overhead_jitter = Duration::zero();
  calib.worker_handoff = Duration::zero();
  calib.rebind_latency = Duration::from_millis(100);
  calib.keep_alive = Duration::from_seconds(1);
  platform::PlatformEngine engine{sim, cluster, calib, nullptr, common::Rng{5}};

  workflow::BuildOptions build;
  build.exec_time = Duration::from_millis(200);
  const auto wf_a = engine.register_workflow(workflow::linear_chain(1, build));
  const auto wf_b = engine.register_workflow(workflow::linear_chain(1, build));
  const auto fn_a = engine.function_id(wf_a, common::NodeId{0});
  const auto fn_b = engine.function_id(wf_b, common::NodeId{0});

  (void)engine.run_one(wf_a);
  ASSERT_EQ(engine.warm_count(fn_a), 1u);
  ASSERT_TRUE(engine.rebind_warm_worker(fn_a, fn_b));
  // Mid-rebind: not pooled anywhere, counted as provisioning coverage.
  ASSERT_EQ(engine.warm_count(fn_a), 0u);
  ASSERT_EQ(engine.warm_count(fn_b), 0u);
  ASSERT_TRUE(engine.provisioning_in_flight(fn_b));
  ASSERT_EQ(cluster.live_worker_count(), 1u);

  engine.flush_all_warm_workers();

  // The sandbox is gone NOW, with its rebind-completion event cancelled and
  // the inbound-rebind coverage released.
  EXPECT_EQ(cluster.live_worker_count(), 0u);
  EXPECT_EQ(engine.keep_alive_event_count(), 0u);
  EXPECT_FALSE(engine.provisioning_in_flight(fn_b));

  // Drain past the rebind latency and the keep-alive window: the worker must
  // not resurrect into fn_b's pool, no timer may re-arm, and the ledger must
  // not accrue further idle cost for it.
  const cluster::ResourceLedger before = cluster.ledger();
  sim.run_until(sim.now() + Duration::from_seconds(3));
  EXPECT_EQ(engine.warm_count(fn_b), 0u);
  EXPECT_EQ(engine.keep_alive_event_count(), 0u);
  EXPECT_EQ(cluster.live_worker_count(), 0u);
  const cluster::ResourceLedger delta = cluster.ledger() - before;
  EXPECT_DOUBLE_EQ(delta.idle_cpu_core_seconds, 0.0);
  EXPECT_DOUBLE_EQ(delta.idle_memory_mb_seconds, 0.0);
}

TEST(WorkerReuse, RebindRefusesIncompatibleArchitectures) {
  sim::Simulator sim;
  cluster::Cluster cluster{cluster::ClusterOptions{}, common::Rng{3}};
  platform::PlatformCalibration calib;
  platform::PlatformEngine engine{sim, cluster, calib, nullptr, common::Rng{5}};

  workflow::BuildOptions container;
  container.exec_time = Duration::from_millis(200);
  workflow::BuildOptions isolate = container;
  isolate.sandbox = workflow::SandboxKind::Isolate;
  workflow::BuildOptions big = container;
  big.memory_mb = 2048;

  const auto wf_a = engine.register_workflow(workflow::linear_chain(1, container));
  const auto wf_b = engine.register_workflow(workflow::linear_chain(1, isolate));
  const auto wf_c = engine.register_workflow(workflow::linear_chain(1, big));
  const auto fn_a = engine.function_id(wf_a, common::NodeId{0});
  const auto fn_b = engine.function_id(wf_b, common::NodeId{0});
  const auto fn_c = engine.function_id(wf_c, common::NodeId{0});

  (void)engine.run_one(wf_a);
  ASSERT_EQ(engine.warm_count(fn_a), 1u);
  EXPECT_FALSE(engine.rebind_warm_worker(fn_a, fn_b));  // Kind differs.
  EXPECT_FALSE(engine.rebind_warm_worker(fn_a, fn_c));  // Memory differs.
  EXPECT_EQ(engine.warm_count(fn_a), 1u);               // Untouched.
  EXPECT_FALSE(engine.rebind_warm_worker(fn_b, fn_a));  // Nothing warm.
}

TEST(WorkerReuse, PolicyReusesMisdeployedSandboxOnMiss) {
  // An XOR with two same-architecture deep branches.  With reuse + replan
  // enabled, a miss recycles the wrong branch's sandboxes into the taken
  // branch, provisioning fewer fresh workers than the discard policy.
  workflow::WorkflowDag dag{"reuse"};
  workflow::FunctionSpec spec;
  spec.exec_time = Duration::from_millis(4000);
  spec.name = "root";
  const auto root = dag.add_node(spec, workflow::DispatchMode::Xor);
  common::NodeId prev_a{}, prev_b{};
  for (int i = 0; i < 3; ++i) {
    spec.name = "a" + std::to_string(i);
    const auto a = dag.add_node(spec);
    spec.name = "b" + std::to_string(i);
    const auto b = dag.add_node(spec);
    if (i == 0) {
      dag.add_edge(root, a, 0.95);
      dag.add_edge(root, b, 0.05);
    } else {
      dag.add_edge(prev_a, a);
      dag.add_edge(prev_b, b);
    }
    prev_a = a;
    prev_b = b;
  }
  dag.validate();

  auto run = [&](bool reuse, std::uint64_t seed) {
    DispatchManagerOptions options;
    options.kind = PlatformKind::XanaduJit;
    options.seed = seed;
    options.xanadu.miss_policy = core::MissPolicy::Replan;
    options.xanadu.reuse_workers_on_miss = reuse;
    DispatchManager manager{options};
    const auto wf = manager.deploy(dag);
    std::size_t wasted = 0;
    for (int i = 0; i < 120; ++i) {
      manager.force_cold_start();
      const auto r = manager.invoke(wf);
      wasted += r.speculation.wasted_workers;
    }
    return std::pair{wasted, manager.ledger().workers_provisioned};
  };

  const auto [wasted_discard, provisioned_discard] = run(false, 4);
  const auto [wasted_reuse, provisioned_reuse] = run(true, 4);
  // Reuse converts discarded sandboxes into useful ones: fewer wasted
  // workers and fewer fresh provisions for identical workloads.
  EXPECT_LT(wasted_reuse, wasted_discard);
  EXPECT_LT(provisioned_reuse, provisioned_discard);
}

}  // namespace
}  // namespace xanadu
