// Tests for the platform engine: DAG execution semantics (1:1, multicast,
// XOR cast, barrier), warm-pool reuse, keep-alive reclamation, prewarming,
// the OpenWhisk-style live-worker cap, and C_D accounting.

#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "common/rng.hpp"
#include "platform/engine.hpp"
#include "sim/audit.hpp"
#include "sim/simulator.hpp"
#include "workflow/builders.hpp"

namespace xanadu::platform {
namespace {

using namespace xanadu::sim::literals;
using workflow::BuildOptions;
using workflow::DispatchMode;
using workflow::SandboxKind;
using workflow::WorkflowDag;

/// Test fixture with a deterministic (jitter-free) calibration so latencies
/// are exactly computable.
class EngineTest : public ::testing::Test {
 protected:
  EngineTest() { reset(exact_calibration()); }

  /// Jitter- and handoff-free calibration: every latency in a test is an
  /// exact arithmetic consequence of the profile constants.
  static PlatformCalibration exact_calibration() {
    PlatformCalibration calib;
    calib.overhead_jitter = sim::Duration::zero();
    calib.worker_handoff = sim::Duration::zero();
    return calib;
  }

  void reset(PlatformCalibration calib, ProvisionPolicy* policy = nullptr) {
    calib.overhead_jitter = sim::Duration::zero();
    calib_ = calib;
    sim_ = std::make_unique<sim::Simulator>();
    cluster_ = std::make_unique<cluster::Cluster>(cluster::ClusterOptions{},
                                                  common::Rng{7});
    // Jitter-free container profile: 3000 ms cold, no concurrency penalty
    // unless a test opts in.
    auto profile = cluster::default_profile(SandboxKind::Container);
    profile.cold_start_jitter = sim::Duration::zero();
    profile.concurrency_penalty = 0.0;
    cluster_->catalog().set_profile(SandboxKind::Container, profile);
    engine_ = std::make_unique<PlatformEngine>(*sim_, *cluster_, calib_,
                                               policy, common::Rng{11});
  }

  BuildOptions exact_options(double exec_ms = 1000.0) {
    BuildOptions opts;
    opts.exec_time = sim::Duration::from_millis(exec_ms);
    opts.edge_delay = sim::Duration::zero();
    return opts;
  }

  PlatformCalibration calib_;
  std::unique_ptr<sim::Simulator> sim_;
  std::unique_ptr<cluster::Cluster> cluster_;
  std::unique_ptr<PlatformEngine> engine_;
};

TEST_F(EngineTest, SingleFunctionColdStartTiming) {
  const auto wf = engine_->register_workflow(
      workflow::linear_chain(1, exact_options(1000)));
  const RequestResult result = engine_->run_one(wf);
  // dispatch (25 ms) + cold start (3000 ms) + exec (1000 ms).
  EXPECT_NEAR(result.end_to_end.millis(), 4025.0, 1.0);
  EXPECT_NEAR(result.critical_path_exec.millis(), 1000.0, 0.5);
  EXPECT_NEAR(result.overhead.millis(), 3025.0, 1.0);
  EXPECT_EQ(result.cold_starts, 1u);
  EXPECT_EQ(result.executed_nodes, 1u);
  EXPECT_EQ(result.workers_provisioned, 1u);
  ASSERT_EQ(result.node_records.size(), 1u);
  EXPECT_TRUE(result.node_records[0].cold);
}

TEST_F(EngineTest, WarmStartReusesWorker) {
  const auto wf = engine_->register_workflow(
      workflow::linear_chain(1, exact_options(1000)));
  (void)engine_->run_one(wf);
  const RequestResult warm = engine_->run_one(wf);
  // dispatch (25 ms) + exec only.
  EXPECT_NEAR(warm.overhead.millis(), 25.0, 1.0);
  EXPECT_EQ(warm.cold_starts, 0u);
  EXPECT_EQ(warm.workers_provisioned, 0u);
  EXPECT_FALSE(warm.node_records[0].cold);
}

TEST_F(EngineTest, LinearChainColdOverheadGrowsLinearly) {
  std::vector<double> overheads;
  for (const std::size_t len : {1u, 2u, 3u, 4u}) {
    reset(calib_);
    const auto wf = engine_->register_workflow(
        workflow::linear_chain(len, exact_options(500)));
    overheads.push_back(engine_->run_one(wf).overhead.millis());
  }
  // Each extra hop adds one full cold start + dispatch: ~3025 ms.
  for (std::size_t i = 1; i < overheads.size(); ++i) {
    EXPECT_NEAR(overheads[i] - overheads[i - 1], 3025.0, 5.0);
  }
}

TEST_F(EngineTest, KeepAliveReclaimsWorkers) {
  PlatformCalibration calib = exact_calibration();
  calib.keep_alive = sim::Duration::from_minutes(10);
  reset(calib);
  const auto wf = engine_->register_workflow(
      workflow::linear_chain(1, exact_options(1000)));
  (void)engine_->run_one(wf);
  EXPECT_EQ(cluster_->live_worker_count(), 1u);  // Still warm.
  // Idle past the keep-alive window: the worker is reclaimed.
  sim_->run_until(sim_->now() + sim::Duration::from_minutes(11));
  EXPECT_EQ(cluster_->live_worker_count(), 0u);
  // Next request is cold again.
  const RequestResult again = engine_->run_one(wf);
  EXPECT_EQ(again.cold_starts, 1u);
}

TEST_F(EngineTest, RequestWithinKeepAliveIsWarm) {
  const auto wf = engine_->register_workflow(
      workflow::linear_chain(1, exact_options(1000)));
  RequestResult first;
  engine_->submit(wf, [&](const RequestResult& r) { first = r; });
  // Run just past request completion, well within keep-alive.
  sim_->run_until(sim_->now() + 10_s);
  EXPECT_EQ(cluster_->live_worker_count(), 1u);
  RequestResult second;
  engine_->submit(wf, [&](const RequestResult& r) { second = r; });
  sim_->run_until(sim_->now() + 10_s);
  EXPECT_EQ(second.cold_starts, 0u);
}

TEST_F(EngineTest, MulticastRunsAllChildrenInParallel) {
  const auto wf =
      engine_->register_workflow(workflow::fan_out(4, exact_options(1000)));
  const RequestResult result = engine_->run_one(wf);
  EXPECT_EQ(result.executed_nodes, 5u);
  EXPECT_EQ(result.skipped_nodes, 0u);
  // Children run in parallel: critical path is 2 functions deep.
  EXPECT_NEAR(result.critical_path_exec.millis(), 2000.0, 1.0);
  // End-to-end ~ 2 cold hops (children provision concurrently).
  EXPECT_LT(result.end_to_end.millis(), 2 * 3025.0 + 2000.0 + 100.0);
}

TEST_F(EngineTest, BarrierWaitsForSlowestParent) {
  // Two roots with different exec times joined by a sink.
  WorkflowDag dag{"barrier"};
  workflow::FunctionSpec fast;
  fast.name = "fast";
  fast.exec_time = 500_ms;
  workflow::FunctionSpec slow = fast;
  slow.name = "slow";
  slow.exec_time = 4000_ms;
  workflow::FunctionSpec sink = fast;
  sink.name = "sink";
  sink.exec_time = 100_ms;
  const auto a = dag.add_node(fast);
  const auto b = dag.add_node(slow);
  const auto c = dag.add_node(sink);
  dag.add_edge(a, c);
  dag.add_edge(b, c);
  const auto wf = engine_->register_workflow(std::move(dag));
  const RequestResult result = engine_->run_one(wf);
  ASSERT_EQ(result.executed_nodes, 3u);
  const NodeRecord& sink_record = result.node_records[c.value()];
  const NodeRecord& slow_record = result.node_records[b.value()];
  // The sink triggers exactly when the slow parent completes.
  EXPECT_EQ(sink_record.trigger_time, slow_record.exec_end);
  // Critical path goes through the slow branch.
  EXPECT_NEAR(result.critical_path_exec.millis(), 4100.0, 1.0);
  // Both parents invoked the sink (m:1 headers).
  EXPECT_EQ(sink_record.invoked_by.size(), 2u);
}

TEST_F(EngineTest, XorCastExecutesExactlyOneBranch) {
  workflow::XorCastOptions opts;
  opts.levels = 2;
  opts.fan = 3;
  opts.base = exact_options(500);
  const auto wf = engine_->register_workflow(workflow::xor_cast_dag(opts));
  const RequestResult result = engine_->run_one(wf);
  // Root + one child at each of 2 levels executed; the rest skipped.
  EXPECT_EQ(result.executed_nodes, 3u);
  EXPECT_EQ(result.skipped_nodes, 4u);
}

TEST_F(EngineTest, XorCastFollowsProbabilitiesStatistically) {
  workflow::XorCastOptions opts;
  opts.levels = 1;
  opts.fan = 2;
  opts.main_probability = 0.7;
  opts.favoured_index = 0;
  opts.base = exact_options(10);
  const auto wf = engine_->register_workflow(workflow::xor_cast_dag(opts));
  int favoured = 0;
  const int trials = 400;
  for (int i = 0; i < trials; ++i) {
    engine_->flush_all_warm_workers();
    const RequestResult r = engine_->run_one(wf);
    if (r.node_records[1].status == NodeStatus::Completed) ++favoured;
  }
  EXPECT_NEAR(favoured / static_cast<double>(trials), 0.7, 0.07);
}

TEST_F(EngineTest, SkippedBranchesDoNotProvisionWorkers) {
  workflow::XorCastOptions opts;
  opts.levels = 3;
  opts.fan = 2;
  opts.base = exact_options(200);
  const auto wf = engine_->register_workflow(workflow::xor_cast_dag(opts));
  const RequestResult result = engine_->run_one(wf);
  // Only executed nodes provision workers (skipped XOR siblings never do).
  EXPECT_EQ(result.workers_provisioned, result.executed_nodes);
  EXPECT_GT(result.skipped_nodes, 0u);
}

TEST_F(EngineTest, PrewarmAllPolicyEliminatesChainedColdStarts) {
  PrewarmAllPolicy policy;
  reset(exact_calibration(), &policy);
  const auto wf = engine_->register_workflow(
      workflow::linear_chain(5, exact_options(5000)));
  const RequestResult result = engine_->run_one(wf);
  // First function still cold (its provision races the trigger), but all
  // later ones find ready workers: overhead ~ one cold start + dispatches.
  EXPECT_LT(result.overhead.millis(), 3500.0);
  EXPECT_EQ(result.workers_provisioned, 5u);
  // Every node after the first was warm by its trigger time.
  for (std::size_t i = 1; i < 5; ++i) {
    EXPECT_EQ(result.node_records[i].provision_wait, sim::Duration::zero());
  }
}

TEST_F(EngineTest, DispatchAttachesToInFlightProvision) {
  PrewarmAllPolicy policy;
  reset(exact_calibration(), &policy);
  const auto wf = engine_->register_workflow(
      workflow::linear_chain(1, exact_options(100)));
  // The prewarm fires at submit (t = 0); the dispatch arrives at t = 25 ms
  // while that provision is still in flight.  It must attach to it instead
  // of starting a second provision.
  const RequestResult result = engine_->run_one(wf);
  EXPECT_EQ(result.workers_provisioned, 1u);
  const NodeRecord& record = result.node_records[0];
  EXPECT_TRUE(record.cold);
  EXPECT_GT(record.provision_wait, sim::Duration::zero());
  // Execution starts when the prewarm (started at 0) is ready -- ~3000 ms --
  // not at dispatch + full cold start (~3025 ms).
  EXPECT_NEAR(record.exec_start.millis(), 3000.0, 1.0);
}

TEST_F(EngineTest, SecondWaiterRedispatchesWhenProvisionClaimed) {
  // Two requests race for the same single-function workflow: the second
  // attaches to the first's in-flight provision, loses it, and provisions
  // its own worker.
  const auto wf = engine_->register_workflow(
      workflow::linear_chain(1, exact_options(100)));
  RequestResult first, second;
  engine_->submit(wf, [&](const RequestResult& r) { first = r; });
  sim_->schedule_after(1_s, [&] {
    engine_->submit(wf, [&](const RequestResult& r) { second = r; });
  });
  sim_->run_until(sim_->now() + 20_s);
  // First request: exec at ~3025 (dispatch 25 + provision 3000).
  EXPECT_NEAR(first.node_records[0].exec_start.millis(), 3025.0, 1.0);
  // Second request dispatched at ~1025, waited for the first provision
  // (claimed by request 1 at 3025), then provisioned its own worker:
  // exec at ~3025 + 3000.
  EXPECT_NEAR(second.node_records[0].exec_start.millis(), 6025.0, 2.0);
  EXPECT_EQ(second.workers_provisioned, 1u);
}

TEST_F(EngineTest, LiveWorkerCapEvictsAndPaysPenalty) {
  PlatformCalibration calib = exact_calibration();
  calib.max_live_workers = 2;
  calib.eviction_penalty = 700_ms;
  reset(calib);
  const auto wf = engine_->register_workflow(
      workflow::linear_chain(3, exact_options(500)));
  const RequestResult result = engine_->run_one(wf);
  // Third provision must evict the first node's (now warm) worker.
  EXPECT_LE(cluster_->live_worker_count(), 3u);
  const NodeRecord& third = result.node_records[2];
  // Its provisioning wait includes the eviction penalty.
  EXPECT_GT(third.provision_wait.millis(), 3000.0 + 650.0);
}

TEST_F(EngineTest, DiscardWarmWorkersDestroysIdleSandboxes) {
  const auto wf = engine_->register_workflow(
      workflow::linear_chain(1, exact_options(100)));
  RequestResult r;
  engine_->submit(wf, [&](const RequestResult& result) { r = result; });
  sim_->run_until(sim_->now() + 10_s);
  const auto fn = engine_->function_id(wf, common::NodeId{0});
  EXPECT_EQ(engine_->warm_count(fn), 1u);
  EXPECT_EQ(engine_->discard_warm_workers(fn), 1u);
  EXPECT_EQ(engine_->warm_count(fn), 0u);
  EXPECT_EQ(cluster_->live_worker_count(), 0u);
}

TEST_F(EngineTest, WorkerHandoffDelaysFirstUseAndChargesPreUseIdle) {
  PlatformCalibration calib = exact_calibration();
  calib.worker_handoff = 80_ms;
  reset(calib);
  const auto wf = engine_->register_workflow(
      workflow::linear_chain(1, exact_options(1000)));
  const RequestResult result = engine_->run_one(wf);
  // dispatch (25) + provision (3000) + handoff (80) + exec (1000).
  EXPECT_NEAR(result.end_to_end.millis(), 4105.0, 1.0);
  // The worker idled for the handoff interval before first use.
  const auto& ledger = cluster_->ledger();
  const double mem = 512.0 + cluster_->catalog()
                                 .profile(workflow::SandboxKind::Container)
                                 .memory_overhead_mb;
  EXPECT_NEAR(ledger.pre_use_memory_mb_seconds, mem * 0.08, mem * 0.001);
}

TEST_F(EngineTest, OverheadEquationMatchesDefinition) {
  // C_D = R_F - sum(r_i) for a linear chain (Equation 1).
  const auto wf = engine_->register_workflow(
      workflow::linear_chain(3, exact_options(700)));
  const RequestResult result = engine_->run_one(wf);
  EXPECT_NEAR(result.critical_path_exec.millis(), 3 * 700.0, 1.0);
  EXPECT_NEAR(result.overhead.millis(),
              result.end_to_end.millis() - 2100.0, 0.5);
}

TEST_F(EngineTest, UnknownWorkflowRejected) {
  EXPECT_THROW(engine_->submit(common::WorkflowId{42}, nullptr),
               std::invalid_argument);
  EXPECT_THROW((void)engine_->dag(common::WorkflowId{42}), std::invalid_argument);
}

TEST_F(EngineTest, RunOneRejectsConcurrentRequests) {
  // run_one owns the whole request lifecycle: calling it while another
  // request is in flight would interleave the two and silently corrupt the
  // first request's timing.  The contract is an invariant, not a doc note.
  const auto wf = engine_->register_workflow(
      workflow::linear_chain(2, exact_options()));
  engine_->submit(wf, [](const RequestResult&) {});
  EXPECT_THROW((void)engine_->run_one(wf), sim::audit::InvariantViolation);
  // The in-flight request is untouched by the rejected call.
  sim_->run();
  EXPECT_EQ(engine_->recovery_stats().requests_failed, 0u);
}

TEST_F(EngineTest, ExecJitterVariesRuntime) {
  BuildOptions opts = exact_options(1000);
  opts.exec_jitter = 100_ms;
  const auto wf = engine_->register_workflow(workflow::linear_chain(1, opts));
  double min_exec = 1e18, max_exec = 0;
  for (int i = 0; i < 20; ++i) {
    engine_->flush_all_warm_workers();
    const RequestResult r = engine_->run_one(wf);
    min_exec = std::min(min_exec, r.node_records[0].exec_duration.millis());
    max_exec = std::max(max_exec, r.node_records[0].exec_duration.millis());
  }
  EXPECT_LT(min_exec, max_exec);
  EXPECT_NEAR((min_exec + max_exec) / 2.0, 1000.0, 200.0);
}

}  // namespace
}  // namespace xanadu::platform
