// Seed-replay determinism and invariant-audit tests.
//
// The repository's core reproducibility contract: two runs with the same
// seed produce bit-identical traces (same digests), different seeds produce
// different ones, and learned state survives a MetadataStore dump/parse
// round-trip without perturbing replay.  Alongside, the runtime audit
// subsystem (sim/audit.hpp) is pinned down: XANADU_INVARIANT stays active in
// every build type, fail-fast vs record modes behave as documented, and a
// healthy end-to-end run trips zero invariants.

#include <gtest/gtest.h>

#include <vector>

#include "cluster/worker.hpp"
#include "core/dispatch_manager.hpp"
#include "core/metadata_store.hpp"
#include "metrics/trace.hpp"
#include "sim/audit.hpp"
#include "workflow/builders.hpp"

namespace xanadu {
namespace {

using core::DispatchManager;
using core::DispatchManagerOptions;
using core::MetadataStore;
using core::PlatformKind;
using metrics::trace_digest;
using platform::RequestResult;
using sim::audit::AuditLog;
using sim::audit::InvariantViolation;
using sim::audit::Mode;

/// Restores the global audit log's mode and contents on scope exit so tests
/// cannot leak state into each other.
class AuditGuard {
 public:
  AuditGuard() : saved_mode_(sim::audit::log().mode()) {
    sim::audit::log().clear();
  }
  ~AuditGuard() {
    sim::audit::log().set_mode(saved_mode_);
    sim::audit::log().clear();
  }

 private:
  Mode saved_mode_;
};

workflow::WorkflowDag conditional_dag() {
  workflow::XorCastOptions options;
  options.levels = 3;
  options.fan = 3;
  return workflow::xor_cast_dag(options);
}

/// Runs `requests` invocations of the Figure-8 conditional DAG on a fresh
/// manager and returns the digest of the full trace.
std::uint64_t run_digest(std::uint64_t seed, PlatformKind kind,
                         int requests = 6) {
  DispatchManagerOptions options;
  options.kind = kind;
  options.seed = seed;
  DispatchManager manager{options};
  const workflow::WorkflowDag dag = conditional_dag();
  const auto wf = manager.deploy(conditional_dag());
  std::vector<RequestResult> results;
  results.reserve(static_cast<std::size_t>(requests));
  for (int i = 0; i < requests; ++i) results.push_back(manager.invoke(wf));
  return trace_digest(results, dag);
}

// ---------------------------------------------------------------------------
// Seed replay.
// ---------------------------------------------------------------------------

TEST(determinism, SameSeedSameDigest) {
  for (const PlatformKind kind :
       {PlatformKind::XanaduJit, PlatformKind::XanaduSpeculative,
        PlatformKind::KnativeLike}) {
    EXPECT_EQ(run_digest(42, kind), run_digest(42, kind))
        << "platform " << core::to_string(kind);
  }
}

TEST(determinism, DifferentSeedDifferentDigest) {
  // Dispatch jitter and XOR sampling both consume seeded randomness, so
  // distinct seeds must yield distinct timelines (collision odds over a
  // 64-bit digest are negligible).
  EXPECT_NE(run_digest(1, PlatformKind::XanaduJit),
            run_digest(2, PlatformKind::XanaduJit));
}

TEST(determinism, DigestCoversTimingsNotJustStructure) {
  // One request vs two: the prefix rows are identical, so inequality shows
  // the digest really extends over all emitted records.
  EXPECT_NE(run_digest(42, PlatformKind::XanaduJit, 1),
            run_digest(42, PlatformKind::XanaduJit, 2));
}

TEST(determinism, DigestHexRendersFixedWidth) {
  EXPECT_EQ(metrics::digest_hex(0), "0000000000000000");
  EXPECT_EQ(metrics::digest_hex(0xdeadbeefULL), "00000000deadbeef");
  EXPECT_EQ(metrics::fnv1a(""), metrics::kFnvOffsetBasis);
  // Published FNV-1a 64-bit test vector.
  EXPECT_EQ(metrics::fnv1a("a"), 0xaf63dc4c8601ec8cULL);
}

TEST(determinism, GoldenDigestGuard) {
  // Digests re-pinned ONCE for the RNG stream-discipline fix: provision
  // cold-start jitter now comes from a per-provision stream forked with the
  // stable key (function, worker) instead of the shared cluster stream, and
  // each request's stream is fork_stream(request id) -- removing the
  // speculative-batch order dependence the race detector pinned (the
  // intentional trace change this PR exists for).  If another intentional
  // trace change ever lands, update these constants in the same commit and
  // say why in the message.
  EXPECT_EQ(metrics::digest_hex(run_digest(42, PlatformKind::XanaduJit)),
            "c2afc5031706210f");
  EXPECT_EQ(metrics::digest_hex(run_digest(42, PlatformKind::KnativeLike)),
            "8afd89010356a979");
  EXPECT_EQ(metrics::digest_hex(run_digest(7, PlatformKind::XanaduJit)),
            "09474c8bf1617704");
  EXPECT_EQ(metrics::digest_hex(run_digest(7, PlatformKind::KnativeLike)),
            "cfd4f2f832e32645");
}

TEST(determinism, FaultedRunSameSeedSameDigest) {
  // The seed-replay contract extends over fault injection: the same seed and
  // the same FaultPlanOptions must reproduce the same faults at the same
  // decision points, hence the same trace.  (The per-class scenario matrix
  // lives in fault_injection_test.cpp; this pins the headline property next
  // to the fault-free one above.)
  auto faulted_digest = [](std::uint64_t seed) {
    DispatchManagerOptions options;
    options.kind = PlatformKind::XanaduJit;
    options.seed = seed;
    platform::PlatformCalibration calibration = platform::xanadu_calibration();
    calibration.control_bus.enabled = true;
    options.calibration = calibration;
    options.faults.bus_drop_rate = 0.1;
    options.faults.bus_delay_rate = 0.2;
    options.faults.provision_failure_rate = 0.2;
    options.faults.worker_crash_rate = 0.2;
    DispatchManager manager{options};
    const workflow::WorkflowDag dag = conditional_dag();
    const auto wf = manager.deploy(conditional_dag());
    std::vector<RequestResult> results;
    for (int i = 0; i < 6; ++i) results.push_back(manager.invoke(wf));
    return trace_digest(results, dag);
  };
  EXPECT_EQ(faulted_digest(42), faulted_digest(42));
  EXPECT_NE(faulted_digest(1), faulted_digest(2));
  // Golden faulted digests, re-pinned once with the RNG stream-discipline
  // fix (see GoldenDigestGuard): per-provision jitter and per-request
  // streams are now keyed fork_stream() children, which shifts every draw
  // sequence -- including the fault layer's decision points downstream of
  // engine setup.
  EXPECT_EQ(metrics::digest_hex(faulted_digest(42)), "ac86df31b658c914");
  EXPECT_EQ(metrics::digest_hex(faulted_digest(7)), "1e879155d145937d");
}

// ---------------------------------------------------------------------------
// MetadataStore round-trip.
// ---------------------------------------------------------------------------

TEST(determinism, MetadataDumpParseRoundTripIsStable) {
  // Train a branch model, persist it, and require dump -> parse -> dump to
  // reproduce the exact document text (hence the exact digest).
  DispatchManagerOptions options;
  options.kind = PlatformKind::XanaduJit;
  options.seed = 7;
  DispatchManager manager{options};
  const auto wf = manager.deploy(conditional_dag());
  for (int i = 0; i < 10; ++i) (void)manager.invoke(wf);

  MetadataStore store;
  ASSERT_TRUE(manager.xanadu_policy()->persist(wf, store, "conditional"));
  const std::string text1 = store.dump();

  const auto reparsed = MetadataStore::parse(text1);
  ASSERT_TRUE(reparsed.ok()) << reparsed.error().message;
  const std::string text2 = reparsed.value().dump();

  EXPECT_EQ(text1, text2);
  EXPECT_EQ(metrics::fnv1a(text1), metrics::fnv1a(text2));
}

TEST(determinism, ReplayFromReparsedMetadataMatchesOriginal) {
  // A control plane restored from a re-parsed document must speculate
  // exactly like one restored from the original: same seed, same trace.
  DispatchManagerOptions train_options;
  train_options.kind = PlatformKind::XanaduJit;
  train_options.seed = 7;
  DispatchManager trainer{train_options};
  const auto trained = trainer.deploy(conditional_dag());
  for (int i = 0; i < 10; ++i) (void)trainer.invoke(trained);
  MetadataStore store;
  ASSERT_TRUE(trainer.xanadu_policy()->persist(trained, store, "conditional"));

  const auto reparsed = MetadataStore::parse(store.dump());
  ASSERT_TRUE(reparsed.ok()) << reparsed.error().message;

  auto replay = [](const MetadataStore& source) {
    DispatchManagerOptions options;
    options.kind = PlatformKind::XanaduJit;
    options.seed = 99;
    DispatchManager manager{options};
    const workflow::WorkflowDag dag = conditional_dag();
    const auto wf = manager.deploy(conditional_dag());
    const auto restored =
        manager.xanadu_policy()->restore(wf, source, "conditional");
    EXPECT_TRUE(restored.ok() && restored.value());
    std::vector<RequestResult> results;
    for (int i = 0; i < 6; ++i) results.push_back(manager.invoke(wf));
    return trace_digest(results, dag);
  };

  EXPECT_EQ(replay(store), replay(reparsed.value()));
}

// ---------------------------------------------------------------------------
// Invariant audit subsystem.
// ---------------------------------------------------------------------------

TEST(determinism, InvariantThrowsInFailFastMode) {
  AuditGuard guard;
  sim::audit::log().set_mode(Mode::FailFast);
  EXPECT_THROW(XANADU_INVARIANT(1 == 2, "forced failure"), InvariantViolation);
  // InvariantViolation is a logic_error so pre-audit contract tests hold.
  EXPECT_THROW(XANADU_INVARIANT(false, "forced failure"), std::logic_error);
  EXPECT_EQ(sim::audit::log().total(), 2u);
}

TEST(determinism, InvariantCountsInRecordMode) {
  AuditGuard guard;
  sim::audit::log().set_mode(Mode::Record);
  for (int i = 0; i < 3; ++i) {
    EXPECT_NO_THROW(XANADU_INVARIANT(i > 10, "recorded, not thrown"));
  }
  EXPECT_EQ(sim::audit::log().total(), 3u);
  ASSERT_EQ(sim::audit::log().site_count(), 1u);  // one site, three hits
  EXPECT_EQ(sim::audit::log().sites().front().count, 3u);
  EXPECT_NE(sim::audit::log().summary().find("recorded, not thrown"),
            std::string::npos);
}

TEST(determinism, AuditNeverThrows) {
  AuditGuard guard;
  sim::audit::log().set_mode(Mode::FailFast);
  EXPECT_NO_THROW(XANADU_AUDIT(false, "soft check"));
  EXPECT_EQ(sim::audit::log().total(), 1u);
  EXPECT_FALSE(sim::audit::log().sites().front().fatal);
}

TEST(determinism, PassingChecksRecordNothing) {
  AuditGuard guard;
  XANADU_INVARIANT(true, "never recorded");
  XANADU_AUDIT(true, "never recorded");
  EXPECT_EQ(sim::audit::log().total(), 0u);
  EXPECT_EQ(sim::audit::log().site_count(), 0u);
}

TEST(determinism, HealthyEndToEndRunTripsNoInvariants) {
  AuditGuard guard;
  // Full JIT run across a conditional workflow: every engine-step invariant
  // (clock monotonicity, lifecycle legality, counter non-underflow) is
  // evaluated live and none may fire.
  (void)run_digest(42, PlatformKind::XanaduJit);
  EXPECT_EQ(sim::audit::log().total(), 0u) << sim::audit::log().summary();
}

TEST(determinism, WorkerLifecycleViolationIsRecordedInRecordMode) {
  AuditGuard guard;
  cluster::ResourceLedger ledger;
  cluster::SandboxProfile profile;
  cluster::Worker worker{common::WorkerId{1}, common::FunctionId{1},
                         common::HostId{0},  workflow::SandboxKind::Container,
                         256.0,              profile,
                         ledger,             sim::TimePoint{}};
  worker.mark_ready(sim::TimePoint{} + sim::Duration::from_seconds(1));

  // FailFast (default): an illegal transition throws at the site.
  EXPECT_THROW(worker.end_execution(sim::TimePoint{} +
                                    sim::Duration::from_seconds(2)),
               InvariantViolation);

  // Record mode: the same illegal transition is counted instead of thrown
  // and execution continues -- the census is the product.
  sim::audit::log().set_mode(Mode::Record);
  sim::audit::log().clear();
  EXPECT_NO_THROW(worker.end_execution(sim::TimePoint{} +
                                       sim::Duration::from_seconds(3)));
  EXPECT_EQ(sim::audit::log().total(), 1u);
  EXPECT_NE(sim::audit::log().summary().find("end_execution"),
            std::string::npos);
}

}  // namespace
}  // namespace xanadu
