// Cross-module integration tests: full platform comparisons reproducing the
// paper's headline claims in miniature (the bench binaries run the full
// versions).

#include <gtest/gtest.h>

#include "common/stats.hpp"
#include "core/dispatch_manager.hpp"
#include "workflow/builders.hpp"
#include "workflow/state_language.hpp"
#include "workload/case_studies.hpp"
#include "workload/runner.hpp"

namespace xanadu {
namespace {

using core::DispatchManager;
using core::DispatchManagerOptions;
using core::PlatformKind;
using sim::Duration;
using workload::run_cold_trials;

DispatchManager make(PlatformKind kind, std::uint64_t seed = 42) {
  DispatchManagerOptions options;
  options.kind = kind;
  options.seed = seed;
  return DispatchManager{options};
}

workflow::BuildOptions five_second_chain() {
  workflow::BuildOptions opts;
  opts.exec_time = Duration::from_seconds(5);
  return opts;
}

/// Mean cold overhead (ms) of `kind` on a linear chain of `length`.
double cold_overhead_ms(PlatformKind kind, std::size_t length,
                        std::size_t trials = 3) {
  auto manager = make(kind);
  const auto wf = manager.deploy(workflow::linear_chain(length, five_second_chain()));
  if (kind == PlatformKind::XanaduJit) {
    // JIT needs one profiling pass, like the paper's deployments.
    (void)run_cold_trials(manager, wf, 2);
  }
  return run_cold_trials(manager, wf, trials).mean_overhead_ms();
}

TEST(Integration, BaselinesGrowLinearlyXanaduSpeculativeStaysFlat) {
  // Figure 12a's shape: OpenWhisk / Knative / Xanadu Cold grow linearly
  // with chain length; Xanadu Speculative stays near-constant.
  const std::vector<double> lengths{1, 4, 8};
  std::vector<double> knative, cold, spec;
  for (const double len : lengths) {
    knative.push_back(
        cold_overhead_ms(PlatformKind::KnativeLike, static_cast<std::size_t>(len)));
    cold.push_back(
        cold_overhead_ms(PlatformKind::XanaduCold, static_cast<std::size_t>(len)));
    spec.push_back(cold_overhead_ms(PlatformKind::XanaduSpeculative,
                                    static_cast<std::size_t>(len)));
  }
  // Linear growth: len-8 overhead ~8x len-1 for the baselines.
  EXPECT_GT(knative[2] / knative[0], 6.0);
  EXPECT_GT(cold[2] / cold[0], 6.0);
  // Near-constant for speculative (paper: 1.11x increase at len 10).
  EXPECT_LT(spec[2] / spec[0], 1.8);
  // Knative is the slowest baseline.
  EXPECT_GT(knative[2], cold[2]);
}

TEST(Integration, SpeculativeBeatsBaselinesByALargeFactor) {
  const double knative = cold_overhead_ms(PlatformKind::KnativeLike, 8);
  const double openwhisk = cold_overhead_ms(PlatformKind::OpenWhiskLike, 8);
  const double spec = cold_overhead_ms(PlatformKind::XanaduSpeculative, 8);
  // The paper reports ~10-18x at length 10; demand at least 5x at length 8.
  EXPECT_GT(knative / spec, 5.0);
  EXPECT_GT(openwhisk / spec, 4.0);
}

TEST(Integration, JitMatchesSpeculativeLatencyAtFarLowerMemoryCost) {
  auto spec = make(PlatformKind::XanaduSpeculative);
  auto jit = make(PlatformKind::XanaduJit);
  const auto wf_spec = spec.deploy(workflow::linear_chain(10, five_second_chain()));
  const auto wf_jit = jit.deploy(workflow::linear_chain(10, five_second_chain()));
  (void)run_cold_trials(jit, wf_jit, 2);    // Profile warm-up.
  (void)run_cold_trials(spec, wf_spec, 2);  // Same treatment for fairness.

  const auto spec_outcome = run_cold_trials(spec, wf_spec, 5);
  const auto jit_outcome = run_cold_trials(jit, wf_jit, 5);

  // Latency within ~25% of each other (the paper gives JIT a ~10% edge).
  EXPECT_LT(jit_outcome.mean_overhead_ms(),
            spec_outcome.mean_overhead_ms() * 1.25);
  // Memory cost: speculative pays a large multiple of JIT's pre-use idle.
  EXPECT_GT(spec_outcome.ledger_delta.pre_use_memory_mb_seconds,
            10.0 * jit_outcome.ledger_delta.pre_use_memory_mb_seconds);
  // CPU cost: close (provisioning work dominates; idle burn is small).
  EXPECT_LT(jit_outcome.ledger_delta.idle_cpu_core_seconds,
            spec_outcome.ledger_delta.idle_cpu_core_seconds);
}

TEST(Integration, CloudPlatformsShowLinearColdGrowthWithHighR2) {
  // Figure 3's shape: both ASF-like and ADF-like grow linearly (R^2 > 0.9).
  for (const PlatformKind kind : {PlatformKind::AsfLike, PlatformKind::AdfLike}) {
    std::vector<double> x, y;
    workflow::BuildOptions opts;
    opts.exec_time = Duration::from_millis(500);
    for (std::size_t len = 1; len <= 5; ++len) {
      auto manager = make(kind);
      const auto wf = manager.deploy(workflow::linear_chain(len, opts));
      const auto outcome = run_cold_trials(manager, wf, 5);
      x.push_back(static_cast<double>(len));
      y.push_back(outcome.mean_overhead_ms());
    }
    const auto fit = common::linear_fit(x, y);
    EXPECT_GT(fit.r_squared, 0.9) << to_string(kind);
    EXPECT_GT(fit.slope, 0.0) << to_string(kind);
  }
}

TEST(Integration, CloudKeepAliveProducesWarmKnee) {
  // Figure 5's shape: requests arriving within the keep-alive window see
  // warm overheads; beyond it, cold overheads.
  auto manager = make(PlatformKind::AsfLike);
  workflow::BuildOptions opts;
  opts.exec_time = Duration::from_millis(500);
  const auto wf = manager.deploy(workflow::linear_chain(5, opts));
  (void)manager.invoke(wf);  // Warm the chain.

  // 5 minutes idle (inside ASF's ~10 min keep-alive): warm.
  manager.idle_for(Duration::from_minutes(5));
  const auto warm = manager.invoke(wf);
  EXPECT_EQ(warm.cold_starts, 0u);

  // 15 minutes idle (outside): cold again.
  manager.idle_for(Duration::from_minutes(15));
  const auto cold = manager.invoke(wf);
  EXPECT_EQ(cold.cold_starts, 5u);
  EXPECT_GT(cold.overhead.millis(), 3.0 * warm.overhead.millis());
}

TEST(Integration, AdfKeepAliveLongerThanAsf) {
  auto asf = make(PlatformKind::AsfLike);
  auto adf = make(PlatformKind::AdfLike);
  workflow::BuildOptions opts;
  opts.exec_time = Duration::from_millis(500);
  for (auto* manager : {&asf, &adf}) {
    const auto wf = manager->deploy(workflow::linear_chain(5, opts));
    (void)manager->invoke(wf);
    manager->idle_for(Duration::from_minutes(15));  // Between the two knees.
    const auto result = manager->invoke(wf);
    if (manager == &asf) {
      EXPECT_EQ(result.cold_starts, 5u);  // ASF reclaimed at ~10 min.
    } else {
      EXPECT_EQ(result.cold_starts, 0u);  // ADF keeps warm to ~20 min.
    }
  }
}

TEST(Integration, IsolationSandboxOrdering) {
  // Figure 7's shape: container chains cost ~2.5-3x process/isolate chains.
  auto overhead_for = [](workflow::SandboxKind kind) {
    auto manager = make(PlatformKind::XanaduCold);
    workflow::BuildOptions opts;
    opts.exec_time = Duration::from_millis(500);
    opts.sandbox = kind;
    const auto wf = manager.deploy(workflow::linear_chain(5, opts));
    return run_cold_trials(manager, wf, 3).mean_overhead_ms();
  };
  const double container = overhead_for(workflow::SandboxKind::Container);
  const double process = overhead_for(workflow::SandboxKind::Process);
  const double isolate = overhead_for(workflow::SandboxKind::Isolate);
  EXPECT_GT(container, process);
  EXPECT_GE(process, isolate);
  EXPECT_GT(container / process, 1.8);
  EXPECT_LT(container / isolate, 5.0);
}

TEST(Integration, ExplicitStateLanguageWorkflowRunsEndToEnd) {
  const std::string doc = R"({
    "f1": {"type": "function", "exec_ms": 400, "conditional": "c1"},
    "c1": {"type": "conditional", "wait_for": ["f1"],
           "success_probability": 0.8, "success": "b1", "fail": "b2"},
    "b1": {"type": "branch",
           "g1": {"type": "function", "exec_ms": 300},
           "g2": {"type": "function", "exec_ms": 200, "wait_for": ["g1"]}},
    "b2": {"type": "branch", "h1": {"type": "function", "exec_ms": 100}}
  })";
  auto parsed = workflow::parse_state_language(doc);
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  auto manager = make(PlatformKind::XanaduJit);
  const auto wf = manager.deploy(std::move(parsed).value());
  const auto result = manager.invoke(wf);
  EXPECT_GE(result.executed_nodes, 2u);
  EXPECT_EQ(result.executed_nodes + result.skipped_nodes, 4u);
}

TEST(Integration, CaseStudyXanaduBeatsBaselines) {
  // Figure 17's shape for the image pipeline: Xanadu JIT's overhead is a
  // small fraction of Knative's and below OpenWhisk's.
  auto run_pipeline = [](PlatformKind kind) {
    auto manager = make(kind);
    workload::CaseStudyOptions opts;
    opts.jitter_fraction = 0.0;
    const auto wf = manager.deploy(workload::image_pipeline(opts));
    if (kind == PlatformKind::XanaduJit) (void)run_cold_trials(manager, wf, 2);
    return run_cold_trials(manager, wf, 3).mean_overhead_ms();
  };
  const double knative = run_pipeline(PlatformKind::KnativeLike);
  const double openwhisk = run_pipeline(PlatformKind::OpenWhiskLike);
  const double jit = run_pipeline(PlatformKind::XanaduJit);
  EXPECT_GT(knative / jit, 3.0);
  EXPECT_GT(openwhisk / jit, 1.5);
}

TEST(Integration, DeterministicAcrossRuns) {
  auto run_once = [] {
    auto manager = make(PlatformKind::XanaduJit, 777);
    const auto wf =
        manager.deploy(workflow::linear_chain(5, five_second_chain()));
    const auto outcome = run_cold_trials(manager, wf, 3);
    return outcome.mean_overhead_ms();
  };
  EXPECT_DOUBLE_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace xanadu
