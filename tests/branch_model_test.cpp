// Tests for the branch-detection model (Algorithm 3).

#include <gtest/gtest.h>

#include "core/branch_model.hpp"
#include "workflow/builders.hpp"

namespace xanadu::core {
namespace {

using common::RequestId;

TEST(BranchModel, FromSchemaCopiesStructureNotProbabilities) {
  workflow::XorCastOptions opts;
  opts.levels = 1;
  opts.fan = 2;
  opts.main_probability = 0.9;
  const auto dag = workflow::xor_cast_dag(opts);
  const BranchModel model = BranchModel::from_schema(dag);
  ASSERT_EQ(model.roots().size(), 1u);
  const ModelNode* root = model.find(model.roots().front());
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->select, SelectMode::MaxLikelihood);
  ASSERT_EQ(root->children.size(), 2u);
  // Uniform prior, NOT the true 0.9/0.1 split (which the control plane
  // cannot observe a priori).
  EXPECT_DOUBLE_EQ(root->children[0].probability, 0.5);
  EXPECT_DOUBLE_EQ(root->children[1].probability, 0.5);
}

TEST(BranchModel, FromSchemaMarksLinearNodesAsAll) {
  const auto dag = workflow::linear_chain(3);
  const BranchModel model = BranchModel::from_schema(dag);
  EXPECT_EQ(model.find(NodeId{0})->select, SelectMode::All);
  EXPECT_EQ(model.find(NodeId{0})->children.size(), 1u);
}

TEST(BranchModel, Algorithm3UpdateSingleChild) {
  BranchModel model;
  model.observe_root(NodeId{0}, RequestId{1});
  model.observe_invocation(NodeId{0}, NodeId{1}, RequestId{1});
  model.finalize_pending();
  const ModelNode* parent = model.find(NodeId{0});
  ASSERT_NE(parent, nullptr);
  ASSERT_EQ(parent->children.size(), 1u);
  // First observation: (0 * 0 + 1) / 1 = 1.
  EXPECT_DOUBLE_EQ(parent->children[0].probability, 1.0);
  EXPECT_EQ(parent->children[0].count, 1u);
}

TEST(BranchModel, Algorithm3SiblingDecay) {
  BranchModel model;
  // Request 1 takes child A; request 2 takes child B; requests 3-4 take A.
  const NodeId p{0}, a{1}, b{2};
  model.observe_invocation(p, a, RequestId{1});
  model.observe_invocation(p, b, RequestId{2});
  model.observe_invocation(p, a, RequestId{3});
  model.observe_invocation(p, a, RequestId{4});
  model.finalize_pending();
  const ModelNode* parent = model.find(p);
  const LearnedEdge* ea = parent->find_child(a);
  const LearnedEdge* eb = parent->find_child(b);
  ASSERT_NE(ea, nullptr);
  ASSERT_NE(eb, nullptr);
  // A taken 3 of 4 times, B once: rho converges to the empirical ratios.
  // B was discovered at request 2 but its count is back-dated to cover the
  // parent's full history (probability 0 over request 1).
  EXPECT_NEAR(ea->probability, 0.75, 1e-9);
  EXPECT_NEAR(eb->probability, 0.25, 1e-9);
  EXPECT_EQ(ea->count, 4u);
  EXPECT_EQ(eb->count, 4u);
}

TEST(BranchModel, ConvergesToEmpiricalFrequencies) {
  BranchModel model;
  const NodeId p{0}, a{1}, b{2};
  // Alternate deterministically 7:3.
  std::uint64_t request = 0;
  for (int round = 0; round < 30; ++round) {
    for (int i = 0; i < 7; ++i) {
      model.observe_invocation(p, a, RequestId{request++});
    }
    for (int i = 0; i < 3; ++i) {
      model.observe_invocation(p, b, RequestId{request++});
    }
  }
  model.finalize_pending();
  const ModelNode* parent = model.find(p);
  EXPECT_NEAR(parent->find_child(a)->probability, 0.7, 0.03);
  EXPECT_NEAR(parent->find_child(b)->probability, 0.3, 0.03);
}

TEST(BranchModel, MulticastChildrenBothStayNearOne) {
  // A multicast parent invokes BOTH children in every request; the batched
  // Algorithm-3 update must keep both probabilities at 1, not oscillate.
  BranchModel model;
  const NodeId p{0}, a{1}, b{2};
  for (std::uint64_t r = 1; r <= 10; ++r) {
    model.observe_invocation(p, a, RequestId{r});
    model.observe_invocation(p, b, RequestId{r});
  }
  model.finalize_pending();
  const ModelNode* parent = model.find(p);
  EXPECT_DOUBLE_EQ(parent->find_child(a)->probability, 1.0);
  EXPECT_DOUBLE_EQ(parent->find_child(b)->probability, 1.0);
}

TEST(BranchModel, StructureDiscoveryGrowsWithObservations) {
  BranchModel model;
  EXPECT_EQ(model.node_count(), 0u);
  model.observe_root(NodeId{0}, RequestId{1});
  EXPECT_EQ(model.node_count(), 1u);
  EXPECT_EQ(model.roots().size(), 1u);
  model.observe_invocation(NodeId{0}, NodeId{1}, RequestId{1});
  model.observe_invocation(NodeId{1}, NodeId{2}, RequestId{1});
  model.finalize_pending();
  EXPECT_EQ(model.node_count(), 3u);
  EXPECT_TRUE(model.known(NodeId{2}));
  EXPECT_FALSE(model.known(NodeId{9}));
  EXPECT_EQ(model.known_nodes().size(), 3u);
}

TEST(BranchModel, RootObservedOnceKeepsSingleRootEntry) {
  BranchModel model;
  model.observe_root(NodeId{0}, RequestId{1});
  model.observe_root(NodeId{0}, RequestId{2});
  EXPECT_EQ(model.roots().size(), 1u);
  ASSERT_NE(model.find(NodeId{0}), nullptr);
  // request_count counts applied child-invocation batches, not root sights.
  EXPECT_EQ(model.find(NodeId{0})->request_count, 0u);
}

TEST(BranchModel, PendingBatchAppliedLazilyOnNextRequest) {
  BranchModel model;
  const NodeId p{0}, a{1};
  model.observe_invocation(p, a, RequestId{1});
  // Not finalized yet: probabilities still at their initial value.
  EXPECT_EQ(model.find(p)->children.size(), 0u);
  // Next request's observation triggers the batch application.
  model.observe_invocation(p, a, RequestId{2});
  EXPECT_EQ(model.find(p)->children.size(), 1u);
  EXPECT_DOUBLE_EQ(model.find(p)->find_child(a)->probability, 1.0);
}

}  // namespace
}  // namespace xanadu::core
