// Unit tests for the workflow DAG model and shape builders.

#include <gtest/gtest.h>

#include <algorithm>

#include "workflow/builders.hpp"
#include "workflow/dag.hpp"

namespace xanadu::workflow {
namespace {

FunctionSpec spec(const std::string& name) {
  FunctionSpec s;
  s.name = name;
  return s;
}

// ----------------------------------------------------------------- dag ----

TEST(Dag, AddNodeAssignsSequentialIds) {
  WorkflowDag dag;
  EXPECT_EQ(dag.add_node(spec("a")).value(), 0u);
  EXPECT_EQ(dag.add_node(spec("b")).value(), 1u);
  EXPECT_EQ(dag.node_count(), 2u);
}

TEST(Dag, NodeValidatesFunctionSpec) {
  WorkflowDag dag;
  FunctionSpec bad;
  bad.name = "";  // Empty name is rejected.
  EXPECT_THROW(dag.add_node(bad), std::invalid_argument);
  FunctionSpec negative = spec("x");
  negative.memory_mb = -1;
  EXPECT_THROW(dag.add_node(negative), std::invalid_argument);
}

TEST(Dag, EdgesWireParentsAndChildren) {
  WorkflowDag dag;
  const NodeId a = dag.add_node(spec("a"));
  const NodeId b = dag.add_node(spec("b"));
  dag.add_edge(a, b);
  EXPECT_EQ(dag.node(a).children.size(), 1u);
  EXPECT_EQ(dag.node(a).children[0].child, b);
  ASSERT_EQ(dag.node(b).parents.size(), 1u);
  EXPECT_EQ(dag.node(b).parents[0], a);
}

TEST(Dag, RejectsBadEdges) {
  WorkflowDag dag;
  const NodeId a = dag.add_node(spec("a"));
  const NodeId b = dag.add_node(spec("b"));
  EXPECT_THROW(dag.add_edge(a, a), std::invalid_argument);            // self
  EXPECT_THROW(dag.add_edge(a, NodeId{99}), std::invalid_argument);   // range
  EXPECT_THROW(dag.add_edge(a, b, 0.0), std::invalid_argument);       // prob
  EXPECT_THROW(dag.add_edge(a, b, -0.5), std::invalid_argument);      // prob
  dag.add_edge(a, b);
  EXPECT_THROW(dag.add_edge(a, b), std::invalid_argument);            // dup
}

TEST(Dag, RootsAndSinks) {
  WorkflowDag dag;
  const NodeId a = dag.add_node(spec("a"));
  const NodeId b = dag.add_node(spec("b"));
  const NodeId c = dag.add_node(spec("c"));
  dag.add_edge(a, c);
  dag.add_edge(b, c);
  EXPECT_EQ(dag.roots(), (std::vector<NodeId>{a, b}));
  EXPECT_EQ(dag.sinks(), std::vector<NodeId>{c});
}

TEST(Dag, TopologicalOrderRespectsEdges) {
  WorkflowDag dag;
  const NodeId a = dag.add_node(spec("a"));
  const NodeId b = dag.add_node(spec("b"));
  const NodeId c = dag.add_node(spec("c"));
  const NodeId d = dag.add_node(spec("d"));
  dag.add_edge(a, b);
  dag.add_edge(a, c);
  dag.add_edge(b, d);
  dag.add_edge(c, d);
  const auto order = dag.topological_order();
  auto pos = [&](NodeId id) {
    return std::find(order.begin(), order.end(), id) - order.begin();
  };
  EXPECT_LT(pos(a), pos(b));
  EXPECT_LT(pos(a), pos(c));
  EXPECT_LT(pos(b), pos(d));
  EXPECT_LT(pos(c), pos(d));
}

TEST(Dag, CycleDetection) {
  WorkflowDag dag;
  const NodeId a = dag.add_node(spec("a"));
  const NodeId b = dag.add_node(spec("b"));
  const NodeId c = dag.add_node(spec("c"));
  dag.add_edge(a, b);
  dag.add_edge(b, c);
  dag.add_edge(c, a);
  EXPECT_THROW(dag.topological_order(), std::invalid_argument);
  EXPECT_THROW(dag.validate(), std::invalid_argument);
}

TEST(Dag, DepthOfShapes) {
  EXPECT_EQ(linear_chain(1).depth(), 1u);
  EXPECT_EQ(linear_chain(7).depth(), 7u);
  EXPECT_EQ(fan_out(4).depth(), 2u);
  EXPECT_EQ(fan_in(4).depth(), 2u);
  EXPECT_EQ(diamond(3).depth(), 3u);
}

TEST(Dag, ConditionalPointsCountsXorNodes) {
  EXPECT_EQ(linear_chain(5).conditional_points(), 0u);
  XorCastOptions opts;
  opts.levels = 3;
  EXPECT_EQ(xor_cast_dag(opts).conditional_points(), 3u);
}

TEST(Dag, ValidateRejectsEmptyAndDuplicateNames) {
  WorkflowDag empty;
  EXPECT_THROW(empty.validate(), std::invalid_argument);
  WorkflowDag dup;
  dup.add_node(spec("same"));
  dup.add_node(spec("same"));
  EXPECT_THROW(dup.validate(), std::invalid_argument);
}

TEST(Dag, FindByName) {
  const WorkflowDag dag = linear_chain(3);
  EXPECT_TRUE(dag.find_by_name("f2").valid());
  EXPECT_FALSE(dag.find_by_name("nope").valid());
}

TEST(Dag, SandboxKindRoundTrip) {
  for (const SandboxKind kind :
       {SandboxKind::Container, SandboxKind::Process, SandboxKind::Isolate}) {
    EXPECT_EQ(sandbox_kind_from_string(to_string(kind)), kind);
  }
  EXPECT_THROW((void)sandbox_kind_from_string("vm"), std::invalid_argument);
}

// ------------------------------------------------------------ builders ----

TEST(Builders, LinearChainStructure) {
  const WorkflowDag dag = linear_chain(4);
  EXPECT_EQ(dag.node_count(), 4u);
  EXPECT_EQ(dag.roots().size(), 1u);
  EXPECT_EQ(dag.sinks().size(), 1u);
  for (std::size_t i = 0; i + 1 < 4; ++i) {
    EXPECT_EQ(dag.node(NodeId{i}).children.size(), 1u);
  }
  EXPECT_THROW(linear_chain(0), std::invalid_argument);
}

TEST(Builders, BuildOptionsPropagate) {
  BuildOptions opts;
  opts.exec_time = sim::Duration::from_seconds(5);
  opts.memory_mb = 256;
  opts.sandbox = SandboxKind::Isolate;
  const WorkflowDag dag = linear_chain(2, opts);
  EXPECT_EQ(dag.node(NodeId{0}).fn.exec_time, sim::Duration::from_seconds(5));
  EXPECT_DOUBLE_EQ(dag.node(NodeId{1}).fn.memory_mb, 256);
  EXPECT_EQ(dag.node(NodeId{1}).fn.sandbox, SandboxKind::Isolate);
}

TEST(Builders, FanOutIsMulticast) {
  const WorkflowDag dag = fan_out(4);
  EXPECT_EQ(dag.node_count(), 5u);
  EXPECT_EQ(dag.node(NodeId{0}).dispatch, DispatchMode::All);
  EXPECT_EQ(dag.node(NodeId{0}).children.size(), 4u);
}

TEST(Builders, FanInIsBarrier) {
  const WorkflowDag dag = fan_in(3);
  EXPECT_EQ(dag.node_count(), 4u);
  EXPECT_EQ(dag.node(NodeId{3}).parents.size(), 3u);
}

TEST(Builders, XorCastDagShape) {
  XorCastOptions opts;  // 4 levels, fan 3, favoured index 1, p = 0.7
  const WorkflowDag dag = xor_cast_dag(opts);
  // 1 root + 4 levels * 3 children.
  EXPECT_EQ(dag.node_count(), 13u);
  const Node& root = dag.node(NodeId{0});
  EXPECT_EQ(root.dispatch, DispatchMode::Xor);
  ASSERT_EQ(root.children.size(), 3u);
  double total = 0.0;
  for (const Edge& e : root.children) total += e.probability;
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_NEAR(root.children[1].probability, 0.7, 1e-9);
  EXPECT_NEAR(root.children[0].probability, 0.15, 1e-9);
}

TEST(Builders, XorCastValidation) {
  XorCastOptions bad;
  bad.levels = 0;
  EXPECT_THROW(xor_cast_dag(bad), std::invalid_argument);
  bad = {};
  bad.fan = 1;
  EXPECT_THROW(xor_cast_dag(bad), std::invalid_argument);
  bad = {};
  bad.main_probability = 1.0;
  EXPECT_THROW(xor_cast_dag(bad), std::invalid_argument);
  bad = {};
  bad.favoured_index = 5;
  EXPECT_THROW(xor_cast_dag(bad), std::invalid_argument);
}

TEST(Builders, TrueMlpFollowsFavouredBranch) {
  XorCastOptions opts;
  const WorkflowDag dag = xor_cast_dag(opts);
  const auto mlp = true_most_likely_path(dag);
  // Root + one favoured node per level.
  EXPECT_EQ(mlp.size(), 1u + opts.levels);
  // Each favoured node has name letter + "2" (index 1).
  for (const NodeId id : mlp) {
    const std::string& name = dag.node(id).fn.name;
    EXPECT_TRUE(name == "A" || name.substr(1) == "2") << name;
  }
}

TEST(Builders, TrueMlpOfLinearChainIsWholeChain) {
  const WorkflowDag dag = linear_chain(5);
  EXPECT_EQ(true_most_likely_path(dag).size(), 5u);
}

TEST(Builders, TrueMlpOfFanOutIncludesAllChildren) {
  const WorkflowDag dag = fan_out(4);
  EXPECT_EQ(true_most_likely_path(dag).size(), 5u);
}

}  // namespace
}  // namespace xanadu::workflow
