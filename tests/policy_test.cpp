// Tests for XanaduPolicy: speculative and JIT provisioning, profile
// learning, prediction-miss handling, aggressiveness, implicit detection.

#include <gtest/gtest.h>

#include "core/dispatch_manager.hpp"
#include "workflow/builders.hpp"
#include "workload/runner.hpp"

namespace xanadu::core {
namespace {

using platform::RequestResult;
using workflow::BuildOptions;

BuildOptions chain_options(double exec_ms = 5000.0) {
  BuildOptions opts;
  opts.exec_time = sim::Duration::from_millis(exec_ms);
  opts.edge_delay = sim::Duration::from_millis(5);
  return opts;
}

DispatchManager make_manager(PlatformKind kind, std::uint64_t seed = 42,
                             XanaduOptions xo = {}) {
  DispatchManagerOptions options;
  options.kind = kind;
  options.seed = seed;
  options.xanadu = xo;
  return DispatchManager{options};
}

TEST(XanaduPolicy, RejectsBadOptions) {
  XanaduOptions bad;
  bad.aggressiveness = 0.0;
  EXPECT_THROW(XanaduPolicy{bad}, std::invalid_argument);
  bad = {};
  bad.aggressiveness = 1.5;
  EXPECT_THROW(XanaduPolicy{bad}, std::invalid_argument);
  bad = {};
  bad.ema_alpha = 0.0;
  EXPECT_THROW(XanaduPolicy{bad}, std::invalid_argument);
}

TEST(XanaduPolicy, ColdModeMatchesNullBehaviour) {
  auto cold = make_manager(PlatformKind::XanaduCold);
  const auto wf = cold.deploy(workflow::linear_chain(4, chain_options()));
  const RequestResult r = cold.invoke(wf);
  EXPECT_EQ(r.cold_starts, 4u);
  EXPECT_EQ(r.speculation.predicted_nodes, 0u);
  // Linear cascading cold start: each hop pays its own provisioning.
  EXPECT_GT(r.overhead.seconds(), 4 * 3.0);
}

TEST(XanaduPolicy, SpeculativeEliminatesChainedColdStarts) {
  auto spec = make_manager(PlatformKind::XanaduSpeculative);
  const auto wf = spec.deploy(workflow::linear_chain(6, chain_options()));
  const RequestResult r = spec.invoke(wf);
  // Only the first hop is cold; everything downstream finds a warm worker.
  EXPECT_EQ(r.speculation.predicted_nodes, 6u);
  EXPECT_LE(r.cold_starts, 1u);
  EXPECT_LT(r.overhead.seconds(), 6.5);
  EXPECT_EQ(r.workers_provisioned, 6u);
  for (std::size_t i = 1; i < 6; ++i) {
    EXPECT_FALSE(r.node_records[i].cold) << "node " << i;
  }
}

TEST(XanaduPolicy, JitEliminatesChainedColdStartsAfterProfiling) {
  auto jit = make_manager(PlatformKind::XanaduJit);
  const auto wf = jit.deploy(workflow::linear_chain(6, chain_options()));
  // First request trains the profiles (fallbacks deploy early enough to
  // mostly work, but measure the steady state):
  (void)jit.invoke(wf);
  jit.force_cold_start();
  const RequestResult r = jit.invoke(wf);
  EXPECT_LE(r.cold_starts, 1u);
  EXPECT_LT(r.overhead.seconds(), 6.0);
}

TEST(XanaduPolicy, JitDeploysLaterThanSpeculative) {
  // JIT's pre-use idle (C_R) must be far below Speculative's on deep chains.
  auto spec = make_manager(PlatformKind::XanaduSpeculative);
  auto jit = make_manager(PlatformKind::XanaduJit);
  for (auto* manager : {&spec, &jit}) {
    const auto wf = manager->deploy(workflow::linear_chain(8, chain_options()));
    (void)manager->invoke(wf);  // Train.
    manager->force_cold_start();
  }
  const auto wf_spec = common::WorkflowId{0};
  const auto before_spec = spec.ledger();
  (void)spec.invoke(wf_spec);
  spec.force_cold_start();
  const auto delta_spec = spec.ledger() - before_spec;

  const auto before_jit = jit.ledger();
  (void)jit.invoke(wf_spec);
  jit.force_cold_start();
  const auto delta_jit = jit.ledger() - before_jit;

  EXPECT_GT(delta_spec.pre_use_memory_mb_seconds,
            5.0 * delta_jit.pre_use_memory_mb_seconds);
}

TEST(XanaduPolicy, AggressivenessLimitsLookahead) {
  XanaduOptions xo;
  xo.aggressiveness = 0.5;
  auto manager = make_manager(PlatformKind::XanaduSpeculative, 42, xo);
  const auto wf = manager.deploy(workflow::linear_chain(8, chain_options()));
  const RequestResult r = manager.invoke(wf);
  // Only ceil(0.5 * 8) = 4 nodes pre-provisioned.
  EXPECT_EQ(r.speculation.predicted_nodes, 4u);
  // The un-speculated tail pays cold starts.
  EXPECT_GE(r.cold_starts, 4u);
}

TEST(XanaduPolicy, PredictionMissCancelsPlannedDeployments) {
  // A two-branch conditional whose unlikely branch is deep: force the miss
  // by biasing the model with training, then checking a run that deviates.
  workflow::WorkflowDag dag{"miss"};
  BuildOptions opts = chain_options(2000);
  workflow::FunctionSpec root_spec;
  root_spec.name = "root";
  root_spec.exec_time = opts.exec_time;
  const auto root = dag.add_node(root_spec, workflow::DispatchMode::Xor);
  // Likely branch: a chain of 3; unlikely branch: single node.
  workflow::FunctionSpec s;
  s.exec_time = opts.exec_time;
  s.name = "likely1";
  const auto l1 = dag.add_node(s);
  s.name = "likely2";
  const auto l2 = dag.add_node(s);
  s.name = "likely3";
  const auto l3 = dag.add_node(s);
  s.name = "unlikely";
  const auto u1 = dag.add_node(s);
  dag.add_edge(root, l1, 0.9);
  dag.add_edge(root, u1, 0.1);
  dag.add_edge(l1, l2);
  dag.add_edge(l2, l3);
  dag.validate();

  XanaduOptions xo;
  auto manager = make_manager(PlatformKind::XanaduJit, 7, xo);
  const auto wf = manager.deploy(std::move(dag));
  // Train until the model knows the likely branch.
  std::size_t miss_seen = 0;
  for (int i = 0; i < 40; ++i) {
    manager.force_cold_start();
    const RequestResult r = manager.invoke(wf);
    if (r.speculation.missed_nodes > 0) {
      ++miss_seen;
      // A missed prediction must have cancelled the pending tail
      // deployments (l2/l3 were scheduled for the future) OR discarded
      // provisioned-but-unused sandboxes.
      EXPECT_GT(r.speculation.cancelled_deployments +
                    r.speculation.wasted_workers,
                0u);
      EXPECT_EQ(r.speculation.unpredicted_executions, 1u);  // "unlikely"
    }
  }
  // With p(miss) ~ 0.1 over 40 trials, expect at least one miss.
  EXPECT_GE(miss_seen, 1u);
}

TEST(XanaduPolicy, ImplicitChainsLearnedWithoutSchema) {
  XanaduOptions xo;
  xo.knowledge = ChainKnowledge::Implicit;
  auto manager = make_manager(PlatformKind::XanaduJit, 42, xo);
  const auto wf = manager.deploy(workflow::linear_chain(5, chain_options()));

  // First request: nothing known, full cascading cold start.
  const RequestResult first = manager.invoke(wf);
  EXPECT_EQ(first.speculation.predicted_nodes, 0u);
  EXPECT_EQ(first.cold_starts, 5u);

  // The model discovered the chain from parent-id headers.
  const BranchModel* model = manager.xanadu_policy()->model(wf);
  ASSERT_NE(model, nullptr);
  EXPECT_EQ(model->node_count(), 5u);

  // Second request speculates on the learned path.
  manager.force_cold_start();
  const RequestResult second = manager.invoke(wf);
  EXPECT_EQ(second.speculation.predicted_nodes, 5u);
  EXPECT_LE(second.cold_starts, 1u);
}

TEST(XanaduPolicy, ProfilesConvergeToObservedTimings) {
  auto manager = make_manager(PlatformKind::XanaduJit);
  const auto wf = manager.deploy(workflow::linear_chain(2, chain_options(1500)));
  for (int i = 0; i < 6; ++i) {
    manager.force_cold_start();
    (void)manager.invoke(wf);
  }
  const ProfileTable* profiles = manager.xanadu_policy()->profiles(wf);
  ASSERT_NE(profiles, nullptr);
  const FunctionProfile* p = profiles->find_function(common::NodeId{0});
  ASSERT_NE(p, nullptr);
  ProfileFallbacks fb;
  // Cold response ~ dispatch (25 ms) + provisioning (3000 ms base + 1150 ms
  // platform pipeline) + exec (1.5 s) ~ 5.7 s.
  EXPECT_NEAR(p->cold_response(fb).seconds(), 5.7, 1.0);
  // Startup ~ the full provisioning latency seen by the dispatch daemon.
  EXPECT_NEAR(p->startup(fb).seconds(), 4.2, 0.8);
}

TEST(XanaduPolicy, ReplanResumesSpeculationAfterMiss) {
  // Build an XOR whose two branches are both deep chains; under Replan the
  // non-predicted branch still gets speculative help after the miss.
  workflow::WorkflowDag dag{"replan"};
  workflow::FunctionSpec s;
  s.exec_time = sim::Duration::from_millis(4000);
  s.name = "root";
  const auto root = dag.add_node(s, workflow::DispatchMode::Xor);
  std::vector<common::NodeId> a_chain, b_chain;
  for (int i = 0; i < 3; ++i) {
    s.name = "a" + std::to_string(i);
    a_chain.push_back(dag.add_node(s));
    s.name = "b" + std::to_string(i);
    b_chain.push_back(dag.add_node(s));
  }
  dag.add_edge(root, a_chain[0], 0.99);
  dag.add_edge(root, b_chain[0], 0.01);
  for (int i = 0; i + 1 < 3; ++i) {
    dag.add_edge(a_chain[i], a_chain[i + 1]);
    dag.add_edge(b_chain[i], b_chain[i + 1]);
  }
  dag.validate();

  auto run_until_miss = [&](MissPolicy miss_policy, std::uint64_t seed) {
    XanaduOptions xo;
    xo.miss_policy = miss_policy;
    auto manager = make_manager(PlatformKind::XanaduJit, seed, xo);
    const auto wf = manager.deploy(dag);
    for (int i = 0; i < 300; ++i) {
      manager.force_cold_start();
      const RequestResult r = manager.invoke(wf);
      if (r.speculation.missed_nodes > 0) return r;
    }
    return RequestResult{};
  };

  const RequestResult stop = run_until_miss(MissPolicy::Stop, 3);
  const RequestResult replan = run_until_miss(MissPolicy::Replan, 3);
  ASSERT_GT(stop.speculation.missed_nodes, 0u);
  ASSERT_GT(replan.speculation.missed_nodes, 0u);
  // Replanning provisions the b-branch after the miss: fewer cold starts
  // than Stop, which rides the miss cold.
  EXPECT_LT(replan.cold_starts, stop.cold_starts);
}

TEST(XanaduPolicy, CurrentMlpExposesConvergedPath) {
  auto manager = make_manager(PlatformKind::XanaduJit);
  const auto wf = manager.deploy(workflow::linear_chain(3, chain_options(500)));
  (void)manager.invoke(wf);
  const MlpResult mlp = manager.xanadu_policy()->current_mlp(wf);
  EXPECT_EQ(mlp.path.size(), 3u);
}

}  // namespace
}  // namespace xanadu::core
