// Tests for XanaduPolicy: speculative and JIT provisioning, profile
// learning, prediction-miss handling, aggressiveness, implicit detection.
// Plus the policy lab: the PolicyView observation surface, the PoolPolicy /
// MpcHorizonPolicy competitors, and hook-ordering determinism.

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/dispatch_manager.hpp"
#include "platform/baseline_policies.hpp"
#include "platform/engine.hpp"
#include "workflow/builders.hpp"
#include "workload/arrivals.hpp"
#include "workload/runner.hpp"

namespace xanadu::core {
namespace {

using platform::RequestResult;
using workflow::BuildOptions;

BuildOptions chain_options(double exec_ms = 5000.0) {
  BuildOptions opts;
  opts.exec_time = sim::Duration::from_millis(exec_ms);
  opts.edge_delay = sim::Duration::from_millis(5);
  return opts;
}

DispatchManager make_manager(PlatformKind kind, std::uint64_t seed = 42,
                             XanaduOptions xo = {}) {
  DispatchManagerOptions options;
  options.kind = kind;
  options.seed = seed;
  options.xanadu = xo;
  return DispatchManager{options};
}

TEST(XanaduPolicy, RejectsBadOptions) {
  XanaduOptions bad;
  bad.aggressiveness = 0.0;
  EXPECT_THROW(XanaduPolicy{bad}, std::invalid_argument);
  bad = {};
  bad.aggressiveness = 1.5;
  EXPECT_THROW(XanaduPolicy{bad}, std::invalid_argument);
  bad = {};
  bad.ema_alpha = 0.0;
  EXPECT_THROW(XanaduPolicy{bad}, std::invalid_argument);
}

TEST(XanaduPolicy, ColdModeMatchesNullBehaviour) {
  auto cold = make_manager(PlatformKind::XanaduCold);
  const auto wf = cold.deploy(workflow::linear_chain(4, chain_options()));
  const RequestResult r = cold.invoke(wf);
  EXPECT_EQ(r.cold_starts, 4u);
  EXPECT_EQ(r.speculation.predicted_nodes, 0u);
  // Linear cascading cold start: each hop pays its own provisioning.
  EXPECT_GT(r.overhead.seconds(), 4 * 3.0);
}

TEST(XanaduPolicy, SpeculativeEliminatesChainedColdStarts) {
  auto spec = make_manager(PlatformKind::XanaduSpeculative);
  const auto wf = spec.deploy(workflow::linear_chain(6, chain_options()));
  const RequestResult r = spec.invoke(wf);
  // Only the first hop is cold; everything downstream finds a warm worker.
  EXPECT_EQ(r.speculation.predicted_nodes, 6u);
  EXPECT_LE(r.cold_starts, 1u);
  EXPECT_LT(r.overhead.seconds(), 6.5);
  EXPECT_EQ(r.workers_provisioned, 6u);
  for (std::size_t i = 1; i < 6; ++i) {
    EXPECT_FALSE(r.node_records[i].cold) << "node " << i;
  }
}

TEST(XanaduPolicy, JitEliminatesChainedColdStartsAfterProfiling) {
  auto jit = make_manager(PlatformKind::XanaduJit);
  const auto wf = jit.deploy(workflow::linear_chain(6, chain_options()));
  // First request trains the profiles (fallbacks deploy early enough to
  // mostly work, but measure the steady state):
  (void)jit.invoke(wf);
  jit.force_cold_start();
  const RequestResult r = jit.invoke(wf);
  EXPECT_LE(r.cold_starts, 1u);
  EXPECT_LT(r.overhead.seconds(), 6.0);
}

TEST(XanaduPolicy, JitDeploysLaterThanSpeculative) {
  // JIT's pre-use idle (C_R) must be far below Speculative's on deep chains.
  auto spec = make_manager(PlatformKind::XanaduSpeculative);
  auto jit = make_manager(PlatformKind::XanaduJit);
  for (auto* manager : {&spec, &jit}) {
    const auto wf = manager->deploy(workflow::linear_chain(8, chain_options()));
    (void)manager->invoke(wf);  // Train.
    manager->force_cold_start();
  }
  const auto wf_spec = common::WorkflowId{0};
  const auto before_spec = spec.ledger();
  (void)spec.invoke(wf_spec);
  spec.force_cold_start();
  const auto delta_spec = spec.ledger() - before_spec;

  const auto before_jit = jit.ledger();
  (void)jit.invoke(wf_spec);
  jit.force_cold_start();
  const auto delta_jit = jit.ledger() - before_jit;

  EXPECT_GT(delta_spec.pre_use_memory_mb_seconds,
            5.0 * delta_jit.pre_use_memory_mb_seconds);
}

TEST(XanaduPolicy, AggressivenessLimitsLookahead) {
  XanaduOptions xo;
  xo.aggressiveness = 0.5;
  auto manager = make_manager(PlatformKind::XanaduSpeculative, 42, xo);
  const auto wf = manager.deploy(workflow::linear_chain(8, chain_options()));
  const RequestResult r = manager.invoke(wf);
  // Only ceil(0.5 * 8) = 4 nodes pre-provisioned.
  EXPECT_EQ(r.speculation.predicted_nodes, 4u);
  // The un-speculated tail pays cold starts.
  EXPECT_GE(r.cold_starts, 4u);
}

TEST(XanaduPolicy, PredictionMissCancelsPlannedDeployments) {
  // A two-branch conditional whose unlikely branch is deep: force the miss
  // by biasing the model with training, then checking a run that deviates.
  workflow::WorkflowDag dag{"miss"};
  BuildOptions opts = chain_options(2000);
  workflow::FunctionSpec root_spec;
  root_spec.name = "root";
  root_spec.exec_time = opts.exec_time;
  const auto root = dag.add_node(root_spec, workflow::DispatchMode::Xor);
  // Likely branch: a chain of 3; unlikely branch: single node.
  workflow::FunctionSpec s;
  s.exec_time = opts.exec_time;
  s.name = "likely1";
  const auto l1 = dag.add_node(s);
  s.name = "likely2";
  const auto l2 = dag.add_node(s);
  s.name = "likely3";
  const auto l3 = dag.add_node(s);
  s.name = "unlikely";
  const auto u1 = dag.add_node(s);
  dag.add_edge(root, l1, 0.9);
  dag.add_edge(root, u1, 0.1);
  dag.add_edge(l1, l2);
  dag.add_edge(l2, l3);
  dag.validate();

  XanaduOptions xo;
  auto manager = make_manager(PlatformKind::XanaduJit, 7, xo);
  const auto wf = manager.deploy(std::move(dag));
  // Train until the model knows the likely branch.
  std::size_t miss_seen = 0;
  for (int i = 0; i < 40; ++i) {
    manager.force_cold_start();
    const RequestResult r = manager.invoke(wf);
    if (r.speculation.missed_nodes > 0) {
      ++miss_seen;
      // A missed prediction must have cancelled the pending tail
      // deployments (l2/l3 were scheduled for the future) OR discarded
      // provisioned-but-unused sandboxes.
      EXPECT_GT(r.speculation.cancelled_deployments +
                    r.speculation.wasted_workers,
                0u);
      EXPECT_EQ(r.speculation.unpredicted_executions, 1u);  // "unlikely"
    }
  }
  // With p(miss) ~ 0.1 over 40 trials, expect at least one miss.
  EXPECT_GE(miss_seen, 1u);
}

TEST(XanaduPolicy, ImplicitChainsLearnedWithoutSchema) {
  XanaduOptions xo;
  xo.knowledge = ChainKnowledge::Implicit;
  auto manager = make_manager(PlatformKind::XanaduJit, 42, xo);
  const auto wf = manager.deploy(workflow::linear_chain(5, chain_options()));

  // First request: nothing known, full cascading cold start.
  const RequestResult first = manager.invoke(wf);
  EXPECT_EQ(first.speculation.predicted_nodes, 0u);
  EXPECT_EQ(first.cold_starts, 5u);

  // The model discovered the chain from parent-id headers.
  const BranchModel* model = manager.xanadu_policy()->model(wf);
  ASSERT_NE(model, nullptr);
  EXPECT_EQ(model->node_count(), 5u);

  // Second request speculates on the learned path.
  manager.force_cold_start();
  const RequestResult second = manager.invoke(wf);
  EXPECT_EQ(second.speculation.predicted_nodes, 5u);
  EXPECT_LE(second.cold_starts, 1u);
}

TEST(XanaduPolicy, ProfilesConvergeToObservedTimings) {
  auto manager = make_manager(PlatformKind::XanaduJit);
  const auto wf = manager.deploy(workflow::linear_chain(2, chain_options(1500)));
  for (int i = 0; i < 6; ++i) {
    manager.force_cold_start();
    (void)manager.invoke(wf);
  }
  const ProfileTable* profiles = manager.xanadu_policy()->profiles(wf);
  ASSERT_NE(profiles, nullptr);
  const FunctionProfile* p = profiles->find_function(common::NodeId{0});
  ASSERT_NE(p, nullptr);
  ProfileFallbacks fb;
  // Cold response ~ dispatch (25 ms) + provisioning (3000 ms base + 1150 ms
  // platform pipeline) + exec (1.5 s) ~ 5.7 s.
  EXPECT_NEAR(p->cold_response(fb).seconds(), 5.7, 1.0);
  // Startup ~ the full provisioning latency seen by the dispatch daemon.
  EXPECT_NEAR(p->startup(fb).seconds(), 4.2, 0.8);
}

TEST(XanaduPolicy, ReplanResumesSpeculationAfterMiss) {
  // Build an XOR whose two branches are both deep chains; under Replan the
  // non-predicted branch still gets speculative help after the miss.
  workflow::WorkflowDag dag{"replan"};
  workflow::FunctionSpec s;
  s.exec_time = sim::Duration::from_millis(4000);
  s.name = "root";
  const auto root = dag.add_node(s, workflow::DispatchMode::Xor);
  std::vector<common::NodeId> a_chain, b_chain;
  for (int i = 0; i < 3; ++i) {
    s.name = "a" + std::to_string(i);
    a_chain.push_back(dag.add_node(s));
    s.name = "b" + std::to_string(i);
    b_chain.push_back(dag.add_node(s));
  }
  dag.add_edge(root, a_chain[0], 0.99);
  dag.add_edge(root, b_chain[0], 0.01);
  for (int i = 0; i + 1 < 3; ++i) {
    dag.add_edge(a_chain[i], a_chain[i + 1]);
    dag.add_edge(b_chain[i], b_chain[i + 1]);
  }
  dag.validate();

  auto run_until_miss = [&](MissPolicy miss_policy, std::uint64_t seed) {
    XanaduOptions xo;
    xo.miss_policy = miss_policy;
    auto manager = make_manager(PlatformKind::XanaduJit, seed, xo);
    const auto wf = manager.deploy(dag);
    for (int i = 0; i < 300; ++i) {
      manager.force_cold_start();
      const RequestResult r = manager.invoke(wf);
      if (r.speculation.missed_nodes > 0) return r;
    }
    return RequestResult{};
  };

  const RequestResult stop = run_until_miss(MissPolicy::Stop, 3);
  const RequestResult replan = run_until_miss(MissPolicy::Replan, 3);
  ASSERT_GT(stop.speculation.missed_nodes, 0u);
  ASSERT_GT(replan.speculation.missed_nodes, 0u);
  // Replanning provisions the b-branch after the miss: fewer cold starts
  // than Stop, which rides the miss cold.
  EXPECT_LT(replan.cold_starts, stop.cold_starts);
}

TEST(XanaduPolicy, CurrentMlpExposesConvergedPath) {
  auto manager = make_manager(PlatformKind::XanaduJit);
  const auto wf = manager.deploy(workflow::linear_chain(3, chain_options(500)));
  (void)manager.invoke(wf);
  const MlpResult mlp = manager.xanadu_policy()->current_mlp(wf);
  EXPECT_EQ(mlp.path.size(), 3u);
}

// ------------------------------------------------------------ policy lab ----

TEST(PolicyView, CountersWindowsAndEstimates) {
  platform::PolicyView view;
  sim::TimePoint now{};
  std::size_t warm = 3;
  std::size_t provisioning = 2;
  view.bind([&] { return now; },
            [&](common::FunctionId) { return warm; },
            [&](common::FunctionId) { return provisioning; });

  const common::WorkflowId wf{0};
  const common::FunctionId fn{0};
  for (int i = 0; i < 5; ++i) {
    view.record_arrival(wf, sim::TimePoint{} + sim::Duration::from_seconds(i));
  }
  now = sim::TimePoint{} + sim::Duration::from_seconds(4);

  EXPECT_EQ(view.total_arrivals(), 5u);
  EXPECT_EQ(view.arrivals(wf), 5u);
  EXPECT_EQ(view.arrivals(common::WorkflowId{9}), 0u);
  // Window (2s, 4s]: the arrivals at t=3s and t=4s (half-open on the left:
  // the t=2s arrival sits exactly on the cutoff and is excluded).
  EXPECT_EQ(view.arrivals_in_window(wf, sim::Duration::from_seconds(2)), 2u);
  EXPECT_DOUBLE_EQ(
      view.arrival_rate_per_sec(wf, sim::Duration::from_seconds(2)), 1.0);
  EXPECT_DOUBLE_EQ(view.arrival_rate_per_sec(wf, sim::Duration::zero()), 0.0);

  EXPECT_EQ(view.warm_count(fn), 3u);
  EXPECT_EQ(view.provisioning_count(fn), 2u);
  EXPECT_TRUE(view.provisioning_in_flight(fn));
  provisioning = 0;
  EXPECT_FALSE(view.provisioning_in_flight(fn));

  EXPECT_EQ(view.estimate(fn), nullptr);
  view.record_worker_ready(fn, sim::Duration::from_millis(100));
  view.record_worker_ready(fn, sim::Duration::from_millis(200));
  view.record_execution(fn, sim::Duration::from_millis(50));
  const platform::PolicyView::FunctionEstimate* est = view.estimate(fn);
  ASSERT_NE(est, nullptr);
  EXPECT_EQ(est->provision_samples, 2u);
  EXPECT_DOUBLE_EQ(est->mean_provision_ms, 150.0);
  EXPECT_EQ(est->exec_samples, 1u);
  EXPECT_DOUBLE_EQ(est->mean_exec_ms, 50.0);

  view.record_completion(false);
  view.record_completion(true);
  EXPECT_EQ(view.completions(), 2u);
  EXPECT_EQ(view.failures(), 1u);
}

TEST(PoolPolicy, MaintainsConfiguredPoolDepth) {
  DispatchManagerOptions options;
  options.kind = PlatformKind::WarmPool;
  options.seed = 42;
  options.pool.pool_size = 2;
  DispatchManager manager{options};
  const auto wf = manager.deploy(workflow::linear_chain(3, chain_options(500)));

  const RequestResult r = manager.invoke(wf);
  EXPECT_FALSE(r.failed);
  // Let the refill builds complete (provisioning is seconds; keep-alive is
  // 10 minutes, so nothing is reclaimed in between).
  manager.idle_for(sim::Duration::from_seconds(30));

  for (std::size_t i = 0; i < 3; ++i) {
    const auto fn = manager.engine().function_id(wf, common::NodeId{i});
    EXPECT_EQ(manager.engine().warm_count(fn), 2u) << "node " << i;
  }

  // The next request rides the pools: no cold starts anywhere in the chain.
  const RequestResult warm = manager.invoke(wf);
  EXPECT_EQ(warm.cold_starts, 0u);
}

TEST(PoolPolicy, RefillCountsInFlightBuildsOnce) {
  // Back-to-back arrivals must not over-provision: the second arrival sees
  // the first one's in-flight builds as coverage.
  DispatchManagerOptions options;
  options.kind = PlatformKind::WarmPool;
  options.pool.pool_size = 1;
  DispatchManager manager{options};
  const auto wf = manager.deploy(workflow::linear_chain(2, chain_options(300)));

  const workload::ArrivalSchedule schedule =
      workload::fixed_interval(4, sim::Duration::from_millis(10));
  workload::RunOptions run;
  run.flush_at_end = true;
  const workload::RunOutcome outcome =
      workload::run_schedule(manager, wf, schedule, run);
  EXPECT_EQ(outcome.completed_count(), 4u);
  // 2 functions x (pool target 1 + one worker per concurrent execution burst)
  // stays far below the 4-arrivals x 2-nodes x pool worst case of a policy
  // that ignores in-flight builds.
  EXPECT_LE(outcome.ledger_delta.workers_provisioned, 10u);
}

TEST(MpcHorizonPolicy, SolvesAndCoversUnderSustainedTraffic) {
  DispatchManagerOptions options;
  options.kind = PlatformKind::MpcHorizon;
  options.seed = 42;
  options.mpc.horizon = sim::Duration::from_millis(1000);
  options.mpc.window = sim::Duration::from_seconds(10);
  DispatchManager manager{options};
  const auto wf = manager.deploy(workflow::linear_chain(2, chain_options(400)));

  const workload::ArrivalSchedule schedule =
      workload::fixed_interval(12, sim::Duration::from_millis(800));
  workload::RunOptions run;
  run.flush_at_end = false;  // Keep the pools observable after the run.
  const workload::RunOutcome outcome =
      workload::run_schedule(manager, wf, schedule, run);

  EXPECT_EQ(outcome.completed_count(), 12u);
  ASSERT_NE(manager.mpc_policy(), nullptr);
  EXPECT_GT(manager.mpc_policy()->solves(), 0u);
  // Once the estimator has seen the chain, the controller holds coverage:
  // the later requests find warm workers instead of cascading cold.
  EXPECT_LT(outcome.stats.sum_cold_starts, 12.0 * 2.0);
  for (std::size_t i = 0; i < 2; ++i) {
    const auto fn = manager.engine().function_id(wf, common::NodeId{i});
    EXPECT_GT(manager.engine().warm_count(fn) +
                  manager.engine().provisioning_count(fn),
              0u)
        << "node " << i;
  }
}

TEST(MpcHorizonPolicy, ReplaysDeterministically) {
  auto digest_of = [](std::uint64_t seed) {
    DispatchManagerOptions options;
    options.kind = PlatformKind::MpcHorizon;
    options.seed = seed;
    DispatchManager manager{options};
    const auto wf =
        manager.deploy(workflow::linear_chain(3, chain_options(300)));
    const workload::ArrivalSchedule schedule =
        workload::fixed_interval(8, sim::Duration::from_millis(500));
    return workload::run_schedule(manager, wf, schedule).trace_digest;
  };
  EXPECT_EQ(digest_of(7), digest_of(7));
  EXPECT_NE(digest_of(7), digest_of(8));
}

/// Records every hook invocation as a flat string sequence; the policy-lab
/// ordering tests compare sequences across same-seed replays.
struct RecordingPolicy final : platform::ProvisionPolicy {
  std::vector<std::string> events;
  std::size_t attaches = 0;
  std::size_t worker_ready = 0;

  void on_attach(platform::PlatformEngine&,
                 const platform::PolicyView&) override {
    ++attaches;
    events.push_back("attach");
  }
  void on_request_submitted(platform::PlatformEngine&,
                            platform::RequestContext&) override {
    events.push_back("submit");
  }
  void on_node_triggered(platform::PlatformEngine&, platform::RequestContext&,
                         common::NodeId node) override {
    events.push_back("trigger:" + std::to_string(node.value()));
  }
  void on_node_exec_start(platform::PlatformEngine&, platform::RequestContext&,
                          common::NodeId node) override {
    events.push_back("exec:" + std::to_string(node.value()));
  }
  void on_worker_ready(platform::PlatformEngine&, common::WorkflowId,
                       common::NodeId node, sim::Duration) override {
    ++worker_ready;
    events.push_back("ready:" + std::to_string(node.value()));
  }
  void on_node_completed(platform::PlatformEngine&, platform::RequestContext&,
                         common::NodeId node) override {
    events.push_back("done:" + std::to_string(node.value()));
  }
  void on_xor_resolved(platform::PlatformEngine&, platform::RequestContext&,
                       common::NodeId parent, common::NodeId chosen) override {
    events.push_back("xor:" + std::to_string(parent.value()) + "->" +
                     std::to_string(chosen.value()));
  }
  void on_node_skipped(platform::PlatformEngine&, platform::RequestContext&,
                       common::NodeId node) override {
    events.push_back("skip:" + std::to_string(node.value()));
  }
  void on_request_completed(platform::PlatformEngine&,
                            platform::RequestContext&,
                            platform::RequestResult&) override {
    events.push_back("complete");
  }
};

workflow::WorkflowDag xor_hook_dag() {
  workflow::WorkflowDag dag{"hooks"};
  workflow::FunctionSpec s;
  s.exec_time = sim::Duration::from_millis(300);
  s.name = "root";
  const auto root = dag.add_node(s, workflow::DispatchMode::Xor);
  s.name = "a";
  const auto a = dag.add_node(s);
  s.name = "b";
  const auto b = dag.add_node(s);
  dag.add_edge(root, a, 0.5);
  dag.add_edge(root, b, 0.5);
  dag.validate();
  return dag;
}

TEST(PolicyHooks, XorAndSkipOrderIsIdenticalAcrossSeedReplays) {
  auto run = [](std::uint64_t seed) {
    RecordingPolicy rec;
    sim::Simulator sim;
    cluster::Cluster cluster{cluster::ClusterOptions{}, common::Rng{3}};
    platform::PlatformCalibration calib;
    platform::PlatformEngine engine{sim, cluster, calib, &rec,
                                    common::Rng{seed}};
    const auto wf = engine.register_workflow(xor_hook_dag());
    for (int i = 0; i < 4; ++i) (void)engine.run_one(wf);
    return rec.events;
  };

  const std::vector<std::string> first = run(11);
  const std::vector<std::string> replay = run(11);
  EXPECT_EQ(first, replay);  // Hook order is part of the replay contract.
  EXPECT_NE(first, run(12)); // ...and actually depends on the XOR draws.

  // Structural ordering: on_attach fires exactly once, before everything;
  // each request's xor resolution precedes the skip it implies.
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first.front(), "attach");
  for (std::size_t i = 0; i < first.size(); ++i) {
    if (first[i].rfind("skip:", 0) == 0) {
      bool xor_before = false;
      for (std::size_t j = i; j-- > 0;) {
        if (first[j] == "complete") break;  // Earlier request's events.
        if (first[j].rfind("xor:", 0) == 0) {
          xor_before = true;
          break;
        }
      }
      EXPECT_TRUE(xor_before) << "skip without a preceding xor at " << i;
    }
  }
}

TEST(PolicyHooks, AttachExposesLiveObservationView) {
  RecordingPolicy rec;
  sim::Simulator sim;
  cluster::Cluster cluster{cluster::ClusterOptions{}, common::Rng{3}};
  platform::PlatformCalibration calib;
  platform::PlatformEngine engine{sim, cluster, calib, &rec, common::Rng{5}};
  EXPECT_EQ(rec.attaches, 1u);

  workflow::BuildOptions build;
  build.exec_time = sim::Duration::from_millis(200);
  const auto wf = engine.register_workflow(workflow::linear_chain(2, build));
  (void)engine.run_one(wf);

  // The engine-owned view saw the request: arrivals, estimates, completions.
  const platform::PolicyView& view = engine.policy_view();
  EXPECT_EQ(view.total_arrivals(), 1u);
  EXPECT_EQ(view.completions(), 1u);
  EXPECT_EQ(view.failures(), 0u);
  const auto fn = engine.function_id(wf, common::NodeId{0});
  const platform::PolicyView::FunctionEstimate* est = view.estimate(fn);
  ASSERT_NE(est, nullptr);
  EXPECT_EQ(est->provision_samples, 1u);
  EXPECT_GT(est->mean_provision_ms, 0.0);
  EXPECT_EQ(est->exec_samples, 1u);
  // One ready per provisioned worker on the fault-free path.
  EXPECT_EQ(rec.worker_ready, 2u);
}

}  // namespace
}  // namespace xanadu::core
