// Unit tests for the discrete-event simulator and virtual time.

#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace xanadu::sim {
namespace {

using namespace xanadu::sim::literals;

// ---------------------------------------------------------------- time ----

TEST(Time, DurationConversions) {
  EXPECT_EQ(Duration::from_millis(1.5).micros(), 1500);
  EXPECT_EQ(Duration::from_seconds(2.0).micros(), 2'000'000);
  EXPECT_EQ(Duration::from_minutes(1.0).micros(), 60'000'000);
  EXPECT_DOUBLE_EQ(Duration::from_micros(2500).millis(), 2.5);
  EXPECT_DOUBLE_EQ(Duration::from_micros(2'500'000).seconds(), 2.5);
}

TEST(Time, Literals) {
  EXPECT_EQ((5_ms).micros(), 5000);
  EXPECT_EQ((2_s).micros(), 2'000'000);
  EXPECT_EQ((1_min).micros(), 60'000'000);
  EXPECT_EQ((7_us).micros(), 7);
}

TEST(Time, Arithmetic) {
  EXPECT_EQ((2_s + 500_ms).micros(), 2'500'000);
  EXPECT_EQ((2_s - 500_ms).micros(), 1'500'000);
  EXPECT_EQ((2_s * 1.5).micros(), 3'000'000);
  EXPECT_EQ((0.5 * 2_s).micros(), 1'000'000);
  TimePoint t{1'000'000};
  EXPECT_EQ((t + 1_s).micros(), 2'000'000);
  EXPECT_EQ(((t + 1_s) - t).micros(), 1'000'000);
}

TEST(Time, NegativeDurationClamps) {
  const Duration d = 1_s - 3_s;
  EXPECT_LT(d, Duration::zero());
  EXPECT_EQ(d.clamped_non_negative(), Duration::zero());
  EXPECT_EQ((2_s).clamped_non_negative(), 2_s);
}

TEST(Time, ToStringFormats) {
  EXPECT_EQ(to_string(Duration::from_seconds(1.25)), "1.250s");
  EXPECT_EQ(to_string(Duration::from_millis(300)), "300.000ms");
  EXPECT_EQ(to_string(Duration::from_micros(12)), "12us");
}

// ----------------------------------------------------------- simulator ----

TEST(Simulator, FiresEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_after(3_s, [&] { order.push_back(3); });
  sim.schedule_after(1_s, [&] { order.push_back(1); });
  sim.schedule_after(2_s, [&] { order.push_back(2); });
  EXPECT_EQ(sim.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now().micros(), (3_s).micros());
}

TEST(Simulator, SameTimeEventsFireFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_after(1_s, [&, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulator, CallbacksCanScheduleMoreEvents) {
  Simulator sim;
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 5) sim.schedule_after(1_s, chain);
  };
  sim.schedule_after(1_s, chain);
  sim.run();
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(sim.now().micros(), (5_s).micros());
}

TEST(Simulator, CancelPreventsFiring) {
  Simulator sim;
  bool fired = false;
  const auto id = sim.schedule_after(1_s, [&] { fired = true; });
  EXPECT_TRUE(sim.cancel(id));
  sim.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.events_fired(), 0u);
}

TEST(Simulator, CancelAfterFireReturnsFalse) {
  Simulator sim;
  const auto id = sim.schedule_after(1_s, [] {});
  sim.run();
  EXPECT_FALSE(sim.cancel(id));
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(Simulator, DoubleCancelReturnsFalse) {
  Simulator sim;
  const auto id = sim.schedule_after(1_s, [] {});
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(Simulator, CancelInvalidIdReturnsFalse) {
  Simulator sim;
  EXPECT_FALSE(sim.cancel(common::EventId{}));
}

TEST(Simulator, PendingCountExcludesCancelled) {
  Simulator sim;
  const auto a = sim.schedule_after(1_s, [] {});
  sim.schedule_after(2_s, [] {});
  EXPECT_EQ(sim.pending(), 2u);
  sim.cancel(a);
  EXPECT_EQ(sim.pending(), 1u);
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_after(1_s, [&] { order.push_back(1); });
  sim.schedule_after(5_s, [&] { order.push_back(5); });
  EXPECT_EQ(sim.run_until(TimePoint{} + 2_s), 1u);
  EXPECT_EQ(order, std::vector<int>{1});
  EXPECT_EQ(sim.now().micros(), (2_s).micros());
  EXPECT_EQ(sim.pending(), 1u);
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 5}));
}

TEST(Simulator, RunUntilFiresEventsExactlyAtDeadline) {
  Simulator sim;
  bool fired = false;
  sim.schedule_after(2_s, [&] { fired = true; });
  sim.run_until(TimePoint{} + 2_s);
  EXPECT_TRUE(fired);
}

TEST(Simulator, RunUntilAdvancesClockWhenIdle) {
  Simulator sim;
  sim.run_until(TimePoint{} + 10_s);
  EXPECT_EQ(sim.now().micros(), (10_s).micros());
}

TEST(Simulator, SchedulingInPastThrows) {
  Simulator sim;
  sim.schedule_after(5_s, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(TimePoint{} + 1_s, [] {}), std::invalid_argument);
  EXPECT_THROW(sim.run_until(TimePoint{} + 1_s), std::invalid_argument);
}

TEST(Simulator, EmptyCallbackThrows) {
  Simulator sim;
  EXPECT_THROW(sim.schedule_after(1_s, EventCallback{}), std::invalid_argument);
}

TEST(Simulator, NegativeDelayClampsToNow) {
  Simulator sim;
  bool fired = false;
  sim.schedule_after(Duration::from_seconds(-3), [&] { fired = true; });
  sim.run();
  EXPECT_TRUE(fired);
  EXPECT_EQ(sim.now().micros(), 0);
}

TEST(Simulator, DeterministicInterleaving) {
  auto run_once = [] {
    Simulator sim;
    std::vector<int> order;
    for (int i = 0; i < 50; ++i) {
      sim.schedule_after(Duration::from_millis(i % 7), [&, i] {
        order.push_back(i);
      });
    }
    sim.run();
    return order;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace xanadu::sim
