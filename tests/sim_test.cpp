// Unit tests for the discrete-event simulator and virtual time.

#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <vector>

#include "sim/event_fn.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace xanadu::sim {
namespace {

using namespace xanadu::sim::literals;

// ---------------------------------------------------------------- time ----

TEST(Time, DurationConversions) {
  EXPECT_EQ(Duration::from_millis(1.5).micros(), 1500);
  EXPECT_EQ(Duration::from_seconds(2.0).micros(), 2'000'000);
  EXPECT_EQ(Duration::from_minutes(1.0).micros(), 60'000'000);
  EXPECT_DOUBLE_EQ(Duration::from_micros(2500).millis(), 2.5);
  EXPECT_DOUBLE_EQ(Duration::from_micros(2'500'000).seconds(), 2.5);
}

TEST(Time, Literals) {
  EXPECT_EQ((5_ms).micros(), 5000);
  EXPECT_EQ((2_s).micros(), 2'000'000);
  EXPECT_EQ((1_min).micros(), 60'000'000);
  EXPECT_EQ((7_us).micros(), 7);
}

TEST(Time, Arithmetic) {
  EXPECT_EQ((2_s + 500_ms).micros(), 2'500'000);
  EXPECT_EQ((2_s - 500_ms).micros(), 1'500'000);
  EXPECT_EQ((2_s * 1.5).micros(), 3'000'000);
  EXPECT_EQ((0.5 * 2_s).micros(), 1'000'000);
  TimePoint t{1'000'000};
  EXPECT_EQ((t + 1_s).micros(), 2'000'000);
  EXPECT_EQ(((t + 1_s) - t).micros(), 1'000'000);
}

TEST(Time, NegativeDurationClamps) {
  const Duration d = 1_s - 3_s;
  EXPECT_LT(d, Duration::zero());
  EXPECT_EQ(d.clamped_non_negative(), Duration::zero());
  EXPECT_EQ((2_s).clamped_non_negative(), 2_s);
}

TEST(Time, ToStringFormats) {
  EXPECT_EQ(to_string(Duration::from_seconds(1.25)), "1.250s");
  EXPECT_EQ(to_string(Duration::from_millis(300)), "300.000ms");
  EXPECT_EQ(to_string(Duration::from_micros(12)), "12us");
}

// ----------------------------------------------------------- simulator ----

TEST(Simulator, FiresEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_after(3_s, [&] { order.push_back(3); });
  sim.schedule_after(1_s, [&] { order.push_back(1); });
  sim.schedule_after(2_s, [&] { order.push_back(2); });
  EXPECT_EQ(sim.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now().micros(), (3_s).micros());
}

TEST(Simulator, SameTimeEventsFireFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_after(1_s, [&, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulator, CallbacksCanScheduleMoreEvents) {
  Simulator sim;
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 5) sim.schedule_after(1_s, chain);
  };
  sim.schedule_after(1_s, chain);
  sim.run();
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(sim.now().micros(), (5_s).micros());
}

TEST(Simulator, CancelPreventsFiring) {
  Simulator sim;
  bool fired = false;
  const auto id = sim.schedule_after(1_s, [&] { fired = true; });
  EXPECT_TRUE(sim.cancel(id));
  sim.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.events_fired(), 0u);
}

TEST(Simulator, CancelAfterFireReturnsFalse) {
  Simulator sim;
  const auto id = sim.schedule_after(1_s, [] {});
  sim.run();
  EXPECT_FALSE(sim.cancel(id));
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(Simulator, DoubleCancelReturnsFalse) {
  Simulator sim;
  const auto id = sim.schedule_after(1_s, [] {});
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(Simulator, CancelInvalidIdReturnsFalse) {
  Simulator sim;
  EXPECT_FALSE(sim.cancel(common::EventId{}));
}

TEST(Simulator, PendingCountExcludesCancelled) {
  Simulator sim;
  const auto a = sim.schedule_after(1_s, [] {});
  sim.schedule_after(2_s, [] {});
  EXPECT_EQ(sim.pending(), 2u);
  sim.cancel(a);
  EXPECT_EQ(sim.pending(), 1u);
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_after(1_s, [&] { order.push_back(1); });
  sim.schedule_after(5_s, [&] { order.push_back(5); });
  EXPECT_EQ(sim.run_until(TimePoint{} + 2_s), 1u);
  EXPECT_EQ(order, std::vector<int>{1});
  EXPECT_EQ(sim.now().micros(), (2_s).micros());
  EXPECT_EQ(sim.pending(), 1u);
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 5}));
}

TEST(Simulator, RunUntilFiresEventsExactlyAtDeadline) {
  Simulator sim;
  bool fired = false;
  sim.schedule_after(2_s, [&] { fired = true; });
  sim.run_until(TimePoint{} + 2_s);
  EXPECT_TRUE(fired);
}

TEST(Simulator, RunUntilAdvancesClockWhenIdle) {
  Simulator sim;
  sim.run_until(TimePoint{} + 10_s);
  EXPECT_EQ(sim.now().micros(), (10_s).micros());
}

TEST(Simulator, SchedulingInPastThrows) {
  Simulator sim;
  sim.schedule_after(5_s, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(TimePoint{} + 1_s, [] {}), std::invalid_argument);
  EXPECT_THROW(sim.run_until(TimePoint{} + 1_s), std::invalid_argument);
}

TEST(Simulator, EmptyCallbackThrows) {
  Simulator sim;
  EXPECT_THROW(sim.schedule_after(1_s, EventCallback{}), std::invalid_argument);
}

TEST(Simulator, NegativeDelayClampsToNow) {
  Simulator sim;
  bool fired = false;
  sim.schedule_after(Duration::from_seconds(-3), [&] { fired = true; });
  sim.run();
  EXPECT_TRUE(fired);
  EXPECT_EQ(sim.now().micros(), 0);
}

TEST(Simulator, CancelFreesCallbackEagerly) {
  // Cancelling must destroy the captured state immediately, not when the
  // tombstone is later popped or the simulator is destroyed: pending timers
  // commonly pin shared_ptrs (bus messages, request state).
  Simulator sim;
  auto token = std::make_shared<int>(7);
  EXPECT_EQ(token.use_count(), 1);
  const auto id = sim.schedule_after(1_s, [token] { (void)*token; });
  EXPECT_EQ(token.use_count(), 2);
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_EQ(token.use_count(), 1) << "cancel must free the callback eagerly";
}

TEST(Simulator, CancelTenThousandReturnsSlabToEmpty) {
  Simulator sim;
  auto token = std::make_shared<int>(0);
  std::vector<common::EventId> ids;
  ids.reserve(10'000);
  for (int i = 0; i < 10'000; ++i) {
    ids.push_back(sim.schedule_after(Duration::from_millis(i + 1),
                                     [token] { ++*token; }));
  }
  EXPECT_EQ(sim.pending(), 10'000u);
  EXPECT_EQ(sim.slab_occupancy(), 10'000u);
  EXPECT_EQ(token.use_count(), 10'001);

  for (const auto id : ids) EXPECT_TRUE(sim.cancel(id));

  // Every callback destroyed at cancel time, every slot back on the free
  // list, and compaction has collapsed the tombstone-only heap.
  EXPECT_EQ(sim.pending(), 0u);
  EXPECT_EQ(sim.slab_occupancy(), 0u);
  EXPECT_EQ(token.use_count(), 1);
  EXPECT_EQ(sim.heap_entries(), 0u);
  EXPECT_EQ(sim.tombstone_count(), 0u);

  EXPECT_EQ(sim.run(), 0u);
  EXPECT_EQ(*token, 0);
}

TEST(Simulator, TombstonesCompactLazily) {
  // Cancel just under half the heap: tombstones linger (cancel stays O(1)).
  // One more cancel crosses the 2x threshold and triggers compaction.
  Simulator sim;
  std::vector<common::EventId> ids;
  for (int i = 0; i < 100; ++i) {
    ids.push_back(sim.schedule_after(Duration::from_millis(i + 1), [] {}));
  }
  for (int i = 0; i < 50; ++i) sim.cancel(ids[static_cast<std::size_t>(i)]);
  EXPECT_EQ(sim.pending(), 50u);
  EXPECT_EQ(sim.heap_entries(), 100u);  // 50 live + 50 tombstones, no sweep
  EXPECT_EQ(sim.tombstone_count(), 50u);

  sim.cancel(ids[50]);  // 51 * 2 > 100: compaction sweeps all tombstones
  EXPECT_EQ(sim.pending(), 49u);
  EXPECT_EQ(sim.heap_entries(), 49u);
  EXPECT_EQ(sim.tombstone_count(), 0u);

  EXPECT_EQ(sim.run(), 49u);  // survivors still fire, in order
  EXPECT_EQ(sim.slab_occupancy(), 0u);
}

TEST(Simulator, SlabSlotsAreRecycled) {
  // A fire-then-schedule steady state must reuse slots instead of growing
  // the slab: capacity reached during the warm-up never increases after.
  Simulator sim;
  for (int round = 0; round < 100; ++round) {
    sim.schedule_after(1_ms, [] {});
    sim.run();
  }
  const std::size_t capacity = sim.slab_capacity();
  EXPECT_LE(capacity, 4u);
  for (int round = 0; round < 100; ++round) {
    sim.schedule_after(1_ms, [] {});
    sim.run();
  }
  EXPECT_EQ(sim.slab_capacity(), capacity);
}

TEST(Simulator, StaleIdNeverCancelsRecycledSlot) {
  // After an event fires, its slot is recycled under a bumped generation:
  // the old EventId must not cancel the new occupant.
  Simulator sim;
  const auto stale = sim.schedule_after(1_ms, [] {});
  sim.run();
  bool fired = false;
  const auto fresh = sim.schedule_after(1_ms, [&] { fired = true; });
  EXPECT_NE(stale.value(), fresh.value());
  EXPECT_FALSE(sim.cancel(stale));
  sim.run();
  EXPECT_TRUE(fired);
}

// ------------------------------------------------------------- event fn ----

TEST(EventFn, InlineCaptureDoesNotAllocate) {
  // A capture within the inline budget round-trips through moves with no
  // heap traffic observable via shared ownership counts.
  auto token = std::make_shared<int>(0);
  EventFn fn{[token] { ++*token; }};
  static_assert(EventFn::kInlineCapacity >= sizeof(std::shared_ptr<int>));
  ASSERT_TRUE(static_cast<bool>(fn));
  EventFn moved{std::move(fn)};
  EXPECT_FALSE(static_cast<bool>(fn));  // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(token.use_count(), 2);      // moved, not copied
  moved();
  EXPECT_EQ(*token, 1);
  moved.reset();
  EXPECT_EQ(token.use_count(), 1);
}

TEST(EventFn, OversizedCaptureFallsBackToHeap) {
  std::array<std::uint64_t, 16> big{};  // 128 bytes > inline capacity
  big[3] = 42;
  int out = 0;
  EventFn fn{[big, &out] { out = static_cast<int>(big[3]); }};
  EventFn moved{std::move(fn)};
  moved();
  EXPECT_EQ(out, 42);
}

TEST(EventFn, EmptyStdFunctionStaysEmpty) {
  // Preserves the Simulator::schedule_at contract: wrapping an empty
  // std::function must produce an empty EventFn, not a live callable that
  // throws bad_function_call at fire time.
  EventFn fn{std::function<void()>{}};
  EXPECT_FALSE(static_cast<bool>(fn));
}

TEST(EventFn, MoveAssignReleasesPreviousTarget) {
  auto first = std::make_shared<int>(1);
  auto second = std::make_shared<int>(2);
  EventFn fn{[first] {}};
  fn = EventFn{[second] {}};
  EXPECT_EQ(first.use_count(), 1) << "old target destroyed on move-assign";
  EXPECT_EQ(second.use_count(), 2);
}

TEST(Simulator, DeterministicInterleaving) {
  auto run_once = [] {
    Simulator sim;
    std::vector<int> order;
    for (int i = 0; i < 50; ++i) {
      sim.schedule_after(Duration::from_millis(i % 7), [&, i] {
        order.push_back(i);
      });
    }
    sim.run();
    return order;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace xanadu::sim
