// Deep execution-semantics tests for mixed m:n workflows: XOR feeding
// barriers, multicast feeding XOR, skip-propagation chains, mixed isolation
// levels within one workflow, and edge delays.

#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "platform/engine.hpp"
#include "workflow/builders.hpp"

namespace xanadu::platform {
namespace {

using namespace xanadu::sim::literals;
using common::NodeId;
using workflow::DispatchMode;
using workflow::FunctionSpec;
using workflow::SandboxKind;
using workflow::WorkflowDag;

class DagSemanticsTest : public ::testing::Test {
 protected:
  DagSemanticsTest() {
    calib_.overhead_jitter = sim::Duration::zero();
    calib_.worker_handoff = sim::Duration::zero();
    cluster_ = std::make_unique<cluster::Cluster>(cluster::ClusterOptions{},
                                                  common::Rng{7});
    auto profile = cluster::default_profile(SandboxKind::Container);
    profile.cold_start_jitter = sim::Duration::zero();
    profile.concurrency_penalty = 0.0;
    cluster_->catalog().set_profile(SandboxKind::Container, profile);
    engine_ = std::make_unique<PlatformEngine>(*sim_, *cluster_, calib_,
                                               nullptr, common::Rng{11});
  }

  FunctionSpec spec(const std::string& name, double exec_ms = 500.0) {
    FunctionSpec s;
    s.name = name;
    s.exec_time = sim::Duration::from_millis(exec_ms);
    return s;
  }

  PlatformCalibration calib_;
  std::unique_ptr<sim::Simulator> sim_ = std::make_unique<sim::Simulator>();
  std::unique_ptr<cluster::Cluster> cluster_;
  std::unique_ptr<PlatformEngine> engine_;
};

TEST_F(DagSemanticsTest, XorIntoBarrierRunsWhenAnyTakenParentArrives) {
  // root XOR -> {a, b}; both a and b feed sink (m:1).  Whichever branch is
  // taken, the sink must run exactly once: its not-taken in-edge resolves
  // via skip propagation, not by waiting forever.
  WorkflowDag dag{"xor-barrier"};
  const auto root = dag.add_node(spec("root"), DispatchMode::Xor);
  const auto a = dag.add_node(spec("a"));
  const auto b = dag.add_node(spec("b"));
  const auto sink = dag.add_node(spec("sink"));
  dag.add_edge(root, a, 0.5);
  dag.add_edge(root, b, 0.5);
  dag.add_edge(a, sink);
  dag.add_edge(b, sink);
  const auto wf = engine_->register_workflow(std::move(dag));
  for (int i = 0; i < 10; ++i) {
    engine_->flush_all_warm_workers();
    const RequestResult r = engine_->run_one(wf);
    EXPECT_EQ(r.node_records[sink.value()].status, NodeStatus::Completed);
    EXPECT_EQ(r.executed_nodes, 3u);  // root + one branch + sink.
    EXPECT_EQ(r.skipped_nodes, 1u);
    // The sink saw exactly one parent header.
    EXPECT_EQ(r.node_records[sink.value()].invoked_by.size(), 1u);
  }
}

TEST_F(DagSemanticsTest, MulticastIntoXorChoosesPerParent) {
  // root multicasts to two XOR nodes; each XOR independently picks one of
  // its own children.
  WorkflowDag dag{"multicast-xor"};
  const auto root = dag.add_node(spec("root"), DispatchMode::All);
  const auto x1 = dag.add_node(spec("x1"), DispatchMode::Xor);
  const auto x2 = dag.add_node(spec("x2"), DispatchMode::Xor);
  const auto l1 = dag.add_node(spec("l1"));
  const auto r1 = dag.add_node(spec("r1"));
  const auto l2 = dag.add_node(spec("l2"));
  const auto r2 = dag.add_node(spec("r2"));
  dag.add_edge(root, x1);
  dag.add_edge(root, x2);
  dag.add_edge(x1, l1, 0.5);
  dag.add_edge(x1, r1, 0.5);
  dag.add_edge(x2, l2, 0.5);
  dag.add_edge(x2, r2, 0.5);
  const auto wf = engine_->register_workflow(std::move(dag));
  const RequestResult r = engine_->run_one(wf);
  EXPECT_EQ(r.executed_nodes, 5u);  // root, x1, x2, one leaf each.
  EXPECT_EQ(r.skipped_nodes, 2u);
  const int l1_ran = r.node_records[l1.value()].status == NodeStatus::Completed;
  const int r1_ran = r.node_records[r1.value()].status == NodeStatus::Completed;
  const int l2_ran = r.node_records[l2.value()].status == NodeStatus::Completed;
  const int r2_ran = r.node_records[r2.value()].status == NodeStatus::Completed;
  EXPECT_EQ(l1_ran + r1_ran, 1);
  EXPECT_EQ(l2_ran + r2_ran, 1);
}

TEST_F(DagSemanticsTest, SkipPropagatesThroughDeepSubtrees) {
  // root XOR -> {taken, skipped-head}; the skipped head owns a 3-node chain
  // ending in a leaf.  Every descendant must resolve to Skipped and the
  // request must terminate.
  WorkflowDag dag{"deep-skip"};
  const auto root = dag.add_node(spec("root"), DispatchMode::Xor);
  const auto taken = dag.add_node(spec("taken"));
  const auto s1 = dag.add_node(spec("s1"));
  const auto s2 = dag.add_node(spec("s2"));
  const auto s3 = dag.add_node(spec("s3"));
  dag.add_edge(root, taken, 1000.0);  // Overwhelming odds: taken wins.
  dag.add_edge(root, s1, 1e-9);
  dag.add_edge(s1, s2);
  dag.add_edge(s2, s3);
  const auto wf = engine_->register_workflow(std::move(dag));
  const RequestResult r = engine_->run_one(wf);
  EXPECT_EQ(r.executed_nodes, 2u);
  EXPECT_EQ(r.skipped_nodes, 3u);
  for (const auto id : {s1, s2, s3}) {
    EXPECT_EQ(r.node_records[id.value()].status, NodeStatus::Skipped);
  }
}

TEST_F(DagSemanticsTest, BarrierWhoseParentsAllSkipIsSkipped) {
  // root XOR -> {a, b}; a long-shot branch b leads to a join of b1+b2...
  // here simpler: sink depends on s1 and s2, both on the never-taken branch.
  WorkflowDag dag{"dead-barrier"};
  const auto root = dag.add_node(spec("root"), DispatchMode::Xor);
  const auto taken = dag.add_node(spec("taken"));
  const auto s1 = dag.add_node(spec("s1"), DispatchMode::All);
  const auto sink = dag.add_node(spec("sink"));
  dag.add_edge(root, taken, 1000.0);
  dag.add_edge(root, s1, 1e-9);
  const auto s2 = dag.add_node(spec("s2"));
  dag.add_edge(s1, s2);
  dag.add_edge(s1, sink);
  dag.add_edge(s2, sink);
  const auto wf = engine_->register_workflow(std::move(dag));
  const RequestResult r = engine_->run_one(wf);
  EXPECT_EQ(r.node_records[sink.value()].status, NodeStatus::Skipped);
  EXPECT_EQ(r.executed_nodes, 2u);
}

TEST_F(DagSemanticsTest, EdgeDelaysShiftChildTriggers) {
  WorkflowDag dag{"delays"};
  const auto a = dag.add_node(spec("a", 1000));
  const auto b = dag.add_node(spec("b", 1000));
  dag.add_edge(a, b, 1.0, 750_ms);
  const auto wf = engine_->register_workflow(std::move(dag));
  const RequestResult r = engine_->run_one(wf);
  const auto& pa = r.node_records[a.value()];
  const auto& pb = r.node_records[b.value()];
  EXPECT_EQ((pb.trigger_time - pa.exec_end).micros(), (750_ms).micros());
}

TEST_F(DagSemanticsTest, MixedIsolationLevelsWithinOneWorkflow) {
  // Paper Section 4: "Xanadu workers support multi-granular isolation" --
  // each function picks its own sandbox kind.  The per-hop cold cost must
  // reflect each node's own profile.
  WorkflowDag dag{"mixed-isolation"};
  FunctionSpec container = spec("container_fn", 500);
  container.sandbox = SandboxKind::Container;
  FunctionSpec process = spec("process_fn", 500);
  process.sandbox = SandboxKind::Process;
  FunctionSpec isolate = spec("isolate_fn", 500);
  isolate.sandbox = SandboxKind::Isolate;
  const auto n1 = dag.add_node(container);
  const auto n2 = dag.add_node(process);
  const auto n3 = dag.add_node(isolate);
  dag.add_edge(n1, n2);
  dag.add_edge(n2, n3);
  const auto wf = engine_->register_workflow(std::move(dag));
  const RequestResult r = engine_->run_one(wf);
  const auto wait = [&](NodeId id) {
    return r.node_records[id.value()].provision_wait.millis();
  };
  // Container ~3000 ms, process ~1150 ms, isolate ~1000 ms (defaults, no
  // jitter on the container; process/isolate still carry profile defaults'
  // jitter of their own, so compare coarsely).
  EXPECT_NEAR(wait(n1), 3000.0, 50.0);
  EXPECT_NEAR(wait(n2), 1150.0, 250.0);
  EXPECT_NEAR(wait(n3), 1000.0, 250.0);
  EXPECT_GT(wait(n1), wait(n2));
}

TEST_F(DagSemanticsTest, MnCombinationExecutesOnce) {
  // Figure 2's m:n: two roots multicast into two mids; both mids feed both
  // sinks.  Everything executes exactly once with correct barrier waits.
  WorkflowDag dag{"mn"};
  const auto r1 = dag.add_node(spec("r1", 400));
  const auto r2 = dag.add_node(spec("r2", 900));
  const auto m1 = dag.add_node(spec("m1"));
  const auto m2 = dag.add_node(spec("m2"));
  const auto k1 = dag.add_node(spec("k1"));
  const auto k2 = dag.add_node(spec("k2"));
  dag.add_edge(r1, m1);
  dag.add_edge(r1, m2);
  dag.add_edge(r2, m1);
  dag.add_edge(r2, m2);
  dag.add_edge(m1, k1);
  dag.add_edge(m1, k2);
  dag.add_edge(m2, k1);
  dag.add_edge(m2, k2);
  const auto wf = engine_->register_workflow(std::move(dag));
  const RequestResult r = engine_->run_one(wf);
  EXPECT_EQ(r.executed_nodes, 6u);
  EXPECT_EQ(r.skipped_nodes, 0u);
  // Mids trigger when the slower root (r2) completes.
  EXPECT_EQ(r.node_records[m1.value()].trigger_time,
            r.node_records[r2.value()].exec_end);
  // Sinks carry two parent headers each.
  EXPECT_EQ(r.node_records[k1.value()].invoked_by.size(), 2u);
  EXPECT_EQ(r.node_records[k2.value()].invoked_by.size(), 2u);
}

}  // namespace
}  // namespace xanadu::platform
