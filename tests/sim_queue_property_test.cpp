// Randomized property test for the slab-backed event queue.
//
// Drives the real sim::Simulator and a deliberately naive reference
// implementation (linear-scan min over a plain vector -- obviously correct,
// hopelessly slow) through identical randomized interleavings of
// schedule / cancel / run_until, including events that schedule children
// when they fire.  At every step the fired-event logs, clocks and pending
// counts must agree exactly.  This is the safety net that lets the real
// queue get clever (d-ary heap, tombstones, slot recycling) without a
// semantic escape hatch: any divergence in ordering, cancellation or clock
// handling shows up as a log mismatch with the seed printed.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <vector>

#include "common/rng.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace xanadu::sim {
namespace {

using common::EventId;
using common::Rng;

/// One fired event, as observed by either implementation.
struct Firing {
  std::uint32_t label;
  std::int64_t at_micros;

  bool operator==(const Firing& other) const {
    return label == other.label && at_micros == other.at_micros;
  }
};

/// Reference simulator: events in an unordered vector, pop-min by linear
/// scan over (when, seq).  No heap, no tombstones, no slab -- nothing that
/// could share a bug with the real implementation.
class ReferenceSim {
 public:
  void schedule(TimePoint when, std::uint32_t label) {
    queue_.push_back(Entry{when, next_seq_++, label});
  }

  bool cancel(std::uint32_t label) {
    const auto it =
        std::find_if(queue_.begin(), queue_.end(),
                     [label](const Entry& e) { return e.label == label; });
    if (it == queue_.end()) return false;
    queue_.erase(it);
    return true;
  }

  template <typename OnFire>
  void run_until(TimePoint deadline, OnFire&& on_fire) {
    for (;;) {
      const auto it = min_entry();
      if (it == queue_.end() || it->when > deadline) break;
      const Entry entry = *it;
      queue_.erase(it);
      now_ = entry.when;
      on_fire(entry.label);  // May re-enter schedule().
    }
    if (now_ < deadline) now_ = deadline;
  }

  template <typename OnFire>
  void run(OnFire&& on_fire) {
    while (true) {
      const auto it = min_entry();
      if (it == queue_.end()) break;
      const Entry entry = *it;
      queue_.erase(it);
      now_ = entry.when;
      on_fire(entry.label);
    }
  }

  [[nodiscard]] TimePoint now() const { return now_; }
  [[nodiscard]] std::size_t pending() const { return queue_.size(); }

 private:
  struct Entry {
    TimePoint when;
    std::uint64_t seq;
    std::uint32_t label;
  };

  std::vector<Entry>::iterator min_entry() {
    return std::min_element(queue_.begin(), queue_.end(),
                            [](const Entry& a, const Entry& b) {
                              if (a.when != b.when) return a.when < b.when;
                              return a.seq < b.seq;
                            });
  }

  TimePoint now_{0};
  std::uint64_t next_seq_ = 0;
  std::vector<Entry> queue_;
};

/// Drives both simulators in lock-step through one randomized episode.
class LockstepDriver {
 public:
  explicit LockstepDriver(std::uint64_t seed) : rng_(seed), seed_(seed) {}

  void run_episode(int phases) {
    for (int phase = 0; phase < phases; ++phase) {
      const std::size_t to_schedule = 1 + rng_.uniform_int(8);
      for (std::size_t i = 0; i < to_schedule; ++i) {
        schedule_fresh(static_cast<std::int64_t>(rng_.uniform_int(5'000)));
      }
      const std::size_t to_cancel = rng_.uniform_int(4);
      for (std::size_t i = 0; i < to_cancel; ++i) cancel_random();
      cancel_retired();  // Stale-id cancels must be no-ops in both.
      advance(static_cast<std::int64_t>(rng_.uniform_int(4'000)));
      check_converged("phase " + std::to_string(phase));
    }
    drain();
    check_converged("final drain");
    ASSERT_EQ(real_.pending(), 0u) << diag("queue not empty after drain");
    ASSERT_EQ(real_.slab_occupancy(), 0u) << diag("slab leak after drain");
  }

 private:
  /// Child-spawning rule, applied identically by both implementations: every
  /// third label schedules a follow-up when it fires, up to depth 3.  Labels
  /// encode depth in the millions digit, so child labels never collide with
  /// fresh top-level labels (which stay below 1'000'000).
  static constexpr std::uint32_t kDepthStride = 1'000'000;
  static bool spawns_child(std::uint32_t label) {
    return label % 3 == 0 && label < 3 * kDepthStride;
  }
  static std::uint32_t child_of(std::uint32_t label) {
    return label + kDepthStride;
  }
  static Duration child_delay(std::uint32_t label) {
    return Duration::from_micros(static_cast<std::int64_t>(label % 900 + 1));
  }

  void schedule_fresh(std::int64_t delay_micros) {
    const std::uint32_t label = next_label_++;
    schedule_both(Duration::from_micros(delay_micros), label);
  }

  void schedule_both(Duration delay, std::uint32_t label) {
    const TimePoint when = real_.now() + delay;
    real_ids_[label] =
        real_.schedule_after(delay, [this, label] { on_real_fire(label); });
    ref_.schedule(when, label);
  }

  void on_real_fire(std::uint32_t label) {
    real_log_.push_back(Firing{label, real_.now().micros()});
    real_ids_.erase(label);
    if (spawns_child(label)) schedule_child_real(label);
  }

  void schedule_child_real(std::uint32_t label) {
    const std::uint32_t child = child_of(label);
    real_ids_[child] = real_.schedule_after(
        child_delay(label), [this, child] { on_real_fire(child); });
  }

  void on_ref_fire(std::uint32_t label) {
    ref_log_.push_back(Firing{label, ref_.now().micros()});
    if (spawns_child(label)) {
      ref_.schedule(ref_.now() + child_delay(label), child_of(label));
    }
  }

  void cancel_random() {
    if (real_ids_.empty()) return;
    // Pick by rank in the sorted outstanding map: deterministic given the
    // seed, independent of EventId encoding.
    auto it = real_ids_.begin();
    std::advance(it, static_cast<std::int64_t>(
                         rng_.uniform_int(real_ids_.size())));
    const std::uint32_t label = it->first;
    const bool real_ok = real_.cancel(it->second);
    const bool ref_ok = ref_.cancel(label);
    ASSERT_TRUE(real_ok) << diag("real cancel refused a pending event");
    ASSERT_TRUE(ref_ok) << diag("ref cancel refused a pending event");
    retired_.push_back(it->second);
    real_ids_.erase(it);
  }

  void cancel_retired() {
    // Ids of events that already fired or were cancelled: both sides must
    // treat them as dead, no matter how the real queue recycles slots.
    for (const EventId id : retired_) {
      ASSERT_FALSE(real_.cancel(id)) << diag("stale id cancelled something");
    }
  }

  void advance(std::int64_t stride_micros) {
    const TimePoint deadline =
        real_.now() + Duration::from_micros(stride_micros);
    real_.run_until(deadline);
    ref_.run_until(deadline, [this](std::uint32_t label) { on_ref_fire(label); });
  }

  void drain() {
    real_.run();
    ref_.run([this](std::uint32_t label) { on_ref_fire(label); });
  }

  void check_converged(const std::string& where) {
    ASSERT_EQ(real_log_.size(), ref_log_.size()) << diag(where);
    for (std::size_t i = 0; i < real_log_.size(); ++i) {
      ASSERT_TRUE(real_log_[i] == ref_log_[i])
          << diag(where + ": divergence at firing " + std::to_string(i) +
                  " (real label " + std::to_string(real_log_[i].label) +
                  " @" + std::to_string(real_log_[i].at_micros) +
                  ", ref label " + std::to_string(ref_log_[i].label) + " @" +
                  std::to_string(ref_log_[i].at_micros) + ")");
    }
    ASSERT_EQ(real_.now().micros(), ref_.now().micros()) << diag(where);
    ASSERT_EQ(real_.pending(), ref_.pending()) << diag(where);
  }

  [[nodiscard]] std::string diag(const std::string& what) const {
    return what + " [seed " + std::to_string(seed_) + "]";
  }

  Rng rng_;
  std::uint64_t seed_;
  Simulator real_;
  ReferenceSim ref_;
  std::uint32_t next_label_ = 1;  // 0 is never used: label 0 % 3 == 0 quirk.
  std::map<std::uint32_t, EventId> real_ids_;
  std::vector<EventId> retired_;
  std::vector<Firing> real_log_;
  std::vector<Firing> ref_log_;
};

TEST(SimQueueProperty, MatchesReferenceAcrossRandomInterleavings) {
  for (std::uint64_t seed = 1; seed <= 24; ++seed) {
    LockstepDriver driver{seed};
    driver.run_episode(/*phases=*/40);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(SimQueueProperty, HeavySameTimeTiesKeepFifoOrder) {
  // Delays drawn from {0, 1, 2} microseconds force massive (when) ties, so
  // pop order is dominated by the FIFO sequence tie-break -- exactly the
  // territory where a d-ary heap with tombstone compaction could slip.
  for (std::uint64_t seed = 100; seed <= 112; ++seed) {
    Rng rng{seed};
    Simulator real;
    ReferenceSim ref;
    std::vector<std::uint32_t> real_order;
    std::vector<std::uint32_t> ref_order;
    std::vector<EventId> ids;
    std::vector<std::uint32_t> labels;
    for (std::uint32_t i = 0; i < 500; ++i) {
      const auto delay =
          Duration::from_micros(static_cast<std::int64_t>(rng.uniform_int(3)));
      ids.push_back(
          real.schedule_after(delay, [&real_order, i] { real_order.push_back(i); }));
      ref.schedule(real.now() + delay, i);
      labels.push_back(i);
    }
    // Cancel a random half, same victims on both sides.
    for (std::uint32_t i = 0; i < 250; ++i) {
      const auto victim = rng.uniform_int(ids.size());
      if (!real.cancel(ids[victim])) continue;  // Already-cancelled pick.
      ASSERT_TRUE(ref.cancel(labels[victim])) << "seed " << seed;
    }
    real.run();
    ref.run([&ref_order](std::uint32_t label) { ref_order.push_back(label); });
    ASSERT_EQ(real_order, ref_order) << "seed " << seed;
  }
}

}  // namespace
}  // namespace xanadu::sim
