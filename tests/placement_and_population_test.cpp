// Tests for cluster placement policies and the heavy-tailed workflow
// population generator.

#include <gtest/gtest.h>

#include <set>

#include "cluster/cluster.hpp"
#include "workload/population.hpp"

namespace xanadu {
namespace {

using cluster::Cluster;
using cluster::ClusterOptions;
using cluster::PlacementPolicy;
using common::FunctionId;
using sim::Duration;
using sim::TimePoint;
using workflow::SandboxKind;

ClusterOptions three_hosts(PlacementPolicy policy) {
  ClusterOptions options;
  options.host_count = 3;
  options.memory_mb_per_host = 4096;
  options.placement = policy;
  return options;
}

/// Places a worker and returns its host.
common::HostId place_one(Cluster& cluster, double memory_mb) {
  const auto host = cluster.place(memory_mb);
  EXPECT_TRUE(host.has_value());
  auto* worker = cluster.start_provisioning(FunctionId{0}, SandboxKind::Container,
                                            memory_mb, *host, TimePoint{});
  EXPECT_NE(worker, nullptr);
  return *host;
}

TEST(Placement, WorstFitSpreadsAcrossHosts) {
  Cluster cluster{three_hosts(PlacementPolicy::WorstFit), common::Rng{1}};
  std::set<std::uint64_t> used;
  for (int i = 0; i < 3; ++i) used.insert(place_one(cluster, 512).value());
  EXPECT_EQ(used.size(), 3u);  // Each placement picks the emptiest host.
}

TEST(Placement, BestFitPacksOneHostFirst) {
  Cluster cluster{three_hosts(PlacementPolicy::BestFit), common::Rng{1}};
  const auto first = place_one(cluster, 512);
  // Now one host is fuller than the others; best-fit keeps packing it.
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(place_one(cluster, 512), first);
  }
}

TEST(Placement, BestFitOverflowsToNextHostWhenFull) {
  ClusterOptions options = three_hosts(PlacementPolicy::BestFit);
  options.memory_mb_per_host = 1200;  // Fits two 512+64 workers, not three.
  Cluster cluster{options, common::Rng{1}};
  const auto a = place_one(cluster, 512);
  const auto b = place_one(cluster, 512);
  const auto c = place_one(cluster, 512);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(Placement, RoundRobinCycles) {
  Cluster cluster{three_hosts(PlacementPolicy::RoundRobin), common::Rng{1}};
  const auto a = place_one(cluster, 512);
  const auto b = place_one(cluster, 512);
  const auto c = place_one(cluster, 512);
  const auto d = place_one(cluster, 512);
  EXPECT_NE(a, b);
  EXPECT_NE(b, c);
  EXPECT_NE(a, c);
  EXPECT_EQ(a, d);  // Wrapped around.
}

TEST(Placement, AllPoliciesFailCleanlyWhenFull) {
  for (const auto policy : {PlacementPolicy::WorstFit, PlacementPolicy::BestFit,
                            PlacementPolicy::RoundRobin}) {
    ClusterOptions options = three_hosts(policy);
    options.host_count = 1;
    options.memory_mb_per_host = 600;
    Cluster cluster{options, common::Rng{1}};
    place_one(cluster, 512);
    EXPECT_FALSE(cluster.place(512).has_value());
  }
}

// ------------------------------------------------------------ population --

TEST(Population, GeneratesRequestedShape) {
  common::Rng rng{7};
  workload::PopulationOptions options;
  options.workflow_count = 30;
  options.min_depth = 2;
  options.max_depth = 5;
  const auto population =
      workload::make_population(options, Duration::from_minutes(120), rng);
  ASSERT_EQ(population.size(), 30u);
  for (const auto& member : population) {
    EXPECT_GE(member.dag.node_count(), 2u);
    EXPECT_LE(member.dag.node_count(), 5u);
    EXPECT_GE(member.mean_gap, options.min_mean_gap);
    EXPECT_LE(member.mean_gap, options.max_mean_gap);
    EXPECT_GE(member.arrivals.size(), 1u);
    EXPECT_NO_THROW(member.dag.validate());
  }
}

TEST(Population, LogUniformGapsSpanOrdersOfMagnitude) {
  common::Rng rng{11};
  workload::PopulationOptions options;
  options.workflow_count = 200;
  const auto population =
      workload::make_population(options, Duration::from_minutes(60), rng);
  Duration min_gap = population.front().mean_gap;
  Duration max_gap = min_gap;
  for (const auto& member : population) {
    min_gap = std::min(min_gap, member.mean_gap);
    max_gap = std::max(max_gap, member.mean_gap);
  }
  // Spread covers at least two orders of magnitude of the configured range.
  EXPECT_GT(max_gap.seconds() / min_gap.seconds(), 100.0);
  // A heavy tail: a substantial fraction is rarely invoked (>= 1 h gaps),
  // echoing the Azure characterisation the paper cites (~45%).
  const double rare = workload::rare_fraction(population);
  EXPECT_GT(rare, 0.2);
  EXPECT_LT(rare, 0.8);
}

TEST(Population, RejectsBadOptions) {
  common::Rng rng{1};
  workload::PopulationOptions options;
  options.workflow_count = 0;
  EXPECT_THROW(
      workload::make_population(options, Duration::from_minutes(10), rng),
      std::invalid_argument);
  options = {};
  options.min_depth = 0;
  EXPECT_THROW(
      workload::make_population(options, Duration::from_minutes(10), rng),
      std::invalid_argument);
  options = {};
  options.min_mean_gap = Duration::from_minutes(10);
  options.max_mean_gap = Duration::from_minutes(1);
  EXPECT_THROW(
      workload::make_population(options, Duration::from_minutes(10), rng),
      std::invalid_argument);
}

TEST(Population, RareFractionEdgeCases) {
  EXPECT_DOUBLE_EQ(workload::rare_fraction({}), 0.0);
}

}  // namespace
}  // namespace xanadu
