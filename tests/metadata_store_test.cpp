// Tests for the metadata store (CouchDB stand-in): JSON round-trips of the
// learned branch model and profiles, corrupt-document handling, and a full
// control-plane warm restart.

#include <gtest/gtest.h>

#include "core/dispatch_manager.hpp"
#include "core/metadata_store.hpp"
#include "workflow/builders.hpp"

namespace xanadu::core {
namespace {

using common::NodeId;
using common::RequestId;

BranchModel learned_model() {
  BranchModel model;
  model.observe_root(NodeId{0}, RequestId{1});
  model.observe_invocation(NodeId{0}, NodeId{1}, RequestId{1});
  model.observe_invocation(NodeId{0}, NodeId{2}, RequestId{2});
  model.observe_invocation(NodeId{0}, NodeId{1}, RequestId{3});
  model.observe_invocation(NodeId{1}, NodeId{3}, RequestId{3});
  model.finalize_pending();
  return model;
}

TEST(MetadataStore, BranchModelRoundTrip) {
  const BranchModel original = learned_model();
  auto restored = branch_model_from_json(to_json(original));
  ASSERT_TRUE(restored.ok()) << restored.error().message;
  const BranchModel& model = restored.value();
  EXPECT_EQ(model.node_count(), original.node_count());
  EXPECT_EQ(model.roots(), original.roots());
  for (const NodeId id : original.known_nodes()) {
    const ModelNode* a = original.find(id);
    const ModelNode* b = model.find(id);
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(a->select, b->select);
    EXPECT_EQ(a->request_count, b->request_count);
    ASSERT_EQ(a->children.size(), b->children.size());
    for (std::size_t i = 0; i < a->children.size(); ++i) {
      EXPECT_EQ(a->children[i].child, b->children[i].child);
      EXPECT_DOUBLE_EQ(a->children[i].probability, b->children[i].probability);
      EXPECT_EQ(a->children[i].count, b->children[i].count);
    }
  }
}

TEST(MetadataStore, ProfileTableRoundTrip) {
  ProfileTable original{0.25};
  original.function(NodeId{0}).observe_cold_response(sim::Duration::from_millis(4200));
  original.function(NodeId{0}).observe_startup(sim::Duration::from_millis(3100));
  original.function(NodeId{1}).observe_warm_response(sim::Duration::from_millis(900));
  original.observe_invoke_gap(NodeId{0}, NodeId{1}, sim::Duration::from_millis(750));

  auto restored = profile_table_from_json(to_json(original));
  ASSERT_TRUE(restored.ok()) << restored.error().message;
  const ProfileTable& table = restored.value();
  EXPECT_DOUBLE_EQ(table.alpha(), 0.25);
  ProfileFallbacks fb;
  EXPECT_DOUBLE_EQ(table.find_function(NodeId{0})->cold_response(fb).millis(),
                   4200.0);
  EXPECT_DOUBLE_EQ(table.find_function(NodeId{0})->startup(fb).millis(), 3100.0);
  EXPECT_DOUBLE_EQ(table.find_function(NodeId{1})->warm_response(fb).millis(),
                   900.0);
  EXPECT_DOUBLE_EQ(table.invoke_gap(NodeId{0}, NodeId{1}, fb).millis(), 750.0);
  // Unseen metrics still fall back.
  EXPECT_EQ(table.invoke_gap(NodeId{5}, NodeId{6}, fb), fb.invoke_gap);
}

TEST(MetadataStore, PutGetAndDumpParse) {
  MetadataStore store;
  WorkflowMetadata metadata;
  metadata.model = learned_model();
  metadata.profiles.function(NodeId{0}).observe_startup(
      sim::Duration::from_millis(2800));
  store.put("checkout", metadata);
  EXPECT_TRUE(store.contains("checkout"));
  EXPECT_EQ(store.size(), 1u);

  auto loaded = store.get("checkout");
  ASSERT_TRUE(loaded.ok());
  ASSERT_TRUE(loaded.value().has_value());
  EXPECT_EQ(loaded.value()->model.node_count(), 4u);

  // Dump the whole store to text and reload it (restart persistence).
  auto reparsed = MetadataStore::parse(store.dump());
  ASSERT_TRUE(reparsed.ok()) << reparsed.error().message;
  auto reloaded = reparsed.value().get("checkout");
  ASSERT_TRUE(reloaded.ok());
  ASSERT_TRUE(reloaded.value().has_value());
  ProfileFallbacks fb;
  EXPECT_DOUBLE_EQ(
      reloaded.value()->profiles.find_function(NodeId{0})->startup(fb).millis(),
      2800.0);
}

TEST(MetadataStore, MissingKeyYieldsEmptyOptional) {
  const MetadataStore store;
  auto result = store.get("ghost");
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result.value().has_value());
}

TEST(MetadataStore, CorruptDocumentsRejected) {
  EXPECT_FALSE(branch_model_from_json(common::JsonValue{42.0}).ok());
  EXPECT_FALSE(profile_table_from_json(common::JsonValue{"x"}).ok());
  // Wrong version.
  common::JsonObject doc;
  doc.set("version", common::JsonValue{99.0});
  EXPECT_FALSE(branch_model_from_json(common::JsonValue{std::move(doc)}).ok());
  EXPECT_FALSE(MetadataStore::parse("not json").ok());
  EXPECT_FALSE(MetadataStore::parse("[1,2]").ok());
}

TEST(MetadataStore, TruncatedDumpsRejected) {
  // A real dump cut off mid-document (disk full, interrupted write) must
  // surface as a parse error, never as a half-loaded store.
  MetadataStore store;
  WorkflowMetadata metadata;
  metadata.model = learned_model();
  store.put("checkout", metadata);
  const std::string full = store.dump();
  ASSERT_GT(full.size(), 8u);
  for (const std::size_t keep :
       {full.size() / 2, full.size() - 1, std::size_t{1}}) {
    auto result = MetadataStore::parse(full.substr(0, keep));
    EXPECT_FALSE(result.ok()) << "accepted a dump truncated to " << keep
                              << " of " << full.size() << " bytes";
  }
  // Hand-written truncations: cut inside a key, after a ':', inside a
  // nested object.
  EXPECT_FALSE(MetadataStore::parse(R"({"checkout": {"model": {"version")").ok());
  EXPECT_FALSE(MetadataStore::parse(R"({"checkout": {"model":)").ok());
  EXPECT_FALSE(MetadataStore::parse(R"({"checkout": {)").ok());
}

TEST(MetadataStore, DuplicateKeysRejected) {
  // Duplicate workflow keys (or duplicate fields inside a document) mean
  // the dump was corrupted or hand-merged badly; last-wins would silently
  // drop learned state.
  EXPECT_FALSE(MetadataStore::parse(R"({"wf": {}, "wf": {}})").ok());
  EXPECT_FALSE(
      MetadataStore::parse(R"({"wf": {"model": {}, "model": {}}})").ok());
  auto result = MetadataStore::parse(R"({"a": 1, "a": 2})");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error().message.find("duplicate object key"),
            std::string::npos)
      << result.error().message;
}

TEST(MetadataStore, WrongTypeFieldsRejected) {
  using common::JsonArray;
  using common::JsonObject;
  using common::JsonValue;

  const JsonValue good_model = to_json(learned_model());
  {
    // 'nodes' as a number instead of an array.
    JsonObject doc;
    doc.set("version", JsonValue{1.0});
    doc.set("nodes", JsonValue{3.0});
    doc.set("roots", JsonValue{JsonArray{}});
    EXPECT_FALSE(branch_model_from_json(JsonValue{std::move(doc)}).ok());
  }
  {
    // A node with a string id.
    JsonObject node;
    node.set("id", JsonValue{"zero"});
    node.set("select", JsonValue{0.0});
    node.set("request_count", JsonValue{1.0});
    node.set("children", JsonValue{JsonArray{}});
    JsonArray nodes;
    nodes.push_back(JsonValue{std::move(node)});
    JsonObject doc;
    doc.set("version", JsonValue{1.0});
    doc.set("nodes", JsonValue{std::move(nodes)});
    doc.set("roots", JsonValue{JsonArray{}});
    auto result = branch_model_from_json(JsonValue{std::move(doc)});
    ASSERT_FALSE(result.ok());
    EXPECT_NE(result.error().message.find("malformed node fields"),
              std::string::npos)
        << result.error().message;
  }
  {
    // 'roots' as an object instead of an array of numbers.
    JsonObject doc;
    doc.set("version", JsonValue{1.0});
    doc.set("nodes", JsonValue{JsonArray{}});
    doc.set("roots", JsonValue{JsonObject{}});
    EXPECT_FALSE(branch_model_from_json(JsonValue{std::move(doc)}).ok());
  }
  {
    // An edge whose probability is a boolean.
    JsonObject edge;
    edge.set("child", JsonValue{1.0});
    edge.set("probability", JsonValue{true});
    edge.set("count", JsonValue{1.0});
    JsonArray children;
    children.push_back(JsonValue{std::move(edge)});
    JsonObject node;
    node.set("id", JsonValue{0.0});
    node.set("select", JsonValue{0.0});
    node.set("request_count", JsonValue{1.0});
    node.set("children", JsonValue{std::move(children)});
    JsonArray nodes;
    nodes.push_back(JsonValue{std::move(node)});
    JsonObject doc;
    doc.set("version", JsonValue{1.0});
    doc.set("nodes", JsonValue{std::move(nodes)});
    doc.set("roots", JsonValue{JsonArray{}});
    EXPECT_FALSE(branch_model_from_json(JsonValue{std::move(doc)}).ok());
  }
  {
    // Profile table: alpha as a string, then alpha out of range.
    JsonObject doc;
    doc.set("version", JsonValue{1.0});
    doc.set("alpha", JsonValue{"0.25"});
    doc.set("functions", JsonValue{JsonArray{}});
    doc.set("invoke_gaps", JsonValue{JsonArray{}});
    EXPECT_FALSE(profile_table_from_json(JsonValue{std::move(doc)}).ok());
    JsonObject doc2;
    doc2.set("version", JsonValue{1.0});
    doc2.set("alpha", JsonValue{7.0});
    doc2.set("functions", JsonValue{JsonArray{}});
    doc2.set("invoke_gaps", JsonValue{JsonArray{}});
    EXPECT_FALSE(profile_table_from_json(JsonValue{std::move(doc2)}).ok());
  }
  {
    // Profile table: an EMA whose count is negative.
    JsonObject ema;
    ema.set("value", JsonValue{5.0});
    ema.set("count", JsonValue{-1.0});
    JsonObject fn;
    fn.set("node", JsonValue{0.0});
    fn.set("cold_response", JsonValue{ema});
    fn.set("startup", JsonValue{ema});
    fn.set("warm_response", JsonValue{std::move(ema)});
    JsonArray functions;
    functions.push_back(JsonValue{std::move(fn)});
    JsonObject doc;
    doc.set("version", JsonValue{1.0});
    doc.set("alpha", JsonValue{0.25});
    doc.set("functions", JsonValue{std::move(functions)});
    doc.set("invoke_gaps", JsonValue{JsonArray{}});
    EXPECT_FALSE(profile_table_from_json(JsonValue{std::move(doc)}).ok());
  }
  {
    // A store document whose 'model' section is the wrong shape fails at
    // get(), not at parse() (parse is lazy about section contents).
    auto parsed =
        MetadataStore::parse(R"({"wf": {"model": 42, "profiles": {}}})");
    ASSERT_TRUE(parsed.ok()) << parsed.error().message;
    EXPECT_FALSE(parsed.value().get("wf").ok());
    // Good model, malformed profiles: still an error, not UB.
    JsonObject doc;
    doc.set("model", good_model);
    doc.set("profiles", JsonValue{"nope"});
    JsonObject top;
    top.set("wf", JsonValue{std::move(doc)});
    auto reparsed = MetadataStore::parse(JsonValue{std::move(top)}.dump());
    ASSERT_TRUE(reparsed.ok());
    EXPECT_FALSE(reparsed.value().get("wf").ok());
  }
}

TEST(MetadataStore, ControlPlaneWarmRestart) {
  // Train a control plane, persist its state, then boot a *fresh* one from
  // the store: the first request after the restart must already benefit
  // from speculation (implicit chain, so an untrained plane would pay the
  // full cascading cold start).
  workflow::BuildOptions opts;
  opts.exec_time = sim::Duration::from_seconds(5);
  const auto dag = workflow::linear_chain(5, opts);

  MetadataStore store;
  XanaduOptions xo;
  xo.knowledge = ChainKnowledge::Implicit;
  {
    DispatchManagerOptions options;
    options.kind = PlatformKind::XanaduJit;
    options.xanadu = xo;
    DispatchManager manager{options};
    const auto wf = manager.deploy(dag);
    for (int i = 0; i < 3; ++i) {
      manager.force_cold_start();
      (void)manager.invoke(wf);
    }
    ASSERT_TRUE(manager.xanadu_policy()->persist(wf, store, "chain"));
  }

  // Fresh platform + fresh policy: restore before the first request.
  DispatchManagerOptions options;
  options.kind = PlatformKind::XanaduJit;
  options.xanadu = xo;
  DispatchManager manager{options};
  const auto wf = manager.deploy(dag);
  auto restored = manager.xanadu_policy()->restore(wf, store, "chain");
  ASSERT_TRUE(restored.ok()) << restored.error().message;
  EXPECT_TRUE(restored.value());

  const auto result = manager.invoke(wf);
  // Without restore this first request would have 5 cold starts and no
  // predicted path; with the persisted model it speculates immediately.
  EXPECT_EQ(result.speculation.predicted_nodes, 5u);
  EXPECT_LE(result.cold_starts, 1u);

  // Restoring an absent key reports "nothing restored".
  auto missing = manager.xanadu_policy()->restore(wf, store, "ghost");
  ASSERT_TRUE(missing.ok());
  EXPECT_FALSE(missing.value());
}

}  // namespace
}  // namespace xanadu::core
