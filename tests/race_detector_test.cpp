// Virtual-time race detector tests.
//
// Two halves.  First, the detector itself is pinned against hand-built
// fixtures: an intentionally racy pair of same-timestamp events whose
// effects do not commute MUST be flagged (with the guilty tie group, its
// labels, and the divergent probe named in the report), while commuting
// ties and sampled large groups must come back clean.  Second, the engine
// sweep: full DispatchManager runs over the paper's case-study workloads
// and a random conditional tree, on both a baseline and a Xanadu preset,
// are checked tie-race-free -- and the grouped drain the detector rides on
// is proven byte-identical to the normal drain (same trace digest), which
// is what keeps the GoldenDigestGuard constants valid while recording.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/hash.hpp"
#include "common/rng.hpp"
#include "core/dispatch_manager.hpp"
#include "metrics/trace.hpp"
#include "sim/probe.hpp"
#include "sim/race_detector.hpp"
#include "sim/simulator.hpp"
#include "workflow/random_tree.hpp"
#include "workload/case_studies.hpp"

namespace xanadu {
namespace {

using core::DispatchManager;
using core::DispatchManagerOptions;
using core::PlatformKind;
using platform::RequestResult;
using sim::ProbeRegistry;
using sim::RaceCheckOptions;
using sim::RaceReport;
using sim::RunObservation;
using sim::Simulator;
using sim::TiePermutation;
using sim::TieRecorder;

// ---------------------------------------------------------------------------
// Detector fixtures: hand-built simulators with known (non-)commutativity.
// ---------------------------------------------------------------------------

/// Two events tied at t=1ms whose composition depends on order:
/// x *= 2 then x += 3 gives 13; x += 3 then x *= 2 gives 16.
RunObservation racy_fixture(const TiePermutation* permutation) {
  Simulator sim;
  std::uint64_t x = 5;
  ProbeRegistry probes;
  probes.add("fixture.value", [&x] { return x; });
  TieRecorder recorder;
  sim.set_tie_recorder(&recorder);
  sim.set_probe_registry(&probes);
  sim.set_tie_permutation(permutation);
  const sim::TimePoint t = sim::TimePoint{} + sim::Duration::from_millis(1);
  sim.schedule_at(t, [&x] { x *= 2; }, "racy.double");
  sim.schedule_at(t, [&x] { x += 3; }, "racy.add");
  sim.run();
  RunObservation obs;
  obs.digest = common::fnv1a_u64(x);
  obs.ties = std::move(recorder);
  return obs;
}

TEST(race_detector, SeededRaceIsDetectedAndLocalised) {
  const RaceReport report = sim::check_tie_races(racy_fixture);
  ASSERT_FALSE(report.race_free()) << report.to_string();
  EXPECT_EQ(report.groups_examined, 1u);
  // A 2-group has exactly one non-identity order.
  EXPECT_EQ(report.permutations_run, 1u);
  ASSERT_EQ(report.races.size(), 1u);

  const sim::TieRace& race = report.races.front();
  EXPECT_EQ(race.group_index, 0u);
  EXPECT_EQ(race.when, sim::TimePoint{} + sim::Duration::from_millis(1));
  ASSERT_EQ(race.labels.size(), 2u);
  EXPECT_EQ(race.labels[0], "racy.double");
  EXPECT_EQ(race.labels[1], "racy.add");
  EXPECT_EQ(race.divergent_order, (std::vector<std::uint32_t>{1, 0}));
  EXPECT_NE(race.baseline_digest, race.permuted_digest);
  EXPECT_EQ(race.first_divergent_probe, "fixture.value");

  // The human-readable report names the guilty events.
  const std::string text = report.to_string();
  EXPECT_NE(text.find("racy.double"), std::string::npos);
  EXPECT_NE(text.find("racy.add"), std::string::npos);
  EXPECT_NE(text.find("fixture.value"), std::string::npos);
}

/// Three events tied at t=1ms that all commute (independent additions).
RunObservation commuting_fixture(const TiePermutation* permutation) {
  Simulator sim;
  std::uint64_t a = 0, b = 0, c = 0;
  TieRecorder recorder;
  sim.set_tie_recorder(&recorder);
  sim.set_tie_permutation(permutation);
  const sim::TimePoint t = sim::TimePoint{} + sim::Duration::from_millis(1);
  sim.schedule_at(t, [&a] { a += 1; }, "calm.a");
  sim.schedule_at(t, [&b] { b += 2; }, "calm.b");
  sim.schedule_at(t, [&c] { c += 3; }, "calm.c");
  sim.run();
  RunObservation obs;
  obs.digest = common::fnv1a_u64(a, common::fnv1a_u64(b, common::fnv1a_u64(c)));
  obs.ties = std::move(recorder);
  return obs;
}

TEST(race_detector, CommutingTieGroupIsRaceFree) {
  const RaceReport report = sim::check_tie_races(commuting_fixture);
  EXPECT_TRUE(report.race_free()) << report.to_string();
  EXPECT_EQ(report.groups_examined, 1u);
  // All 3! - 1 = 5 non-identity orders of the 3-group were replayed.
  EXPECT_EQ(report.permutations_run, 5u);
  EXPECT_FALSE(report.truncated);
}

/// Six commuting events tied at t=1ms: above the exhaustive limit, so the
/// detector falls back to seeded sampling.
RunObservation wide_fixture(const TiePermutation* permutation) {
  Simulator sim;
  std::uint64_t sum = 0;
  TieRecorder recorder;
  sim.set_tie_recorder(&recorder);
  sim.set_tie_permutation(permutation);
  const sim::TimePoint t = sim::TimePoint{} + sim::Duration::from_millis(1);
  for (std::uint64_t i = 0; i < 6; ++i) {
    sim.schedule_at(t, [&sum, i] { sum += i; }, "wide.add");
  }
  sim.run();
  RunObservation obs;
  obs.digest = common::fnv1a_u64(sum);
  obs.ties = std::move(recorder);
  return obs;
}

TEST(race_detector, LargeGroupsAreSampledDeterministically) {
  RaceCheckOptions options;
  options.exhaustive_group_limit = 4;
  options.sampled_permutations = 6;
  const RaceReport first = sim::check_tie_races(wide_fixture, options);
  EXPECT_TRUE(first.race_free()) << first.to_string();
  EXPECT_EQ(first.groups_examined, 1u);
  EXPECT_EQ(first.permutations_run, 6u);  // sampled, not 6! - 1
  // Same seed, same samples: the check itself replays deterministically.
  const RaceReport second = sim::check_tie_races(wide_fixture, options);
  EXPECT_EQ(second.permutations_run, first.permutations_run);
  EXPECT_EQ(second.race_free(), first.race_free());
}

TEST(race_detector, MaxReplaysTruncatesTheSearch) {
  RaceCheckOptions options;
  options.max_replays = 2;
  const RaceReport report = sim::check_tie_races(commuting_fixture, options);
  EXPECT_TRUE(report.truncated);
  EXPECT_EQ(report.permutations_run, 2u);
}

TEST(race_detector, DistinctTimestampsFormNoGroups) {
  auto runner = [](const TiePermutation* permutation) {
    Simulator sim;
    std::uint64_t x = 0;
    TieRecorder recorder;
    sim.set_tie_recorder(&recorder);
    sim.set_tie_permutation(permutation);
    sim.schedule_after(sim::Duration::from_millis(1), [&x] { x += 1; });
    sim.schedule_after(sim::Duration::from_millis(2), [&x] { x *= 2; });
    sim.run();
    RunObservation obs;
    obs.digest = common::fnv1a_u64(x);
    obs.ties = std::move(recorder);
    return obs;
  };
  const RaceReport report = sim::check_tie_races(runner);
  EXPECT_TRUE(report.race_free());
  EXPECT_EQ(report.groups_examined, 0u);
  EXPECT_EQ(report.permutations_run, 0u);
}

// ---------------------------------------------------------------------------
// Engine sweep: presets x workloads, plus grouped-drain digest equivalence.
// ---------------------------------------------------------------------------

workflow::WorkflowDag sweep_workload(const std::string& name) {
  if (name == "ecommerce") return workload::ecommerce_checkout();
  if (name == "image_pipeline") return workload::image_pipeline();
  // Deterministic conditional tree: fixed generator seed, 7 nodes.
  common::Rng rng{2024};
  workflow::RandomTreeOptions opts;
  opts.node_count = 7;
  return workflow::random_binary_tree(opts, rng);
}

/// Full-engine scenario: deploy `workload` on a fresh DispatchManager of
/// `kind`, submit `requests` concurrent invocations at t=0 (concurrency is
/// what produces same-timestamp tie groups -- e.g. the per-node scheduled
/// prewarms of several requests landing on one instant), run to completion,
/// and digest the trace.  When `record` is false the run uses the normal
/// (ungrouped) drain with no hooks attached.
RunObservation engine_run(PlatformKind kind, const std::string& workload,
                          int requests, bool record,
                          const TiePermutation* permutation) {
  DispatchManagerOptions options;
  options.kind = kind;
  options.seed = 42;
  DispatchManager manager{options};
  TieRecorder recorder;
  if (record || permutation != nullptr) {
    manager.simulator().set_tie_recorder(&recorder);
    manager.simulator().set_probe_registry(&manager.probes());
    manager.simulator().set_tie_permutation(permutation);
  }
  const workflow::WorkflowDag dag = sweep_workload(workload);
  const auto wf = manager.deploy(sweep_workload(workload));
  std::vector<RequestResult> results;
  results.reserve(static_cast<std::size_t>(requests));
  for (int i = 0; i < requests; ++i) {
    (void)manager.submit(wf, [&results](const RequestResult& result) {
      results.push_back(result);
    });
  }
  manager.simulator().run();
  RunObservation obs;
  // Divergence digest: the trace digest alone misses races whose effects
  // cancel out in the emitted rows (two tied events swapping which worker
  // each claims), so fold in the engine's state digest -- exact warm-pool
  // membership plus resource-ledger balances.
  obs.digest = common::fnv1a_u64(manager.engine().state_digest(),
                                 metrics::trace_digest(results, dag));
  obs.ties = std::move(recorder);
  return obs;
}

TEST(race_detector, GroupedDrainMatchesNormalDrainDigest) {
  // The recorder must be a pure observer: attaching it switches the drain
  // into grouped mode, and the grouped drain must replay the exact same
  // timeline (this is what keeps GoldenDigestGuard valid under recording).
  for (const PlatformKind kind :
       {PlatformKind::XanaduJit, PlatformKind::XanaduSpeculative,
        PlatformKind::KnativeLike}) {
    for (const std::string workload :
         {"ecommerce", "image_pipeline", "random_tree"}) {
      const RunObservation normal =
          engine_run(kind, workload, 4, /*record=*/false, nullptr);
      const RunObservation grouped =
          engine_run(kind, workload, 4, /*record=*/true, nullptr);
      EXPECT_EQ(normal.digest, grouped.digest)
          << core::to_string(kind) << " / " << workload;
    }
  }
}

TEST(race_detector, EngineSweepIsTieRaceFree) {
  // The acceptance sweep: every preset x workload combination must expose no
  // order-dependent tie group.  Every non-singleton group the baseline run
  // records is replayed under permuted orders via full scenario re-runs.
  // The jit preset ties under the concurrent submissions engine_run issues
  // (several requests' scheduled prewarms landing on one instant), which is
  // what keeps this sweep from passing vacuously.
  std::size_t total_groups = 0;
  for (const PlatformKind kind :
       {PlatformKind::XanaduJit, PlatformKind::XanaduSpeculative,
        PlatformKind::KnativeLike}) {
    for (const std::string workload :
         {"ecommerce", "image_pipeline", "random_tree"}) {
      auto runner = [kind, &workload](const TiePermutation* permutation) {
        return engine_run(kind, workload, 3, /*record=*/true, permutation);
      };
      RaceCheckOptions options;
      options.sampled_permutations = 4;  // bound tie-heavy groups
      const RaceReport report = sim::check_tie_races(runner, options);
      EXPECT_TRUE(report.race_free())
          << core::to_string(kind) << " / " << workload << "\n"
          << report.to_string();
      EXPECT_FALSE(report.truncated)
          << core::to_string(kind) << " / " << workload;
      total_groups += report.groups_examined;
    }
  }
  // The sweep must actually exercise the detector: if an engine change ever
  // removes every tie group, this trips so the scenario gets re-armed
  // rather than the check passing vacuously.
  EXPECT_GT(total_groups, 0u);
}

TEST(race_detector, SpeculativeBatchIsOrderIndependentAfterKeyedStreams) {
  // The race this detector once pinned, now fixed: under onset-time
  // speculation the whole chain's provisions start on one instant, so their
  // deferred latency-sampling events ("pipeline.daemon_command") form a tie
  // group -- and each one used to draw cold-start jitter from the cluster's
  // shared Rng stream, letting the firing order decide which draw landed on
  // which worker.  Cluster::sample_provision_latency now forks a
  // per-provision stream with the stable key (function, worker), making
  // each provision's jitter a pure function of ids.  tools/flow_lint.py
  // (rule shared-rng-draw) keeps the bug class from recurring statically;
  // this test keeps it from recurring dynamically -- and proves the tie
  // group itself still forms, so the check is not passing vacuously.
  auto runner = [](const TiePermutation* permutation) {
    return engine_run(PlatformKind::XanaduSpeculative, "ecommerce", 3,
                      /*record=*/true, permutation);
  };
  const RunObservation baseline = runner(nullptr);
  bool daemon_batch_seen = false;
  for (const sim::TieGroup& group : baseline.ties.groups) {
    for (const sim::TieEvent& event : group.events) {
      if (event.label == "pipeline.daemon_command") daemon_batch_seen = true;
    }
  }
  EXPECT_TRUE(daemon_batch_seen)
      << "speculative scenario no longer ties its daemon-command batch; "
         "re-arm the scenario so this check stays discriminating";
  const RaceReport report = sim::check_tie_races(runner);
  EXPECT_TRUE(report.race_free()) << report.to_string();
}

}  // namespace
}  // namespace xanadu
