// Fault-injection scenario and property suite (chaos harness).
//
// Exercises the seed-deterministic FaultPlan end to end: every fault class
// (bus drop / duplicate / delay, provisioning failure, worker crash, host
// outage) is run with and without the recovery machinery, asserting the
// contract of each combination -- recovery retries until requests complete
// or fail over cleanly; without recovery, faulted requests strand and the
// harness fails them at the stall horizon.  Every scenario also pins the
// PR 1 determinism contract extended over faults: same seed + same
// FaultPlanOptions => identical trace digest and identical fault counters.
//
// The parameterized sweep at the bottom is the property half: across fault
// rates {0, 0.01, 0.1, 0.5} x 5 seeds, no invariant fires, every request
// yields exactly one result (completed + failed == triggered), the resource
// ledger never goes negative, and -- thanks to the single-draw-per-message
// coupling in FaultPlan::next_bus_fault -- raising the delay rate at a
// fixed seed degrades C_D monotonically.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/dispatch_manager.hpp"
#include "metrics/trace.hpp"
#include "platform/calibration.hpp"
#include "sim/audit.hpp"
#include "sim/fault_plan.hpp"
#include "workflow/builders.hpp"
#include "workload/arrivals.hpp"
#include "workload/runner.hpp"

namespace xanadu {
namespace {

using core::DispatchManager;
using core::DispatchManagerOptions;
using core::PlatformKind;

/// Restores the global audit log's mode and contents on scope exit.
class AuditGuard {
 public:
  AuditGuard() : saved_mode_(sim::audit::log().mode()) {
    sim::audit::log().clear();
  }
  ~AuditGuard() {
    sim::audit::log().set_mode(saved_mode_);
    sim::audit::log().clear();
  }

 private:
  sim::audit::Mode saved_mode_;
};

struct ScenarioOptions {
  sim::FaultPlanOptions faults;
  bool recovery = true;
  std::uint64_t seed = 42;
  std::size_t requests = 6;
  std::size_t hosts = 4;
  std::size_t chain_length = 3;
  bool cold_each = true;
  PlatformKind kind = PlatformKind::XanaduJit;
};

struct ScenarioResult {
  workload::RunOutcome outcome;
  sim::FaultCounters faults;
  platform::RecoveryStats recovery;
  std::uint64_t digest = 0;
};

workflow::WorkflowDag scenario_dag(std::size_t length) {
  workflow::BuildOptions build;
  build.exec_time = sim::Duration::from_millis(120);
  return workflow::linear_chain(length, build);
}

/// Runs `requests` arrivals (2 s apart) of a linear chain under the given
/// fault plan and returns results + counters + the trace digest.  The bus is
/// enabled so message faults have a surface; allow_incomplete turns strands
/// into clean failures instead of harness exceptions.
ScenarioResult run_scenario(const ScenarioOptions& scenario) {
  DispatchManagerOptions options;
  options.kind = scenario.kind;
  options.seed = scenario.seed;
  options.cluster.host_count = scenario.hosts;
  platform::PlatformCalibration calibration = platform::xanadu_calibration();
  calibration.control_bus.enabled = true;
  options.calibration = calibration;
  options.faults = scenario.faults;
  options.recovery.enabled = scenario.recovery;
  DispatchManager manager{options};

  const workflow::WorkflowDag dag = scenario_dag(scenario.chain_length);
  const auto wf = manager.deploy(scenario_dag(scenario.chain_length));

  workload::RunOptions run;
  run.allow_incomplete = true;
  run.drain_after_last = true;
  run.force_cold_each_request = scenario.cold_each;

  ScenarioResult result;
  result.outcome = workload::run_schedule(
      manager, wf,
      workload::fixed_interval(scenario.requests,
                               sim::Duration::from_seconds(2)),
      run);
  result.faults = manager.fault_counters();
  result.recovery = manager.recovery_stats();
  result.digest = metrics::trace_digest(result.outcome.results, dag);
  return result;
}

/// Every result slot is filled, completed or failed -- the fault layer's
/// conservation law.
void expect_conservation(const ScenarioResult& result,
                         std::size_t triggered) {
  EXPECT_EQ(result.outcome.results.size(), triggered);
  EXPECT_EQ(result.outcome.completed_count() + result.outcome.failed_count(),
            triggered);
}

// ---------------------------------------------------------------------------
// Message-bus faults.
// ---------------------------------------------------------------------------

TEST(fault_injection, BusDropsAreRetriedUntilEveryRequestCompletes) {
  ScenarioOptions scenario;
  scenario.faults.bus_drop_rate = 0.3;
  const ScenarioResult result = run_scenario(scenario);
  expect_conservation(result, scenario.requests);
  EXPECT_GT(result.faults.bus_drops, 0u);
  // Dropped daemon commands were re-published after the ack timeout ...
  EXPECT_GT(result.recovery.command_retries, 0u);
  // ... so no request stranded.
  EXPECT_DOUBLE_EQ(result.outcome.completion_rate(), 1.0);
}

TEST(fault_injection, TotalBusLossFailsRequestsCleanlyWithRecovery) {
  // Every command and every retry is dropped: recovery cannot win, but it
  // must lose cleanly -- bounded retries, then a failed result per request.
  ScenarioOptions scenario;
  scenario.faults.bus_drop_rate = 1.0;
  const ScenarioResult result = run_scenario(scenario);
  expect_conservation(result, scenario.requests);
  EXPECT_EQ(result.outcome.completed_count(), 0u);
  EXPECT_EQ(result.recovery.requests_failed, scenario.requests);
  EXPECT_GT(result.recovery.command_retries, 0u);
  EXPECT_GT(result.recovery.builds_abandoned, 0u);
  for (const auto& r : result.outcome.results) {
    EXPECT_TRUE(r.failed);
    EXPECT_NE(r.failure_reason.find("retries exhausted"), std::string::npos)
        << r.failure_reason;
  }
}

TEST(fault_injection, TotalBusLossWithoutRecoveryStrandsEveryRequest) {
  ScenarioOptions scenario;
  scenario.faults.bus_drop_rate = 1.0;
  scenario.recovery = false;
  const ScenarioResult result = run_scenario(scenario);
  expect_conservation(result, scenario.requests);
  EXPECT_EQ(result.outcome.completed_count(), 0u);
  // The engine never retried anything; the run harness failed the strays.
  EXPECT_EQ(result.recovery.command_retries, 0u);
  EXPECT_EQ(result.recovery.node_retries, 0u);
  for (const auto& r : result.outcome.results) {
    EXPECT_TRUE(r.failed);
    EXPECT_NE(r.failure_reason.find("stranded"), std::string::npos)
        << r.failure_reason;
  }
}

TEST(fault_injection, DuplicatedCommandsAreIdempotent) {
  // Duplicate deliveries must not double-build sandboxes: the daemon acks
  // the first copy and ignores the second.
  ScenarioOptions scenario;
  scenario.faults.bus_duplicate_rate = 0.6;
  const ScenarioResult result = run_scenario(scenario);
  expect_conservation(result, scenario.requests);
  EXPECT_GT(result.faults.bus_duplicates, 0u);
  EXPECT_DOUBLE_EQ(result.outcome.completion_rate(), 1.0);
  EXPECT_EQ(result.recovery.requests_failed, 0u);
}

TEST(fault_injection, DelayedMessagesSlowRequestsButLoseNothing) {
  ScenarioOptions scenario;
  scenario.faults.bus_delay_rate = 0.8;
  scenario.faults.bus_extra_delay = sim::Duration::from_millis(300);
  const ScenarioResult faulted = run_scenario(scenario);
  expect_conservation(faulted, scenario.requests);
  EXPECT_GT(faulted.faults.bus_delays, 0u);
  EXPECT_DOUBLE_EQ(faulted.outcome.completion_rate(), 1.0);

  ScenarioOptions clean = scenario;
  clean.faults = sim::FaultPlanOptions{};
  const ScenarioResult baseline = run_scenario(clean);
  // 300 ms on ~80% of daemon commands dwarfs dispatch jitter: the faulted
  // run must be visibly slower end to end.
  EXPECT_GT(faulted.outcome.mean_end_to_end_ms(),
            baseline.outcome.mean_end_to_end_ms());
}

// ---------------------------------------------------------------------------
// Worker and host faults.
// ---------------------------------------------------------------------------

TEST(fault_injection, ProvisionFailuresAreReplacedByRecovery) {
  ScenarioOptions scenario;
  scenario.faults.provision_failure_rate = 0.25;
  const ScenarioResult result = run_scenario(scenario);
  expect_conservation(result, scenario.requests);
  EXPECT_GT(result.faults.provision_failures, 0u);
  EXPECT_GT(result.recovery.builds_abandoned, 0u);
  EXPECT_GT(result.recovery.node_retries, 0u);
  // A 25% per-build failure rate with 3 re-dispatches per node recovers
  // essentially always (per-node strand odds are 0.25^4).
  EXPECT_DOUBLE_EQ(result.outcome.completion_rate(), 1.0);
}

TEST(fault_injection, CertainProvisionFailureExhaustsRetriesCleanly) {
  ScenarioOptions scenario;
  scenario.faults.provision_failure_rate = 1.0;
  const ScenarioResult result = run_scenario(scenario);
  expect_conservation(result, scenario.requests);
  EXPECT_EQ(result.outcome.completed_count(), 0u);
  EXPECT_EQ(result.recovery.requests_failed, scenario.requests);
  for (const auto& r : result.outcome.results) {
    EXPECT_TRUE(r.failed);
    EXPECT_NE(r.failure_reason.find("sandbox build failed"),
              std::string::npos)
        << r.failure_reason;
  }
}

TEST(fault_injection, ProvisionFailureWithoutRecoveryStrands) {
  ScenarioOptions scenario;
  scenario.faults.provision_failure_rate = 1.0;
  scenario.recovery = false;
  const ScenarioResult result = run_scenario(scenario);
  expect_conservation(result, scenario.requests);
  EXPECT_EQ(result.outcome.completed_count(), 0u);
  EXPECT_EQ(result.recovery.node_retries, 0u);
}

TEST(fault_injection, WorkerCrashesAreRedispatched) {
  ScenarioOptions scenario;
  scenario.faults.worker_crash_rate = 0.3;
  const ScenarioResult result = run_scenario(scenario);
  expect_conservation(result, scenario.requests);
  EXPECT_GT(result.faults.worker_crashes, 0u);
  EXPECT_GT(result.recovery.node_retries, 0u);
  EXPECT_DOUBLE_EQ(result.outcome.completion_rate(), 1.0);
}

TEST(fault_injection, CertainWorkerCrashWithoutRecoveryStrands) {
  ScenarioOptions scenario;
  scenario.faults.worker_crash_rate = 1.0;
  scenario.recovery = false;
  const ScenarioResult result = run_scenario(scenario);
  expect_conservation(result, scenario.requests);
  // The first node's execution crashes and is never re-dispatched.
  EXPECT_EQ(result.outcome.completed_count(), 0u);
  EXPECT_GT(result.faults.worker_crashes, 0u);
  EXPECT_EQ(result.recovery.node_retries, 0u);
}

TEST(fault_injection, HostOutagesAreSurvivedWithRecovery) {
  ScenarioOptions scenario;
  scenario.faults.host_outage_rate_per_hour = 600.0;  // mean gap 6 s
  scenario.faults.host_downtime = sim::Duration::from_seconds(2);
  scenario.hosts = 3;
  const ScenarioResult result = run_scenario(scenario);
  expect_conservation(result, scenario.requests);
  EXPECT_GT(result.faults.host_outages, 0u);
  // Outages during this workload land on live workers; recovery either
  // re-dispatches (completion) or fails over after bounded retries --
  // nothing may strand or vanish.
  EXPECT_GT(result.outcome.completed_count(), 0u);
}

TEST(fault_injection, StragglersOnlySlowProvisioning) {
  ScenarioOptions scenario;
  scenario.faults.straggler_rate = 0.5;
  scenario.faults.straggler_multiplier = 3.0;
  const ScenarioResult result = run_scenario(scenario);
  expect_conservation(result, scenario.requests);
  EXPECT_GT(result.faults.stragglers, 0u);
  EXPECT_DOUBLE_EQ(result.outcome.completion_rate(), 1.0);

  ScenarioOptions clean = scenario;
  clean.faults = sim::FaultPlanOptions{};
  const ScenarioResult baseline = run_scenario(clean);
  EXPECT_GT(result.outcome.mean_end_to_end_ms(),
            baseline.outcome.mean_end_to_end_ms());
}

// ---------------------------------------------------------------------------
// Determinism across faulted runs.
// ---------------------------------------------------------------------------

TEST(fault_injection, EveryFaultClassReplaysBitIdenticallyPerSeed) {
  std::vector<std::pair<const char*, ScenarioOptions>> scenarios;
  {
    ScenarioOptions s;
    s.faults.bus_drop_rate = 0.2;
    scenarios.emplace_back("drop", s);
  }
  {
    ScenarioOptions s;
    s.faults.bus_duplicate_rate = 0.5;
    scenarios.emplace_back("duplicate", s);
  }
  {
    ScenarioOptions s;
    s.faults.bus_delay_rate = 0.5;
    scenarios.emplace_back("delay", s);
  }
  {
    ScenarioOptions s;
    s.faults.provision_failure_rate = 0.4;
    scenarios.emplace_back("provision-fail", s);
  }
  {
    ScenarioOptions s;
    s.faults.worker_crash_rate = 0.4;
    scenarios.emplace_back("worker-crash", s);
  }
  {
    ScenarioOptions s;
    s.faults.host_outage_rate_per_hour = 600.0;
    s.faults.host_downtime = sim::Duration::from_seconds(2);
    s.hosts = 3;
    scenarios.emplace_back("host-outage", s);
  }
  {
    ScenarioOptions s;
    s.faults.bus_drop_rate = 0.3;
    s.recovery = false;
    scenarios.emplace_back("drop-no-recovery", s);
  }

  for (auto& [name, scenario] : scenarios) {
    for (const std::uint64_t seed : {7u, 21u}) {
      scenario.seed = seed;
      const ScenarioResult first = run_scenario(scenario);
      const ScenarioResult second = run_scenario(scenario);
      EXPECT_EQ(first.digest, second.digest)
          << "scenario " << name << " seed " << seed;
      EXPECT_EQ(first.faults.total(), second.faults.total())
          << "scenario " << name << " seed " << seed;
      EXPECT_EQ(first.outcome.failed_count(), second.outcome.failed_count())
          << "scenario " << name << " seed " << seed;
    }
  }
}

TEST(fault_injection, InertFaultOptionsDoNotPerturbTheRun) {
  // Shape-only fields (extra delay, downtime, multiplier) with all rates at
  // zero must leave the engine on the exact fault-free code path: no Rng
  // fork, identical digest.
  ScenarioOptions plain;
  ScenarioOptions inert;
  inert.faults.bus_extra_delay = sim::Duration::from_millis(123);
  inert.faults.host_downtime = sim::Duration::from_seconds(99);
  inert.faults.straggler_multiplier = 9.0;
  EXPECT_EQ(run_scenario(plain).digest, run_scenario(inert).digest);
}

// ---------------------------------------------------------------------------
// Keep-alive cancellation regression.
// ---------------------------------------------------------------------------

TEST(fault_injection, KeepAliveTimersDieWithTheirWorkers) {
  // A pooled warm worker killed by a host outage must take its keep-alive
  // timer with it.  Before the fix, the timer stayed queued for the dead
  // worker: reclaim_worker would later shrug it off, but the stale event
  // kept the simulator alive and keep_alive_event_count() drifted away from
  // the pool.  The accessor-vs-pool equality below is the regression net.
  DispatchManagerOptions options;
  options.kind = PlatformKind::XanaduCold;
  options.seed = 5;
  options.cluster.host_count = 1;
  options.faults.host_outage_rate_per_hour = 120.0;  // mean gap 30 s
  options.faults.host_downtime = sim::Duration::from_seconds(1);
  DispatchManager manager{options};

  const std::size_t chain = 3;
  const auto wf = manager.deploy(scenario_dag(chain));
  const auto result = manager.invoke(wf);
  ASSERT_FALSE(result.failed) << result.failure_reason;

  platform::PlatformEngine& engine = manager.engine();
  auto pooled_warm = [&] {
    std::size_t total = 0;
    for (std::size_t node = 0; node < chain; ++node) {
      total += engine.warm_count(engine.function_id(wf, common::NodeId{node}));
    }
    return total;
  };
  // The completed request left its workers pooled, one timer each.
  EXPECT_GT(pooled_warm(), 0u);
  EXPECT_EQ(engine.keep_alive_event_count(), pooled_warm());

  // Exactly one outage is still pending (drawn while the request was live).
  // Run it down: on the single host it must kill every pooled worker.
  sim::Simulator& sim = manager.simulator();
  const std::uint64_t outages_before = manager.fault_counters().host_outages;
  const sim::TimePoint deadline = sim.now() + sim::Duration::from_minutes(5);
  while (manager.fault_counters().host_outages == outages_before &&
         sim.now() < deadline && sim.pending() > 0) {
    sim.run_until(sim.now() + sim::Duration::from_seconds(1));
  }
  ASSERT_GT(manager.fault_counters().host_outages, outages_before);
  EXPECT_EQ(pooled_warm(), 0u);
  // The regression: dead workers' timers must be cancelled, not orphaned.
  EXPECT_EQ(engine.keep_alive_event_count(), 0u);
}

// ---------------------------------------------------------------------------
// Property sweep: fault rate x seeds.
// ---------------------------------------------------------------------------

class FaultSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(FaultSweepTest, ConservationAndLedgerHoldAcrossSeeds) {
  const double rate = GetParam();
  AuditGuard guard;
  for (const std::uint64_t seed : {11u, 12u, 13u, 14u, 15u}) {
    ScenarioOptions scenario;
    scenario.seed = seed;
    // Mix every class, scaled so the bus rates stay a valid partition.
    scenario.faults.bus_drop_rate = rate * 0.3;
    scenario.faults.bus_duplicate_rate = rate * 0.2;
    scenario.faults.bus_delay_rate = rate * 0.5;
    scenario.faults.provision_failure_rate = rate * 0.4;
    scenario.faults.worker_crash_rate = rate * 0.4;
    scenario.faults.straggler_rate = rate;
    scenario.faults.host_outage_rate_per_hour = rate * 100.0;
    const ScenarioResult result = run_scenario(scenario);

    expect_conservation(result, scenario.requests);
    if (rate == 0.0) {
      EXPECT_DOUBLE_EQ(result.outcome.completion_rate(), 1.0);
      EXPECT_EQ(result.faults.total(), 0u);
    }
    // C_R quantities can only accrue, never run negative, faults or not.
    const cluster::ResourceLedger& delta = result.outcome.ledger_delta;
    EXPECT_GE(delta.provision_cpu_core_seconds, 0.0) << "seed " << seed;
    EXPECT_GE(delta.idle_cpu_core_seconds, 0.0) << "seed " << seed;
    EXPECT_GE(delta.idle_memory_mb_seconds, 0.0) << "seed " << seed;
    EXPECT_GE(delta.pre_use_idle_cpu_core_seconds, 0.0) << "seed " << seed;
    EXPECT_GE(delta.pre_use_memory_mb_seconds, 0.0) << "seed " << seed;
  }
  // No engine invariant may fire no matter how hostile the fault plan.
  EXPECT_EQ(sim::audit::log().total(), 0u) << sim::audit::log().summary();
}

INSTANTIATE_TEST_SUITE_P(rates, FaultSweepTest,
                         ::testing::Values(0.0, 0.01, 0.1, 0.5),
                         [](const ::testing::TestParamInfo<double>& info) {
                           if (info.param == 0.0) return std::string{"r0"};
                           if (info.param == 0.01) return std::string{"r001"};
                           if (info.param == 0.1) return std::string{"r010"};
                           return std::string{"r050"};
                         });

TEST(fault_injection, DelayRateDegradesColdStartsMonotonically) {
  // Delay-only plans never strand anything, and FaultPlan spends exactly one
  // uniform draw per message: at a fixed seed the set of delayed messages at
  // a lower rate is a subset of the set at a higher rate.  Mean C_D over
  // sequential cold trials must therefore be non-decreasing in the rate.
  const double rates[] = {0.01, 0.1, 0.5};
  for (const std::uint64_t seed : {3u, 4u, 5u}) {
    double previous = -1.0;
    for (const double rate : rates) {
      DispatchManagerOptions options;
      options.kind = PlatformKind::XanaduCold;
      options.seed = seed;
      platform::PlatformCalibration calibration =
          platform::xanadu_calibration();
      calibration.control_bus.enabled = true;
      options.calibration = calibration;
      options.faults.bus_delay_rate = rate;
      options.faults.bus_extra_delay = sim::Duration::from_millis(250);
      DispatchManager manager{options};
      const auto wf = manager.deploy(scenario_dag(3));
      const workload::RunOutcome outcome =
          workload::run_cold_trials(manager, wf, 6);
      EXPECT_EQ(outcome.failed_count(), 0u);
      const double mean_cd = outcome.mean_overhead_ms();
      EXPECT_GE(mean_cd, previous - 1e-9)
          << "seed " << seed << " rate " << rate;
      previous = mean_cd;
    }
  }
}

// ---------------------------------------------------------------------------
// Aggregate semantics under failure (PR 3 regression guards).
// ---------------------------------------------------------------------------

TEST(fault_injection, FailedRequestsDoNotSkewPerRequestAggregates) {
  // Synthetic outcome: two completed requests with known stats plus two
  // failed ones.  The per-request aggregates must average over the two
  // completed requests only -- the pre-fix behaviour divided by four,
  // halving every value and making failure read as speedup.
  platform::RequestResult ok;
  ok.overhead = sim::Duration::from_millis(100);
  ok.end_to_end = sim::Duration::from_millis(250);
  ok.cold_starts = 4;
  ok.workers_provisioned = 3;
  ok.speculation.missed_nodes = 2;

  platform::RequestResult bad;
  bad.failed = true;
  // Failed requests do accrue cold starts and workers before stranding
  // (fail_request copies the partial counters); they still must not enter
  // the per-request means.
  bad.cold_starts = 9;
  bad.workers_provisioned = 9;
  bad.speculation.missed_nodes = 1;

  workload::RunOutcome outcome;
  outcome.results = {ok, ok, bad, bad};
  EXPECT_EQ(outcome.completed_count(), 2u);
  EXPECT_DOUBLE_EQ(outcome.mean_overhead_ms(), 100.0);
  EXPECT_DOUBLE_EQ(outcome.mean_end_to_end_ms(), 250.0);
  EXPECT_DOUBLE_EQ(outcome.mean_cold_starts(), 4.0);
  EXPECT_DOUBLE_EQ(outcome.mean_workers_per_request(), 3.0);
  EXPECT_DOUBLE_EQ(outcome.fraction_over(sim::Duration::from_millis(50)),
                   1.0);
  EXPECT_DOUBLE_EQ(outcome.fraction_over(sim::Duration::from_millis(150)),
                   0.0);
  // Speculative waste is charged over ALL requests: a miss wastes real
  // provisioning work whether or not the request later failed.
  EXPECT_DOUBLE_EQ(outcome.mean_missed_nodes(), (2 + 2 + 1 + 1) / 4.0);

  // Degenerate all-failed outcome: defined zeros, never NaN.
  workload::RunOutcome all_failed;
  all_failed.results = {bad, bad};
  EXPECT_DOUBLE_EQ(all_failed.mean_overhead_ms(), 0.0);
  EXPECT_DOUBLE_EQ(all_failed.mean_end_to_end_ms(), 0.0);
  EXPECT_DOUBLE_EQ(all_failed.mean_cold_starts(), 0.0);
  EXPECT_DOUBLE_EQ(all_failed.mean_workers_per_request(), 0.0);
  EXPECT_DOUBLE_EQ(all_failed.fraction_over(sim::Duration::zero()), 0.0);
}

TEST(fault_injection, FaultedRunAggregatesAverageOverCompletedOnly) {
  // End to end: certain provisioning failure without recovery strands some
  // requests while others (fully warm path) complete.  The reported means
  // must match a by-hand average over the completed subset.
  ScenarioOptions scenario;
  // 0.3 per provision: with 3 cold provisions per request, a request
  // completes with probability ~0.34, so 6 requests almost surely produce
  // both a completed and a stranded subset (0.5 made completions a coin
  // flip and the test hostage to the exact draw sequence).
  scenario.faults.provision_failure_rate = 0.3;
  scenario.recovery = false;
  const ScenarioResult result = run_scenario(scenario);
  expect_conservation(result, scenario.requests);
  ASSERT_GT(result.outcome.failed_count(), 0u)
      << "scenario must strand at least one request to be discriminating";
  ASSERT_GT(result.outcome.completed_count(), 0u)
      << "scenario must complete at least one request to be discriminating";

  double overhead = 0.0;
  double cold = 0.0;
  double workers = 0.0;
  for (const auto& r : result.outcome.results) {
    if (r.failed) continue;
    overhead += r.overhead.millis();
    cold += static_cast<double>(r.cold_starts);
    workers += static_cast<double>(r.workers_provisioned);
  }
  const auto n = static_cast<double>(result.outcome.completed_count());
  EXPECT_DOUBLE_EQ(result.outcome.mean_overhead_ms(), overhead / n);
  EXPECT_DOUBLE_EQ(result.outcome.mean_cold_starts(), cold / n);
  EXPECT_DOUBLE_EQ(result.outcome.mean_workers_per_request(), workers / n);
}

TEST(fault_injection, StrandedRequestsFailAtExactlyTheStallHorizon) {
  // Total bus loss with recovery disabled strands every request; the run
  // harness must fail them AT the stall horizon, not up to a full 1 s
  // stride past it.  The horizon is deliberately not a whole number of
  // seconds so the pre-fix overshoot (run_until(now + 1 s) sailing past)
  // would be caught.
  DispatchManagerOptions options;
  options.kind = PlatformKind::XanaduJit;
  options.seed = 42;
  platform::PlatformCalibration calibration = platform::xanadu_calibration();
  calibration.control_bus.enabled = true;
  options.calibration = calibration;
  options.faults.bus_drop_rate = 1.0;
  // A nonzero outage rate keeps a recurring host-outage event in the queue,
  // so the stall loop is bounded by the horizon rather than by the queue
  // draining -- exactly the case the clamped stride exists for.
  options.faults.host_outage_rate_per_hour = 0.5;
  options.recovery.enabled = false;
  DispatchManager manager{options};
  const auto wf = manager.deploy(scenario_dag(3));

  workload::RunOptions run;
  run.allow_incomplete = true;
  run.force_cold_each_request = true;
  run.stall_horizon = sim::Duration::from_millis(90'250);

  const workload::ArrivalSchedule schedule =
      workload::fixed_interval(4, sim::Duration::from_seconds(2));
  const sim::TimePoint base = manager.simulator().now();
  const sim::TimePoint horizon = base + schedule.back() + run.stall_horizon;

  const workload::RunOutcome outcome =
      workload::run_schedule(manager, wf, schedule, run);

  EXPECT_EQ(outcome.completed_count(), 0u);
  EXPECT_EQ(outcome.failed_count(), schedule.size());
  EXPECT_EQ(manager.simulator().now().micros(), horizon.micros())
      << "stall loop overshot (or undershot) the horizon";
  for (const auto& r : outcome.results) {
    ASSERT_TRUE(r.failed);
    EXPECT_EQ(r.completed.micros(), horizon.micros())
        << "stranded request failed past the horizon";
    EXPECT_NE(r.failure_reason.find("stranded"), std::string::npos);
  }
}

// ---------------------------------------------------------------------------
// Policy hook ordering under faults (policy-lab contract).
// ---------------------------------------------------------------------------

/// Flattens every policy hook into a string sequence so faulted replays can
/// be compared event for event.
struct HookRecorder final : platform::ProvisionPolicy {
  std::vector<std::string> events;
  std::size_t worker_ready = 0;

  void on_attach(platform::PlatformEngine&,
                 const platform::PolicyView&) override {
    events.push_back("attach");
  }
  void on_request_submitted(platform::PlatformEngine&,
                            platform::RequestContext&) override {
    events.push_back("submit");
  }
  void on_node_triggered(platform::PlatformEngine&, platform::RequestContext&,
                         common::NodeId node) override {
    events.push_back("trigger:" + std::to_string(node.value()));
  }
  void on_node_exec_start(platform::PlatformEngine&, platform::RequestContext&,
                          common::NodeId node) override {
    events.push_back("exec:" + std::to_string(node.value()));
  }
  void on_worker_ready(platform::PlatformEngine&, common::WorkflowId,
                       common::NodeId node, sim::Duration) override {
    ++worker_ready;
    events.push_back("ready:" + std::to_string(node.value()));
  }
  void on_node_completed(platform::PlatformEngine&, platform::RequestContext&,
                         common::NodeId node) override {
    events.push_back("done:" + std::to_string(node.value()));
  }
  void on_xor_resolved(platform::PlatformEngine&, platform::RequestContext&,
                       common::NodeId parent, common::NodeId chosen) override {
    events.push_back("xor:" + std::to_string(parent.value()) + "->" +
                     std::to_string(chosen.value()));
  }
  void on_node_skipped(platform::PlatformEngine&, platform::RequestContext&,
                       common::NodeId node) override {
    events.push_back("skip:" + std::to_string(node.value()));
  }
  void on_request_completed(platform::PlatformEngine&,
                            platform::RequestContext&,
                            platform::RequestResult&) override {
    events.push_back("complete");
  }
};

TEST(fault_injection, CrashedWhileProvisioningNeverFiresWorkerReady) {
  // on_worker_ready's contract: only builds that actually complete reach the
  // hook.  With every build failing, the recovery layer retries and then
  // fails the request over -- and the policy must see zero ready events.
  HookRecorder recorder;
  sim::Simulator sim;
  cluster::Cluster cluster{cluster::ClusterOptions{}, common::Rng{3}};
  platform::PlatformCalibration calib = platform::xanadu_calibration();
  calib.faults.provision_failure_rate = 1.0;
  calib.recovery.enabled = true;
  platform::PlatformEngine engine{sim, cluster, calib, &recorder,
                                  common::Rng{42}};
  const auto wf = engine.register_workflow(scenario_dag(2));

  const platform::RequestResult result = engine.run_one(wf);
  EXPECT_TRUE(result.failed);
  EXPECT_EQ(recorder.worker_ready, 0u);
  EXPECT_GT(engine.fault_plan().counters().provision_failures, 0u);
  // The lifecycle hooks around the failure still fire in order.
  ASSERT_FALSE(recorder.events.empty());
  EXPECT_EQ(recorder.events.front(), "attach");
  EXPECT_EQ(recorder.events.back(), "complete");
}

TEST(fault_injection, HookSequencesAreIdenticalAcrossFaultedSeedReplays) {
  // The policy-lab determinism contract under chaos: same seed + same fault
  // plan => the policy observes the exact same hook sequence, including the
  // XOR resolutions and skips on the faulted path.
  auto run = [](std::uint64_t seed) {
    HookRecorder recorder;
    sim::Simulator sim;
    cluster::Cluster cluster{cluster::ClusterOptions{}, common::Rng{3}};
    platform::PlatformCalibration calib = platform::xanadu_calibration();
    calib.faults.provision_failure_rate = 0.3;
    calib.faults.worker_crash_rate = 0.2;
    calib.recovery.enabled = true;
    platform::PlatformEngine engine{sim, cluster, calib, &recorder,
                                    common::Rng{seed}};

    workflow::WorkflowDag dag{"faulted-xor"};
    workflow::FunctionSpec spec;
    spec.exec_time = sim::Duration::from_millis(150);
    spec.name = "root";
    const auto root = dag.add_node(spec, workflow::DispatchMode::Xor);
    spec.name = "left";
    const auto left = dag.add_node(spec);
    spec.name = "right";
    const auto right = dag.add_node(spec);
    dag.add_edge(root, left, 0.5);
    dag.add_edge(root, right, 0.5);
    dag.validate();
    const auto wf = engine.register_workflow(std::move(dag));

    std::uint64_t faults = 0;
    for (int i = 0; i < 6; ++i) (void)engine.run_one(wf);
    faults = engine.fault_plan().counters().total();
    return std::make_pair(recorder.events, faults);
  };

  const auto [first, faults_first] = run(1234);
  const auto [replay, faults_replay] = run(1234);
  EXPECT_GT(faults_first, 0u) << "fault plan never fired; test is vacuous";
  EXPECT_EQ(faults_first, faults_replay);
  EXPECT_EQ(first, replay);

  // Each xor resolution is eventually followed by the matching skip, faulted
  // retries notwithstanding.
  std::size_t xors = 0;
  std::size_t skips = 0;
  for (const std::string& e : first) {
    if (e.rfind("xor:", 0) == 0) ++xors;
    if (e.rfind("skip:", 0) == 0) ++skips;
  }
  EXPECT_GT(xors, 0u);
  EXPECT_EQ(xors, skips);
}

}  // namespace
}  // namespace xanadu
