// Streaming-vs-batch equivalence property suite.
//
// The run harnesses fold every result through metrics::StreamingTrace as it
// completes (RunOutcome::streamed); the pre-existing batch path -- retain
// every RequestResult, then recompute -- survives as the reference.  This
// suite drives randomized workloads (sizes 1..10k, faults on and off,
// single-tenant and multi-tenant mixes) through both and demands EXACT
// equality, not approximation:
//
//   * the incremental trace digest equals metrics::trace_digest() over the
//     retained result vector (aggregate and every per-tenant lane),
//   * every RunOutcome aggregate accessor equals the batch recompute
//     bit-for-bit (the streamed sums fold in the same order as the batch
//     loops), including the completed-denominator vs full-denominator
//     distinction on faulted runs,
//   * a retention-off replay (results discarded, reorder-window fold)
//     reproduces the retention-on run's digest and aggregates exactly.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/dispatch_manager.hpp"
#include "metrics/streaming.hpp"
#include "metrics/trace.hpp"
#include "platform/calibration.hpp"
#include "workflow/builders.hpp"
#include "workload/arrivals.hpp"
#include "workload/runner.hpp"
#include "workload/traffic_mix.hpp"

namespace xanadu::workload {
namespace {

using core::DispatchManager;
using core::DispatchManagerOptions;
using core::PlatformKind;

DispatchManager make_manager(PlatformKind kind, std::uint64_t seed,
                             bool faults) {
  DispatchManagerOptions options;
  options.kind = kind;
  options.seed = seed;
  if (faults) {
    platform::PlatformCalibration calibration = platform::xanadu_calibration();
    calibration.control_bus.enabled = true;
    options.calibration = calibration;
    options.faults.provision_failure_rate = 0.2;
    options.faults.worker_crash_rate = 0.1;
    options.recovery.enabled = false;  // Strands become clean failures.
  }
  return DispatchManager{options};
}

/// The batch reference: a copy of the outcome with the streamed flag off, so
/// every accessor recomputes from the retained results via the original
/// batch loops.
RunOutcome batch_view(const RunOutcome& streamed) {
  RunOutcome batch;
  batch.results = streamed.results;
  batch.streamed = false;
  return batch;
}

/// Streamed accessors must equal the batch recompute EXACTLY (operator== on
/// doubles): the streaming consumer folds the same sums in the same order.
void expect_aggregates_match(const RunOutcome& streamed,
                             sim::Duration threshold) {
  ASSERT_TRUE(streamed.streamed);
  const RunOutcome batch = batch_view(streamed);
  EXPECT_EQ(streamed.total_count(), batch.total_count());
  EXPECT_EQ(streamed.failed_count(), batch.failed_count());
  EXPECT_EQ(streamed.completed_count(), batch.completed_count());
  EXPECT_EQ(streamed.completion_rate(), batch.completion_rate());
  EXPECT_EQ(streamed.mean_overhead_ms(), batch.mean_overhead_ms());
  EXPECT_EQ(streamed.mean_end_to_end_ms(), batch.mean_end_to_end_ms());
  EXPECT_EQ(streamed.mean_cold_starts(), batch.mean_cold_starts());
  EXPECT_EQ(streamed.mean_workers_per_request(),
            batch.mean_workers_per_request());
  EXPECT_EQ(streamed.mean_missed_nodes(), batch.mean_missed_nodes());
  // Exact at the streamed threshold; the retained path must agree.
  EXPECT_EQ(streamed.fraction_over(threshold), batch.fraction_over(threshold));
  // At a foreign threshold the streamed outcome falls back to the retained
  // results, so equality is trivial but pins the dispatch logic.
  const sim::Duration other = threshold + sim::Duration::from_millis(37);
  EXPECT_EQ(streamed.fraction_over(other), batch.fraction_over(other));
}

void expect_digest_matches(const RunOutcome& streamed,
                           const workflow::WorkflowDag& dag) {
  EXPECT_EQ(streamed.trace_digest,
            metrics::trace_digest(streamed.results, dag));
}

/// The full-denominator distinction: mean_missed_nodes divides by all
/// triggered requests, the per-request means by completed only.  On a run
/// with failures the two denominators must actually differ.
void expect_denominator_distinction(const RunOutcome& outcome) {
  ASSERT_GT(outcome.failed_count(), 0u);
  EXPECT_LT(outcome.completed_count(), outcome.total_count());
  EXPECT_EQ(outcome.stats.completed(), outcome.completed_count());
  EXPECT_EQ(outcome.stats.total,
            static_cast<std::uint64_t>(outcome.total_count()));
}

// ---------------------------------------------------------------------------
// Single-tenant randomized sweep.
// ---------------------------------------------------------------------------

TEST(StreamingEquivalence, RandomizedSingleTenantRuns) {
  common::Rng meta{0x57ea111ULL};
  const PlatformKind kinds[] = {PlatformKind::KnativeLike,
                                PlatformKind::XanaduJit,
                                PlatformKind::XanaduSpeculative};
  for (std::size_t trial = 0; trial < 8; ++trial) {
    const std::size_t requests = 1 + meta.uniform_int(400);
    const std::uint64_t seed = meta.next();
    const PlatformKind kind = kinds[meta.uniform_int(3)];
    const bool faults = meta.bernoulli(0.5);
    SCOPED_TRACE("trial " + std::to_string(trial) + ": " +
                 std::to_string(requests) + " requests, faults " +
                 std::to_string(faults));

    const workflow::WorkflowDag dag =
        workflow::linear_chain(3, workflow::BuildOptions{});
    RunOptions run;
    run.allow_incomplete = faults;
    run.drain_after_last = faults;
    const ArrivalSchedule schedule =
        fixed_interval(requests, sim::Duration::from_millis(250));

    auto manager = make_manager(kind, seed, faults);
    const auto wf = manager.deploy(workflow::linear_chain(3, workflow::BuildOptions{}));
    const RunOutcome retained = run_schedule(manager, wf, schedule, run);

    ASSERT_TRUE(retained.streamed);
    ASSERT_EQ(retained.results.size(), requests);
    expect_digest_matches(retained, dag);
    expect_aggregates_match(retained, retained.stats.threshold);

    // Retention-off replay of the same seed: identical digest and
    // aggregates with zero retained results.
    auto replay_manager = make_manager(kind, seed, faults);
    const auto replay_wf =
        replay_manager.deploy(workflow::linear_chain(3, workflow::BuildOptions{}));
    RunOptions slim = run;
    slim.retain_results = false;
    const RunOutcome slimmed =
        run_schedule(replay_manager, replay_wf, schedule, slim);
    EXPECT_TRUE(slimmed.results.empty());
    EXPECT_EQ(slimmed.trace_digest, retained.trace_digest);
    EXPECT_EQ(slimmed.total_count(), retained.total_count());
    EXPECT_EQ(slimmed.failed_count(), retained.failed_count());
    EXPECT_EQ(slimmed.mean_overhead_ms(), retained.mean_overhead_ms());
    EXPECT_EQ(slimmed.mean_end_to_end_ms(), retained.mean_end_to_end_ms());
    EXPECT_EQ(slimmed.mean_cold_starts(), retained.mean_cold_starts());
    EXPECT_EQ(slimmed.mean_workers_per_request(),
              retained.mean_workers_per_request());
    EXPECT_EQ(slimmed.mean_missed_nodes(), retained.mean_missed_nodes());
    EXPECT_EQ(slimmed.fraction_over(slimmed.stats.threshold),
              retained.fraction_over(retained.stats.threshold));
  }
}

TEST(StreamingEquivalence, TenThousandRequestRun) {
  const workflow::WorkflowDag dag =
      workflow::linear_chain(2, workflow::BuildOptions{});
  auto manager = make_manager(PlatformKind::XanaduJit, 42, /*faults=*/false);
  const auto wf =
      manager.deploy(workflow::linear_chain(2, workflow::BuildOptions{}));
  const RunOutcome outcome = run_schedule(
      manager, wf, fixed_interval(10'000, sim::Duration::from_millis(20)));
  ASSERT_EQ(outcome.results.size(), 10'000u);
  expect_digest_matches(outcome, dag);
  expect_aggregates_match(outcome, outcome.stats.threshold);
  EXPECT_GT(outcome.histogram.count(), 0u);
}

TEST(StreamingEquivalence, FaultedRunKeepsDenominatorsDistinct) {
  // Forced failures: recovery off + provisioning faults.  The streamed
  // stats must track both denominators (all-triggered vs completed-only).
  const workflow::WorkflowDag dag =
      workflow::linear_chain(3, workflow::BuildOptions{});
  auto manager = make_manager(PlatformKind::XanaduJit, 1337, /*faults=*/true);
  const auto wf =
      manager.deploy(workflow::linear_chain(3, workflow::BuildOptions{}));
  RunOptions run;
  run.allow_incomplete = true;
  run.drain_after_last = true;
  run.force_cold_each_request = true;  // Every request provisions => faults.
  const RunOutcome outcome = run_schedule(
      manager, wf, fixed_interval(40, sim::Duration::from_seconds(2)), run);
  expect_digest_matches(outcome, dag);
  expect_aggregates_match(outcome, outcome.stats.threshold);
  expect_denominator_distinction(outcome);
}

// ---------------------------------------------------------------------------
// Multi-tenant mixes: per-source lanes must match per-source batch digests
// and aggregates.
// ---------------------------------------------------------------------------

TEST(StreamingEquivalence, RandomizedMultiTenantMixes) {
  common::Rng meta{0x3a1bf00dULL};
  for (std::size_t trial = 0; trial < 4; ++trial) {
    const std::uint64_t seed = meta.next();
    const bool faults = trial % 2 == 1;
    SCOPED_TRACE("trial " + std::to_string(trial));

    std::vector<workflow::WorkflowDag> dags;
    dags.push_back(workflow::linear_chain(2, workflow::BuildOptions{}));
    dags.push_back(workflow::linear_chain(4, workflow::BuildOptions{}));
    dags.push_back(workflow::linear_chain(3, workflow::BuildOptions{}));

    auto manager = make_manager(PlatformKind::XanaduJit, seed, faults);
    std::vector<common::WorkflowId> ids;
    for (const auto& dag : dags) {
      workflow::WorkflowDag copy = dag;
      ids.push_back(manager.deploy(std::move(copy)));
    }
    common::Rng arrivals{seed ^ 0xabcdULL};
    const TrafficMix mix = poisson_mix(
        {{ids[0], "alpha", 2.0}, {ids[1], "beta", 1.0}, {ids[2], "gamma", 3.0}},
        sim::Duration::from_millis(150), sim::Duration::from_seconds(20),
        arrivals);
    RunOptions run;
    run.allow_incomplete = faults;
    run.drain_after_last = faults;
    const MixedOutcome outcome = run_mixed_schedule(manager, mix, run);

    expect_aggregates_match(outcome.aggregate,
                            outcome.aggregate.stats.threshold);
    std::uint64_t per_source_total = 0;
    for (std::size_t s = 0; s < outcome.per_source.size(); ++s) {
      SCOPED_TRACE("source " + outcome.source_names[s]);
      const RunOutcome& src = outcome.per_source[s];
      ASSERT_TRUE(src.streamed);
      expect_digest_matches(src, dags[s]);
      expect_aggregates_match(src, src.stats.threshold);
      per_source_total += src.total_count();
    }
    EXPECT_EQ(per_source_total, outcome.aggregate.total_count());

    // Retention-off replay: per-tenant digests and splits must reproduce.
    auto replay_manager = make_manager(PlatformKind::XanaduJit, seed, faults);
    std::vector<common::WorkflowId> replay_ids;
    for (const auto& dag : dags) {
      workflow::WorkflowDag copy = dag;
      replay_ids.push_back(replay_manager.deploy(std::move(copy)));
    }
    common::Rng replay_arrivals{seed ^ 0xabcdULL};
    const TrafficMix replay_mix =
        poisson_mix({{replay_ids[0], "alpha", 2.0},
                     {replay_ids[1], "beta", 1.0},
                     {replay_ids[2], "gamma", 3.0}},
                    sim::Duration::from_millis(150),
                    sim::Duration::from_seconds(20), replay_arrivals);
    RunOptions slim = run;
    slim.retain_results = false;
    const MixedOutcome slimmed =
        run_mixed_schedule(replay_manager, replay_mix, slim);
    EXPECT_TRUE(slimmed.aggregate.results.empty());
    EXPECT_EQ(slimmed.aggregate.trace_digest, outcome.aggregate.trace_digest);
    ASSERT_EQ(slimmed.per_source.size(), outcome.per_source.size());
    for (std::size_t s = 0; s < slimmed.per_source.size(); ++s) {
      SCOPED_TRACE("source " + slimmed.source_names[s]);
      const RunOutcome& a = slimmed.per_source[s];
      const RunOutcome& b = outcome.per_source[s];
      EXPECT_TRUE(a.results.empty());
      EXPECT_EQ(a.trace_digest, b.trace_digest);
      EXPECT_EQ(a.total_count(), b.total_count());
      EXPECT_EQ(a.failed_count(), b.failed_count());
      EXPECT_EQ(a.mean_overhead_ms(), b.mean_overhead_ms());
      EXPECT_EQ(a.mean_end_to_end_ms(), b.mean_end_to_end_ms());
      EXPECT_EQ(a.mean_cold_starts(), b.mean_cold_starts());
      EXPECT_EQ(a.mean_missed_nodes(), b.mean_missed_nodes());
    }
  }
}

// ---------------------------------------------------------------------------
// Streaming building blocks.
// ---------------------------------------------------------------------------

TEST(StreamingTraceTest, RingKeepsMostRecentResults) {
  const workflow::WorkflowDag dag =
      workflow::linear_chain(1, workflow::BuildOptions{});
  metrics::StreamOptions options;
  options.ring_capacity = 3;
  metrics::StreamingTrace stream{options};
  const std::size_t source = stream.add_source(dag, "ring");
  for (std::size_t i = 0; i < 7; ++i) {
    platform::RequestResult result;
    result.id = common::RequestId{i + 1};
    result.node_records.resize(1);
    result.node_records[0].status = platform::NodeStatus::Completed;
    stream.consume(source, result);
  }
  const std::vector<platform::RequestResult> recent = stream.recent();
  ASSERT_EQ(recent.size(), 3u);
  EXPECT_EQ(recent[0].id.value(), 5u);
  EXPECT_EQ(recent[1].id.value(), 6u);
  EXPECT_EQ(recent[2].id.value(), 7u);
}

TEST(LatencyHistogramTest, QuantilesAndFractionAbove) {
  metrics::LatencyHistogram hist{/*bin_width_ms=*/1.0, /*bins=*/10};
  for (int i = 0; i < 90; ++i) hist.record(0.5);  // bin 0
  for (int i = 0; i < 9; ++i) hist.record(5.5);   // bin 5
  hist.record(123.0);                             // overflow
  EXPECT_EQ(hist.count(), 100u);
  EXPECT_EQ(hist.overflow(), 1u);
  EXPECT_EQ(hist.quantile_ms(0.5), 1.0);    // upper edge of bin 0
  EXPECT_EQ(hist.quantile_ms(0.95), 6.0);   // upper edge of bin 5
  EXPECT_EQ(hist.quantile_ms(1.0), 123.0);  // overflow => exact max
  EXPECT_EQ(hist.fraction_above(1.0), 0.10);
  EXPECT_EQ(hist.fraction_above(50.0), 0.01);
}

TEST(LatencyHistogramTest, FractionAboveIsStrictAtExactBinEdges) {
  // Boundary-semantics pin (regression): record() puts a sample v into bin
  // floor(v / w), so a threshold sitting exactly on the bin edge k*w must
  // EXCLUDE bin k -- its samples can equal the threshold, and the exact
  // paths (RunStats::consume, RunOutcome::fraction_over) count only
  // overhead strictly greater than the threshold.  The pre-fix ceil()
  // included bin k, silently flipping the streamed estimate from ">" to
  // ">=" whenever the threshold was a bin-width multiple (the default
  // 100 ms threshold against 1 ms bins, for instance).
  metrics::LatencyHistogram hist{/*bin_width_ms=*/1.0, /*bins=*/10};
  for (int i = 0; i < 3; ++i) hist.record(2.0);  // bin 2, strictly below
  for (int i = 0; i < 4; ++i) hist.record(5.0);  // bin 5, EQUAL to threshold
  for (int i = 0; i < 3; ++i) hist.record(6.0);  // bin 6, strictly above

  // Exact reference: strict > over the raw samples.
  EXPECT_DOUBLE_EQ(hist.fraction_above(5.0), 0.3);
  // One bin lower the equal-to-threshold samples are above again.
  EXPECT_DOUBLE_EQ(hist.fraction_above(4.0), 0.7);
  // Edge cases: zero threshold excludes bin 0; negative thresholds count
  // everything; past-the-end thresholds count only overflow.
  metrics::LatencyHistogram zeros{1.0, 4};
  zeros.record(0.0);
  zeros.record(0.0);
  zeros.record(1.0);
  EXPECT_DOUBLE_EQ(zeros.fraction_above(0.0), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(zeros.fraction_above(-1.0), 1.0);
  EXPECT_DOUBLE_EQ(zeros.fraction_above(100.0), 0.0);

  // The streamed estimate now agrees with the exact strict-> counter for
  // bin-edge thresholds: RunStats counts overhead > threshold only.
  metrics::RunStats stats;
  stats.threshold = sim::Duration::from_millis(5);
  for (double v : {2.0, 2.0, 2.0, 5.0, 5.0, 5.0, 5.0, 6.0, 6.0, 6.0}) {
    platform::RequestResult result;
    result.overhead =
        sim::Duration::from_micros(static_cast<std::int64_t>(v * 1000));
    stats.consume(result);
  }
  EXPECT_DOUBLE_EQ(stats.fraction_over_threshold(), hist.fraction_above(5.0));
}

TEST(RunStatsTest, WelfordVarianceMatchesTwoPass) {
  metrics::RunStats stats;
  std::vector<double> samples{3.0, 7.5, 1.25, 9.0, 4.0, 4.0, 11.5};
  for (double v : samples) {
    platform::RequestResult result;
    result.overhead = sim::Duration::from_micros(static_cast<std::int64_t>(v * 1000));
    stats.consume(result);
  }
  double mean = 0.0;
  for (double v : samples) mean += v;
  mean /= static_cast<double>(samples.size());
  double m2 = 0.0;
  for (double v : samples) m2 += (v - mean) * (v - mean);
  const double two_pass = m2 / static_cast<double>(samples.size());
  EXPECT_NEAR(stats.overhead_variance(), two_pass, 1e-12);
  EXPECT_NEAR(stats.welford_mean, mean, 1e-12);
}

}  // namespace
}  // namespace xanadu::workload
