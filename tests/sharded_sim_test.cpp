// Sim-layer tests for the conservative parallel driver: LogicalProcess,
// ShardedSimulator's window/mailbox machinery, the run_before/peek_next_time
// primitives it is built on, and the EventFn small-buffer boundaries that the
// cross-shard mailbox relies on (messages move their callbacks between
// threads, so the inline/heap split and move-only semantics matter here).
//
// The workload-level determinism pins (full DispatchManager shards, control
// bus, digests across threads x seeds) live in sharded_determinism_test.cpp.

#include <gtest/gtest.h>

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "sim/event_fn.hpp"
#include "sim/logical_process.hpp"
#include "sim/shard.hpp"
#include "sim/sharded.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace xanadu::sim {
namespace {

using namespace xanadu::sim::literals;

// ---------------------------------------------- run_before / peek --------

TEST(sharded_window_primitives, PeekNextTimeEmptyIsNullopt) {
  Simulator sim;
  EXPECT_FALSE(sim.peek_next_time().has_value());
}

TEST(sharded_window_primitives, PeekNextTimeSkipsCancelledFront) {
  Simulator sim;
  const auto id = sim.schedule_at(TimePoint{1000}, [] {});
  sim.schedule_at(TimePoint{2000}, [] {});
  ASSERT_EQ(sim.peek_next_time(), TimePoint{1000});
  ASSERT_TRUE(sim.cancel(id));
  // The tombstone at the heap front is discarded on the way.
  EXPECT_EQ(sim.peek_next_time(), TimePoint{2000});
  EXPECT_EQ(sim.pending(), 1u);
}

TEST(sharded_window_primitives, RunBeforeIsStrictAndKeepsClockBehindBound) {
  Simulator sim;
  std::vector<std::uint64_t> fired;
  sim.schedule_at(TimePoint{10}, [&] { fired.push_back(10); });
  sim.schedule_at(TimePoint{20}, [&] { fired.push_back(20); });
  sim.schedule_at(TimePoint{30}, [&] { fired.push_back(30); });

  // Events at exactly the bound stay queued...
  EXPECT_EQ(sim.run_before(TimePoint{20}), 1u);
  EXPECT_EQ(fired, (std::vector<std::uint64_t>{10}));
  // ...and the clock sits at the last fired event, not at the bound, so a
  // later merge can still schedule into [now, bound).
  EXPECT_EQ(sim.now(), TimePoint{10});
  EXPECT_EQ(sim.peek_next_time(), TimePoint{20});

  EXPECT_EQ(sim.run_before(TimePoint{31}), 2u);
  EXPECT_EQ(fired, (std::vector<std::uint64_t>{10, 20, 30}));
  EXPECT_EQ(sim.run_before(TimePoint{1000}), 0u);
}

// --------------------------------------------------- driver contracts ----

TEST(sharded_driver, RejectsBadConfiguration) {
  EXPECT_THROW(ShardedSimulator({Duration::zero()}), std::invalid_argument);

  ShardedSimulator driver;
  EXPECT_EQ(driver.run(1), 0u);  // No shards: trivially done.

  Simulator a;
  LogicalProcess& lp = driver.add_shard(a);
  EXPECT_EQ(lp.shard(), ShardId{0});
  EXPECT_THROW(driver.run(0, {}), std::invalid_argument);

  // Unknown target / empty callback are rejected at send time.
  EXPECT_THROW(lp.send(ShardId{5}, TimePoint{1000}, [] {}),
               std::out_of_range);
  EXPECT_THROW(lp.send(ShardId{0}, TimePoint{1000}, EventFn{}),
               std::invalid_argument);

  // A send (even a rejected one that allocated lanes) freezes the topology.
  lp.send(ShardId{0}, TimePoint{1000}, [] {});
  Simulator b;
  EXPECT_THROW(driver.add_shard(b), std::logic_error);
}

TEST(sharded_driver, SetupSendsFlushBeforeFirstWindow) {
  ShardedSimulator driver({10_ms});
  Simulator a;
  Simulator b;
  LogicalProcess& lp_a = driver.add_shard(a);
  driver.add_shard(b);

  std::vector<std::uint64_t> hits;
  // Pre-run sends may land anywhere, including before the first window --
  // the lookahead contract only binds sends issued while a window is open.
  lp_a.send(ShardId{1}, TimePoint{500},
            [&] { hits.push_back(b.now().micros()); });
  EXPECT_EQ(lp_a.sent_count(), 1u);

  EXPECT_EQ(driver.run(1), 1u);
  EXPECT_EQ(hits, (std::vector<std::uint64_t>{500}));
  EXPECT_EQ(driver.messages_delivered(), 1u);
}

TEST(sharded_driver, MailboxMergesByTimeSourceIndex) {
  // Three sources race messages into shard 0 at colliding virtual times; the
  // merged firing order must be (when, source, index) regardless of the
  // real-time order the lanes were filled in.
  ShardedSimulator driver({5_ms});
  std::array<Simulator, 4> sims;
  std::vector<LogicalProcess*> lps;
  for (Simulator& sim : sims) lps.push_back(&driver.add_shard(sim));

  std::vector<std::string> order;
  const auto tag = [&](std::string name) {
    return [&order, name = std::move(name)] { order.push_back(name); };
  };
  // Deliberately enqueue in scrambled source order.
  lps[3]->send(ShardId{0}, TimePoint{2000}, tag("t2.s3.i0"));
  lps[1]->send(ShardId{0}, TimePoint{2000}, tag("t2.s1.i0"));
  lps[1]->send(ShardId{0}, TimePoint{2000}, tag("t2.s1.i1"));
  lps[2]->send(ShardId{0}, TimePoint{1000}, tag("t1.s2.i0"));
  lps[3]->send(ShardId{0}, TimePoint{1000}, tag("t1.s3.i0"));

  EXPECT_EQ(driver.run(1), 5u);
  EXPECT_EQ(order, (std::vector<std::string>{"t1.s2.i0", "t1.s3.i0",
                                             "t2.s1.i0", "t2.s1.i1",
                                             "t2.s3.i0"}));
}

TEST(sharded_driver, InWindowSendBelowWindowEndThrows) {
  ShardedSimulator driver({5_ms});
  Simulator a;
  Simulator b;
  LogicalProcess& lp_a = driver.add_shard(a);
  driver.add_shard(b);

  // Fired inside the window [1ms, 6ms): a send landing before 6ms models a
  // zero-latency link the conservative drain cannot allow.
  a.schedule_at(TimePoint{1000}, [&] {
    lp_a.send(ShardId{1}, a.now() + 1_ms, [] {});
  });
  EXPECT_THROW(driver.run(1), std::logic_error);

  // The failed run must not wedge the driver: the window flag is reset, so
  // a follow-up setup send and run still work.
  bool landed = false;
  lp_a.send(ShardId{1}, TimePoint{9000}, [&] { landed = true; });
  EXPECT_EQ(driver.run(1), 1u);
  EXPECT_TRUE(landed);
}

TEST(sharded_driver, InWindowSendAtWindowEndIsAccepted) {
  ShardedSimulator driver({5_ms});
  Simulator a;
  Simulator b;
  LogicalProcess& lp_a = driver.add_shard(a);
  driver.add_shard(b);

  std::uint64_t landed_at = 0;
  a.schedule_at(TimePoint{1000}, [&] {
    // now + lookahead == window end exactly: the tightest legal send.
    lp_a.send(ShardId{1}, a.now() + driver.lookahead(),
              [&] { landed_at = b.now().micros(); });
  });
  EXPECT_EQ(driver.run(1), 2u);
  EXPECT_EQ(landed_at, 6000u);
}

TEST(sharded_driver, HorizonAndStopPredicateBoundTheRun) {
  ShardedSimulator driver({1_ms});
  Simulator a;
  driver.add_shard(a);
  std::size_t fired = 0;
  for (int i = 1; i <= 10; ++i) {
    a.schedule_at(TimePoint{static_cast<std::int64_t>(i) * 10'000},
                  [&] { ++fired; });
  }

  ShardedSimulator::RunLimits limits;
  limits.horizon = TimePoint{35'000};  // Events at 10/20/30ms fire.
  EXPECT_EQ(driver.run(1, limits), 3u);
  EXPECT_EQ(fired, 3u);

  ShardedSimulator::RunLimits stop_after_two;
  std::size_t windows = 0;
  stop_after_two.stop = [&] { return ++windows >= 2; };
  EXPECT_EQ(driver.run(1, stop_after_two), 2u);
  EXPECT_EQ(fired, 5u);

  EXPECT_EQ(driver.run(1), 5u);  // Remainder drains to empty.
  EXPECT_EQ(fired, 10u);
}

// ----------------------------------------- thread-count invariance -------

struct PingState {
  std::array<LogicalProcess*, 2> lps{};
  Duration lookahead = Duration::zero();
  // Written only by the thread draining the owning shard.
  std::array<std::vector<std::uint64_t>, 2> logs;
};

void bounce(PingState* state, std::size_t at, int remaining) {
  Simulator& sim = state->lps[at]->simulator();
  state->logs[at].push_back(sim.now().micros());
  if (remaining <= 0) return;
  const std::size_t other = 1 - at;
  state->lps[at]->send(
      static_cast<ShardId>(other), sim.now() + state->lookahead,
      [state, other, remaining] { bounce(state, other, remaining - 1); },
      "test.bounce");
}

PingState run_pingpong(unsigned threads, std::uint64_t* windows,
                       std::uint64_t* delivered) {
  ShardedSimulator driver({2_ms});
  Simulator a;
  Simulator b;
  PingState state;
  state.lps = {&driver.add_shard(a), &driver.add_shard(b)};
  state.lookahead = driver.lookahead();
  // Two interleaved volleys plus local-only chatter on each shard.
  a.schedule_at(TimePoint{1000}, [&] { bounce(&state, 0, 12); });
  b.schedule_at(TimePoint{1500}, [&] { bounce(&state, 1, 12); });
  for (int i = 0; i < 50; ++i) {
    a.schedule_at(TimePoint{static_cast<std::int64_t>(700 + i * 37)},
                  [&] { state.logs[0].push_back(a.now().micros()); });
    b.schedule_at(TimePoint{static_cast<std::int64_t>(900 + i * 53)},
                  [&] { state.logs[1].push_back(b.now().micros()); });
  }
  driver.run(threads);
  *windows = driver.windows();
  *delivered = driver.messages_delivered();
  return state;
}

TEST(sharded_driver, ThreadCountNeverChangesTheTrace) {
  std::uint64_t base_windows = 0;
  std::uint64_t base_delivered = 0;
  const PingState base = run_pingpong(1, &base_windows, &base_delivered);
  ASSERT_GT(base_delivered, 0u);
  ASSERT_FALSE(base.logs[0].empty());

  for (const unsigned threads : {2u, 4u, 8u}) {
    std::uint64_t windows = 0;
    std::uint64_t delivered = 0;
    const PingState run = run_pingpong(threads, &windows, &delivered);
    EXPECT_EQ(run.logs[0], base.logs[0]) << "threads=" << threads;
    EXPECT_EQ(run.logs[1], base.logs[1]) << "threads=" << threads;
    EXPECT_EQ(windows, base_windows) << "threads=" << threads;
    EXPECT_EQ(delivered, base_delivered) << "threads=" << threads;
  }
}

TEST(sharded_driver, WorkerExceptionsSurfaceOnTheCaller) {
  ShardedSimulator driver({1_ms});
  std::array<Simulator, 4> sims;
  for (Simulator& sim : sims) driver.add_shard(sim);
  for (std::size_t s = 0; s < sims.size(); ++s) {
    sims[s].schedule_at(TimePoint{1000}, [s] {
      if (s == 2) throw std::runtime_error{"boom on shard 2"};
    });
  }
  // With a pool in play the throw happens on a worker thread; the driver
  // must trap it at the barrier and rethrow here instead of terminating.
  EXPECT_THROW(driver.run(4), std::runtime_error);
}

// ------------------------------------------- EventFn SBO boundaries ------

struct Exactly56 {
  std::array<std::byte, 48> pad{};
  std::uint64_t* hits = nullptr;
  void operator()() const { ++*hits; }
};
static_assert(sizeof(Exactly56) == EventFn::kInlineCapacity);
static_assert(EventFn::fits_inline<Exactly56>(),
              "a callable exactly at the budget must stay inline");

struct OneOver {
  std::array<std::byte, 49> pad{};
  std::uint64_t* hits = nullptr;
  void operator()() const { ++*hits; }
};
static_assert(sizeof(OneOver) > EventFn::kInlineCapacity);
static_assert(!EventFn::fits_inline<OneOver>(),
              "one byte past the budget must take the heap path");

struct alignas(2 * alignof(std::max_align_t)) OverAligned {
  std::uint64_t* hits = nullptr;
  void operator()() const { ++*hits; }
};
static_assert(!EventFn::fits_inline<OverAligned>(),
              "the inline buffer only guarantees max_align_t alignment");

TEST(sharded_event_fn, ExactBudgetStaysInlineAndFires) {
  std::uint64_t hits = 0;
  Exactly56 callable;
  callable.hits = &hits;
  EventFn fn{callable};
  EventFn moved{std::move(fn)};
  EXPECT_FALSE(static_cast<bool>(fn));  // NOLINT(bugprone-use-after-move)
  moved();
  EXPECT_EQ(hits, 1u);
}

TEST(sharded_event_fn, OversizedAndOverAlignedTakeTheHeapPathCorrectly) {
  std::uint64_t hits = 0;
  OneOver big;
  big.hits = &hits;
  OverAligned aligned;
  aligned.hits = &hits;

  EventFn big_fn{big};
  EventFn aligned_fn{aligned};
  // Heap-held callables must keep their alignment and survive moves (the
  // pointer, not the callable, relocates).
  EventFn big_moved{std::move(big_fn)};
  EventFn aligned_moved{std::move(aligned_fn)};
  big_moved();
  aligned_moved();
  EXPECT_EQ(hits, 2u);
}

TEST(sharded_event_fn, MoveOnlyCaptureCrossesTheMailbox) {
  ShardedSimulator driver({1_ms});
  Simulator a;
  Simulator b;
  LogicalProcess& lp_a = driver.add_shard(a);
  driver.add_shard(b);

  std::uint64_t seen = 0;
  auto payload = std::make_unique<std::uint64_t>(0xfeedu);
  // The callback is moved lane -> scratch -> target queue -> fire; a copy
  // anywhere on that path would fail to compile.
  lp_a.send(ShardId{1}, TimePoint{4000},
            [&seen, payload = std::move(payload)] { seen = *payload; });
  EXPECT_EQ(driver.run(2), 1u);
  EXPECT_EQ(seen, 0xfeedu);
}

}  // namespace
}  // namespace xanadu::sim
