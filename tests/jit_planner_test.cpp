// Tests for the JIT deployment planner (Algorithm 2 and its implicit-chain
// variant).

#include <gtest/gtest.h>

#include "core/jit_planner.hpp"
#include "workflow/builders.hpp"

namespace xanadu::core {
namespace {

using sim::Duration;

/// Builds a profile table with fixed (single-observation) values.
void set_profile(ProfileTable& table, NodeId node, double cold_ms,
                 double startup_ms, double warm_ms) {
  FunctionProfile& p = table.function(node);
  p.observe_cold_response(Duration::from_millis(cold_ms));
  p.observe_startup(Duration::from_millis(startup_ms));
  p.observe_warm_response(Duration::from_millis(warm_ms));
}

MlpResult full_path_mlp(const BranchModel& model) {
  return estimate_mlp(model);
}

class JitPlannerTest : public ::testing::Test {
 protected:
  JitOptions no_margin() {
    JitOptions opts;
    opts.safety_margin = Duration::zero();
    return opts;
  }
};

TEST_F(JitPlannerTest, RootDeploysImmediately) {
  const auto dag = workflow::linear_chain(1);
  const BranchModel model = BranchModel::from_schema(dag);
  ProfileTable table;
  set_profile(table, NodeId{0}, 4000, 3000, 1000);
  const JitPlan plan =
      plan_explicit(full_path_mlp(model), model, table, no_margin());
  ASSERT_EQ(plan.deployments.size(), 1u);
  EXPECT_EQ(plan.deployments[0].deploy_delay, Duration::zero());
}

TEST_F(JitPlannerTest, Algorithm2Recurrence) {
  // Three-node chain.  Profiles: cold response 4000 ms, startup 3000 ms,
  // warm response 1000 ms for every node.
  //   f1: deploy 0, maxDelay = 4000 (cold response)
  //   f2: invoked at 4000, deploy at 4000 - 3000 = 1000, maxDelay = 5000
  //   f3: invoked at 5000, deploy at 5000 - 3000 = 2000, maxDelay = 6000
  const auto dag = workflow::linear_chain(3);
  const BranchModel model = BranchModel::from_schema(dag);
  ProfileTable table;
  for (std::size_t i = 0; i < 3; ++i) {
    set_profile(table, NodeId{i}, 4000, 3000, 1000);
  }
  const JitPlan plan =
      plan_explicit(full_path_mlp(model), model, table, no_margin());
  ASSERT_EQ(plan.deployments.size(), 3u);
  EXPECT_NEAR(plan.deployments[0].deploy_delay.millis(), 0.0, 1e-6);
  EXPECT_NEAR(plan.deployments[1].deploy_delay.millis(), 1000.0, 1e-6);
  EXPECT_NEAR(plan.deployments[2].deploy_delay.millis(), 2000.0, 1e-6);
  EXPECT_NEAR(plan.deployments[1].expected_invocation.millis(), 4000.0, 1e-6);
  EXPECT_NEAR(plan.deployments[2].expected_invocation.millis(), 5000.0, 1e-6);
}

TEST_F(JitPlannerTest, SafetyMarginShiftsDeploymentsEarlier) {
  const auto dag = workflow::linear_chain(2);
  const BranchModel model = BranchModel::from_schema(dag);
  ProfileTable table;
  set_profile(table, NodeId{0}, 4000, 3000, 1000);
  set_profile(table, NodeId{1}, 4000, 3000, 1000);
  JitOptions opts;
  opts.safety_margin = Duration::from_millis(250);
  const JitPlan plan = plan_explicit(full_path_mlp(model), model, table, opts);
  EXPECT_NEAR(plan.deployments[1].deploy_delay.millis(), 750.0, 1e-6);
}

TEST_F(JitPlannerTest, DelayClampsAtZeroWhenStartupDominates) {
  // Child startup (3000 ms) exceeds the parent's completion time (500 ms):
  // deploying "just in time" would require starting in the past, so it
  // deploys immediately.
  const auto dag = workflow::linear_chain(2);
  const BranchModel model = BranchModel::from_schema(dag);
  ProfileTable table;
  set_profile(table, NodeId{0}, 500, 200, 300);
  set_profile(table, NodeId{1}, 4000, 3000, 1000);
  const JitPlan plan =
      plan_explicit(full_path_mlp(model), model, table, no_margin());
  EXPECT_EQ(plan.deployments[1].deploy_delay, Duration::zero());
}

TEST_F(JitPlannerTest, BarrierUsesSlowestParent) {
  // fan_in(2): two roots (cold responses 1000 and 6000 ms) and a sink.
  const auto dag = workflow::fan_in(2);
  const BranchModel model = BranchModel::from_schema(dag);
  ProfileTable table;
  set_profile(table, NodeId{0}, 1000, 500, 400);
  set_profile(table, NodeId{1}, 6000, 500, 4000);
  set_profile(table, NodeId{2}, 4000, 3000, 1000);
  const JitPlan plan =
      plan_explicit(full_path_mlp(model), model, table, no_margin());
  ASSERT_EQ(plan.deployments.size(), 3u);
  // Sink invoked at max(1000, 6000) = 6000; deploy at 6000 - 3000.
  const Deployment& sink = plan.deployments[2];
  EXPECT_NEAR(sink.expected_invocation.millis(), 6000.0, 1e-6);
  EXPECT_NEAR(sink.deploy_delay.millis(), 3000.0, 1e-6);
}

TEST_F(JitPlannerTest, FallbacksUsedWithoutObservations) {
  const auto dag = workflow::linear_chain(2);
  const BranchModel model = BranchModel::from_schema(dag);
  const ProfileTable table;  // Empty: no observations at all.
  JitOptions opts = no_margin();
  opts.fallbacks.cold_response = Duration::from_millis(5000);
  opts.fallbacks.startup = Duration::from_millis(2000);
  const JitPlan plan = plan_explicit(full_path_mlp(model), model, table, opts);
  EXPECT_NEAR(plan.deployments[1].deploy_delay.millis(), 3000.0, 1e-6);
}

TEST_F(JitPlannerTest, ImplicitVariantUsesInvokeGaps) {
  // Implicit chain: invoke gaps of 2000 ms per hop; startup 1500 ms.
  const auto dag = workflow::linear_chain(3);
  const BranchModel model = BranchModel::from_schema(dag);
  ProfileTable table;
  for (std::size_t i = 0; i < 3; ++i) {
    set_profile(table, NodeId{i}, 9999, 1500, 9999);  // responses unused
  }
  table.observe_invoke_gap(NodeId{0}, NodeId{1}, Duration::from_millis(2000));
  table.observe_invoke_gap(NodeId{1}, NodeId{2}, Duration::from_millis(2000));
  const JitPlan plan =
      plan_implicit(full_path_mlp(model), model, table, no_margin());
  ASSERT_EQ(plan.deployments.size(), 3u);
  EXPECT_NEAR(plan.deployments[0].deploy_delay.millis(), 0.0, 1e-6);
  // f2 invoked at 2000; deploy at 2000 - 1500 = 500.
  EXPECT_NEAR(plan.deployments[1].deploy_delay.millis(), 500.0, 1e-6);
  // f3 invoked at 4000; deploy at 4000 - 1500 = 2500.
  EXPECT_NEAR(plan.deployments[2].deploy_delay.millis(), 2500.0, 1e-6);
}

TEST_F(JitPlannerTest, ImplicitVariantFallsBackOnUnseenGaps) {
  const auto dag = workflow::linear_chain(2);
  const BranchModel model = BranchModel::from_schema(dag);
  ProfileTable table;
  set_profile(table, NodeId{1}, 9999, 400, 9999);
  JitOptions opts = no_margin();
  opts.fallbacks.invoke_gap = Duration::from_millis(1200);
  const JitPlan plan = plan_implicit(full_path_mlp(model), model, table, opts);
  EXPECT_NEAR(plan.deployments[1].deploy_delay.millis(), 800.0, 1e-6);
}

TEST_F(JitPlannerTest, EmptyMlpYieldsEmptyPlan) {
  const BranchModel model;
  const ProfileTable table;
  const MlpResult mlp;
  EXPECT_TRUE(plan_explicit(mlp, model, table).deployments.empty());
  EXPECT_TRUE(plan_implicit(mlp, model, table).deployments.empty());
}

TEST_F(JitPlannerTest, DeploymentsSpreadAcrossChainLifetime) {
  // The JIT property behind Figure 13: deployment times increase with depth
  // instead of clustering at t = 0 (Xanadu Speculative's behaviour).
  const auto dag = workflow::linear_chain(10);
  const BranchModel model = BranchModel::from_schema(dag);
  ProfileTable table;
  for (std::size_t i = 0; i < 10; ++i) {
    set_profile(table, NodeId{i}, 8000, 3000, 5000);
  }
  const JitPlan plan =
      plan_explicit(full_path_mlp(model), model, table, no_margin());
  for (std::size_t i = 2; i < plan.deployments.size(); ++i) {
    EXPECT_GT(plan.deployments[i].deploy_delay,
              plan.deployments[i - 1].deploy_delay);
  }
  // Tail deployments happen tens of seconds into the workflow.
  EXPECT_GT(plan.deployments.back().deploy_delay.seconds(), 30.0);
}

}  // namespace
}  // namespace xanadu::core
