// Inside the control plane: watch Xanadu's branch detector (Algorithm 3),
// MLP estimator (Algorithm 1) and JIT planner (Algorithm 2) work on the
// conditional XOR-cast workflow of paper Figure 8, driven purely by
// observed requests (implicit-chain mode).

#include <algorithm>
#include <cstdio>

#include "core/dispatch_manager.hpp"
#include "core/jit_planner.hpp"
#include "workflow/builders.hpp"

using namespace xanadu;

int main() {
  core::DispatchManagerOptions options;
  options.kind = core::PlatformKind::XanaduJit;
  options.xanadu.knowledge = core::ChainKnowledge::Implicit;
  options.seed = 8;
  core::DispatchManager manager{options};

  workflow::XorCastOptions shape;  // Figure 8: 70% solid arrows, fan 3.
  shape.base.exec_time = sim::Duration::from_millis(400);
  const workflow::WorkflowDag dag = workflow::xor_cast_dag(shape);
  const auto wf = manager.deploy(dag);
  const auto true_mlp = workflow::true_most_likely_path(dag);

  auto names = [&](const std::vector<common::NodeId>& ids) {
    std::vector<common::NodeId> sorted = ids;
    std::sort(sorted.begin(), sorted.end());
    std::string out;
    for (const auto id : sorted) {
      if (!out.empty()) out += "->";
      out += dag.node(id).fn.name;
    }
    return out;
  };

  std::printf("true most-likely path: %s\n\n", names(true_mlp).c_str());
  std::printf("trigger | discovered | estimated MLP        | C_D\n");
  for (int trigger = 1; trigger <= 10; ++trigger) {
    manager.force_cold_start();
    const auto result = manager.invoke(wf);
    const auto* model = manager.xanadu_policy()->model(wf);
    const auto mlp = manager.xanadu_policy()->current_mlp(wf);
    std::printf("%7d | %5zu/%zu   | %-20s | %.2fs\n", trigger,
                model->node_count(), dag.node_count(), names(mlp.path).c_str(),
                result.overhead.seconds());
  }

  // Peek at the JIT deployment timeline the planner would emit now.
  const auto* profiles = manager.xanadu_policy()->profiles(wf);
  core::BranchModel snapshot = *manager.xanadu_policy()->model(wf);
  snapshot.finalize_pending();
  const auto mlp = core::estimate_mlp(snapshot);
  const auto plan = core::plan_implicit(mlp, snapshot, *profiles, {});
  std::printf("\nJIT deployment plan (relative to request arrival):\n");
  for (const auto& d : plan.deployments) {
    std::printf("  %-4s deploy at %6.0fms (expected invocation %6.0fms)\n",
                dag.node(d.node).fn.name.c_str(), d.deploy_delay.millis(),
                d.expected_invocation.millis());
  }
  return 0;
}
