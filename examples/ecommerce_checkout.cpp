// E-commerce checkout (paper Section 5.6.1): an *implicit* chain -- the
// workflow exists only inside the functions' code, so the platform has to
// discover it from parent-id request headers before it can speculate.
//
//   order (2s) -> discount (0.1s) -> payment (2.5s) -> invoice (0.3s)
//     -> shipping (0.5s)
//
// This example contrasts a chaining-agnostic baseline (Knative-like) with
// Xanadu JIT, and shows the implicit chain being learned request by request.

#include <cstdio>

#include "core/dispatch_manager.hpp"
#include "workload/case_studies.hpp"

using namespace xanadu;

namespace {

void run_platform(const char* name, core::PlatformKind kind) {
  core::DispatchManagerOptions options;
  options.kind = kind;
  options.xanadu.knowledge = core::ChainKnowledge::Implicit;
  core::DispatchManager manager{options};
  const auto wf = manager.deploy(workload::ecommerce_checkout());

  std::printf("\n--- %s ---\n", name);
  std::printf("request | end-to-end | overhead | cold | discovered nodes\n");
  for (int i = 0; i < 6; ++i) {
    manager.force_cold_start();
    const auto result = manager.invoke(wf);
    std::size_t discovered = 0;
    if (auto* policy = manager.xanadu_policy()) {
      if (const auto* model = policy->model(wf)) discovered = model->node_count();
    }
    std::printf("%7d | %9.2fs | %7.2fs | %4zu | %zu/5\n", i + 1,
                result.end_to_end.seconds(), result.overhead.seconds(),
                result.cold_starts, discovered);
  }
}

}  // namespace

int main() {
  std::printf("E-commerce checkout: order -> discount -> payment -> invoice "
              "-> shipping (implicit chain)\n");
  run_platform("Knative-like (chaining agnostic)", core::PlatformKind::KnativeLike);
  run_platform("Xanadu JIT (implicit-chain detection)", core::PlatformKind::XanaduJit);
  std::printf("\nXanadu's first request pays the full cascading cold start --\n"
              "the chain is unknown.  From the second request on, the branch\n"
              "detector has mapped the chain from request headers and the JIT\n"
              "deployer pre-provisions every stage just ahead of its call.\n");
  return 0;
}
