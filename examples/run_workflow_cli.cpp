// Command-line workflow runner: deploy a state-language JSON workflow on a
// chosen platform, fire requests, and print (or export) the results.
//
// Usage:
//   run_workflow_cli [--file workflow.json] [--mode cold|spec|jit|knative|
//                     openwhisk|asf|adf|prewarm] [--requests N]
//                    [--cold-each] [--aggressiveness F] [--seed N]
//                    [--trace out.csv] [--digest]
//                    [--faults drop=F,dup=F,delay=F,provfail=F,crash=F,
//                              outage=F,straggler=F] [--no-recovery]
//
// --digest prints a stable FNV-1a fingerprint of the run's trace; two runs
// with the same arguments must print the same digest (the determinism test
// suite enforces this property on the underlying engine).
//
// --faults enables seed-deterministic fault injection: drop/dup/delay are
// per-message bus fault probabilities (the control bus is switched on
// automatically so they have a surface), provfail/crash/straggler are
// per-build and per-execution probabilities, and outage is a host-outage
// rate per simulated hour.  --no-recovery disables the retry/re-provision
// machinery, so faulted requests strand and fail instead of recovering.
//
// With no arguments it runs a built-in conditional demo workflow on
// Xanadu JIT.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "core/dispatch_manager.hpp"
#include "metrics/report.hpp"
#include "metrics/trace.hpp"
#include "workflow/state_language.hpp"
#include "workload/runner.hpp"

using namespace xanadu;

namespace {

const char* kDemoWorkflow = R"({
  "validate": {"type": "function", "memory": 256, "exec_ms": 250,
               "conditional": "fraud_check"},
  "fraud_check": {"type": "conditional", "wait_for": ["validate"],
                  "success_probability": 0.9,
                  "success": "accept", "fail": "review"},
  "accept": {"type": "branch",
             "charge":  {"type": "function", "exec_ms": 900},
             "fulfil":  {"type": "function", "exec_ms": 600,
                         "wait_for": ["charge"]},
             "notify":  {"type": "function", "exec_ms": 150,
                         "wait_for": ["fulfil"]}},
  "review": {"type": "branch",
             "manual_review": {"type": "function", "exec_ms": 1200}}
})";

struct CliOptions {
  std::string file;
  std::string mode = "jit";
  std::string trace_path;
  int requests = 5;
  bool cold_each = false;
  bool digest = false;
  bool recovery = true;
  double aggressiveness = 1.0;
  std::uint64_t seed = 42;
  sim::FaultPlanOptions faults;
};

/// Parses a "--faults drop=0.1,provfail=0.05,..." spec into the plan options.
void parse_fault_spec(const std::string& spec, sim::FaultPlanOptions& faults) {
  std::stringstream stream{spec};
  std::string item;
  while (std::getline(stream, item, ',')) {
    const auto eq = item.find('=');
    if (eq == std::string::npos || eq == 0) {
      throw std::invalid_argument{"--faults entries must be class=value, got '" +
                                  item + "'"};
    }
    const std::string key = item.substr(0, eq);
    const double value = std::atof(item.c_str() + eq + 1);
    if (key == "drop") {
      faults.bus_drop_rate = value;
    } else if (key == "dup") {
      faults.bus_duplicate_rate = value;
    } else if (key == "delay") {
      faults.bus_delay_rate = value;
    } else if (key == "provfail") {
      faults.provision_failure_rate = value;
    } else if (key == "crash") {
      faults.worker_crash_rate = value;
    } else if (key == "outage") {
      faults.host_outage_rate_per_hour = value;
    } else if (key == "straggler") {
      faults.straggler_rate = value;
    } else {
      throw std::invalid_argument{"unknown fault class '" + key + "'"};
    }
  }
  faults.validate();
}

core::PlatformKind parse_mode(const std::string& mode) {
  if (mode == "cold") return core::PlatformKind::XanaduCold;
  if (mode == "spec") return core::PlatformKind::XanaduSpeculative;
  if (mode == "jit") return core::PlatformKind::XanaduJit;
  if (mode == "knative") return core::PlatformKind::KnativeLike;
  if (mode == "openwhisk") return core::PlatformKind::OpenWhiskLike;
  if (mode == "asf") return core::PlatformKind::AsfLike;
  if (mode == "adf") return core::PlatformKind::AdfLike;
  if (mode == "prewarm") return core::PlatformKind::PrewarmAll;
  throw std::invalid_argument{"unknown mode '" + mode + "'"};
}

bool parse_args(int argc, char** argv, CliOptions& options) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) throw std::invalid_argument{arg + " needs a value"};
      return argv[++i];
    };
    if (arg == "--file") {
      options.file = next();
    } else if (arg == "--mode") {
      options.mode = next();
    } else if (arg == "--requests") {
      options.requests = std::atoi(next());
      if (options.requests <= 0) {
        throw std::invalid_argument{"--requests must be positive"};
      }
    } else if (arg == "--cold-each") {
      options.cold_each = true;
    } else if (arg == "--digest") {
      options.digest = true;
    } else if (arg == "--aggressiveness") {
      options.aggressiveness = std::atof(next());
    } else if (arg == "--seed") {
      options.seed = static_cast<std::uint64_t>(std::atoll(next()));
    } else if (arg == "--trace") {
      options.trace_path = next();
    } else if (arg == "--faults") {
      parse_fault_spec(next(), options.faults);
    } else if (arg == "--no-recovery") {
      options.recovery = false;
    } else if (arg == "--help" || arg == "-h") {
      return false;
    } else {
      throw std::invalid_argument{"unknown argument '" + arg + "'"};
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions options;
  try {
    if (!parse_args(argc, argv, options)) {
      std::printf("usage: %s [--file workflow.json] [--mode cold|spec|jit|"
                  "knative|openwhisk|asf|adf|prewarm]\n"
                  "          [--requests N] [--cold-each] "
                  "[--aggressiveness F] [--seed N] [--trace out.csv] "
                  "[--digest]\n"
                  "          [--faults drop=F,dup=F,delay=F,provfail=F,"
                  "crash=F,outage=F,straggler=F] [--no-recovery]\n",
                  argv[0]);
      return 0;
    }
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }

  // Load the workflow document.
  std::string document;
  if (options.file.empty()) {
    document = kDemoWorkflow;
    std::printf("no --file given; running the built-in demo workflow\n");
  } else {
    std::ifstream in{options.file};
    if (!in) {
      std::fprintf(stderr, "error: cannot read '%s'\n", options.file.c_str());
      return 2;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    document = buffer.str();
  }

  auto parsed = workflow::parse_state_language(document, "cli-workflow");
  if (!parsed.ok()) {
    std::fprintf(stderr, "error: %s\n", parsed.error().message.c_str());
    return 2;
  }
  workflow::WorkflowDag dag = std::move(parsed).value();

  core::DispatchManagerOptions manager_options;
  try {
    manager_options.kind = parse_mode(options.mode);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  manager_options.seed = options.seed;
  manager_options.xanadu.aggressiveness = options.aggressiveness;
  manager_options.faults = options.faults;
  manager_options.recovery.enabled = options.recovery;
  const bool bus_faults_requested = options.faults.bus_drop_rate > 0.0 ||
                                    options.faults.bus_duplicate_rate > 0.0 ||
                                    options.faults.bus_delay_rate > 0.0;
  if (bus_faults_requested) {
    // Message faults need a message bus to fault; switch the platform's
    // preset over to bus-routed provisioning commands.
    platform::PlatformCalibration calibration =
        core::preset_calibration(manager_options.kind);
    calibration.control_bus.enabled = true;
    manager_options.calibration = calibration;
  }
  core::DispatchManager manager{manager_options};

  std::printf("workflow '%s': %zu functions, depth %zu, %zu conditional "
              "point(s); platform %s\n\n",
              dag.name().c_str(), dag.node_count(), dag.depth(),
              dag.conditional_points(), core::to_string(manager.kind()));
  const auto wf = manager.deploy(dag);

  std::vector<platform::RequestResult> results;
  std::printf("request | end-to-end | overhead C_D | cold | misses\n");
  for (int i = 0; i < options.requests; ++i) {
    if (options.cold_each) manager.force_cold_start();
    const auto result = manager.invoke(wf);
    if (result.failed) {
      std::printf("%7d | FAILED: %s\n", i + 1, result.failure_reason.c_str());
    } else {
      std::printf("%7d | %9.2fs | %11.2fs | %4zu | %zu\n", i + 1,
                  result.end_to_end.seconds(), result.overhead.seconds(),
                  result.cold_starts, result.speculation.missed_nodes);
    }
    results.push_back(result);
  }

  if (options.faults.any_enabled()) {
    std::size_t failed = 0;
    for (const auto& r : results) failed += r.failed ? 1 : 0;
    std::printf("\nfault injection: %zu/%zu requests completed (recovery %s)\n",
                results.size() - failed, results.size(),
                options.recovery ? "on" : "off");
    metrics::fault_report(manager.fault_counters(), manager.recovery_stats())
        .print("fault/recovery counters");
  }

  const auto& ledger = manager.ledger();
  std::printf("\nworkers provisioned %zu (wasted %zu); idle memory %.0f MBs; "
              "pre-use memory %.0f MBs\n",
              ledger.workers_provisioned, ledger.workers_wasted,
              ledger.idle_memory_mb_seconds, ledger.pre_use_memory_mb_seconds);

  if (options.digest) {
    std::printf("trace digest: %s\n",
                metrics::digest_hex(metrics::trace_digest(results, dag)).c_str());
  }

  if (!options.trace_path.empty()) {
    std::ofstream out{options.trace_path};
    if (!out) {
      std::fprintf(stderr, "error: cannot write '%s'\n",
                   options.trace_path.c_str());
      return 2;
    }
    out << metrics::trace_csv(results, dag);
    std::printf("trace written to %s\n", options.trace_path.c_str());
  }
  return 0;
}
