// Distributed-architecture walkthrough (paper Figure 11): the Dispatch
// Manager sends provisioning commands to per-host Dispatch Daemons over the
// control bus (the Kafka stand-in), worker lifecycle events flow back on the
// "workers" topic, and a WorkerStateTracker consumes them to render a
// fleet dashboard -- eventually consistent, exactly like a real
// Kafka-backed control plane.

#include <cstdio>

#include "cluster/cluster.hpp"
#include "core/dispatch_manager.hpp"
#include "platform/worker_state.hpp"
#include "workflow/builders.hpp"

using namespace xanadu;

int main() {
  // A 4-host cluster with the control bus enabled (6 ms one-way latency).
  core::DispatchManagerOptions options;
  options.kind = core::PlatformKind::XanaduJit;
  options.cluster.host_count = 4;
  auto calibration = platform::xanadu_calibration();
  calibration.control_bus.enabled = true;
  calibration.control_bus.latency = sim::Duration::from_millis(6);
  options.calibration = calibration;
  core::DispatchManager manager{options};

  platform::MessageBus* bus = manager.engine().control_bus();
  platform::WorkerStateTracker tracker{*bus};

  workflow::BuildOptions chain;
  chain.exec_time = sim::Duration::from_seconds(2);
  const auto wf = manager.deploy(workflow::linear_chain(6, chain));

  auto dashboard = [&](const char* moment) {
    std::printf("%-28s | live %2zu | provisioning %2zu | busy %2zu | idle %2zu "
                "| bus msgs %llu\n",
                moment, tracker.live_count(),
                tracker.count(platform::WorkerEventKind::Provisioning),
                tracker.count(platform::WorkerEventKind::Busy),
                tracker.count(platform::WorkerEventKind::Idle),
                static_cast<unsigned long long>(bus->published_count()));
  };

  std::printf("fleet dashboard (4 hosts, control bus @6ms)\n\n");
  dashboard("boot");

  // Fire a request and sample the dashboard mid-flight.
  bool done = false;
  manager.submit(wf, [&](const platform::RequestResult&) { done = true; });
  manager.simulator().run_until(manager.simulator().now() +
                                sim::Duration::from_seconds(2));
  dashboard("t+2s (provisioning burst)");
  manager.simulator().run_until(manager.simulator().now() +
                                sim::Duration::from_seconds(5));
  dashboard("t+7s (chain executing)");
  while (!done) {
    manager.simulator().run_until(manager.simulator().now() +
                                  sim::Duration::from_seconds(1));
  }
  manager.idle_for(sim::Duration::from_seconds(1));
  dashboard("request complete");

  manager.force_cold_start();
  manager.idle_for(sim::Duration::from_seconds(1));
  dashboard("fleet torn down");

  std::printf("\nper-host placement of the run:\n");
  for (std::size_t h = 0; h < 4; ++h) {
    const auto& host = manager.cluster().host(common::HostId{h});
    std::printf("  host %zu: %.0f MB in use\n", h, host.memory_used_mb());
  }
  return 0;
}
