// Provider-side tuning of the deployment-aggressiveness knob (paper
// Section 3.2.1): how far down the most-likely path should resources be
// pre-provisioned?  This example sweeps the knob on a deep chain and prints
// the latency / locked-resource trade-off a provider would use to pick an
// operating point.

#include <cstdio>

#include "core/dispatch_manager.hpp"
#include "metrics/cost.hpp"
#include "workflow/builders.hpp"
#include "workload/runner.hpp"

using namespace xanadu;

int main() {
  std::printf("Deployment-aggressiveness sweep on a depth-12 chain of 2s "
              "functions (speculative mode, 10 cold triggers per point)\n\n");
  std::printf("aggr | mean C_D | cold starts | pre-use CPU | pre-use memory | phi_memory\n");

  for (const double aggressiveness : {0.1, 0.25, 0.5, 0.75, 1.0}) {
    core::DispatchManagerOptions options;
    options.kind = core::PlatformKind::XanaduSpeculative;
    options.xanadu.aggressiveness = aggressiveness;
    core::DispatchManager manager{options};

    workflow::BuildOptions chain;
    chain.exec_time = sim::Duration::from_seconds(2);
    const auto wf = manager.deploy(workflow::linear_chain(12, chain));
    const auto outcome = workload::run_cold_trials(manager, wf, 10);
    const auto cost = metrics::resource_cost(outcome.ledger_delta);
    const auto penalty = metrics::penalty(
        cost, sim::Duration::from_millis(outcome.mean_overhead_ms()));

    std::printf("%4.2f | %7.2fs | %11.1f | %9.1fcs | %11.0fMBs | %.0f MBs^2\n",
                aggressiveness, outcome.mean_overhead_ms() / 1000.0,
                outcome.mean_cold_starts(), cost.cpu_core_seconds,
                cost.memory_mb_seconds, penalty.phi_memory_mb_s2);
  }

  std::printf("\nLow aggressiveness behaves like a chaining-agnostic platform\n"
              "(cold starts all the way down); full aggressiveness eliminates\n"
              "all but the first cold start at the price of resources locked\n"
              "ahead of use.  The joint penalty phi pinpoints the sweet spot.\n");
  return 0;
}
