// Quickstart: deploy a function chain on Xanadu and watch just-in-time
// speculative provisioning eliminate cascading cold starts.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "core/dispatch_manager.hpp"
#include "workflow/builders.hpp"

using namespace xanadu;

int main() {
  // 1. Bring up a Xanadu deployment (virtual-time simulation of a 64-core /
  //    128 GB host, the paper's testbed) running the JIT speculation mode.
  core::DispatchManagerOptions options;
  options.kind = core::PlatformKind::XanaduJit;
  core::DispatchManager xanadu{options};

  // 2. Describe a workflow: a linear chain of five functions, each running
  //    for one second inside a Docker-class container sandbox.
  workflow::BuildOptions chain;
  chain.exec_time = sim::Duration::from_seconds(1);
  chain.sandbox = workflow::SandboxKind::Container;
  const auto workflow_id = xanadu.deploy(workflow::linear_chain(5, chain));

  // 3. Invoke it a few times.  The first request profiles the functions;
  //    later requests are provisioned just in time and meet warm sandboxes.
  std::printf("request | end-to-end | overhead C_D | cold starts\n");
  for (int i = 0; i < 5; ++i) {
    xanadu.force_cold_start();  // Pretend the keep-alive window expired.
    const platform::RequestResult result = xanadu.invoke(workflow_id);
    std::printf("%7d | %9.2fs | %11.2fs | %zu\n", i + 1,
                result.end_to_end.seconds(), result.overhead.seconds(),
                result.cold_starts);
  }

  // 4. Inspect what the control plane learned.
  const core::MlpResult mlp = xanadu.xanadu_policy()->current_mlp(workflow_id);
  std::printf("\nlearned most-likely path: %zu of 5 nodes\n", mlp.path.size());
  std::printf("workers provisioned in total: %zu, wasted: %zu\n",
              xanadu.ledger().workers_provisioned,
              xanadu.ledger().workers_wasted);
  return 0;
}
