// Image-processing pipeline (paper Section 5.6.2): an *explicit* chain
// declared in Xanadu's JSON state-definition language (paper Listing 1),
// with an explicit conditional: large images take a resize detour before the
// filter stages.
//
// Demonstrates: the state-language front end, conditional (XOR-cast)
// workflows, and per-mode comparison on the same deployment.

#include <cstdio>
#include <string>

#include "core/dispatch_manager.hpp"
#include "workflow/state_language.hpp"

using namespace xanadu;

namespace {

const char* kPipelineSpec = R"({
  "ingest": {
    "type": "function", "memory": 256, "runtime": "container",
    "exec_ms": 200, "wait_for": [], "conditional": "size_check"
  },
  "size_check": {
    "type": "conditional", "wait_for": ["ingest"],
    "condition": {"op1": "ingest.megapixels", "op2": 12, "op": "lte"},
    "success_probability": 0.8,
    "success": "small_image", "fail": "large_image"
  },
  "small_image": {
    "type": "branch",
    "scale":     {"type": "function", "memory": 512, "exec_ms": 400},
    "contrast":  {"type": "function", "memory": 512, "exec_ms": 350,
                  "wait_for": ["scale"]},
    "rotate":    {"type": "function", "memory": 512, "exec_ms": 600,
                  "wait_for": ["contrast"]},
    "blur":      {"type": "function", "memory": 512, "exec_ms": 500,
                  "wait_for": ["rotate"]},
    "grayscale": {"type": "function", "memory": 512, "exec_ms": 300,
                  "wait_for": ["blur"]}
  },
  "large_image": {
    "type": "branch",
    "downsample": {"type": "function", "memory": 1024, "exec_ms": 900},
    "grayscale_hq": {"type": "function", "memory": 1024, "exec_ms": 450,
                     "wait_for": ["downsample"]}
  }
})";

void run_mode(const char* name, core::PlatformKind kind,
              const workflow::WorkflowDag& dag) {
  core::DispatchManagerOptions options;
  options.kind = kind;
  core::DispatchManager manager{options};
  const auto wf = manager.deploy(dag);

  double total_overhead = 0.0;
  std::size_t cold = 0, misses = 0;
  const int requests = 10;
  for (int i = 0; i < requests; ++i) {
    manager.force_cold_start();
    const auto result = manager.invoke(wf);
    total_overhead += result.overhead.seconds();
    cold += result.cold_starts;
    misses += result.speculation.missed_nodes;
  }
  std::printf("%-18s | mean overhead %6.2fs | cold starts %2zu | misses %zu\n",
              name, total_overhead / requests, cold, misses);
}

}  // namespace

int main() {
  auto parsed = workflow::parse_state_language(kPipelineSpec, "image-pipeline");
  if (!parsed.ok()) {
    std::fprintf(stderr, "failed to parse pipeline spec: %s\n",
                 parsed.error().message.c_str());
    return 1;
  }
  const workflow::WorkflowDag dag = std::move(parsed).value();
  std::printf("Image pipeline: %zu functions, depth %zu, %zu conditional "
              "point(s); 80%% of images take the small-image branch\n\n",
              dag.node_count(), dag.depth(), dag.conditional_points());

  run_mode("xanadu-cold", core::PlatformKind::XanaduCold, dag);
  run_mode("xanadu-speculative", core::PlatformKind::XanaduSpeculative, dag);
  run_mode("xanadu-jit", core::PlatformKind::XanaduJit, dag);

  std::printf("\nSpeculation provisions the most-likely (small-image) branch;\n"
              "the occasional large image is a prediction miss: planned\n"
              "deployments are cancelled and the detour pays its own cold\n"
              "start, but the workflow still completes correctly.\n");
  return 0;
}
