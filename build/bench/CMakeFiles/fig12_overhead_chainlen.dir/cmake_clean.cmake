file(REMOVE_RECURSE
  "CMakeFiles/fig12_overhead_chainlen.dir/fig12_overhead_chainlen.cpp.o"
  "CMakeFiles/fig12_overhead_chainlen.dir/fig12_overhead_chainlen.cpp.o.d"
  "fig12_overhead_chainlen"
  "fig12_overhead_chainlen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_overhead_chainlen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
