# Empty dependencies file for fig12_overhead_chainlen.
# This may be replaced when dependencies are built.
