file(REMOVE_RECURSE
  "CMakeFiles/fig07_isolation_env.dir/fig07_isolation_env.cpp.o"
  "CMakeFiles/fig07_isolation_env.dir/fig07_isolation_env.cpp.o.d"
  "fig07_isolation_env"
  "fig07_isolation_env.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_isolation_env.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
