# Empty dependencies file for fig07_isolation_env.
# This may be replaced when dependencies are built.
