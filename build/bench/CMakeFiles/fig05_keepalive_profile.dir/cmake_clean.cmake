file(REMOVE_RECURSE
  "CMakeFiles/fig05_keepalive_profile.dir/fig05_keepalive_profile.cpp.o"
  "CMakeFiles/fig05_keepalive_profile.dir/fig05_keepalive_profile.cpp.o.d"
  "fig05_keepalive_profile"
  "fig05_keepalive_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_keepalive_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
