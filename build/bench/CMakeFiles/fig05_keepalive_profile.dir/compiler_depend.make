# Empty compiler generated dependencies file for fig05_keepalive_profile.
# This may be replaced when dependencies are built.
