# Empty compiler generated dependencies file for abl_aggressiveness.
# This may be replaced when dependencies are built.
