file(REMOVE_RECURSE
  "CMakeFiles/abl_aggressiveness.dir/abl_aggressiveness.cpp.o"
  "CMakeFiles/abl_aggressiveness.dir/abl_aggressiveness.cpp.o.d"
  "abl_aggressiveness"
  "abl_aggressiveness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_aggressiveness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
