# Empty compiler generated dependencies file for tab01_speculation_miss.
# This may be replaced when dependencies are built.
