file(REMOVE_RECURSE
  "CMakeFiles/tab01_speculation_miss.dir/tab01_speculation_miss.cpp.o"
  "CMakeFiles/tab01_speculation_miss.dir/tab01_speculation_miss.cpp.o.d"
  "tab01_speculation_miss"
  "tab01_speculation_miss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab01_speculation_miss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
