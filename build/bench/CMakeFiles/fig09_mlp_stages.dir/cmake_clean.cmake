file(REMOVE_RECURSE
  "CMakeFiles/fig09_mlp_stages.dir/fig09_mlp_stages.cpp.o"
  "CMakeFiles/fig09_mlp_stages.dir/fig09_mlp_stages.cpp.o.d"
  "fig09_mlp_stages"
  "fig09_mlp_stages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_mlp_stages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
