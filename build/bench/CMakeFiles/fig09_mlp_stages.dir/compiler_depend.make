# Empty compiler generated dependencies file for fig09_mlp_stages.
# This may be replaced when dependencies are built.
