file(REMOVE_RECURSE
  "CMakeFiles/fig16_sandbox_speculation.dir/fig16_sandbox_speculation.cpp.o"
  "CMakeFiles/fig16_sandbox_speculation.dir/fig16_sandbox_speculation.cpp.o.d"
  "fig16_sandbox_speculation"
  "fig16_sandbox_speculation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_sandbox_speculation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
