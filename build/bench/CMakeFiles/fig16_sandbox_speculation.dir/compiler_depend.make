# Empty compiler generated dependencies file for fig16_sandbox_speculation.
# This may be replaced when dependencies are built.
