file(REMOVE_RECURSE
  "CMakeFiles/fig17_case_studies.dir/fig17_case_studies.cpp.o"
  "CMakeFiles/fig17_case_studies.dir/fig17_case_studies.cpp.o.d"
  "fig17_case_studies"
  "fig17_case_studies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_case_studies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
