# Empty dependencies file for fig17_case_studies.
# This may be replaced when dependencies are built.
