file(REMOVE_RECURSE
  "CMakeFiles/fig13_resource_cost.dir/fig13_resource_cost.cpp.o"
  "CMakeFiles/fig13_resource_cost.dir/fig13_resource_cost.cpp.o.d"
  "fig13_resource_cost"
  "fig13_resource_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_resource_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
