# Empty dependencies file for fig13_resource_cost.
# This may be replaced when dependencies are built.
