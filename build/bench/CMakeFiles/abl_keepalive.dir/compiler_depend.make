# Empty compiler generated dependencies file for abl_keepalive.
# This may be replaced when dependencies are built.
