file(REMOVE_RECURSE
  "CMakeFiles/abl_keepalive.dir/abl_keepalive.cpp.o"
  "CMakeFiles/abl_keepalive.dir/abl_keepalive.cpp.o.d"
  "abl_keepalive"
  "abl_keepalive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_keepalive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
