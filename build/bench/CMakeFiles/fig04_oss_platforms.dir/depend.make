# Empty dependencies file for fig04_oss_platforms.
# This may be replaced when dependencies are built.
