file(REMOVE_RECURSE
  "CMakeFiles/fig04_oss_platforms.dir/fig04_oss_platforms.cpp.o"
  "CMakeFiles/fig04_oss_platforms.dir/fig04_oss_platforms.cpp.o.d"
  "fig04_oss_platforms"
  "fig04_oss_platforms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_oss_platforms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
