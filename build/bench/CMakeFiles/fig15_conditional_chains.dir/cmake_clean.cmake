file(REMOVE_RECURSE
  "CMakeFiles/fig15_conditional_chains.dir/fig15_conditional_chains.cpp.o"
  "CMakeFiles/fig15_conditional_chains.dir/fig15_conditional_chains.cpp.o.d"
  "fig15_conditional_chains"
  "fig15_conditional_chains.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_conditional_chains.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
