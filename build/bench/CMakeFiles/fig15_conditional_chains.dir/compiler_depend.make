# Empty compiler generated dependencies file for fig15_conditional_chains.
# This may be replaced when dependencies are built.
