file(REMOVE_RECURSE
  "CMakeFiles/abl_population.dir/abl_population.cpp.o"
  "CMakeFiles/abl_population.dir/abl_population.cpp.o.d"
  "abl_population"
  "abl_population.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_population.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
