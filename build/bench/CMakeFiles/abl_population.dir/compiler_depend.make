# Empty compiler generated dependencies file for abl_population.
# This may be replaced when dependencies are built.
