file(REMOVE_RECURSE
  "CMakeFiles/abl_bus.dir/abl_bus.cpp.o"
  "CMakeFiles/abl_bus.dir/abl_bus.cpp.o.d"
  "abl_bus"
  "abl_bus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_bus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
