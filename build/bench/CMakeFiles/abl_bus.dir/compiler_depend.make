# Empty compiler generated dependencies file for abl_bus.
# This may be replaced when dependencies are built.
