# Empty dependencies file for abl_miss_policy.
# This may be replaced when dependencies are built.
