file(REMOVE_RECURSE
  "CMakeFiles/abl_miss_policy.dir/abl_miss_policy.cpp.o"
  "CMakeFiles/abl_miss_policy.dir/abl_miss_policy.cpp.o.d"
  "abl_miss_policy"
  "abl_miss_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_miss_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
