# Empty dependencies file for fig03_cloud_cold_warm.
# This may be replaced when dependencies are built.
