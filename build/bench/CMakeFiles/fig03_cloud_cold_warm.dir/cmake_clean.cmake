file(REMOVE_RECURSE
  "CMakeFiles/fig03_cloud_cold_warm.dir/fig03_cloud_cold_warm.cpp.o"
  "CMakeFiles/fig03_cloud_cold_warm.dir/fig03_cloud_cold_warm.cpp.o.d"
  "fig03_cloud_cold_warm"
  "fig03_cloud_cold_warm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_cloud_cold_warm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
