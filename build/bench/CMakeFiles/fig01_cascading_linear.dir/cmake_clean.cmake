file(REMOVE_RECURSE
  "CMakeFiles/fig01_cascading_linear.dir/fig01_cascading_linear.cpp.o"
  "CMakeFiles/fig01_cascading_linear.dir/fig01_cascading_linear.cpp.o.d"
  "fig01_cascading_linear"
  "fig01_cascading_linear.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_cascading_linear.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
