# Empty dependencies file for fig01_cascading_linear.
# This may be replaced when dependencies are built.
