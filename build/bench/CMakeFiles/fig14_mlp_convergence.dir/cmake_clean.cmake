file(REMOVE_RECURSE
  "CMakeFiles/fig14_mlp_convergence.dir/fig14_mlp_convergence.cpp.o"
  "CMakeFiles/fig14_mlp_convergence.dir/fig14_mlp_convergence.cpp.o.d"
  "fig14_mlp_convergence"
  "fig14_mlp_convergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_mlp_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
