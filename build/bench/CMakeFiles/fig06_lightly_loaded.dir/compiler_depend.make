# Empty compiler generated dependencies file for fig06_lightly_loaded.
# This may be replaced when dependencies are built.
