file(REMOVE_RECURSE
  "CMakeFiles/fig06_lightly_loaded.dir/fig06_lightly_loaded.cpp.o"
  "CMakeFiles/fig06_lightly_loaded.dir/fig06_lightly_loaded.cpp.o.d"
  "fig06_lightly_loaded"
  "fig06_lightly_loaded.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_lightly_loaded.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
