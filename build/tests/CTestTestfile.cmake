# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/json_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/workflow_test[1]_include.cmake")
include("/root/repo/build/tests/random_tree_test[1]_include.cmake")
include("/root/repo/build/tests/state_language_test[1]_include.cmake")
include("/root/repo/build/tests/cluster_test[1]_include.cmake")
include("/root/repo/build/tests/engine_test[1]_include.cmake")
include("/root/repo/build/tests/branch_model_test[1]_include.cmake")
include("/root/repo/build/tests/mlp_test[1]_include.cmake")
include("/root/repo/build/tests/jit_planner_test[1]_include.cmake")
include("/root/repo/build/tests/policy_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/metadata_store_test[1]_include.cmake")
include("/root/repo/build/tests/trace_and_dag_test[1]_include.cmake")
include("/root/repo/build/tests/platform_misc_test[1]_include.cmake")
include("/root/repo/build/tests/message_bus_test[1]_include.cmake")
include("/root/repo/build/tests/placement_and_population_test[1]_include.cmake")
include("/root/repo/build/tests/dag_semantics_test[1]_include.cmake")
include("/root/repo/build/tests/state_language_roundtrip_test[1]_include.cmake")
include("/root/repo/build/tests/dot_export_test[1]_include.cmake")
