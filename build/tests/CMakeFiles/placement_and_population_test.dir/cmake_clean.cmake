file(REMOVE_RECURSE
  "CMakeFiles/placement_and_population_test.dir/placement_and_population_test.cpp.o"
  "CMakeFiles/placement_and_population_test.dir/placement_and_population_test.cpp.o.d"
  "placement_and_population_test"
  "placement_and_population_test.pdb"
  "placement_and_population_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/placement_and_population_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
