# Empty compiler generated dependencies file for placement_and_population_test.
# This may be replaced when dependencies are built.
