# Empty dependencies file for trace_and_dag_test.
# This may be replaced when dependencies are built.
