file(REMOVE_RECURSE
  "CMakeFiles/trace_and_dag_test.dir/trace_and_dag_test.cpp.o"
  "CMakeFiles/trace_and_dag_test.dir/trace_and_dag_test.cpp.o.d"
  "trace_and_dag_test"
  "trace_and_dag_test.pdb"
  "trace_and_dag_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_and_dag_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
