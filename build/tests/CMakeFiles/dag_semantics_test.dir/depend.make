# Empty dependencies file for dag_semantics_test.
# This may be replaced when dependencies are built.
