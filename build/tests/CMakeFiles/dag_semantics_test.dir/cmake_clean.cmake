file(REMOVE_RECURSE
  "CMakeFiles/dag_semantics_test.dir/dag_semantics_test.cpp.o"
  "CMakeFiles/dag_semantics_test.dir/dag_semantics_test.cpp.o.d"
  "dag_semantics_test"
  "dag_semantics_test.pdb"
  "dag_semantics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dag_semantics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
