# Empty dependencies file for metadata_store_test.
# This may be replaced when dependencies are built.
