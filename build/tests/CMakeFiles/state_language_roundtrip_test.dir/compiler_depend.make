# Empty compiler generated dependencies file for state_language_roundtrip_test.
# This may be replaced when dependencies are built.
