# Empty dependencies file for platform_misc_test.
# This may be replaced when dependencies are built.
