file(REMOVE_RECURSE
  "CMakeFiles/platform_misc_test.dir/platform_misc_test.cpp.o"
  "CMakeFiles/platform_misc_test.dir/platform_misc_test.cpp.o.d"
  "platform_misc_test"
  "platform_misc_test.pdb"
  "platform_misc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/platform_misc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
