file(REMOVE_RECURSE
  "CMakeFiles/jit_planner_test.dir/jit_planner_test.cpp.o"
  "CMakeFiles/jit_planner_test.dir/jit_planner_test.cpp.o.d"
  "jit_planner_test"
  "jit_planner_test.pdb"
  "jit_planner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jit_planner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
