# Empty dependencies file for jit_planner_test.
# This may be replaced when dependencies are built.
