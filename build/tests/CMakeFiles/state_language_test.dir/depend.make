# Empty dependencies file for state_language_test.
# This may be replaced when dependencies are built.
