file(REMOVE_RECURSE
  "CMakeFiles/state_language_test.dir/state_language_test.cpp.o"
  "CMakeFiles/state_language_test.dir/state_language_test.cpp.o.d"
  "state_language_test"
  "state_language_test.pdb"
  "state_language_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/state_language_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
