file(REMOVE_RECURSE
  "CMakeFiles/random_tree_test.dir/random_tree_test.cpp.o"
  "CMakeFiles/random_tree_test.dir/random_tree_test.cpp.o.d"
  "random_tree_test"
  "random_tree_test.pdb"
  "random_tree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/random_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
