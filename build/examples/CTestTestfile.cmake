# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_ecommerce_checkout "/root/repo/build/examples/ecommerce_checkout")
set_tests_properties(example_ecommerce_checkout PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_image_pipeline "/root/repo/build/examples/image_pipeline")
set_tests_properties(example_image_pipeline PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_implicit_chain_inference "/root/repo/build/examples/implicit_chain_inference")
set_tests_properties(example_implicit_chain_inference PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_aggressiveness_tuning "/root/repo/build/examples/aggressiveness_tuning")
set_tests_properties(example_aggressiveness_tuning PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_fleet_dashboard "/root/repo/build/examples/fleet_dashboard")
set_tests_properties(example_fleet_dashboard PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cli_demo "/root/repo/build/examples/run_workflow_cli" "--requests" "2" "--cold-each")
set_tests_properties(example_cli_demo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cli_modes "/root/repo/build/examples/run_workflow_cli" "--mode" "spec" "--requests" "2")
set_tests_properties(example_cli_modes PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cli_help "/root/repo/build/examples/run_workflow_cli" "--help")
set_tests_properties(example_cli_help PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;25;add_test;/root/repo/examples/CMakeLists.txt;0;")
