# Empty dependencies file for run_workflow_cli.
# This may be replaced when dependencies are built.
