file(REMOVE_RECURSE
  "CMakeFiles/run_workflow_cli.dir/run_workflow_cli.cpp.o"
  "CMakeFiles/run_workflow_cli.dir/run_workflow_cli.cpp.o.d"
  "run_workflow_cli"
  "run_workflow_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/run_workflow_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
