# Empty compiler generated dependencies file for ecommerce_checkout.
# This may be replaced when dependencies are built.
