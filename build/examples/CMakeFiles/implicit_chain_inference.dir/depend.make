# Empty dependencies file for implicit_chain_inference.
# This may be replaced when dependencies are built.
