file(REMOVE_RECURSE
  "CMakeFiles/implicit_chain_inference.dir/implicit_chain_inference.cpp.o"
  "CMakeFiles/implicit_chain_inference.dir/implicit_chain_inference.cpp.o.d"
  "implicit_chain_inference"
  "implicit_chain_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/implicit_chain_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
