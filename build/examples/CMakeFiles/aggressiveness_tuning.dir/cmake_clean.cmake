file(REMOVE_RECURSE
  "CMakeFiles/aggressiveness_tuning.dir/aggressiveness_tuning.cpp.o"
  "CMakeFiles/aggressiveness_tuning.dir/aggressiveness_tuning.cpp.o.d"
  "aggressiveness_tuning"
  "aggressiveness_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aggressiveness_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
