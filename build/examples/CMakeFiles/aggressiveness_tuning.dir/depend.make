# Empty dependencies file for aggressiveness_tuning.
# This may be replaced when dependencies are built.
