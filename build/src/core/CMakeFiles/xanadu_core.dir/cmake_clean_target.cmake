file(REMOVE_RECURSE
  "libxanadu_core.a"
)
