# Empty compiler generated dependencies file for xanadu_core.
# This may be replaced when dependencies are built.
