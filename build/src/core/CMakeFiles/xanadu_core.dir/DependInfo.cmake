
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/branch_model.cpp" "src/core/CMakeFiles/xanadu_core.dir/branch_model.cpp.o" "gcc" "src/core/CMakeFiles/xanadu_core.dir/branch_model.cpp.o.d"
  "/root/repo/src/core/dispatch_manager.cpp" "src/core/CMakeFiles/xanadu_core.dir/dispatch_manager.cpp.o" "gcc" "src/core/CMakeFiles/xanadu_core.dir/dispatch_manager.cpp.o.d"
  "/root/repo/src/core/jit_planner.cpp" "src/core/CMakeFiles/xanadu_core.dir/jit_planner.cpp.o" "gcc" "src/core/CMakeFiles/xanadu_core.dir/jit_planner.cpp.o.d"
  "/root/repo/src/core/metadata_store.cpp" "src/core/CMakeFiles/xanadu_core.dir/metadata_store.cpp.o" "gcc" "src/core/CMakeFiles/xanadu_core.dir/metadata_store.cpp.o.d"
  "/root/repo/src/core/mlp.cpp" "src/core/CMakeFiles/xanadu_core.dir/mlp.cpp.o" "gcc" "src/core/CMakeFiles/xanadu_core.dir/mlp.cpp.o.d"
  "/root/repo/src/core/profile.cpp" "src/core/CMakeFiles/xanadu_core.dir/profile.cpp.o" "gcc" "src/core/CMakeFiles/xanadu_core.dir/profile.cpp.o.d"
  "/root/repo/src/core/xanadu_policy.cpp" "src/core/CMakeFiles/xanadu_core.dir/xanadu_policy.cpp.o" "gcc" "src/core/CMakeFiles/xanadu_core.dir/xanadu_policy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/xanadu_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/xanadu_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workflow/CMakeFiles/xanadu_workflow.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/xanadu_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/xanadu_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/xanadu_metrics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
