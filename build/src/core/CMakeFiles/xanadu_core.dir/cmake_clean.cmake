file(REMOVE_RECURSE
  "CMakeFiles/xanadu_core.dir/branch_model.cpp.o"
  "CMakeFiles/xanadu_core.dir/branch_model.cpp.o.d"
  "CMakeFiles/xanadu_core.dir/dispatch_manager.cpp.o"
  "CMakeFiles/xanadu_core.dir/dispatch_manager.cpp.o.d"
  "CMakeFiles/xanadu_core.dir/jit_planner.cpp.o"
  "CMakeFiles/xanadu_core.dir/jit_planner.cpp.o.d"
  "CMakeFiles/xanadu_core.dir/metadata_store.cpp.o"
  "CMakeFiles/xanadu_core.dir/metadata_store.cpp.o.d"
  "CMakeFiles/xanadu_core.dir/mlp.cpp.o"
  "CMakeFiles/xanadu_core.dir/mlp.cpp.o.d"
  "CMakeFiles/xanadu_core.dir/profile.cpp.o"
  "CMakeFiles/xanadu_core.dir/profile.cpp.o.d"
  "CMakeFiles/xanadu_core.dir/xanadu_policy.cpp.o"
  "CMakeFiles/xanadu_core.dir/xanadu_policy.cpp.o.d"
  "libxanadu_core.a"
  "libxanadu_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xanadu_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
