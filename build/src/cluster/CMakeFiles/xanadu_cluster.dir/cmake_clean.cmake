file(REMOVE_RECURSE
  "CMakeFiles/xanadu_cluster.dir/cluster.cpp.o"
  "CMakeFiles/xanadu_cluster.dir/cluster.cpp.o.d"
  "CMakeFiles/xanadu_cluster.dir/sandbox.cpp.o"
  "CMakeFiles/xanadu_cluster.dir/sandbox.cpp.o.d"
  "CMakeFiles/xanadu_cluster.dir/worker.cpp.o"
  "CMakeFiles/xanadu_cluster.dir/worker.cpp.o.d"
  "libxanadu_cluster.a"
  "libxanadu_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xanadu_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
