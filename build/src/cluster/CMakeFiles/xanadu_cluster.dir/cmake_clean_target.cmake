file(REMOVE_RECURSE
  "libxanadu_cluster.a"
)
