# Empty dependencies file for xanadu_cluster.
# This may be replaced when dependencies are built.
