# Empty compiler generated dependencies file for xanadu_metrics.
# This may be replaced when dependencies are built.
