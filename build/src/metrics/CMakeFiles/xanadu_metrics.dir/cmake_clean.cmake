file(REMOVE_RECURSE
  "CMakeFiles/xanadu_metrics.dir/cost.cpp.o"
  "CMakeFiles/xanadu_metrics.dir/cost.cpp.o.d"
  "CMakeFiles/xanadu_metrics.dir/report.cpp.o"
  "CMakeFiles/xanadu_metrics.dir/report.cpp.o.d"
  "CMakeFiles/xanadu_metrics.dir/trace.cpp.o"
  "CMakeFiles/xanadu_metrics.dir/trace.cpp.o.d"
  "libxanadu_metrics.a"
  "libxanadu_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xanadu_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
