file(REMOVE_RECURSE
  "libxanadu_metrics.a"
)
