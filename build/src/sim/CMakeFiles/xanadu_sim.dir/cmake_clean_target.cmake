file(REMOVE_RECURSE
  "libxanadu_sim.a"
)
