# Empty compiler generated dependencies file for xanadu_sim.
# This may be replaced when dependencies are built.
