file(REMOVE_RECURSE
  "CMakeFiles/xanadu_sim.dir/simulator.cpp.o"
  "CMakeFiles/xanadu_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/xanadu_sim.dir/time.cpp.o"
  "CMakeFiles/xanadu_sim.dir/time.cpp.o.d"
  "libxanadu_sim.a"
  "libxanadu_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xanadu_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
