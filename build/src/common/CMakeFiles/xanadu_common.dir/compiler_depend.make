# Empty compiler generated dependencies file for xanadu_common.
# This may be replaced when dependencies are built.
