file(REMOVE_RECURSE
  "CMakeFiles/xanadu_common.dir/json.cpp.o"
  "CMakeFiles/xanadu_common.dir/json.cpp.o.d"
  "CMakeFiles/xanadu_common.dir/rng.cpp.o"
  "CMakeFiles/xanadu_common.dir/rng.cpp.o.d"
  "CMakeFiles/xanadu_common.dir/stats.cpp.o"
  "CMakeFiles/xanadu_common.dir/stats.cpp.o.d"
  "libxanadu_common.a"
  "libxanadu_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xanadu_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
