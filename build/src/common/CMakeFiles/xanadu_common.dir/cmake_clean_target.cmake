file(REMOVE_RECURSE
  "libxanadu_common.a"
)
