
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workflow/builders.cpp" "src/workflow/CMakeFiles/xanadu_workflow.dir/builders.cpp.o" "gcc" "src/workflow/CMakeFiles/xanadu_workflow.dir/builders.cpp.o.d"
  "/root/repo/src/workflow/dag.cpp" "src/workflow/CMakeFiles/xanadu_workflow.dir/dag.cpp.o" "gcc" "src/workflow/CMakeFiles/xanadu_workflow.dir/dag.cpp.o.d"
  "/root/repo/src/workflow/dot_export.cpp" "src/workflow/CMakeFiles/xanadu_workflow.dir/dot_export.cpp.o" "gcc" "src/workflow/CMakeFiles/xanadu_workflow.dir/dot_export.cpp.o.d"
  "/root/repo/src/workflow/random_dag.cpp" "src/workflow/CMakeFiles/xanadu_workflow.dir/random_dag.cpp.o" "gcc" "src/workflow/CMakeFiles/xanadu_workflow.dir/random_dag.cpp.o.d"
  "/root/repo/src/workflow/random_tree.cpp" "src/workflow/CMakeFiles/xanadu_workflow.dir/random_tree.cpp.o" "gcc" "src/workflow/CMakeFiles/xanadu_workflow.dir/random_tree.cpp.o.d"
  "/root/repo/src/workflow/state_language.cpp" "src/workflow/CMakeFiles/xanadu_workflow.dir/state_language.cpp.o" "gcc" "src/workflow/CMakeFiles/xanadu_workflow.dir/state_language.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/xanadu_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/xanadu_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
