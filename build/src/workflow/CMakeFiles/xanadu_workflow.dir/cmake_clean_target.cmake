file(REMOVE_RECURSE
  "libxanadu_workflow.a"
)
