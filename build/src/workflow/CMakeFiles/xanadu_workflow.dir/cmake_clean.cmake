file(REMOVE_RECURSE
  "CMakeFiles/xanadu_workflow.dir/builders.cpp.o"
  "CMakeFiles/xanadu_workflow.dir/builders.cpp.o.d"
  "CMakeFiles/xanadu_workflow.dir/dag.cpp.o"
  "CMakeFiles/xanadu_workflow.dir/dag.cpp.o.d"
  "CMakeFiles/xanadu_workflow.dir/dot_export.cpp.o"
  "CMakeFiles/xanadu_workflow.dir/dot_export.cpp.o.d"
  "CMakeFiles/xanadu_workflow.dir/random_dag.cpp.o"
  "CMakeFiles/xanadu_workflow.dir/random_dag.cpp.o.d"
  "CMakeFiles/xanadu_workflow.dir/random_tree.cpp.o"
  "CMakeFiles/xanadu_workflow.dir/random_tree.cpp.o.d"
  "CMakeFiles/xanadu_workflow.dir/state_language.cpp.o"
  "CMakeFiles/xanadu_workflow.dir/state_language.cpp.o.d"
  "libxanadu_workflow.a"
  "libxanadu_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xanadu_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
