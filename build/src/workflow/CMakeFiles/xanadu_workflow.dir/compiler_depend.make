# Empty compiler generated dependencies file for xanadu_workflow.
# This may be replaced when dependencies are built.
