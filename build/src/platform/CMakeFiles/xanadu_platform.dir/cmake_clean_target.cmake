file(REMOVE_RECURSE
  "libxanadu_platform.a"
)
