# Empty compiler generated dependencies file for xanadu_platform.
# This may be replaced when dependencies are built.
