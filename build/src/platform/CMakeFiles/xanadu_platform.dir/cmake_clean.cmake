file(REMOVE_RECURSE
  "CMakeFiles/xanadu_platform.dir/calibration.cpp.o"
  "CMakeFiles/xanadu_platform.dir/calibration.cpp.o.d"
  "CMakeFiles/xanadu_platform.dir/engine.cpp.o"
  "CMakeFiles/xanadu_platform.dir/engine.cpp.o.d"
  "CMakeFiles/xanadu_platform.dir/message_bus.cpp.o"
  "CMakeFiles/xanadu_platform.dir/message_bus.cpp.o.d"
  "CMakeFiles/xanadu_platform.dir/worker_state.cpp.o"
  "CMakeFiles/xanadu_platform.dir/worker_state.cpp.o.d"
  "libxanadu_platform.a"
  "libxanadu_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xanadu_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
