file(REMOVE_RECURSE
  "libxanadu_workload.a"
)
