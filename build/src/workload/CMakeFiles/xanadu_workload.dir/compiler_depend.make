# Empty compiler generated dependencies file for xanadu_workload.
# This may be replaced when dependencies are built.
