file(REMOVE_RECURSE
  "CMakeFiles/xanadu_workload.dir/arrivals.cpp.o"
  "CMakeFiles/xanadu_workload.dir/arrivals.cpp.o.d"
  "CMakeFiles/xanadu_workload.dir/case_studies.cpp.o"
  "CMakeFiles/xanadu_workload.dir/case_studies.cpp.o.d"
  "CMakeFiles/xanadu_workload.dir/population.cpp.o"
  "CMakeFiles/xanadu_workload.dir/population.cpp.o.d"
  "CMakeFiles/xanadu_workload.dir/runner.cpp.o"
  "CMakeFiles/xanadu_workload.dir/runner.cpp.o.d"
  "libxanadu_workload.a"
  "libxanadu_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xanadu_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
