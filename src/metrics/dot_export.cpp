#include "metrics/dot_export.hpp"

#include <cstdio>
#include <sstream>

namespace xanadu::metrics {

using workflow::DispatchMode;
using workflow::Edge;
using workflow::Node;
using workflow::WorkflowDag;

namespace {

std::string escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

void emit_node(std::ostringstream& out, const Node& node,
               const platform::NodeRecord* record) {
  out << "  n" << node.id.value() << " [label=\"" << escape(node.fn.name);
  if (record != nullptr &&
      record->status == platform::NodeStatus::Completed) {
    char timing[64];
    std::snprintf(timing, sizeof timing, "\\n%.0f..%.0fms%s",
                  record->exec_start.millis(), record->exec_end.millis(),
                  record->cold ? " (cold)" : "");
    out << timing;
  }
  out << '"';
  const bool is_conditional =
      node.dispatch == DispatchMode::Xor && node.children.size() > 1;
  out << ", shape=" << (is_conditional ? "diamond" : "box");
  if (record != nullptr) {
    switch (record->status) {
      case platform::NodeStatus::Completed:
        out << ", style=filled, fillcolor=\""
            << (record->cold ? "#f4b8b8" : "#bde5c8") << '"';
        break;
      case platform::NodeStatus::Skipped:
        out << ", style=dashed, color=gray, fontcolor=gray";
        break;
      default:
        break;
    }
  }
  out << "];\n";
}

std::string render(const WorkflowDag& dag,
                   const platform::RequestResult* result) {
  std::ostringstream out;
  out << "digraph \"" << escape(dag.name()) << "\" {\n";
  out << "  rankdir=LR;\n  node [fontname=\"Helvetica\"];\n";
  for (const Node& node : dag.nodes()) {
    const platform::NodeRecord* record =
        result != nullptr && node.id.value() < result->node_records.size()
            ? &result->node_records[node.id.value()]
            : nullptr;
    emit_node(out, node, record);
  }
  for (const Node& node : dag.nodes()) {
    const bool xor_parent =
        node.dispatch == DispatchMode::Xor && node.children.size() > 1;
    for (const Edge& e : node.children) {
      out << "  n" << node.id.value() << " -> n" << e.child.value();
      std::string label;
      if (xor_parent) {
        char p[32];
        std::snprintf(p, sizeof p, "p=%.2f", e.probability);
        label = p;
      }
      if (e.delay > sim::Duration::zero()) {
        char d[32];
        std::snprintf(d, sizeof d, "%s+%.0fms", label.empty() ? "" : " ",
                      e.delay.millis());
        label += d;
      }
      if (!label.empty()) out << " [label=\"" << label << "\"]";
      out << ";\n";
    }
  }
  out << "}\n";
  return out.str();
}

}  // namespace

std::string to_dot(const WorkflowDag& dag) { return render(dag, nullptr); }

std::string to_dot(const WorkflowDag& dag,
                   const platform::RequestResult& result) {
  return render(dag, &result);
}

}  // namespace xanadu::metrics
