#pragma once

// The paper's metrics of goodness and cost (Section 2.4):
//
//   C_D         latency overhead of a workflow request beyond the execution
//               time of its slowest control-flow branch (Equation 1),
//   C_R_cpu     CPU time spent by workers before being put to use,
//   C_R_memory  memory-time locked by workers before being put to use
//               (Equation 2),
//   phi_cpu     C_R_cpu * C_D          (s^2),
//   phi_memory  C_R_memory * C_D       (MB s^2).
//
// C_D is computed per request by the platform engine; the C_R quantities are
// deltas of the cluster ResourceLedger over an experiment window.

#include <cstddef>

#include "cluster/worker.hpp"
#include "sim/time.hpp"

namespace xanadu::metrics {

/// Resource-cost view over an experiment window (a ledger delta).
struct ResourceCost {
  /// Aggregate CPU spent before workers start executing requests:
  /// provisioning work plus pre-use idle burn (core-seconds).
  double cpu_core_seconds = 0.0;
  /// Aggregate memory-time locked before first use (MB-seconds, the paper's
  /// "MBs" unit in Equation 2).
  double memory_mb_seconds = 0.0;
  /// Idle totals over the whole window (pre-use and between-use), reported
  /// by Figure 13 as "cumulative idle CPU time" / "cumulative memory used".
  double idle_cpu_core_seconds = 0.0;
  double idle_memory_mb_seconds = 0.0;
  std::size_t workers_provisioned = 0;
  std::size_t workers_wasted = 0;
};

/// Derives the paper's C_R quantities from a ledger delta.
[[nodiscard]] ResourceCost resource_cost(const cluster::ResourceLedger& delta);

/// Joint penalty factors (Section 2.4).  `overhead` is C_D.
struct Penalty {
  double phi_cpu_s2 = 0.0;
  double phi_memory_mb_s2 = 0.0;
};

[[nodiscard]] Penalty penalty(const ResourceCost& cost, sim::Duration overhead);

}  // namespace xanadu::metrics
