#include "metrics/report.hpp"

#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace xanadu::metrics {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument{"Table: no headers"};
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument{"Table::add_row: cell count mismatch"};
  }
  rows_.push_back(std::move(cells));
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      out << (i == 0 ? "| " : " | ");
      out << cells[i];
      out << std::string(widths[i] - cells[i].size(), ' ');
    }
    out << " |\n";
  };
  emit_row(headers_);
  out << '|';
  for (const std::size_t w : widths) out << std::string(w + 2, '-') << '|';
  out << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

void Table::print(const std::string& title) const {
  std::printf("\n== %s ==\n%s", title.c_str(), to_string().c_str());
  std::fflush(stdout);
}

Table fault_report(const sim::FaultCounters& faults,
                   const platform::RecoveryStats& recovery) {
  Table table({"counter", "count"});
  auto row = [&](const char* name, std::uint64_t count) {
    table.add_row({name, std::to_string(count)});
  };
  row("bus drops", faults.bus_drops);
  row("bus duplicates", faults.bus_duplicates);
  row("bus delays", faults.bus_delays);
  row("provision failures", faults.provision_failures);
  row("worker crashes", faults.worker_crashes);
  row("host outages", faults.host_outages);
  row("stragglers", faults.stragglers);
  row("command retries", recovery.command_retries);
  row("builds abandoned", recovery.builds_abandoned);
  row("node retries", recovery.node_retries);
  row("requests failed", recovery.requests_failed);
  row("orphans reaped", recovery.orphans_reaped);
  row("outage worker kills", recovery.outage_worker_kills);
  return table;
}

std::string fmt(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, value);
  return buf;
}

std::string fmt_ms(double millis, int decimals) {
  return fmt(millis, decimals) + "ms";
}

std::string fmt_s(double seconds, int decimals) {
  return fmt(seconds, decimals) + "s";
}

std::string fmt_pct(double fraction, int decimals) {
  return fmt(fraction * 100.0, decimals) + "%";
}

}  // namespace xanadu::metrics
