#pragma once

// Streaming trace consumer: constant-memory metrics for million-request runs.
//
// The batch path (metrics::trace) renders every RequestResult it is handed;
// retaining all of them made peak RSS grow linearly with run length (230 MiB
// at 100k requests, ~2.3 GiB extrapolated at 1M).  StreamingTrace consumes
// each result once, in submission order, and keeps only:
//
//   - an incremental FNV-1a digest over the exact bytes the batch
//     trace_csv() renderer would have produced (header first, then each
//     result's rows in consume order) -- so a streamed run's digest is
//     byte-identical to trace_digest() over the retained vector, including
//     the six pinned GoldenDigestGuard values;
//   - online aggregates (RunStats): plain sums folded in the same order as
//     the batch RunOutcome loops (bit-identical means), a Welford
//     accumulator for overhead variance, cold-start fraction, and the
//     fraction-over-threshold counter;
//   - a fixed-bin latency histogram for tail quantiles;
//   - an optional fixed-capacity ring of the most recent results;
//   - an optional chunked CSV spill whose file bytes are exactly the
//     digested bytes, so a spilled run can be replayed and re-verified.
//
// Per-source (tenant) lanes mirror the aggregate: each source gets its own
// digest and RunStats, folded in the source's own arrival order (the merged
// order restricted to one source), matching MixedOutcome::per_source.
//
// Node function names and source labels are interned once per add_source()
// into a common::StringInterner; the per-row renderer works from the interned
// views, never re-hashing or copying name strings on the hot path.

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/interner.hpp"
#include "platform/request.hpp"
#include "sim/time.hpp"
#include "workflow/dag.hpp"

namespace xanadu::metrics {

/// Configuration for StreamingTrace.  The defaults keep everything bounded
/// and cheap; spill is off unless a path is given.
struct StreamOptions {
  /// Most-recent results retained for inspection; 0 disables the ring.
  std::size_t ring_capacity = 0;
  /// Latency histogram: `histogram_bins` bins of `histogram_bin_ms` each,
  /// recording completed-request overhead; values past the last bin land in
  /// an explicit overflow bucket.
  double histogram_bin_ms = 1.0;
  std::size_t histogram_bins = 512;
  /// Threshold for the exact fraction-over counter (RunOutcome::fraction_over
  /// answers exactly for this threshold even with retention off).
  sim::Duration over_threshold = sim::Duration::from_millis(100);
  /// CSV spill file; empty disables spilling.
  std::string spill_path;
  /// Spill buffer flush granularity.
  std::size_t spill_chunk_bytes = 1 << 20;
};

/// Online per-request aggregates.  Sums are folded in consume order, which
/// the workload harness guarantees is submission-slot order -- the same
/// order the batch RunOutcome loops fold retained results -- so the derived
/// means are bit-identical doubles, not merely close.
struct RunStats {
  /// Threshold the over_threshold counter was folded against (copied from
  /// StreamOptions::over_threshold by StreamingTrace).
  sim::Duration threshold = sim::Duration::from_millis(100);
  std::uint64_t total = 0;
  std::uint64_t failed = 0;
  double sum_overhead_ms = 0.0;
  double sum_end_to_end_ms = 0.0;
  double sum_cold_starts = 0.0;
  double sum_workers = 0.0;
  /// Over *all* requests (failed included), like RunOutcome::mean_missed_nodes.
  double sum_missed_nodes = 0.0;
  /// Completed requests with overhead strictly over the configured threshold.
  std::uint64_t over_threshold = 0;
  /// Welford accumulator over completed-request overhead (ms).
  double welford_mean = 0.0;
  double welford_m2 = 0.0;

  void consume(const platform::RequestResult& result);

  /// Folds another lane's sums into this one (Chan's parallel-Welford update
  /// for the variance accumulator).  Thresholds must match.  Used by the
  /// sharded runner to combine per-shard lanes in shard order -- the merge
  /// is pure arithmetic over the operands, so it is deterministic for a
  /// deterministic merge order.
  void merge(const RunStats& other);

  [[nodiscard]] std::uint64_t completed() const { return total - failed; }
  [[nodiscard]] double completion_rate() const {
    if (total == 0) return 1.0;
    return static_cast<double>(completed()) / static_cast<double>(total);
  }
  [[nodiscard]] double mean_overhead_ms() const {
    return completed() == 0 ? 0.0
                            : sum_overhead_ms / static_cast<double>(completed());
  }
  [[nodiscard]] double mean_end_to_end_ms() const {
    return completed() == 0
               ? 0.0
               : sum_end_to_end_ms / static_cast<double>(completed());
  }
  [[nodiscard]] double mean_cold_starts() const {
    return completed() == 0 ? 0.0
                            : sum_cold_starts / static_cast<double>(completed());
  }
  [[nodiscard]] double mean_workers_per_request() const {
    return completed() == 0 ? 0.0
                            : sum_workers / static_cast<double>(completed());
  }
  [[nodiscard]] double mean_missed_nodes() const {
    return total == 0 ? 0.0
                      : sum_missed_nodes / static_cast<double>(total);
  }
  [[nodiscard]] double fraction_over_threshold() const {
    return completed() == 0 ? 0.0
                            : static_cast<double>(over_threshold) /
                                  static_cast<double>(completed());
  }
  /// Population variance of completed-request overhead; 0 for < 2 samples.
  [[nodiscard]] double overhead_variance() const {
    return completed() < 2 ? 0.0
                           : welford_m2 / static_cast<double>(completed());
  }
};

/// Fixed-bin latency histogram with an explicit overflow bucket.  Bounded
/// memory regardless of run length; quantiles are bin-upper-edge estimates
/// (exact to within one bin width for in-range samples).
class LatencyHistogram {
 public:
  LatencyHistogram() = default;
  LatencyHistogram(double bin_width_ms, std::size_t bins);

  void record(double value_ms);

  /// Adds another histogram's counts bin-by-bin.  Shapes (bin width and bin
  /// count) must match.
  void merge(const LatencyHistogram& other);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] std::uint64_t overflow() const { return overflow_; }
  [[nodiscard]] double bin_width_ms() const { return bin_width_ms_; }
  [[nodiscard]] std::size_t bins() const { return counts_.size(); }
  [[nodiscard]] std::uint64_t bin_count(std::size_t bin) const {
    return counts_[bin];
  }
  [[nodiscard]] double max_recorded_ms() const { return max_recorded_ms_; }

  /// Upper edge of the bin containing the q-quantile (q in [0, 1]); the
  /// exact max for quantiles that land in the overflow bucket; 0 when empty.
  [[nodiscard]] double quantile_ms(double q) const;

  /// Estimated fraction of recorded samples strictly above `value_ms`: counts
  /// bins whose whole range lies strictly above it, plus overflow -- exact to
  /// within one bin width.  A threshold on an exact bin edge k*w excludes bin
  /// k (whose samples may equal the threshold), matching the strict `>` of
  /// the exact retained-results path.  0 when empty.
  [[nodiscard]] double fraction_above(double value_ms) const;

 private:
  double bin_width_ms_ = 1.0;
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  std::uint64_t overflow_ = 0;
  double max_recorded_ms_ = 0.0;
};

/// Chunked CSV spill writer.  Buffers rendered rows and flushes in
/// `chunk_bytes` units; the bytes written to disk are exactly the bytes the
/// incremental digest hashed, so replay_spill() can re-verify a run from the
/// file alone.
class CsvSpill {
 public:
  CsvSpill(const std::string& path, std::size_t chunk_bytes);
  ~CsvSpill();

  CsvSpill(const CsvSpill&) = delete;
  CsvSpill& operator=(const CsvSpill&) = delete;

  void append(std::string_view text);
  /// Flushes the buffer to disk.  Called by the destructor as well; explicit
  /// finish() lets callers observe write errors.
  void finish();

  [[nodiscard]] std::uint64_t bytes_written() const { return bytes_; }
  [[nodiscard]] bool ok() const { return out_.good(); }

 private:
  std::ofstream out_;
  std::string buffer_;
  std::size_t chunk_bytes_;
  std::uint64_t bytes_ = 0;
};

/// Result of re-reading a spill file.
struct SpillReplay {
  bool ok = false;
  std::string error;
  /// FNV-1a over the file bytes -- comparable to StreamingTrace::digest().
  std::uint64_t digest = 0;
  /// Data rows (header excluded).
  std::uint64_t rows = 0;
};

/// Reads a spill file back, validating structure (header line, 13 fields per
/// row, numeric fields parse, trailing newline) and recomputing the digest.
/// Truncated files and corrupted rows come back ok=false with a diagnostic.
[[nodiscard]] SpillReplay replay_spill(const std::string& path);

/// The streaming consumer.  Register every source (workflow dag + label)
/// up front, then feed each completed result exactly once, in global
/// submission order; per-source lanes see their own sub-order automatically.
class StreamingTrace {
 public:
  explicit StreamingTrace(StreamOptions options = {});

  StreamingTrace(const StreamingTrace&) = delete;
  StreamingTrace& operator=(const StreamingTrace&) = delete;

  /// Registers a source; returns its index.  `dag` must outlive the trace.
  /// Function names and the label are interned here, once.
  std::size_t add_source(const workflow::WorkflowDag& dag, std::string_view label);

  /// Folds one completed result into the aggregate and its source's lane.
  void consume(std::size_t source, const platform::RequestResult& result);

  /// Flushes the spill (if any).  Idempotent.
  void finish();

  // -- Aggregate --------------------------------------------------------------
  [[nodiscard]] std::uint64_t digest() const { return digest_; }
  [[nodiscard]] const RunStats& stats() const { return stats_; }
  [[nodiscard]] const LatencyHistogram& histogram() const { return histogram_; }
  [[nodiscard]] std::uint64_t consumed() const { return stats_.total; }
  /// Ring snapshot, oldest first.  Empty when ring_capacity is 0.
  [[nodiscard]] std::vector<platform::RequestResult> recent() const;

  // -- Per-source lanes -------------------------------------------------------
  [[nodiscard]] std::size_t source_count() const { return sources_.size(); }
  [[nodiscard]] std::uint64_t source_digest(std::size_t source) const {
    return sources_[source].digest;
  }
  [[nodiscard]] const RunStats& source_stats(std::size_t source) const {
    return sources_[source].stats;
  }
  [[nodiscard]] std::string_view source_label(std::size_t source) const {
    return labels_.view(sources_[source].label);
  }

  [[nodiscard]] const StreamOptions& options() const { return options_; }

 private:
  struct Source {
    const workflow::WorkflowDag* dag = nullptr;
    common::Symbol label = 0;
    /// Interned function-name views, index-aligned with dag nodes.
    std::vector<std::string_view> node_names;
    std::uint64_t digest = 0;
    RunStats stats;
  };

  StreamOptions options_;
  common::StringInterner labels_;
  std::vector<Source> sources_;
  std::uint64_t digest_ = 0;
  RunStats stats_;
  LatencyHistogram histogram_;
  /// Ring storage: slots_[(start_ + i) % capacity] for i in [0, size_).
  std::vector<platform::RequestResult> ring_;
  std::size_t ring_start_ = 0;
  std::size_t ring_size_ = 0;
  std::unique_ptr<CsvSpill> spill_;
  /// Reused row-render buffer; cleared per consume, capacity retained.
  std::string scratch_;
};

}  // namespace xanadu::metrics
