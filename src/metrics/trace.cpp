#include "metrics/trace.hpp"

#include <sstream>

#include "common/hash.hpp"

namespace xanadu::metrics {

namespace {

const char* status_name(platform::NodeStatus status) {
  switch (status) {
    case platform::NodeStatus::Pending: return "pending";
    case platform::NodeStatus::Triggered: return "triggered";
    case platform::NodeStatus::Executing: return "executing";
    case platform::NodeStatus::Completed: return "completed";
    case platform::NodeStatus::Skipped: return "skipped";
  }
  return "unknown";
}

// Shared row renderer, parameterized on the node-name lookup so the dag and
// interned-name paths emit byte-identical text.  The ostringstream default
// double formatting is load-bearing: the pinned GoldenDigestGuard digests
// hash exactly these bytes.
template <typename NameOf>
void append_rows(std::string& text, const platform::RequestResult& result,
                 NameOf&& name_of) {
  std::ostringstream out;
  for (std::size_t i = 0; i < result.node_records.size(); ++i) {
    const platform::NodeRecord& record = result.node_records[i];
    out << result.id.value() << ',' << i << ',' << name_of(i) << ','
        << status_name(record.status) << ',';
    const bool ran = record.status == platform::NodeStatus::Completed;
    if (ran) {
      out << record.trigger_time.millis() << ',' << record.exec_start.millis()
          << ',' << record.exec_end.millis() << ','
          << record.exec_duration.millis();
    } else {
      out << ",,,";
    }
    out << ',' << (record.cold ? 1 : 0) << ','
        << record.provision_wait.millis() << ',' << record.retries << ','
        << (result.failed ? 1 : 0) << ',';
    for (std::size_t p = 0; p < record.invoked_by.size(); ++p) {
      if (p > 0) out << ';';
      out << name_of(record.invoked_by[p].value());
    }
    out << '\n';
  }
  text += out.str();
}

}  // namespace

std::string trace_csv_header() {
  return "request,node,function,status,trigger_ms,exec_start_ms,exec_end_ms,"
         "exec_duration_ms,cold,provision_wait_ms,retries,failed,invoked_by\n";
}

void append_trace_csv(std::string& out, const platform::RequestResult& result,
                      const workflow::WorkflowDag& dag) {
  append_rows(out, result, [&dag](std::size_t node) -> const std::string& {
    return dag.node(common::NodeId{node}).fn.name;
  });
}

void append_trace_csv(std::string& out, const platform::RequestResult& result,
                      const std::vector<std::string_view>& node_names) {
  append_rows(out, result, [&node_names](std::size_t node) {
    return node_names[node];
  });
}

std::string trace_csv(const platform::RequestResult& result,
                      const workflow::WorkflowDag& dag) {
  std::string out;
  append_trace_csv(out, result, dag);
  return out;
}

std::string trace_csv(const std::vector<platform::RequestResult>& results,
                      const workflow::WorkflowDag& dag) {
  std::string out = trace_csv_header();
  for (const auto& result : results) out += trace_csv(result, dag);
  return out;
}

std::uint64_t fnv1a(const std::string& text, std::uint64_t seed) {
  return common::fnv1a(text, seed);
}

std::uint64_t trace_digest(const platform::RequestResult& result,
                           const workflow::WorkflowDag& dag) {
  return fnv1a(trace_csv(result, dag));
}

std::uint64_t trace_digest(const std::vector<platform::RequestResult>& results,
                           const workflow::WorkflowDag& dag) {
  return fnv1a(trace_csv(results, dag));
}

std::string digest_hex(std::uint64_t digest) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kHex[digest & 0xF];
    digest >>= 4;
  }
  return out;
}

}  // namespace xanadu::metrics
