#include "metrics/streaming.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "common/hash.hpp"
#include "metrics/trace.hpp"

namespace xanadu::metrics {

// -- RunStats ---------------------------------------------------------------

void RunStats::consume(const platform::RequestResult& result) {
  ++total;
  // Full-denominator stat: a speculation miss wasted real provisioning work
  // whether or not the request later failed (see RunOutcome::mean_missed_nodes).
  sum_missed_nodes += static_cast<double>(result.speculation.missed_nodes);
  if (result.failed) {
    ++failed;
    return;
  }
  const double overhead_ms = result.overhead.millis();
  sum_overhead_ms += overhead_ms;
  sum_end_to_end_ms += result.end_to_end.millis();
  sum_cold_starts += static_cast<double>(result.cold_starts);
  sum_workers += static_cast<double>(result.workers_provisioned);
  if (result.overhead > threshold) ++over_threshold;
  // Welford update over completed-request overhead.
  const double n = static_cast<double>(completed());
  const double delta = overhead_ms - welford_mean;
  welford_mean += delta / n;
  welford_m2 += delta * (overhead_ms - welford_mean);
}

void RunStats::merge(const RunStats& other) {
  if (other.total == 0) return;
  if (total == 0) {
    const sim::Duration own_threshold = threshold;
    *this = other;
    threshold = own_threshold;
    if (threshold != other.threshold) {
      throw std::invalid_argument{"RunStats::merge: threshold mismatch"};
    }
    return;
  }
  if (threshold != other.threshold) {
    throw std::invalid_argument{"RunStats::merge: threshold mismatch"};
  }
  // Chan's parallel Welford update, before the counts change.
  const double na = static_cast<double>(completed());
  const double nb = static_cast<double>(other.completed());
  if (nb > 0.0) {
    if (na == 0.0) {
      welford_mean = other.welford_mean;
      welford_m2 = other.welford_m2;
    } else {
      const double delta = other.welford_mean - welford_mean;
      const double n = na + nb;
      welford_m2 += other.welford_m2 + delta * delta * na * nb / n;
      welford_mean += delta * nb / n;
    }
  }
  total += other.total;
  failed += other.failed;
  sum_overhead_ms += other.sum_overhead_ms;
  sum_end_to_end_ms += other.sum_end_to_end_ms;
  sum_cold_starts += other.sum_cold_starts;
  sum_workers += other.sum_workers;
  sum_missed_nodes += other.sum_missed_nodes;
  over_threshold += other.over_threshold;
}

// -- LatencyHistogram -------------------------------------------------------

LatencyHistogram::LatencyHistogram(double bin_width_ms, std::size_t bins)
    : bin_width_ms_(bin_width_ms), counts_(bins, 0) {
  if (!(bin_width_ms > 0.0)) {
    throw std::invalid_argument{"LatencyHistogram: bin width must be positive"};
  }
}

void LatencyHistogram::record(double value_ms) {
  ++count_;
  max_recorded_ms_ = std::max(max_recorded_ms_, value_ms);
  if (value_ms < 0.0) value_ms = 0.0;
  const double scaled = value_ms / bin_width_ms_;
  if (counts_.empty() ||
      scaled >= static_cast<double>(counts_.size())) {
    ++overflow_;
    return;
  }
  ++counts_[static_cast<std::size_t>(scaled)];
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  if (other.count_ == 0) return;
  if (bin_width_ms_ != other.bin_width_ms_ ||
      counts_.size() != other.counts_.size()) {
    throw std::invalid_argument{"LatencyHistogram::merge: shape mismatch"};
  }
  for (std::size_t bin = 0; bin < counts_.size(); ++bin) {
    counts_[bin] += other.counts_[bin];
  }
  count_ += other.count_;
  overflow_ += other.overflow_;
  max_recorded_ms_ = std::max(max_recorded_ms_, other.max_recorded_ms_);
}

double LatencyHistogram::quantile_ms(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(count_))));
  std::uint64_t seen = 0;
  for (std::size_t bin = 0; bin < counts_.size(); ++bin) {
    seen += counts_[bin];
    if (seen >= rank) {
      return static_cast<double>(bin + 1) * bin_width_ms_;
    }
  }
  // Quantile lands in the overflow bucket: the max is the only bound we have.
  return max_recorded_ms_;
}

double LatencyHistogram::fraction_above(double value_ms) const {
  if (count_ == 0) return 0.0;
  // First bin whose whole range is STRICTLY above value_ms.  record() puts a
  // sample v into bin floor(v / w), so a threshold sitting exactly on a bin
  // edge k*w must exclude bin k: its samples can equal the threshold, and the
  // exact path (RunStats::consume, RunOutcome::fraction_over) counts only
  // overhead > threshold.  The pre-fix ceil() included bin k, silently
  // flipping the boundary semantics between the streamed estimate and the
  // retained-results path.
  std::size_t first = 0;
  if (value_ms >= 0.0) {
    const double scaled = value_ms / bin_width_ms_;
    first = scaled >= static_cast<double>(counts_.size())
                ? counts_.size()
                : static_cast<std::size_t>(std::floor(scaled)) + 1;
  }
  std::uint64_t above = overflow_;
  for (std::size_t bin = first; bin < counts_.size(); ++bin) {
    above += counts_[bin];
  }
  return static_cast<double>(above) / static_cast<double>(count_);
}

// -- CsvSpill ---------------------------------------------------------------

CsvSpill::CsvSpill(const std::string& path, std::size_t chunk_bytes)
    : out_(path, std::ios::binary | std::ios::trunc),
      chunk_bytes_(chunk_bytes == 0 ? 1 : chunk_bytes) {
  if (!out_) {
    throw std::runtime_error{"CsvSpill: cannot open " + path};
  }
  buffer_.reserve(chunk_bytes_);
}

CsvSpill::~CsvSpill() { finish(); }

void CsvSpill::append(std::string_view text) {
  buffer_.append(text);
  bytes_ += text.size();
  if (buffer_.size() >= chunk_bytes_) {
    out_.write(buffer_.data(), static_cast<std::streamsize>(buffer_.size()));
    buffer_.clear();
  }
}

void CsvSpill::finish() {
  if (!buffer_.empty()) {
    out_.write(buffer_.data(), static_cast<std::streamsize>(buffer_.size()));
    buffer_.clear();
  }
  out_.flush();
}

// -- replay_spill -----------------------------------------------------------

namespace {

bool is_unsigned_number(std::string_view field) {
  if (field.empty()) return false;
  for (const char c : field) {
    if (std::isdigit(static_cast<unsigned char>(c)) == 0) return false;
  }
  return true;
}

// Default ostream double formatting: digits, optional sign/dot/exponent.
bool is_numeric(std::string_view field) {
  if (field.empty()) return false;
  bool digit = false;
  for (const char c : field) {
    if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      digit = true;
    } else if (c != '.' && c != '-' && c != '+' && c != 'e' && c != 'E') {
      return false;
    }
  }
  return digit;
}

SpillReplay reject(std::string error) {
  SpillReplay replay;
  replay.error = std::move(error);
  return replay;
}

}  // namespace

SpillReplay replay_spill(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return reject("cannot open " + path);
  std::string content{std::istreambuf_iterator<char>(in),
                      std::istreambuf_iterator<char>()};
  if (in.bad()) return reject("read error");
  if (content.empty()) return reject("empty file");
  if (content.back() != '\n') {
    return reject("truncated: missing trailing newline");
  }

  SpillReplay replay;
  replay.digest = common::fnv1a(content);

  std::string_view rest{content};
  bool saw_header = false;
  std::uint64_t line_number = 0;
  while (!rest.empty()) {
    ++line_number;
    const std::size_t newline = rest.find('\n');
    const std::string_view line = rest.substr(0, newline);
    rest.remove_prefix(newline + 1);
    if (!saw_header) {
      if (std::string{line} + "\n" != trace_csv_header()) {
        return reject("bad header: " + std::string{line});
      }
      saw_header = true;
      continue;
    }
    // Structural validation: 13 comma-separated fields.
    std::vector<std::string_view> fields;
    std::string_view cursor = line;
    while (true) {
      const std::size_t comma = cursor.find(',');
      if (comma == std::string_view::npos) {
        fields.push_back(cursor);
        break;
      }
      fields.push_back(cursor.substr(0, comma));
      cursor.remove_prefix(comma + 1);
    }
    if (fields.size() != 13) {
      return reject("row " + std::to_string(line_number) +
                    ": expected 13 fields, got " + std::to_string(fields.size()));
    }
    // request, node, retries are unsigned integers; cold/failed are 0|1; the
    // four timing fields are either all present (numeric) or all empty.
    if (!is_unsigned_number(fields[0]) || !is_unsigned_number(fields[1])) {
      return reject("row " + std::to_string(line_number) + ": bad request/node id");
    }
    const bool timings_present = !fields[4].empty();
    for (std::size_t f = 4; f <= 7; ++f) {
      if (timings_present ? !is_numeric(fields[f]) : !fields[f].empty()) {
        return reject("row " + std::to_string(line_number) + ": bad timing field");
      }
    }
    if ((fields[8] != "0" && fields[8] != "1") || !is_numeric(fields[9]) ||
        !is_unsigned_number(fields[10]) ||
        (fields[11] != "0" && fields[11] != "1")) {
      return reject("row " + std::to_string(line_number) +
                    ": bad flag/numeric field");
    }
    ++replay.rows;
  }
  replay.ok = true;
  return replay;
}

// -- StreamingTrace ---------------------------------------------------------

StreamingTrace::StreamingTrace(StreamOptions options)
    : options_(std::move(options)),
      histogram_(options_.histogram_bin_ms, options_.histogram_bins) {
  // Digests are seeded with the header so a streamed run hashes exactly what
  // trace_csv(results, dag) renders: header first, then rows.
  digest_ = common::fnv1a(trace_csv_header());
  stats_.threshold = options_.over_threshold;
  if (options_.ring_capacity > 0) ring_.reserve(options_.ring_capacity);
  if (!options_.spill_path.empty()) {
    spill_ = std::make_unique<CsvSpill>(options_.spill_path,
                                        options_.spill_chunk_bytes);
    spill_->append(trace_csv_header());
  }
}

std::size_t StreamingTrace::add_source(const workflow::WorkflowDag& dag,
                                       std::string_view label) {
  Source source;
  source.dag = &dag;
  source.label = labels_.intern(label);
  source.node_names.reserve(dag.node_count());
  for (std::size_t i = 0; i < dag.node_count(); ++i) {
    source.node_names.push_back(
        labels_.view(labels_.intern(dag.node(common::NodeId{i}).fn.name)));
  }
  source.digest = common::fnv1a(trace_csv_header());
  source.stats.threshold = options_.over_threshold;
  sources_.push_back(std::move(source));
  return sources_.size() - 1;
}

void StreamingTrace::consume(std::size_t source,
                             const platform::RequestResult& result) {
  Source& lane = sources_.at(source);
  scratch_.clear();
  append_trace_csv(scratch_, result, lane.node_names);

  digest_ = common::fnv1a(scratch_, digest_);
  lane.digest = common::fnv1a(scratch_, lane.digest);

  stats_.consume(result);
  lane.stats.consume(result);
  if (!result.failed) histogram_.record(result.overhead.millis());

  if (spill_) spill_->append(scratch_);

  if (options_.ring_capacity > 0) {
    if (ring_size_ < options_.ring_capacity) {
      ring_.push_back(result);
      ++ring_size_;
    } else {
      ring_[ring_start_] = result;
      ring_start_ = (ring_start_ + 1) % options_.ring_capacity;
    }
  }
}

void StreamingTrace::finish() {
  if (spill_) spill_->finish();
}

std::vector<platform::RequestResult> StreamingTrace::recent() const {
  std::vector<platform::RequestResult> out;
  out.reserve(ring_size_);
  for (std::size_t i = 0; i < ring_size_; ++i) {
    out.push_back(ring_[(ring_start_ + i) % ring_.size()]);
  }
  return out;
}

}  // namespace xanadu::metrics
