#include "metrics/cost.hpp"

namespace xanadu::metrics {

ResourceCost resource_cost(const cluster::ResourceLedger& delta) {
  ResourceCost cost;
  cost.cpu_core_seconds =
      delta.provision_cpu_core_seconds + delta.pre_use_idle_cpu_core_seconds;
  cost.memory_mb_seconds = delta.pre_use_memory_mb_seconds;
  cost.idle_cpu_core_seconds = delta.idle_cpu_core_seconds;
  cost.idle_memory_mb_seconds = delta.idle_memory_mb_seconds;
  cost.workers_provisioned = delta.workers_provisioned;
  cost.workers_wasted = delta.workers_wasted;
  return cost;
}

Penalty penalty(const ResourceCost& cost, sim::Duration overhead) {
  Penalty p;
  const double cd_seconds = overhead.seconds();
  p.phi_cpu_s2 = cost.cpu_core_seconds * cd_seconds;
  p.phi_memory_mb_s2 = cost.memory_mb_seconds * cd_seconds;
  return p;
}

}  // namespace xanadu::metrics
