#pragma once

// GraphViz (DOT) export of workflow DAGs and of executed requests.
//
// `to_dot(dag)` renders the static structure: XOR-cast nodes are diamonds,
// regular functions boxes, edge labels carry branch probabilities and
// signalling delays.  `to_dot(dag, result)` overlays one request's outcome:
// executed nodes are filled (cold starts highlighted), skipped branches are
// greyed out, and executed nodes are annotated with their timings -- handy
// for eyeballing what the speculation engine did.

#include <string>

#include "platform/request.hpp"
#include "workflow/dag.hpp"

namespace xanadu::metrics {

/// Static structure only.
[[nodiscard]] std::string to_dot(const workflow::WorkflowDag& dag);

/// Structure plus one request's execution overlay.
[[nodiscard]] std::string to_dot(const workflow::WorkflowDag& dag,
                                 const platform::RequestResult& result);

}  // namespace xanadu::metrics
