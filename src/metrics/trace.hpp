#pragma once

// Request trace export: turns RequestResult node records into a CSV
// timeline, one row per workflow node, suitable for plotting Gantt-style
// charts of speculation behaviour or diffing runs.

#include <string>
#include <vector>

#include "platform/request.hpp"
#include "workflow/dag.hpp"

namespace xanadu::metrics {

/// CSV header used by trace_csv().
[[nodiscard]] std::string trace_csv_header();

/// One CSV row per node of `result`, using function names from `dag`.
/// Columns: request, node, function, status, trigger_ms, exec_start_ms,
/// exec_end_ms, exec_duration_ms, cold, provision_wait_ms, invoked_by.
[[nodiscard]] std::string trace_csv(const platform::RequestResult& result,
                                    const workflow::WorkflowDag& dag);

/// Concatenates the header and the rows of many results.
[[nodiscard]] std::string trace_csv(
    const std::vector<platform::RequestResult>& results,
    const workflow::WorkflowDag& dag);

}  // namespace xanadu::metrics
