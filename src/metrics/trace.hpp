#pragma once

// Request trace export: turns RequestResult node records into a CSV
// timeline, one row per workflow node, suitable for plotting Gantt-style
// charts of speculation behaviour or diffing runs.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "platform/request.hpp"
#include "workflow/dag.hpp"

namespace xanadu::metrics {

/// CSV header used by trace_csv().
[[nodiscard]] std::string trace_csv_header();

/// One CSV row per node of `result`, using function names from `dag`.
/// Columns: request, node, function, status, trigger_ms, exec_start_ms,
/// exec_end_ms, exec_duration_ms, cold, provision_wait_ms, retries, failed,
/// invoked_by.  `failed` is the request-level failure flag, repeated per row.
[[nodiscard]] std::string trace_csv(const platform::RequestResult& result,
                                    const workflow::WorkflowDag& dag);

/// Appends the rows of `result` to `out` (no header).  This is the canonical
/// renderer: the batch trace_csv() overloads and the streaming consumer both
/// call it, so the streamed digest hashes the exact bytes batch rendering
/// produces.
void append_trace_csv(std::string& out, const platform::RequestResult& result,
                      const workflow::WorkflowDag& dag);

/// Same rows, but node function names come from `node_names` (index-aligned
/// with the dag's nodes) instead of dag lookups.  The streaming consumer
/// interns function names once per source and renders from the interned
/// views; bytes are identical to the dag overload whenever
/// `node_names[i] == dag.node(i).fn.name`.
void append_trace_csv(std::string& out, const platform::RequestResult& result,
                      const std::vector<std::string_view>& node_names);

/// Concatenates the header and the rows of many results.
[[nodiscard]] std::string trace_csv(
    const std::vector<platform::RequestResult>& results,
    const workflow::WorkflowDag& dag);

// -- Trace digests ----------------------------------------------------------
//
// A stable 64-bit fingerprint of a run's emitted trace records, used by the
// seed-replay determinism tests (same seed => identical digest) and printable
// from run_workflow_cli via --digest.  The digest hashes the rendered CSV
// text, so it covers exactly what a human would diff: timings, statuses,
// cold flags, and invocation edges.  FNV-1a is used deliberately -- it is
// byte-order-free, dependency-free, and stable across platforms.

/// FNV-1a offset basis; digests of empty inputs equal this value.
inline constexpr std::uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ULL;

/// Folds `text` into a running FNV-1a digest (pass kFnvOffsetBasis to start).
[[nodiscard]] std::uint64_t fnv1a(const std::string& text,
                                  std::uint64_t seed = kFnvOffsetBasis);

/// Digest of one request's trace rows.
[[nodiscard]] std::uint64_t trace_digest(const platform::RequestResult& result,
                                         const workflow::WorkflowDag& dag);

/// Digest of a whole run (header plus every result's rows, in order).
[[nodiscard]] std::uint64_t trace_digest(
    const std::vector<platform::RequestResult>& results,
    const workflow::WorkflowDag& dag);

/// Renders a digest as fixed-width lowercase hex ("0123456789abcdef").
[[nodiscard]] std::string digest_hex(std::uint64_t digest);

}  // namespace xanadu::metrics
