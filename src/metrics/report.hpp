#pragma once

// Lightweight aligned-table printer for the benchmark harness.  Every bench
// binary prints the rows/series of one paper table or figure through this.

#include <string>
#include <vector>

#include "platform/request.hpp"
#include "sim/fault_plan.hpp"

namespace xanadu::metrics {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Adds one row; the cell count must match the header count.
  void add_row(std::vector<std::string> cells);

  /// Renders with aligned columns.
  [[nodiscard]] std::string to_string() const;

  /// Prints to stdout with a title banner.
  void print(const std::string& title) const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Renders the per-class fault-injection counters next to what the recovery
/// machinery did about them; benchmark binaries print this after faulted
/// runs.  Zero-valued rows are kept so sweeps line up across fault rates.
[[nodiscard]] Table fault_report(const sim::FaultCounters& faults,
                                 const platform::RecoveryStats& recovery);

/// printf-style float formatting helpers for table cells.
[[nodiscard]] std::string fmt(double value, int decimals = 2);
[[nodiscard]] std::string fmt_ms(double millis, int decimals = 0);
[[nodiscard]] std::string fmt_s(double seconds, int decimals = 2);
[[nodiscard]] std::string fmt_pct(double fraction, int decimals = 1);

}  // namespace xanadu::metrics
