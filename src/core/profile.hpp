#pragma once

// Learned per-function runtime profiles (paper Section 3.2.2).
//
// Xanadu profiles "the runtime characteristics of the functions comprising a
// workflow and estimates their cold-start time, worker startup time and
// warm-start runtime using an exponential moving average function.  For
// implicit functions, we also measure the delay after which a parent node
// invokes its child."  These profiles feed the JIT deployment planner
// (Algorithm 2) and its implicit-chain variant.

#include <algorithm>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/ema.hpp"
#include "common/ids.hpp"
#include "sim/time.hpp"

namespace xanadu::core {

using common::NodeId;

/// Defaults used before any observation exists for a function.  Conservative
/// values matching Docker-container behaviour: the planner deploys slightly
/// too early on the first requests and tightens as profiles converge.
struct ProfileFallbacks {
  sim::Duration cold_response = sim::Duration::from_millis(4500);
  sim::Duration startup = sim::Duration::from_millis(3200);
  sim::Duration warm_response = sim::Duration::from_millis(1000);
  sim::Duration invoke_gap = sim::Duration::from_millis(1000);
};

/// EMA-smoothed timing profile of one workflow node's function.
class FunctionProfile {
 public:
  explicit FunctionProfile(double alpha = 0.3)
      : cold_response_(alpha), startup_(alpha), warm_response_(alpha) {}

  /// Total response under cold conditions: trigger -> execution end.
  void observe_cold_response(sim::Duration d) { cold_response_.observe(d.millis()); }
  /// Sandbox provisioning wait experienced by a cold request.
  void observe_startup(sim::Duration d) { startup_.observe(d.millis()); }
  /// Total response under warm conditions: trigger -> execution end
  /// (the paper uses this as the estimate of a function's lifetime).
  void observe_warm_response(sim::Duration d) { warm_response_.observe(d.millis()); }

  [[nodiscard]] sim::Duration cold_response(const ProfileFallbacks& fb) const {
    return sim::Duration::from_millis(
        cold_response_.value_or(fb.cold_response.millis()));
  }
  [[nodiscard]] sim::Duration startup(const ProfileFallbacks& fb) const {
    return sim::Duration::from_millis(startup_.value_or(fb.startup.millis()));
  }
  [[nodiscard]] sim::Duration warm_response(const ProfileFallbacks& fb) const {
    return sim::Duration::from_millis(
        warm_response_.value_or(fb.warm_response.millis()));
  }

  [[nodiscard]] bool has_cold_sample() const { return !cold_response_.empty(); }
  [[nodiscard]] bool has_warm_sample() const { return !warm_response_.empty(); }

  // Persistence accessors (core::MetadataStore).
  [[nodiscard]] const common::Ema& cold_response_ema() const { return cold_response_; }
  [[nodiscard]] const common::Ema& startup_ema() const { return startup_; }
  [[nodiscard]] const common::Ema& warm_response_ema() const { return warm_response_; }
  [[nodiscard]] common::Ema& cold_response_ema() { return cold_response_; }
  [[nodiscard]] common::Ema& startup_ema() { return startup_; }
  [[nodiscard]] common::Ema& warm_response_ema() { return warm_response_; }

 private:
  common::Ema cold_response_;
  common::Ema startup_;
  common::Ema warm_response_;
};

/// Profile table for one workflow: per-node function profiles plus per-edge
/// invoke-gap estimates (trigger-to-trigger delay between a parent and the
/// child it invokes; used by the implicit-chain JIT variant).
class ProfileTable {
 public:
  explicit ProfileTable(double alpha = 0.3) : alpha_(alpha) {}

  [[nodiscard]] FunctionProfile& function(NodeId node);
  [[nodiscard]] const FunctionProfile* find_function(NodeId node) const;

  void observe_invoke_gap(NodeId parent, NodeId child, sim::Duration gap);
  [[nodiscard]] sim::Duration invoke_gap(NodeId parent, NodeId child,
                                         const ProfileFallbacks& fb) const;

  [[nodiscard]] double alpha() const { return alpha_; }

  // -- Persistence (core::MetadataStore) -----------------------------------

  /// Visits every (node, profile) pair in ascending node order, so that
  /// persisted documents and digests are independent of hash layout.
  template <typename Fn>
  void for_each_function(Fn&& fn) const {
    std::vector<NodeId> nodes;
    nodes.reserve(functions_.size());
    for (const auto& [node, profile] : functions_) {  // lint:allow(unordered-iteration)
      (void)profile;
      nodes.push_back(node);
    }
    std::sort(nodes.begin(), nodes.end());
    for (const NodeId node : nodes) fn(node, functions_.at(node));
  }

  /// Visits every learned invoke-gap EMA as (parent, child, ema), ordered by
  /// (parent, child) for the same reproducibility reason.
  template <typename Fn>
  void for_each_invoke_gap(Fn&& fn) const {
    std::vector<EdgeKey> keys;
    keys.reserve(invoke_gaps_.size());
    for (const auto& [key, ema] : invoke_gaps_) {  // lint:allow(unordered-iteration)
      (void)ema;
      keys.push_back(key);
    }
    std::sort(keys.begin(), keys.end(), [](const EdgeKey& a, const EdgeKey& b) {
      return a.parent != b.parent ? a.parent < b.parent : a.child < b.child;
    });
    for (const EdgeKey& key : keys) {
      fn(key.parent, key.child, invoke_gaps_.at(key));
    }
  }

  /// Restores a persisted invoke-gap EMA state.
  void restore_invoke_gap(NodeId parent, NodeId child, double value_ms,
                          std::size_t count);

 private:
  struct EdgeKey {
    NodeId parent;
    NodeId child;
    bool operator==(const EdgeKey&) const = default;
  };
  struct EdgeKeyHash {
    std::size_t operator()(const EdgeKey& k) const {
      return std::hash<NodeId>{}(k.parent) * 1000003u ^
             std::hash<NodeId>{}(k.child);
    }
  };

  double alpha_;
  std::unordered_map<NodeId, FunctionProfile> functions_;
  std::unordered_map<EdgeKey, common::Ema, EdgeKeyHash> invoke_gaps_;
};

}  // namespace xanadu::core
