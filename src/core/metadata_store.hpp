#pragma once

// Metadata persistence -- the reproduction's stand-in for the CouchDB
// backend of paper Section 4 ("We use Apache CouchDB to store metrics and
// function branch-related metadata.  CouchDB supports native JSON data
// support...").
//
// The store serialises a workflow's learned state -- the Algorithm-3 branch
// model and the EMA function profiles -- to a JSON document and restores it,
// so a restarted control plane resumes speculating immediately instead of
// re-learning every workflow from scratch.  Documents are keyed by workflow
// name; the in-memory backend can be snapshotted to / loaded from a single
// JSON file.

#include <map>
#include <optional>
#include <string>

#include "common/json.hpp"
#include "common/result.hpp"
#include "core/branch_model.hpp"
#include "core/profile.hpp"

namespace xanadu::core {

/// Serialisable learned state of one workflow.
struct WorkflowMetadata {
  BranchModel model;
  ProfileTable profiles{0.3};
};

/// Serialises learned state to a JSON value and back.  The format is
/// versioned; parsing rejects unknown versions with a descriptive error.
[[nodiscard]] common::JsonValue to_json(const BranchModel& model);
[[nodiscard]] common::Result<BranchModel> branch_model_from_json(
    const common::JsonValue& json);

[[nodiscard]] common::JsonValue to_json(const ProfileTable& profiles);
[[nodiscard]] common::Result<ProfileTable> profile_table_from_json(
    const common::JsonValue& json);

/// Keyed JSON document store (CouchDB stand-in).
class MetadataStore {
 public:
  /// Upserts a workflow's learned state under `key`.
  void put(const std::string& key, const WorkflowMetadata& metadata);

  /// Loads a workflow's learned state; nullopt when absent, error when the
  /// stored document is corrupt.
  [[nodiscard]] common::Result<std::optional<WorkflowMetadata>> get(
      const std::string& key) const;

  [[nodiscard]] bool contains(const std::string& key) const;
  [[nodiscard]] std::size_t size() const { return documents_.size(); }
  void erase(const std::string& key) { documents_.erase(key); }

  /// Serialises the whole store to one JSON document (and back).
  [[nodiscard]] std::string dump() const;
  [[nodiscard]] static common::Result<MetadataStore> parse(
      const std::string& text);

 private:
  std::map<std::string, common::JsonValue> documents_;
};

}  // namespace xanadu::core
