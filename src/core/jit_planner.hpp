#pragma once

// Just-In-Time deployment planning -- paper Section 3.2.2, Algorithm 2.
//
// Given the estimated most-likely path and the learned function profiles,
// the planner builds a deployment timeline: for every MLP node, the delay
// (relative to request arrival) at which its sandbox provisioning should
// start so that the worker becomes ready just as the node's trigger arrives.
//
// Explicit chains: a child can only be invoked by the orchestrator after its
// parents complete, so the expected invocation time of a node is the maximum
// over its MLP parents of the parents' expected completion times
// (node.maxDelay in the paper's listing).  The root deploys immediately and
// completes after its cold response time; each child deploys at
// (parents' completion - its own startup time) and completes warm.
//
// Implicit chains: children are invoked directly by their parents' runtime,
// so parent completion times are meaningless; the planner instead uses the
// learned trigger-to-trigger invoke gaps along the path.
//
// A safety margin makes workers ready slightly early, absorbing estimation
// error at a small pre-use idle cost (visible in C_R_memory as the ~2.2x
// JIT-vs-cold factor of Figure 13b).

#include <vector>

#include "core/branch_model.hpp"
#include "core/mlp.hpp"
#include "core/profile.hpp"
#include "sim/time.hpp"

namespace xanadu::core {

struct Deployment {
  NodeId node{};
  /// Delay after request arrival at which provisioning should start.
  sim::Duration deploy_delay = sim::Duration::zero();
  /// Expected trigger time of the node (diagnostic).
  sim::Duration expected_invocation = sim::Duration::zero();
};

struct JitPlan {
  std::vector<Deployment> deployments;  // MLP order (parents first)
};

struct JitOptions {
  /// Workers are scheduled to be ready this long before the expected
  /// invocation; absorbs most provisioning jitter (the container profile's
  /// ~120 ms stddev) at a small pre-use idle cost.  A late arrival costs a
  /// short partial wait rather than a full cold start.
  sim::Duration safety_margin = sim::Duration::from_millis(150);
  ProfileFallbacks fallbacks;
};

/// Algorithm 2 (explicit workflows): completion-time recurrence over the MLP.
[[nodiscard]] JitPlan plan_explicit(const MlpResult& mlp, const BranchModel& model,
                                    const ProfileTable& profiles,
                                    const JitOptions& options = {});

/// Implicit-chain variant: the cold/warm response estimates of lines 5 and
/// 10 are replaced by learned parent-to-child invoke gaps.
[[nodiscard]] JitPlan plan_implicit(const MlpResult& mlp, const BranchModel& model,
                                    const ProfileTable& profiles,
                                    const JitOptions& options = {});

}  // namespace xanadu::core
