#include "core/xanadu_policy.hpp"

#include <algorithm>
#include <cmath>

namespace xanadu::core {

using platform::NodeStatus;
using platform::PlatformEngine;
using platform::RequestContext;
using platform::RequestResult;

const char* to_string(SpeculationMode mode) {
  switch (mode) {
    case SpeculationMode::Off: return "cold";
    case SpeculationMode::Speculative: return "speculative";
    case SpeculationMode::Jit: return "jit";
  }
  return "unknown";
}

XanaduPolicy::XanaduPolicy(XanaduOptions options) : options_(options) {
  if (options_.aggressiveness <= 0.0 || options_.aggressiveness > 1.0) {
    throw std::invalid_argument{"XanaduPolicy: aggressiveness must be in (0, 1]"};
  }
  if (options_.ema_alpha <= 0.0 || options_.ema_alpha > 1.0) {
    throw std::invalid_argument{"XanaduPolicy: ema_alpha must be in (0, 1]"};
  }
}

const BranchModel* XanaduPolicy::model(common::WorkflowId id) const {
  auto it = workflows_.find(id);
  return it == workflows_.end() ? nullptr : &it->second.model;
}

const ProfileTable* XanaduPolicy::profiles(common::WorkflowId id) const {
  auto it = workflows_.find(id);
  return it == workflows_.end() ? nullptr : &it->second.profiles;
}

MlpResult XanaduPolicy::current_mlp(common::WorkflowId id) const {
  auto it = workflows_.find(id);
  if (it == workflows_.end()) return {};
  BranchModel snapshot = it->second.model;
  snapshot.finalize_pending();
  return estimate_mlp(snapshot, options_.mlp);
}

XanaduPolicy::WorkflowState& XanaduPolicy::workflow_state(PlatformEngine& engine,
                                                          RequestContext& ctx) {
  auto it = workflows_.find(ctx.workflow);
  if (it == workflows_.end()) {
    WorkflowState state{options_.ema_alpha};
    if (options_.knowledge == ChainKnowledge::Explicit) {
      // The externalised workflow schema is available: seed the model with
      // the declared structure (probabilities still start at priors).
      state.model = BranchModel::from_schema(engine.dag(ctx.workflow));
    }
    it = workflows_.emplace(ctx.workflow, std::move(state)).first;
  }
  return it->second;
}

std::size_t XanaduPolicy::aggressiveness_cut(std::size_t path_length) const {
  if (path_length == 0) return 0;
  const auto cut = static_cast<std::size_t>(
      std::ceil(options_.aggressiveness * static_cast<double>(path_length)));
  return std::max<std::size_t>(cut, 1);
}

void XanaduPolicy::on_request_submitted(PlatformEngine& engine,
                                        RequestContext& ctx) {
  WorkflowState& wf = workflow_state(engine, ctx);
  RequestState& rs =
      requests_.try_emplace(ctx.id, &ctx.arena).first->second;
  if (options_.mode == SpeculationMode::Off) return;

  wf.model.finalize_pending();
  MlpOptions mlp_options = options_.mlp;
  rs.mlp = estimate_mlp(wf.model, mlp_options);
  if (rs.mlp.path.empty()) return;  // Implicit chain not discovered yet.

  // Deployment aggressiveness (Section 3.2.1): only look ahead a fraction
  // of the estimated path.
  const std::size_t cut = aggressiveness_cut(rs.mlp.path.size());
  if (cut < rs.mlp.path.size()) {
    std::vector<NodeId> trimmed(rs.mlp.path.begin(),
                                rs.mlp.path.begin() + static_cast<long>(cut));
    rs.mlp.path = std::move(trimmed);
  }
  ctx.speculation.predicted_nodes = rs.mlp.path.size();

  launch_speculation(engine, ctx, wf, rs, NodeId{}, sim::Duration::zero());
}

void XanaduPolicy::launch_speculation(PlatformEngine& engine, RequestContext& ctx,
                                      WorkflowState& wf, RequestState& rs,
                                      NodeId from_node,
                                      sim::Duration base_offset) {
  // Determine the sub-path to act on: the full MLP, or (on replan) the
  // portion re-estimated from `from_node`.
  std::vector<NodeId> path = rs.mlp.path;
  if (from_node.valid()) {
    // Re-estimate from the node the workflow actually took.
    BranchModel rooted = wf.model;  // Cheap relative to a prediction miss.
    rooted.finalize_pending();
    const MlpResult fresh = estimate_mlp_from(rooted, {from_node}, options_.mlp);
    path = fresh.path;

    if (options_.reuse_workers_on_miss) {
      // Section 7 extension: sandboxes deployed for the stale path are
      // recycled into the fresh path before any new provisioning starts.
      std::vector<NodeId> stale;
      for (const NodeId id : rs.mlp.path) {
        if (ctx.nodes[id.value()].status != platform::NodeStatus::Pending) {
          continue;
        }
        if (!fresh.likelihood.contains(id)) stale.push_back(id);
      }
      for (const NodeId target_node : path) {
        if (stale.empty()) break;
        if (ctx.nodes[target_node.value()].status !=
            platform::NodeStatus::Pending) {
          continue;
        }
        const auto target = engine.function_id(ctx.workflow, target_node);
        if (engine.warm_count(target) > 0 ||
            engine.provisioning_in_flight(target)) {
          continue;
        }
        for (auto it = stale.begin(); it != stale.end(); ++it) {
          const auto source = engine.function_id(ctx.workflow, *it);
          // Idle sandbox first; otherwise redirect one still being built
          // (the environment is generic until its code load).
          if (engine.rebind_warm_worker(source, target) ||
              engine.redirect_provision(source, target)) {
            rs.mark_prewarmed(target_node.value());
            stale.erase(it);
            break;
          }
        }
      }
    }

    for (const NodeId id : path) {
      if (!rs.mlp.contains(id)) {
        rs.mlp.path.push_back(id);
        rs.mlp.likelihood.emplace(id, fresh.likelihood.at(id));
      }
    }
    // Keyed assignment into a map: each parent is written once, so the
    // merge is independent of source iteration order.
    for (const auto& [parent, child] : fresh.predicted_choice) {  // lint:allow(unordered-iteration)
      rs.mlp.predicted_choice[parent] = child;
    }
    ctx.speculation.predicted_nodes = rs.mlp.path.size();
  }

  if (options_.mode == SpeculationMode::Speculative) {
    // Provision every path sandbox at the onset of the workflow.
    for (const NodeId node : path) {
      const NodeStatus status = ctx.nodes[node.value()].status;
      if (status != NodeStatus::Pending) continue;
      engine.prewarm(ctx, node);
      rs.mark_prewarmed(node.value());
    }
    return;
  }

  // JIT: build the Algorithm-2 timeline and schedule deployments.
  MlpResult sub;
  sub.path = path;
  sub.likelihood = rs.mlp.likelihood;
  const JitPlan plan =
      options_.knowledge == ChainKnowledge::Explicit
          ? plan_explicit(sub, wf.model, wf.profiles, options_.jit)
          : plan_implicit(sub, wf.model, wf.profiles, options_.jit);
  for (const Deployment& d : plan.deployments) {
    const NodeStatus status = ctx.nodes[d.node.value()].status;
    if (status != NodeStatus::Pending) continue;
    const sim::Duration delay =
        (base_offset + d.deploy_delay).clamped_non_negative();
    rs.mark_prewarmed(d.node.value());
    if (delay == sim::Duration::zero()) {
      engine.prewarm(ctx, d.node);
    } else {
      rs.scheduled.push_back(engine.schedule_prewarm(ctx, d.node, delay));
    }
  }
}

void XanaduPolicy::on_node_triggered(PlatformEngine& engine, RequestContext& ctx,
                                     NodeId node) {
  WorkflowState& wf = workflow_state(engine, ctx);
  const platform::NodeRecord& record = ctx.nodes[node.value()];
  if (record.invoked_by.empty()) {
    wf.model.observe_root(node, ctx.id);
    return;
  }
  for (const NodeId parent : record.invoked_by) {
    wf.model.observe_invocation(parent, node, ctx.id);
    const platform::NodeRecord& parent_record = ctx.nodes[parent.value()];
    // Invoke gaps are only representative when the parent ran warm: a cold
    // parent's gap includes its own provisioning wait, which speculation
    // will remove -- learning it would make the planner deploy late forever.
    if (!parent_record.cold) {
      wf.profiles.observe_invoke_gap(
          parent, node, record.trigger_time - parent_record.trigger_time);
    }
  }
}

void XanaduPolicy::on_worker_ready(PlatformEngine& engine,
                                   common::WorkflowId workflow, NodeId node,
                                   sim::Duration provision_latency) {
  (void)engine;
  auto it = workflows_.find(workflow);
  if (it == workflows_.end()) return;
  it->second.profiles.function(node).observe_startup(provision_latency);
}

void XanaduPolicy::on_node_exec_start(PlatformEngine& engine, RequestContext& ctx,
                                      NodeId node) {
  (void)engine;
  if (options_.mode != SpeculationMode::Off) {
    auto it = requests_.find(ctx.id);
    if (it != requests_.end() && !it->second.mlp.path.empty() &&
        !it->second.mlp.contains(node)) {
      ++ctx.speculation.unpredicted_executions;
    }
  }
}

void XanaduPolicy::on_node_completed(PlatformEngine& engine, RequestContext& ctx,
                                     NodeId node) {
  WorkflowState& wf = workflow_state(engine, ctx);
  const platform::NodeRecord& record = ctx.nodes[node.value()];
  const sim::Duration response = record.exec_end - record.trigger_time;
  FunctionProfile& profile = wf.profiles.function(node);
  if (record.cold) {
    profile.observe_cold_response(response);
  } else {
    profile.observe_warm_response(response);
  }
}

void XanaduPolicy::on_xor_resolved(PlatformEngine& engine, RequestContext& ctx,
                                   NodeId parent, NodeId chosen) {
  if (options_.mode == SpeculationMode::Off) return;
  auto it = requests_.find(ctx.id);
  if (it == requests_.end()) return;
  RequestState& rs = it->second;
  auto predicted = rs.mlp.predicted_choice.find(parent);
  if (predicted == rs.mlp.predicted_choice.end()) return;
  if (predicted->second == chosen) return;

  // Prediction miss (Section 3.2.2): stop all planned proactive
  // provisioning immediately.
  rs.miss_detected = true;
  cancel_pending(engine, ctx, rs);

  if (options_.miss_policy == MissPolicy::Replan) {
    // Future-work extension (Section 7): re-evaluate the MLP from the
    // branch the workflow actually took and resume speculation there.
    WorkflowState& wf = workflow_state(engine, ctx);
    launch_speculation(engine, ctx, wf, rs, chosen, sim::Duration::zero());
  }
}

void XanaduPolicy::cancel_pending(PlatformEngine& engine, RequestContext& ctx,
                                  RequestState& rs) {
  for (const common::EventId event : rs.scheduled) {
    if (engine.cancel_scheduled_prewarm(event)) {
      ++ctx.speculation.cancelled_deployments;
    }
  }
  rs.scheduled.clear();
}

void XanaduPolicy::on_node_skipped(PlatformEngine& engine, RequestContext& ctx,
                                   NodeId node) {
  if (options_.mode == SpeculationMode::Off) return;
  auto it = requests_.find(ctx.id);
  if (it == requests_.end()) return;
  RequestState& rs = it->second;
  if (!rs.mlp.contains(node)) return;
  ++ctx.speculation.missed_nodes;
  if (rs.prewarmed(node.value())) {
    const auto fn = engine.function_id(ctx.workflow, node);
    if (options_.reuse_workers_on_miss) {
      // Section 7 extension: hand the mis-deployed sandbox to a pending node
      // on the (replanned) path that has no coverage yet, if the
      // architectures match.
      for (const NodeId candidate : rs.mlp.path) {
        const auto status = ctx.nodes[candidate.value()].status;
        if (status != platform::NodeStatus::Pending) continue;
        const auto target = engine.function_id(ctx.workflow, candidate);
        if (engine.warm_count(target) > 0 ||
            engine.provisioning_in_flight(target)) {
          continue;
        }
        if (engine.rebind_warm_worker(fn, target) ||
            engine.redirect_provision(fn, target)) {
          rs.mark_prewarmed(candidate.value());
          break;
        }
      }
    }
    // Whatever could not be reused is discarded: the paper's "speculatively
    // deployed resources have to be discarded".
    ctx.speculation.wasted_workers += engine.discard_warm_workers(fn);
    ctx.speculation.wasted_workers += engine.abort_unclaimed_provisions(fn);
  }
}

bool XanaduPolicy::persist(common::WorkflowId id, MetadataStore& store,
                           const std::string& key) const {
  auto it = workflows_.find(id);
  if (it == workflows_.end()) return false;
  WorkflowMetadata metadata;
  metadata.model = it->second.model;
  metadata.model.finalize_pending();
  metadata.profiles = it->second.profiles;
  store.put(key, metadata);
  return true;
}

common::Result<bool> XanaduPolicy::restore(common::WorkflowId id,
                                           const MetadataStore& store,
                                           const std::string& key) {
  auto loaded = store.get(key);
  if (!loaded.ok()) return loaded.error();
  if (!loaded.value().has_value()) return false;
  WorkflowState state{options_.ema_alpha};
  state.model = std::move(loaded.value()->model);
  state.profiles = std::move(loaded.value()->profiles);
  workflows_.insert_or_assign(id, std::move(state));
  return true;
}

void XanaduPolicy::on_request_completed(PlatformEngine& engine,
                                        RequestContext& ctx,
                                        RequestResult& result) {
  if (result.failed) {
    // Failed-over request: reuse the miss-cancellation path so planned
    // speculative deployments for the dead request stop immediately.
    auto it = requests_.find(ctx.id);
    if (it != requests_.end()) cancel_pending(engine, ctx, it->second);
  }
  WorkflowState& wf = workflow_state(engine, ctx);
  wf.model.finalize_pending();
  result.speculation = ctx.speculation;
  requests_.erase(ctx.id);
}

}  // namespace xanadu::core
