#include "core/profile.hpp"

namespace xanadu::core {

FunctionProfile& ProfileTable::function(NodeId node) {
  auto it = functions_.find(node);
  if (it == functions_.end()) {
    it = functions_.emplace(node, FunctionProfile{alpha_}).first;
  }
  return it->second;
}

const FunctionProfile* ProfileTable::find_function(NodeId node) const {
  auto it = functions_.find(node);
  return it == functions_.end() ? nullptr : &it->second;
}

void ProfileTable::observe_invoke_gap(NodeId parent, NodeId child,
                                      sim::Duration gap) {
  const EdgeKey key{parent, child};
  auto it = invoke_gaps_.find(key);
  if (it == invoke_gaps_.end()) {
    it = invoke_gaps_.emplace(key, common::Ema{alpha_}).first;
  }
  it->second.observe(gap.millis());
}

void ProfileTable::restore_invoke_gap(NodeId parent, NodeId child,
                                      double value_ms, std::size_t count) {
  const EdgeKey key{parent, child};
  auto it = invoke_gaps_.find(key);
  if (it == invoke_gaps_.end()) {
    it = invoke_gaps_.emplace(key, common::Ema{alpha_}).first;
  }
  it->second.restore(value_ms, count);
}

sim::Duration ProfileTable::invoke_gap(NodeId parent, NodeId child,
                                       const ProfileFallbacks& fb) const {
  auto it = invoke_gaps_.find(EdgeKey{parent, child});
  if (it == invoke_gaps_.end()) return fb.invoke_gap;
  return sim::Duration::from_millis(it->second.value_or(fb.invoke_gap.millis()));
}

}  // namespace xanadu::core
