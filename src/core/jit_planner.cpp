#include "core/jit_planner.hpp"

#include <algorithm>
#include <unordered_map>

namespace xanadu::core {

namespace {

/// MLP parents of `node`: path nodes that have `node` among their children.
std::vector<NodeId> mlp_parents(NodeId node, const MlpResult& mlp,
                                const BranchModel& model) {
  std::vector<NodeId> parents;
  for (const NodeId candidate : mlp.path) {
    if (candidate == node) continue;
    const ModelNode* mn = model.find(candidate);
    if (mn != nullptr && mn->find_child(node) != nullptr) {
      parents.push_back(candidate);
    }
  }
  return parents;
}

sim::Duration profile_startup(const ProfileTable& profiles, NodeId node,
                              const ProfileFallbacks& fb) {
  const FunctionProfile* p = profiles.find_function(node);
  return p == nullptr ? fb.startup : p->startup(fb);
}

sim::Duration profile_cold(const ProfileTable& profiles, NodeId node,
                           const ProfileFallbacks& fb) {
  const FunctionProfile* p = profiles.find_function(node);
  return p == nullptr ? fb.cold_response : p->cold_response(fb);
}

sim::Duration profile_warm(const ProfileTable& profiles, NodeId node,
                           const ProfileFallbacks& fb) {
  const FunctionProfile* p = profiles.find_function(node);
  return p == nullptr ? fb.warm_response : p->warm_response(fb);
}

}  // namespace

JitPlan plan_explicit(const MlpResult& mlp, const BranchModel& model,
                      const ProfileTable& profiles, const JitOptions& options) {
  JitPlan plan;
  plan.deployments.reserve(mlp.path.size());
  // node -> expected completion time relative to request arrival
  // (the listing's node.maxDelay).
  std::unordered_map<NodeId, sim::Duration> max_delay;

  for (const NodeId node : mlp.path) {
    const std::vector<NodeId> parents = mlp_parents(node, mlp, model);
    Deployment d;
    d.node = node;
    if (parents.empty()) {
      // Root nodes are invoked immediately; deploy now.  Their first
      // completion is a cold response (the provisioning races the request).
      d.deploy_delay = sim::Duration::zero();
      d.expected_invocation = sim::Duration::zero();
      max_delay[node] = profile_cold(profiles, node, options.fallbacks);
    } else {
      // m:1 barrier: the child is invoked when its slowest parent finishes.
      sim::Duration invocation = sim::Duration::zero();
      for (const NodeId parent : parents) {
        invocation = std::max(invocation, max_delay.at(parent));
      }
      d.expected_invocation = invocation;
      const sim::Duration startup =
          profile_startup(profiles, node, options.fallbacks);
      d.deploy_delay =
          (invocation - startup - options.safety_margin).clamped_non_negative();
      max_delay[node] =
          invocation + profile_warm(profiles, node, options.fallbacks);
    }
    plan.deployments.push_back(d);
  }
  return plan;
}

JitPlan plan_implicit(const MlpResult& mlp, const BranchModel& model,
                      const ProfileTable& profiles, const JitOptions& options) {
  JitPlan plan;
  plan.deployments.reserve(mlp.path.size());
  // node -> expected trigger time relative to request arrival, accumulated
  // from learned parent-to-child invoke gaps.
  std::unordered_map<NodeId, sim::Duration> invoke_time;

  for (const NodeId node : mlp.path) {
    const std::vector<NodeId> parents = mlp_parents(node, mlp, model);
    Deployment d;
    d.node = node;
    if (parents.empty()) {
      d.deploy_delay = sim::Duration::zero();
      d.expected_invocation = sim::Duration::zero();
      invoke_time[node] = sim::Duration::zero();
    } else {
      sim::Duration invocation = sim::Duration::zero();
      for (const NodeId parent : parents) {
        const sim::Duration gap =
            profiles.invoke_gap(parent, node, options.fallbacks);
        invocation = std::max(invocation, invoke_time.at(parent) + gap);
      }
      d.expected_invocation = invocation;
      const sim::Duration startup =
          profile_startup(profiles, node, options.fallbacks);
      d.deploy_delay =
          (invocation - startup - options.safety_margin).clamped_non_negative();
      invoke_time[node] = invocation;
    }
    plan.deployments.push_back(d);
  }
  return plan;
}

}  // namespace xanadu::core
