#pragma once

// Most-Likely-Path (MLP) estimation -- paper Section 3.1, Algorithm 1.
//
// Starting from the workflow roots, the estimator walks the learned branch
// model breadth-first.  A child's likelihood factor is the sum of its
// conditional probabilities over all parents already on the MLP:
//
//     L_j = sum_i rho(C_j | P_i)                                (Equation 3)
//
// At each conditional sibling group the child with the maximum likelihood
// factor is appended to the MLP; multicast children are all appended (for
// 1:1 and XOR relationships L is upper-bounded by 1 and behaves like a
// probability; for multicast and m:n it can exceed 1, as the paper notes).

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "core/branch_model.hpp"

namespace xanadu::core {

struct MlpOptions {
  /// Children of an Auto-mode node with probability >= this threshold are
  /// treated as multicast (always invoked) rather than conditional
  /// candidates.
  double multicast_threshold = 0.85;
  /// Maximum number of nodes on the MLP (0 = unbounded).  The speculation
  /// engine uses this to apply the deployment-aggressiveness cut.
  std::size_t max_nodes = 0;
};

struct MlpResult {
  /// Nodes on the most likely path, in breadth-first discovery order
  /// (parents before children).
  std::vector<NodeId> path;
  /// Likelihood factor L_j of each path node (roots get 1.0).
  std::unordered_map<NodeId, double> likelihood;
  /// For each Xor/conditional parent on the path, the child predicted to be
  /// taken.  Used for prediction-miss detection.
  std::unordered_map<NodeId, NodeId> predicted_choice;

  [[nodiscard]] bool contains(NodeId id) const {
    return likelihood.contains(id);
  }
};

/// Runs Algorithm 1 over a learned branch model.
[[nodiscard]] MlpResult estimate_mlp(const BranchModel& model,
                                     const MlpOptions& options = {});

/// Runs Algorithm 1 starting from explicit seed nodes instead of the model
/// roots.  Used by the miss-replanning extension to re-estimate the path
/// from the branch a request actually took.
[[nodiscard]] MlpResult estimate_mlp_from(const BranchModel& model,
                                          const std::vector<NodeId>& seeds,
                                          const MlpOptions& options = {});

}  // namespace xanadu::core
