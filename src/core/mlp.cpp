#include "core/mlp.hpp"

#include <deque>

namespace xanadu::core {

namespace {

MlpResult estimate_impl(const BranchModel& model,
                        const std::vector<NodeId>& seeds,
                        const MlpOptions& options) {
  MlpResult result;
  std::deque<NodeId> frontier;

  auto append = [&](NodeId id, double likelihood) {
    if (result.likelihood.contains(id)) {
      // A node reachable from several MLP parents (m:1) is appended once;
      // its likelihood keeps the accumulated sum.
      result.likelihood[id] += likelihood;
      return;
    }
    if (options.max_nodes != 0 && result.path.size() >= options.max_nodes) {
      return;
    }
    result.path.push_back(id);
    result.likelihood.emplace(id, likelihood);
    frontier.push_back(id);
  };

  for (const NodeId seed : seeds) append(seed, 1.0);

  while (!frontier.empty()) {
    const NodeId id = frontier.front();
    frontier.pop_front();
    const ModelNode* parent = model.find(id);
    if (parent == nullptr || parent->children.empty()) continue;

    // Split the children into always-taken (multicast) edges and
    // conditional candidates.
    std::vector<const LearnedEdge*> conditional;
    switch (parent->select) {
      case SelectMode::All:
        for (const LearnedEdge& e : parent->children) {
          append(e.child, e.probability > 0.0 ? e.probability : 1.0);
        }
        break;
      case SelectMode::MaxLikelihood:
        for (const LearnedEdge& e : parent->children) conditional.push_back(&e);
        break;
      case SelectMode::Auto: {
        if (parent->children.size() == 1) {
          // Single known child: 1:1 edge.
          const LearnedEdge& e = parent->children.front();
          append(e.child, e.probability > 0.0 ? e.probability : 1.0);
          break;
        }
        // Children near probability 1 co-occur (multicast); the rest form a
        // conditional group -- but only when that group carries substantial
        // probability mass of its own.  A heavily biased XOR (0.9 / 0.1)
        // must NOT be read as "multicast to the favourite plus a separate
        // conditional among the losers": the favourite IS the prediction.
        std::vector<const LearnedEdge*> high;
        double low_mass = 0.0;
        for (const LearnedEdge& e : parent->children) {
          if (e.probability >= options.multicast_threshold) {
            high.push_back(&e);
          } else {
            conditional.push_back(&e);
            low_mass += e.probability;
          }
        }
        for (const LearnedEdge* e : high) append(e->child, e->probability);
        if (!conditional.empty() && !high.empty() && low_mass < 0.5) {
          // Biased conditional: the high-probability child already appended
          // is the predicted branch; the low-mass siblings are misses.
          if (high.size() == 1) {
            result.predicted_choice.emplace(id, high.front()->child);
          }
          conditional.clear();
        }
        break;
      }
    }

    if (conditional.empty()) continue;

    // Algorithm 1: among conditional siblings append the child with the
    // maximum likelihood factor L_j (Equation 3).  With a single parent the
    // factor is just rho(C_j|P_i); likelihoods accumulated from several MLP
    // parents are handled by append().
    const LearnedEdge* best = nullptr;
    for (const LearnedEdge* e : conditional) {
      if (best == nullptr || e->probability > best->probability ||
          (e->probability == best->probability && e->child < best->child)) {
        best = e;
      }
    }
    if (best != nullptr && best->probability > 0.0) {
      append(best->child, best->probability);
      result.predicted_choice.emplace(id, best->child);
    } else if (best != nullptr && parent->select == SelectMode::MaxLikelihood) {
      // Explicit conditional with no observations yet: follow the uniform
      // prior (deterministic tie-break by node id).
      append(best->child, best->probability);
      result.predicted_choice.emplace(id, best->child);
    }
  }
  return result;
}

}  // namespace

MlpResult estimate_mlp(const BranchModel& model, const MlpOptions& options) {
  return estimate_impl(model, model.roots(), options);
}

MlpResult estimate_mlp_from(const BranchModel& model,
                            const std::vector<NodeId>& seeds,
                            const MlpOptions& options) {
  return estimate_impl(model, seeds, options);
}

}  // namespace xanadu::core
