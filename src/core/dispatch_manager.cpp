#include "core/dispatch_manager.hpp"

#include <stdexcept>
#include <utility>

namespace xanadu::core {

const char* to_string(PlatformKind kind) {
  switch (kind) {
    case PlatformKind::XanaduCold: return "xanadu-cold";
    case PlatformKind::XanaduSpeculative: return "xanadu-speculative";
    case PlatformKind::XanaduJit: return "xanadu-jit";
    case PlatformKind::KnativeLike: return "knative";
    case PlatformKind::OpenWhiskLike: return "openwhisk";
    case PlatformKind::AsfLike: return "asf";
    case PlatformKind::AdfLike: return "adf";
    case PlatformKind::PrewarmAll: return "prewarm-all";
    case PlatformKind::WarmPool: return "warm-pool";
    case PlatformKind::MpcHorizon: return "mpc-horizon";
  }
  return "unknown";
}

platform::PlatformCalibration preset_calibration(PlatformKind kind) {
  switch (kind) {
    case PlatformKind::XanaduCold:
    case PlatformKind::XanaduSpeculative:
    case PlatformKind::XanaduJit:
    case PlatformKind::PrewarmAll:
    case PlatformKind::WarmPool:
    case PlatformKind::MpcHorizon:
      // The competitor policies run on Xanadu's platform mechanics so the
      // tournament isolates the provisioning decision, not the overheads.
      return platform::xanadu_calibration();
    case PlatformKind::KnativeLike:
      return platform::knative_like_calibration();
    case PlatformKind::OpenWhiskLike:
      return platform::openwhisk_like_calibration();
    case PlatformKind::AsfLike:
      return platform::asf_like_calibration();
    case PlatformKind::AdfLike:
      return platform::adf_like_calibration();
  }
  throw std::invalid_argument{"preset_calibration: unknown platform kind"};
}

namespace {

SpeculationMode mode_for(PlatformKind kind) {
  switch (kind) {
    case PlatformKind::XanaduSpeculative: return SpeculationMode::Speculative;
    case PlatformKind::XanaduJit: return SpeculationMode::Jit;
    default: return SpeculationMode::Off;
  }
}

}  // namespace

DispatchManager::DispatchManager(DispatchManagerOptions options)
    : options_(std::move(options)) {
  common::Rng seed_rng{options_.seed};
  cluster_ = std::make_unique<cluster::Cluster>(options_.cluster,
                                                seed_rng.fork());

  platform::ProvisionPolicy* policy = nullptr;
  switch (options_.kind) {
    case PlatformKind::XanaduCold:
    case PlatformKind::XanaduSpeculative:
    case PlatformKind::XanaduJit: {
      XanaduOptions xo = options_.xanadu;
      xo.mode = mode_for(options_.kind);
      xanadu_policy_ = std::make_unique<XanaduPolicy>(xo);
      policy = xanadu_policy_.get();
      break;
    }
    case PlatformKind::PrewarmAll:
      prewarm_policy_ = std::make_unique<platform::PrewarmAllPolicy>();
      policy = prewarm_policy_.get();
      break;
    case PlatformKind::WarmPool:
      pool_policy_ = std::make_unique<platform::PoolPolicy>(options_.pool);
      policy = pool_policy_.get();
      break;
    case PlatformKind::MpcHorizon:
      mpc_policy_ = std::make_unique<platform::MpcHorizonPolicy>(options_.mpc);
      policy = mpc_policy_.get();
      break;
    default:
      break;  // Baselines run the engine's pure on-trigger path.
  }

  platform::PlatformCalibration calibration =
      options_.calibration ? *options_.calibration
                           : preset_calibration(options_.kind);
  if (options_.faults.any_enabled()) {
    calibration.faults = options_.faults;
    calibration.recovery = options_.recovery;
  }
  engine_ = std::make_unique<platform::PlatformEngine>(
      sim_, *cluster_, calibration, policy, seed_rng.fork());
  engine_->register_probes(probes_);
}

common::WorkflowId DispatchManager::deploy(workflow::WorkflowDag dag) {
  return engine_->register_workflow(std::move(dag));
}

common::Result<common::WorkflowId> DispatchManager::deploy_document(
    const std::string& document, const std::string& name) {
  if (named_workflows_.contains(name)) {
    return common::Error{"workflow '" + name + "' is already deployed"};
  }
  auto parsed = workflow::parse_state_language(document, name);
  if (!parsed.ok()) return parsed.error();
  const common::WorkflowId id = deploy(std::move(parsed).value());
  named_workflows_.emplace(name, id);
  return id;
}

common::WorkflowId DispatchManager::find_named(const std::string& name) const {
  auto it = named_workflows_.find(name);
  return it == named_workflows_.end() ? common::WorkflowId{} : it->second;
}

common::Result<platform::RequestResult> DispatchManager::try_invoke_named(
    const std::string& name) {
  const common::WorkflowId id = find_named(name);
  if (!id.valid()) {
    return common::make_error("unknown workflow '" + name + "'");
  }
  return invoke(id);
}

platform::RequestResult DispatchManager::invoke_named(const std::string& name) {
  common::Result<platform::RequestResult> result = try_invoke_named(name);
  if (!result.ok()) {
    throw std::invalid_argument{result.error().message};
  }
  return std::move(result).value();
}

platform::RequestResult DispatchManager::invoke(common::WorkflowId workflow) {
  return engine_->run_one(workflow);
}

common::RequestId DispatchManager::submit(common::WorkflowId workflow,
                                          platform::CompletionCallback cb) {
  return engine_->submit(workflow, std::move(cb));
}

void DispatchManager::force_cold_start() {
  engine_->flush_all_warm_workers();
}

void DispatchManager::idle_for(sim::Duration duration) {
  sim_.run_until(sim_.now() + duration);
}

}  // namespace xanadu::core
