#pragma once

// Learned workflow model: the branch tree of Algorithm 3.
//
// Xanadu maintains, per workflow, a generative probabilistic model of the
// workflow's runtime branching behaviour.  Each discovered parent node
// carries a request count and a set of child branches with conditional
// probabilities rho(C|P).  On every observed child invocation the invoked
// branch's probability is reinforced and its siblings' probabilities decay
// (Algorithm 3):
//
//     child.probability   <- (p * n + 1) / (n + 1),  child.count++
//     sibling.probability <- (p * n)     / (n + 1),  sibling.count++
//
// For explicit chains the structure (and each node's dispatch mode) is known
// from the workflow schema and only the probabilities are learned; for
// implicit chains both structure and probabilities are learned from the
// parent-id request headers.
//
// Deviation from the paper's listing: observations are batched per
// (parent, request) so that a 1:m multicast parent -- whose children are all
// invoked by the same request -- reinforces every invoked child once and
// decays only the children that were NOT invoked.  Applying the listing
// verbatim per invocation would make sibling probabilities of a pure
// multicast oscillate around 1/m.  For XOR and 1:1 parents (one child per
// request) the batched update reduces exactly to the paper's update.

#include <cstddef>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/ids.hpp"
#include "workflow/dag.hpp"

namespace xanadu::core {

using common::NodeId;
using common::RequestId;

/// How the MLP algorithm should expand a node's children.
enum class SelectMode {
  /// Append every child (known 1:1 / 1:m structure from an explicit schema).
  All,
  /// Append only the maximum-likelihood child (known XOR conditional).
  MaxLikelihood,
  /// Structure learned from observations: children whose conditional
  /// probability is near 1 co-occur (multicast) and are all appended; the
  /// rest form a conditional group from which the max is taken.
  Auto,
};

struct LearnedEdge {
  NodeId child{};
  double probability = 0.0;
  std::size_t count = 0;
};

struct ModelNode {
  NodeId id{};
  SelectMode select = SelectMode::Auto;
  std::size_t request_count = 0;
  std::vector<LearnedEdge> children;

  [[nodiscard]] const LearnedEdge* find_child(NodeId child) const;
};

/// The per-workflow branch tree.
class BranchModel {
 public:
  BranchModel() = default;

  /// Builds an explicit-chain model: structure and dispatch modes are taken
  /// from the schema; XOR branch probabilities start at a uniform prior and
  /// are refined by observations.  True probabilities are NOT copied -- the
  /// control plane cannot see them.
  [[nodiscard]] static BranchModel from_schema(const workflow::WorkflowDag& dag);

  /// Records that `request` invoked `child` with a parent-id header naming
  /// `parent` (implicit detection path; also used to refine explicit XOR
  /// probabilities).  Structure grows on first sight of a parent/child.
  void observe_invocation(NodeId parent, NodeId child, RequestId request);

  /// Records a root invocation (no parent-id header).
  void observe_root(NodeId root, RequestId request);

  /// Applies any batched-but-unapplied sibling updates.  Call at request
  /// completion (and before computing an MLP).
  void finalize_pending();

  [[nodiscard]] const std::vector<NodeId>& roots() const { return roots_; }
  [[nodiscard]] const ModelNode* find(NodeId id) const;
  [[nodiscard]] bool known(NodeId id) const { return model_nodes_.contains(id); }
  [[nodiscard]] std::size_t node_count() const { return model_nodes_.size(); }

  /// Total distinct nodes ever observed or declared (tree discovery metric:
  /// the paper reports full-tree discovery within 8 triggers of Figure 8's
  /// workflow).
  [[nodiscard]] std::vector<NodeId> known_nodes() const;

  // -- Persistence (used by core::MetadataStore) ---------------------------

  /// Installs a node verbatim, replacing any existing entry.  Used when
  /// restoring a model from the metadata store.
  void restore_node(ModelNode node);
  /// Registers a root without recording an observation.
  void restore_root(NodeId root);

 private:
  struct PendingBatch {
    RequestId request{};
    std::unordered_set<std::uint64_t> invoked_children;
  };

  ModelNode& node(NodeId id, SelectMode mode_if_new);
  void apply_batch(ModelNode& parent, const PendingBatch& batch);

  std::vector<NodeId> roots_;
  std::unordered_map<NodeId, ModelNode> model_nodes_;
  std::unordered_map<NodeId, PendingBatch> pending_;  // keyed by parent
};

}  // namespace xanadu::core
