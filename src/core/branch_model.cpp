#include "core/branch_model.hpp"

#include <algorithm>

namespace xanadu::core {

using workflow::DispatchMode;
using workflow::Edge;
using workflow::Node;

const LearnedEdge* ModelNode::find_child(NodeId child) const {
  for (const LearnedEdge& e : children) {
    if (e.child == child) return &e;
  }
  return nullptr;
}

BranchModel BranchModel::from_schema(const workflow::WorkflowDag& dag) {
  BranchModel model;
  for (const Node& n : dag.nodes()) {
    ModelNode mn;
    mn.id = n.id;
    mn.select = (n.dispatch == DispatchMode::Xor && n.children.size() > 1)
                    ? SelectMode::MaxLikelihood
                    : SelectMode::All;
    mn.children.reserve(n.children.size());
    for (const Edge& e : n.children) {
      LearnedEdge le;
      le.child = e.child;
      // Uniform prior among siblings; the schema declares branch structure
      // but not runtime likelihoods.
      le.probability = mn.select == SelectMode::MaxLikelihood
                           ? 1.0 / static_cast<double>(n.children.size())
                           : 1.0;
      le.count = 0;
      mn.children.push_back(le);
    }
    model.model_nodes_.emplace(n.id, std::move(mn));
    if (n.parents.empty()) model.roots_.push_back(n.id);
  }
  return model;
}

ModelNode& BranchModel::node(NodeId id, SelectMode mode_if_new) {
  auto it = model_nodes_.find(id);
  if (it == model_nodes_.end()) {
    ModelNode mn;
    mn.id = id;
    mn.select = mode_if_new;
    it = model_nodes_.emplace(id, std::move(mn)).first;
  }
  return it->second;
}

const ModelNode* BranchModel::find(NodeId id) const {
  auto it = model_nodes_.find(id);
  return it == model_nodes_.end() ? nullptr : &it->second;
}

std::vector<NodeId> BranchModel::known_nodes() const {
  std::vector<NodeId> ids;
  ids.reserve(model_nodes_.size());
  // Safe: the ids are sorted below, so iteration order cannot leak out.
  for (const auto& [id, n] : model_nodes_) {  // lint:allow(unordered-iteration)
    (void)n;
    ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

void BranchModel::restore_node(ModelNode node) {
  model_nodes_.insert_or_assign(node.id, std::move(node));
}

void BranchModel::restore_root(NodeId root) {
  if (std::find(roots_.begin(), roots_.end(), root) == roots_.end()) {
    roots_.push_back(root);
  }
}

void BranchModel::observe_root(NodeId root, RequestId request) {
  (void)request;
  node(root, SelectMode::Auto);
  if (std::find(roots_.begin(), roots_.end(), root) == roots_.end()) {
    roots_.push_back(root);
  }
}

void BranchModel::observe_invocation(NodeId parent, NodeId child,
                                     RequestId request) {
  ModelNode& p = node(parent, SelectMode::Auto);
  (void)p;
  node(child, SelectMode::Auto);  // Discover the child node.

  auto it = pending_.find(parent);
  if (it != pending_.end() && it->second.request != request) {
    // A new request reached this parent: the previous request's batch is
    // complete, apply it.
    apply_batch(node(parent, SelectMode::Auto), it->second);
    pending_.erase(it);
    it = pending_.end();
  }
  if (it == pending_.end()) {
    it = pending_.emplace(parent, PendingBatch{request, {}}).first;
  }
  it->second.invoked_children.insert(child.value());
}

void BranchModel::finalize_pending() {
  // Each batch touches only its own parent, so the application order is
  // almost immaterial -- but flushing in sorted parent order keeps the
  // floating-point update sequence (and hence any persisted probabilities)
  // bit-identical across standard-library hash implementations.
  std::vector<NodeId> parents;
  parents.reserve(pending_.size());
  for (const auto& [parent, batch] : pending_) {  // lint:allow(unordered-iteration)
    (void)batch;
    parents.push_back(parent);
  }
  std::sort(parents.begin(), parents.end());
  for (const NodeId parent : parents) {
    apply_batch(node(parent, SelectMode::Auto), pending_.at(parent));
  }
  pending_.clear();
}

void BranchModel::apply_batch(ModelNode& parent, const PendingBatch& batch) {
  // Ensure every invoked child has a branch entry (structure discovery).  A
  // child discovered late starts with probability 0 over the parent's past
  // requests -- rho(C|P) must be invocations-of-C over requests-to-P, not
  // over requests since C was first seen.  The batch set is unordered, but
  // the discovery order is observable (it fixes the edge order in
  // parent.children, and with it MLP tie-breaks and persisted documents), so
  // sort before appending.
  std::vector<std::uint64_t> discovered(batch.invoked_children.begin(),
                                        batch.invoked_children.end());
  std::sort(discovered.begin(), discovered.end());
  for (const std::uint64_t raw : discovered) {
    const NodeId child{raw};
    if (parent.find_child(child) == nullptr) {
      parent.children.push_back(LearnedEdge{child, 0.0, parent.request_count});
    }
  }
  // Algorithm 3, batched per request: invoked branches are reinforced,
  // non-invoked siblings decay.
  for (LearnedEdge& e : parent.children) {
    const auto n = static_cast<double>(e.count);
    if (batch.invoked_children.contains(e.child.value())) {
      e.probability = (e.probability * n + 1.0) / (n + 1.0);
    } else {
      e.probability = (e.probability * n) / (n + 1.0);
    }
    ++e.count;
  }
  ++parent.request_count;
}

}  // namespace xanadu::core
