#pragma once

// DispatchManager: Xanadu's top-level facade (paper Section 4, Figure 11).
//
// Bundles the pieces a deployment needs -- virtual-time simulator, cluster,
// platform engine, speculation policy -- behind one object, mirroring the
// paper's Dispatch Manager (function resource allocator + reverse proxy +
// metrics engine + branch detector + speculation engine).  Baseline
// platforms (Knative-like, OpenWhisk-like, ASF/ADF emulations, naive
// prewarm-all) are built through the same class so comparisons share
// identical cluster mechanics, as in the paper's evaluation setup.

#include <map>
#include <memory>
#include <string>

#include "cluster/cluster.hpp"
#include "workflow/state_language.hpp"
#include "core/xanadu_policy.hpp"
#include "metrics/cost.hpp"
#include "platform/baseline_policies.hpp"
#include "platform/engine.hpp"
#include "sim/simulator.hpp"

namespace xanadu::core {

/// Which control plane a DispatchManager instance runs.
enum class PlatformKind {
  XanaduCold,        // Xanadu request path, speculation off
  XanaduSpeculative, // onset-time speculative deployment
  XanaduJit,         // just-in-time deployment
  KnativeLike,
  OpenWhiskLike,
  AsfLike,
  AdfLike,
  PrewarmAll,        // naive whole-workflow pre-provisioning baseline
  WarmPool,          // fixed per-function warm pools (arXiv:1903.12221)
  MpcHorizon,        // rolling-horizon MPC provisioning (arXiv:2508.07640)
};

[[nodiscard]] const char* to_string(PlatformKind kind);

/// The overhead calibration a DispatchManager of `kind` uses when no
/// explicit override is given.  Exposed so callers (the CLI, benches) can
/// tweak one knob -- e.g. enable the control bus for fault injection --
/// without re-deriving the preset.
[[nodiscard]] platform::PlatformCalibration preset_calibration(
    PlatformKind kind);

struct DispatchManagerOptions {
  PlatformKind kind = PlatformKind::XanaduJit;
  std::uint64_t seed = 42;
  cluster::ClusterOptions cluster;
  /// Applied to the Xanadu kinds only (mode is derived from `kind`).
  XanaduOptions xanadu;
  /// Applied when kind == WarmPool.
  platform::PoolPolicyOptions pool;
  /// Applied when kind == MpcHorizon.
  platform::MpcHorizonOptions mpc;
  /// Overrides the preset calibration when set.
  std::optional<platform::PlatformCalibration> calibration;
  /// Fault injection for the run (all rates default to zero = none).  When
  /// any class is enabled, `faults` and `recovery` are copied into the
  /// platform calibration.
  sim::FaultPlanOptions faults;
  platform::RecoveryOptions recovery;
};

class DispatchManager {
 public:
  explicit DispatchManager(DispatchManagerOptions options);

  /// Registers a workflow DAG and returns its handle.
  common::WorkflowId deploy(workflow::WorkflowDag dag);

  /// Parses a state-language document (paper Listing 1) and deploys it as a
  /// named workflow.  The name can later be used with invoke_named().
  common::Result<common::WorkflowId> deploy_document(const std::string& document,
                                                     const std::string& name);

  /// Looks up a workflow deployed via deploy_document by name; returns an
  /// invalid id when unknown.
  [[nodiscard]] common::WorkflowId find_named(const std::string& name) const;

  /// Submits one request to a named workflow and runs until completion.
  /// Unknown names are an expected failure mode (names come from user
  /// input), reported through the Result instead of an exception.
  common::Result<platform::RequestResult> try_invoke_named(
      const std::string& name);

  /// Submits one request to a named workflow and runs until completion.
  /// Throws std::invalid_argument for unknown names.  Implemented on top of
  /// try_invoke_named().
  platform::RequestResult invoke_named(const std::string& name);

  /// Submits one request and runs the simulation until it completes.
  platform::RequestResult invoke(common::WorkflowId workflow);

  /// Submits one request at the current virtual time without running the
  /// simulator (for open-loop arrival experiments).
  common::RequestId submit(common::WorkflowId workflow,
                           platform::CompletionCallback on_complete);

  /// Kills every warm worker: the next request meets fully cold conditions.
  void force_cold_start();

  /// Advances virtual time past the keep-alive window so that workers are
  /// reclaimed naturally (used by keep-alive experiments).
  void idle_for(sim::Duration duration);

  [[nodiscard]] sim::Simulator& simulator() { return sim_; }
  [[nodiscard]] platform::PlatformEngine& engine() { return *engine_; }
  [[nodiscard]] cluster::Cluster& cluster() { return *cluster_; }
  [[nodiscard]] const cluster::ResourceLedger& ledger() const {
    return cluster_->ledger();
  }
  /// Xanadu policy, or nullptr for baseline kinds.
  [[nodiscard]] XanaduPolicy* xanadu_policy() { return xanadu_policy_.get(); }
  /// Pool policy, or nullptr unless kind == WarmPool.
  [[nodiscard]] platform::PoolPolicy* pool_policy() {
    return pool_policy_.get();
  }
  /// MPC policy, or nullptr unless kind == MpcHorizon.
  [[nodiscard]] platform::MpcHorizonPolicy* mpc_policy() {
    return mpc_policy_.get();
  }
  [[nodiscard]] PlatformKind kind() const { return options_.kind; }
  /// Faults injected so far (all zero when fault injection is off).
  [[nodiscard]] const sim::FaultCounters& fault_counters() const {
    return engine_->fault_plan().counters();
  }
  /// What the engine's recovery machinery did about them.
  [[nodiscard]] const platform::RecoveryStats& recovery_stats() const {
    return engine_->recovery_stats();
  }
  /// Per-subsystem race-detector probes, populated at construction.  Attach
  /// to the simulator (set_probe_registry) to localise tie-race divergence.
  [[nodiscard]] const sim::ProbeRegistry& probes() const { return probes_; }

 private:
  DispatchManagerOptions options_;
  std::map<std::string, common::WorkflowId> named_workflows_;
  sim::Simulator sim_;
  std::unique_ptr<cluster::Cluster> cluster_;
  std::unique_ptr<XanaduPolicy> xanadu_policy_;
  std::unique_ptr<platform::PrewarmAllPolicy> prewarm_policy_;
  std::unique_ptr<platform::PoolPolicy> pool_policy_;
  std::unique_ptr<platform::MpcHorizonPolicy> mpc_policy_;
  std::unique_ptr<platform::PlatformEngine> engine_;
  sim::ProbeRegistry probes_;
};

}  // namespace xanadu::core
