#include "core/metadata_store.hpp"

#include <utility>

namespace xanadu::core {

using common::Error;
using common::JsonArray;
using common::JsonObject;
using common::JsonValue;
using common::Result;

namespace {

constexpr double kFormatVersion = 1.0;

JsonValue ema_to_json(const common::Ema& ema) {
  JsonObject obj;
  obj.set("value", JsonValue{ema.value_or(0.0)});
  obj.set("count", JsonValue{static_cast<double>(ema.count())});
  return JsonValue{std::move(obj)};
}

Result<std::pair<double, std::size_t>> ema_from_json(const JsonValue& json,
                                                     const char* what) {
  if (!json.is_object()) {
    return Error{std::string{what} + ": expected an object"};
  }
  const JsonObject& obj = json.as_object();
  const JsonValue* value = obj.find("value");
  const JsonValue* count = obj.find("count");
  if (value == nullptr || !value->is_number() || count == nullptr ||
      !count->is_number() || count->as_number() < 0) {
    return Error{std::string{what} + ": malformed EMA state"};
  }
  return std::pair{value->as_number(),
                   static_cast<std::size_t>(count->as_number())};
}

}  // namespace

JsonValue to_json(const BranchModel& model) {
  JsonObject doc;
  doc.set("version", JsonValue{kFormatVersion});

  JsonArray roots;
  for (const NodeId root : model.roots()) {
    roots.push_back(JsonValue{static_cast<double>(root.value())});
  }
  doc.set("roots", JsonValue{std::move(roots)});

  JsonArray nodes;
  for (const NodeId id : model.known_nodes()) {
    const ModelNode* node = model.find(id);
    JsonObject n;
    n.set("id", JsonValue{static_cast<double>(id.value())});
    n.set("select", JsonValue{static_cast<double>(static_cast<int>(node->select))});
    n.set("request_count",
          JsonValue{static_cast<double>(node->request_count)});
    JsonArray children;
    for (const LearnedEdge& e : node->children) {
      JsonObject edge;
      edge.set("child", JsonValue{static_cast<double>(e.child.value())});
      edge.set("probability", JsonValue{e.probability});
      edge.set("count", JsonValue{static_cast<double>(e.count)});
      children.push_back(JsonValue{std::move(edge)});
    }
    n.set("children", JsonValue{std::move(children)});
    nodes.push_back(JsonValue{std::move(n)});
  }
  doc.set("nodes", JsonValue{std::move(nodes)});
  return JsonValue{std::move(doc)};
}

Result<BranchModel> branch_model_from_json(const JsonValue& json) {
  if (!json.is_object()) return Error{"branch model: expected an object"};
  const JsonObject& doc = json.as_object();
  const JsonValue* version = doc.find("version");
  if (version == nullptr || !version->is_number() ||
      version->as_number() != kFormatVersion) {
    return Error{"branch model: missing or unsupported format version"};
  }
  BranchModel model;
  const JsonValue* nodes = doc.find("nodes");
  if (nodes == nullptr || !nodes->is_array()) {
    return Error{"branch model: missing 'nodes' array"};
  }
  for (const JsonValue& entry : nodes->as_array()) {
    if (!entry.is_object()) return Error{"branch model: malformed node"};
    const JsonObject& n = entry.as_object();
    const JsonValue* id = n.find("id");
    const JsonValue* select = n.find("select");
    const JsonValue* request_count = n.find("request_count");
    const JsonValue* children = n.find("children");
    if (id == nullptr || !id->is_number() || select == nullptr ||
        !select->is_number() || request_count == nullptr ||
        !request_count->is_number() || children == nullptr ||
        !children->is_array()) {
      return Error{"branch model: malformed node fields"};
    }
    const auto select_value = static_cast<int>(select->as_number());
    if (select_value < 0 || select_value > static_cast<int>(SelectMode::Auto)) {
      return Error{"branch model: unknown select mode"};
    }
    ModelNode node;
    node.id = NodeId{static_cast<std::uint64_t>(id->as_number())};
    node.select = static_cast<SelectMode>(select_value);
    node.request_count = static_cast<std::size_t>(request_count->as_number());
    for (const JsonValue& edge_value : children->as_array()) {
      if (!edge_value.is_object()) return Error{"branch model: malformed edge"};
      const JsonObject& edge = edge_value.as_object();
      const JsonValue* child = edge.find("child");
      const JsonValue* probability = edge.find("probability");
      const JsonValue* count = edge.find("count");
      if (child == nullptr || !child->is_number() || probability == nullptr ||
          !probability->is_number() || count == nullptr ||
          !count->is_number()) {
        return Error{"branch model: malformed edge fields"};
      }
      node.children.push_back(LearnedEdge{
          NodeId{static_cast<std::uint64_t>(child->as_number())},
          probability->as_number(),
          static_cast<std::size_t>(count->as_number())});
    }
    model.restore_node(std::move(node));
  }
  const JsonValue* roots = doc.find("roots");
  if (roots == nullptr || !roots->is_array()) {
    return Error{"branch model: missing 'roots' array"};
  }
  for (const JsonValue& root : roots->as_array()) {
    if (!root.is_number()) return Error{"branch model: malformed root"};
    model.restore_root(NodeId{static_cast<std::uint64_t>(root.as_number())});
  }
  return model;
}

JsonValue to_json(const ProfileTable& profiles) {
  JsonObject doc;
  doc.set("version", JsonValue{kFormatVersion});
  doc.set("alpha", JsonValue{profiles.alpha()});

  JsonArray functions;
  profiles.for_each_function([&](NodeId node, const FunctionProfile& profile) {
    JsonObject fn;
    fn.set("node", JsonValue{static_cast<double>(node.value())});
    fn.set("cold_response", ema_to_json(profile.cold_response_ema()));
    fn.set("startup", ema_to_json(profile.startup_ema()));
    fn.set("warm_response", ema_to_json(profile.warm_response_ema()));
    functions.push_back(JsonValue{std::move(fn)});
  });
  doc.set("functions", JsonValue{std::move(functions)});

  JsonArray gaps;
  profiles.for_each_invoke_gap(
      [&](NodeId parent, NodeId child, const common::Ema& ema) {
        JsonObject gap;
        gap.set("parent", JsonValue{static_cast<double>(parent.value())});
        gap.set("child", JsonValue{static_cast<double>(child.value())});
        gap.set("ema", ema_to_json(ema));
        gaps.push_back(JsonValue{std::move(gap)});
      });
  doc.set("invoke_gaps", JsonValue{std::move(gaps)});
  return JsonValue{std::move(doc)};
}

Result<ProfileTable> profile_table_from_json(const JsonValue& json) {
  if (!json.is_object()) return Error{"profile table: expected an object"};
  const JsonObject& doc = json.as_object();
  const JsonValue* version = doc.find("version");
  if (version == nullptr || !version->is_number() ||
      version->as_number() != kFormatVersion) {
    return Error{"profile table: missing or unsupported format version"};
  }
  const JsonValue* alpha = doc.find("alpha");
  if (alpha == nullptr || !alpha->is_number() || alpha->as_number() <= 0.0 ||
      alpha->as_number() > 1.0) {
    return Error{"profile table: malformed alpha"};
  }
  ProfileTable profiles{alpha->as_number()};

  const JsonValue* functions = doc.find("functions");
  if (functions == nullptr || !functions->is_array()) {
    return Error{"profile table: missing 'functions' array"};
  }
  for (const JsonValue& entry : functions->as_array()) {
    if (!entry.is_object()) return Error{"profile table: malformed function"};
    const JsonObject& fn = entry.as_object();
    const JsonValue* node = fn.find("node");
    if (node == nullptr || !node->is_number()) {
      return Error{"profile table: malformed function node id"};
    }
    FunctionProfile& profile =
        profiles.function(NodeId{static_cast<std::uint64_t>(node->as_number())});
    for (const auto& [field, ema] :
         {std::pair{"cold_response", &profile.cold_response_ema()},
          std::pair{"startup", &profile.startup_ema()},
          std::pair{"warm_response", &profile.warm_response_ema()}}) {
      const JsonValue* value = fn.find(field);
      if (value == nullptr) return Error{"profile table: missing EMA field"};
      auto state = ema_from_json(*value, field);
      if (!state.ok()) return state.error();
      ema->restore(state.value().first, state.value().second);
    }
  }

  const JsonValue* gaps = doc.find("invoke_gaps");
  if (gaps == nullptr || !gaps->is_array()) {
    return Error{"profile table: missing 'invoke_gaps' array"};
  }
  for (const JsonValue& entry : gaps->as_array()) {
    if (!entry.is_object()) return Error{"profile table: malformed gap"};
    const JsonObject& gap = entry.as_object();
    const JsonValue* parent = gap.find("parent");
    const JsonValue* child = gap.find("child");
    const JsonValue* ema = gap.find("ema");
    if (parent == nullptr || !parent->is_number() || child == nullptr ||
        !child->is_number() || ema == nullptr) {
      return Error{"profile table: malformed gap fields"};
    }
    auto state = ema_from_json(*ema, "invoke_gap");
    if (!state.ok()) return state.error();
    profiles.restore_invoke_gap(
        NodeId{static_cast<std::uint64_t>(parent->as_number())},
        NodeId{static_cast<std::uint64_t>(child->as_number())},
        state.value().first, state.value().second);
  }
  return profiles;
}

void MetadataStore::put(const std::string& key, const WorkflowMetadata& metadata) {
  JsonObject doc;
  doc.set("model", to_json(metadata.model));
  doc.set("profiles", to_json(metadata.profiles));
  documents_.insert_or_assign(key, JsonValue{std::move(doc)});
}

common::Result<std::optional<WorkflowMetadata>> MetadataStore::get(
    const std::string& key) const {
  auto it = documents_.find(key);
  if (it == documents_.end()) {
    return std::optional<WorkflowMetadata>{};
  }
  if (!it->second.is_object()) {
    return Error{"metadata document '" + key + "' is not an object"};
  }
  const JsonObject& doc = it->second.as_object();
  const JsonValue* model_json = doc.find("model");
  const JsonValue* profiles_json = doc.find("profiles");
  if (model_json == nullptr || profiles_json == nullptr) {
    return Error{"metadata document '" + key + "' is missing sections"};
  }
  auto model = branch_model_from_json(*model_json);
  if (!model.ok()) return model.error();
  auto profiles = profile_table_from_json(*profiles_json);
  if (!profiles.ok()) return profiles.error();
  WorkflowMetadata metadata;
  metadata.model = std::move(model).value();
  metadata.profiles = std::move(profiles).value();
  return std::optional<WorkflowMetadata>{std::move(metadata)};
}

bool MetadataStore::contains(const std::string& key) const {
  return documents_.contains(key);
}

std::string MetadataStore::dump() const {
  JsonObject top;
  for (const auto& [key, doc] : documents_) top.set(key, doc);
  return JsonValue{std::move(top)}.dump();
}

common::Result<MetadataStore> MetadataStore::parse(const std::string& text) {
  auto json = common::parse_json(text);
  if (!json.ok()) return json.error();
  if (!json.value().is_object()) {
    return Error{"metadata store dump must be a JSON object"};
  }
  MetadataStore store;
  const JsonObject& top = json.value().as_object();
  for (const std::string& key : top.keys()) {
    store.documents_.emplace(key, top.at(key));
  }
  return store;
}

}  // namespace xanadu::core
