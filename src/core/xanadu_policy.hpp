#pragma once

// XanaduPolicy: the speculation engine (paper Sections 3.1-3.4).
//
// The policy plugs into the platform engine's request lifecycle and
// implements Xanadu's three provisioning modes:
//
//   Off          "Xanadu Cold" -- pure on-trigger provisioning,
//   Speculative  estimate the MLP and provision every path sandbox at the
//                onset of the workflow,
//   Jit          estimate the MLP, build the Algorithm-2 timeline and
//                provision each sandbox just ahead of its expected trigger.
//
// Orthogonally, the policy learns:
//   * the branch model (Algorithm 3) -- from the workflow schema for
//     explicit chains, or purely from parent-id request headers for
//     implicit chains,
//   * per-function EMA profiles (cold/warm response, startup time) and
//     per-edge invoke gaps (Section 3.2.2).
//
// Prediction misses: when an XOR parent resolves to a child other than the
// predicted one, the policy cancels all planned-but-unfired deployments
// (Section 3.2.2) and, per the paper, discards speculatively provisioned
// sandboxes that the actual path can no longer use.  The aggressiveness
// parameter (Section 3.2.1) bounds how far down the MLP resources are
// provisioned.  MissPolicy::Replan implements the paper's future-work
// extension (Section 7): after a miss the MLP is re-estimated from the
// chosen branch and speculation resumes on the new path.

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "common/arena.hpp"
#include "core/branch_model.hpp"
#include "core/jit_planner.hpp"
#include "core/metadata_store.hpp"
#include "core/mlp.hpp"
#include "core/profile.hpp"
#include "platform/engine.hpp"

namespace xanadu::core {

enum class SpeculationMode { Off, Speculative, Jit };
enum class ChainKnowledge { Explicit, Implicit };
enum class MissPolicy { Stop, Replan };

[[nodiscard]] const char* to_string(SpeculationMode mode);

struct XanaduOptions {
  SpeculationMode mode = SpeculationMode::Jit;
  ChainKnowledge knowledge = ChainKnowledge::Explicit;
  MissPolicy miss_policy = MissPolicy::Stop;
  /// Fraction of the MLP depth to pre-provision, in (0, 1].  Section 3.2.1's
  /// provider-side deployment-aggressiveness knob.
  double aggressiveness = 1.0;
  /// Section 7 extension: on a prediction miss, re-bind idle sandboxes that
  /// were speculatively deployed for the wrong branch to architecture-
  /// compatible functions on the branch actually taken, instead of
  /// discarding them.
  bool reuse_workers_on_miss = false;
  /// EMA smoothing factor for all learned metrics.
  double ema_alpha = 0.3;
  JitOptions jit;
  MlpOptions mlp;
};

class XanaduPolicy final : public platform::ProvisionPolicy {
 public:
  explicit XanaduPolicy(XanaduOptions options);

  // ProvisionPolicy hooks -------------------------------------------------
  void on_request_submitted(platform::PlatformEngine& engine,
                            platform::RequestContext& ctx) override;
  void on_node_triggered(platform::PlatformEngine& engine,
                         platform::RequestContext& ctx, NodeId node) override;
  void on_node_exec_start(platform::PlatformEngine& engine,
                          platform::RequestContext& ctx, NodeId node) override;
  void on_worker_ready(platform::PlatformEngine& engine,
                       common::WorkflowId workflow, NodeId node,
                       sim::Duration provision_latency) override;
  void on_node_completed(platform::PlatformEngine& engine,
                         platform::RequestContext& ctx, NodeId node) override;
  void on_xor_resolved(platform::PlatformEngine& engine,
                       platform::RequestContext& ctx, NodeId parent,
                       NodeId chosen) override;
  void on_node_skipped(platform::PlatformEngine& engine,
                       platform::RequestContext& ctx, NodeId node) override;
  void on_request_completed(platform::PlatformEngine& engine,
                            platform::RequestContext& ctx,
                            platform::RequestResult& result) override;

  // Introspection ----------------------------------------------------------
  [[nodiscard]] const XanaduOptions& options() const { return options_; }
  /// The learned model for a workflow (nullptr before its first request).
  [[nodiscard]] const BranchModel* model(common::WorkflowId id) const;
  [[nodiscard]] const ProfileTable* profiles(common::WorkflowId id) const;
  /// Latest MLP estimate for a workflow (empty before the first request).
  [[nodiscard]] MlpResult current_mlp(common::WorkflowId id) const;

  // -- Metadata persistence (paper Section 4: "backing everything up on the
  //    Metadata DB for persistence") ---------------------------------------

  /// Writes a workflow's learned state (branch model + profiles) to the
  /// store under `key`.  Returns false if the workflow has no state yet.
  bool persist(common::WorkflowId id, MetadataStore& store,
               const std::string& key) const;

  /// Restores a workflow's learned state from the store, replacing whatever
  /// the policy currently knows.  Returns an error when the stored document
  /// is corrupt; false-like empty optional semantics are folded into the
  /// bool: true when state was installed.
  [[nodiscard]] common::Result<bool> restore(common::WorkflowId id,
                                             const MetadataStore& store,
                                             const std::string& key);

 private:
  struct WorkflowState {
    BranchModel model;
    ProfileTable profiles;
    explicit WorkflowState(double alpha) : profiles(alpha) {}
  };

  /// Per-request speculation bookkeeping.  The containers live in the
  /// request's arena: the engine tears this state down (via
  /// on_request_completed) before it recycles the context, so the arena
  /// strictly outlives them.
  struct RequestState {
    explicit RequestState(common::Arena* arena)
        : scheduled(common::ArenaAllocator<common::EventId>(arena)),
          prewarmed_nodes(common::ArenaAllocator<std::uint64_t>(arena)) {}

    MlpResult mlp;
    /// Planned-but-unfired proactive deployments (cancellable).
    common::ArenaVector<common::EventId> scheduled;
    /// Nodes with a speculative deployment issued, deduplicated.  A flat
    /// vector beats a hash set here: MLP paths are short (aggressiveness
    /// bounds them) and the arena makes growth allocation-free.
    common::ArenaVector<std::uint64_t> prewarmed_nodes;
    bool miss_detected = false;

    [[nodiscard]] bool prewarmed(std::uint64_t node) const {
      return std::find(prewarmed_nodes.begin(), prewarmed_nodes.end(), node) !=
             prewarmed_nodes.end();
    }
    void mark_prewarmed(std::uint64_t node) {
      if (!prewarmed(node)) prewarmed_nodes.push_back(node);
    }
  };

  WorkflowState& workflow_state(platform::PlatformEngine& engine,
                                platform::RequestContext& ctx);
  void launch_speculation(platform::PlatformEngine& engine,
                          platform::RequestContext& ctx, WorkflowState& wf,
                          RequestState& rs, NodeId from_node,
                          sim::Duration base_offset);
  void cancel_pending(platform::PlatformEngine& engine,
                      platform::RequestContext& ctx, RequestState& rs);
  [[nodiscard]] std::size_t aggressiveness_cut(std::size_t path_length) const;

  XanaduOptions options_;
  std::unordered_map<common::WorkflowId, WorkflowState> workflows_;
  std::unordered_map<common::RequestId, RequestState> requests_;
};

}  // namespace xanadu::core
