#pragma once

// FNV-1a hashing primitives shared by the trace-digest pipeline
// (metrics/trace.hpp) and the virtual-time race detector (sim/race_detector
// .hpp).  FNV-1a is used deliberately: byte-order-free, dependency-free, and
// stable across platforms, so digests can be pinned in tests and compared
// across machines.

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace xanadu::common {

/// FNV-1a offset basis; digests of empty inputs equal this value.
inline constexpr std::uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ULL;
inline constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

/// Folds `size` bytes at `data` into a running FNV-1a digest.
[[nodiscard]] constexpr std::uint64_t fnv1a_bytes(
    const char* data, std::size_t size, std::uint64_t seed = kFnvOffsetBasis) {
  std::uint64_t hash = seed;
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= static_cast<unsigned char>(data[i]);
    hash *= kFnvPrime;
  }
  return hash;
}

/// Folds `text` into a running FNV-1a digest.
[[nodiscard]] constexpr std::uint64_t fnv1a(
    std::string_view text, std::uint64_t seed = kFnvOffsetBasis) {
  return fnv1a_bytes(text.data(), text.size(), seed);
}

/// Folds one 64-bit value into a running digest (little-endian byte order,
/// explicitly, so the result does not depend on host endianness).
[[nodiscard]] constexpr std::uint64_t fnv1a_u64(
    std::uint64_t value, std::uint64_t seed = kFnvOffsetBasis) {
  std::uint64_t hash = seed;
  for (int shift = 0; shift < 64; shift += 8) {
    hash ^= (value >> shift) & 0xffU;
    hash *= kFnvPrime;
  }
  return hash;
}

}  // namespace xanadu::common
