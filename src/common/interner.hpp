#pragma once

// String interning: dense, deterministic ids for repeated string keys.
//
// PR 3 interned the message-bus topic names ad hoc; this generalises the
// technique for every hot string key (function names in the streaming trace
// renderer, bus topics, tenant labels).  intern() assigns ids in first-use
// order -- deterministic for a deterministic call sequence -- and view()
// returns a string_view whose storage is stable for the interner's lifetime,
// so render paths can hold views instead of copying std::strings per row.

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace xanadu::common {

/// Dense handle for an interned string.  Value order is first-use order.
using Symbol = std::uint32_t;

class StringInterner {
 public:
  StringInterner() = default;

  StringInterner(const StringInterner&) = delete;
  StringInterner& operator=(const StringInterner&) = delete;

  /// Returns the symbol for `text`, interning it on first use.
  Symbol intern(std::string_view text);

  /// Looks `text` up without interning; nullopt when unseen.
  [[nodiscard]] std::optional<Symbol> find(std::string_view text) const;

  /// The interned text.  The view stays valid for the interner's lifetime.
  [[nodiscard]] std::string_view view(Symbol symbol) const {
    return *strings_[symbol];
  }

  [[nodiscard]] std::size_t size() const { return strings_.size(); }

 private:
  /// Symbol -> text.  unique_ptr keeps the character storage stable across
  /// vector growth so handed-out views never dangle.
  std::vector<std::unique_ptr<std::string>> strings_;
  /// Text -> symbol.  Keys view the strings_ storage (no duplicate copies);
  /// lookup only -- never iterated, so unordered is determinism-safe.
  std::unordered_map<std::string_view, Symbol> index_;
};

}  // namespace xanadu::common
