#include "common/interner.hpp"

#include <memory>

namespace xanadu::common {

Symbol StringInterner::intern(std::string_view text) {
  auto it = index_.find(text);
  if (it != index_.end()) return it->second;
  auto owned = std::make_unique<std::string>(text);
  std::string_view stable{*owned};
  auto symbol = static_cast<Symbol>(strings_.size());
  strings_.push_back(std::move(owned));
  index_.emplace(stable, symbol);
  return symbol;
}

std::optional<Symbol> StringInterner::find(std::string_view text) const {
  auto it = index_.find(text);
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

}  // namespace xanadu::common
