#pragma once

// Strongly-typed integer identifiers used throughout the Xanadu codebase.
//
// Each id is a distinct type so that a WorkerId can never be passed where a
// RequestId is expected (C++ Core Guidelines I.4: make interfaces precisely
// and strongly typed).  Ids are cheap value types, hashable, and totally
// ordered so they can key standard containers.

#include <cstdint>
#include <functional>

namespace xanadu::common {

/// CRTP-free tagged integer id.  `Tag` is an empty struct that makes each
/// instantiation a unique type.
template <typename Tag>
class Id {
 public:
  using underlying_type = std::uint64_t;

  constexpr Id() = default;
  constexpr explicit Id(underlying_type value) : value_(value) {}

  [[nodiscard]] constexpr underlying_type value() const { return value_; }
  [[nodiscard]] constexpr bool valid() const { return value_ != kInvalid; }

  friend constexpr auto operator<=>(Id, Id) = default;

 private:
  static constexpr underlying_type kInvalid = ~underlying_type{0};
  underlying_type value_ = kInvalid;
};

/// Monotonic generator for a given id type.  Not thread-safe by design: the
/// simulation is single-threaded and deterministic.
template <typename IdType>
class IdGenerator {
 public:
  [[nodiscard]] IdType next() { return IdType{next_++}; }
  void reset() { next_ = 0; }

 private:
  typename IdType::underlying_type next_ = 0;
};

struct FunctionTag {};
struct NodeTag {};
struct WorkerTag {};
struct HostTag {};
struct RequestTag {};
struct WorkflowTag {};
struct EventTag {};

/// Identifies a deployed function (the unit of execution).
using FunctionId = Id<FunctionTag>;
/// Identifies a node inside a workflow DAG (one function occurrence).
using NodeId = Id<NodeTag>;
/// Identifies a provisioned sandbox worker.
using WorkerId = Id<WorkerTag>;
/// Identifies a host machine in the cluster.
using HostId = Id<HostTag>;
/// Identifies one end-to-end workflow invocation.
using RequestId = Id<RequestTag>;
/// Identifies a registered workflow (DAG) definition.
using WorkflowId = Id<WorkflowTag>;
/// Identifies a scheduled simulator event (used for cancellation).
using EventId = Id<EventTag>;

}  // namespace xanadu::common

namespace std {
template <typename Tag>
struct hash<xanadu::common::Id<Tag>> {
  size_t operator()(xanadu::common::Id<Tag> id) const noexcept {
    return std::hash<std::uint64_t>{}(id.value());
  }
};
}  // namespace std
