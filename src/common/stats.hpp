#pragma once

// Summary statistics used by the benchmark harness: mean/stddev/min/max,
// percentiles, and simple linear regression with the coefficient of
// determination (R^2) that the paper reports for the cloud-platform
// cold-start growth fits (Figure 3: R^2 = 0.993 for ASF, 0.953 for ADF).

#include <cstddef>
#include <vector>

namespace xanadu::common {

/// Streaming accumulator for basic moments (Welford's algorithm).
class Accumulator {
 public:
  void observe(double x);

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] double mean() const;
  /// Sample variance (n - 1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double sum() const { return sum_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Aggregate description of a sample vector.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

/// Computes a Summary over `samples`.  Returns a zeroed Summary when empty.
[[nodiscard]] Summary summarize(std::vector<double> samples);

/// Linear interpolation percentile over a *sorted* sample vector.
/// `q` in [0, 1].  Throws on empty input or out-of-range q.
[[nodiscard]] double percentile_sorted(const std::vector<double>& sorted, double q);

/// Ordinary least squares fit y = slope * x + intercept.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  /// Coefficient of determination in [0, 1] (1 when y is constant and the
  /// fit is exact).
  double r_squared = 0.0;
};

/// Fits a line through (x[i], y[i]).  Requires x.size() == y.size() >= 2 and
/// non-constant x; throws std::invalid_argument otherwise.
[[nodiscard]] LinearFit linear_fit(const std::vector<double>& x,
                                   const std::vector<double>& y);

}  // namespace xanadu::common
