#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace xanadu::common {

void Accumulator::observe(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double Accumulator::mean() const { return count_ == 0 ? 0.0 : mean_; }

double Accumulator::variance() const {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

double Accumulator::min() const { return count_ == 0 ? 0.0 : min_; }

double Accumulator::max() const { return count_ == 0 ? 0.0 : max_; }

double percentile_sorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) {
    throw std::invalid_argument{"percentile_sorted: empty sample"};
  }
  if (q < 0.0 || q > 1.0) {
    throw std::invalid_argument{"percentile_sorted: q out of [0, 1]"};
  }
  if (sorted.size() == 1) return sorted.front();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

Summary summarize(std::vector<double> samples) {
  Summary s;
  if (samples.empty()) return s;
  Accumulator acc;
  for (double x : samples) acc.observe(x);
  std::sort(samples.begin(), samples.end());
  s.count = acc.count();
  s.mean = acc.mean();
  s.stddev = acc.stddev();
  s.min = acc.min();
  s.max = acc.max();
  s.p50 = percentile_sorted(samples, 0.50);
  s.p95 = percentile_sorted(samples, 0.95);
  s.p99 = percentile_sorted(samples, 0.99);
  return s;
}

LinearFit linear_fit(const std::vector<double>& x, const std::vector<double>& y) {
  if (x.size() != y.size()) {
    throw std::invalid_argument{"linear_fit: size mismatch"};
  }
  if (x.size() < 2) {
    throw std::invalid_argument{"linear_fit: need at least two points"};
  }
  const auto n = static_cast<double>(x.size());
  double sx = 0.0, sy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
  }
  const double mx = sx / n;
  const double my = sy / n;
  double sxx = 0.0, sxy = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  if (sxx == 0.0) {
    throw std::invalid_argument{"linear_fit: x values are constant"};
  }
  LinearFit fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  if (syy == 0.0) {
    fit.r_squared = 1.0;  // y constant: the fit is exact.
  } else {
    double ss_res = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      const double resid = y[i] - (fit.slope * x[i] + fit.intercept);
      ss_res += resid * resid;
    }
    fit.r_squared = 1.0 - ss_res / syy;
  }
  return fit;
}

}  // namespace xanadu::common
