#pragma once

// Minimal Result<T> type for fallible operations whose failures are expected
// and must be handled by the caller (parsing, lookups from user input).
// Contract violations still throw; see DESIGN.md Section 4.

#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

namespace xanadu::common {

/// Describes why an operation failed; carries a human-readable message.
struct Error {
  std::string message;
};

/// Value-or-error discriminated union.  Accessing the wrong alternative
/// throws std::logic_error, which indicates a programming bug at the call
/// site (the caller must check ok() first).
template <typename T>
class Result {
 public:
  Result(T value) : data_(std::move(value)) {}        // NOLINT(google-explicit-constructor)
  Result(Error error) : data_(std::move(error)) {}    // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool ok() const { return std::holds_alternative<T>(data_); }
  explicit operator bool() const { return ok(); }

  [[nodiscard]] const T& value() const& {
    require_ok();
    return std::get<T>(data_);
  }
  [[nodiscard]] T& value() & {
    require_ok();
    return std::get<T>(data_);
  }
  [[nodiscard]] T&& value() && {
    require_ok();
    return std::get<T>(std::move(data_));
  }

  [[nodiscard]] const Error& error() const {
    if (ok()) throw std::logic_error{"Result::error: result holds a value"};
    return std::get<Error>(data_);
  }

 private:
  void require_ok() const {
    if (!ok()) {
      throw std::logic_error{"Result::value: result holds an error: " +
                             std::get<Error>(data_).message};
    }
  }

  std::variant<T, Error> data_;
};

/// Convenience factory mirroring absl::InvalidArgumentError-style call sites.
inline Error make_error(std::string message) { return Error{std::move(message)}; }

}  // namespace xanadu::common
