#include "common/arena.hpp"

#if defined(XANADU_ARENA_ASAN)
#include <sanitizer/asan_interface.h>
#endif

namespace xanadu::common {

namespace {

[[nodiscard]] std::size_t align_up(std::size_t value, std::size_t align) {
  return (value + align - 1) & ~(align - 1);
}

}  // namespace

Arena::Arena(std::size_t block_bytes)
    : block_bytes_(block_bytes == 0 ? kDefaultBlockBytes : block_bytes) {}

Arena::~Arena() = default;

void Arena::poison(const void* address, std::size_t size) {
#if defined(XANADU_ARENA_ASAN)
  ASAN_POISON_MEMORY_REGION(address, size);
#else
  (void)address;
  (void)size;
#endif
}

void Arena::unpoison(const void* address, std::size_t size) {
#if defined(XANADU_ARENA_ASAN)
  ASAN_UNPOISON_MEMORY_REGION(address, size);
#else
  (void)address;
  (void)size;
#endif
}

void Arena::push_block(std::size_t min_bytes) {
  Block block;
  block.size = min_bytes > block_bytes_ ? min_bytes : block_bytes_;
  block.data = std::make_unique<std::byte[]>(block.size);
  poison(block.data.get(), block.size);
  blocks_.push_back(std::move(block));
  cursor_ = 0;
}

void* Arena::allocate(std::size_t bytes, std::size_t align) {
  if (align == 0) align = 1;
  allocated_ += bytes;

  // Oversized fallback: a dedicated block the bump path never sees, so one
  // huge request cannot strand the tail of a regular block.  Over-allocated
  // by align-1: new[] only guarantees __STDCPP_DEFAULT_NEW_ALIGNMENT__.
  if (bytes > block_bytes_) {
    Block block;
    block.size = bytes + align - 1;
    block.data = std::make_unique<std::byte[]>(block.size);
    auto raw = reinterpret_cast<std::uintptr_t>(block.data.get());
    std::byte* pointer = block.data.get() + (align_up(raw, align) - raw);
    oversized_.push_back(std::move(block));
    return pointer;
  }

  if (blocks_.empty()) push_block(block_bytes_);
  // Align the POINTER, not the offset: the block storage itself is only
  // guaranteed __STDCPP_DEFAULT_NEW_ALIGNMENT__-aligned.
  std::byte* base = blocks_.back().data.get();
  std::size_t offset =
      align_up(reinterpret_cast<std::uintptr_t>(base) + cursor_, align) -
      reinterpret_cast<std::uintptr_t>(base);
  if (offset + bytes > blocks_.back().size) {
    push_block(bytes + align);  // Guaranteed fit after pointer alignment.
    base = blocks_.back().data.get();
    offset = align_up(reinterpret_cast<std::uintptr_t>(base), align) -
             reinterpret_cast<std::uintptr_t>(base);
  }
  cursor_ = offset + bytes;
  unpoison(base + offset, bytes);
  return base + offset;
}

void Arena::reset() {
  oversized_.clear();
  if (blocks_.empty()) {
    allocated_ = 0;
    return;
  }
  // Keep the first block warm; everything later was overflow.
  blocks_.resize(1);
  poison(blocks_.front().data.get(), blocks_.front().size);
  cursor_ = 0;
  allocated_ = 0;
}

}  // namespace xanadu::common
