#pragma once

// Deterministic random number generation.
//
// All stochastic behaviour in the simulation (arrival processes, XOR-branch
// sampling, latency jitter, random tree generation) flows through Rng
// instances seeded explicitly by the experiment.  Nothing in the codebase
// touches std::random_device or the wall clock, which keeps every experiment
// bit-reproducible across runs and machines.
//
// Stream discipline (machine-checked by tools/flow_lint.py, rule
// `shared-rng-draw`): never draw from a shared/ambient stream -- a member
// Rng of a long-lived object -- inside event-handler or tied-batch code,
// because same-timestamp events then race for draws and firing order decides
// which value lands where.  Same-instant work derives its own stream with
// fork_stream() and a stable key ((function, worker), request id, ...)
// instead; fork() is only safe where call order is itself part of the
// deterministic contract (component setup, generator loops).
//
// Compiling with -DXANADU_RNG_TRACE (CMake option of the same name) makes
// every draw record its call site into an interned global set, which the
// flow_lint cross-validation test diffs against the analyzer's statically
// predicted draw sites (tests/rng_trace_test.cpp).  The flag changes no
// drawn values and therefore no digests.

#include <cstdint>
#include <stdexcept>
#include <vector>

#if defined(XANADU_RNG_TRACE)
#include <source_location>
#include <string>

namespace xanadu::common::rng_trace {

/// Interns the call site of one Rng draw.  Sites inside common/rng.{hpp,cpp}
/// (internal delegation, e.g. uniform() calling next()) are ignored so the
/// observed set holds only the outermost textual draw sites -- the same
/// granularity tools/flow_lint.py predicts.
void record(const std::source_location& site);

/// Observed draw sites so far, as sorted "path:line" labels with the path
/// normalised to start at src/, bench/, tests/, tools/ or examples/.
[[nodiscard]] std::vector<std::string> observed_sites();

/// Forgets all recorded sites (test isolation).
void clear();

}  // namespace xanadu::common::rng_trace

// Appended to every draw signature: with tracing on, each draw method gains
// a defaulted std::source_location carrying the caller's file:line.
#define XANADU_RNG_SITE_ONLY \
  const std::source_location& xanadu_rng_site = std::source_location::current()
#define XANADU_RNG_SITE \
  , const std::source_location& xanadu_rng_site = std::source_location::current()
#define XANADU_RNG_SITE_ONLY_DECL const std::source_location& xanadu_rng_site
#define XANADU_RNG_SITE_DECL , const std::source_location& xanadu_rng_site
#define XANADU_RNG_RECORD() ::xanadu::common::rng_trace::record(xanadu_rng_site)
#else
#define XANADU_RNG_SITE_ONLY
#define XANADU_RNG_SITE
#define XANADU_RNG_SITE_ONLY_DECL
#define XANADU_RNG_SITE_DECL
#define XANADU_RNG_RECORD() ((void)0)
#endif

namespace xanadu::common {

/// SplitMix64 -- used to expand a single 64-bit seed into a full xoshiro
/// state.  Reference: Sebastiano Vigna's public-domain implementation notes.
class SplitMix64 {
 public:
  constexpr explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** -- fast, high-quality 64-bit PRNG suitable for simulation.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    stream_id_ = seed;
    SplitMix64 sm{seed};
    for (auto& word : state_) word = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()(XANADU_RNG_SITE_ONLY) {
    XANADU_RNG_RECORD();
    return step();
  }

  std::uint64_t next(XANADU_RNG_SITE_ONLY) {
    XANADU_RNG_RECORD();
    return step();
  }

  /// Uniform double in [0, 1).
  double uniform(XANADU_RNG_SITE_ONLY) {
    XANADU_RNG_RECORD();
    return static_cast<double>(step() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi XANADU_RNG_SITE) {
    XANADU_RNG_RECORD();
    if (hi < lo) throw std::invalid_argument{"Rng::uniform: hi < lo"};
    return lo + (hi - lo) * (static_cast<double>(step() >> 11) * 0x1.0p-53);
  }

  /// Uniform integer in [0, n).  n must be > 0.
  std::uint64_t uniform_int(std::uint64_t n XANADU_RNG_SITE) {
    XANADU_RNG_RECORD();
    if (n == 0) throw std::invalid_argument{"Rng::uniform_int: n == 0"};
    // Lemire's rejection method for unbiased bounded generation.
    std::uint64_t x = step();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto low = static_cast<std::uint64_t>(m);
    if (low < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (low < threshold) {
        x = step();
        m = static_cast<__uint128_t>(x) * n;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Bernoulli trial with success probability p (clamped to [0, 1]).
  bool bernoulli(double p XANADU_RNG_SITE) {
    XANADU_RNG_RECORD();
    return static_cast<double>(step() >> 11) * 0x1.0p-53 < p;
  }

  /// Samples an index from an (unnormalised) non-negative weight vector.
  /// Throws if the vector is empty or all weights are zero.
  std::size_t weighted_index(const std::vector<double>& weights
                                 XANADU_RNG_SITE);

  /// Pointer/length form of weighted_index, for arena-backed weight buffers
  /// (same draw sequence as the vector overload).
  std::size_t weighted_index(const double* weights, std::size_t count
                                 XANADU_RNG_SITE);

  /// Exponentially distributed value with the given mean (> 0).
  double exponential(double mean XANADU_RNG_SITE);

  /// Normally distributed value (Box-Muller); useful for latency jitter.
  double normal(double mean, double stddev XANADU_RNG_SITE);

  /// Derives an independent child generator by CONSUMING one parent draw;
  /// used to give each component of an experiment its own stream at setup
  /// time.  Because it advances the parent, the child depends on how many
  /// draws preceded it -- never fork() inside same-timestamp work; use
  /// fork_stream() with a stable key there.
  Rng fork(XANADU_RNG_SITE_ONLY) {
    XANADU_RNG_RECORD();
    return Rng{step() ^ 0xd1b54a32d192ed03ULL};
  }

  /// Derives an independent child generator from a stable key WITHOUT
  /// touching parent state: two calls with the same key return identical
  /// streams no matter how many draws or forks happened in between, so
  /// same-timestamp (tied) work keyed on stable ids -- (function, worker),
  /// request id -- gets order-independent randomness.  This is the fix for
  /// the speculative provision-batch race the virtual-time race detector
  /// pinned (see ARCHITECTURE.md "RNG stream discipline").
  [[nodiscard]] Rng fork_stream(std::uint64_t key) const {
    SplitMix64 sm{stream_id_ ^
                  (0x9e3779b97f4a7c15ULL * (key + 0x632be59bd9b4e019ULL))};
    return Rng{sm.next()};
  }

 private:
  /// Shared body of the weighted_index overloads (draws via uniform()).
  std::size_t weighted_index_impl(const double* weights, std::size_t count);

  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  /// Advances the xoshiro256** state by one draw (untraced core).
  std::uint64_t step() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  std::uint64_t state_[4]{};
  /// Seed identity captured at reseed(); the stable base fork_stream()
  /// derives children from (draws never change it).
  std::uint64_t stream_id_ = 0;
};

}  // namespace xanadu::common
