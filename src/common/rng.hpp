#pragma once

// Deterministic random number generation.
//
// All stochastic behaviour in the simulation (arrival processes, XOR-branch
// sampling, latency jitter, random tree generation) flows through Rng
// instances seeded explicitly by the experiment.  Nothing in the codebase
// touches std::random_device or the wall clock, which keeps every experiment
// bit-reproducible across runs and machines.

#include <cstdint>
#include <stdexcept>
#include <vector>

namespace xanadu::common {

/// SplitMix64 -- used to expand a single 64-bit seed into a full xoshiro
/// state.  Reference: Sebastiano Vigna's public-domain implementation notes.
class SplitMix64 {
 public:
  constexpr explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** -- fast, high-quality 64-bit PRNG suitable for simulation.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    SplitMix64 sm{seed};
    for (auto& word : state_) word = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    if (hi < lo) throw std::invalid_argument{"Rng::uniform: hi < lo"};
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n).  n must be > 0.
  std::uint64_t uniform_int(std::uint64_t n) {
    if (n == 0) throw std::invalid_argument{"Rng::uniform_int: n == 0"};
    // Lemire's rejection method for unbiased bounded generation.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto low = static_cast<std::uint64_t>(m);
    if (low < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (low < threshold) {
        x = next();
        m = static_cast<__uint128_t>(x) * n;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Bernoulli trial with success probability p (clamped to [0, 1]).
  bool bernoulli(double p) { return uniform() < p; }

  /// Samples an index from an (unnormalised) non-negative weight vector.
  /// Throws if the vector is empty or all weights are zero.
  std::size_t weighted_index(const std::vector<double>& weights);

  /// Exponentially distributed value with the given mean (> 0).
  double exponential(double mean);

  /// Normally distributed value (Box-Muller); useful for latency jitter.
  double normal(double mean, double stddev);

  /// Derives an independent child generator; used to give each component of
  /// an experiment its own stream without correlated sequences.
  Rng fork() { return Rng{next() ^ 0xd1b54a32d192ed03ULL}; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace xanadu::common
