#include "common/rng.hpp"

#include <cmath>
#include <numbers>

#if defined(XANADU_RNG_TRACE)
#include <algorithm>
#include <mutex>
#include <set>
#include <string_view>
#endif

namespace xanadu::common {

std::size_t Rng::weighted_index(const std::vector<double>& weights
                                    XANADU_RNG_SITE_DECL) {
  XANADU_RNG_RECORD();
  return weighted_index_impl(weights.data(), weights.size());
}

std::size_t Rng::weighted_index(const double* weights, std::size_t count
                                    XANADU_RNG_SITE_DECL) {
  XANADU_RNG_RECORD();
  return weighted_index_impl(weights, count);
}

std::size_t Rng::weighted_index_impl(const double* weights,
                                     std::size_t count) {
  if (count == 0) {
    throw std::invalid_argument{"Rng::weighted_index: empty weights"};
  }
  double total = 0.0;
  for (std::size_t i = 0; i < count; ++i) {
    if (weights[i] < 0.0) {
      throw std::invalid_argument{"Rng::weighted_index: negative weight"};
    }
    total += weights[i];
  }
  if (total <= 0.0) {
    throw std::invalid_argument{"Rng::weighted_index: all weights zero"};
  }
  double target = uniform() * total;
  for (std::size_t i = 0; i < count; ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  return count - 1;  // Guard against floating-point underrun.
}

double Rng::exponential(double mean XANADU_RNG_SITE_DECL) {
  XANADU_RNG_RECORD();
  if (mean <= 0.0) throw std::invalid_argument{"Rng::exponential: mean <= 0"};
  // uniform() is in [0, 1); use 1 - u to avoid log(0).
  return -mean * std::log(1.0 - uniform());
}

double Rng::normal(double mean, double stddev XANADU_RNG_SITE_DECL) {
  XANADU_RNG_RECORD();
  if (stddev < 0.0) throw std::invalid_argument{"Rng::normal: stddev < 0"};
  const double u1 = 1.0 - uniform();
  const double u2 = uniform();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * std::numbers::pi * u2);
}

}  // namespace xanadu::common

#if defined(XANADU_RNG_TRACE)

namespace xanadu::common::rng_trace {

namespace {

/// Global interned draw-site set.  Guarded by site_mutex(): the sharded
/// drain (sim/sharded.hpp) runs shard-local Rngs on worker threads, and the
/// rng-trace CI job exercises those tests too.
std::set<std::string>& site_set() {
  static std::set<std::string> sites;
  return sites;
}

std::mutex& site_mutex() {
  static std::mutex mutex;
  return mutex;
}

/// Normalises a compiler-reported path to start at a repository-root
/// component (src/, bench/, tests/, tools/, examples/) so labels match the
/// repo-relative paths tools/flow_lint.py emits.  Falls back to the
/// basename for paths outside the repository (standard library headers).
std::string normalise(std::string_view path) {
  static constexpr std::string_view kRoots[] = {"src/", "bench/", "tests/",
                                                "tools/", "examples/"};
  std::size_t best = std::string_view::npos;
  for (const std::string_view root : kRoots) {
    // Match "/<root>" so "mysrc/" style prefixes cannot alias.
    for (std::size_t at = path.find(root); at != std::string_view::npos;
         at = path.find(root, at + 1)) {
      if (at == 0 || path[at - 1] == '/') {
        if (best == std::string_view::npos || at < best) best = at;
        break;
      }
    }
  }
  if (best != std::string_view::npos) return std::string{path.substr(best)};
  const std::size_t slash = path.rfind('/');
  return std::string{slash == std::string_view::npos
                         ? path
                         : path.substr(slash + 1)};
}

}  // namespace

void record(const std::source_location& site) {
  const std::string path = normalise(site.file_name());
  // Internal delegation (uniform() calling next(), Box-Muller calling
  // uniform()) reports sites inside the Rng implementation itself; skip
  // them so the set holds only outermost textual draw sites.
  if (path == "src/common/rng.hpp" || path == "src/common/rng.cpp") return;
  const std::lock_guard<std::mutex> lock(site_mutex());
  site_set().insert(path + ":" + std::to_string(site.line()));
}

std::vector<std::string> observed_sites() {
  const std::lock_guard<std::mutex> lock(site_mutex());
  return {site_set().begin(), site_set().end()};
}

void clear() {
  const std::lock_guard<std::mutex> lock(site_mutex());
  site_set().clear();
}

}  // namespace xanadu::common::rng_trace

#endif  // XANADU_RNG_TRACE
