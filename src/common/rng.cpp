#include "common/rng.hpp"

#include <cmath>
#include <numbers>

namespace xanadu::common {

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  if (weights.empty()) {
    throw std::invalid_argument{"Rng::weighted_index: empty weights"};
  }
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0) throw std::invalid_argument{"Rng::weighted_index: negative weight"};
    total += w;
  }
  if (total <= 0.0) {
    throw std::invalid_argument{"Rng::weighted_index: all weights zero"};
  }
  double target = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  return weights.size() - 1;  // Guard against floating-point underrun.
}

double Rng::exponential(double mean) {
  if (mean <= 0.0) throw std::invalid_argument{"Rng::exponential: mean <= 0"};
  // uniform() is in [0, 1); use 1 - u to avoid log(0).
  return -mean * std::log(1.0 - uniform());
}

double Rng::normal(double mean, double stddev) {
  if (stddev < 0.0) throw std::invalid_argument{"Rng::normal: stddev < 0"};
  const double u1 = 1.0 - uniform();
  const double u2 = uniform();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * std::numbers::pi * u2);
}

}  // namespace xanadu::common
