#pragma once

// Exponential moving average, the smoothing primitive behind every learned
// function-profile metric in Xanadu (cold-start time, warm-start runtime,
// worker startup time, invoke delay, branch probabilities -- paper Section
// 3.1: "we use exponential averaging for function related metrics ... This
// procedure lets the MLP algorithm adapt to changes in a workflow's path
// likelihood while being tolerant of outlier behaviour").

#include <cstddef>
#include <stdexcept>

namespace xanadu::common {

/// First-observation-seeded exponential moving average.
///
/// The first sample initialises the average exactly (no bias toward zero);
/// subsequent samples blend with weight `alpha`:
///     ema <- alpha * sample + (1 - alpha) * ema
class Ema {
 public:
  /// @param alpha smoothing factor in (0, 1].  Higher values adapt faster but
  ///        are more sensitive to outliers.
  explicit Ema(double alpha = 0.3) : alpha_(alpha) {
    if (alpha <= 0.0 || alpha > 1.0) {
      throw std::invalid_argument{"Ema: alpha must be in (0, 1]"};
    }
  }

  void observe(double sample) {
    if (count_ == 0) {
      value_ = sample;
    } else {
      value_ = alpha_ * sample + (1.0 - alpha_) * value_;
    }
    ++count_;
  }

  /// Current smoothed value; `fallback` if no samples have been observed.
  [[nodiscard]] double value_or(double fallback) const {
    return count_ == 0 ? fallback : value_;
  }

  [[nodiscard]] double value() const {
    if (count_ == 0) throw std::logic_error{"Ema::value: no samples"};
    return value_;
  }

  [[nodiscard]] bool empty() const { return count_ == 0; }
  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] double alpha() const { return alpha_; }

  void reset() {
    value_ = 0.0;
    count_ = 0;
  }

  /// Restores a persisted state (value paired with its observation count).
  /// Used when learned metrics are reloaded from the metadata store.
  void restore(double value, std::size_t count) {
    value_ = value;
    count_ = count;
  }

 private:
  double alpha_;
  double value_ = 0.0;
  std::size_t count_ = 0;
};

}  // namespace xanadu::common
