#pragma once

// Request-lifetime arena allocation.
//
// An Arena is a bump allocator over a chain of fixed-size blocks: allocate()
// is a pointer bump, deallocation is a no-op, and reset() returns the whole
// arena to empty in O(block count) while keeping the first block's memory for
// reuse.  The platform engine gives every RequestContext its own arena so the
// per-request transient state (node records, XOR weight scratch, speculation
// sets) is freed wholesale when the request completes -- no per-container
// heap churn on the million-request macro path, and recycled contexts reuse
// their warm block instead of reallocating.
//
// Allocations larger than the block size fall back to a dedicated oversized
// block (still owned by the arena, still freed on reset), so callers never
// need to size-check.
//
// Under AddressSanitizer the unused tail of each block and everything
// released by reset() is poisoned, so a use-after-reset through a stale
// pointer faults immediately instead of silently reading recycled memory
// (regression-tested in common_test.cpp under XANADU_SANITIZE).

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

#if defined(__has_feature)
#if __has_feature(address_sanitizer)
#define XANADU_ARENA_ASAN 1
#endif
#elif defined(__SANITIZE_ADDRESS__)
#define XANADU_ARENA_ASAN 1
#endif

namespace xanadu::common {

class Arena {
 public:
  /// `block_bytes` sizes every regular block; requests larger than this get
  /// their own oversized block.
  explicit Arena(std::size_t block_bytes = kDefaultBlockBytes);
  ~Arena();

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns `bytes` of storage aligned to `align` (a power of two).  Never
  /// returns nullptr; zero-byte requests yield a valid one-past pointer.
  void* allocate(std::size_t bytes, std::size_t align);

  /// Typed convenience: uninitialized storage for `count` objects of T.
  template <typename T>
  [[nodiscard]] T* allocate_for(std::size_t count) {
    return static_cast<T*>(allocate(count * sizeof(T), alignof(T)));
  }

  /// Releases every allocation at once.  The first regular block is kept
  /// (and its cursor rewound) so a recycled arena serves its next requests
  /// without touching the heap; later blocks and oversized blocks are freed.
  /// All previously returned pointers become invalid (and poisoned under
  /// ASan).
  void reset();

  // -- Introspection (tests, memory accounting) -----------------------------

  /// Bytes handed out since construction or the last reset (excludes
  /// alignment padding).
  [[nodiscard]] std::size_t bytes_allocated() const { return allocated_; }
  /// Regular blocks currently owned.
  [[nodiscard]] std::size_t block_count() const { return blocks_.size(); }
  /// Oversized (> block size) allocations currently live.
  [[nodiscard]] std::size_t oversized_count() const { return oversized_.size(); }
  [[nodiscard]] std::size_t block_bytes() const { return block_bytes_; }

  static constexpr std::size_t kDefaultBlockBytes = 16 * 1024;

 private:
  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };

  /// Appends a fresh block of at least `min_bytes` and makes it current.
  void push_block(std::size_t min_bytes);
  static void poison(const void* address, std::size_t size);
  static void unpoison(const void* address, std::size_t size);

  std::size_t block_bytes_;
  std::vector<Block> blocks_;
  std::vector<Block> oversized_;
  /// Bump cursor into blocks_.back(); meaningless when blocks_ is empty.
  std::size_t cursor_ = 0;
  std::size_t allocated_ = 0;
};

/// Minimal std::allocator adaptor over an Arena.  deallocate() is a no-op:
/// storage is reclaimed wholesale by Arena::reset().  Two allocators compare
/// equal iff they share the arena, so containers moved between allocators of
/// the same arena steal buffers instead of copying.
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;

  explicit ArenaAllocator(Arena* arena) noexcept : arena_(arena) {}

  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) noexcept  // NOLINT(google-explicit-constructor)
      : arena_(other.arena()) {}

  [[nodiscard]] T* allocate(std::size_t count) {
    return arena_->allocate_for<T>(count);
  }
  void deallocate(T* /*pointer*/, std::size_t /*count*/) noexcept {}

  [[nodiscard]] Arena* arena() const noexcept { return arena_; }

  friend bool operator==(const ArenaAllocator& a, const ArenaAllocator& b) {
    return a.arena_ == b.arena_;
  }
  friend bool operator!=(const ArenaAllocator& a, const ArenaAllocator& b) {
    return !(a == b);
  }

 private:
  Arena* arena_;
};

/// The common container shape for per-request transient state.
template <typename T>
using ArenaVector = std::vector<T, ArenaAllocator<T>>;

}  // namespace xanadu::common
