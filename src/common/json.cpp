#include "common/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace xanadu::common {

void JsonObject::set(std::string key, JsonValue value) {
  auto [it, inserted] = members_.insert_or_assign(key, std::move(value));
  (void)it;
  if (inserted) order_.push_back(std::move(key));
}

bool JsonObject::contains(std::string_view key) const {
  return members_.find(key) != members_.end();
}

const JsonValue* JsonObject::find(std::string_view key) const {
  auto it = members_.find(key);
  return it == members_.end() ? nullptr : &it->second;
}

const JsonValue& JsonObject::at(std::string_view key) const {
  auto it = members_.find(key);
  if (it == members_.end()) {
    throw std::out_of_range{"JsonObject::at: missing key '" + std::string{key} + "'"};
  }
  return it->second;
}

JsonValue& JsonValue::operator=(const JsonValue& other) {
  if (this == &other) return *this;
  kind_ = other.kind_;
  bool_ = other.bool_;
  number_ = other.number_;
  string_ = other.string_;
  array_ = other.array_ ? std::make_unique<JsonArray>(*other.array_) : nullptr;
  object_ = other.object_ ? std::make_unique<JsonObject>(*other.object_) : nullptr;
  return *this;
}

void JsonValue::require(Kind expected) const {
  if (kind_ != expected) {
    throw std::logic_error{"JsonValue: wrong kind accessed"};
  }
}

bool JsonValue::as_bool() const {
  require(Kind::Boolean);
  return bool_;
}

double JsonValue::as_number() const {
  require(Kind::Number);
  return number_;
}

const std::string& JsonValue::as_string() const {
  require(Kind::String);
  return string_;
}

const JsonArray& JsonValue::as_array() const {
  require(Kind::Array);
  return *array_;
}

const JsonObject& JsonValue::as_object() const {
  require(Kind::Object);
  return *object_;
}

namespace {

void dump_string(const std::string& s, std::ostringstream& out) {
  out << '"';
  for (char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      case '\r': out << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

void dump_value(const JsonValue& v, std::ostringstream& out) {
  switch (v.kind()) {
    case JsonValue::Kind::Null: out << "null"; break;
    case JsonValue::Kind::Boolean: out << (v.as_bool() ? "true" : "false"); break;
    case JsonValue::Kind::Number: {
      const double n = v.as_number();
      if (n == std::floor(n) && std::abs(n) < 1e15) {
        out << static_cast<long long>(n);
      } else {
        // Shortest representation that round-trips exactly.
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.17g", n);
        out << buf;
      }
      break;
    }
    case JsonValue::Kind::String: dump_string(v.as_string(), out); break;
    case JsonValue::Kind::Array: {
      out << '[';
      const auto& arr = v.as_array();
      for (std::size_t i = 0; i < arr.size(); ++i) {
        if (i) out << ',';
        dump_value(arr[i], out);
      }
      out << ']';
      break;
    }
    case JsonValue::Kind::Object: {
      out << '{';
      const auto& obj = v.as_object();
      bool first = true;
      for (const auto& key : obj.keys()) {
        if (!first) out << ',';
        first = false;
        dump_string(key, out);
        out << ':';
        dump_value(obj.at(key), out);
      }
      out << '}';
      break;
    }
  }
}

/// Recursive-descent JSON parser with line/column error reporting.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> parse() {
    skip_ws();
    JsonValue value;
    if (!parse_value(value)) return make_error(error_);
    skip_ws();
    if (pos_ != text_.size()) {
      return make_error(at() + "trailing characters after JSON document");
    }
    return value;
  }

 private:
  [[nodiscard]] std::string at() const {
    std::size_t line = 1, col = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    std::ostringstream out;
    out << "json:" << line << ':' << col << ": ";
    return out.str();
  }

  bool fail(std::string message) {
    error_ = at() + std::move(message);
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  [[nodiscard]] bool eof() const { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const { return text_[pos_]; }

  bool consume(char expected) {
    if (eof() || text_[pos_] != expected) return false;
    ++pos_;
    return true;
  }

  bool parse_value(JsonValue& out) {
    if (eof()) return fail("unexpected end of input");
    switch (peek()) {
      case '{': return parse_object(out);
      case '[': return parse_array(out);
      case '"': return parse_string_value(out);
      case 't':
      case 'f': return parse_bool(out);
      case 'n': return parse_null(out);
      default: return parse_number(out);
    }
  }

  bool parse_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) {
      return fail("invalid literal");
    }
    pos_ += literal.size();
    return true;
  }

  bool parse_null(JsonValue& out) {
    if (!parse_literal("null")) return false;
    out = JsonValue{};
    return true;
  }

  bool parse_bool(JsonValue& out) {
    if (peek() == 't') {
      if (!parse_literal("true")) return false;
      out = JsonValue{true};
    } else {
      if (!parse_literal("false")) return false;
      out = JsonValue{false};
    }
    return true;
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    if (!eof() && (peek() == '-' || peek() == '+')) ++pos_;
    while (!eof() && (std::isdigit(static_cast<unsigned char>(peek())) ||
                      peek() == '.' || peek() == 'e' || peek() == 'E' ||
                      peek() == '-' || peek() == '+')) {
      ++pos_;
    }
    if (pos_ == start) return fail("expected a value");
    double value = 0.0;
    const char* first = text_.data() + start;
    const char* last = text_.data() + pos_;
    auto [ptr, ec] = std::from_chars(first, last, value);
    if (ec != std::errc{} || ptr != last) {
      pos_ = start;
      return fail("malformed number");
    }
    out = JsonValue{value};
    return true;
  }

  bool parse_string_raw(std::string& out) {
    if (!consume('"')) return fail("expected '\"'");
    out.clear();
    while (true) {
      if (eof()) return fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (eof()) return fail("unterminated escape");
        char esc = text_[pos_++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return fail("invalid \\u escape");
            }
            // Encode as UTF-8 (basic multilingual plane only; surrogate
            // pairs are not needed by the state language).
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default: return fail("unknown escape sequence");
        }
      } else {
        out += c;
      }
    }
  }

  bool parse_string_value(JsonValue& out) {
    std::string s;
    if (!parse_string_raw(s)) return false;
    out = JsonValue{std::move(s)};
    return true;
  }

  bool parse_array(JsonValue& out) {
    consume('[');
    JsonArray arr;
    skip_ws();
    if (consume(']')) {
      out = JsonValue{std::move(arr)};
      return true;
    }
    while (true) {
      skip_ws();
      JsonValue element;
      if (!parse_value(element)) return false;
      arr.push_back(std::move(element));
      skip_ws();
      if (consume(']')) break;
      if (!consume(',')) return fail("expected ',' or ']' in array");
    }
    out = JsonValue{std::move(arr)};
    return true;
  }

  bool parse_object(JsonValue& out) {
    consume('{');
    JsonObject obj;
    skip_ws();
    if (consume('}')) {
      out = JsonValue{std::move(obj)};
      return true;
    }
    while (true) {
      skip_ws();
      std::string key;
      if (!parse_string_raw(key)) return false;
      skip_ws();
      if (!consume(':')) return fail("expected ':' after object key");
      skip_ws();
      JsonValue value;
      if (!parse_value(value)) return false;
      // Duplicate keys are rejected rather than last-wins overwritten:
      // silently dropping an earlier member turns malformed documents
      // (hand-edited metadata, corrupted dumps) into plausible-looking
      // state, and dump() never emits duplicates, so round-trips lose
      // nothing.
      if (obj.contains(key)) {
        return fail("duplicate object key \"" + key + "\"");
      }
      obj.set(std::move(key), std::move(value));
      skip_ws();
      if (consume('}')) break;
      if (!consume(',')) return fail("expected ',' or '}' in object");
    }
    out = JsonValue{std::move(obj)};
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
};

}  // namespace

std::string JsonValue::dump() const {
  std::ostringstream out;
  dump_value(*this, out);
  return out.str();
}

Result<JsonValue> parse_json(std::string_view text) {
  return Parser{text}.parse();
}

}  // namespace xanadu::common
