#pragma once

// A small, dependency-free JSON reader used to parse Xanadu's explicit-chain
// state-definition language (paper Listing 1).  Supports the full JSON value
// grammar (objects, arrays, strings with escapes, numbers, booleans, null).
// Object member order is preserved, which the state-language translator
// relies on for stable diagnostics.

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.hpp"

namespace xanadu::common {

class JsonValue;

/// Ordered object representation: lookup map plus insertion-ordered keys.
class JsonObject {
 public:
  /// Inserts or overwrites a member.
  void set(std::string key, JsonValue value);

  [[nodiscard]] bool contains(std::string_view key) const;
  /// Returns nullptr when the key is absent.
  [[nodiscard]] const JsonValue* find(std::string_view key) const;
  /// Throws std::out_of_range when the key is absent.
  [[nodiscard]] const JsonValue& at(std::string_view key) const;

  [[nodiscard]] const std::vector<std::string>& keys() const { return order_; }
  [[nodiscard]] std::size_t size() const { return order_.size(); }
  [[nodiscard]] bool empty() const { return order_.empty(); }

 private:
  std::map<std::string, JsonValue, std::less<>> members_;
  std::vector<std::string> order_;
};

using JsonArray = std::vector<JsonValue>;

/// Variant JSON value.  Implemented with an explicit kind tag plus storage
/// unique_ptrs so that the recursive type stays movable and compact.
class JsonValue {
 public:
  enum class Kind { Null, Boolean, Number, String, Array, Object };

  JsonValue() : kind_(Kind::Null) {}
  JsonValue(bool b) : kind_(Kind::Boolean), bool_(b) {}          // NOLINT
  JsonValue(double n) : kind_(Kind::Number), number_(n) {}       // NOLINT
  JsonValue(int n) : JsonValue(static_cast<double>(n)) {}        // NOLINT
  JsonValue(std::string s)                                       // NOLINT
      : kind_(Kind::String), string_(std::move(s)) {}
  JsonValue(const char* s) : JsonValue(std::string{s}) {}        // NOLINT
  JsonValue(JsonArray a)                                         // NOLINT
      : kind_(Kind::Array), array_(std::make_unique<JsonArray>(std::move(a))) {}
  JsonValue(JsonObject o)                                        // NOLINT
      : kind_(Kind::Object),
        object_(std::make_unique<JsonObject>(std::move(o))) {}

  JsonValue(JsonValue&&) noexcept = default;
  JsonValue& operator=(JsonValue&&) noexcept = default;
  JsonValue(const JsonValue& other) { *this = other; }
  JsonValue& operator=(const JsonValue& other);

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::Null; }
  [[nodiscard]] bool is_bool() const { return kind_ == Kind::Boolean; }
  [[nodiscard]] bool is_number() const { return kind_ == Kind::Number; }
  [[nodiscard]] bool is_string() const { return kind_ == Kind::String; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::Array; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::Object; }

  // Accessors throw std::logic_error when the kind does not match.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const JsonArray& as_array() const;
  [[nodiscard]] const JsonObject& as_object() const;

  /// Serialises back to compact JSON text (useful in tests and debugging).
  [[nodiscard]] std::string dump() const;

 private:
  void require(Kind expected) const;

  Kind kind_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::unique_ptr<JsonArray> array_;
  std::unique_ptr<JsonObject> object_;
};

/// Parses `text` as a single JSON document.  Trailing non-whitespace is an
/// error.  Returns a descriptive Error (with line/column) on malformed input.
[[nodiscard]] Result<JsonValue> parse_json(std::string_view text);

}  // namespace xanadu::common
