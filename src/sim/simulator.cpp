#include "sim/simulator.hpp"

#include <utility>

#include "sim/audit.hpp"

namespace xanadu::sim {

common::EventId Simulator::schedule_at(TimePoint when, EventFn callback) {
  if (when < now_) {
    throw std::invalid_argument{"Simulator::schedule_at: time is in the past"};
  }
  if (!callback) {
    throw std::invalid_argument{"Simulator::schedule_at: empty callback"};
  }
  const std::uint32_t slot = acquire_slot();
  Slot& s = slab_[slot];
  s.callback = std::move(callback);
  heap_push(HeapEntry{when, next_seq_++, slot, s.generation});
  ++live_;
  return pack_id(slot, s.generation);
}

common::EventId Simulator::schedule_after(Duration delay, EventFn callback) {
  return schedule_at(now_ + delay.clamped_non_negative(), std::move(callback));
}

bool Simulator::cancel(common::EventId id) {
  if (!id.valid()) return false;
  const auto slot = static_cast<std::uint32_t>(id.value() & 0xffffffffu);
  const auto generation = static_cast<std::uint32_t>(id.value() >> 32);
  if (slot >= slab_.size() || slab_[slot].generation != generation) {
    return false;  // Already fired, already cancelled, or never existed.
  }
  // The callback (and everything it captured) dies now; the heap keeps a
  // generation-mismatched tombstone that pop/compact will discard.
  release_slot(slot);
  --live_;
  ++tombstones_;
  if (tombstones_ * 2 > heap_.size()) compact();
  return true;
}

std::uint32_t Simulator::acquire_slot() {
  if (free_head_ != kNilSlot) {
    const std::uint32_t slot = free_head_;
    free_head_ = slab_[slot].next_free;
    slab_[slot].next_free = kNilSlot;
    return slot;
  }
  XANADU_INVARIANT(slab_.size() < kNilSlot, "event slab exhausted 2^32 slots");
  slab_.emplace_back();
  return static_cast<std::uint32_t>(slab_.size() - 1);
}

void Simulator::release_slot(std::uint32_t slot) {
  Slot& s = slab_[slot];
  s.callback.reset();
  ++s.generation;
  s.next_free = free_head_;
  free_head_ = slot;
}

void Simulator::heap_push(const HeapEntry& entry) {
  heap_.push_back(entry);
  sift_up(heap_.size() - 1);
}

void Simulator::heap_pop_top() {
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
}

void Simulator::sift_up(std::size_t index) {
  while (index > 0) {
    const std::size_t parent = (index - 1) / kHeapArity;
    if (!fires_before(heap_[index], heap_[parent])) break;
    std::swap(heap_[index], heap_[parent]);
    index = parent;
  }
}

void Simulator::sift_down(std::size_t index) {
  const std::size_t size = heap_.size();
  for (;;) {
    const std::size_t first_child = index * kHeapArity + 1;
    if (first_child >= size) break;
    const std::size_t last_child = std::min(first_child + kHeapArity, size);
    std::size_t best = first_child;
    for (std::size_t child = first_child + 1; child < last_child; ++child) {
      if (fires_before(heap_[child], heap_[best])) best = child;
    }
    if (!fires_before(heap_[best], heap_[index])) break;
    std::swap(heap_[index], heap_[best]);
    index = best;
  }
}

void Simulator::compact() {
  // (when, seq) is a total order, so rebuilding the heap cannot change the
  // pop sequence -- only drop entries that would have been skipped anyway.
  std::size_t kept = 0;
  for (const HeapEntry& entry : heap_) {
    if (slab_[entry.slot].generation == entry.generation) {
      heap_[kept++] = entry;
    }
  }
  heap_.resize(kept);
  tombstones_ = 0;
  if (heap_.size() > 1) {
    for (std::size_t i = (heap_.size() - 2) / kHeapArity + 1; i-- > 0;) {
      sift_down(i);
    }
  }
}

std::size_t Simulator::drain(bool bounded, TimePoint deadline) {
  std::size_t fired_now = 0;
  while (!heap_.empty()) {
    const HeapEntry top = heap_.front();
    Slot& slot = slab_[top.slot];
    if (slot.generation != top.generation) {
      // Tombstone of a cancelled event; discard and keep looking.
      heap_pop_top();
      --tombstones_;
      continue;
    }
    if (bounded && top.when > deadline) break;
    // Move the callback out and free the slot *before* invoking: the
    // callback may schedule new events (reusing this very slot) or grow the
    // slab, so no reference into slab_/heap_ may survive the call.
    EventFn callback = std::move(slot.callback);
    release_slot(top.slot);
    --live_;
    heap_pop_top();
    // Event-causality audit: the virtual clock is monotone (a popped event
    // can never fire before an already-fired one), and a live generation
    // match implies the callback is present.
    XANADU_INVARIANT(top.when >= now_,
                     "event timestamp regressed behind the virtual clock");
    XANADU_INVARIANT(static_cast<bool>(callback),
                     "fired an event that was not live");
    now_ = top.when;
    callback();
    ++fired_;
    ++fired_now;
  }
  if (bounded && now_ < deadline) now_ = deadline;
  return fired_now;
}

std::size_t Simulator::run() { return drain(/*bounded=*/false, TimePoint{}); }

std::size_t Simulator::run_until(TimePoint deadline) {
  if (deadline < now_) {
    throw std::invalid_argument{"Simulator::run_until: deadline is in the past"};
  }
  return drain(/*bounded=*/true, deadline);
}

}  // namespace xanadu::sim
