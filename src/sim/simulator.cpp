#include "sim/simulator.hpp"

#include <utility>

#include "sim/audit.hpp"

namespace xanadu::sim {

common::EventId Simulator::schedule_at(TimePoint when, EventFn callback,
                                       const char* label) {
  if (when < now_) {
    throw std::invalid_argument{"Simulator::schedule_at: time is in the past"};
  }
  if (!callback) {
    throw std::invalid_argument{"Simulator::schedule_at: empty callback"};
  }
  const std::uint32_t slot = acquire_slot();
  Slot& s = slab_[slot];
  s.callback = std::move(callback);
  s.label = label;
  heap_push(HeapEntry{when, next_seq_++, slot, s.generation});
  ++live_;
  return pack_id(slot, s.generation);
}

common::EventId Simulator::schedule_after(Duration delay, EventFn callback,
                                          const char* label) {
  return schedule_at(now_ + delay.clamped_non_negative(), std::move(callback),
                     label);
}

bool Simulator::cancel(common::EventId id) {
  if (!id.valid()) return false;
  const auto slot = static_cast<std::uint32_t>(id.value() & 0xffffffffu);
  const auto generation = static_cast<std::uint32_t>(id.value() >> 32);
  if (slot >= slab_.size() || slab_[slot].generation != generation) {
    return false;  // Already fired, already cancelled, or never existed.
  }
  // The callback (and everything it captured) dies now; the heap keeps a
  // generation-mismatched tombstone that pop/compact will discard.
  release_slot(slot);
  --live_;
  ++tombstones_;
  if (tombstones_ * 2 > heap_.size()) compact();
  return true;
}

std::uint32_t Simulator::acquire_slot() {
  if (free_head_ != kNilSlot) {
    const std::uint32_t slot = free_head_;
    free_head_ = slab_[slot].next_free;
    slab_[slot].next_free = kNilSlot;
    return slot;
  }
  XANADU_INVARIANT(slab_.size() < kNilSlot, "event slab exhausted 2^32 slots");
  slab_.emplace_back();
  return static_cast<std::uint32_t>(slab_.size() - 1);
}

void Simulator::release_slot(std::uint32_t slot) {
  Slot& s = slab_[slot];
  s.callback.reset();
  s.label = nullptr;
  ++s.generation;
  s.next_free = free_head_;
  free_head_ = slot;
}

void Simulator::heap_push(const HeapEntry& entry) {
  heap_.push_back(entry);
  sift_up(heap_.size() - 1);
}

void Simulator::heap_pop_top() {
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
}

void Simulator::sift_up(std::size_t index) {
  while (index > 0) {
    const std::size_t parent = (index - 1) / kHeapArity;
    if (!fires_before(heap_[index], heap_[parent])) break;
    std::swap(heap_[index], heap_[parent]);
    index = parent;
  }
}

void Simulator::sift_down(std::size_t index) {
  const std::size_t size = heap_.size();
  for (;;) {
    const std::size_t first_child = index * kHeapArity + 1;
    if (first_child >= size) break;
    const std::size_t last_child = std::min(first_child + kHeapArity, size);
    std::size_t best = first_child;
    for (std::size_t child = first_child + 1; child < last_child; ++child) {
      if (fires_before(heap_[child], heap_[best])) best = child;
    }
    if (!fires_before(heap_[best], heap_[index])) break;
    std::swap(heap_[index], heap_[best]);
    index = best;
  }
}

void Simulator::compact() {
  // (when, seq) is a total order, so rebuilding the heap cannot change the
  // pop sequence -- only drop entries that would have been skipped anyway.
  std::size_t kept = 0;
  for (const HeapEntry& entry : heap_) {
    if (slab_[entry.slot].generation == entry.generation) {
      heap_[kept++] = entry;
    }
  }
  heap_.resize(kept);
  tombstones_ = 0;
  if (heap_.size() > 1) {
    for (std::size_t i = (heap_.size() - 2) / kHeapArity + 1; i-- > 0;) {
      sift_down(i);
    }
  }
}

void Simulator::fire_entry(const HeapEntry& entry) {
  // Move the callback out and free the slot *before* invoking: the
  // callback may schedule new events (reusing this very slot) or grow the
  // slab, so no reference into slab_/heap_ may survive the call.
  EventFn callback = std::move(slab_[entry.slot].callback);
  release_slot(entry.slot);
  --live_;
  // Event-causality audit: the virtual clock is monotone (a popped event
  // can never fire before an already-fired one), and a live generation
  // match implies the callback is present.
  XANADU_INVARIANT(entry.when >= now_,
                   "event timestamp regressed behind the virtual clock");
  XANADU_INVARIANT(static_cast<bool>(callback),
                   "fired an event that was not live");
  now_ = entry.when;
  callback();
  ++fired_;
}

std::size_t Simulator::drain(bool bounded, TimePoint deadline) {
  if (tie_recorder_ != nullptr || tie_permutation_ != nullptr) {
    return drain_grouped(bounded, deadline);
  }
  std::size_t fired_now = 0;
  while (!heap_.empty()) {
    const HeapEntry top = heap_.front();
    if (slab_[top.slot].generation != top.generation) {
      // Tombstone of a cancelled event; discard and keep looking.
      heap_pop_top();
      --tombstones_;
      continue;
    }
    if (bounded && top.when > deadline) break;
    heap_pop_top();
    fire_entry(top);
    ++fired_now;
  }
  if (bounded && now_ < deadline) now_ = deadline;
  return fired_now;
}

std::size_t Simulator::drain_grouped(bool bounded, TimePoint deadline) {
  // Grouped drain: collect every ready event sharing the front timestamp,
  // then fire the batch.  Firing in ascending-seq order (the default)
  // reproduces the normal drain byte-for-byte: collected entries precede by
  // (when, seq) anything still in the heap, and events a batch member
  // schedules at the same timestamp carry larger seqs, so they form the
  // *next* batch exactly as they would have popped after the batch in the
  // ungrouped loop.
  std::size_t fired_now = 0;
  std::vector<HeapEntry> group;
  std::vector<std::uint32_t> order;
  while (!heap_.empty()) {
    const HeapEntry top = heap_.front();
    if (slab_[top.slot].generation != top.generation) {
      heap_pop_top();
      --tombstones_;
      continue;
    }
    if (bounded && top.when > deadline) break;

    group.clear();
    while (!heap_.empty()) {
      const HeapEntry entry = heap_.front();
      if (slab_[entry.slot].generation != entry.generation) {
        heap_pop_top();
        --tombstones_;
        continue;
      }
      if (entry.when != top.when) break;
      group.push_back(entry);  // Popping yields ascending seq.
      heap_pop_top();
    }

    const bool is_tie = group.size() > 1;
    const std::size_t group_index = tie_group_counter_;
    if (is_tie) ++tie_group_counter_;

    // Record labels before firing: firing releases the slots.
    TieGroup* record = nullptr;
    if (is_tie && tie_recorder_ != nullptr) {
      TieGroup tie;
      tie.index = group_index;
      tie.when = top.when;
      tie.events.reserve(group.size());
      for (const HeapEntry& entry : group) {
        const char* label = slab_[entry.slot].label;
        tie.events.push_back(
            TieEvent{entry.seq, label != nullptr ? label : ""});
      }
      tie_recorder_->groups.push_back(std::move(tie));
      record = &tie_recorder_->groups.back();
    }

    order.clear();
    for (std::uint32_t i = 0; i < group.size(); ++i) order.push_back(i);
    if (is_tie && tie_permutation_ != nullptr &&
        tie_permutation_->group_index == group_index &&
        tie_permutation_->order.size() == group.size()) {
      order = tie_permutation_->order;
    }

    for (const std::uint32_t position : order) {
      XANADU_INVARIANT(position < group.size(),
                       "tie permutation position out of range");
      if (position >= group.size()) continue;
      const HeapEntry& entry = group[position];
      if (slab_[entry.slot].generation != entry.generation) {
        // Cancelled by an earlier member of this very batch; its heap entry
        // is already extracted, so no tombstone bookkeeping applies.
        continue;
      }
      fire_entry(entry);
      ++fired_now;
    }

    if (record != nullptr && probes_ != nullptr) {
      // `record` stays valid: firing cannot re-enter drain (the simulator
      // is single-threaded and run() is not re-entrant), so no group was
      // appended since ours.
      record->probes_after = probes_->sample();
    }
  }
  if (bounded && now_ < deadline) now_ = deadline;
  return fired_now;
}

std::optional<TimePoint> Simulator::peek_next_time() {
  while (!heap_.empty()) {
    const HeapEntry& top = heap_.front();
    if (slab_[top.slot].generation != top.generation) {
      heap_pop_top();
      --tombstones_;
      continue;
    }
    return top.when;
  }
  return std::nullopt;
}

std::size_t Simulator::run_before(TimePoint bound) {
  std::size_t fired_now = 0;
  while (!heap_.empty()) {
    const HeapEntry top = heap_.front();
    if (slab_[top.slot].generation != top.generation) {
      heap_pop_top();
      --tombstones_;
      continue;
    }
    if (top.when >= bound) break;
    heap_pop_top();
    fire_entry(top);
    ++fired_now;
  }
  return fired_now;
}

std::size_t Simulator::run() { return drain(/*bounded=*/false, TimePoint{}); }

std::size_t Simulator::run_until(TimePoint deadline) {
  if (deadline < now_) {
    throw std::invalid_argument{"Simulator::run_until: deadline is in the past"};
  }
  return drain(/*bounded=*/true, deadline);
}

}  // namespace xanadu::sim
