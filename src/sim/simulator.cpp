#include "sim/simulator.hpp"

#include <utility>

#include "sim/audit.hpp"

namespace xanadu::sim {

common::EventId Simulator::schedule_at(TimePoint when, EventCallback callback) {
  if (when < now_) {
    throw std::invalid_argument{"Simulator::schedule_at: time is in the past"};
  }
  if (!callback) {
    throw std::invalid_argument{"Simulator::schedule_at: empty callback"};
  }
  const common::EventId id = event_ids_.next();
  queue_.push(Entry{when, next_seq_++, id, std::move(callback)});
  live_.insert(id);
  return id;
}

common::EventId Simulator::schedule_after(Duration delay, EventCallback callback) {
  return schedule_at(now_ + delay.clamped_non_negative(), std::move(callback));
}

bool Simulator::cancel(common::EventId id) {
  if (!id.valid()) return false;
  // Only events that are still scheduled can be cancelled; the queue entry
  // is lazily skipped when popped.
  if (live_.erase(id) == 0) return false;
  cancelled_.insert(id);
  return true;
}

std::size_t Simulator::pending() const { return live_.size(); }

std::size_t Simulator::drain(bool bounded, TimePoint deadline) {
  std::size_t fired_now = 0;
  while (!queue_.empty()) {
    const Entry& top = queue_.top();
    if (bounded && top.when > deadline) break;
    if (cancelled_.erase(top.id) > 0) {
      queue_.pop();
      continue;
    }
    // Copy out before popping: the callback may schedule new events, which
    // can reallocate the underlying heap storage.
    Entry entry{top.when, top.seq, top.id, std::move(const_cast<Entry&>(top).callback)};
    queue_.pop();
    // Event-causality audit: the virtual clock is monotone (a popped event
    // can never fire before an already-fired one), every fired event was
    // still registered live, and tie-broken peers fire in scheduling order.
    XANADU_INVARIANT(entry.when >= now_,
                     "event timestamp regressed behind the virtual clock");
    XANADU_INVARIANT(live_.erase(entry.id) == 1,
                     "fired an event that was not live");
    now_ = entry.when;
    entry.callback();
    ++fired_;
    ++fired_now;
  }
  if (bounded && now_ < deadline) now_ = deadline;
  return fired_now;
}

std::size_t Simulator::run() { return drain(/*bounded=*/false, TimePoint{}); }

std::size_t Simulator::run_until(TimePoint deadline) {
  if (deadline < now_) {
    throw std::invalid_argument{"Simulator::run_until: deadline is in the past"};
  }
  return drain(/*bounded=*/true, deadline);
}

}  // namespace xanadu::sim
