#include "sim/fault_plan.hpp"

#include <stdexcept>
#include <string>

namespace xanadu::sim {

namespace {

void require_rate(double rate, const char* name) {
  if (rate < 0.0 || rate > 1.0) {
    throw std::invalid_argument{std::string{"FaultPlanOptions: "} + name +
                                " must be in [0, 1]"};
  }
}

}  // namespace

bool FaultPlanOptions::any_enabled() const {
  return bus_drop_rate > 0.0 || bus_duplicate_rate > 0.0 ||
         bus_delay_rate > 0.0 || provision_failure_rate > 0.0 ||
         worker_crash_rate > 0.0 || host_outage_rate_per_hour > 0.0 ||
         straggler_rate > 0.0;
}

void FaultPlanOptions::validate() const {
  require_rate(bus_drop_rate, "bus_drop_rate");
  require_rate(bus_duplicate_rate, "bus_duplicate_rate");
  require_rate(bus_delay_rate, "bus_delay_rate");
  if (bus_drop_rate + bus_duplicate_rate + bus_delay_rate > 1.0) {
    throw std::invalid_argument{
        "FaultPlanOptions: bus fault rates must sum to <= 1"};
  }
  require_rate(provision_failure_rate, "provision_failure_rate");
  require_rate(worker_crash_rate, "worker_crash_rate");
  require_rate(straggler_rate, "straggler_rate");
  if (host_outage_rate_per_hour < 0.0) {
    throw std::invalid_argument{
        "FaultPlanOptions: host_outage_rate_per_hour must be >= 0"};
  }
  if (straggler_multiplier < 1.0) {
    throw std::invalid_argument{
        "FaultPlanOptions: straggler_multiplier must be >= 1"};
  }
  if (bus_extra_delay < Duration::zero() ||
      host_downtime < Duration::zero()) {
    throw std::invalid_argument{"FaultPlanOptions: negative duration"};
  }
}

FaultPlan::FaultPlan(FaultPlanOptions options, common::Rng rng)
    : options_(options),
      active_(options.any_enabled()),
      // Fixed fork order -- reordering these lines would silently change
      // every faulted digest.
      bus_rng_(rng.fork()),
      provision_rng_(rng.fork()),
      straggler_rng_(rng.fork()),
      crash_rng_(rng.fork()),
      outage_rng_(rng.fork()) {
  options_.validate();
}

FaultPlan::BusFault FaultPlan::next_bus_fault() {
  if (!active_) return BusFault::None;
  // One uniform draw per message regardless of the rates, so scaling one
  // rate keeps lower-rate fault sets as subsets of higher-rate ones (the
  // coupling the monotone-degradation property test leans on).
  // Per-class member streams (here and below) are deliberate shared draws:
  // each fault class consults its stream in a fixed serial order, and the
  // race sweep runs fault scenarios.  flow-lint annotations mark the accepted
  // tie-order hazard instead of hiding it.
  const double u = bus_rng_.uniform();  // flow-lint:allow(shared-rng-draw)
  if (u < options_.bus_drop_rate) {
    ++counters_.bus_drops;
    return BusFault::Drop;
  }
  if (u < options_.bus_drop_rate + options_.bus_duplicate_rate) {
    ++counters_.bus_duplicates;
    return BusFault::Duplicate;
  }
  if (u < options_.bus_drop_rate + options_.bus_duplicate_rate +
              options_.bus_delay_rate) {
    ++counters_.bus_delays;
    return BusFault::Delay;
  }
  return BusFault::None;
}

bool FaultPlan::next_provision_failure() {
  if (!active_) return false;
  const bool fail =  // flow-lint:allow(shared-rng-draw)
      provision_rng_.uniform() < options_.provision_failure_rate;
  if (fail) ++counters_.provision_failures;
  return fail;
}

double FaultPlan::next_provision_multiplier() {
  if (!active_) return 1.0;
  if (straggler_rng_.uniform() < options_.straggler_rate) {  // flow-lint:allow(shared-rng-draw)
    ++counters_.stragglers;
    return options_.straggler_multiplier;
  }
  return 1.0;
}

bool FaultPlan::next_worker_crash() {
  if (!active_) return false;
  const bool crash =  // flow-lint:allow(shared-rng-draw)
      crash_rng_.uniform() < options_.worker_crash_rate;
  if (crash) ++counters_.worker_crashes;
  return crash;
}

double FaultPlan::next_crash_point() {
  // Strictly inside the execution interval: never exactly at start or end,
  // so the crash event unambiguously precedes the completion event.
  return 0.05 + 0.9 * crash_rng_.uniform();  // flow-lint:allow(shared-rng-draw)
}

std::pair<Duration, std::size_t> FaultPlan::next_host_outage(
    std::size_t host_count) {
  if (host_count == 0) {
    throw std::invalid_argument{"FaultPlan::next_host_outage: no hosts"};
  }
  const double mean_seconds = 3600.0 / options_.host_outage_rate_per_hour;
  const Duration delay = Duration::from_seconds(
      outage_rng_.exponential(mean_seconds));  // flow-lint:allow(shared-rng-draw)
  const std::size_t host = static_cast<std::size_t>(
      outage_rng_.uniform_int(host_count));  // flow-lint:allow(shared-rng-draw)
  return {delay, host};
}

}  // namespace xanadu::sim
