#pragma once

// Deterministic discrete-event simulator.
//
// The simulator owns a virtual clock and an event queue.  Components schedule
// callbacks at absolute or relative virtual times; run() drains the queue in
// time order, breaking ties by scheduling sequence so that identical inputs
// always produce identical event interleavings.
//
// Events can be cancelled by id -- the JIT deployment planner relies on this
// to abort planned speculative provisioning when a prediction miss is
// detected (paper Section 3.2.2: "JIT deployment stops all planned proactive
// provisioning as soon as it detects a prediction miss").

#include <cstdint>
#include <functional>
#include <queue>
#include <stdexcept>
#include <unordered_set>
#include <vector>

#include "common/ids.hpp"
#include "sim/time.hpp"

namespace xanadu::sim {

using EventCallback = std::function<void()>;

class Simulator {
 public:
  Simulator() = default;

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current virtual time.  Monotonically non-decreasing across run calls.
  [[nodiscard]] TimePoint now() const { return now_; }

  /// Schedules `callback` at absolute time `when`.  `when` must not be in
  /// the past.  Returns an id usable with cancel().
  common::EventId schedule_at(TimePoint when, EventCallback callback);

  /// Schedules `callback` after `delay` (clamped to be non-negative).
  common::EventId schedule_after(Duration delay, EventCallback callback);

  /// Cancels a pending event.  Returns true if the event existed and had not
  /// yet fired; cancelling an already-fired, already-cancelled or unknown
  /// event returns false and has no effect.
  bool cancel(common::EventId id);

  /// Runs until the queue is empty.  Returns the number of events fired.
  std::size_t run();

  /// Runs until the queue is empty or virtual time would pass `deadline`.
  /// Events at exactly `deadline` are fired.  The clock is advanced to
  /// `deadline` on return.
  std::size_t run_until(TimePoint deadline);

  /// Number of events currently pending (cancelled events are excluded).
  [[nodiscard]] std::size_t pending() const;

  /// Total number of events fired over the simulator's lifetime.
  [[nodiscard]] std::uint64_t events_fired() const { return fired_; }

 private:
  struct Entry {
    TimePoint when;
    std::uint64_t seq;  // Tie-break: FIFO among same-time events.
    common::EventId id;
    EventCallback callback;
  };

  struct EntryLater {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  /// Pops ready events and fires them; shared by run/run_until.
  std::size_t drain(bool bounded, TimePoint deadline);

  TimePoint now_{0};
  std::uint64_t next_seq_ = 0;
  std::uint64_t fired_ = 0;
  common::IdGenerator<common::EventId> event_ids_;
  std::priority_queue<Entry, std::vector<Entry>, EntryLater> queue_;
  /// Events scheduled but not yet fired or cancelled.
  std::unordered_set<common::EventId> live_;
  /// Cancelled events whose queue entries have not been popped yet.
  std::unordered_set<common::EventId> cancelled_;
};

}  // namespace xanadu::sim
