#pragma once

// Deterministic discrete-event simulator.
//
// The simulator owns a virtual clock and an event queue.  Components schedule
// callbacks at absolute or relative virtual times; run() drains the queue in
// time order, breaking ties by scheduling sequence so that identical inputs
// always produce identical event interleavings.
//
// Events can be cancelled by id -- the JIT deployment planner relies on this
// to abort planned speculative provisioning when a prediction miss is
// detected (paper Section 3.2.2: "JIT deployment stops all planned proactive
// provisioning as soon as it detects a prediction miss").
//
// Storage layout (the replay hot path, see ARCHITECTURE.md "Event-queue
// design"):
//
//   * Callbacks live in a slab of recyclable slots; each slot carries a
//     generation counter that is bumped every time the slot is released
//     (fired OR cancelled).  An EventId packs (slot, generation), so
//     cancel() is an O(1) generation compare-and-bump -- no hash sets --
//     and the captured state is freed eagerly at cancel time instead of
//     lingering until the queue entry surfaces.
//   * The ready queue is a 4-ary min-heap of 24-byte POD entries
//     (when, seq, slot, generation) ordered by (when, seq).  Since that
//     order is total, heap shape never influences pop order, which keeps
//     seed-replay digests bit-identical across queue implementations.
//   * A cancelled event leaves a tombstone entry in the heap; tombstones
//     are skipped on pop and compacted in bulk once they outnumber half the
//     heap, so a cancel-heavy speculation workload cannot grow the queue
//     without bound.
//
// std::priority_queue is deliberately absent (and banned by the determinism
// lint in this directory): it hides the underlying vector, which forbids
// tombstone compaction and forces a const_cast to move callbacks out of
// top().

#include <cstdint>
#include <functional>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/ids.hpp"
#include "sim/event_fn.hpp"
#include "sim/probe.hpp"
#include "sim/time.hpp"

namespace xanadu::sim {

/// Compatibility alias: a few call sites (and tests) still pass
/// std::function; EventFn absorbs it (an empty one stays empty).
using EventCallback = std::function<void()>;

// -- Race-check hooks --------------------------------------------------------
//
// Same-virtual-timestamp events are ordered by scheduling sequence, which
// makes replay deterministic but does NOT prove the order is harmless: a tie
// whose pop order silently changes engine state is a latent race.  The
// simulator can therefore run in a *grouped* drain mode (enabled by
// attaching a TieRecorder and/or TiePermutation) that collects every ready
// event sharing one timestamp before firing, records non-singleton groups,
// and optionally fires one designated group in a permuted order.  Firing a
// group in ascending-seq order is byte-identical to the normal drain, so
// enabling recording alone never perturbs a run.  The replay harness on top
// lives in sim/race_detector.hpp.

/// One event of a same-timestamp tie group, in baseline (seq) order.
struct TieEvent {
  std::uint64_t seq = 0;
  /// Scheduling-site label ("warm_pool.keep_alive"), or "" when unlabeled.
  std::string label;
};

/// One observed non-singleton tie group.
struct TieGroup {
  /// 0-based index among non-singleton groups, in drain order.  Stable
  /// between a baseline run and a replay up to the first permuted group.
  std::size_t index = 0;
  TimePoint when;
  std::vector<TieEvent> events;
  /// Probe snapshot taken right after the group fired (empty when no
  /// ProbeRegistry is attached); used to localise a divergence.
  std::vector<ProbeSample> probes_after;
};

/// Collects non-singleton tie groups during a grouped drain.
struct TieRecorder {
  std::vector<TieGroup> groups;
};

/// Directs a replay: fire non-singleton tie group `group_index` in
/// `order` (positions into the group's ascending-seq event list) instead of
/// ascending seq.  All other groups keep the baseline order.
struct TiePermutation {
  std::size_t group_index = 0;
  std::vector<std::uint32_t> order;
};

class Simulator {
 public:
  Simulator() = default;

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current virtual time.  Monotonically non-decreasing across run calls.
  [[nodiscard]] TimePoint now() const { return now_; }

  /// Schedules `callback` at absolute time `when`.  `when` must not be in
  /// the past.  Returns an id usable with cancel().  `label` (a string
  /// literal or other pointer outliving the event) names the scheduling
  /// site in race-detector reports; it never affects execution.
  common::EventId schedule_at(TimePoint when, EventFn callback,
                              const char* label = nullptr);

  /// Schedules `callback` after `delay` (clamped to be non-negative).
  common::EventId schedule_after(Duration delay, EventFn callback,
                                 const char* label = nullptr);

  /// Cancels a pending event.  Returns true if the event existed and had not
  /// yet fired; cancelling an already-fired, already-cancelled or unknown
  /// event returns false and has no effect.  O(1): the callback (and any
  /// state it captured) is destroyed immediately; the queue keeps a
  /// tombstone that is skipped or compacted later.
  bool cancel(common::EventId id);

  /// Runs until the queue is empty.  Returns the number of events fired.
  std::size_t run();

  /// Runs until the queue is empty or virtual time would pass `deadline`.
  /// Events at exactly `deadline` are fired.  The clock is advanced to
  /// `deadline` on return.
  std::size_t run_until(TimePoint deadline);

  /// Earliest pending event time, or nullopt when the queue is empty.
  /// Non-const because tombstones of cancelled events surfacing at the heap
  /// front are discarded on the way (keeping the amortised O(1) cancel
  /// accounting); the observable state is unchanged.
  [[nodiscard]] std::optional<TimePoint> peek_next_time();

  /// Fires every event with `when` strictly before `bound` and returns the
  /// count.  Unlike run_until(), events at exactly `bound` stay queued and
  /// the clock is NOT advanced to `bound` -- it rests at the last fired
  /// event.  This is the window-drain primitive of sim::ShardedSimulator:
  /// the next window start is derived from the earliest remaining event
  /// fleet-wide, so padding the clock forward would skew it.  Race-check
  /// hooks are not serviced here; the race detector replays scenarios
  /// sequentially through run()/run_until() (the determinism oracle).
  std::size_t run_before(TimePoint bound);

  /// Number of events currently pending (cancelled events are excluded).
  [[nodiscard]] std::size_t pending() const { return live_; }

  /// Total number of events fired over the simulator's lifetime.
  [[nodiscard]] std::uint64_t events_fired() const { return fired_; }

  // -- Introspection (tests, benchmarks) -----------------------------------

  /// Slots currently holding a live callback.  Equal to pending(); exposed
  /// separately so tests can pin "cancel frees the slab eagerly".
  [[nodiscard]] std::size_t slab_occupancy() const { return live_; }
  /// Total slots ever allocated (high-water mark of concurrent events).
  [[nodiscard]] std::size_t slab_capacity() const { return slab_.size(); }
  /// Heap entries including tombstones awaiting compaction.
  [[nodiscard]] std::size_t heap_entries() const { return heap_.size(); }
  /// Tombstones currently buried in the heap.
  [[nodiscard]] std::size_t tombstone_count() const { return tombstones_; }

  // -- Race-check hooks (see sim/race_detector.hpp) ------------------------

  /// Attaching a recorder switches drain into grouped mode and appends every
  /// non-singleton same-timestamp group to `recorder->groups`.  Pass nullptr
  /// to detach.  The recorder must outlive the attachment.
  void set_tie_recorder(TieRecorder* recorder) {
    tie_recorder_ = recorder;
    tie_group_counter_ = 0;
  }

  /// Attaching a permutation switches drain into grouped mode and fires the
  /// designated group in the permuted order.  Pass nullptr to detach.  The
  /// permutation must outlive the attachment.
  void set_tie_permutation(const TiePermutation* permutation) {
    tie_permutation_ = permutation;
    tie_group_counter_ = 0;
  }

  /// Probes sampled into TieGroup::probes_after when recording.  The
  /// registry must outlive the attachment; samplers must be pure reads.
  void set_probe_registry(const ProbeRegistry* probes) { probes_ = probes; }

 private:
  static constexpr std::size_t kHeapArity = 4;
  static constexpr std::uint32_t kNilSlot = 0xffffffffu;

  /// 24-byte POD heap entry; the callback stays in the slab so sifts move
  /// trivially-copyable data only.
  struct HeapEntry {
    TimePoint when;
    std::uint64_t seq;       // Tie-break: FIFO among same-time events.
    std::uint32_t slot;      // Slab index of the callback.
    std::uint32_t generation;  // Must match the slot to be live.
  };

  struct Slot {
    EventFn callback;
    /// Scheduling-site label for race reports; not owned, may be nullptr.
    const char* label = nullptr;
    std::uint32_t generation = 0;
    std::uint32_t next_free = kNilSlot;
  };

  static bool fires_before(const HeapEntry& a, const HeapEntry& b) {
    if (a.when != b.when) return a.when < b.when;
    return a.seq < b.seq;
  }

  [[nodiscard]] static common::EventId pack_id(std::uint32_t slot,
                                               std::uint32_t generation) {
    return common::EventId{(static_cast<std::uint64_t>(generation) << 32) |
                           slot};
  }

  std::uint32_t acquire_slot();
  /// Destroys the slot's callback, bumps its generation (invalidating every
  /// outstanding EventId for it) and returns it to the free list.
  void release_slot(std::uint32_t slot);

  void heap_push(const HeapEntry& entry);
  void heap_pop_top();
  void sift_up(std::size_t index);
  void sift_down(std::size_t index);
  /// Drops every tombstone from the heap and re-heapifies.  Called once
  /// tombstones outnumber live entries (amortised O(1) per cancel).
  void compact();

  /// Pops ready events and fires them; shared by run/run_until.
  std::size_t drain(bool bounded, TimePoint deadline);
  /// Grouped drain used when a tie recorder or permutation is attached:
  /// same result as drain() when every group fires in seq order.
  std::size_t drain_grouped(bool bounded, TimePoint deadline);
  /// Fires one extracted heap entry (callback move-out, slot release, clock
  /// advance); shared by both drain paths.
  void fire_entry(const HeapEntry& entry);

  TimePoint now_{0};
  std::uint64_t next_seq_ = 0;
  std::uint64_t fired_ = 0;
  std::vector<HeapEntry> heap_;
  std::vector<Slot> slab_;
  std::uint32_t free_head_ = kNilSlot;
  std::size_t live_ = 0;        // Slots holding a live callback.
  std::size_t tombstones_ = 0;  // Dead heap entries awaiting compaction.

  // Race-check hooks; all nullptr (and cost-free) in normal runs.
  TieRecorder* tie_recorder_ = nullptr;
  const TiePermutation* tie_permutation_ = nullptr;
  const ProbeRegistry* probes_ = nullptr;
  /// Non-singleton groups seen so far in the current grouped drain session.
  std::size_t tie_group_counter_ = 0;
};

}  // namespace xanadu::sim
