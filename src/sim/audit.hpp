#pragma once

// Runtime invariant audit subsystem.
//
// The correctness contract of the simulation (event causality, worker
// lifecycle legality, counter non-underflow) used to live in bare assert()
// calls that compile away under the default RelWithDebInfo build -- which is
// exactly the build every benchmark and experiment runs.  This module keeps
// those checks alive in *all* build types:
//
//   XANADU_INVARIANT(cond, msg)  -- hard invariant.  In FailFast mode (the
//       default) a violation throws audit::InvariantViolation, which derives
//       from std::logic_error so existing contract tests keep passing.  In
//       Record mode the violation is counted and execution continues --
//       useful for soak runs that want a census of violations instead of
//       dying on the first one.
//   XANADU_AUDIT(cond, msg)      -- soft check.  Always count-and-report,
//       never throws; for monitoring-grade conditions where continuing is
//       safe and a post-run summary is the product.
//
// Violations land in a process-wide AuditLog (a global keeps the macros
// usable from any layer above sim/; report() takes a mutex so shards of the
// parallel drain -- sim/sharded.hpp -- can trip checks concurrently, and
// healthy runs never touch it).  Each call site is tracked individually, so
// a hot loop tripping one invariant a million times reports one site with a
// count, not a million entries.

#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

namespace xanadu::sim::audit {

/// What a failed XANADU_INVARIANT does.  XANADU_AUDIT always records.
enum class Mode {
  FailFast,  // throw InvariantViolation at the point of failure
  Record,    // count the violation and continue
};

[[nodiscard]] const char* to_string(Mode mode);

/// Thrown by XANADU_INVARIANT in FailFast mode.  Derives from
/// std::logic_error: an invariant violation is a programming error, and
/// callers that already guard against logic_error keep working.
class InvariantViolation : public std::logic_error {
 public:
  explicit InvariantViolation(const std::string& what)
      : std::logic_error(what) {}
};

/// One distinct failing call site, with an occurrence count.
struct Violation {
  std::string file;
  int line = 0;
  std::string condition;  // stringised condition text
  std::string message;    // first message observed at this site
  std::uint64_t count = 0;
  bool fatal = false;  // true when raised via XANADU_INVARIANT
};

/// Collects invariant/audit violations.  One process-wide instance is
/// reachable via audit::log(); tests may construct private instances.
class AuditLog {
 public:
  [[nodiscard]] Mode mode() const { return mode_; }
  void set_mode(Mode mode) { mode_ = mode; }

  /// Records a violation (deduplicated by call site).  Called by the macros;
  /// throws InvariantViolation when `fatal` and the mode is FailFast.
  /// Thread-safe: the parallel drain may report from several shard threads.
  /// The read accessors are not synchronised -- inspect with the fleet
  /// quiescent (after run()), which is how every caller uses them.
  void report(const char* file, int line, const char* condition,
              const std::string& message, bool fatal);

  /// Total violations recorded (sum over sites).
  [[nodiscard]] std::uint64_t total() const { return total_; }
  /// Number of distinct failing call sites.
  [[nodiscard]] std::size_t site_count() const { return sites_.size(); }
  [[nodiscard]] const std::vector<Violation>& sites() const { return sites_; }

  /// Human-readable per-site report ("<file>:<line>: <cond> -- <msg> xN").
  [[nodiscard]] std::string summary() const;

  /// Forgets all recorded violations (mode is preserved).
  void clear();

 private:
  Mode mode_ = Mode::FailFast;
  std::mutex mutex_;  // Guards total_/sites_ in report() and clear().
  std::uint64_t total_ = 0;
  std::vector<Violation> sites_;  // ordered by first occurrence
};

/// The process-wide audit log used by the macros.
[[nodiscard]] AuditLog& log();

}  // namespace xanadu::sim::audit

/// Hard invariant: active in every build type.  FailFast mode throws
/// audit::InvariantViolation; Record mode counts and continues.
#define XANADU_INVARIANT(cond, msg)                                         \
  do {                                                                      \
    if (!(cond)) {                                                          \
      ::xanadu::sim::audit::log().report(__FILE__, __LINE__, #cond, (msg),  \
                                         /*fatal=*/true);                   \
    }                                                                       \
  } while (false)

/// Soft audit check: counted and reported, never throws.
#define XANADU_AUDIT(cond, msg)                                             \
  do {                                                                      \
    if (!(cond)) {                                                          \
      ::xanadu::sim::audit::log().report(__FILE__, __LINE__, #cond, (msg),  \
                                         /*fatal=*/false);                  \
    }                                                                       \
  } while (false)
