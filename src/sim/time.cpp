#include "sim/time.hpp"

#include <cmath>
#include <cstdio>

namespace xanadu::sim {

namespace {
std::string format_micros(std::int64_t us) {
  char buf[64];
  const double abs_us = std::abs(static_cast<double>(us));
  if (abs_us >= 1e6) {
    std::snprintf(buf, sizeof buf, "%.3fs", static_cast<double>(us) / 1e6);
  } else if (abs_us >= 1e3) {
    std::snprintf(buf, sizeof buf, "%.3fms", static_cast<double>(us) / 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%lldus", static_cast<long long>(us));
  }
  return buf;
}
}  // namespace

std::string to_string(Duration d) { return format_micros(d.micros()); }

std::string to_string(TimePoint t) { return format_micros(t.micros()); }

}  // namespace xanadu::sim
