#pragma once

// Small-buffer-optimized move-only callable for simulator events.
//
// Every scheduled event used to carry a std::function<void()>, and every
// engine lambda captures more than libstdc++'s 16-byte inline budget
// ([this, request, node, worker_id, ...] is 24-40 bytes), so each schedule
// paid a heap allocation and each queue sift paid a type-erased move.
// EventFn widens the inline budget to cover every capture the platform
// actually schedules (the largest engine site captures five 8-byte values;
// the bus delivery lambda is `this` + TopicId + shared_ptr = 32 bytes), so
// the common path never allocates.  Oversized or potentially-throwing-move
// callables transparently fall back to the heap.
//
// Move-only by design: an event callback is invoked at most once from
// exactly one queue slot, so copyability would only invite accidental
// capture duplication.

#include <cstddef>
#include <functional>
#include <new>
#include <type_traits>
#include <utility>

namespace xanadu::sim {

class EventFn {
 public:
  /// Inline capture budget.  Chosen to fit the largest lambda the platform
  /// schedules (engine.cpp's provision-handoff site: `this` plus four ids,
  /// 40 bytes) and the bus delivery closure (32 bytes), with headroom for
  /// one more word; keeps sizeof(EventFn) at 72 bytes.
  static constexpr std::size_t kInlineCapacity = 56;

  EventFn() = default;

  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, EventFn> &&
                                        std::is_invocable_r_v<void, D&>>>
  EventFn(F&& f) {  // NOLINT(google-explicit-constructor)
    if constexpr (std::is_same_v<D, std::function<void()>>) {
      // An empty std::function wraps to an empty EventFn, so callers keep
      // the "scheduling an empty callback throws" contract instead of a
      // deferred std::bad_function_call at fire time.
      if (!f) return;
    }
    if constexpr (fits_inline<D>()) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
      invoke_ = &inline_invoke<D>;
      manage_ = &inline_manage<D>;
    } else {
      ::new (static_cast<void*>(storage_)) (D*)(new D(std::forward<F>(f)));
      invoke_ = &heap_invoke<D>;
      manage_ = &heap_manage<D>;
    }
  }

  EventFn(EventFn&& other) noexcept { move_from(other); }

  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;

  ~EventFn() { reset(); }

  [[nodiscard]] explicit operator bool() const { return invoke_ != nullptr; }

  void operator()() { invoke_(storage_); }

  /// Destroys the held callable (releasing its captures) and empties.
  void reset() {
    if (manage_ != nullptr) {
      manage_(Op::Destroy, storage_, nullptr);
      invoke_ = nullptr;
      manage_ = nullptr;
    }
  }

  /// True when a callable of type `D` is stored in the inline buffer rather
  /// than on the heap.  Exposed so tests can pin the no-allocation claim.
  template <typename D>
  [[nodiscard]] static constexpr bool fits_inline() {
    return sizeof(D) <= kInlineCapacity &&
           alignof(D) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<D>;
  }

 private:
  enum class Op { MoveTo, Destroy };

  using Invoke = void (*)(void*);
  /// MoveTo: relocate the callable from `self` storage into `other` storage
  /// and destroy the source.  Destroy: destroy in place.
  using Manage = void (*)(Op, void* self, void* other);

  template <typename D>
  static void inline_invoke(void* storage) {
    (*std::launder(reinterpret_cast<D*>(storage)))();
  }

  template <typename D>
  static void inline_manage(Op op, void* self, void* other) {
    D* f = std::launder(reinterpret_cast<D*>(self));
    if (op == Op::MoveTo) ::new (other) D(std::move(*f));
    f->~D();
  }

  template <typename D>
  static void heap_invoke(void* storage) {
    (**std::launder(reinterpret_cast<D**>(storage)))();
  }

  template <typename D>
  static void heap_manage(Op op, void* self, void* other) {
    D** slot = std::launder(reinterpret_cast<D**>(self));
    if (op == Op::MoveTo) {
      ::new (other) (D*)(*slot);  // Pointer ownership transfers.
    } else {
      delete *slot;
    }
  }

  void move_from(EventFn& other) noexcept {
    if (other.invoke_ != nullptr) {
      other.manage_(Op::MoveTo, other.storage_, storage_);
      invoke_ = other.invoke_;
      manage_ = other.manage_;
      other.invoke_ = nullptr;
      other.manage_ = nullptr;
    }
  }

  alignas(std::max_align_t) std::byte storage_[kInlineCapacity];
  Invoke invoke_ = nullptr;
  Manage manage_ = nullptr;
};

}  // namespace xanadu::sim
