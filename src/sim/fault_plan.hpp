#pragma once

// Seed-deterministic fault injection.
//
// A FaultPlan is the single decision oracle for every injected fault in a
// run: message-bus faults (drop / duplicate / extra delay), worker and host
// faults (provisioning failure, worker crash mid-execution, host outage),
// and slow-sandbox stragglers (a provisioning-latency multiplier).  Each
// fault class draws from its own forked common::Rng stream, so
//
//   * the same seed and the same FaultPlanOptions reproduce the same fault
//     schedule event-for-event (the PR 1 determinism contract extends over
//     faulted runs: identical seed + plan => identical trace digest), and
//   * changing one class's rate leaves the other classes' draw sequences
//     untouched, which keeps ablation sweeps comparable across rates.
//
// The plan does not know *where* faults land -- it is consulted at each
// decision point (a bus publish, a sandbox build, an execution start) by the
// component owning that decision point, and simply answers "fault here?".
// Because the simulation itself is deterministic, the sequence of decision
// points -- and therefore the sequence of answers -- is reproducible.

#include <cstdint>
#include <utility>

#include "common/rng.hpp"
#include "sim/time.hpp"

namespace xanadu::sim {

/// Per-class fault probabilities and shapes.  All rates default to zero: a
/// default-constructed plan injects nothing and costs nothing.
struct FaultPlanOptions {
  // -- Message-bus faults (per published message) ---------------------------
  /// P(message silently lost; no subscriber ever sees it).
  double bus_drop_rate = 0.0;
  /// P(message delivered twice, back to back, in offset order).
  double bus_duplicate_rate = 0.0;
  /// P(message held back by `bus_extra_delay` before delivery).
  double bus_delay_rate = 0.0;
  /// Extra one-way latency applied to delayed messages.
  Duration bus_extra_delay = Duration::from_millis(50);

  // -- Worker / host faults -------------------------------------------------
  /// P(a sandbox build fails at the end of its provisioning latency).
  double provision_failure_rate = 0.0;
  /// P(a worker crashes partway through executing a request).
  double worker_crash_rate = 0.0;
  /// Host outages per simulated hour per cluster (0 = never).  Outage times
  /// are exponentially distributed; each outage kills every worker on one
  /// uniformly drawn host and takes the host offline for `host_downtime`.
  double host_outage_rate_per_hour = 0.0;
  Duration host_downtime = Duration::from_seconds(30);

  // -- Stragglers -----------------------------------------------------------
  /// P(a sandbox build is a straggler and takes `straggler_multiplier`x the
  /// sampled provisioning latency).
  double straggler_rate = 0.0;
  double straggler_multiplier = 4.0;

  /// True when any fault class can fire; lets hot paths skip consults.
  [[nodiscard]] bool any_enabled() const;
  /// Throws std::invalid_argument on out-of-range rates or multipliers.
  void validate() const;
};

/// Running totals of faults injected, by class.  Snapshot-and-diff friendly
/// (all fields are plain counters).
struct FaultCounters {
  std::uint64_t bus_drops = 0;
  std::uint64_t bus_duplicates = 0;
  std::uint64_t bus_delays = 0;
  std::uint64_t provision_failures = 0;
  std::uint64_t worker_crashes = 0;
  std::uint64_t host_outages = 0;
  std::uint64_t stragglers = 0;

  [[nodiscard]] std::uint64_t total() const {
    return bus_drops + bus_duplicates + bus_delays + provision_failures +
           worker_crashes + host_outages + stragglers;
  }
};

class FaultPlan {
 public:
  /// Inert plan: active() is false and every consult answers "no fault".
  FaultPlan() = default;

  /// Seeded plan.  Forks one child stream per fault class from `rng` in a
  /// fixed order, so two plans built from equal (options, rng) pairs answer
  /// identically forever.
  FaultPlan(FaultPlanOptions options, common::Rng rng);

  [[nodiscard]] bool active() const { return active_; }
  [[nodiscard]] const FaultPlanOptions& options() const { return options_; }
  [[nodiscard]] const FaultCounters& counters() const { return counters_; }

  /// What happens to one published bus message.
  enum class BusFault { None, Drop, Duplicate, Delay };
  [[nodiscard]] BusFault next_bus_fault();

  /// Does this sandbox build fail at the end of its latency?
  [[nodiscard]] bool next_provision_failure();

  /// Provisioning-latency multiplier for one sandbox build (1.0, or the
  /// straggler multiplier).
  [[nodiscard]] double next_provision_multiplier();

  /// Does this execution crash its worker partway through?
  [[nodiscard]] bool next_worker_crash();
  /// Fraction of the execution duration after which the crash fires, in
  /// (0, 1).  Only consulted after next_worker_crash() returned true.
  [[nodiscard]] double next_crash_point();

  /// Delay until the next host outage and the index of the victim host
  /// (uniform over `host_count`).  Only meaningful when
  /// host_outage_rate_per_hour > 0 -- callers must not consult otherwise.
  [[nodiscard]] std::pair<Duration, std::size_t> next_host_outage(
      std::size_t host_count);

  /// Records an outage actually applied (the draw above schedules it; the
  /// component fires it later and may skip it if the run ended first).
  void count_host_outage() { ++counters_.host_outages; }

 private:
  FaultPlanOptions options_;
  bool active_ = false;
  FaultCounters counters_;
  // One independent stream per class (fixed fork order; see constructor).
  common::Rng bus_rng_;
  common::Rng provision_rng_;
  common::Rng straggler_rng_;
  common::Rng crash_rng_;
  common::Rng outage_rng_;
};

}  // namespace xanadu::sim
