#pragma once

// State probes: named counter samplers that expose a subsystem's observable
// state to the virtual-time race detector (sim/race_detector.hpp).
//
// Each platform subsystem (warm pool, provision pipeline, recovery, the
// engine itself) registers a handful of cheap counters -- warm-worker
// totals, in-flight provisions, retries -- under stable names.  The race
// detector samples every probe after a same-timestamp tie group fires; if a
// permutation of the group changes any sampled value, the first differing
// probe name localises the divergence to a subsystem.
//
// Registration order is the iteration order (deterministic by construction);
// the registry itself never mutates simulation state -- samplers must be
// pure reads.

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

namespace xanadu::sim {

/// One sampled probe: stable name plus the value read.
using ProbeSample = std::pair<std::string, std::uint64_t>;

class ProbeRegistry {
 public:
  /// A pure read of one counter.  Must not mutate simulation state.
  using Sampler = std::function<std::uint64_t()>;

  /// Registers a probe under `name` (names should be "subsystem.counter";
  /// duplicates are legal but make reports ambiguous -- avoid them).
  void add(std::string name, Sampler sampler);

  [[nodiscard]] std::size_t size() const { return probes_.size(); }
  [[nodiscard]] bool empty() const { return probes_.empty(); }

  /// Samples every probe, in registration order.
  [[nodiscard]] std::vector<ProbeSample> sample() const;

  /// FNV-1a digest over all probe names and current values; two equal
  /// digests mean every registered counter reads the same.
  [[nodiscard]] std::uint64_t digest() const;

 private:
  std::vector<std::pair<std::string, Sampler>> probes_;
};

/// The name of the first probe whose value differs between two snapshots
/// taken from the same registry, or "" when they agree everywhere.  A length
/// mismatch (snapshots from different registries) reports the first
/// unpaired name.
[[nodiscard]] std::string first_probe_divergence(
    const std::vector<ProbeSample>& baseline,
    const std::vector<ProbeSample>& other);

}  // namespace xanadu::sim
