#pragma once

// Virtual-time race detector (DPOR-lite over same-timestamp tie groups).
//
// The simulator orders same-virtual-timestamp events by scheduling sequence
// -- a total order that makes replay deterministic but proves nothing about
// whether the order *matters*.  If two events tied at time T do not commute
// (their pop order changes observable engine state), every digest this
// repository pins is one heap-perturbing refactor away from silently
// changing: exactly the class of bug the (when, seq) total-order fix of the
// event-queue rework papered over once.
//
// This harness mechanically checks commutativity.  A baseline run records
// every non-singleton tie group (via Simulator::set_tie_recorder); each
// group is then replayed under bounded order permutations
// (Simulator::set_tie_permutation):
//
//   * groups of size <= RaceCheckOptions::exhaustive_group_limit are
//     replayed under ALL n!-1 non-identity permutations,
//   * larger groups under `sampled_permutations` seeded random shuffles
//     (deterministic: sampling uses common::Rng with `sample_seed`).
//
// Each replay rebuilds the world from scratch through the caller-supplied
// ScenarioRunner (state snapshot/restore of an arbitrary engine is not
// feasible; full re-runs are, because simulated runs are cheap).  A replay
// whose final digest differs from the baseline is a race: the report names
// the guilty tie group, its event labels, the divergent order, and -- when
// a ProbeRegistry was attached -- the first subsystem counter that diverged
// right after the group fired.
//
// Cost: O(sum over groups of min(n!, samples)) full runs.  This is analysis
// tooling for tests and smoke benches, not a production-path feature.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace xanadu::sim {

struct RaceCheckOptions {
  /// Tie groups up to this size are replayed under every permutation.
  std::size_t exhaustive_group_limit = 4;
  /// Random (seeded) shuffles replayed for groups above the limit.
  std::size_t sampled_permutations = 8;
  /// Seed for permutation sampling; fixed so reports reproduce.
  std::uint64_t sample_seed = 0x9e3779b97f4a7c15ULL;
  /// Stop after the first divergent permutation of a group (the remaining
  /// permutations of that group rarely add information).
  bool stop_group_after_first_race = true;
  /// Upper bound on replays across the whole check (safety valve for
  /// tie-heavy scenarios); 0 means unbounded.
  std::size_t max_replays = 4096;
};

/// What one scenario run observed: the run's final digest (trace digest,
/// probe digest, anything the runner folds in) plus the tie trace.
struct RunObservation {
  std::uint64_t digest = 0;
  TieRecorder ties;
};

/// Rebuilds the scenario world from scratch and runs it to completion.
/// `permutation` is nullptr for the baseline run; otherwise the runner must
/// attach it to the fresh simulator (set_tie_permutation) before running.
/// The runner must also attach a TieRecorder and return it in the
/// observation, and should attach a ProbeRegistry when subsystem
/// localisation is wanted.
using ScenarioRunner =
    std::function<RunObservation(const TiePermutation* permutation)>;

/// One confirmed order-dependence.
struct TieRace {
  std::size_t group_index = 0;
  TimePoint when;
  /// Event labels in baseline (seq) order; "" for unlabeled sites.
  std::vector<std::string> labels;
  /// The permuted firing order (positions into `labels`) that diverged.
  std::vector<std::uint32_t> divergent_order;
  std::uint64_t baseline_digest = 0;
  std::uint64_t permuted_digest = 0;
  /// First probe whose post-group value diverged, or "" when the divergence
  /// only surfaced later (trace rows, downstream groups).
  std::string first_divergent_probe;
};

struct RaceReport {
  /// Non-singleton tie groups the baseline run exposed.
  std::size_t groups_examined = 0;
  /// Scenario replays executed (excluding the baseline).
  std::size_t permutations_run = 0;
  /// True when max_replays cut the search short.
  bool truncated = false;
  std::vector<TieRace> races;

  [[nodiscard]] bool race_free() const { return races.empty(); }
  /// Human-readable multi-line report (one block per race).
  [[nodiscard]] std::string to_string() const;
};

/// Runs the full check: baseline, then bounded permutation replays of every
/// non-singleton tie group.  Deterministic for a deterministic runner.
[[nodiscard]] RaceReport check_tie_races(const ScenarioRunner& runner,
                                         const RaceCheckOptions& options = {});

}  // namespace xanadu::sim
