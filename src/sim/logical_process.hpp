#pragma once

// LogicalProcess: one shard of a conservative parallel discrete-event
// simulation.
//
// A logical process wraps one Simulator -- a shard-local, slab-backed event
// queue -- and adds exactly one capability: send(), which routes an event to
// another shard through the owning ShardedSimulator's mailbox instead of
// scheduling it directly.  Everything scheduled on the local simulator stays
// invisible to other shards, which is what lets the driver drain every shard
// in parallel inside a bounded time window.
//
// See sim/sharded.hpp for the window/mailbox contract and the determinism
// argument; ARCHITECTURE.md "Parallel simulation" has the prose version.

#include <cstdint>

#include "sim/event_fn.hpp"
#include "sim/shard.hpp"
#include "sim/time.hpp"

namespace xanadu::sim {

class Simulator;
class ShardedSimulator;

class LogicalProcess {
 public:
  LogicalProcess(const LogicalProcess&) = delete;
  LogicalProcess& operator=(const LogicalProcess&) = delete;

  [[nodiscard]] ShardId shard() const { return id_; }
  [[nodiscard]] Simulator& simulator() { return *sim_; }
  [[nodiscard]] ShardedSimulator& owner() { return *owner_; }

  /// Cross-shard send: run `fn` on shard `to` at absolute virtual time
  /// `when`.  The conservative lookahead contract: while a drain window is
  /// open, `when` must lie at or past the window's end (the sender models a
  /// link whose latency is at least the driver's lookahead), so a receiver
  /// can drain its queue up to the window end without a message ever
  /// arriving in its past.  Violations throw std::logic_error.
  ///
  /// Sends are buffered in a per-(source, target) lane written only by the
  /// sending shard's drain thread -- no locks on this path -- and merged
  /// into the target's queue at the window barrier in (when, source, index)
  /// order, the same total order workload::TrafficMix uses, so the merge is
  /// identical no matter how many threads drained the window.
  void send(ShardId to, TimePoint when, EventFn fn,
            const char* label = nullptr);

  /// Messages sent by this shard over its lifetime (the `index` component
  /// of the merge order).
  [[nodiscard]] std::uint64_t sent_count() const { return next_index_; }

 private:
  friend class ShardedSimulator;  // Sole creator; shards are driver-owned.

  LogicalProcess(ShardedSimulator& owner, Simulator& sim, ShardId id)
      : owner_(&owner), sim_(&sim), id_(id) {}

  ShardedSimulator* owner_;
  Simulator* sim_;
  ShardId id_;
  std::uint64_t next_index_ = 0;
};

}  // namespace xanadu::sim
