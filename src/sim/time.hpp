#pragma once

// Virtual time for the discrete-event simulation.
//
// All timing in the reproduction runs on a virtual clock measured in integer
// microseconds.  Integer ticks keep event ordering exact (no floating-point
// comparison hazards) and let a simulated 20-hour experiment (paper Figure 5)
// finish in milliseconds of wall time.

#include <cstdint>
#include <string>

namespace xanadu::sim {

/// A span of virtual time, in microseconds.  Negative durations are legal as
/// intermediate arithmetic values (the JIT planner subtracts startup times)
/// but must be clamped before being scheduled.
class Duration {
 public:
  constexpr Duration() = default;
  constexpr explicit Duration(std::int64_t micros) : micros_(micros) {}

  [[nodiscard]] constexpr std::int64_t micros() const { return micros_; }
  [[nodiscard]] constexpr double millis() const {
    return static_cast<double>(micros_) / 1e3;
  }
  [[nodiscard]] constexpr double seconds() const {
    return static_cast<double>(micros_) / 1e6;
  }

  static constexpr Duration zero() { return Duration{0}; }
  static constexpr Duration from_micros(std::int64_t us) { return Duration{us}; }
  static constexpr Duration from_millis(double ms) {
    return Duration{static_cast<std::int64_t>(ms * 1e3)};
  }
  static constexpr Duration from_seconds(double s) {
    return Duration{static_cast<std::int64_t>(s * 1e6)};
  }
  static constexpr Duration from_minutes(double m) {
    return from_seconds(m * 60.0);
  }

  [[nodiscard]] constexpr Duration clamped_non_negative() const {
    return micros_ < 0 ? Duration{0} : *this;
  }

  constexpr Duration& operator+=(Duration other) {
    micros_ += other.micros_;
    return *this;
  }
  constexpr Duration& operator-=(Duration other) {
    micros_ -= other.micros_;
    return *this;
  }

  friend constexpr Duration operator+(Duration a, Duration b) {
    return Duration{a.micros_ + b.micros_};
  }
  friend constexpr Duration operator-(Duration a, Duration b) {
    return Duration{a.micros_ - b.micros_};
  }
  friend constexpr Duration operator*(Duration a, double k) {
    return Duration{static_cast<std::int64_t>(static_cast<double>(a.micros_) * k)};
  }
  friend constexpr Duration operator*(double k, Duration a) { return a * k; }
  friend constexpr auto operator<=>(Duration, Duration) = default;

 private:
  std::int64_t micros_ = 0;
};

/// An absolute point on the virtual timeline.
class TimePoint {
 public:
  constexpr TimePoint() = default;
  constexpr explicit TimePoint(std::int64_t micros) : micros_(micros) {}

  [[nodiscard]] constexpr std::int64_t micros() const { return micros_; }
  [[nodiscard]] constexpr double millis() const {
    return static_cast<double>(micros_) / 1e3;
  }
  [[nodiscard]] constexpr double seconds() const {
    return static_cast<double>(micros_) / 1e6;
  }

  friend constexpr TimePoint operator+(TimePoint t, Duration d) {
    return TimePoint{t.micros_ + d.micros()};
  }
  friend constexpr TimePoint operator-(TimePoint t, Duration d) {
    return TimePoint{t.micros_ - d.micros()};
  }
  friend constexpr Duration operator-(TimePoint a, TimePoint b) {
    return Duration{a.micros_ - b.micros_};
  }
  friend constexpr auto operator<=>(TimePoint, TimePoint) = default;

 private:
  std::int64_t micros_ = 0;
};

/// Formats a duration as a short human-readable string ("1.25s", "300ms").
[[nodiscard]] std::string to_string(Duration d);
[[nodiscard]] std::string to_string(TimePoint t);

namespace literals {
constexpr Duration operator""_us(unsigned long long us) {
  return Duration::from_micros(static_cast<std::int64_t>(us));
}
constexpr Duration operator""_ms(unsigned long long ms) {
  return Duration::from_micros(static_cast<std::int64_t>(ms) * 1000);
}
constexpr Duration operator""_s(unsigned long long s) {
  return Duration::from_micros(static_cast<std::int64_t>(s) * 1'000'000);
}
constexpr Duration operator""_min(unsigned long long m) {
  return Duration::from_micros(static_cast<std::int64_t>(m) * 60'000'000);
}
}  // namespace literals

}  // namespace xanadu::sim
