#pragma once

// Shard identity for the conservative parallel simulation (sim/sharded.hpp).
// Split into its own header so layers that only *tag* state with a shard
// affinity (cluster hosts) don't pull in the simulator machinery.

#include <cstdint>

namespace xanadu::sim {

/// Index of a logical process within a ShardedSimulator.  Dense; assigned in
/// add_shard() order.
using ShardId = std::uint32_t;

/// Shard affinity of state not (yet) bound to any shard.
inline constexpr ShardId kNoShard = 0xffffffffu;

}  // namespace xanadu::sim
