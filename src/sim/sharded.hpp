#pragma once

// ShardedSimulator: a conservative parallel driver over per-shard Simulators.
//
// Classic conservative PDES, specialised to this codebase's invariants:
//
//   * Each shard (LogicalProcess) owns a full Simulator -- the same
//     slab-backed queue, the same schedule_at/cancel/EventFn API -- and all
//     of the mutable state reachable from its events.  Shards share nothing;
//     the only cross-shard channel is LogicalProcess::send().
//   * Cross-shard links have a minimum latency, the *lookahead* (for the
//     platform's MessageBus bridge: the bus delivery latency; jitter is
//     additive, so latency is also the lower bound).
//   * The driver repeatedly opens a window [t_min, t_min + lookahead), where
//     t_min is the earliest pending event fleet-wide, and drains every shard
//     through it in parallel (Simulator::run_before).  Any send() issued
//     inside the window carries when >= send_time + lookahead >= t_min +
//     lookahead = window end, so no shard can receive a message in the part
//     of the timeline it is currently executing -- the conservative
//     correctness argument.
//   * At the window barrier, buffered sends are merged into their target
//     queues in (when, source, index) ascending order -- `index` being a
//     per-source monotone counter -- the same total order
//     workload::TrafficMix uses for arrival merges.  The merge is performed
//     per *target* after all sources finished the window, so the resulting
//     schedule_at sequence (and therefore the target's tie-break seqs) is a
//     pure function of virtual time, never of thread interleaving.
//
// Determinism: with the shards fixed, every run -- sequential (threads=1) or
// parallel (any thread count) -- fires the same events at the same virtual
// times in the same per-shard order, so trace/state digests are
// byte-identical.  tests/sharded_determinism_test.cpp pins this across
// threads x seeds; the race detector keeps replaying scenarios sequentially
// as the ground-truth oracle.
//
// Progress: after a window, every event earlier than the window end has
// fired, so the next t_min advances by at least the lookahead per iteration
// -- no zero-length windows, no deadlock.

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "sim/event_fn.hpp"
#include "sim/logical_process.hpp"
#include "sim/shard.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace xanadu::sim {

/// An in-flight cross-shard message, buffered between the send and the
/// window barrier that schedules it onto the target shard.
struct ShardMessage {
  TimePoint when;
  ShardId source = 0;
  std::uint64_t index = 0;  // Per-source monotone send counter.
  const char* label = nullptr;
  EventFn fn;
};

class ShardedSimulator {
 public:
  struct Options {
    /// Minimum cross-shard latency: every send() must land at least this far
    /// past the moment it was issued.  The window length.  For bus-bridged
    /// deployments this is the bus delivery latency (jitter only adds).
    Duration lookahead = Duration::from_millis(3);
  };

  ShardedSimulator();
  explicit ShardedSimulator(Options options);
  ~ShardedSimulator();

  ShardedSimulator(const ShardedSimulator&) = delete;
  ShardedSimulator& operator=(const ShardedSimulator&) = delete;

  /// Registers `sim` as the next shard and returns its logical process.
  /// The simulator must outlive this driver.  All shards must be added
  /// before the first send() or run().
  LogicalProcess& add_shard(Simulator& sim);

  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }
  [[nodiscard]] LogicalProcess& shard(ShardId id) { return *shards_.at(id); }
  [[nodiscard]] Duration lookahead() const { return options_.lookahead; }

  struct RunLimits {
    /// Checked at every window barrier (on the driver thread, with all
    /// shards quiescent); returning true ends the run.  Leave empty to run
    /// until every shard's queue is empty.
    std::function<bool()> stop;
    /// Don't open a window whose start lies past this time.  Bounds runaway
    /// runs the way runner.cpp's stall horizon does; note the run is
    /// window-quantised, so events up to lookahead past the horizon may
    /// still fire.
    std::optional<TimePoint> horizon;
  };

  /// Drains all shards to completion (or until a limit trips) using
  /// `threads` OS threads, caller included.  threads == 1 runs everything
  /// on the calling thread -- the sequential reference path.  Thread count
  /// never affects results, only wall-clock time.  Returns the number of
  /// events fired across all shards during this call.
  std::size_t run(unsigned threads, const RunLimits& limits = {});

  // -- Introspection (driver thread, outside run()) --------------------------

  /// Windows executed over the driver's lifetime.
  [[nodiscard]] std::uint64_t windows() const { return windows_; }
  /// Cross-shard messages merged into target queues so far.
  [[nodiscard]] std::uint64_t messages_delivered() const;
  /// True while a drain window is open (send() uses this to enforce the
  /// lookahead contract).
  [[nodiscard]] bool in_window() const { return in_window_; }

 private:
  friend class LogicalProcess;

  /// Buffers a message in the (from, to) lane.  Called by
  /// LogicalProcess::send() on the thread currently draining shard `from`.
  void enqueue(ShardId from, ShardId to, ShardMessage message);
  /// Moves every lane targeting `target` into its queue in
  /// (when, source, index) order.  Runs on the thread owning `target`
  /// during the merge phase (or the driver thread pre-run).
  void deliver_into(std::size_t target);
  void ensure_lanes();

  Options options_;
  std::vector<std::unique_ptr<LogicalProcess>> shards_;
  /// Flat [source * shard_count + target] mailbox lanes.  A lane is written
  /// only by its source's drain thread and drained only by its target's
  /// merge thread; the window barrier separates the two.
  std::vector<std::vector<ShardMessage>> lanes_;
  /// Per-target merge scratch, reused across windows.
  std::vector<std::vector<ShardMessage>> scratch_;
  /// Per-shard tallies, each written only by the thread owning that shard.
  std::vector<std::size_t> fired_per_shard_;
  std::vector<std::uint64_t> delivered_per_shard_;
  std::uint64_t windows_ = 0;
  TimePoint window_end_{0};
  bool in_window_ = false;
  bool running_ = false;
};

}  // namespace xanadu::sim
