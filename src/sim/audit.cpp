#include "sim/audit.hpp"

#include <sstream>

namespace xanadu::sim::audit {

const char* to_string(Mode mode) {
  switch (mode) {
    case Mode::FailFast: return "fail-fast";
    case Mode::Record: return "record";
  }
  return "unknown";
}

void AuditLog::report(const char* file, int line, const char* condition,
                      const std::string& message, bool fatal) {
  const std::lock_guard<std::mutex> lock(mutex_);
  ++total_;
  Violation* site = nullptr;
  for (Violation& v : sites_) {
    if (v.line == line && v.file == file) {
      site = &v;
      break;
    }
  }
  if (site == nullptr) {
    sites_.push_back(Violation{file, line, condition, message, 0, fatal});
    site = &sites_.back();
  }
  ++site->count;
  site->fatal = site->fatal || fatal;

  if (fatal && mode_ == Mode::FailFast) {
    std::ostringstream what;
    what << "invariant violated at " << file << ":" << line << ": " << condition
         << " -- " << message;
    throw InvariantViolation{what.str()};
  }
}

std::string AuditLog::summary() const {
  std::ostringstream out;
  out << "audit: " << total_ << " violation(s) across " << sites_.size()
      << " site(s), mode " << to_string(mode_) << "\n";
  for (const Violation& v : sites_) {
    out << "  " << v.file << ":" << v.line << ": " << v.condition << " -- "
        << v.message << " x" << v.count << (v.fatal ? "" : " [audit]") << "\n";
  }
  return out.str();
}

void AuditLog::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  total_ = 0;
  sites_.clear();
}

AuditLog& log() {
  static AuditLog instance;
  return instance;
}

}  // namespace xanadu::sim::audit
