#include "sim/probe.hpp"

#include <algorithm>

#include "common/hash.hpp"
#include "sim/audit.hpp"

namespace xanadu::sim {

void ProbeRegistry::add(std::string name, Sampler sampler) {
  XANADU_INVARIANT(static_cast<bool>(sampler), "probe registered without a sampler");
  probes_.emplace_back(std::move(name), std::move(sampler));
}

std::vector<ProbeSample> ProbeRegistry::sample() const {
  std::vector<ProbeSample> out;
  out.reserve(probes_.size());
  for (const auto& [name, sampler] : probes_) {
    out.emplace_back(name, sampler());
  }
  return out;
}

std::uint64_t ProbeRegistry::digest() const {
  std::uint64_t hash = common::kFnvOffsetBasis;
  for (const auto& [name, sampler] : probes_) {
    hash = common::fnv1a(name, hash);
    hash = common::fnv1a_u64(sampler(), hash);
  }
  return hash;
}

std::string first_probe_divergence(const std::vector<ProbeSample>& baseline,
                                   const std::vector<ProbeSample>& other) {
  const std::size_t shared = std::min(baseline.size(), other.size());
  for (std::size_t i = 0; i < shared; ++i) {
    if (baseline[i].first != other[i].first ||
        baseline[i].second != other[i].second) {
      return baseline[i].first;
    }
  }
  if (baseline.size() > shared) return baseline[shared].first;
  if (other.size() > shared) return other[shared].first;
  return {};
}

}  // namespace xanadu::sim
