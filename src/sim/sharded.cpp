#include "sim/sharded.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>

namespace xanadu::sim {
namespace {

// Fork-join pool for the two window phases (drain, merge).  Work items are
// claimed from a shared atomic counter and the caller participates, so the
// pool holds threads-1 workers.  All inter-thread visibility flows through
// mutex_ (job handoff and completion) plus the claim counter; the window
// barrier the ShardedSimulator needs *is* Pool::run() returning.
class Pool {
 public:
  explicit Pool(unsigned workers) {
    threads_.reserve(workers);
    for (unsigned i = 0; i < workers; ++i) {
      threads_.emplace_back([this] { worker_loop(); });
    }
  }

  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

  ~Pool() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    work_cv_.notify_all();
    for (std::thread& thread : threads_) thread.join();
  }

  /// Runs task(i) for every i in [0, count); returns when all are done.
  /// A task that throws poisons the batch: the first exception is rethrown
  /// here after every worker has drained its claims.
  void run(std::size_t count, const std::function<void(std::size_t)>& task) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      task_ = &task;
      count_ = count;
      next_.store(0, std::memory_order_relaxed);
      active_ = threads_.size();
      error_ = nullptr;
      ++generation_;
    }
    work_cv_.notify_all();
    claim_loop(task, count);
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [this] { return active_ == 0; });
    if (error_ != nullptr) {
      std::exception_ptr error = std::exchange(error_, nullptr);
      lock.unlock();
      std::rethrow_exception(error);
    }
  }

 private:
  void claim_loop(const std::function<void(std::size_t)>& task,
                  std::size_t count) {
    for (;;) {
      const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        task(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(mutex_);
        if (error_ == nullptr) error_ = std::current_exception();
      }
    }
  }

  void worker_loop() {
    std::uint64_t seen = 0;
    for (;;) {
      const std::function<void(std::size_t)>* task = nullptr;
      std::size_t count = 0;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        work_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
        if (stop_) return;
        seen = generation_;
        task = task_;
        count = count_;
      }
      claim_loop(*task, count);
      {
        const std::lock_guard<std::mutex> lock(mutex_);
        --active_;
        if (active_ == 0) done_cv_.notify_one();
      }
    }
  }

  std::vector<std::thread> threads_;
  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::uint64_t generation_ = 0;
  bool stop_ = false;
  const std::function<void(std::size_t)>* task_ = nullptr;
  std::size_t count_ = 0;
  std::size_t active_ = 0;  // Workers still claiming from the current batch.
  std::exception_ptr error_ = nullptr;
  std::atomic<std::size_t> next_{0};
};

}  // namespace

void LogicalProcess::send(ShardId to, TimePoint when, EventFn fn,
                          const char* label) {
  ShardMessage message;
  message.when = when;
  message.source = id_;
  message.index = next_index_++;
  message.label = label;
  message.fn = std::move(fn);
  owner_->enqueue(id_, to, std::move(message));
}

ShardedSimulator::ShardedSimulator() : ShardedSimulator(Options{}) {}

ShardedSimulator::ShardedSimulator(Options options) : options_(options) {
  if (options_.lookahead <= Duration{0}) {
    throw std::invalid_argument{
        "ShardedSimulator: lookahead must be positive"};
  }
}

ShardedSimulator::~ShardedSimulator() = default;

LogicalProcess& ShardedSimulator::add_shard(Simulator& sim) {
  if (running_ || !lanes_.empty()) {
    throw std::logic_error{
        "ShardedSimulator::add_shard: shards must be added before the first "
        "send or run"};
  }
  const auto id = static_cast<ShardId>(shards_.size());
  shards_.push_back(
      std::unique_ptr<LogicalProcess>(new LogicalProcess(*this, sim, id)));
  return *shards_.back();
}

void ShardedSimulator::ensure_lanes() {
  const std::size_t shard_total = shards_.size();
  if (lanes_.size() == shard_total * shard_total) return;
  lanes_.resize(shard_total * shard_total);
  scratch_.resize(shard_total);
  fired_per_shard_.resize(shard_total, 0);
  delivered_per_shard_.resize(shard_total, 0);
}

void ShardedSimulator::enqueue(ShardId from, ShardId to,
                               ShardMessage message) {
  if (to >= shards_.size()) {
    throw std::out_of_range{"LogicalProcess::send: unknown target shard"};
  }
  if (!message.fn) {
    throw std::invalid_argument{"LogicalProcess::send: empty callback"};
  }
  if (in_window_ && message.when < window_end_) {
    // The conservative contract: a send issued inside a window must not be
    // able to land in timeline the fleet is concurrently executing.
    throw std::logic_error{
        "LogicalProcess::send: delivery time violates the lookahead window"};
  }
  ensure_lanes();
  lanes_[static_cast<std::size_t>(from) * shards_.size() + to].push_back(
      std::move(message));
}

void ShardedSimulator::deliver_into(std::size_t target) {
  if (lanes_.empty()) return;
  const std::size_t shard_total = shards_.size();
  std::vector<ShardMessage>& batch = scratch_[target];
  batch.clear();
  for (std::size_t source = 0; source < shard_total; ++source) {
    std::vector<ShardMessage>& lane = lanes_[source * shard_total + target];
    for (ShardMessage& message : lane) batch.push_back(std::move(message));
    lane.clear();
  }
  if (batch.empty()) return;
  // (when, source, index) is a total order -- index is unique per source --
  // so even an unstable sort yields one well-defined sequence, independent
  // of which threads filled which lanes in what real-time order.
  std::sort(batch.begin(), batch.end(),
            [](const ShardMessage& a, const ShardMessage& b) {
              if (a.when != b.when) return a.when < b.when;
              if (a.source != b.source) return a.source < b.source;
              return a.index < b.index;
            });
  Simulator& sim = shards_[target]->simulator();
  for (ShardMessage& message : batch) {
    // Messages buffered outside any window (setup wiring, post-run teardown
    // publishes) may target a shard whose clock already passed the modeled
    // delivery time -- shard clocks drift apart between run() calls.  Those
    // deliver "now", like a consumer reading a bus backlog; the clamp is a
    // pure function of virtual clocks, so it cannot vary with thread count.
    // Inside a window it never engages: when >= window_end > now.
    const TimePoint when = std::max(message.when, sim.now());
    sim.schedule_at(when, std::move(message.fn), message.label);
  }
  delivered_per_shard_[target] += batch.size();
  batch.clear();
}

std::uint64_t ShardedSimulator::messages_delivered() const {
  std::uint64_t total = 0;
  for (const std::uint64_t delivered : delivered_per_shard_) {
    total += delivered;
  }
  return total;
}

std::size_t ShardedSimulator::run(unsigned threads, const RunLimits& limits) {
  if (threads == 0) {
    throw std::invalid_argument{"ShardedSimulator::run: threads must be >= 1"};
  }
  if (running_) {
    throw std::logic_error{"ShardedSimulator::run: not re-entrant"};
  }
  if (shards_.empty()) return 0;
  ensure_lanes();

  const std::size_t shard_total = shards_.size();
  std::size_t fired_before = 0;
  for (const std::size_t fired : fired_per_shard_) fired_before += fired;

  running_ = true;
  struct RunningGuard {
    ShardedSimulator& self;
    ~RunningGuard() {
      self.running_ = false;
      self.in_window_ = false;  // A throw mid-window must not wedge send().
    }
  } guard{*this};

  // Messages buffered during setup (bridge wiring, pre-run sends) join the
  // queues before the first window opens.
  for (std::size_t target = 0; target < shard_total; ++target) {
    deliver_into(target);
  }

  const unsigned useful =
      static_cast<unsigned>(std::min<std::size_t>(threads, shard_total));
  std::unique_ptr<Pool> pool;
  if (useful > 1) pool = std::make_unique<Pool>(useful - 1);
  const auto parallel_for = [&](const std::function<void(std::size_t)>& task) {
    if (pool == nullptr) {
      for (std::size_t i = 0; i < shard_total; ++i) task(i);
      return;
    }
    pool->run(shard_total, task);
  };

  for (;;) {
    // Phase 0 (driver thread): find the earliest pending event fleet-wide.
    std::optional<TimePoint> t_min;
    for (const std::unique_ptr<LogicalProcess>& lp : shards_) {
      const std::optional<TimePoint> next = lp->simulator().peek_next_time();
      if (next.has_value() && (!t_min.has_value() || *next < *t_min)) {
        t_min = *next;
      }
    }
    if (!t_min.has_value()) break;  // Every queue empty: done.
    if (limits.horizon.has_value() && *t_min > *limits.horizon) break;

    // Phase 1 (parallel): drain every shard through the window.  Sends
    // issued here land in lanes, not queues, so shards stay independent.
    window_end_ = *t_min + options_.lookahead;
    in_window_ = true;
    parallel_for([this](std::size_t s) {
      fired_per_shard_[s] += shards_[s]->simulator().run_before(window_end_);
    });
    in_window_ = false;

    // Phase 2 (parallel): merge mailbox lanes into target queues in
    // (when, source, index) order.  Each target is handled by exactly one
    // thread; the barrier after phase 1 makes every lane write visible.
    parallel_for([this](std::size_t s) { deliver_into(s); });
    ++windows_;

    if (limits.stop && limits.stop()) break;
  }

  std::size_t fired_after = 0;
  for (const std::size_t fired : fired_per_shard_) fired_after += fired;
  return fired_after - fired_before;
}

}  // namespace xanadu::sim
