#include "sim/race_detector.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

#include "common/rng.hpp"
#include "sim/audit.hpp"
#include "sim/probe.hpp"

namespace xanadu::sim {

namespace {

/// All non-identity permutations of {0..n-1}, in lexicographic order.
std::vector<std::vector<std::uint32_t>> all_permutations(std::size_t n) {
  std::vector<std::uint32_t> order(n);
  for (std::uint32_t i = 0; i < n; ++i) order[i] = i;
  std::vector<std::vector<std::uint32_t>> out;
  while (std::next_permutation(order.begin(), order.end())) {
    out.push_back(order);  // next_permutation skips the identity start.
  }
  return out;
}

/// `count` seeded Fisher-Yates shuffles of {0..n-1}, identity excluded
/// (re-drawn), deduplicated so a group is never replayed twice under the
/// same order.
std::vector<std::vector<std::uint32_t>> sampled_permutations(
    std::size_t n, std::size_t count, common::Rng& rng) {
  std::vector<std::vector<std::uint32_t>> out;
  std::vector<std::uint32_t> identity(n);
  for (std::uint32_t i = 0; i < n; ++i) identity[i] = i;
  // Bounded attempts: for tiny n there may be fewer distinct non-identity
  // permutations than requested.
  for (std::size_t attempt = 0; attempt < count * 8 && out.size() < count;
       ++attempt) {
    std::vector<std::uint32_t> order = identity;
    for (std::size_t i = n; i > 1; --i) {
      const std::size_t j = rng.uniform_int(i);
      std::swap(order[i - 1], order[j]);
    }
    if (order == identity) continue;
    if (std::find(out.begin(), out.end(), order) != out.end()) continue;
    out.push_back(std::move(order));
  }
  return out;
}

std::string divergent_probe_for(const RunObservation& baseline,
                                const RunObservation& permuted,
                                std::size_t group_index) {
  if (group_index >= baseline.ties.groups.size() ||
      group_index >= permuted.ties.groups.size()) {
    return {};
  }
  return first_probe_divergence(
      baseline.ties.groups[group_index].probes_after,
      permuted.ties.groups[group_index].probes_after);
}

}  // namespace

RaceReport check_tie_races(const ScenarioRunner& runner,
                           const RaceCheckOptions& options) {
  RaceReport report;
  const RunObservation baseline = runner(nullptr);
  report.groups_examined = baseline.ties.groups.size();
  common::Rng sample_rng{options.sample_seed};

  for (const TieGroup& group : baseline.ties.groups) {
    const std::size_t n = group.events.size();
    XANADU_AUDIT(n > 1, "tie recorder surfaced a singleton group");
    if (n < 2) continue;

    const std::vector<std::vector<std::uint32_t>> orders =
        n <= options.exhaustive_group_limit
            ? all_permutations(n)
            : sampled_permutations(n, options.sampled_permutations,
                                   sample_rng);

    for (const std::vector<std::uint32_t>& order : orders) {
      if (options.max_replays != 0 &&
          report.permutations_run >= options.max_replays) {
        report.truncated = true;
        return report;
      }
      TiePermutation permutation;
      permutation.group_index = group.index;
      permutation.order = order;
      const RunObservation permuted = runner(&permutation);
      ++report.permutations_run;
      if (permuted.digest == baseline.digest) continue;

      TieRace race;
      race.group_index = group.index;
      race.when = group.when;
      race.labels.reserve(n);
      for (const TieEvent& event : group.events) {
        race.labels.push_back(event.label);
      }
      race.divergent_order = order;
      race.baseline_digest = baseline.digest;
      race.permuted_digest = permuted.digest;
      race.first_divergent_probe =
          divergent_probe_for(baseline, permuted, group.index);
      report.races.push_back(std::move(race));
      if (options.stop_group_after_first_race) break;
    }
  }
  return report;
}

std::string RaceReport::to_string() const {
  std::ostringstream out;
  out << "race check: " << groups_examined << " tie group(s), "
      << permutations_run << " permutation replay(s)";
  if (truncated) out << " [truncated by max_replays]";
  out << ": " << (races.empty() ? "no order-dependence detected"
                                : std::to_string(races.size()) +
                                      " race(s) detected")
      << "\n";
  for (const TieRace& race : races) {
    out << "  tie group #" << race.group_index << " at t="
        << race.when.micros() << "us {";
    for (std::size_t i = 0; i < race.labels.size(); ++i) {
      if (i > 0) out << ", ";
      out << (race.labels[i].empty() ? "<unlabeled>" : race.labels[i]);
    }
    out << "} diverges under order [";
    for (std::size_t i = 0; i < race.divergent_order.size(); ++i) {
      if (i > 0) out << ", ";
      out << race.divergent_order[i];
    }
    out << "]: digest " << std::hex << race.baseline_digest << " -> "
        << race.permuted_digest << std::dec;
    if (!race.first_divergent_probe.empty()) {
      out << "; first divergent probe: " << race.first_divergent_probe;
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace xanadu::sim
