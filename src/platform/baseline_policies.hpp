#pragma once

// Competitor provisioning policies for the policy lab (ISSUE 8 tentpole).
//
// Both policies are self-contained control planes written purely against the
// PolicyView observation surface and the engine's public policy-facing
// operations -- no engine internals, no platform state of their own beyond
// what any external controller could keep.  They exist so the tournament
// benchmark (bench/policy_tournament) can pit Xanadu's chain-aware
// speculation against the two standard function-granular alternatives from
// the literature:
//
//   * PoolPolicy        -- fixed-size per-function warm pools with
//                          deterministic refill, after the "pool of
//                          pre-warmed containers" design of Lin & Glikson,
//                          "Mitigating Cold Starts in Serverless Platforms:
//                          A Pool-Based Approach" (arXiv:1903.12221).
//   * MpcHorizonPolicy  -- rolling-horizon model-predictive control: a
//                          windowed arrival-rate estimate feeds a per-tick
//                          provision/evict schedule, in the spirit of
//                          Nguyen et al.'s MPC-based resource provisioning
//                          for serverless chains (arXiv:2508.07640).
//
// Neither policy draws randomness: every decision is arithmetic over the
// view, so both are trivially replay-deterministic and flow_lint-clean.

#include <cstddef>
#include <cstdint>
#include <map>

#include "common/ids.hpp"
#include "platform/policy.hpp"
#include "sim/time.hpp"

namespace xanadu::platform {

struct PoolPolicyOptions {
  /// Warm workers to keep pooled per function (in-flight provisions count
  /// toward the target, so a refill never over-provisions).
  std::size_t pool_size = 2;
  /// Also evict down to pool_size when executions park surplus workers
  /// (keep-alive would reclaim them eventually; eviction makes the pool
  /// bound crisp and the resource ledger honest about the policy's cost).
  bool evict_surplus = true;
};

/// Fixed per-function warm pools (Lin & Glikson, arXiv:1903.12221): on every
/// arrival, and again whenever an execution consumes a pooled worker, top
/// each function of the workflow back up to `pool_size` warm-or-provisioning
/// workers.  Chain-oblivious by design -- every node of every seen workflow
/// gets the same pool depth regardless of branch probabilities.
class PoolPolicy final : public ProvisionPolicy {
 public:
  explicit PoolPolicy(PoolPolicyOptions options = {}) : options_(options) {}

  void on_attach(PlatformEngine& engine, const PolicyView& view) override;
  void on_request_submitted(PlatformEngine& engine, RequestContext& ctx) override;
  void on_node_exec_start(PlatformEngine& engine, RequestContext& ctx,
                          NodeId node) override;
  void on_node_completed(PlatformEngine& engine, RequestContext& ctx,
                         NodeId node) override;

  [[nodiscard]] const PoolPolicyOptions& options() const { return options_; }

 private:
  /// Tops the node's function up to pool_size warm-or-provisioning workers.
  /// `borrowed` workers are executing right now but will re-park into this
  /// pool, so they count as coverage.
  void refill(PlatformEngine& engine, WorkflowId workflow, NodeId node,
              std::size_t borrowed = 0);

  PoolPolicyOptions options_;
  const PolicyView* view_ = nullptr;
};

struct MpcHorizonOptions {
  /// Re-solve period: the schedule is recomputed at most once per horizon
  /// tick (lazily, on the first lifecycle hook past the tick boundary --
  /// the policy schedules no events of its own, so an idle platform drains).
  sim::Duration horizon = sim::Duration::from_millis(2000);
  /// Arrival-rate estimation window (rolling, from PolicyView history).
  sim::Duration window = sim::Duration::from_millis(10000);
  /// Head-room multiplier on the Little's-law worker demand.
  double safety_factor = 1.2;
  /// Per-function cap on the provision target (keeps a rate spike from
  /// grabbing the whole cluster).
  std::size_t max_pool = 4;
  /// Evict warm workers above the solved target (the schedule's evict half).
  bool evict_to_target = true;
};

/// Rolling-horizon MPC provisioning (after Nguyen et al., arXiv:2508.07640):
/// each horizon tick solves, per function, a Little's-law demand target
///   target = ceil(lambda_wf * (exec + provision) * safety)
/// from the windowed arrival-rate estimate and the platform's online
/// exec/provision estimates, then emits the provision/evict actions that move
/// the warm pool toward the target.  Purely arithmetic -- the estimator
/// draws no randomness, so replays are bit-identical by construction.
class MpcHorizonPolicy final : public ProvisionPolicy {
 public:
  explicit MpcHorizonPolicy(MpcHorizonOptions options = {})
      : options_(options) {}

  void on_attach(PlatformEngine& engine, const PolicyView& view) override;
  void on_request_submitted(PlatformEngine& engine, RequestContext& ctx) override;
  void on_node_completed(PlatformEngine& engine, RequestContext& ctx,
                         NodeId node) override;

  [[nodiscard]] const MpcHorizonOptions& options() const { return options_; }
  /// Horizon ticks solved so far (tournament sanity counter).
  [[nodiscard]] std::uint64_t solves() const { return solves_; }

 private:
  /// Recomputes the provision/evict schedule if a horizon tick has passed.
  void maybe_solve(PlatformEngine& engine);
  void solve(PlatformEngine& engine);

  MpcHorizonOptions options_;
  const PolicyView* view_ = nullptr;
  /// Workflows observed so far, ordered by id so the per-tick solve walks
  /// them (and their nodes) in a replay-stable order.
  std::map<WorkflowId, std::size_t> seen_workflows_;
  sim::TimePoint next_tick_{};
  std::uint64_t solves_ = 0;
};

}  // namespace xanadu::platform
