#pragma once

// In-simulation message bus -- the reproduction's stand-in for the Apache
// Kafka deployment of paper Section 4 ("We use Apache Kafka for internal
// communication between the Dispatch Manager and the Dispatch Daemon and
// also for state management of Xanadu workers").
//
// Topics carry opaque string payloads.  Publishing enqueues a delivery event
// per subscriber after the bus latency (plus optional jitter); per topic,
// deliveries preserve publish order (Kafka partition semantics).  Handlers
// run in virtual time, so bus latency is part of every control-plane
// round-trip that uses it -- notably the Dispatch Manager -> Dispatch Daemon
// provisioning commands.
//
// Topic names are interned to dense TopicIds on first use: the publish hot
// path indexes a vector instead of hashing the topic string, and the
// delivery closure captures an 8-byte id instead of a std::string, which
// keeps it inside sim::EventFn's inline buffer (no per-delivery allocation).
//
// Sharded deployments (sim/sharded.hpp) additionally *bridge* topics across
// shard boundaries: attach_shard() binds the bus to its shard's logical
// process, and bridge_topic() forwards every publish on a local topic to a
// topic of a bus on another shard, routed through the cross-shard mailbox
// with a latency of at least the driver's lookahead.  Bridged traffic is how
// per-tenant shards feed the fleet-control shard's worker-state view without
// sharing any mutable state.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/ids.hpp"
#include "common/interner.hpp"
#include "common/rng.hpp"
#include "sim/fault_plan.hpp"
#include "sim/shard.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace xanadu::sim {
class LogicalProcess;
}

namespace xanadu::platform {

struct BusMessage {
  std::string topic;
  std::string payload;
  /// Monotonic per-topic sequence number (assigned by the bus).
  std::uint64_t offset = 0;
  /// Virtual time the message was published.
  sim::TimePoint published{};
};

using BusHandler = std::function<void(const BusMessage&)>;

/// Subscription handle; used to unsubscribe.
struct SubscriptionTag {};
using SubscriptionId = common::Id<SubscriptionTag>;

/// Dense handle for an interned topic name.  Assigned in first-use order,
/// so ids are deterministic for a deterministic call sequence.
struct TopicTag {};
using TopicId = common::Id<TopicTag>;

class MessageBus {
 public:
  struct Options {
    /// One-way delivery latency.
    sim::Duration latency = sim::Duration::from_millis(3);
    /// Stddev of delivery jitter.  Jitter never reorders messages within a
    /// topic: deliveries are serialised per topic like Kafka partitions.
    sim::Duration jitter = sim::Duration::zero();
  };

  MessageBus(sim::Simulator& simulator, Options options, common::Rng rng);

  /// Interns `topic`, creating it if unseen, and returns its dense id.
  /// Callers on hot paths can intern once and use the id overloads below.
  TopicId intern(const std::string& topic);

  /// Subscribes `handler` to `topic`.  Returns a handle for unsubscribe().
  SubscriptionId subscribe(const std::string& topic, BusHandler handler);
  SubscriptionId subscribe(TopicId topic, BusHandler handler);

  /// Removes a subscription; returns false if the id is unknown.
  bool unsubscribe(SubscriptionId id);

  /// Publishes a payload; every current subscriber of the topic receives it
  /// after the bus latency.  Returns the message's per-topic offset.
  std::uint64_t publish(const std::string& topic, std::string payload);
  std::uint64_t publish(TopicId topic, std::string payload);

  /// Wires a fault plan into the bus.  Each publish then consults the plan
  /// once: the message may be dropped (never delivered), duplicated
  /// (delivered twice, in order), or held back by the plan's extra delay.
  /// Pass nullptr to detach.  The plan must outlive the bus.
  void set_fault_plan(sim::FaultPlan* plan) { faults_ = plan; }

  // -- Cross-shard bridging (see sim/sharded.hpp) ---------------------------

  /// Binds this bus to its shard's logical process; required before
  /// bridge_topic() in either direction.  `lp` must own this bus's
  /// simulator and must outlive the bus.
  void attach_shard(sim::LogicalProcess& lp);
  [[nodiscard]] bool sharded() const { return lp_ != nullptr; }

  /// Forwards every subsequent publish on `topic` to `remote_topic` of
  /// `remote`, a bus attached to a *different* shard of the same
  /// ShardedSimulator.  The copy crosses the shard mailbox and reaches the
  /// remote bus after `latency`, which must be at least the driver's
  /// lookahead (the conservative window length).  Drop faults suppress
  /// forwarding (the broker lost the message); duplicate and delay faults
  /// stay local-delivery artefacts.  Bridges do not chain: a bridged-in
  /// message is delivered to the remote topic's subscribers only, never
  /// re-forwarded.
  void bridge_topic(TopicId topic, MessageBus& remote, TopicId remote_topic,
                    sim::Duration latency);
  void bridge_topic(const std::string& topic, MessageBus& remote,
                    const std::string& remote_topic, sim::Duration latency);

  /// Delivers a message forwarded from another shard to `topic`'s local
  /// subscribers at the current virtual time.  Invoked by the bridge closure
  /// once the mailbox merge lands it on this shard; not meant for direct
  /// use.  The message consumes a local per-topic offset.
  void deliver_bridged(TopicId topic, std::string payload);

  [[nodiscard]] std::size_t subscriber_count(const std::string& topic) const;
  [[nodiscard]] std::size_t topic_count() const { return topics_.size(); }
  [[nodiscard]] std::uint64_t published_count() const { return published_; }
  [[nodiscard]] std::uint64_t delivered_count() const { return delivered_; }
  /// Messages published but never scheduled for delivery (drop faults).
  [[nodiscard]] std::uint64_t dropped_count() const { return dropped_; }
  /// Messages forwarded to / received from bridged topics on other shards.
  [[nodiscard]] std::uint64_t bridged_out_count() const { return bridged_out_; }
  [[nodiscard]] std::uint64_t bridged_in_count() const { return bridged_in_; }

 private:
  struct Subscription {
    SubscriptionId id;
    BusHandler handler;
  };

  /// One cross-shard forwarding edge of a topic.
  struct Bridge {
    MessageBus* remote = nullptr;
    TopicId remote_topic;
    sim::ShardId target = sim::kNoShard;
    sim::Duration latency;
  };

  struct Topic {
    std::vector<Subscription> subscriptions;
    std::vector<Bridge> bridges;
    std::uint64_t next_offset = 0;
    /// Earliest time the next delivery may fire, per subscriber ordering.
    sim::TimePoint last_delivery{};
  };

  void schedule_delivery(TopicId topic, sim::TimePoint when,
                         const std::shared_ptr<BusMessage>& message);

  sim::Simulator& sim_;
  Options options_;
  common::Rng rng_;
  sim::FaultPlan* faults_ = nullptr;
  /// Shard binding for cross-shard bridges; nullptr in unsharded runs.
  sim::LogicalProcess* lp_ = nullptr;
  /// Topic names live in the shared interner (common::StringInterner);
  /// common::Symbol values double as dense indices into topics_.  Touched
  /// only on intern (cold path); publish/delivery index topics_ directly.
  common::StringInterner names_;
  std::vector<Topic> topics_;
  common::IdGenerator<SubscriptionId> subscription_ids_;
  std::uint64_t published_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t bridged_out_ = 0;
  std::uint64_t bridged_in_ = 0;
};

}  // namespace xanadu::platform
