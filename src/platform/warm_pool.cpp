#include "platform/warm_pool.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/hash.hpp"
#include "sim/audit.hpp"

namespace xanadu::platform {

WarmPoolManager::WarmPoolManager(sim::Simulator& sim,
                                 cluster::Cluster& cluster,
                                 const PlatformCalibration& calib,
                                 EventPublisher publish)
    : sim_(sim), cluster_(cluster), calib_(calib), publish_(std::move(publish)) {}

std::optional<WorkerId> WarmPoolManager::acquire(FunctionId fn) {
  auto it = warm_.find(fn);
  if (it == warm_.end() || it->second.empty()) return std::nullopt;
  const WorkerId worker = it->second.front();
  it->second.pop_front();
  cancel_keep_alive(worker);
  return worker;
}

void WarmPoolManager::park(FunctionId fn, WorkerId worker) {
  warm_[fn].push_back(worker);
  schedule_keep_alive(fn, worker);
}

void WarmPoolManager::schedule_keep_alive(FunctionId fn, WorkerId worker) {
  const EventId event = sim_.schedule_after(
      calib_.keep_alive,
      [this, fn, worker] {
        keep_alive_events_.erase(worker);
        reclaim(fn, worker);
      },
      "warm_pool.keep_alive");
  keep_alive_events_[worker] = event;
}

void WarmPoolManager::cancel_keep_alive(WorkerId worker) {
  auto it = keep_alive_events_.find(worker);
  if (it != keep_alive_events_.end()) {
    sim_.cancel(it->second);
    keep_alive_events_.erase(it);
  }
}

void WarmPoolManager::reclaim(FunctionId fn, WorkerId worker) {
  auto pool = warm_.find(fn);
  if (pool == warm_.end()) return;
  auto it = std::find(pool->second.begin(), pool->second.end(), worker);
  if (it == pool->second.end()) return;  // Already reused or reclaimed.
  pool->second.erase(it);
  cancel_keep_alive(worker);
  publish_(WorkerEventKind::Dead, worker);
  cluster_.destroy_worker(worker, sim_.now());
}

std::size_t WarmPoolManager::discard_all(FunctionId fn) {
  auto pool = warm_.find(fn);
  if (pool == warm_.end()) return 0;
  std::size_t destroyed = 0;
  while (!pool->second.empty()) {
    const WorkerId worker = pool->second.front();
    pool->second.pop_front();
    cancel_keep_alive(worker);
    publish_(WorkerEventKind::Dead, worker);
    cluster_.destroy_worker(worker, sim_.now());
    ++destroyed;
  }
  return destroyed;
}

std::size_t WarmPoolManager::shrink_to(FunctionId fn, std::size_t target) {
  auto pool = warm_.find(fn);
  if (pool == warm_.end()) return 0;
  std::size_t destroyed = 0;
  while (pool->second.size() > target) {
    const WorkerId worker = pool->second.front();
    pool->second.pop_front();
    cancel_keep_alive(worker);
    publish_(WorkerEventKind::Dead, worker);
    cluster_.destroy_worker(worker, sim_.now());
    ++destroyed;
  }
  return destroyed;
}

void WarmPoolManager::flush_all() {
  // Teardown order is observable (bus events, ledger float accumulation), so
  // collect the unordered map's keys and flush in sorted order.
  std::vector<FunctionId> ids;
  ids.reserve(warm_.size());
  for (auto& [fn, pool] : warm_) {  // lint:allow(unordered-iteration)
    (void)pool;
    ids.push_back(fn);
  }
  std::sort(ids.begin(), ids.end());
  for (const FunctionId fn : ids) {
    discard_all(fn);
  }
  // Workers mid-rebind belong to no pool (popped at rebind start), so the
  // sweep above cannot see them.  A flush means "no warm sandbox survives":
  // cancel each pending completion and destroy the sandbox now, in sorted
  // worker-id order so teardown stays replay-deterministic.
  std::vector<WorkerId> rebinding;
  rebinding.reserve(rebinding_.size());
  for (const auto& [worker, inflight] : rebinding_) {  // lint:allow(unordered-iteration)
    (void)inflight;
    rebinding.push_back(worker);
  }
  std::sort(rebinding.begin(), rebinding.end());
  for (const WorkerId worker : rebinding) {
    const InflightRebind inflight = rebinding_.at(worker);
    sim_.cancel(inflight.completion);
    rebinding_.erase(worker);
    auto it = inbound_rebinds_.find(inflight.target);
    if (it != inbound_rebinds_.end() && it->second > 0) --it->second;
    if (cluster_.find_worker(worker) != nullptr) {
      publish_(WorkerEventKind::Dead, worker);
      cluster_.destroy_worker(worker, sim_.now());
    }
  }
}

bool WarmPoolManager::remove_if_pooled(FunctionId fn, WorkerId worker) {
  auto pool = warm_.find(fn);
  if (pool == warm_.end()) return false;
  auto it = std::find(pool->second.begin(), pool->second.end(), worker);
  if (it == pool->second.end()) return false;
  pool->second.erase(it);
  return true;
}

bool WarmPoolManager::evict_oldest() {
  // Evict the warm worker that has been idle the longest, platform-wide.
  // The scan reduces over an unordered map, but the (idle_since, worker id)
  // ordering is total, so the victim is independent of iteration order.
  FunctionId victim_fn{};
  WorkerId victim{};
  sim::TimePoint oldest{};
  bool found = false;
  for (auto& [fn, pool] : warm_) {  // lint:allow(unordered-iteration)
    for (const WorkerId id : pool) {
      const cluster::Worker* worker = cluster_.find_worker(id);
      XANADU_INVARIANT(worker != nullptr, "warm pool references a dead worker");
      if (!found || worker->idle_since() < oldest ||
          (worker->idle_since() == oldest && id < victim)) {
        oldest = worker->idle_since();
        victim = id;
        victim_fn = fn;
        found = true;
      }
    }
  }
  if (!found) return false;
  reclaim(victim_fn, victim);
  return true;
}

bool WarmPoolManager::rebind(FunctionId from, FunctionId to) {
  auto pool = warm_.find(from);
  if (pool == warm_.end() || pool->second.empty()) return false;
  const WorkerId worker_id = pool->second.front();
  pool->second.pop_front();
  cancel_keep_alive(worker_id);
  cluster::Worker* worker = cluster_.find_worker(worker_id);
  XANADU_INVARIANT(worker != nullptr, "rebind_warm_worker: worker vanished");
  worker->rebind(to);
  ++inbound_rebinds_[to];
  // Code reload: the sandbox stays idle for the rebind latency, then joins
  // the target function's warm pool.  The completion event is tracked in
  // rebinding_ so flush_all() can cancel it and tear the sandbox down -- an
  // untracked event would let the worker re-park itself after a flush.
  const EventId completion = sim_.schedule_after(
      calib_.rebind_latency,
      [this, to, worker_id] {
        rebinding_.erase(worker_id);
        auto it = inbound_rebinds_.find(to);
        if (it != inbound_rebinds_.end() && it->second > 0) --it->second;
        if (cluster_.find_worker(worker_id) != nullptr) {
          park(to, worker_id);
        }
      },
      "warm_pool.rebind_done");
  rebinding_.emplace(worker_id, InflightRebind{to, completion});
  return true;
}

std::size_t WarmPoolManager::warm_count(FunctionId fn) const {
  auto it = warm_.find(fn);
  return it == warm_.end() ? 0 : it->second.size();
}

std::size_t WarmPoolManager::inbound_rebinds(FunctionId fn) const {
  auto it = inbound_rebinds_.find(fn);
  return it == inbound_rebinds_.end() ? 0 : it->second;
}

void WarmPoolManager::register_probes(sim::ProbeRegistry& probes) const {
  // Sums over unordered maps are order-insensitive reductions, so the
  // iteration order cannot leak into the sampled values.
  probes.add("warm_pool.pooled_workers", [this] {
    std::uint64_t total = 0;
    // lint:allow(unordered-iteration) order-insensitive sum
    for (const auto& [fn, pool] : warm_) total += pool.size();
    return total;
  });
  probes.add("warm_pool.keep_alive_timers",
             [this] { return static_cast<std::uint64_t>(keep_alive_events_.size()); });
  probes.add("warm_pool.inbound_rebinds", [this] {
    std::uint64_t total = 0;
    // lint:allow(unordered-iteration) order-insensitive sum
    for (const auto& [fn, count] : inbound_rebinds_) total += count;
    return total;
  });
}

std::uint64_t WarmPoolManager::membership_digest() const {
  std::vector<FunctionId> fns;
  fns.reserve(warm_.size());
  // Sorted below: the fold must not depend on the map's iteration order.
  for (const auto& [fn, pool] : warm_) {  // lint:allow(unordered-iteration)
    if (!pool.empty()) fns.push_back(fn);
  }
  std::sort(fns.begin(), fns.end());
  std::uint64_t digest = common::kFnvOffsetBasis;
  for (const FunctionId fn : fns) {
    digest = common::fnv1a_u64(fn.value(), digest);
    for (const WorkerId worker : warm_.at(fn)) {
      digest = common::fnv1a_u64(worker.value(), digest);
    }
  }
  return digest;
}

}  // namespace xanadu::platform
