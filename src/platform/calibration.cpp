#include "platform/calibration.hpp"

namespace xanadu::platform {

using sim::Duration;

PlatformCalibration xanadu_calibration() {
  PlatformCalibration c;
  c.name = "xanadu";
  c.dispatch_latency = Duration::from_millis(25);
  c.orchestration_step = Duration::zero();
  // Docker default sandbox (3000 ms) + Xanadu's dispatch-daemon provisioning
  // pipeline brings a single cold hop to ~4.2 s (Figure 12a, length 1).
  // Lightweight sandboxes skip the container-specific pipeline work, giving
  // Figure 7's ~2.5x (vs processes) and ~2.9x (vs isolates) ratios.
  c.provision_extra = Duration::from_millis(1150);
  c.provision_extra_process = Duration::from_millis(470);
  c.provision_extra_isolate = Duration::from_millis(410);
  c.overhead_jitter = Duration::from_millis(4);
  c.keep_alive = Duration::from_minutes(10);
  return c;
}

PlatformCalibration knative_like_calibration() {
  PlatformCalibration c;
  c.name = "knative";
  c.dispatch_latency = Duration::from_millis(45);
  c.orchestration_step = Duration::zero();
  // Activator -> autoscaler -> pod creation pipeline: ~7.3 s per cold hop
  // (Figure 12a: 76.34 s of overhead at chain length 10).
  c.provision_extra = Duration::from_millis(4250);
  c.overhead_jitter = Duration::from_millis(12);
  c.keep_alive = Duration::from_minutes(10);
  return c;
}

PlatformCalibration openwhisk_like_calibration() {
  PlatformCalibration c;
  c.name = "openwhisk";
  c.dispatch_latency = Duration::from_millis(35);
  c.orchestration_step = Duration::zero();
  // Invoker pipeline: ~4.4 s per cold hop (Figure 12a: 44.38 s at length 10).
  c.provision_extra = Duration::from_millis(1350);
  c.overhead_jitter = Duration::from_millis(10);
  c.keep_alive = Duration::from_minutes(10);
  // Standalone mode keeps a small fixed container pool; provisioning a fifth
  // concurrent container forces a serialized eviction (Figure 4's jump at
  // chain length 5).
  c.max_live_workers = 4;
  c.eviction_penalty = Duration::from_millis(2200);
  return c;
}

namespace {

cluster::SandboxProfile cloud_microvm_profile(double base_ms, double jitter_ms) {
  cluster::SandboxProfile p;
  p.cold_start_base = Duration::from_millis(base_ms);
  p.cold_start_jitter = Duration::from_millis(jitter_ms);
  p.teardown = Duration::from_millis(30);
  p.provision_cpu_core_seconds = 0.25;
  p.idle_cpu_fraction = 0.005;
  p.memory_overhead_mb = 16.0;
  p.concurrency_penalty = 0.002;  // Hyperscaler fleets barely contend.
  p.validate();
  return p;
}

}  // namespace

PlatformCalibration asf_like_calibration() {
  PlatformCalibration c;
  c.name = "asf";
  c.dispatch_latency = Duration::from_millis(12);
  // Step Functions state-machine transition cost per step.
  c.orchestration_step = Duration::from_millis(65);
  c.provision_extra = Duration::from_millis(60);
  c.overhead_jitter = Duration::from_millis(8);
  // Figure 5: ASF reclaims workflow resources after ~10 minutes idle.
  c.keep_alive = Duration::from_minutes(10);
  // Firecracker-class microVMs: per-function cold start ~430 ms, yielding
  // ~48.5% overhead on a 5 x 500 ms chain (Figure 3).
  c.container_profile = cloud_microvm_profile(360.0, 70.0);
  return c;
}

PlatformCalibration adf_like_calibration() {
  PlatformCalibration c;
  c.name = "adf";
  c.dispatch_latency = Duration::from_millis(15);
  c.orchestration_step = Duration::from_millis(75);
  c.provision_extra = Duration::from_millis(45);
  // Section 2.3 notes ADF's latency is markedly less stable than ASF's.
  c.overhead_jitter = Duration::from_millis(40);
  // Figure 5: ADF's warm window extends to ~20 minutes.
  c.keep_alive = Duration::from_minutes(20);
  // ~41.2% cold overhead on the same chain (Figure 3) => slightly faster
  // per-function cold starts but higher jitter.
  c.container_profile = cloud_microvm_profile(270.0, 110.0);
  return c;
}

}  // namespace xanadu::platform
