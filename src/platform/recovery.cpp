#include "platform/recovery.hpp"

#include <cstdint>

#include "platform/provision_pipeline.hpp"
#include "platform/warm_pool.hpp"
#include "sim/audit.hpp"

namespace xanadu::platform {

RecoveryManager::RecoveryManager(sim::Simulator& sim, cluster::Cluster& cluster,
                                 const PlatformCalibration& calib,
                                 sim::FaultPlan& fault_plan, Hooks hooks)
    : sim_(sim),
      cluster_(cluster),
      calib_(calib),
      fault_plan_(fault_plan),
      hooks_(std::move(hooks)) {}

void RecoveryManager::wire(WarmPoolManager& warm_pool,
                           ProvisionPipeline& pipeline) {
  warm_pool_ = &warm_pool;
  pipeline_ = &pipeline;
}

void RecoveryManager::retry_node(RequestContext& ctx, NodeId node,
                                 const char* cause) {
  if (!calib_.recovery.enabled) {
    // No recovery: the node strands where it is.  Run harnesses detect the
    // stall (no pending events, request incomplete) and fail it cleanly.
    return;
  }
  NodeRecord& record = ctx.nodes[node.value()];
  ++record.retries;
  ++stats_.node_retries;
  if (record.retries > calib_.recovery.max_node_retries) {
    hooks_.fail_request(ctx, "node " + std::to_string(node.value()) + ": " +
                                 cause + "; retries exhausted");
    return;
  }
  // Back to Triggered (it was Triggered awaiting a worker, or Executing on
  // the worker that just died) and through dispatch again after backoff.
  record.status = NodeStatus::Triggered;
  record.worker = WorkerId{};
  const sim::Duration backoff =
      calib_.recovery.redispatch_backoff *
      static_cast<double>(std::uint64_t{1} << (record.retries - 1));
  const RequestId request = ctx.id;
  sim_.schedule_after(
      backoff,
      [this, request, node] {
        if (RequestContext* live = hooks_.find_request(request)) {
          hooks_.dispatch_node(*live, node);
        }
      },
      "recovery.redispatch");
}

void RecoveryManager::crash_execution(RequestContext& ctx, NodeId node) {
  NodeRecord& record = ctx.nodes[node.value()];
  XANADU_INVARIANT(record.status == NodeStatus::Executing,
                   "crash_execution: node was not executing");
  const WorkerId worker_id = record.worker;
  record.finish_event = EventId{};
  hooks_.publish_worker_event(WorkerEventKind::Dead, worker_id);
  cluster_.crash_worker(worker_id, sim_.now());
  retry_node(ctx, node, "worker crashed mid-execution");
}

void RecoveryManager::maybe_schedule_host_outage() {
  if (!fault_plan_.active() ||
      calib_.faults.host_outage_rate_per_hour <= 0.0 || outage_pending_) {
    return;
  }
  outage_pending_ = true;
  const auto outage = fault_plan_.next_host_outage(cluster_.host_count());
  const std::size_t victim = outage.second;
  sim_.schedule_after(
      outage.first,
      [this, victim] {
        outage_pending_ = false;
        apply_host_outage(victim);
        // Reschedule only while requests are live, so an idle simulator
        // drains instead of chaining outage events forever.
        if (hooks_.has_live_requests()) maybe_schedule_host_outage();
      },
      "recovery.host_outage");
}

void RecoveryManager::apply_host_outage(std::size_t host_index) {
  const common::HostId host{host_index};
  fault_plan_.count_host_outage();
  cluster_.set_host_available(host, false);
  for (const WorkerId worker : cluster_.workers_on_host(host)) {
    kill_worker_for_fault(worker);
  }
  sim_.schedule_after(
      calib_.faults.host_downtime,
      [this, host] { cluster_.set_host_available(host, true); },
      "recovery.host_back_up");
}

void RecoveryManager::kill_worker_for_fault(WorkerId worker_id) {
  cluster::Worker* worker = cluster_.find_worker(worker_id);
  if (worker == nullptr) return;
  ++stats_.outage_worker_kills;
  const FunctionId fn = worker->function();
  switch (worker->state()) {
    case cluster::WorkerState::Provisioning: {
      // In-flight build (or a command still on the bus): cancel whatever is
      // pending and retry the waiters elsewhere.
      std::optional<ProvisionWaiters> waiters =
          pipeline_->remove_for_outage(fn, worker_id);
      hooks_.publish_worker_event(WorkerEventKind::Dead, worker_id);
      cluster_.destroy_worker(worker_id, sim_.now());
      if (waiters) {
        for (auto [request, node] : *waiters) {
          if (RequestContext* ctx = hooks_.find_request(request)) {
            retry_node(*ctx, node, "host outage");
          }
        }
      }
      break;
    }
    case cluster::WorkerState::Warm: {
      // Pooled, or in a handoff / rebind window (then not in the pool; the
      // deferred lambdas notice the vanished worker and recover).
      warm_pool_->remove_if_pooled(fn, worker_id);
      warm_pool_->cancel_keep_alive(worker_id);
      hooks_.publish_worker_event(WorkerEventKind::Dead, worker_id);
      cluster_.destroy_worker(worker_id, sim_.now());
      break;
    }
    case cluster::WorkerState::Busy: {
      // Find the (request, node) executing on this worker; the engine's scan
      // is order-insensitive (at most one node matches).
      auto [owner_ctx, owner_node] = hooks_.find_executing(worker_id);
      hooks_.publish_worker_event(WorkerEventKind::Dead, worker_id);
      if (owner_ctx != nullptr) {
        NodeRecord& record = owner_ctx->nodes[owner_node.value()];
        sim_.cancel(record.finish_event);
        record.finish_event = EventId{};
        cluster_.crash_worker(worker_id, sim_.now());
        retry_node(*owner_ctx, owner_node, "host outage");
      } else {
        // Busy on behalf of an already-failed request (orphan): the pending
        // completion lambda will find the worker gone and no-op.
        cluster_.crash_worker(worker_id, sim_.now());
      }
      break;
    }
    case cluster::WorkerState::Dead:
      break;
  }
}

void RecoveryManager::register_probes(sim::ProbeRegistry& probes) const {
  probes.add("recovery.command_retries",
             [this] { return stats_.command_retries; });
  probes.add("recovery.builds_abandoned",
             [this] { return stats_.builds_abandoned; });
  probes.add("recovery.node_retries", [this] { return stats_.node_retries; });
  probes.add("recovery.requests_failed",
             [this] { return stats_.requests_failed; });
  probes.add("recovery.orphans_reaped",
             [this] { return stats_.orphans_reaped; });
  probes.add("recovery.outage_worker_kills",
             [this] { return stats_.outage_worker_kills; });
}

}  // namespace xanadu::platform
