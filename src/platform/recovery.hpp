#pragma once

// RecoveryManager: what the platform does when injected faults fire.
//
// Owns the retry/backoff machinery for nodes whose workers died, the lazy
// host-outage scheduler (one outage in flight at a time, drawn from the
// fault plan), the outage teardown of workers in every lifecycle stage, and
// the RecoveryStats ledger.  Inert on fault-free runs: nothing here executes
// unless the fault plan is active, so fault-free digests cannot move.
//
// The manager is request-shape-agnostic: in-flight requests are reached only
// through the narrow Hooks the engine wires (request lookup, node dispatch,
// clean failover).  The warm pool and provision pipeline are wired after
// construction via wire(), breaking the construction cycle between the three
// subsystems without any friend access.

#include <cstddef>
#include <functional>
#include <string>
#include <utility>

#include "cluster/cluster.hpp"
#include "common/ids.hpp"
#include "platform/calibration.hpp"
#include "platform/request.hpp"
#include "platform/worker_state.hpp"
#include "sim/fault_plan.hpp"
#include "sim/simulator.hpp"

namespace xanadu::platform {

class WarmPoolManager;
class ProvisionPipeline;

class RecoveryManager {
 public:
  struct Hooks {
    /// Looks up an in-flight request, or nullptr once completed/failed.
    std::function<RequestContext*(RequestId)> find_request;
    /// Re-dispatches a node whose retry backoff has elapsed.
    std::function<void(RequestContext&, NodeId)> dispatch_node;
    /// Fails a request cleanly (request lifecycle stays engine-owned).
    std::function<void(RequestContext&, std::string)> fail_request;
    /// Publishes a worker lifecycle event (no-op when the bus is disabled).
    std::function<void(WorkerEventKind, WorkerId)> publish_worker_event;
    /// The (request, node) currently executing on a worker, or {nullptr, {}}.
    std::function<std::pair<RequestContext*, NodeId>(WorkerId)> find_executing;
    /// True while any request is in flight (gates outage rescheduling so an
    /// idle simulator drains instead of chaining outage events forever).
    std::function<bool()> has_live_requests;
  };

  RecoveryManager(sim::Simulator& sim, cluster::Cluster& cluster,
                  const PlatformCalibration& calib, sim::FaultPlan& fault_plan,
                  Hooks hooks);

  RecoveryManager(const RecoveryManager&) = delete;
  RecoveryManager& operator=(const RecoveryManager&) = delete;

  /// Late-binds the sibling subsystems (both outlive the manager).
  void wire(WarmPoolManager& warm_pool, ProvisionPipeline& pipeline);

  /// Re-dispatches `node` after its worker died or capacity vanished, with
  /// exponential backoff; fails the request once retries are exhausted.
  /// With recovery disabled the node simply strands.
  void retry_node(RequestContext& ctx, NodeId node, const char* cause);

  /// Injected mid-execution worker crash: the sandbox dies, the node retries.
  void crash_execution(RequestContext& ctx, NodeId node);

  /// Draws the next outage from the plan and schedules it (one in flight at
  /// a time; rescheduled on fire only while requests are live).
  void maybe_schedule_host_outage();

  [[nodiscard]] const RecoveryStats& stats() const { return stats_; }
  [[nodiscard]] RecoveryStats& stats() { return stats_; }

  /// Registers this subsystem's race-detector probes ("recovery.*"): the
  /// RecoveryStats ledger counters.
  void register_probes(sim::ProbeRegistry& probes) const;

 private:
  void apply_host_outage(std::size_t host_index);
  /// Outage teardown of one worker, whatever lifecycle stage it is in.
  void kill_worker_for_fault(WorkerId worker);

  sim::Simulator& sim_;
  cluster::Cluster& cluster_;
  const PlatformCalibration& calib_;
  sim::FaultPlan& fault_plan_;
  Hooks hooks_;
  WarmPoolManager* warm_pool_ = nullptr;
  ProvisionPipeline* pipeline_ = nullptr;

  RecoveryStats stats_;
  /// True while a host-outage event is scheduled (one at a time).
  bool outage_pending_ = false;
};

}  // namespace xanadu::platform
