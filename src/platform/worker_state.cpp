#include "platform/worker_state.hpp"

#include <cstdio>
#include <stdexcept>

namespace xanadu::platform {

const char* to_string(WorkerEventKind kind) {
  switch (kind) {
    case WorkerEventKind::Provisioning: return "provisioning";
    case WorkerEventKind::Ready: return "ready";
    case WorkerEventKind::Busy: return "busy";
    case WorkerEventKind::Idle: return "idle";
    case WorkerEventKind::Dead: return "dead";
  }
  return "unknown";
}

std::string encode(const WorkerEvent& event) {
  char buffer[128];
  std::snprintf(buffer, sizeof buffer, "%u:%llu:%llu:%llu",
                static_cast<unsigned>(event.kind),
                static_cast<unsigned long long>(event.worker.value()),
                static_cast<unsigned long long>(event.function.value()),
                static_cast<unsigned long long>(event.host.value()));
  return buffer;
}

WorkerEvent decode(const std::string& payload) {
  unsigned kind = 0;
  unsigned long long worker = 0, function = 0, host = 0;
  if (std::sscanf(payload.c_str(), "%u:%llu:%llu:%llu", &kind, &worker,
                  &function, &host) != 4 ||
      kind > static_cast<unsigned>(WorkerEventKind::Dead)) {
    throw std::invalid_argument{"decode(WorkerEvent): malformed payload '" +
                                payload + "'"};
  }
  WorkerEvent event;
  event.kind = static_cast<WorkerEventKind>(kind);
  event.worker = common::WorkerId{worker};
  event.function = common::FunctionId{function};
  event.host = common::HostId{host};
  return event;
}

WorkerStateTracker::WorkerStateTracker(MessageBus& bus,
                                       const std::string& topic)
    : bus_(bus) {
  subscription_ = bus_.subscribe(topic, [this](const BusMessage& m) {
    apply(decode(m.payload));
  });
}

WorkerStateTracker::~WorkerStateTracker() { bus_.unsubscribe(subscription_); }

void WorkerStateTracker::apply(const WorkerEvent& event) {
  ++events_;
  if (event.kind == WorkerEventKind::Dead) {
    workers_.erase(event.worker);
    return;
  }
  workers_[event.worker] = Entry{event.kind, event.function};
}

std::size_t WorkerStateTracker::live_count() const { return workers_.size(); }

std::size_t WorkerStateTracker::count(WorkerEventKind state) const {
  std::size_t total = 0;
  // Commutative integer count: iteration order cannot affect the result.
  for (const auto& [id, entry] : workers_) {  // lint:allow(unordered-iteration)
    (void)id;
    if (entry.state == state) ++total;
  }
  return total;
}

std::size_t WorkerStateTracker::function_count(common::FunctionId fn) const {
  std::size_t total = 0;
  // Commutative integer count: iteration order cannot affect the result.
  for (const auto& [id, entry] : workers_) {  // lint:allow(unordered-iteration)
    (void)id;
    if (entry.function == fn) ++total;
  }
  return total;
}

}  // namespace xanadu::platform
