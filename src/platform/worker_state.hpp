#pragma once

// Worker state management over the control bus.
//
// Paper Section 4 uses Kafka "also for state management of Xanadu workers":
// the Dispatch Daemons publish worker lifecycle transitions, and the
// Dispatch Manager's view of the fleet is whatever has arrived on the bus.
// This module provides both halves: the event vocabulary the engine
// publishes on the "workers" topic, and WorkerStateTracker, a subscriber
// that maintains the eventually-consistent fleet view (counts per state and
// per function).
//
// The tracker deliberately lags reality by the bus latency -- tests assert
// exactly that -- mirroring the consistency model a real Kafka-backed
// control plane has.

#include <cstdint>
#include <string>
#include <unordered_map>

#include "common/ids.hpp"
#include "platform/message_bus.hpp"

namespace xanadu::platform {

enum class WorkerEventKind : std::uint8_t {
  Provisioning,  // Sandbox build started.
  Ready,         // Build finished; worker warm.
  Busy,          // Executing a request.
  Idle,          // Finished executing; back to warm.
  Dead,          // Terminated (keep-alive expiry, eviction, miss discard).
};

[[nodiscard]] const char* to_string(WorkerEventKind kind);

struct WorkerEvent {
  WorkerEventKind kind = WorkerEventKind::Provisioning;
  common::WorkerId worker{};
  common::FunctionId function{};
  common::HostId host{};
};

/// Topic the engine publishes worker events on.
inline constexpr const char* kWorkerStateTopic = "workers";

/// Serialises an event to the bus payload format ("kind:worker:fn:host").
[[nodiscard]] std::string encode(const WorkerEvent& event);

/// Parses a payload; throws std::invalid_argument on malformed input.
[[nodiscard]] WorkerEvent decode(const std::string& payload);

/// Subscribes to the worker-state topic and maintains the fleet view.
class WorkerStateTracker {
 public:
  /// Subscribes on construction; the bus must outlive the tracker.  `topic`
  /// defaults to the engine's "workers" topic; the sharded runner's fleet
  /// view instead listens on one bridged per-shard topic per tracker
  /// ("fleet.workers.<shard>"), keeping tenants' worker ids apart.
  explicit WorkerStateTracker(MessageBus& bus,
                              const std::string& topic = kWorkerStateTopic);
  ~WorkerStateTracker();

  WorkerStateTracker(const WorkerStateTracker&) = delete;
  WorkerStateTracker& operator=(const WorkerStateTracker&) = delete;

  /// Live (non-dead) workers currently known.
  [[nodiscard]] std::size_t live_count() const;
  /// Workers known to be in a given state.
  [[nodiscard]] std::size_t count(WorkerEventKind state) const;
  /// Live workers of one function.
  [[nodiscard]] std::size_t function_count(common::FunctionId fn) const;
  /// Total events consumed.
  [[nodiscard]] std::uint64_t events_seen() const { return events_; }

 private:
  void apply(const WorkerEvent& event);

  MessageBus& bus_;
  SubscriptionId subscription_;
  struct Entry {
    WorkerEventKind state;
    common::FunctionId function;
  };
  std::unordered_map<common::WorkerId, Entry> workers_;
  std::uint64_t events_ = 0;
};

}  // namespace xanadu::platform
