#include "platform/policy.hpp"

#include "platform/engine.hpp"

namespace xanadu::platform {

// Default ProvisionPolicy hooks are no-ops: a policy overrides only the
// lifecycle points it cares about.

void ProvisionPolicy::on_request_submitted(PlatformEngine&, RequestContext&) {}
void ProvisionPolicy::on_node_triggered(PlatformEngine&, RequestContext&, NodeId) {}
void ProvisionPolicy::on_node_exec_start(PlatformEngine&, RequestContext&, NodeId) {}
void ProvisionPolicy::on_worker_ready(PlatformEngine&, WorkflowId, NodeId,
                                      sim::Duration) {}
void ProvisionPolicy::on_node_completed(PlatformEngine&, RequestContext&, NodeId) {}
void ProvisionPolicy::on_xor_resolved(PlatformEngine&, RequestContext&, NodeId,
                                      NodeId) {}
void ProvisionPolicy::on_node_skipped(PlatformEngine&, RequestContext&, NodeId) {}
void ProvisionPolicy::on_request_completed(PlatformEngine&, RequestContext&,
                                           RequestResult&) {}

void PrewarmAllPolicy::on_request_submitted(PlatformEngine& engine,
                                            RequestContext& ctx) {
  for (const workflow::Node& node : ctx.dag->nodes()) {
    engine.prewarm(ctx, node.id);
  }
}

}  // namespace xanadu::platform
