#include "platform/policy.hpp"

#include <utility>

#include "platform/engine.hpp"

namespace xanadu::platform {

// -- PolicyView -------------------------------------------------------------

void PolicyView::bind(Clock now, CountQuery warm, CountQuery provisioning) {
  now_ = std::move(now);
  warm_ = std::move(warm);
  provisioning_ = std::move(provisioning);
}

void PolicyView::record_arrival(WorkflowId workflow, sim::TimePoint at) {
  ++total_arrivals_;
  WorkflowArrivals& entry = arrivals_[workflow];
  ++entry.total;
  entry.recent.push_back(at);
  if (entry.recent.size() > kArrivalHistory) entry.recent.pop_front();
}

void PolicyView::record_worker_ready(FunctionId fn,
                                     sim::Duration provision_latency) {
  FunctionEstimate& estimate = estimates_[fn];
  ++estimate.provision_samples;
  estimate.mean_provision_ms +=
      (provision_latency.millis() - estimate.mean_provision_ms) /
      static_cast<double>(estimate.provision_samples);
}

void PolicyView::record_execution(FunctionId fn, sim::Duration exec_duration) {
  FunctionEstimate& estimate = estimates_[fn];
  ++estimate.exec_samples;
  estimate.mean_exec_ms += (exec_duration.millis() - estimate.mean_exec_ms) /
                           static_cast<double>(estimate.exec_samples);
}

void PolicyView::record_completion(bool failed) {
  ++completions_;
  if (failed) ++failures_;
}

std::uint64_t PolicyView::arrivals(WorkflowId workflow) const {
  auto it = arrivals_.find(workflow);
  return it == arrivals_.end() ? 0 : it->second.total;
}

std::size_t PolicyView::warm_count(FunctionId fn) const {
  return warm_ ? warm_(fn) : 0;
}

std::size_t PolicyView::provisioning_count(FunctionId fn) const {
  return provisioning_ ? provisioning_(fn) : 0;
}

const PolicyView::FunctionEstimate* PolicyView::estimate(FunctionId fn) const {
  auto it = estimates_.find(fn);
  return it == estimates_.end() ? nullptr : &it->second;
}

std::uint64_t PolicyView::arrivals_in_window(WorkflowId workflow,
                                             sim::Duration window) const {
  auto it = arrivals_.find(workflow);
  if (it == arrivals_.end()) return 0;
  const sim::TimePoint cutoff = now() - window;
  std::uint64_t count = 0;
  // Walk newest-to-oldest; the deque is in arrival (time) order.
  for (auto rit = it->second.recent.rbegin(); rit != it->second.recent.rend();
       ++rit) {
    if (*rit <= cutoff) break;
    ++count;
  }
  return count;
}

double PolicyView::arrival_rate_per_sec(WorkflowId workflow,
                                        sim::Duration window) const {
  if (window <= sim::Duration::zero()) return 0.0;
  const std::uint64_t count = arrivals_in_window(workflow, window);
  return static_cast<double>(count) / window.seconds();
}

// -- ProvisionPolicy defaults -----------------------------------------------

// Default ProvisionPolicy hooks are no-ops: a policy overrides only the
// lifecycle points it cares about.

void ProvisionPolicy::on_attach(PlatformEngine&, const PolicyView&) {}
void ProvisionPolicy::on_request_submitted(PlatformEngine&, RequestContext&) {}
void ProvisionPolicy::on_node_triggered(PlatformEngine&, RequestContext&, NodeId) {}
void ProvisionPolicy::on_node_exec_start(PlatformEngine&, RequestContext&, NodeId) {}
void ProvisionPolicy::on_worker_ready(PlatformEngine&, WorkflowId, NodeId,
                                      sim::Duration) {}
void ProvisionPolicy::on_node_completed(PlatformEngine&, RequestContext&, NodeId) {}
void ProvisionPolicy::on_xor_resolved(PlatformEngine&, RequestContext&, NodeId,
                                      NodeId) {}
void ProvisionPolicy::on_node_skipped(PlatformEngine&, RequestContext&, NodeId) {}
void ProvisionPolicy::on_request_completed(PlatformEngine&, RequestContext&,
                                           RequestResult&) {}

// -- PrewarmAllPolicy -------------------------------------------------------

void PrewarmAllPolicy::on_attach(PlatformEngine&, const PolicyView& view) {
  view_ = &view;
}

void PrewarmAllPolicy::on_request_submitted(PlatformEngine& engine,
                                            RequestContext& ctx) {
  for (const workflow::Node& node : ctx.dag->nodes()) {
    if (view_ != nullptr) {
      // Observation-first: skip nodes the view already shows covered.  The
      // engine re-checks coverage inside prewarm(), so this changes no
      // behaviour -- it is the same decision expressed against the
      // observation API the competitor policies use.
      const FunctionId fn = engine.function_id(ctx.workflow, node.id);
      if (view_->warm_count(fn) > 0 || view_->provisioning_in_flight(fn)) {
        continue;
      }
    }
    engine.prewarm(ctx, node.id);
  }
}

}  // namespace xanadu::platform
