#include "platform/message_bus.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

#include "sim/logical_process.hpp"
#include "sim/sharded.hpp"

namespace xanadu::platform {

MessageBus::MessageBus(sim::Simulator& simulator, Options options,
                       common::Rng rng)
    : sim_(simulator), options_(options), rng_(rng) {
  if (options_.latency < sim::Duration::zero() ||
      options_.jitter < sim::Duration::zero()) {
    throw std::invalid_argument{"MessageBus: negative latency or jitter"};
  }
}

TopicId MessageBus::intern(const std::string& topic) {
  const common::Symbol symbol = names_.intern(topic);
  // Symbols are dense first-use ids, so a fresh one is exactly topics_.size().
  if (symbol == topics_.size()) topics_.emplace_back();
  return TopicId{symbol};
}

SubscriptionId MessageBus::subscribe(const std::string& topic,
                                     BusHandler handler) {
  return subscribe(intern(topic), std::move(handler));
}

SubscriptionId MessageBus::subscribe(TopicId topic, BusHandler handler) {
  if (!handler) throw std::invalid_argument{"MessageBus::subscribe: empty handler"};
  if (!topic.valid() || topic.value() >= topics_.size()) {
    throw std::invalid_argument{"MessageBus::subscribe: unknown topic id"};
  }
  const SubscriptionId id = subscription_ids_.next();
  topics_[topic.value()].subscriptions.push_back(
      Subscription{id, std::move(handler)});
  return id;
}

bool MessageBus::unsubscribe(SubscriptionId id) {
  // Linear search for a unique subscription id: at most one topic matches.
  // topics_ is a dense vector in intern order, so the walk is deterministic.
  for (Topic& state : topics_) {
    auto& subs = state.subscriptions;
    const auto it = std::find_if(subs.begin(), subs.end(),
                                 [id](const Subscription& s) { return s.id == id; });
    if (it != subs.end()) {
      subs.erase(it);
      return true;
    }
  }
  return false;
}

std::uint64_t MessageBus::publish(const std::string& topic,
                                  std::string payload) {
  return publish(intern(topic), std::move(payload));
}

std::uint64_t MessageBus::publish(TopicId topic, std::string payload) {
  if (!topic.valid() || topic.value() >= topics_.size()) {
    throw std::invalid_argument{"MessageBus::publish: unknown topic id"};
  }
  Topic& state = topics_[topic.value()];
  const std::uint64_t offset = state.next_offset++;
  ++published_;

  // One fault consult per message.  A dropped message still consumed its
  // offset (the broker accepted it; delivery is what got lost) but never
  // advances last_delivery, so later messages are not held back by it.
  sim::FaultPlan::BusFault fault = sim::FaultPlan::BusFault::None;
  if (faults_ != nullptr && faults_->active()) {
    fault = faults_->next_bus_fault();
  }
  if (fault == sim::FaultPlan::BusFault::Drop) {
    ++dropped_;
    return offset;
  }

  // Cross-shard fan-out: a copy of the payload crosses the mailbox and is
  // handed to the remote bus after the bridge latency.  The closure is
  // pointer + TopicId + std::string = 48 bytes, inside EventFn's inline
  // buffer, and std::string's move is noexcept, so it crosses the mailbox
  // without allocating beyond the payload itself.
  for (const Bridge& bridge : state.bridges) {
    MessageBus* const remote = bridge.remote;
    const TopicId remote_topic = bridge.remote_topic;
    lp_->send(bridge.target, sim_.now() + bridge.latency,
              [remote, remote_topic, copy = payload]() mutable {
                remote->deliver_bridged(remote_topic, std::move(copy));
              },
              "bus.bridge");
    ++bridged_out_;
  }

  double delay_ms = options_.latency.millis();
  if (options_.jitter > sim::Duration::zero()) {
    // Shared bus stream is deliberate: publishes happen in a fixed serial
    // order (per-topic offsets pin it; the race sweep covers this).
    delay_ms += std::abs(  // flow-lint:allow(shared-rng-draw)
        rng_.normal(0.0, options_.jitter.millis()));
  }
  if (fault == sim::FaultPlan::BusFault::Delay) {
    delay_ms += faults_->options().bus_extra_delay.millis();
  }
  // Per-topic ordering: a delivery never overtakes its predecessor.
  sim::TimePoint when = sim_.now() + sim::Duration::from_millis(delay_ms);
  when = std::max(when, state.last_delivery);
  state.last_delivery = when;

  auto message = std::make_shared<BusMessage>();
  message->topic = std::string{names_.view(topic.value())};
  message->payload = std::move(payload);
  message->offset = offset;
  message->published = sim_.now();

  schedule_delivery(topic, when, message);
  if (fault == sim::FaultPlan::BusFault::Duplicate) {
    // The duplicate lands immediately after the original (same virtual time,
    // FIFO tie-break) and keeps its offset, like a Kafka redelivery.
    schedule_delivery(topic, when, message);
  }
  return offset;
}

void MessageBus::schedule_delivery(TopicId topic, sim::TimePoint when,
                                   const std::shared_ptr<BusMessage>& message) {
  Topic& state = topics_[topic.value()];
  state.last_delivery = std::max(state.last_delivery, when);
  // Captures: this + TopicId + shared_ptr = 32 bytes, inside EventFn's
  // inline buffer -- the delivery path does not allocate per message.
  sim_.schedule_at(
      when,
      [this, topic, message] {
        // Copy the subscriber list: handlers may (un)subscribe re-entrantly.
        const std::vector<Subscription> subscribers =
            topics_[topic.value()].subscriptions;
        for (const Subscription& sub : subscribers) {
          // Skip handlers removed between the copy and this delivery.
          // Re-read the live list each round: a handler may mutate it (or
          // grow topics_).
          const auto& live = topics_[topic.value()].subscriptions;
          const bool still_subscribed = std::any_of(
              live.begin(), live.end(),
              [&](const Subscription& s) { return s.id == sub.id; });
          if (!still_subscribed) continue;
          ++delivered_;
          sub.handler(*message);
        }
      },
      "bus.delivery");
}

void MessageBus::attach_shard(sim::LogicalProcess& lp) {
  if (&lp.simulator() != &sim_) {
    throw std::logic_error{
        "MessageBus::attach_shard: the logical process must own this bus's "
        "simulator"};
  }
  lp_ = &lp;
}

void MessageBus::bridge_topic(TopicId topic, MessageBus& remote,
                              TopicId remote_topic, sim::Duration latency) {
  if (!topic.valid() || topic.value() >= topics_.size()) {
    throw std::invalid_argument{"MessageBus::bridge_topic: unknown topic id"};
  }
  if (!remote_topic.valid() ||
      remote_topic.value() >= remote.topics_.size()) {
    throw std::invalid_argument{
        "MessageBus::bridge_topic: unknown remote topic id"};
  }
  if (lp_ == nullptr || remote.lp_ == nullptr) {
    throw std::logic_error{
        "MessageBus::bridge_topic: both buses must be attached to shards"};
  }
  if (&remote == this || remote.lp_->shard() == lp_->shard()) {
    throw std::logic_error{
        "MessageBus::bridge_topic: the remote bus must live on another shard"};
  }
  if (&remote.lp_->owner() != &lp_->owner()) {
    throw std::logic_error{
        "MessageBus::bridge_topic: shards belong to different drivers"};
  }
  if (latency < lp_->owner().lookahead()) {
    // A faster-than-lookahead link would let a message land inside the
    // window the fleet is concurrently draining.
    throw std::invalid_argument{
        "MessageBus::bridge_topic: latency below the driver's lookahead"};
  }
  topics_[topic.value()].bridges.push_back(
      Bridge{&remote, remote_topic, remote.lp_->shard(), latency});
}

void MessageBus::bridge_topic(const std::string& topic, MessageBus& remote,
                              const std::string& remote_topic,
                              sim::Duration latency) {
  bridge_topic(intern(topic), remote, remote.intern(remote_topic), latency);
}

void MessageBus::deliver_bridged(TopicId topic, std::string payload) {
  if (!topic.valid() || topic.value() >= topics_.size()) {
    throw std::invalid_argument{
        "MessageBus::deliver_bridged: unknown topic id"};
  }
  Topic& state = topics_[topic.value()];
  BusMessage message;
  message.topic = std::string{names_.view(topic.value())};
  message.payload = std::move(payload);
  message.offset = state.next_offset++;
  message.published = sim_.now();
  state.last_delivery = std::max(state.last_delivery, sim_.now());
  ++bridged_in_;
  // Same re-entrancy discipline as the local delivery closure: handlers may
  // (un)subscribe while we iterate a copy.
  const std::vector<Subscription> subscribers = state.subscriptions;
  for (const Subscription& sub : subscribers) {
    const auto& live = topics_[topic.value()].subscriptions;
    const bool still_subscribed =
        std::any_of(live.begin(), live.end(),
                    [&](const Subscription& s) { return s.id == sub.id; });
    if (!still_subscribed) continue;
    ++delivered_;
    sub.handler(message);
  }
}

std::size_t MessageBus::subscriber_count(const std::string& topic) const {
  const auto symbol = names_.find(topic);
  return symbol ? topics_[*symbol].subscriptions.size() : 0;
}

}  // namespace xanadu::platform
