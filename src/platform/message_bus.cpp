#include "platform/message_bus.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

namespace xanadu::platform {

MessageBus::MessageBus(sim::Simulator& simulator, Options options,
                       common::Rng rng)
    : sim_(simulator), options_(options), rng_(rng) {
  if (options_.latency < sim::Duration::zero() ||
      options_.jitter < sim::Duration::zero()) {
    throw std::invalid_argument{"MessageBus: negative latency or jitter"};
  }
}

TopicId MessageBus::intern(const std::string& topic) {
  const common::Symbol symbol = names_.intern(topic);
  // Symbols are dense first-use ids, so a fresh one is exactly topics_.size().
  if (symbol == topics_.size()) topics_.emplace_back();
  return TopicId{symbol};
}

SubscriptionId MessageBus::subscribe(const std::string& topic,
                                     BusHandler handler) {
  return subscribe(intern(topic), std::move(handler));
}

SubscriptionId MessageBus::subscribe(TopicId topic, BusHandler handler) {
  if (!handler) throw std::invalid_argument{"MessageBus::subscribe: empty handler"};
  if (!topic.valid() || topic.value() >= topics_.size()) {
    throw std::invalid_argument{"MessageBus::subscribe: unknown topic id"};
  }
  const SubscriptionId id = subscription_ids_.next();
  topics_[topic.value()].subscriptions.push_back(
      Subscription{id, std::move(handler)});
  return id;
}

bool MessageBus::unsubscribe(SubscriptionId id) {
  // Linear search for a unique subscription id: at most one topic matches.
  // topics_ is a dense vector in intern order, so the walk is deterministic.
  for (Topic& state : topics_) {
    auto& subs = state.subscriptions;
    const auto it = std::find_if(subs.begin(), subs.end(),
                                 [id](const Subscription& s) { return s.id == id; });
    if (it != subs.end()) {
      subs.erase(it);
      return true;
    }
  }
  return false;
}

std::uint64_t MessageBus::publish(const std::string& topic,
                                  std::string payload) {
  return publish(intern(topic), std::move(payload));
}

std::uint64_t MessageBus::publish(TopicId topic, std::string payload) {
  if (!topic.valid() || topic.value() >= topics_.size()) {
    throw std::invalid_argument{"MessageBus::publish: unknown topic id"};
  }
  Topic& state = topics_[topic.value()];
  const std::uint64_t offset = state.next_offset++;
  ++published_;

  // One fault consult per message.  A dropped message still consumed its
  // offset (the broker accepted it; delivery is what got lost) but never
  // advances last_delivery, so later messages are not held back by it.
  sim::FaultPlan::BusFault fault = sim::FaultPlan::BusFault::None;
  if (faults_ != nullptr && faults_->active()) {
    fault = faults_->next_bus_fault();
  }
  if (fault == sim::FaultPlan::BusFault::Drop) {
    ++dropped_;
    return offset;
  }

  double delay_ms = options_.latency.millis();
  if (options_.jitter > sim::Duration::zero()) {
    // Shared bus stream is deliberate: publishes happen in a fixed serial
    // order (per-topic offsets pin it; the race sweep covers this).
    delay_ms += std::abs(  // flow-lint:allow(shared-rng-draw)
        rng_.normal(0.0, options_.jitter.millis()));
  }
  if (fault == sim::FaultPlan::BusFault::Delay) {
    delay_ms += faults_->options().bus_extra_delay.millis();
  }
  // Per-topic ordering: a delivery never overtakes its predecessor.
  sim::TimePoint when = sim_.now() + sim::Duration::from_millis(delay_ms);
  when = std::max(when, state.last_delivery);
  state.last_delivery = when;

  auto message = std::make_shared<BusMessage>();
  message->topic = std::string{names_.view(topic.value())};
  message->payload = std::move(payload);
  message->offset = offset;
  message->published = sim_.now();

  schedule_delivery(topic, when, message);
  if (fault == sim::FaultPlan::BusFault::Duplicate) {
    // The duplicate lands immediately after the original (same virtual time,
    // FIFO tie-break) and keeps its offset, like a Kafka redelivery.
    schedule_delivery(topic, when, message);
  }
  return offset;
}

void MessageBus::schedule_delivery(TopicId topic, sim::TimePoint when,
                                   const std::shared_ptr<BusMessage>& message) {
  Topic& state = topics_[topic.value()];
  state.last_delivery = std::max(state.last_delivery, when);
  // Captures: this + TopicId + shared_ptr = 32 bytes, inside EventFn's
  // inline buffer -- the delivery path does not allocate per message.
  sim_.schedule_at(
      when,
      [this, topic, message] {
        // Copy the subscriber list: handlers may (un)subscribe re-entrantly.
        const std::vector<Subscription> subscribers =
            topics_[topic.value()].subscriptions;
        for (const Subscription& sub : subscribers) {
          // Skip handlers removed between the copy and this delivery.
          // Re-read the live list each round: a handler may mutate it (or
          // grow topics_).
          const auto& live = topics_[topic.value()].subscriptions;
          const bool still_subscribed = std::any_of(
              live.begin(), live.end(),
              [&](const Subscription& s) { return s.id == sub.id; });
          if (!still_subscribed) continue;
          ++delivered_;
          sub.handler(*message);
        }
      },
      "bus.delivery");
}

std::size_t MessageBus::subscriber_count(const std::string& topic) const {
  const auto symbol = names_.find(topic);
  return symbol ? topics_[*symbol].subscriptions.size() : 0;
}

}  // namespace xanadu::platform
