#include "platform/baseline_policies.hpp"

#include <algorithm>
#include <cmath>

#include "platform/engine.hpp"
#include "workflow/dag.hpp"

namespace xanadu::platform {

// -- PoolPolicy -------------------------------------------------------------

void PoolPolicy::on_attach(PlatformEngine&, const PolicyView& view) {
  view_ = &view;
}

void PoolPolicy::refill(PlatformEngine& engine, WorkflowId workflow,
                        NodeId node, std::size_t borrowed) {
  const FunctionId fn = engine.function_id(workflow, node);
  // In-flight provisions count toward the target so back-to-back refills
  // cannot over-provision while builds are still in the pipeline, and
  // `borrowed` workers (executing right now, guaranteed to re-park into this
  // pool) count too -- replacing a borrow with a fresh build would leave the
  // pool above target once both land.
  const std::size_t covered =
      view_->warm_count(fn) + view_->provisioning_count(fn) + borrowed;
  for (std::size_t i = covered; i < options_.pool_size; ++i) {
    if (!engine.prewarm_function(workflow, node)) break;  // Out of capacity.
  }
}

void PoolPolicy::on_request_submitted(PlatformEngine& engine,
                                      RequestContext& ctx) {
  // Node-id order: the DAG stores nodes by id, so the refill sequence (and
  // therefore every provisioning event it schedules) is replay-stable.
  for (const workflow::Node& node : ctx.dag->nodes()) {
    refill(engine, ctx.workflow, node.id);
  }
}

void PoolPolicy::on_node_exec_start(PlatformEngine& engine, RequestContext& ctx,
                                    NodeId node) {
  // An execution just consumed a pooled (or freshly built) worker.  That
  // worker still counts toward the pool (it re-parks when the node finishes),
  // so this refill only builds when a worker was actually lost -- evicted by
  // keep-alive, or crashed under fault injection.
  refill(engine, ctx.workflow, node, /*borrowed=*/1);
}

void PoolPolicy::on_node_completed(PlatformEngine& engine, RequestContext& ctx,
                                   NodeId node) {
  if (!options_.evict_surplus) return;
  // The finished worker re-parked itself; anything above pool_size is
  // surplus the pool design does not want to pay idle cost for.
  const FunctionId fn = engine.function_id(ctx.workflow, node);
  engine.shrink_warm_pool(fn, options_.pool_size);
}

// -- MpcHorizonPolicy -------------------------------------------------------

void MpcHorizonPolicy::on_attach(PlatformEngine&, const PolicyView& view) {
  view_ = &view;
}

void MpcHorizonPolicy::on_request_submitted(PlatformEngine& engine,
                                            RequestContext& ctx) {
  seen_workflows_[ctx.workflow] = ctx.dag->node_count();
  maybe_solve(engine);
}

void MpcHorizonPolicy::on_node_completed(PlatformEngine& engine,
                                         RequestContext&, NodeId) {
  // Completions give the controller tick opportunities while long executions
  // run between arrivals; the policy itself schedules no events, so an idle
  // platform still drains.
  maybe_solve(engine);
}

void MpcHorizonPolicy::maybe_solve(PlatformEngine& engine) {
  if (view_ == nullptr) return;
  if (view_->now() < next_tick_) return;
  next_tick_ = view_->now() + options_.horizon;
  solve(engine);
}

void MpcHorizonPolicy::solve(PlatformEngine& engine) {
  ++solves_;
  // std::map keyed by WorkflowId: the walk (and the node walk inside) is in
  // id order, so the emitted provision/evict actions are replay-stable.
  for (const auto& [workflow, node_count] : seen_workflows_) {
    const double lambda =
        view_->arrival_rate_per_sec(workflow, options_.window);
    for (std::size_t i = 0; i < node_count; ++i) {
      const NodeId node{i};
      const FunctionId fn = engine.function_id(workflow, node);

      // Little's-law demand: concurrent workers ~ lambda * busy time, where
      // busy time is the platform's own online exec + provision estimate.
      // Before any observation the estimate is empty; demand then degrades
      // to "one warm worker while traffic flows", which is the honest
      // model-free floor.
      double busy_seconds = 0.0;
      if (const PolicyView::FunctionEstimate* est = view_->estimate(fn)) {
        if (est->exec_samples > 0) busy_seconds += est->mean_exec_ms / 1e3;
        if (est->provision_samples > 0) {
          busy_seconds += est->mean_provision_ms / 1e3;
        }
      }
      std::size_t target = 0;
      if (lambda > 0.0) {
        const double demand = lambda * busy_seconds * options_.safety_factor;
        target = static_cast<std::size_t>(std::ceil(demand));
        target = std::max<std::size_t>(target, 1);
        target = std::min(target, options_.max_pool);
      }

      const std::size_t warm = view_->warm_count(fn);
      const std::size_t covered = warm + view_->provisioning_count(fn);
      if (covered < target) {
        for (std::size_t j = covered; j < target; ++j) {
          if (!engine.prewarm_function(workflow, node)) break;
        }
      } else if (options_.evict_to_target && warm > target) {
        engine.shrink_warm_pool(fn, target);
      }
    }
  }
}

}  // namespace xanadu::platform
