#pragma once

// ProvisionPipeline: the sandbox-provisioning subsystem of the platform.
//
// Owns the PendingProvision slots (one per in-flight sandbox build), the
// Dispatch-Daemon command path over the control bus (publish, ack,
// exponential-backoff re-send when faults can drop commands), provision
// redirects (the generic-environment reuse of paper Section 7), and the
// live-worker throttle interaction: a provision that would exceed
// max_live_workers first evicts the oldest warm worker and carries the
// eviction penalty into its own latency.
//
// The pipeline does not know about requests.  Waiters are opaque
// (RequestId, NodeId) pairs handed back to the engine through Hooks when a
// build completes or fails; the engine decides what serving a waiter means.

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cluster/cluster.hpp"
#include "common/ids.hpp"
#include "platform/calibration.hpp"
#include "platform/message_bus.hpp"
#include "platform/request.hpp"
#include "platform/warm_pool.hpp"
#include "platform/worker_state.hpp"
#include "sim/fault_plan.hpp"
#include "sim/simulator.hpp"
#include "workflow/function_spec.hpp"

namespace xanadu::platform {

/// One (request, node) pair waiting on an in-flight provision, FIFO.
using ProvisionWaiter = std::pair<RequestId, NodeId>;
using ProvisionWaiters = std::deque<ProvisionWaiter>;

/// One in-flight sandbox build.
struct PendingProvision {
  WorkerId worker{};
  EventId ready_event{};
  ProvisionWaiters waiters;
  /// Where the worker was placed (needed to republish daemon commands).
  common::HostId host{};
  /// Extra platform latency carried by the daemon command.
  sim::Duration extra = sim::Duration::zero();
  /// True once the daemon received the command and started the build;
  /// duplicate or retried commands for an acked provision are ignored.
  bool acked = false;
  /// Command re-sends so far (ack-timeout recovery).
  unsigned attempts = 0;
  /// Pending ack-timeout event, if armed.
  EventId retry_event{};
};

class ProvisionPipeline {
 public:
  struct Hooks {
    /// Publishes a worker lifecycle event (no-op when the bus is disabled).
    std::function<void(WorkerEventKind, WorkerId)> publish_worker_event;
    /// A build completed: the engine finishes provisioning, notifies the
    /// policy, and serves (or parks for) the waiters.
    std::function<void(FunctionId fn, WorkerId worker, ProvisionWaiters waiters)>
        on_ready;
    /// A build was abandoned (injected failure, or command retries
    /// exhausted): the engine routes the waiters through recovery.
    std::function<void(FunctionId fn, WorkerId worker, ProvisionWaiters waiters)>
        on_build_failed;
    /// Resolves the FunctionSpec for a function id (engine-owned registry).
    std::function<const workflow::FunctionSpec&(FunctionId)> spec_for;
  };

  /// Borrows everything; all references must outlive the pipeline.  The
  /// fault plan and recovery stats are the engine's members (the plan is
  /// re-seeded in the engine constructor body, after this pipeline is
  /// built -- holding a reference keeps that safe).
  ProvisionPipeline(sim::Simulator& sim, cluster::Cluster& cluster,
                    const PlatformCalibration& calib, sim::FaultPlan& fault_plan,
                    WarmPoolManager& warm_pool, RecoveryStats& recovery_stats,
                    Hooks hooks);

  ProvisionPipeline(const ProvisionPipeline&) = delete;
  ProvisionPipeline& operator=(const ProvisionPipeline&) = delete;

  /// Interns one Dispatch-Daemon command topic per host and subscribes the
  /// daemons.  Called once by the engine when the control bus is enabled.
  void attach_bus(MessageBus& bus, std::size_t host_count);

  /// Starts provisioning a sandbox for `fn`: makes room under the
  /// live-worker cap, places the worker, and sends the build command to the
  /// host's daemon (over the bus, or via a zero-delay event without one).
  /// Returns the provision slot, or nullptr when placement failed.  The
  /// returned pointer is invalidated by any further pipeline mutation.
  PendingProvision* start(FunctionId fn);

  /// Attaches a waiter to the front in-flight provision of `fn`.
  /// Requires has_provisions(fn).
  void attach_waiter(FunctionId fn, RequestId request, NodeId node);

  [[nodiscard]] bool has_provisions(FunctionId fn) const;

  /// In-flight sandbox builds for `fn` (0 when none).
  [[nodiscard]] std::size_t provision_count(FunctionId fn) const;

  /// Abandons the build of `worker` (injected failure or daemon
  /// unreachable): cancels pending events, tears the worker down, bumps
  /// builds_abandoned, and hands the waiters to on_build_failed.  No-op when
  /// the provision is already gone.
  void build_failed(FunctionId fn, WorkerId worker);

  /// Host-outage teardown: removes the slot for `worker` and cancels its
  /// events, returning the stranded waiters.  nullopt when no slot matches
  /// (the caller still owns the worker teardown either way).
  std::optional<ProvisionWaiters> remove_for_outage(FunctionId fn,
                                                    WorkerId worker);

  /// Redirects one unclaimed (waiter-free) provision of `from` to `to`.
  /// The engine has already checked architecture compatibility.
  bool redirect(FunctionId from, FunctionId to);

  /// Aborts waiter-free provisions of `fn`; returns the number aborted.
  std::size_t abort_unclaimed(FunctionId fn);

  /// Registers this subsystem's race-detector probes ("pipeline.*"):
  /// in-flight builds, pending redirects, cumulative starts/completions.
  void register_probes(sim::ProbeRegistry& probes) const;

 private:
  void publish_command(FunctionId fn, WorkerId worker, common::HostId host,
                       sim::Duration extra);
  /// The Dispatch-Daemon side of provisioning: samples the (contention-
  /// aware) latency and schedules completion.  Reached either directly via
  /// a zero-delay event or through the control bus.
  void daemon_build_sandbox(FunctionId fn, WorkerId worker,
                            sim::Duration extra_latency);
  void arm_command_retry(FunctionId fn, WorkerId worker);
  void command_retry_fired(FunctionId fn, WorkerId worker);
  void provision_ready(FunctionId fn, WorkerId worker);
  /// Resolves redirects and returns the provision entry for `worker`, or
  /// nullptr.  `fn` is updated to the owning function.
  PendingProvision* find(FunctionId& fn, WorkerId worker);
  /// Enforces max_live_workers by evicting the oldest warm worker; returns
  /// the eviction delay to add to the pending provisioning operation.
  sim::Duration make_room();

  sim::Simulator& sim_;
  cluster::Cluster& cluster_;
  const PlatformCalibration& calib_;
  sim::FaultPlan& fault_plan_;
  WarmPoolManager& warm_pool_;
  RecoveryStats& recovery_stats_;
  Hooks hooks_;

  /// nullptr until attach_bus (commands then short-circuit the bus).
  MessageBus* bus_ = nullptr;
  /// Interned per-host daemon command topics; publishing by id skips the
  /// string hash on every hot-path bus round-trip.
  std::vector<TopicId> daemon_topics_;

  std::unordered_map<FunctionId, std::vector<PendingProvision>> provisions_;
  /// Provisions redirected to another function while in flight; consulted
  /// (and consumed) by provision_ready, whose scheduled callback still
  /// carries the original function id.
  std::unordered_map<WorkerId, FunctionId> redirects_;

  // Cumulative counters (probe-visible; never reset).
  std::uint64_t provisions_started_ = 0;
  std::uint64_t provisions_completed_ = 0;
};

}  // namespace xanadu::platform
