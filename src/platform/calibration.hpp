#pragma once

// Per-platform overhead calibrations.
//
// Every platform in the reproduction (Xanadu's own modes, Knative-like,
// OpenWhisk-like, and the ASF/ADF cloud emulations) runs on the same DAG
// execution engine; what distinguishes them is WHEN they provision sandboxes
// (the ProvisionPolicy) and the overhead constants below.  The constants are
// calibrated from the paper's own reported numbers; see DESIGN.md Section 1
// and the comments on each preset.

#include <optional>
#include <string>

#include "cluster/sandbox.hpp"
#include "sim/fault_plan.hpp"
#include "sim/time.hpp"

namespace xanadu::platform {

/// Control-bus (Kafka stand-in) settings; see message_bus.hpp.
struct ControlBusOptions {
  /// Route Dispatch Manager -> Dispatch Daemon provisioning commands over
  /// the message bus (paper Figure 11); each command pays the bus latency
  /// before the host daemon starts building the sandbox.
  bool enabled = false;
  sim::Duration latency = sim::Duration::from_millis(3);
  sim::Duration jitter = sim::Duration::zero();
};

/// How the platform reacts to injected faults.  Defaults model the paper's
/// deployment (commands are retried, failed builds re-placed); disabling
/// recovery strands requests, which the fault ablation quantifies.
struct RecoveryOptions {
  /// Master switch.  With recovery off the engine injects faults but never
  /// retries, re-provisions, or fails requests over -- it simply reports
  /// what stranded.
  bool enabled = true;

  /// Daemon commands published on the bus are re-sent if not acknowledged
  /// within `command_timeout`; each retry doubles the wait (exponential
  /// backoff), up to `max_command_retries` re-sends.
  sim::Duration command_timeout = sim::Duration::from_millis(200);
  unsigned max_command_retries = 5;

  /// A node whose worker died (build failure, crash, host outage) is
  /// re-dispatched after `redispatch_backoff` times 2^(attempt-1), up to
  /// `max_node_retries` times; after that the whole request fails cleanly.
  sim::Duration redispatch_backoff = sim::Duration::from_millis(20);
  unsigned max_node_retries = 3;
};

struct PlatformCalibration {
  std::string name = "platform";

  /// Reverse-proxy / request-forwarding latency paid on every function
  /// invocation (warm or cold).
  sim::Duration dispatch_latency = sim::Duration::from_millis(25);

  /// Extra per-step delay of an external workflow orchestrator (the cloud
  /// platforms' state-machine engines; zero for direct chaining).
  sim::Duration orchestration_step = sim::Duration::zero();

  /// Platform-pipeline latency added on top of the raw sandbox provisioning
  /// latency (scheduler hops, image resolution, pod wiring, ...).  Most of
  /// this pipeline is container-specific (image pulls, network namespaces);
  /// lightweight sandboxes pay the reduced process/isolate extras.
  sim::Duration provision_extra = sim::Duration::zero();
  sim::Duration provision_extra_process = sim::Duration::zero();
  sim::Duration provision_extra_isolate = sim::Duration::zero();

  [[nodiscard]] sim::Duration provision_extra_for(
      workflow::SandboxKind kind) const {
    switch (kind) {
      case workflow::SandboxKind::Container: return provision_extra;
      case workflow::SandboxKind::Process: return provision_extra_process;
      case workflow::SandboxKind::Isolate: return provision_extra_isolate;
    }
    return provision_extra;
  }

  /// Standard deviation of jitter applied to each dispatch.
  sim::Duration overhead_jitter = sim::Duration::from_millis(4);

  /// Delay between a worker finishing provisioning and a waiting request
  /// actually executing on it (daemon -> manager -> proxy signalling).  The
  /// worker sits warm-idle for this long, which is why even pure on-trigger
  /// platforms accrue a little pre-use idle memory.
  sim::Duration worker_handoff = sim::Duration::from_millis(60);

  /// Cost of re-binding an idle warm sandbox to a different function of the
  /// same architecture (code reload, not a full environment build).  Used by
  /// the worker-reuse miss extension (paper Section 7, future work).
  sim::Duration rebind_latency = sim::Duration::from_millis(120);

  /// Idle time after which a warm worker is reclaimed.
  sim::Duration keep_alive = sim::Duration::from_minutes(10);

  /// Maximum number of live (warm + busy + provisioning) container workers
  /// the platform sustains; -1 = unlimited.  Models OpenWhisk standalone's
  /// limited container pool (paper Section 2.3: the sudden latency increase
  /// at chain length 5).
  int max_live_workers = -1;

  /// Latency paid to evict a warm worker when the live-worker cap forces a
  /// replacement (serialized docker rm + re-create contention).
  sim::Duration eviction_penalty = sim::Duration::zero();

  /// Dispatch Manager <-> Dispatch Daemon communication (Kafka stand-in).
  ControlBusOptions control_bus;

  /// Fault injection (all rates default to zero = no faults) and the
  /// platform's recovery behaviour when faults do fire.
  sim::FaultPlanOptions faults;
  RecoveryOptions recovery;

  /// Optional sandbox-profile overrides for this platform (the cloud
  /// platforms run Firecracker-class microVMs, far faster than the Docker
  /// defaults the open-source platforms use).
  std::optional<cluster::SandboxProfile> container_profile;
  std::optional<cluster::SandboxProfile> process_profile;
  std::optional<cluster::SandboxProfile> isolate_profile;
};

/// Xanadu's own request path with no speculation ("Xanadu Cold").
/// Calibrated so a single container function sees ~4.2-4.4 s of cold
/// overhead, matching Figure 12a's chain-length-1 values.
[[nodiscard]] PlatformCalibration xanadu_calibration();

/// Knative-like: chaining-agnostic, heaviest provisioning pipeline
/// (activator + autoscaler + pod start).  Figure 12a: ~7.3 s per hop,
/// 76.34 s of overhead at chain length 10.
[[nodiscard]] PlatformCalibration knative_like_calibration();

/// OpenWhisk-like (standalone): lighter pipeline than Knative (~4.4 s per
/// hop; 44.38 s at length 10) plus the limited live-container pool that
/// produces the chain-length-5 jump of Figure 4.
[[nodiscard]] PlatformCalibration openwhisk_like_calibration();

/// AWS-Step-Functions-like cloud emulation: microVM sandboxes (~430 ms cold
/// per function, Figure 3), ~10 min keep-alive (Figure 5), stable latency.
[[nodiscard]] PlatformCalibration asf_like_calibration();

/// Azure-Durable-Functions-like cloud emulation: ~350 ms cold per function,
/// ~20 min keep-alive, noticeably higher variance (Section 2.3 notes ADF's
/// instability).
[[nodiscard]] PlatformCalibration adf_like_calibration();

}  // namespace xanadu::platform
