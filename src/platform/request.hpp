#pragma once

// Per-request execution records produced by the platform engine.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/arena.hpp"
#include "common/ids.hpp"
#include "common/rng.hpp"
#include "sim/time.hpp"

namespace xanadu::workflow {
class WorkflowDag;
}  // namespace xanadu::workflow

namespace xanadu::platform {

using common::EventId;
using common::NodeId;
using common::RequestId;
using common::WorkerId;
using common::WorkflowId;

/// Lifecycle of one DAG node within one request.
enum class NodeStatus {
  /// Waiting for parents to resolve.
  Pending,
  /// All parents resolved with at least one taken edge; dispatch in flight.
  Triggered,
  /// A worker is running the function body.
  Executing,
  /// Function body finished.
  Completed,
  /// Every in-edge was resolved as not-taken (an XOR sibling lost).
  Skipped,
};

/// Timing record of one node within one request.
struct NodeRecord {
  NodeStatus status = NodeStatus::Pending;
  /// Parents whose outcome (taken / not-taken) is still unknown.
  std::size_t unresolved_parents = 0;
  /// True once any in-edge resolved as taken.
  bool any_taken_edge = false;
  /// Latest (parent completion + edge delay) over taken in-edges; the node
  /// triggers at this time once all parents are resolved (m:1 barrier).
  sim::TimePoint pending_trigger_time{};

  sim::TimePoint trigger_time{};
  sim::TimePoint exec_start{};
  sim::TimePoint exec_end{};
  /// Actual sampled execution duration (with jitter).
  sim::Duration exec_duration = sim::Duration::zero();
  /// True when no ready worker existed at dispatch time (the request had to
  /// wait -- fully or partially -- for provisioning).
  bool cold = false;
  /// How long the dispatched request waited for a worker to become ready.
  sim::Duration provision_wait = sim::Duration::zero();
  WorkerId worker{};
  /// Times this node was re-dispatched after its worker died (provisioning
  /// failure, crash, host outage).  Zero on every fault-free run.
  std::size_t retries = 0;
  /// The pending completion event while Executing; cancelled if the worker
  /// crashes or its host goes down mid-execution.
  EventId finish_event{};
  /// Parents whose taken edges invoked this node -- the simulation analogue
  /// of the parent-id request header Xanadu's patched HTTP library injects
  /// for implicit-chain detection (paper Section 3.3).
  std::vector<NodeId> invoked_by;
};

/// Counters describing what speculation did for a request.  Filled by the
/// active ProvisionPolicy (zeroed under baseline policies).
struct SpeculationStats {
  /// Nodes on the predicted most-likely path at request start.
  std::size_t predicted_nodes = 0;
  /// Predicted nodes that ended up skipped (prediction misses; Table 1's
  /// "#function miss per request").
  std::size_t missed_nodes = 0;
  /// Executed nodes that were not on the predicted path (paid a cold start
  /// despite speculation).
  std::size_t unpredicted_executions = 0;
  /// Planned proactive deployments cancelled after a miss was detected.
  std::size_t cancelled_deployments = 0;
  /// Speculatively provisioned workers discarded without ever executing.
  std::size_t wasted_workers = 0;
};

/// Final result of one workflow request.
struct RequestResult {
  RequestId id{};
  WorkflowId workflow{};
  sim::TimePoint submitted{};
  sim::TimePoint completed{};
  /// Wall-clock duration of the whole request (the paper's R_F).
  sim::Duration end_to_end = sim::Duration::zero();
  /// Execution time of the slowest executed control-flow branch
  /// (sum of r_i along the critical path).
  sim::Duration critical_path_exec = sim::Duration::zero();
  /// The paper's C_D = R_F - critical_path_exec (Equation 1).
  sim::Duration overhead = sim::Duration::zero();
  std::size_t executed_nodes = 0;
  std::size_t skipped_nodes = 0;
  std::size_t cold_starts = 0;
  /// Workers whose provisioning was attributed to this request (on-trigger
  /// plus speculative prewarms issued on its behalf).
  std::size_t workers_provisioned = 0;
  /// True when the request was abandoned after exhausting fault recovery (or
  /// immediately, with recovery disabled).  `completed` is then the failure
  /// time; overhead/critical-path fields are meaningless and left zero.
  bool failed = false;
  /// Human-readable reason, e.g. "node 3: provision retries exhausted".
  std::string failure_reason;
  SpeculationStats speculation;
  /// Indexed by NodeId value; same order as the workflow's nodes.
  std::vector<NodeRecord> node_records;
};

using CompletionCallback = std::function<void(const RequestResult&)>;

/// Node records of one in-flight request, bump-allocated from the request's
/// arena (deallocation is a no-op; the whole arena resets on completion).
using NodeRecordList = common::ArenaVector<NodeRecord>;

/// Live state of one in-flight request.  Owned by the engine; subsystems
/// (RecoveryManager in particular) reach it only through references handed
/// out by the engine, never by lookup of their own.
///
/// All per-request transient storage -- the node records below, the engine's
/// critical-path and XOR-weight scratch, the policy's per-request speculation
/// sets -- lives in `arena` and is released wholesale when the request
/// completes.  The engine recycles contexts: reset_for_reuse() rewinds the
/// arena (keeping its first block warm) so steady-state request turnover
/// does not touch the heap.
struct RequestContext {
  RequestContext() : nodes(common::ArenaAllocator<NodeRecord>(&arena)) {}

  RequestContext(const RequestContext&) = delete;
  RequestContext& operator=(const RequestContext&) = delete;

  /// Request-lifetime allocator.  Declared first: members below allocate
  /// from it, so it must outlive them in destruction order.
  common::Arena arena;

  RequestId id{};
  WorkflowId workflow{};
  const workflow::WorkflowDag* dag = nullptr;
  sim::TimePoint submitted{};
  NodeRecordList nodes;
  /// Nodes not yet Completed or Skipped.
  std::size_t outstanding = 0;
  std::size_t cold_starts = 0;
  std::size_t workers_provisioned = 0;
  SpeculationStats speculation;
  common::Rng rng;
  CompletionCallback on_complete;

  /// Returns the context to a fresh state for the engine's context pool.
  /// Arena-backed containers are re-bound to empty *before* the arena
  /// resets, so no live container references reclaimed memory.
  void reset_for_reuse() {
    nodes = NodeRecordList(common::ArenaAllocator<NodeRecord>(&arena));
    arena.reset();
    id = RequestId{};
    workflow = WorkflowId{};
    dag = nullptr;
    submitted = sim::TimePoint{};
    outstanding = 0;
    cold_starts = 0;
    workers_provisioned = 0;
    speculation = SpeculationStats{};
    on_complete = nullptr;
  }
};

/// Engine-wide counters for the fault-recovery machinery (zero on fault-free
/// runs).  Distinct from sim::FaultCounters, which counts *injected* faults:
/// these count what the engine did about them.
struct RecoveryStats {
  /// Daemon provisioning commands republished after an ack timeout.
  std::uint64_t command_retries = 0;
  /// Sandbox builds abandoned: injected build failures plus commands whose
  /// retries were exhausted (daemon unreachable).
  std::uint64_t builds_abandoned = 0;
  /// Node re-dispatches after a worker died or capacity vanished.
  std::uint64_t node_retries = 0;
  /// Requests failed over cleanly after exhausting recovery.
  std::uint64_t requests_failed = 0;
  /// Busy workers whose request was failed mid-execution, reclaimed into the
  /// warm pool when their (discarded) execution finished.
  std::uint64_t orphans_reaped = 0;
  /// Workers torn down by host outages.
  std::uint64_t outage_worker_kills = 0;
};

}  // namespace xanadu::platform
